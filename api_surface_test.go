package rmalocks_test

// Golden public-API surface test: a deterministic, gofmt'd go-doc-style
// dump of every exported declaration of the rmalocks facade is diffed
// against testdata/api_surface.txt, so any change to the public surface
// is a deliberate, reviewed act. Regenerate the golden file with:
//
//	go test -run APISurface -update-api .
//
// The dump is built from the package source (go/parser + go/printer),
// comments stripped, entries sorted — byte-stable across machines and
// Go versions that keep printer formatting stable.

import (
	"bytes"
	"flag"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "rewrite testdata/api_surface.txt from the current source")

func TestAPISurfaceGolden(t *testing.T) {
	dump := apiSurface(t)
	golden := filepath.Join("testdata", "api_surface.txt")
	if *updateAPI {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(dump), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(dump))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden API surface (%v); regenerate with: go test -run APISurface -update-api .", err)
	}
	if dump == string(want) {
		return
	}
	// Report a readable per-line diff, not two walls of text.
	got, exp := strings.Split(dump, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(got) || i < len(exp); i++ {
		var g, e string
		if i < len(got) {
			g = got[i]
		}
		if i < len(exp) {
			e = exp[i]
		}
		if g != e {
			t.Errorf("API surface drift at line %d:\n  have: %s\n  want: %s", i+1, g, e)
		}
	}
	t.Error("public API surface changed; if intended, regenerate with: go test -run APISurface -update-api .")
}

// apiSurface renders every exported top-level declaration of the
// facade package, one entry per declaration, sorted.
func apiSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["rmalocks"]
	if !ok {
		t.Fatalf("package rmalocks not found (have %v)", pkgs)
	}
	var entries []string
	emit := func(node any) {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, node); err != nil {
			t.Fatal(err)
		}
		entries = append(entries, buf.String())
	}
	files := make([]string, 0, len(pkg.Files))
	for name := range pkg.Files {
		files = append(files, name)
	}
	sort.Strings(files)
	for _, name := range files {
		for _, decl := range pkg.Files[name].Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Recv != nil {
					continue
				}
				d.Body = nil
				emit(d)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							emit(&ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{s}})
						}
					case *ast.ValueSpec:
						exported := false
						for _, n := range s.Names {
							exported = exported || n.IsExported()
						}
						if exported {
							emit(&ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{s}})
						}
					}
				}
			}
		}
	}
	sort.Strings(entries)
	return strings.Join(entries, "\n\n") + "\n"
}
