// Package rmalocks is a Go reproduction of "High-Performance Distributed
// RMA Locks" (Schmid, Besta, Hoefler — ACM HPDC'16): topology-aware
// distributed MCS and Reader-Writer locks built on Remote Memory Access
// (RMA) operations, together with the substrate they need — a
// deterministic discrete-event simulation of a multi-node machine with an
// RDMA-style network.
//
// # Quick start
//
//	machine := rmalocks.NewMachine(rmalocks.MachineSpec{Nodes: 4, ProcsPerNode: 16})
//	lock, err := rmalocks.NewLock(machine, "RMA-RW",
//		rmalocks.Tune("TR", 500), rmalocks.TuneLevels("TL", 16, 32))
//	if err != nil { ... }
//	err = machine.Run(func(p *rmalocks.Proc) {
//		lock.AcquireRead(p)
//		// ... read shared state ...
//		lock.ReleaseRead(p)
//	})
//
// NewLock dispatches through the capability-based scheme registry
// (internal/scheme): Schemes lists every registered lock scheme,
// Describe returns a scheme's capabilities and its typed tunables —
// the paper's T_DC, T_R, T_L,i parameter space (Figure 1) — with
// documented defaults and validity ranges, and construction validates
// tunables instead of silently defaulting. The per-scheme constructors
// (NewRMARW, NewRMAMCS, ...) remain as deprecated thin wrappers.
//
// The machine runs one goroutine per simulated process; virtual time is
// deterministic, so results are exactly reproducible. See the examples/
// directory for complete programs and DESIGN.md for how the simulation
// maps to the paper's Cray XC30 testbed.
//
// # Tracing
//
// Every run can capture a deterministic event trace (scheduler
// handoffs, RMA operations, lock acquire/release) at near-zero overhead
// via the trace API: attach NewTraceSink to MachineSpec.Trace or
// WorkloadSpec.Trace, then analyze the merged stream (AnalyzeTrace:
// Jain fairness, handoff-locality histograms, wait depth) or export it
// with WriteChromeTrace for Perfetto / chrome://tracing. See DESIGN.md,
// "Tracing & analysis".
package rmalocks

import (
	"fmt"
	"io"
	"strconv"

	"rmalocks/internal/cache"
	"rmalocks/internal/fault"
	"rmalocks/internal/jobq"
	"rmalocks/internal/locks"
	"rmalocks/internal/locks/dmcs"
	"rmalocks/internal/locks/fompi"
	"rmalocks/internal/locks/rmamcs"
	"rmalocks/internal/locks/rmarw"
	"rmalocks/internal/rma"
	"rmalocks/internal/scheme"
	"rmalocks/internal/sweep"
	"rmalocks/internal/topology"
	"rmalocks/internal/trace"
	"rmalocks/internal/workload"
)

// Proc is the per-process handle passed to the body of Machine.Run; it
// exposes the paper's RMA operations (Put, Get, Accumulate, FAO, CAS,
// Flush) plus virtual-time helpers (Compute, Barrier, Now).
type Proc = rma.Proc

// Machine is a simulated distributed machine.
type Machine = rma.Machine

// Topology describes the machine's element hierarchy.
type Topology = topology.Topology

// RankOverflowError is returned (wrapped) by NewMachineErr when a spec's
// total rank count would overflow the int32 rank ids used by the
// scheduler core; match it with errors.As.
type RankOverflowError = topology.RankOverflowError

// Mutex is a distributed mutual-exclusion lock.
type Mutex = locks.Mutex

// RWMutex is a distributed Reader-Writer lock.
type RWMutex = locks.RWMutex

// Nil is the null rank (∅) used in queue pointers.
const Nil = rma.Nil

// MachineSpec describes a machine to simulate. The zero value of optional
// fields selects the paper's defaults.
type MachineSpec struct {
	// Nodes is the number of compute nodes (level-2 elements). Default 1.
	Nodes int
	// ProcsPerNode is the number of processes per node. Default 16 (the
	// paper's one-process-per-hardware-thread configuration).
	ProcsPerNode int
	// Racks optionally adds a third level above the nodes: Nodes must be
	// a multiple of Racks. Zero means a two-level machine.
	Racks int
	// Seed seeds the per-process random streams (default 1).
	Seed int64
	// TimeLimit aborts a run after this much virtual time (ns); zero
	// means no limit.
	TimeLimit int64
	// Engine selects the scheduler implementation: "" or "fast" for the
	// token-owned fast-path scheduler, "ref" for the reference engine
	// (differential verification; see DESIGN.md).
	Engine string
	// Trace, when non-nil, captures the run's deterministic event
	// stream (see NewTraceSink); tracing never changes the simulation.
	Trace *TraceSink
	// Faults, when non-nil, perturbs the run with the deterministic
	// fault-injection layer (see ParseFaults and DESIGN.md, "Fault
	// injection & graceful degradation"): RTT jitter, congestion
	// windows, straggler ranks and stall intervals, all a pure function
	// of (Seed, Faults.Seed, rank, event index), so faulted runs stay
	// byte-identical across engines.
	Faults *FaultProfile
}

// NewMachine builds a simulated machine from spec using the calibrated
// default latency model. It panics on an invalid spec (negative fields,
// Nodes not a multiple of Racks); NewMachineErr is the validating form.
func NewMachine(spec MachineSpec) *Machine {
	m, err := NewMachineErr(spec)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// NewMachineErr builds a simulated machine from spec, returning a
// descriptive error instead of panicking when the spec is invalid:
// non-positive Nodes or ProcsPerNode, a negative Racks, or Nodes not a
// multiple of Racks (each rack must hold the same number of compute
// nodes).
func NewMachineErr(spec MachineSpec) (*Machine, error) {
	if spec.Nodes == 0 {
		spec.Nodes = 1
	}
	if spec.ProcsPerNode == 0 {
		spec.ProcsPerNode = 16
	}
	var topo *Topology
	var err error
	if spec.Racks != 0 {
		if spec.Racks < 0 {
			return nil, fmt.Errorf("rmalocks: invalid MachineSpec: negative Racks %d", spec.Racks)
		}
		topo, err = topology.New([]int{1, spec.Racks, spec.Nodes}, spec.ProcsPerNode)
	} else {
		topo, err = topology.New([]int{1, spec.Nodes}, spec.ProcsPerNode)
	}
	if err != nil {
		return nil, fmt.Errorf("rmalocks: invalid MachineSpec: %w", err)
	}
	return rma.NewMachineConfig(topo, rma.Config{Seed: spec.Seed, TimeLimit: spec.TimeLimit, Engine: spec.Engine, Trace: spec.Trace, Faults: spec.Faults}), nil
}

// NewMachineForProcs builds a two-level machine hosting exactly p
// processes at the paper's 16 processes per node.
func NewMachineForProcs(p int) *Machine {
	return rma.NewMachine(topology.ForProcs(p, 16))
}

// Scheme registry (internal/scheme, see DESIGN.md "Scheme registry &
// tunables"): lock schemes, their capabilities and their typed tunables
// — the paper's T_DC / T_R / T_L,i parameter space (Figure 1) — are
// enumerable data. NewLock validates tunables against each scheme's
// declared specs and returns typed errors instead of silently
// defaulting or panicking.
type (
	// Lock is the unified capability-checked lock handle: every scheme
	// presents the RWMutex interface (mutex-only schemes acquire
	// exclusively on reads), plus Name/Caps/Underlying introspection.
	Lock = scheme.Lock
	// SchemeDescriptor declares one registered scheme: name, aliases,
	// capabilities and tunable specs.
	SchemeDescriptor = scheme.Descriptor
	// SchemeTunable declares one tunable: key, doc, default and range.
	SchemeTunable = scheme.TunableSpec
	// SchemeCaps is the capability bitmask of a scheme.
	SchemeCaps = scheme.Caps
	// Tunables maps tunable keys ("TR", "TL2", ...) to values.
	Tunables = scheme.Tunables
)

// Scheme capability bits.
const (
	// CapMutex marks schemes offering mutual exclusion (all of them).
	CapMutex = scheme.CapMutex
	// CapRW marks schemes with genuine reader-writer semantics.
	CapRW = scheme.CapRW
	// CapTimeout marks schemes supporting bounded (timeout) acquires;
	// MCS-queue schemes lack it — a queued node cannot be unlinked — and
	// are typed-rejected (CapabilityError) when a fault profile requests
	// acquire timeouts.
	CapTimeout = scheme.CapTimeout
)

// CapabilityError reports a scheme asked for a capability it lacks
// (e.g. acquire timeouts on an MCS-queue lock); match with errors.As.
type CapabilityError = scheme.CapabilityError

// TryRWMutex is the bounded-acquire view of a lock: TryAcquire*For
// either enter within the virtual-time budget or abandon cleanly.
type TryRWMutex = locks.TryRWMutex

// AsTimedLock resolves a registry lock's bounded-acquire view; ok is
// false when the scheme lacks CapTimeout.
func AsTimedLock(l Lock) (TryRWMutex, bool) { return scheme.AsTimed(l) }

// TuneOption sets tunables for NewLock.
type TuneOption func(Tunables)

// Tune sets a single tunable, e.g. Tune("TR", 500) or Tune("TL2", 16).
func Tune(key string, value int64) TuneOption {
	return func(t Tunables) { t[key] = value }
}

// TuneLevels sets a per-level tunable family from level 1 (the root)
// downwards: TuneLevels("TL", 16, 32) sets TL1=16, TL2=32.
func TuneLevels(key string, values ...int64) TuneOption {
	return func(t Tunables) {
		for i, v := range values {
			t[key+strconv.Itoa(i+1)] = v
		}
	}
}

// NewLock allocates one lock of the named scheme on m through the
// registry, validating the tunables against the scheme's declared
// specs (typed errors for unknown schemes, unknown tunables and
// out-of-range values). Lookup is case-insensitive ("rma-rw" works).
// Call before m.Run.
//
//	lock, err := rmalocks.NewLock(m, "RMA-RW",
//		rmalocks.Tune("TR", 500), rmalocks.TuneLevels("TL", 16, 32))
func NewLock(m *Machine, name string, opts ...TuneOption) (Lock, error) {
	t := Tunables{}
	for _, opt := range opts {
		opt(t)
	}
	return scheme.New(m, name, t)
}

// Schemes lists every registered lock scheme's canonical name in
// presentation order (the paper's mutex baselines first, then the RW
// locks).
func Schemes() []string { return scheme.Names() }

// Describe returns the named scheme's descriptor: capabilities plus
// its tunables with documented defaults and validity ranges.
func Describe(name string) (SchemeDescriptor, error) { return scheme.Describe(name) }

// MCSParams configures the topology-aware RMA-MCS lock.
//
// Deprecated: use NewLock with Tune/TuneLevels options instead.
type MCSParams struct {
	// TL holds the locality thresholds T_L,i (index = level, 1-based;
	// entry 0 ignored). Zero entries take the default (32).
	TL []int64
}

// NewRMAMCS allocates the paper's topology-aware distributed MCS lock
// (§3.5) on m. Call before m.Run.
//
// Deprecated: use NewLock(m, "RMA-MCS", ...) for validated, registry-
// dispatched construction; this wrapper remains for source
// compatibility.
func NewRMAMCS(m *Machine, p MCSParams) *rmamcs.Lock {
	return rmamcs.NewConfig(m, rmamcs.Config{TL: p.TL})
}

// NewDMCS allocates the topology-oblivious distributed MCS lock (§2.4).
//
// Deprecated: use NewLock(m, "D-MCS").
func NewDMCS(m *Machine) *dmcs.Lock { return dmcs.New(m) }

// NewFoMPISpin allocates the foMPI-style centralized spinlock baseline.
//
// Deprecated: use NewLock(m, "foMPI-Spin").
func NewFoMPISpin(m *Machine) *fompi.SpinLock { return fompi.NewSpin(m) }

// NewFoMPIRW allocates the foMPI-style centralized Reader-Writer lock
// baseline.
//
// Deprecated: use NewLock(m, "foMPI-RW").
func NewFoMPIRW(m *Machine) *fompi.RWLock { return fompi.NewRW(m) }

// RWParams configures the RMA-RW lock (the paper's three-dimensional
// parameter space, Figure 1).
//
// Deprecated: use NewLock with Tune/TuneLevels options instead.
type RWParams struct {
	// TDC is the distributed-counter threshold T_DC: one physical
	// counter every TDC-th process. Default: one per compute node.
	TDC int
	// TR is the reader threshold T_R. Default 1000.
	TR int64
	// TL holds the locality thresholds T_L,i; T_W = Π T_L,i.
	TL []int64
}

// NewRMARW allocates the paper's topology-aware distributed Reader-Writer
// lock (§3) on m. Call before m.Run.
//
// Deprecated: use NewLock(m, "RMA-RW", ...) for validated, registry-
// dispatched construction; this wrapper remains for source
// compatibility.
func NewRMARW(m *Machine, p RWParams) *rmarw.Lock {
	return rmarw.NewConfig(m, rmarw.Config{TDC: p.TDC, TR: p.TR, TL: p.TL})
}

// Workload subsystem (see DESIGN.md, "The workload subsystem"): a
// pluggable benchmark layer that runs any lock scheme against any
// critical-section workload under any contention profile, with
// deterministic, seed-reproducible results.
type (
	// Workload supplies the critical-section body of a benchmark
	// iteration (setup, per-iteration body, result extraction).
	Workload = workload.Workload
	// Profile is a contention generator deciding per-iteration intent.
	Profile = workload.Profile
	// Intent is one iteration's decision: lock index, read/write mode,
	// post-release think time.
	Intent = workload.Intent
	// WorkloadSpec configures one harness run (scheme × workload ×
	// profile on a machine).
	WorkloadSpec = workload.Spec
	// WorkloadReport is the unified throughput/latency outcome.
	WorkloadReport = workload.Report

	// UniformProfile picks locks uniformly with a fixed writer fraction.
	UniformProfile = workload.Uniform
	// BurstyProfile alternates burst and idle phases.
	BurstyProfile = workload.Bursty
	// RWSweepProfile sweeps the writer fraction over time.
	RWSweepProfile = workload.RWSweep

	// EmptyWorkload is the empty critical section (lock cost only).
	EmptyWorkload = workload.Empty
	// SharedOpWorkload performs one remote access per CS.
	SharedOpWorkload = workload.SharedOp
	// CounterComputeWorkload increments a shared counter plus local work.
	CounterComputeWorkload = workload.CounterCompute
	// DHTWorkload runs hashtable operations inside the CS.
	DHTWorkload = workload.DHTOps
)

// WorkloadSchemes lists every lock scheme the workload harness can run.
var WorkloadSchemes = workload.Schemes

// NewZipfProfile builds a Zipf-skewed contention profile over numLocks
// locks with skew exponent s (<0 selects 1.2; 0 degenerates to a
// uniform draw) and writer fraction fw.
func NewZipfProfile(numLocks int, s, fw float64) *workload.Zipf {
	return workload.NewZipf(numLocks, s, fw)
}

// RunWorkload executes one workload benchmark and returns its report.
// Results are a deterministic function of (spec, spec.Seed) — including
// under fault injection (spec.Faults).
func RunWorkload(spec WorkloadSpec) (WorkloadReport, error) {
	return workload.Run(spec)
}

// Fault injection (internal/fault, see DESIGN.md "Fault injection &
// graceful degradation"): a seeded deterministic perturbation layer —
// RTT jitter, link congestion windows, straggler ranks, stall
// intervals — plus bounded-timeout acquires with capped exponential
// backoff for CapTimeout schemes. The fault schedule is a pure
// function of (machine seed, profile seed, rank, per-rank event
// index), so faulted runs stay byte-identical across all engines.
type FaultProfile = fault.Profile

// ParseFaults parses the workbench fault grammar, e.g.
// "jitter=0.2,stragglers=4x1%,stall=50us@0.01,timeout=200us"; unknown
// keys and malformed values yield typed errors (fault.UnknownKeyError,
// fault.ValueError).
func ParseFaults(spec string) (*FaultProfile, error) { return fault.Parse(spec) }

// ErrRetriesExhausted is the typed abort sentinel a bounded-acquire
// run fails with when a rank exhausts its retry budget under
// onexhaust=abort; match with errors.Is on RunWorkload's error.
var ErrRetriesExhausted = workload.ErrRetriesExhausted

// Sweep engine (internal/sweep, see DESIGN.md "The sweep engine"):
// scheme × workload × profile × P grids executed host-parallel on a
// bounded worker pool, merged in canonical cell order (byte-identical
// for any worker count), persisted as JSON baselines, and diffed for
// perf regressions.
type (
	// SweepGrid enumerates a parameter grid into independent cells.
	SweepGrid = sweep.Grid
	// SweepCell is one independent simulation of a sweep.
	SweepCell = sweep.Cell
	// SweepKey identifies a grid cell (scheme/workload/profile/P, plus
	// the canonical tunables encoding when the cell is tuned).
	SweepKey = sweep.Key
	// SweepTunableAxis is one sweepable tunable dimension of the grid
	// (the paper's lock parameter space as a cross-product axis).
	SweepTunableAxis = sweep.TunableAxis
	// SweepOptions bounds the worker pool and enables -check mode.
	SweepOptions = sweep.Options
	// SweepCellResult is the merged outcome of one cell.
	SweepCellResult = sweep.CellResult
	// SweepRunFile is the persisted JSON baseline format (results/).
	SweepRunFile = sweep.RunFile
	// SweepDelta is a per-cell baseline comparison.
	SweepDelta = sweep.Delta
)

// RunSweep executes every cell on a bounded worker pool and merges the
// results in canonical cell order: output is byte-identical regardless
// of the worker count.
func RunSweep(cells []SweepCell, opts SweepOptions) ([]SweepCellResult, error) {
	return sweep.Run(cells, opts)
}

// SweepTable renders merged sweep results as the workbench's aligned
// grid table (canonical cell order, byte-identical for any worker
// count).
func SweepTable(title string, results []SweepCellResult) string {
	return sweep.Table(title, results).String()
}

// SaveSweep persists a sweep run as a JSON baseline; LoadSweep reads
// one back.
func SaveSweep(path, label string, results []SweepCellResult) error {
	return sweep.Save(path, sweep.NewRunFile(label, results))
}

// LoadSweep reads a baseline persisted by SaveSweep.
func LoadSweep(path string) (SweepRunFile, error) { return sweep.Load(path) }

// CompareSweeps diffs a current run against a baseline per cell; use
// sweep.Regressions-style filtering via the returned deltas.
func CompareSweeps(base, cur []SweepCellResult) []SweepDelta {
	return sweep.Compare(base, cur)
}

// ApplySweepDegradation joins each faulted cell of a fault-axis sweep
// (SweepGrid.Faults) to its fault-free sibling and derives graceful-
// degradation metrics in place: tail-latency inflation (p99_infl,
// p999_infl) and, for traced grids, the Jain fairness delta.
func ApplySweepDegradation(results []SweepCellResult) { sweep.ApplyDegradation(results) }

// Sweep service & result cache (cmd/sweepd, internal/cache,
// internal/jobq; see DESIGN.md "Sweep service & result cache"): grids
// submitted as JSON over HTTP become jobs on a bounded pool, and cells
// resolve against a content-addressed result cache keyed by a
// canonical encoding of everything that affects a cell's result —
// resubmitting a grid with one changed axis recomputes only the
// dirtied cells, and results stay byte-identical to a cold local run
// regardless of cache state, worker count, or job placement.
type (
	// ResultCache is the content-addressed cell-result store: an
	// in-memory LRU under a byte budget backed by a one-file-per-entry
	// on-disk layout (atomic write-then-rename, corruption-tolerant
	// load).
	ResultCache = cache.Store
	// ResultCacheReport summarizes a cache directory load: entries
	// found, entries admitted to memory, corrupt files skipped.
	ResultCacheReport = cache.LoadReport
	// ResultCacheStats is a point-in-time cache counter snapshot.
	ResultCacheStats = cache.Stats
	// SweepCellCache is the cache hook of the sweep engine: RunSweep
	// consults it per cell when SweepOptions.Cache is set.
	SweepCellCache = sweep.CellCache

	// JobManager schedules submitted grids as jobs: bounded concurrent
	// jobs starting in submission order, per-job progress and
	// cancellation, cache-aware cell scheduling.
	JobManager = jobq.Manager
	// JobConfig wires a JobManager: worker-pool width, concurrent-job
	// bound, cell cache, and observability hooks.
	JobConfig = jobq.Config
	// Job is one submitted sweep with its lifecycle state.
	Job = jobq.Job
	// JobStatus is the wire view of a job's state and progress counts.
	JobStatus = jobq.Status
	// SweepWireError names a grid field that cannot cross the wire.
	SweepWireError = sweep.WireError
)

// ErrSweepCanceled is the typed sentinel RunSweep returns when
// SweepOptions.Cancel fires mid-sweep; match with errors.Is.
var ErrSweepCanceled = sweep.ErrCanceled

// ErrJobsDraining rejects submissions to a JobManager that is shutting
// down gracefully; match with errors.Is.
var ErrJobsDraining = jobq.ErrDraining

// OpenResultCache opens (or creates) a persistent result cache rooted
// at dir with the given in-memory byte budget (<= 0 selects 64 MiB;
// entries beyond the budget stay on disk and are reloaded on demand).
// Corrupt entries are skipped and reported, never fatal.
func OpenResultCache(dir string, budgetBytes int64) (*ResultCache, ResultCacheReport, error) {
	return cache.Open(dir, budgetBytes)
}

// NewSweepCellCache adapts a ResultCache to the sweep engine's cache
// hook (SweepOptions.Cache / JobConfig.Cache).
func NewSweepCellCache(c *ResultCache) SweepCellCache { return cache.NewResultStore(c) }

// NewJobManager builds an idle job manager; pair it with jobq.NewAPI
// to serve the sweepd HTTP job API, or use cmd/sweepd for the
// assembled daemon.
func NewJobManager(cfg JobConfig) *JobManager { return jobq.NewManager(cfg) }

// EncodeSweepGrid encodes a grid as the sweepd wire format (POST
// /jobs). Grids carrying process-local state (trace sinks, MemStats)
// are rejected with a typed SweepWireError naming the field.
func EncodeSweepGrid(g SweepGrid) ([]byte, error) { return sweep.EncodeGrid(g) }

// DecodeSweepGrid decodes a wire-format grid, rejecting unknown
// fields; the decoded grid enumerates exactly the submitter's cells.
func DecodeSweepGrid(data []byte) (SweepGrid, error) { return sweep.DecodeGrid(data) }

// Tracing & analysis (internal/trace, see DESIGN.md "Tracing &
// analysis"): deterministic event capture of scheduler handoffs, RMA
// operations and lock protocols, with fairness/locality analyses,
// Perfetto-loadable exports, and replay validation. The merged stream
// is byte-identical across scheduler engines and coalescing modes for
// the semantic classes (differential-tested).
type (
	// TraceSink owns the per-rank event buffers of one traced run.
	TraceSink = trace.Sink
	// TraceEvent is one fixed-size captured event.
	TraceEvent = trace.Event
	// TraceClass is the bitmask of captured event classes.
	TraceClass = trace.Class
	// TraceAnalysis is the one-stop summary of a merged event stream.
	TraceAnalysis = trace.Analysis
)

// Trace class masks re-exported for sink construction.
const (
	TraceSched    = trace.ClassSched
	TraceOps      = trace.ClassOp
	TraceLocks    = trace.ClassLock
	TraceCharge   = trace.ClassCharge
	TraceSemantic = trace.ClassSemantic
	TraceAll      = trace.ClassAll
)

// NewTraceSink builds a trace sink capturing the given classes (0 =
// the semantic set). Attach it to MachineSpec.Trace or
// WorkloadSpec.Trace; read the canonical stream with Events() after
// the run.
func NewTraceSink(mask TraceClass) *TraceSink { return trace.New(mask) }

// AnalyzeTrace summarizes a traced machine run: Jain fairness over
// per-rank acquisitions, the handoff-locality histogram over the
// machine's topology, wait-queue depth and per-rank acquire waits.
func AnalyzeTrace(m *Machine, sink *TraceSink) TraceAnalysis {
	topo := m.Topology()
	return trace.Summarize(sink.Events(), topo.Procs(), topo.Distance, topo.MaxDistance())
}

// WriteChromeTrace exports a sink's stream as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing); label names the run.
func WriteChromeTrace(w io.Writer, m *Machine, sink *TraceSink, label string) error {
	topo := m.Topology()
	return trace.WriteChrome(w, sink.Events(), trace.Meta{Label: label, P: topo.Procs(), PPN: topo.ProcsPerLeaf()})
}

// WriteTraceCSV exports a sink's stream as raw event CSV.
func WriteTraceCSV(w io.Writer, sink *TraceSink) error {
	return trace.WriteCSV(w, sink.Events())
}

// ValidateTrace replays a merged event stream and checks capture and
// lock-protocol invariants (mutual exclusion, matched acquire/release,
// canonical order); see trace.Validate.
func ValidateTrace(events []TraceEvent) error { return trace.Validate(events) }
