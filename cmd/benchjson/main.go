// Command benchjson converts `go test -bench -benchmem` output into the
// repository's persisted benchmark-trajectory JSON (BENCH_<pr>.json).
// Future PRs gate on these files: the scheduler fast path, harness and
// sweep benchmarks all leave a machine-readable ns/op + allocs/op record
// per PR, so a regression is a diff away instead of an archaeology
// project. The format is documented in DESIGN.md ("Benchmark
// trajectory").
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson -auto
//	go run ./cmd/benchjson -auto -in results/bench.txt
//	go run ./cmd/benchjson -pr 3 -in results/bench.txt -out BENCH_3.json
//
// -auto numbers the output itself: it writes BENCH_<n>.json for n one
// past the highest existing trajectory index in -dir, so `make bench`
// grows the trajectory file set without anyone hardcoding the next
// number. When -pr is omitted it defaults to that same derived index
// (also without -auto, e.g. for CI's bench-smoke.json artifact).
//
// Lines that are not benchmark results (pkg: headers are tracked for
// attribution) are ignored, so the raw `tee` output of `make bench` can
// be fed in unchanged.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and
	// GOMAXPROCS suffix, e.g. "BenchmarkAdvanceUncontended-8".
	Name string `json:"name"`
	// Package is the import path from the preceding "pkg:" header.
	Package string `json:"package"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op figure.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp come from -benchmem (0 when absent).
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Metrics holds any extra b.ReportMetric columns (e.g. "ops/run").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_<pr>.json schema.
type File struct {
	Schema     string      `json:"schema"` // "rmalocks-bench-trajectory/v1"
	PR         int         `json:"pr"`
	Go         string      `json:"go,omitempty"`  // "go1.22.1" toolchain line, if present
	CPU        string      `json:"cpu,omitempty"` // "cpu:" header, if present
	Benchmarks []Benchmark `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func main() {
	var (
		pr   = flag.Int("pr", 0, "PR number recorded in the trajectory entry (default: the next trajectory index in -dir)")
		in   = flag.String("in", "", "input file (default stdin)")
		out  = flag.String("out", "", "output file (default stdout; exclusive with -auto)")
		auto = flag.Bool("auto", false, "write BENCH_<n>.json in -dir, n = one past the highest existing index")
		dir  = flag.String("dir", ".", "directory scanned for existing BENCH_<n>.json trajectories")
		pkgs = flag.String("packages", "", "comma-separated package-substring filter (default: keep all)")
	)
	flag.Parse()
	if *auto && *out != "" {
		fmt.Fprintln(os.Stderr, "benchjson: -auto and -out are mutually exclusive")
		os.Exit(2)
	}
	if *pr <= 0 {
		n, err := nextBenchIndex(*dir)
		if err != nil {
			fatal(err)
		}
		*pr = n
	}
	if *auto {
		*out = filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", *pr))
		if _, err := os.Stat(*out); err == nil {
			// An explicit -pr can point at an occupied slot; never
			// overwrite a persisted trajectory.
			fmt.Fprintf(os.Stderr, "benchjson: %s already exists (pass a different -pr)\n", *out)
			os.Exit(2)
		}
	}
	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	file, err := parse(r, *pr, splitFilter(*pkgs))
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks written to %s\n", len(file.Benchmarks), *out)
}

func parse(r io.Reader, pr int, filter []string) (File, error) {
	file := File{Schema: "rmalocks-bench-trajectory/v1", PR: pr, Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"):
			continue
		case strings.HasPrefix(line, "cpu: "):
			file.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			continue
		case strings.HasPrefix(line, "go: "):
			file.Go = strings.TrimSpace(strings.TrimPrefix(line, "go: "))
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if !keep(pkg, filter) {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: m[1], Package: pkg, Iterations: iters}
		if err := parseCols(&b, m[3]); err != nil {
			return file, fmt.Errorf("benchjson: line %q: %w", line, err)
		}
		file.Benchmarks = append(file.Benchmarks, b)
	}
	return file, sc.Err()
}

// parseCols parses the measurement columns: alternating "<value> <unit>"
// pairs, e.g. "38.84 ns/op  0 B/op  0 allocs/op  3200 ops/run".
func parseCols(b *Benchmark, rest string) error {
	fields := strings.Fields(rest)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return fmt.Errorf("bad value %q", fields[i])
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return nil
}

// benchName matches persisted trajectory files.
var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// nextBenchIndex returns one past the highest BENCH_<n>.json index in
// dir (1 when none exist), so the trajectory file set grows
// monotonically without hardcoded names.
func nextBenchIndex(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("benchjson: scan %s: %w", dir, err)
	}
	max := 0
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, err := strconv.Atoi(m[1]); err == nil && n > max {
			max = n
		}
	}
	return max + 1, nil
}

func keep(pkg string, filter []string) bool {
	if len(filter) == 0 {
		return true
	}
	for _, f := range filter {
		if strings.Contains(pkg, f) {
			return true
		}
	}
	return false
}

func splitFilter(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
