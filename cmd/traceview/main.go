// Command traceview summarizes trace files exported by `workbench
// -trace` (Chrome trace-event JSON, the same files Perfetto loads): it
// rebuilds the machine topology from the embedded metadata and prints
// the per-cell analyses of internal/trace — acquisitions and Jain
// fairness per rank, the handoff-locality histogram (the paper's
// locality claim, measured), acquire-wait percentiles, peak wait-queue
// depth, and RMA op counts.
//
// Usage:
//
//	workbench -schemes RMA-MCS,D-MCS -p 32 -trace results/trace.json
//	traceview results/trace*.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"rmalocks/internal/stats"
	"rmalocks/internal/topology"
	"rmalocks/internal/trace"
)

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

type chromeFile struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData"`
}

func main() {
	top := flag.Int("top", 4, "number of slowest ranks to list by P99 acquire wait")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: traceview [-top n] trace.json [more.json ...]")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		if err := view(path, *top); err != nil {
			fmt.Fprintf(os.Stderr, "traceview: %s: %v\n", path, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func metaInt(m map[string]any, key string) int {
	if v, ok := m[key].(float64); ok {
		return int(v)
	}
	return 0
}

func view(path string, top int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("not a trace-event file: %w", err)
	}
	label, _ := f.OtherData["label"].(string)
	p, ppn := metaInt(f.OtherData, "p"), metaInt(f.OtherData, "ppn")
	if p <= 0 || ppn <= 0 {
		return fmt.Errorf("missing machine shape in otherData (p=%d ppn=%d)", p, ppn)
	}
	topo := topology.ForProcs(p, ppn)

	type hold struct {
		tid  int
		lock float64
		c    float64 // acquire clock (ns)
	}
	var holds []hold
	acquired := make([]int64, p)
	var waits []float64
	perRank := make([][]float64, p)
	type edge struct {
		ts float64
		d  int
	}
	var depth []edge
	perLock := map[int][]float64{}
	ops := map[string]int64{}

	for _, e := range f.TraceEvents {
		switch {
		case e.Ph == "X" && e.Cat == "lock":
			if e.Tid >= 0 && e.Tid < p {
				acquired[e.Tid]++
			}
			l, _ := e.Args["lock"].(float64)
			c, _ := e.Args["c"].(float64)
			holds = append(holds, hold{tid: e.Tid, lock: l, c: c})
		case e.Ph == "X" && e.Cat == "wait":
			waits = append(waits, e.Dur)
			if e.Tid >= 0 && e.Tid < p {
				perRank[e.Tid] = append(perRank[e.Tid], e.Dur)
			}
			if l, ok := e.Args["lock"].(float64); ok {
				perLock[int(l)] = append(perLock[int(l)], e.Dur)
			}
			depth = append(depth, edge{e.Ts, 1}, edge{e.Ts + e.Dur, -1})
		case e.Ph == "i" && e.Cat == "rma":
			ops[e.Name]++
		}
	}

	// Handoff locality: consecutive holders per lock, ordered by the
	// raw acquire clock embedded in args.c.
	sort.SliceStable(holds, func(i, j int) bool { return holds[i].c < holds[j].c })
	hist := make([]int64, topo.MaxDistance()+1)
	last := map[float64]int{}
	var handoffs int64
	for _, h := range holds {
		if prev, ok := last[h.lock]; ok && h.tid >= 0 && h.tid < p {
			hist[topo.Distance(prev, h.tid)]++
			handoffs++
		}
		last[h.lock] = h.tid
	}

	sort.Slice(depth, func(i, j int) bool { return depth[i].ts < depth[j].ts })
	cur, maxDepth := 0, 0
	for _, d := range depth {
		cur += d.d
		if cur > maxDepth {
			maxDepth = cur
		}
	}

	fmt.Printf("== %s: %s (P=%d, ppn=%d, %s)\n", path, label, p, ppn, topo)
	var totalAcq int64
	for _, c := range acquired {
		totalAcq += c
	}
	fmt.Printf("events=%d acquisitions=%d Jain-fairness=%.4f max-wait-depth=%d\n",
		len(f.TraceEvents), totalAcq, trace.Jain(acquired), maxDepth)
	if handoffs > 0 {
		fmt.Printf("handoff locality (distance: count, share):")
		for d, c := range hist {
			fmt.Printf("  d%d: %d (%.1f%%)", d, c, 100*float64(c)/float64(handoffs))
		}
		intra := int64(0)
		for d := 0; d < topo.MaxDistance() && d < len(hist); d++ {
			intra += hist[d]
		}
		fmt.Printf("  intra-element=%.1f%%\n", 100*float64(intra)/float64(handoffs))
	}
	if len(waits) > 0 {
		s := stats.Summarize(waits)
		fmt.Printf("acquire wait [µs]: mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f (n=%d)\n",
			s.Mean, s.P50, s.P95, s.P99, s.Max, s.N)
		type rankTail struct {
			rank int
			s    stats.Summary
		}
		var tails []rankTail
		for r, ws := range perRank {
			if len(ws) > 0 {
				tails = append(tails, rankTail{r, stats.Summarize(ws)})
			}
		}
		sort.Slice(tails, func(i, j int) bool { return tails[i].s.P99 > tails[j].s.P99 })
		n := top
		if n > len(tails) {
			n = len(tails)
		}
		if n > 0 {
			fmt.Printf("slowest ranks by P99 wait:")
			for _, t := range tails[:n] {
				fmt.Printf("  r%d: p99=%.2fµs (n=%d)", t.rank, t.s.P99, t.s.N)
			}
			fmt.Println()
		}
	}
	if len(perLock) > 0 && top > 0 {
		// Hottest locks by cumulative wait: where the contention budget
		// actually went, with the worst per-rank tail behind each lock.
		type lockWait struct {
			id    int
			total float64
			s     stats.Summary
		}
		hot := make([]lockWait, 0, len(perLock))
		for id, ws := range perLock {
			var total float64
			for _, w := range ws {
				total += w
			}
			hot = append(hot, lockWait{id: id, total: total, s: stats.Summarize(ws)})
		}
		sort.Slice(hot, func(i, j int) bool {
			if hot[i].total != hot[j].total {
				return hot[i].total > hot[j].total
			}
			return hot[i].id < hot[j].id
		})
		n := top
		if n > len(hot) {
			n = len(hot)
		}
		tb := &stats.Table{
			Title:   fmt.Sprintf("hottest locks by cumulative wait (top %d of %d)", n, len(hot)),
			Columns: []string{"Lock", "Waits", "Total[ms]", "Mean[us]", "P95[us]", "P99[us]", "Max[us]"},
		}
		for _, lw := range hot[:n] {
			tb.AddRow(fmt.Sprintf("L%d", lw.id), fmt.Sprint(lw.s.N),
				fmt.Sprintf("%.3f", lw.total/1e3), fmt.Sprintf("%.2f", lw.s.Mean),
				fmt.Sprintf("%.2f", lw.s.P95), fmt.Sprintf("%.2f", lw.s.P99),
				fmt.Sprintf("%.2f", lw.s.Max))
		}
		fmt.Println(tb.String())
	}
	if len(ops) > 0 {
		names := make([]string, 0, len(ops))
		for n := range ops {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("rma ops:")
		for _, n := range names {
			fmt.Printf("  %s=%d", n, ops[n])
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}
