// Command sweepd is sweep-as-a-service: the observability plane of
// `workbench -listen` plus a job API and a content-addressed result
// cache. Grids arrive as JSON over HTTP, run on a bounded worker pool,
// and resolve per cell against the cache — resubmitting a grid with one
// changed axis recomputes only the dirtied cells. Results are
// byte-identical to a local workbench run of the same grid, regardless
// of cache state, worker count, or job placement.
//
// Usage:
//
//	sweepd                                  # listen on 127.0.0.1:9139
//	sweepd -listen :9139 -j 8 -max-jobs 4
//	sweepd -cache-dir results/cache -cache-bytes 268435456
//
// API (also listed on GET /):
//
//	POST   /jobs              submit a grid (sweep wire JSON; ?label=)
//	GET    /jobs              list job statuses
//	GET    /jobs/{id}         one job's status
//	GET    /jobs/{id}/result  the finished run file (byte-stable JSON)
//	GET    /jobs/{id}/events  NDJSON progress stream until terminal
//	DELETE /jobs/{id}         cancel (in-flight cells drain)
//	GET    /metrics           Prometheus text (incl. sweepd_cache_*)
//	GET    /progress          multi-job NDJSON fan-in (?follow=1)
//
// Submit with `workbench -submit http://host:port <grid flags>`.
//
// SIGINT/SIGTERM shuts down gracefully: new jobs are refused, in-flight
// cells drain (their results still land in the cache), and the cache
// index is flushed before exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"rmalocks/internal/cache"
	"rmalocks/internal/jobq"
	"rmalocks/internal/obs"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:9139", "HTTP listen address for the job API and observability plane")
		cacheDir   = flag.String("cache-dir", "results/cache", "directory for the persistent result cache")
		cacheBytes = flag.Int64("cache-bytes", 256<<20, "in-memory result-cache budget in bytes (entries beyond it stay on disk)")
		maxJobs    = flag.Int("max-jobs", 2, "concurrently running jobs; excess submissions queue in arrival order")
		jobs       = flag.Int("j", 0, "per-job cell worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	d, err := newDaemon(config{
		cacheDir:   *cacheDir,
		cacheBytes: *cacheBytes,
		maxJobs:    *maxJobs,
		workers:    *jobs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	if err := d.listen(*listen); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[sweepd listening on %s; cache %s]\n", d.addr(), *cacheDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "[sweepd: %v — draining]\n", s)
	if err := d.shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "[sweepd: drained, cache flushed]")
}

// config assembles a daemon; separate from flags so tests can build
// daemons in-process.
type config struct {
	cacheDir   string
	cacheBytes int64
	maxJobs    int
	workers    int
}

// daemon owns the assembled stack: metrics registry, result cache, job
// manager, and the HTTP server they all mount on.
type daemon struct {
	metrics *obs.Metrics
	store   *cache.Store
	mgr     *jobq.Manager
	srv     *obs.Server
}

func newDaemon(cfg config) (*daemon, error) {
	metrics := obs.NewMetrics()
	store, rep, err := cache.Open(cfg.cacheDir, cfg.cacheBytes)
	if err != nil {
		return nil, err
	}
	if len(rep.Corrupt) > 0 {
		fmt.Fprintf(os.Stderr, "[sweepd: skipped %d corrupt cache entries: %v]\n", len(rep.Corrupt), rep.Corrupt)
	}
	if rep.Entries > 0 {
		fmt.Fprintf(os.Stderr, "[sweepd: cache holds %d entries, %d resident]\n", rep.Entries, rep.Loaded)
	}
	store.Register(metrics.Registry)

	multi := obs.NewMultiProgress()
	mgr := jobq.NewManager(jobq.Config{
		Workers: cfg.workers,
		MaxJobs: cfg.maxJobs,
		Cache:   cache.NewResultStore(store),
		Obs:     metrics,
		Multi:   multi,
	})
	srv := obs.NewServer(metrics.Registry, multi)
	jobq.NewAPI(mgr).Mount(srv)
	return &daemon{metrics: metrics, store: store, mgr: mgr, srv: srv}, nil
}

func (d *daemon) listen(addr string) error { return d.srv.Listen(addr) }
func (d *daemon) addr() string             { return d.srv.Addr() }

// shutdown drains gracefully: refuse new jobs, cancel the rest (their
// in-flight cells complete and land in the cache), flush the cache
// index, then close the listener.
func (d *daemon) shutdown() error {
	d.mgr.Shutdown()
	ferr := d.store.Flush()
	cerr := d.srv.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
