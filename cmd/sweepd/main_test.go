package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"rmalocks/internal/jobq"
	"rmalocks/internal/sweep"
	"rmalocks/internal/workload"
)

// slowGrid is big enough that a signal lands mid-job: ~12 cells at
// hundreds of ms each with a single worker.
func slowGrid() sweep.Grid {
	return sweep.Grid{
		Schemes:   []string{workload.SchemeRMAMCS, workload.SchemeRMARW},
		Workloads: []string{"empty"},
		Profiles:  []string{"uniform", "zipf"},
		Ps:        []int{64, 128, 256},
		Iters:     300,
		Locks:     8,
	}
}

func getStatus(t *testing.T, base, id string) jobq.Status {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobq.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestSignalDrainsMidJob sends the daemon a real SIGINT while a job is
// computing and checks the graceful-shutdown contract: the in-flight
// cell drains (completed work is kept and cached), the job ends
// canceled, new submissions are refused, and the cache index reaches
// disk.
func TestSignalDrainsMidJob(t *testing.T) {
	dir := t.TempDir()
	d, err := newDaemon(config{cacheDir: dir, cacheBytes: 1 << 20, maxJobs: 1, workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + d.addr()

	// The signal plumbing main uses, wired to the same shutdown path.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT)
	defer signal.Stop(sig)
	drained := make(chan error, 1)
	go func() {
		<-sig
		drained <- d.shutdown()
	}()

	body, err := sweep.EncodeGrid(slowGrid())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs?label=drain-test", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st jobq.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %d %v", resp.StatusCode, err)
	}

	// Wait until the job has computed at least one cell, then interrupt
	// ourselves mid-job.
	deadline := time.Now().Add(60 * time.Second)
	for getStatus(t, base, st.ID).Done == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never completed a cell")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("shutdown did not drain")
	}

	fin := d.mgr.Statuses()[0]
	switch fin.State {
	case jobq.StateCanceled:
		if fin.Done == 0 || fin.Done == fin.Cells {
			t.Fatalf("canceled job done=%d/%d; want a partial drain", fin.Done, fin.Cells)
		}
	case jobq.StateDone:
		// The job beat the signal; shutdown still drained cleanly.
	default:
		t.Fatalf("job left in state %s after drain", fin.State)
	}

	// Drained cells reached the cache, and the index was flushed.
	if st := d.store.Stats(); int(st.Hits)+int(st.Misses) == 0 || st.Bytes == 0 {
		t.Fatalf("cache empty after drain: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.json")); err != nil {
		t.Fatalf("cache index not flushed: %v", err)
	}

	// Draining daemons refuse new work.
	if _, err := d.mgr.Submit(slowGrid(), "late"); !errors.Is(err, jobq.ErrDraining) {
		t.Fatalf("submit after drain: %v, want ErrDraining", err)
	}
}

// TestDaemonWarmRestart reuses a cache directory across daemon
// processes: the second daemon serves the whole grid from cache and the
// results match byte for byte.
func TestDaemonWarmRestart(t *testing.T) {
	dir := t.TempDir()
	grid := sweep.Grid{
		Schemes:   []string{workload.SchemeDMCS, workload.SchemeRMARW},
		Workloads: []string{"empty"},
		Profiles:  []string{"uniform", "zipf"},
		Ps:        []int{8, 16},
		Iters:     12,
		FW:        0.2,
		Locks:     4,
	}

	runJob := func() ([]byte, jobq.Status) {
		d, err := newDaemon(config{cacheDir: dir, cacheBytes: 1 << 20, maxJobs: 1, workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		base := "http://" + d.addr()
		body, err := sweep.EncodeGrid(grid)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/jobs?label=restart", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var st jobq.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit: %d %v", resp.StatusCode, err)
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			if st = getStatus(t, base, st.ID); st.State == jobq.StateDone {
				break
			}
			if st.State == jobq.StateFailed || time.Now().After(deadline) {
				t.Fatalf("job state %s (%s)", st.State, st.Error)
			}
			time.Sleep(5 * time.Millisecond)
		}
		resp, err = http.Get(base + "/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result: %d %s", resp.StatusCode, data)
		}
		if err := d.shutdown(); err != nil {
			t.Fatal(err)
		}
		return data, st
	}

	cold, st1 := runJob()
	warm, st2 := runJob()
	if st1.Cached != 0 {
		t.Fatalf("cold daemon cached %d cells", st1.Cached)
	}
	if st2.Cached != st2.Cells {
		t.Fatalf("warm daemon cached %d/%d cells", st2.Cached, st2.Cells)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm-restart result differs from cold result")
	}
}
