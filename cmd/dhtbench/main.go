// Command dhtbench regenerates Figure 6 of the paper: the distributed
// hashtable case study, comparing foMPI-A (raw atomics), foMPI-RW and
// RMA-RW across process counts and writer fractions.
//
// Usage:
//
//	dhtbench -scale medium
//	dhtbench -p 64 -fw 0.05 -ops 50      # one configuration
package main

import (
	"flag"
	"fmt"
	"os"

	"rmalocks/internal/bench"
)

func main() {
	var (
		scale = flag.String("scale", "quick", "sweep size: quick, medium, full")
		p     = flag.Int("p", 0, "run a single configuration with this process count")
		fw    = flag.Float64("fw", 0.2, "writer fraction for -p mode")
		ops   = flag.Int("ops", 20, "operations per process for -p mode")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	if *p > 0 {
		for _, scheme := range []string{bench.SchemeFoMPIA, bench.SchemeFoMPIRW, bench.SchemeRMARW} {
			r, err := bench.RunDHT(bench.DHTParams{Scheme: scheme, P: *p, FW: *fw, OpsPerProc: *ops})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%-10s P=%-5d FW=%-5.3f total=%.3f ms (inserts=%d lookups=%d stored=%d)\n",
				r.Scheme, r.P, r.FW, r.TotalTimeMs, r.Inserts, r.Lookups, r.Stored)
		}
		return
	}
	sc, err := bench.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	t, _, err := bench.Figure6(sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *csv {
		fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
	} else {
		fmt.Println(t.String())
	}
}
