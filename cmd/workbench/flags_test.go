package main

import (
	"errors"
	"reflect"
	"testing"

	"rmalocks/internal/fault"
	"rmalocks/internal/sweep"
	"rmalocks/internal/workload"
)

// TestSplitNamesTypedErrors pins satellite behaviour: a typo'd entry in
// any comma-list flag fails with a typed UnknownNameError naming the
// flag and the accepted set, and an empty list is rejected outright —
// neither may silently enumerate a wrong (or empty) grid.
func TestSplitNamesTypedErrors(t *testing.T) {
	if got, err := splitSchemes("all"); err != nil || !reflect.DeepEqual(got, workload.Schemes) {
		t.Fatalf("splitSchemes(all) = %v, %v", got, err)
	}
	// Registry aliases and case-folding must keep working.
	if _, err := splitSchemes("rmarw, foMPI-Spin"); err != nil {
		t.Fatalf("alias entry rejected: %v", err)
	}

	var unknown *UnknownNameError
	_, err := splitSchemes("RMA-RW,RMA-MSC")
	if !errors.As(err, &unknown) {
		t.Fatalf("typo'd scheme: got %v, want *UnknownNameError", err)
	}
	if unknown.Flag != "schemes" || unknown.Name != "RMA-MSC" {
		t.Errorf("UnknownNameError = %+v", unknown)
	}

	if _, err := splitWorkloads("empty,dth"); !errors.As(err, &unknown) || unknown.Name != "dth" {
		t.Errorf("typo'd workload: got %v", err)
	}
	if _, err := splitProfiles("unifrom"); !errors.As(err, &unknown) || unknown.Name != "unifrom" {
		t.Errorf("typo'd profile: got %v", err)
	}

	var empty *EmptyListError
	for _, s := range []string{"", ",", " , "} {
		if _, err := splitSchemes(s); !errors.As(err, &empty) {
			t.Errorf("splitSchemes(%q): got %v, want *EmptyListError", s, err)
		}
	}
}

// TestValidateTuneKeys pins the -tune typo guard: an axis key no
// selected scheme accepts fails eagerly instead of being dropped by
// the per-scheme projection (which would sweep nothing, silently).
func TestValidateTuneKeys(t *testing.T) {
	ok := []sweep.TunableAxis{{Key: "TR", Values: []int64{250}}}
	if err := validateTuneKeys([]string{workload.SchemeRMARW}, ok); err != nil {
		t.Fatalf("valid axis rejected: %v", err)
	}
	// TR is RMA-RW's key; a foMPI-Spin-only grid must reject it.
	var unknown *UnknownNameError
	err := validateTuneKeys([]string{workload.SchemeFoMPISpin}, ok)
	if !errors.As(err, &unknown) || unknown.Flag != "tune" || unknown.Name != "TR" {
		t.Fatalf("foreign axis: got %v, want *UnknownNameError for TR", err)
	}
	if err := validateTuneKeys([]string{workload.SchemeFoMPISpin, workload.SchemeRMARW}, ok); err != nil {
		t.Errorf("axis accepted by one of two schemes rejected: %v", err)
	}
	bad := []sweep.TunableAxis{{Key: "TX", Values: []int64{1}}}
	if err := validateTuneKeys(workload.Schemes, bad); !errors.As(err, &unknown) || unknown.Name != "TX" {
		t.Errorf("unknown key: got %v", err)
	}
}

// TestFaultAxesSet pins the -faults flag grammar: full profile specs
// parse through the fault package (typed errors included), duplicates
// by canonical form are rejected.
func TestFaultAxesSet(t *testing.T) {
	var axes faultAxes
	if err := axes.Set("jitter=0.2,stall=50us@0.05"); err != nil {
		t.Fatal(err)
	}
	if err := axes.Set("timeout=200us,retries=4"); err != nil {
		t.Fatal(err)
	}
	if len(axes) != 2 || axes[0].Jitter != 0.2 || axes[1].Timeout != 200_000 {
		t.Fatalf("parsed axes = %s", axes.String())
	}

	// "stall=50000@0.05,jitter=0.2" canonicalizes to the first profile.
	err := axes.Set("stall=50000@0.05,jitter=0.2")
	if err == nil {
		t.Fatal("duplicate profile accepted")
	}

	var uk *fault.UnknownKeyError
	if err := axes.Set("jiter=0.2"); !errors.As(err, &uk) {
		t.Errorf("typo'd fault key: got %v, want *fault.UnknownKeyError", err)
	}
	var ve *fault.ValueError
	if err := axes.Set("jitter=-3"); !errors.As(err, &ve) {
		t.Errorf("bad fault value: got %v, want *fault.ValueError", err)
	}
	if len(axes) != 2 {
		t.Fatalf("failed Set mutated the axes: %s", axes.String())
	}
}
