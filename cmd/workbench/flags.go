package main

// Flag-list parsing and validation. Every comma-list flag is checked
// eagerly at startup with a typed error: a typo'd scheme, workload,
// profile or tunable key must fail the invocation, not silently
// enumerate an empty (or unfiltered) grid — the sweep engine's
// per-scheme axis projection is exactly the mechanism that would
// otherwise swallow an unknown -tune key without a trace.

import (
	"fmt"
	"strings"

	"rmalocks/internal/fault"
	"rmalocks/internal/scheme"
	"rmalocks/internal/sweep"
	"rmalocks/internal/workload"
)

// UnknownNameError reports a comma-list flag entry that names nothing:
// the flag it arrived on, the offending entry, and the accepted names.
type UnknownNameError struct {
	Flag string
	Name string
	Have []string
}

func (e *UnknownNameError) Error() string {
	return fmt.Sprintf("workbench: -%s: unknown entry %q (have %s)",
		e.Flag, e.Name, strings.Join(e.Have, ","))
}

// EmptyListError reports a comma-list flag that parsed to no entries
// (e.g. -schemes "" or -schemes ","): an empty axis would enumerate
// zero cells and print an empty table that looks like success.
type EmptyListError struct {
	Flag string
}

func (e *EmptyListError) Error() string {
	return fmt.Sprintf("workbench: -%s: empty list", e.Flag)
}

// splitNames splits a comma list ("all" selects the full set) and
// validates every entry through valid — a typed UnknownNameError for
// the first unknown entry, EmptyListError when nothing remains.
func splitNames(flagName, s string, all []string, valid func(string) bool) ([]string, error) {
	if s == "all" {
		return all, nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		if !valid(p) {
			return nil, &UnknownNameError{Flag: flagName, Name: p, Have: all}
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, &EmptyListError{Flag: flagName}
	}
	return out, nil
}

// splitSchemes validates scheme entries through the registry (alias-
// and case-aware), so -schemes rmarw keeps working.
func splitSchemes(s string) ([]string, error) {
	return splitNames("schemes", s, workload.Schemes, func(name string) bool {
		_, err := scheme.Describe(name)
		return err == nil
	})
}

func splitWorkloads(s string) ([]string, error) {
	return splitNames("workloads", s, workload.WorkloadNames, func(name string) bool {
		_, err := workload.ByName(name)
		return err == nil
	})
}

func splitProfiles(s string) ([]string, error) {
	return splitNames("profiles", s, workload.ProfileNames, func(name string) bool {
		for _, have := range workload.ProfileNames {
			if name == have {
				return true
			}
		}
		return false
	})
}

// validateTuneKeys rejects -tune axes no selected scheme accepts: the
// per-scheme projection (sweep.axesFor) would drop such an axis from
// every scheme, silently sweeping nothing. The error lists the union
// of tunable keys the selected schemes do accept.
func validateTuneKeys(schemes []string, axes []sweep.TunableAxis) error {
	for _, ax := range axes {
		accepted := false
		var have []string
		seen := map[string]bool{}
		for _, s := range schemes {
			d, err := scheme.Describe(s)
			if err != nil {
				return nil // unknown scheme: the run surfaces its own typed error
			}
			if d.Accepts(ax.Key, 0) {
				accepted = true
			}
			for _, ts := range d.Tunables {
				if !seen[ts.Key] {
					seen[ts.Key] = true
					have = append(have, ts.Key)
				}
			}
		}
		if !accepted {
			return &UnknownNameError{Flag: "tune", Name: ax.Key, Have: have}
		}
	}
	return nil
}

// faultAxes accumulates repeated -faults flags into the grid's
// fault-injection axis. Each flag value is one full profile spec
// (internal/fault grammar, e.g.
// "jitter=0.2,stragglers=4x1%,stall=50us@0.01"); parse errors surface
// the fault package's typed UnknownKeyError / ValueError, and two
// flags canonicalizing identically are rejected like a duplicate
// -tune axis (they would enumerate colliding cell Keys).
type faultAxes []*fault.Profile

func (f *faultAxes) String() string {
	parts := make([]string, len(*f))
	for i, p := range *f {
		parts[i] = p.Canonical()
	}
	return strings.Join(parts, " ")
}

func (f *faultAxes) Set(s string) error {
	p, err := fault.Parse(s)
	if err != nil {
		return err
	}
	for _, prev := range *f {
		if prev.Canonical() == p.Canonical() {
			return fmt.Errorf("duplicate -faults profile %q", p.Canonical())
		}
	}
	*f = append(*f, p)
	return nil
}
