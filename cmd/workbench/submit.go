package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"time"

	"rmalocks/internal/jobq"
	"rmalocks/internal/sweep"
)

// submitError wraps a client-mode failure with the step that failed.
// Client mode never falls back to computing locally: a dead or
// misbehaving daemon is an error the user must see, not a silent mode
// switch that burns local CPU.
type submitError struct {
	Op  string
	Err error
}

func (e *submitError) Error() string { return fmt.Sprintf("workbench -submit: %s: %v", e.Op, e.Err) }
func (e *submitError) Unwrap() error { return e.Err }

// httpStatusError reports an unexpected daemon response.
type httpStatusError struct {
	Op     string
	Status int
	Body   string
}

func (e *httpStatusError) Error() string {
	body := strings.TrimSpace(e.Body)
	if len(body) > 200 {
		body = body[:200] + "..."
	}
	return fmt.Sprintf("workbench -submit: %s: daemon returned %d: %s", e.Op, e.Status, body)
}

// submitFlagError names a flag that cannot ride along on a submission —
// rejected up front, before the daemon is ever contacted.
type submitFlagError struct{ Flag string }

func (e *submitFlagError) Error() string {
	return fmt.Sprintf("workbench: -%s cannot be combined with -submit (the daemon runs the sweep; local-only modes don't apply)", e.Flag)
}

// checkSubmitFlags rejects flag combinations that only make sense for a
// local run.
func checkSubmitFlags(opts runOpts) error {
	for _, f := range []struct {
		set  bool
		name string
	}{
		{opts.check, "check"},
		{opts.trace != "", "trace"},
		{opts.tracecsv != "", "tracecsv"},
		{opts.grid.MemStats, "memstats"},
		{opts.listen != "", "listen"},
		{opts.metricsOut != "", "metrics-out"},
		{opts.cpuprof != "", "cpuprofile"},
		{opts.memprof != "", "memprofile"},
	} {
		if f.set {
			return &submitFlagError{Flag: f.name}
		}
	}
	return nil
}

// runSubmit is client mode: post the grid to a sweepd daemon, stream
// its progress events, fetch the result, and render/persist/diff it
// exactly like a local run would.
func runSubmit(daemon string, opts runOpts, title string) int {
	if err := submitRemote(daemon, opts, title); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

func submitRemote(daemon string, opts runOpts, title string) error {
	base := strings.TrimSuffix(daemon, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	body, err := sweep.EncodeGrid(opts.grid)
	if err != nil {
		return &submitError{Op: "encode grid", Err: err}
	}

	start := time.Now()
	resp, err := http.Post(base+"/jobs?label="+url.QueryEscape(title), "application/json", bytes.NewReader(body))
	if err != nil {
		return &submitError{Op: "submit", Err: err}
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return &httpStatusError{Op: "submit", Status: resp.StatusCode, Body: string(raw)}
	}
	var st jobq.Status
	if err := json.Unmarshal(raw, &st); err != nil {
		return &submitError{Op: "submit", Err: err}
	}
	fmt.Fprintf(os.Stderr, "[submitted %s: %d cells at %s]\n", st.ID, st.Cells, base)

	// Stream progress events to stderr until the job is terminal.
	resp, err = http.Get(base + "/jobs/" + st.ID + "/events")
	if err != nil {
		return &submitError{Op: "stream events", Err: err}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		fmt.Fprintln(os.Stderr, sc.Text())
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		return &submitError{Op: "stream events", Err: err}
	}

	// The stream ended; read the verdict.
	resp, err = http.Get(base + "/jobs/" + st.ID)
	if err != nil {
		return &submitError{Op: "fetch status", Err: err}
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return &submitError{Op: "fetch status", Err: err}
	}
	if st.State != jobq.StateDone {
		return &submitError{Op: "job " + st.ID,
			Err: fmt.Errorf("ended %s: %s", st.State, st.Error)}
	}

	resp, err = http.Get(base + "/jobs/" + st.ID + "/result")
	if err != nil {
		return &submitError{Op: "fetch result", Err: err}
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &httpStatusError{Op: "fetch result", Status: resp.StatusCode, Body: string(data)}
	}
	var rf sweep.RunFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return &submitError{Op: "decode result", Err: err}
	}

	if opts.out != "" {
		// Persist the daemon's bytes verbatim: the file is byte-stable
		// across resubmissions, cache states, and daemons.
		if err := os.MkdirAll(filepath.Dir(opts.out), 0o755); err != nil {
			return &submitError{Op: "save result", Err: err}
		}
		if err := os.WriteFile(opts.out, data, 0o644); err != nil {
			return &submitError{Op: "save result", Err: err}
		}
		fmt.Fprintf(os.Stderr, "[result saved to %s]\n", opts.out)
	}

	tb := sweep.Table(title, rf.Cells)
	if opts.csv {
		fmt.Printf("# %s\n%s", tb.Title, tb.CSV())
	} else {
		fmt.Println(tb.String())
	}
	fmt.Fprintf(os.Stderr, "[%d cells in %v; %d served from cache]\n",
		st.Done, time.Since(start).Round(time.Millisecond), st.Cached)

	if opts.baseline != "" {
		if err := diffBaseline(opts.baseline, rf.Cells, opts.tol); err != nil {
			return err
		}
	}
	return nil
}
