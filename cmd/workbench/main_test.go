package main

import (
	"strings"
	"testing"

	"rmalocks/internal/sweep"
)

// TestTuneAxesSet pins the -tune flag grammar, in particular that a
// repeated axis key is rejected at flag parsing with a clear error —
// the first line of defense before Grid.Cells' typed
// DuplicateAxisError.
func TestTuneAxesSet(t *testing.T) {
	var axes tuneAxes
	if err := axes.Set("TR=250,500,1000"); err != nil {
		t.Fatal(err)
	}
	if err := axes.Set("TL2=16,32"); err != nil {
		t.Fatal(err)
	}
	want := []sweep.TunableAxis{
		{Key: "TR", Values: []int64{250, 500, 1000}},
		{Key: "TL2", Values: []int64{16, 32}},
	}
	if len(axes) != len(want) {
		t.Fatalf("parsed %d axes, want %d", len(axes), len(want))
	}
	for i, ax := range axes {
		if ax.Key != want[i].Key || len(ax.Values) != len(want[i].Values) {
			t.Errorf("axis %d = %+v, want %+v", i, ax, want[i])
		}
	}

	err := axes.Set("TR=42")
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("repeated -tune key: err = %v, want duplicate-axis error", err)
	}
	if len(axes) != 2 {
		t.Fatalf("failed Set mutated the axes: %+v", axes)
	}

	for _, bad := range []string{"", "TR", "=1,2", "TR=", "TR=a,b"} {
		var fresh tuneAxes
		if err := fresh.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted malformed input", bad)
		}
	}
}
