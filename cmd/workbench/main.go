// Command workbench drives the unified workload subsystem: it enumerates
// a scheme × workload × contention-profile grid, runs every cell through
// the generic harness, and prints one aligned result table (or CSV).
//
// Usage:
//
//	workbench                               # all 5 schemes × empty CS × uniform,zipf,bursty
//	workbench -profiles uniform,zipf,bursty,sweep -workloads empty,sharedop
//	workbench -schemes RMA-RW,foMPI-RW -workloads dht -fw 0.2 -locks 8
//	workbench -p 128 -iters 100 -seed 3 -check -csv
//
// Every run is a deterministic function of the seed; -check re-runs each
// cell and verifies the reports are byte-identical.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"rmalocks/internal/stats"
	"rmalocks/internal/workload"
)

func main() {
	var (
		schemes   = flag.String("schemes", "all", "comma-separated lock schemes, or 'all' ("+strings.Join(workload.Schemes, ",")+")")
		workloads = flag.String("workloads", "empty", "comma-separated workloads, or 'all' ("+strings.Join(workload.WorkloadNames, ",")+")")
		profiles  = flag.String("profiles", "uniform,zipf,bursty", "comma-separated contention profiles, or 'all' ("+strings.Join(workload.ProfileNames, ",")+")")
		p         = flag.Int("p", 64, "process count")
		ppn       = flag.Int("ppn", 16, "processes per node")
		iters     = flag.Int("iters", 50, "measured cycles per process")
		seed      = flag.Int64("seed", 1, "machine seed (runs are deterministic per seed)")
		fw        = flag.Float64("fw", 0.1, "writer fraction (the sweep profile sweeps 0→fw, or 0→1 when fw is 0)")
		nlocks    = flag.Int("locks", 8, "lock-set size for multi-lock profiles (clamped to p for dht)")
		zipfS     = flag.Float64("zipfs", 1.2, "Zipf skew exponent")
		check     = flag.Bool("check", false, "run every cell twice and verify byte-identical reports")
		csv       = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	schemeList := split(*schemes, workload.Schemes)
	workloadList := split(*workloads, workload.WorkloadNames)
	profileList := split(*profiles, workload.ProfileNames)

	tb := &stats.Table{
		Title: fmt.Sprintf("Workload grid: P=%d ppn=%d iters=%d seed=%d fw=%g", *p, *ppn, *iters, *seed, *fw),
		Columns: []string{"Scheme", "Workload", "Profile", "Locks",
			"Mops", "MeanLat[us]", "P95Lat[us]", "Makespan[ms]", "Reads", "Writes", "Extra"},
	}
	start := time.Now()
	cells := 0
	for _, scheme := range schemeList {
		for _, wname := range workloadList {
			for _, pname := range profileList {
				rep, nl, err := runCell(scheme, wname, pname, *p, *ppn, *iters, *seed, *fw, *nlocks, *zipfS)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				if *check {
					rep2, _, err := runCell(scheme, wname, pname, *p, *ppn, *iters, *seed, *fw, *nlocks, *zipfS)
					if err != nil {
						fmt.Fprintln(os.Stderr, err)
						os.Exit(1)
					}
					if rep.Fingerprint() != rep2.Fingerprint() {
						fmt.Fprintf(os.Stderr, "workbench: %s/%s/%s NOT reproducible with seed %d\n",
							scheme, wname, pname, *seed)
						os.Exit(1)
					}
				}
				tb.AddRow(rep.Scheme, rep.Workload, rep.Profile, fmt.Sprint(nl),
					stats.FmtF(rep.ThroughputMops), stats.FmtF(rep.Latency.Mean), stats.FmtF(rep.Latency.P95),
					stats.FmtF(rep.MakespanMs), fmt.Sprint(rep.Reads), fmt.Sprint(rep.Writes), extraString(rep))
				cells++
			}
		}
	}
	if *csv {
		fmt.Printf("# %s\n%s", tb.Title, tb.CSV())
	} else {
		fmt.Println(tb.String())
	}
	status := "deterministic per seed (re-run with -check to verify)"
	if *check {
		status = "all cells reproduced byte-identically"
	}
	fmt.Fprintf(os.Stderr, "[%d cells in %v; %s]\n", cells, time.Since(start).Round(time.Millisecond), status)
}

func runCell(scheme, wname, pname string, p, ppn, iters int, seed int64, fw float64, nlocks int, zipfS float64) (workload.Report, int, error) {
	wl, err := workload.ByName(wname)
	if err != nil {
		return workload.Report{}, 0, err
	}
	// A sharded DHT needs one volume per lock: clamp the set to P.
	if wname == "dht" && nlocks > p {
		nlocks = p
	}
	prof, err := workload.ProfileByName(pname, workload.ProfileOpts{
		Locks: nlocks, FW: fw, ZipfS: zipfS, Span: iters,
	})
	if err != nil {
		return workload.Report{}, 0, err
	}
	rep, err := workload.Run(workload.Spec{
		Scheme:       scheme,
		P:            p,
		ProcsPerNode: ppn,
		Seed:         seed,
		Iters:        iters,
		Profile:      prof,
		Workload:     wl,
	})
	return rep, prof.Locks(), err
}

func extraString(rep workload.Report) string {
	if len(rep.Extra) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(rep.Extra))
	for _, k := range []string{"stored", "overflows", "counter"} {
		if v, ok := rep.Extra[k]; ok {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

func split(s string, all []string) []string {
	if s == "all" {
		return all
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
