// Command workbench drives the unified workload subsystem through the
// host-parallel sweep engine (internal/sweep): it enumerates a
// scheme × workload × profile × P grid, executes the cells on a bounded
// worker pool, and prints one aligned result table (or CSV) merged in
// canonical cell order — byte-identical for any -j.
//
// Usage:
//
//	workbench                               # all 5 schemes × empty CS × uniform,zipf,bursty
//	workbench -profiles all -ps 16,32,64,128,256,512   # the paper's P sweep
//	workbench -schemes RMA-RW,foMPI-RW -workloads dht -fw 0.2 -locks 8
//	workbench -schemes RMA-RW -tune TR=250,500,1000 -tune TL2=16,32
//	                                        # sweep the paper's lock parameter space
//	workbench -faults 'jitter=0.2,stragglers=4x1%,stall=50us@0.01'
//	                                        # fault axis: each profile next to a fault-free
//	                                        # baseline cell, with degradation metrics derived
//	workbench -schemes foMPI-Spin -faults 'stall=100us@0.1,timeout=200us'
//	                                        # bounded acquires (CapTimeout schemes only)
//	workbench -p 128 -iters 100 -seed 3 -check -csv -j 4
//	workbench -out results/sweep.json       # persist a baseline
//	workbench -baseline results/sweep.json  # diff against it (perf gate)
//	workbench -schemes RMA-MCS -p 32 -trace out.json   # capture + export a trace
//	                                        # (Perfetto-loadable; see cmd/traceview)
//	workbench -submit http://127.0.0.1:9139 -out results/sweep.json
//	                                        # run the grid on a sweepd daemon: streams
//	                                        # progress, fetches the byte-stable result
//
// Every run is a deterministic function of the seed; -check re-runs each
// cell and verifies the reports are byte-identical.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rmalocks/internal/rma"
	"rmalocks/internal/sweep"
	"rmalocks/internal/trace"
	"rmalocks/internal/workload"
)

// runOpts carries the parsed, validated flags into run.
type runOpts struct {
	grid             sweep.Grid
	jobs             int
	check, csv       bool
	out, baseline    string
	tol              float64
	cpuprof, memprof string
	trace, tracecsv  string
	listen           string
	metricsOut       string
}

func main() {
	var (
		schemes   = flag.String("schemes", "all", "comma-separated lock schemes, or 'all' ("+strings.Join(workload.Schemes, ",")+")")
		workloads = flag.String("workloads", "empty", "comma-separated workloads, or 'all' ("+strings.Join(workload.WorkloadNames, ",")+")")
		profiles  = flag.String("profiles", "uniform,zipf,bursty", "comma-separated contention profiles, or 'all' ("+strings.Join(workload.ProfileNames, ",")+")")
		p         = flag.Int("p", 64, "process count (ignored when -ps is set)")
		psFlag    = flag.String("ps", "", "comma-separated process-count sweep, e.g. 16,32,64,128,256,512")
		ppn       = flag.Int("ppn", 16, "processes per node")
		iters     = flag.Int("iters", 50, "measured cycles per process")
		seed      = flag.Int64("seed", 1, "machine seed (runs are deterministic per seed)")
		fw        = flag.Float64("fw", 0.1, "writer fraction (the sweep profile sweeps 0→fw, or 0→1 when fw is 0)")
		nlocks    = flag.Int("locks", 8, "lock-set size for multi-lock profiles (clamped to p for dht)")
		zipfS     = flag.Float64("zipfs", 1.2, "Zipf skew exponent")
		jobs      = flag.Int("j", 0, "worker pool size (0 = GOMAXPROCS; 1 = serial)")
		check     = flag.Bool("check", false, "run every cell twice and verify byte-identical reports")
		csv       = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		out       = flag.String("out", "", "persist the run as JSON (e.g. results/sweep.json)")
		baseline  = flag.String("baseline", "", "compare against a persisted run and report per-cell deltas")
		tol       = flag.Float64("tol", 0, "throughput-regression tolerance in percent for -baseline (exit 1 beyond it)")
		engine    = flag.String("engine", "", "scheduler engine: '' or 'fast' (token-owned fast path), 'ref' (reference; differential runs), 'psim' (conservative parallel)")
		memstats  = flag.Bool("memstats", false, "report heap/sys bytes per rank in each cell's Extra column (host-dependent; breaks byte-identical baseline diffs)")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file (go tool pprof)")
		memprof   = flag.String("memprofile", "", "write a heap profile (after GC) to this file on exit")
		traceOut  = flag.String("trace", "", "capture event traces and export Chrome trace-event JSON (Perfetto-loadable; summarize with traceview); multi-cell grids get one file per cell")
		tracecsv  = flag.String("tracecsv", "", "capture event traces and export raw event CSV; multi-cell grids get one file per cell")
		listen    = flag.String("listen", "", "serve the observability plane on this address (e.g. :0 or 127.0.0.1:9137): /metrics (Prometheus), /progress (NDJSON; ?follow=1 streams), /debug/pprof")
		submit    = flag.String("submit", "", "submit the grid to a sweepd daemon (e.g. http://127.0.0.1:9139) instead of computing locally: streams progress, fetches the byte-stable result (works with -out/-baseline/-csv; never falls back to a local run)")
		metricsOut = flag.String("metrics-out", "", "write the merged post-run metrics snapshot (counters, phase spans, psim gate metrics) as JSON to this file — a side channel, never part of reports or fingerprints")
	)
	var tunes tuneAxes
	flag.Var(&tunes, "tune", "tunables axis KEY=v1,v2,... (repeatable, e.g. -tune TR=250,500,1000 -tune TL2=16,32); cross-product applied to schemes accepting KEY")
	var faults faultAxes
	flag.Var(&faults, "faults", "fault-injection profile 'jitter=0.2,stragglers=4x1%,stall=50us@0.01,timeout=200us' (repeatable; each profile becomes an extra cell next to a fault-free baseline cell)")
	flag.Parse()

	// Validate before profiling starts: flag errors must exit cleanly,
	// not crash a sweep worker or truncate a profile.
	switch *engine {
	case "", rma.EngineFast, rma.EngineRef, rma.EnginePSim:
	default:
		fmt.Fprintf(os.Stderr, "workbench: unknown -engine %q (have '', %q, %q, %q)\n",
			*engine, rma.EngineFast, rma.EngineRef, rma.EnginePSim)
		os.Exit(2)
	}
	schemeList, err := splitSchemes(*schemes)
	if err == nil {
		err = validateTuneKeys(schemeList, tunes)
	}
	var workloadList []string
	if err == nil {
		workloadList, err = splitWorkloads(*workloads)
	}
	var profileList []string
	if err == nil {
		profileList, err = splitProfiles(*profiles)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Flags whose zero value is meaningful must not be re-defaulted by
	// the grid: -seed 0 and -zipfs 0 set the explicit-zero markers so
	// Grid.fill leaves them alone (see Grid's zero-value semantics).
	var seedSet, zipfSSet bool
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "seed":
			seedSet = true
		case "zipfs":
			zipfSSet = true
		}
	})

	opts := runOpts{
		grid: sweep.Grid{
			Schemes:   schemeList,
			Workloads: workloadList,
			Profiles:  profileList,
			Ps:        parsePs(*psFlag, *p),
			Iters:     *iters, ProcsPerNode: *ppn, Seed: *seed, SeedSet: seedSet,
			FW: *fw, Locks: *nlocks, ZipfS: *zipfS, ZipfSSet: zipfSSet, Engine: *engine,
			MemStats: *memstats,
			Tunables: tunes,
			Faults:   faults,
		},
		jobs: *jobs, check: *check, csv: *csv,
		out: *out, baseline: *baseline, tol: *tol,
		cpuprof: *cpuprof, memprof: *memprof,
		trace: *traceOut, tracecsv: *tracecsv,
		listen: *listen, metricsOut: *metricsOut,
	}
	if opts.trace != "" || opts.tracecsv != "" {
		// Tracing a sweep fills the per-cell Jain/locality columns and
		// keeps each cell's raw sink for export.
		opts.grid.Trace = trace.ClassSemantic
	}
	if *submit != "" {
		// Client mode: the daemon computes; local-only modes are
		// rejected eagerly rather than silently ignored or run locally.
		if err := checkSubmitFlags(opts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		os.Exit(runSubmit(*submit, opts, gridTitle(opts.grid)))
	}
	// The work happens inside run so that its deferred profile writers
	// always execute; os.Exit only fires out here, after they flushed.
	os.Exit(run(opts))
}

// gridTitle renders the run label shared by local tables, persisted
// baselines, and daemon submissions.
func gridTitle(grid sweep.Grid) string {
	title := fmt.Sprintf("Workload grid: Ps=%v ppn=%d iters=%d seed=%d fw=%g",
		grid.Ps, grid.ProcsPerNode, grid.Iters, grid.Seed, grid.FW)
	if axes := (tuneAxes)(grid.Tunables); len(axes) > 0 {
		title += " tune[" + axes.String() + "]"
	}
	if axes := (faultAxes)(grid.Faults); len(axes) > 0 {
		title += " faults[" + axes.String() + "]"
	}
	return title
}

func run(opts runOpts) int {
	if opts.cpuprof != "" {
		f, err := os.Create(opts.cpuprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "[cpu profile written to %s]\n", opts.cpuprof)
		}()
	}
	if opts.memprof != "" {
		defer func() {
			f, err := os.Create(opts.memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			fmt.Fprintf(os.Stderr, "[heap profile written to %s]\n", opts.memprof)
		}()
	}

	grid := opts.grid
	title := gridTitle(grid)

	var plane *obsPlane
	if opts.listen != "" || opts.metricsOut != "" {
		var err error
		if plane, err = newObsPlane(opts.listen, title); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer plane.close()
		grid.Obs = plane.grid()
	}

	start := time.Now()
	cells, err := grid.Cells()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	results, err := sweep.Run(cells, sweep.Options{Workers: opts.jobs, Check: opts.check, Progress: plane.progress()})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	mergeSpan := plane.span("merge")
	if len(grid.Faults) > 0 {
		// Join each faulted cell to its fault-free sibling and derive the
		// degradation metrics before anything renders or persists.
		sweep.ApplyDegradation(results)
	}

	tb := sweep.Table(title, results)
	if opts.csv {
		fmt.Printf("# %s\n%s", tb.Title, tb.CSV())
	} else {
		fmt.Println(tb.String())
	}
	status := "deterministic per seed (re-run with -check to verify)"
	if opts.check {
		status = "all cells reproduced byte-identically"
	}
	fmt.Fprintf(os.Stderr, "[%d cells in %v; %s]\n", len(results), time.Since(start).Round(time.Millisecond), status)

	if opts.out != "" {
		if err := sweep.Save(opts.out, sweep.NewRunFile(title, results)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "[baseline saved to %s]\n", opts.out)
	}
	mergeSpan.End()
	if opts.metricsOut != "" {
		if err := plane.writeMetrics(opts.metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if opts.trace != "" {
		if err := exportTraces(opts.trace, results, grid.ProcsPerNode, true); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if opts.tracecsv != "" {
		if err := exportTraces(opts.tracecsv, results, grid.ProcsPerNode, false); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if opts.baseline != "" {
		if err := diffBaseline(opts.baseline, results, opts.tol); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	return 0
}

// diffBaseline loads a persisted run, prints per-cell deltas, and
// errors when throughput regressed beyond tolPct on any cell.
func diffBaseline(path string, results []sweep.CellResult, tolPct float64) error {
	base, err := sweep.Load(path)
	if err != nil {
		return err
	}
	deltas := sweep.Compare(base.Cells, results)
	fmt.Println(sweep.CompareTable(fmt.Sprintf("Baseline diff vs %s", path), deltas).String())
	identical := 0
	for _, d := range deltas {
		if d.Identical {
			identical++
		}
	}
	fmt.Fprintf(os.Stderr, "[%d/%d cells byte-identical to baseline]\n", identical, len(deltas))
	if regs := sweep.Regressions(deltas, tolPct); len(regs) > 0 {
		for _, d := range regs {
			if !d.InCur {
				fmt.Fprintf(os.Stderr, "workbench: cell %s missing from current run\n", d.Key)
				continue
			}
			fmt.Fprintf(os.Stderr, "workbench: cell %s regressed %.2f%% (%.4f → %.4f mln/s)\n",
				d.Key, d.MopsPct, d.BaseMops, d.CurMops)
		}
		return fmt.Errorf("workbench: %d cell(s) regressed beyond %.2f%%", len(regs), tolPct)
	}
	return nil
}

// exportTraces writes one trace file per traced cell: the given path
// for a single-cell grid, otherwise the path with an index + cell-key
// slug inserted before the extension. chrome selects the trace-event
// JSON exporter (Perfetto), otherwise raw event CSV.
func exportTraces(path string, results []sweep.CellResult, ppn int, chrome bool) error {
	traced := results[:0:0]
	for _, r := range results {
		if r.Trace != nil {
			traced = append(traced, r)
		}
	}
	if len(traced) == 0 {
		return fmt.Errorf("workbench: no traced cells to export to %s", path)
	}
	for i, r := range traced {
		p := path
		if len(traced) > 1 {
			ext := filepath.Ext(path)
			name := fmt.Sprintf("%s_%s_%s_P%d", r.Key.Scheme, r.Key.Workload, r.Key.Profile, r.Key.P)
			if r.Key.Tunables != "" {
				name += "_" + r.Key.Tunables
			}
			if r.Key.Faults != "" {
				name += "_faults_" + r.Key.Faults
			}
			slug := strings.NewReplacer("/", "-", " ", "", ",", "_", "=", "").Replace(name)
			p = fmt.Sprintf("%s_%02d_%s%s", strings.TrimSuffix(path, ext), i, slug, ext)
		}
		f, err := os.Create(p)
		if err != nil {
			return err
		}
		events := r.Trace.Events()
		if chrome {
			err = trace.WriteChrome(f, events, trace.Meta{Label: r.Key.String(), P: r.Key.P, PPN: ppn})
		} else {
			err = trace.WriteCSV(f, events)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("workbench: export %s: %w", p, err)
		}
		fmt.Fprintf(os.Stderr, "[trace: %d events of cell %s written to %s]\n", len(events), r.Key, p)
	}
	return nil
}

// tuneAxes accumulates repeated -tune flags into sweep tunable axes.
type tuneAxes []sweep.TunableAxis

func (t *tuneAxes) String() string {
	var parts []string
	for _, ax := range *t {
		vals := make([]string, len(ax.Values))
		for i, v := range ax.Values {
			vals[i] = strconv.FormatInt(v, 10)
		}
		parts = append(parts, ax.Key+"="+strings.Join(vals, ","))
	}
	return strings.Join(parts, " ")
}

func (t *tuneAxes) Set(s string) error {
	key, list, ok := strings.Cut(s, "=")
	key = strings.TrimSpace(key)
	if !ok || key == "" {
		return fmt.Errorf("want KEY=v1,v2,..., got %q", s)
	}
	for _, ax := range *t {
		if ax.Key == key {
			return fmt.Errorf("duplicate -tune axis %q", key)
		}
	}
	var vals []int64
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return fmt.Errorf("bad value %q in -tune %s", part, s)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return fmt.Errorf("-tune %s has no values", s)
	}
	*t = append(*t, sweep.TunableAxis{Key: key, Values: vals})
	return nil
}

// parsePs parses the -ps sweep list, falling back to the single -p.
func parsePs(s string, single int) []int {
	if s == "" {
		return []int{single}
	}
	var ps []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "workbench: bad -ps entry %q\n", part)
			os.Exit(2)
		}
		ps = append(ps, v)
	}
	if len(ps) == 0 {
		return []int{single}
	}
	return ps
}
