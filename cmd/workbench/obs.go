package main

import (
	"encoding/json"
	"fmt"
	"os"

	"rmalocks/internal/obs"
	"rmalocks/internal/sweep"
)

// obsPlane bundles the workbench's observability wiring: the shared
// metric registry handed to every cell (sweep.Grid.Obs), the sweep
// progress tracker, and — with -listen — the HTTP server exposing both
// (/metrics, /progress, /debug/pprof). Nil when neither -listen nor
// -metrics-out was given, which keeps the whole subsystem at one nil
// check and the sweep byte-identical to an uninstrumented run.
type obsPlane struct {
	metrics *obs.Metrics
	prog    *obs.SweepProgress
	srv     *obs.Server
}

// newObsPlane builds the plane and, when listen is non-empty, binds the
// HTTP endpoint (reporting the resolved address on stderr, so -listen :0
// is scriptable).
func newObsPlane(listen, title string) (*obsPlane, error) {
	o := &obsPlane{
		metrics: obs.NewMetrics(),
		prog:    obs.NewSweepProgress(title),
	}
	if listen != "" {
		o.srv = obs.NewServer(o.metrics.Registry, o.prog)
		if err := o.srv.Listen(listen); err != nil {
			return nil, fmt.Errorf("workbench: -listen %s: %w", listen, err)
		}
		fmt.Fprintf(os.Stderr, "[obs: listening on http://%s (/metrics /progress /debug/pprof)]\n", o.srv.Addr())
	}
	return o, nil
}

// progress adapts the tracker to sweep.Options.Progress, avoiding the
// typed-nil-in-interface trap when the plane is disabled.
func (o *obsPlane) progress() sweep.Progress {
	if o == nil {
		return nil
	}
	return o.prog
}

// grid returns the metrics bundle for sweep.Grid.Obs (nil when off).
func (o *obsPlane) grid() *obs.Metrics {
	if o == nil {
		return nil
	}
	return o.metrics
}

// span opens a phase span (no-op when the plane is off).
func (o *obsPlane) span(name string) obs.Span {
	if o == nil {
		return obs.Span{}
	}
	return o.metrics.Span(name)
}

// writeMetrics persists the merged post-run snapshot — counters, gauges
// (including psim_gate_serial_fraction), histograms and the phase
// table — as indented JSON: the side-channel consumed by
// internal/adaptive and the bench trajectory, deliberately NOT part of
// any Report or fingerprint.
func (o *obsPlane) writeMetrics(path string) error {
	if o == nil {
		return nil
	}
	snap := o.metrics.Registry.Snapshot()
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("workbench: -metrics-out: %w", err)
	}
	fmt.Fprintf(os.Stderr, "[obs: metrics snapshot written to %s]\n", path)
	return nil
}

// close tears the HTTP endpoint down (no-op when off).
func (o *obsPlane) close() {
	if o != nil && o.srv != nil {
		o.srv.Close()
	}
}
