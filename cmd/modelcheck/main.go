// Command modelcheck runs the explicit-state verification of the lock
// protocols (the repository's substitute for the paper's SPIN/PROMELA
// checking, §4.4): exhaustive interleaving search for mutual exclusion
// and deadlock freedom.
//
// Usage:
//
//	modelcheck                 # default battery
//	modelcheck -procs 4 -iters 2
package main

import (
	"flag"
	"fmt"
	"os"

	"rmalocks/internal/model"
)

func main() {
	var (
		procs     = flag.Int("procs", 3, "processes for the mutex models")
		iters     = flag.Int("iters", 2, "lock acquisitions per process")
		maxStates = flag.Int("max-states", 4_000_000, "state-space cap")
	)
	flag.Parse()

	fail := false
	report := func(r model.Result) {
		fmt.Println(r)
		if r.Violation != nil || r.Deadlock {
			fail = true
		}
	}

	report(model.Check(model.SpinModel{Procs: *procs, Iters: *iters}, *maxStates))
	report(model.Check(model.DMCS{Procs: *procs, Iters: *iters}, *maxStates))
	for _, cfg := range []model.Tree{
		{Nodes: 2, ProcsPerNode: 1, Iters: *iters, TL: 1},
		{Nodes: 2, ProcsPerNode: 2, Iters: 1, TL: 1},
		{Nodes: 3, ProcsPerNode: 1, Iters: *iters, TL: 2},
	} {
		report(model.Check(cfg, *maxStates))
	}
	for _, cfg := range []model.RW{
		{Writers: 1, Readers: 1, Iters: *iters, TW: 2, TR: 1, AcceptReaderStarvation: true},
		{Writers: 2, Readers: 1, Iters: *iters, TW: 2, TR: 1, AcceptReaderStarvation: true},
		{Writers: 1, Readers: 2, Iters: 1, TW: 2, TR: 2, AcceptReaderStarvation: true},
		{Writers: 2, Readers: 2, Iters: 1, TW: 2, TR: 2, AcceptReaderStarvation: true},
	} {
		report(model.Check(cfg, *maxStates))
	}

	// The documented liveness corner: reader tail-starvation with T_R
	// below the number of readers per counter must be FOUND (that the
	// checker sees it is evidence the search is exhaustive).
	r := model.Check(model.RW{Writers: 0, Readers: 2, Iters: 2, TW: 2, TR: 1}, *maxStates)
	fmt.Printf("%v  (expected: DEADLOCK — documented reader tail-starvation at tiny T_R)\n", r)
	if !r.Deadlock {
		fail = true
	}

	if fail {
		fmt.Println("RESULT: FAIL")
		os.Exit(1)
	}
	fmt.Println("RESULT: all checks passed")
}
