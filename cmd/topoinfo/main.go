// Command topoinfo prints the machine model the simulator would use for a
// given configuration: element hierarchy, rank placement, the e(p,i) and
// c(p) mappings of the paper, and the latency model tables.
//
// Usage:
//
//	topoinfo -nodes 4 -ppn 16 -tdc 16
package main

import (
	"flag"
	"fmt"

	"rmalocks/internal/rma"
	"rmalocks/internal/topology"
)

func main() {
	var (
		nodes = flag.Int("nodes", 4, "compute nodes")
		racks = flag.Int("racks", 0, "racks (0 = two-level machine)")
		ppn   = flag.Int("ppn", 16, "processes per node")
		tdc   = flag.Int("tdc", 0, "T_DC to show counter placement (0 = one per node)")
	)
	flag.Parse()

	var topo *topology.Topology
	if *racks > 0 {
		topo = topology.MustNew([]int{1, *racks, *nodes}, *ppn)
	} else {
		topo = topology.TwoLevel(*nodes, *ppn)
	}
	fmt.Printf("machine: %v\n", topo)
	for i := 1; i <= topo.Levels(); i++ {
		fmt.Printf("level %d: %d elements", i, topo.Elements(i))
		if topo.Elements(i) <= 8 {
			fmt.Printf(" (leaders:")
			for e := 0; e < topo.Elements(i); e++ {
				fmt.Printf(" %d", topo.Leader(i, e))
			}
			fmt.Printf(")")
		}
		fmt.Println()
	}

	t := *tdc
	if t == 0 {
		t = *ppn
	}
	fmt.Printf("T_DC=%d: physical counters on ranks %v\n", t, topo.CounterRanks(t))

	lat := rma.DefaultLatency(topo.MaxDistance())
	fmt.Println("latency model (ns):")
	fmt.Printf("  distance:   ")
	for d := 0; d <= topo.MaxDistance(); d++ {
		fmt.Printf("%8d", d)
	}
	fmt.Printf("\n  data RTT:   ")
	for d := 0; d <= topo.MaxDistance(); d++ {
		fmt.Printf("%8d", lat.DataRTT[d])
	}
	fmt.Printf("\n  atomic RTT: ")
	for d := 0; d <= topo.MaxDistance(); d++ {
		fmt.Printf("%8d", lat.AtomicRTT[d])
	}
	fmt.Printf("\n  atomic occ: ")
	for d := 0; d <= topo.MaxDistance(); d++ {
		fmt.Printf("%8d", lat.AtomicOcc[d])
	}
	fmt.Println()

	fmt.Println("sample distances:")
	pairs := [][2]int{{0, 0}, {0, 1}}
	if topo.Procs() > *ppn {
		pairs = append(pairs, [2]int{0, *ppn})
	}
	if *racks > 0 && topo.Procs() > topo.Procs() / *racks {
		pairs = append(pairs, [2]int{0, topo.Procs() - 1})
	}
	for _, pr := range pairs {
		fmt.Printf("  dist(%d,%d) = %d\n", pr[0], pr[1], topo.Distance(pr[0], pr[1]))
	}
}
