// Command lockbench regenerates the microbenchmark figures of the paper's
// evaluation (Figures 3, 4 and 5) on the simulated machine.
//
// Usage:
//
//	lockbench -figure 3b -scale medium
//	lockbench -figure all -scale quick -csv
//
// Figures: 3a–3e (RMA-MCS vs D-MCS vs foMPI-Spin), 4a–4f (RMA-RW
// parameter studies), 5a–5c (RMA-RW vs foMPI-RW). Scales: quick, medium,
// full (the paper's 8…1024 process sweep).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rmalocks/internal/bench"
)

func main() {
	var (
		figure   = flag.String("figure", "all", "figure to regenerate (3a..3e, 4a..4f, 5a..5c, 6, or 'all')")
		ablation = flag.String("ablation", "", "run an ablation instead: locality, network, or 'all'")
		scale    = flag.String("scale", "quick", "sweep size: quick, medium, full")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	sc, err := bench.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *ablation != "" {
		names := []string{*ablation}
		if *ablation == "all" {
			names = bench.AblationNames
		}
		for _, name := range names {
			t, err := bench.RunAblation(name, sc)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ablation %s: %v\n", name, err)
				os.Exit(1)
			}
			if *csv {
				fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
			} else {
				fmt.Println(t.String())
			}
		}
		return
	}
	names := []string{*figure}
	if *figure == "all" {
		names = bench.FigureNames
	}
	for _, name := range names {
		start := time.Now()
		t, err := bench.RunFigure(name, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figure %s: %v\n", name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
		} else {
			fmt.Println(t.String())
		}
		fmt.Fprintf(os.Stderr, "[figure %s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}
