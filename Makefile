GO ?= go

# Sweep shape shared by `make sweep` (persist baseline) and
# `make compare` (re-run + per-cell diff against it).
SWEEP_FLAGS = -profiles uniform,zipf,bursty,sweep -ps 16,32,64

.PHONY: build test race bench bench-smoke grid sweep compare clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The PR number stamped into the persisted benchmark trajectory
# (BENCH_$(BENCH_PR).json); bump it alongside new perf PRs.
BENCH_PR = 3

# Benchmarks are benchstat-compatible: `make bench`, change code,
# `make bench` again, then `benchstat` the two results/bench.txt copies.
# Additionally persists the machine-readable trajectory BENCH_3.json
# (ns/op + allocs/op for the scheduler, harness and sweep benchmarks;
# schema in DESIGN.md) so future PRs can gate on it.
# Redirect-then-cat instead of `| tee`: a pipe would mask a failing
# benchmark behind tee's exit status and persist a truncated trajectory.
bench:
	@mkdir -p results
	$(GO) test -run '^$$' -bench . -benchmem ./... > results/bench.txt
	@cat results/bench.txt
	$(GO) run ./cmd/benchjson -pr $(BENCH_PR) -in results/bench.txt \
		-out BENCH_$(BENCH_PR).json \
		-packages internal/sim,internal/workload,internal/sweep

# Short bench pass over the perf-critical packages only; CI's bench-smoke
# job runs this and uploads both files as an artifact. Single source of
# the trajectory PR number (BENCH_PR above).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 100x \
		./internal/sim/... ./internal/workload/ ./internal/sweep/ \
		> bench-smoke.txt
	@cat bench-smoke.txt
	$(GO) run ./cmd/benchjson -pr $(BENCH_PR) -in bench-smoke.txt -out bench-smoke.json

# One full scheme × workload × profile grid with reproducibility check.
# Redirect-then-cat instead of `| tee`: a pipe would mask a failing
# -check behind tee's exit status.
grid:
	@mkdir -p results
	$(GO) run ./cmd/workbench -profiles uniform,zipf,bursty,sweep -check > results/grid.txt
	@cat results/grid.txt

# P-sweep across the grid, persisted as the perf baseline JSON.
sweep:
	@mkdir -p results
	$(GO) run ./cmd/workbench $(SWEEP_FLAGS) -out results/sweep.json > results/sweep.txt
	@cat results/sweep.txt

# Re-run the same grid and diff it per cell against the baseline.
compare:
	$(GO) run ./cmd/workbench $(SWEEP_FLAGS) -baseline results/sweep.json

clean:
	rm -rf results bench-smoke.txt bench-smoke.json
	$(GO) clean ./...
