GO ?= go

# Sweep shape shared by `make sweep` (persist baseline) and
# `make compare` (re-run + per-cell diff against it).
SWEEP_FLAGS = -profiles uniform,zipf,bursty,sweep -ps 16,32,64

.PHONY: build test race bench grid sweep compare clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmarks are benchstat-compatible: `make bench`, change code,
# `make bench` again, then `benchstat` the two results/bench.txt copies.
bench:
	@mkdir -p results
	$(GO) test -run '^$$' -bench . -benchmem ./... | tee results/bench.txt

# One full scheme × workload × profile grid with reproducibility check.
# Redirect-then-cat instead of `| tee`: a pipe would mask a failing
# -check behind tee's exit status.
grid:
	@mkdir -p results
	$(GO) run ./cmd/workbench -profiles uniform,zipf,bursty,sweep -check > results/grid.txt
	@cat results/grid.txt

# P-sweep across the grid, persisted as the perf baseline JSON.
sweep:
	@mkdir -p results
	$(GO) run ./cmd/workbench $(SWEEP_FLAGS) -out results/sweep.json > results/sweep.txt
	@cat results/sweep.txt

# Re-run the same grid and diff it per cell against the baseline.
compare:
	$(GO) run ./cmd/workbench $(SWEEP_FLAGS) -baseline results/sweep.json

clean:
	rm -rf results
	$(GO) clean ./...
