GO ?= go

.PHONY: build test race bench grid clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmarks are benchstat-compatible: `make bench`, change code,
# `make bench` again, then `benchstat` the two results/bench.txt copies.
bench:
	@mkdir -p results
	$(GO) test -run '^$$' -bench . -benchmem ./... | tee results/bench.txt

# One full scheme × workload × profile grid with reproducibility check.
grid:
	@mkdir -p results
	$(GO) run ./cmd/workbench -profiles uniform,zipf,bursty,sweep -check | tee results/grid.txt

clean:
	rm -rf results
	$(GO) clean ./...
