GO ?= go

# Sweep shape shared by `make sweep` (persist baseline) and
# `make compare` (re-run + per-cell diff against it).
SWEEP_FLAGS = -profiles uniform,zipf,bursty,sweep -ps 16,32,64

# Fault-injection sweep shape shared by `make faults` (persist baseline)
# and `make faults-compare` (re-run + diff). Two fault axes: a
# perturbation-only profile every scheme runs, and a stall profile with
# bounded acquires that projects onto the CapTimeout schemes.
FAULT_FLAGS = -profiles uniform,zipf -ps 16,64 \
	-faults 'jitter=0.2,stragglers=4x5%,stall=50us@0.02' \
	-faults 'stall=100us@0.05,timeout=200us'

.PHONY: help build test race bench bench-trajectory bench-smoke million-smoke scale grid sweep compare faults faults-compare trace obs-smoke sweepd-smoke paramspace faulttour clean

help:
	@echo "rmalocks targets:"
	@echo "  build / test / race    compile everything, run the test suite (+ -race)"
	@echo "  bench / bench-smoke    benchstat-compatible benchmarks (full / CI-short)"
	@echo "  grid                   full scheme x workload x profile grid with -check"
	@echo "  sweep / compare        persist the perf baseline / diff a re-run against it"
	@echo "  faults / faults-compare  same for the fault-injection degradation baseline"
	@echo "  trace                  capture + summarize a Perfetto-loadable event trace"
	@echo "  obs-smoke              sweep with the HTTP observability plane, scrape it"
	@echo "  sweepd-smoke           sweep-as-a-service end-to-end: cache hits + byte-identity"
	@echo "  million-smoke / scale  2^20-rank cell / weak-scaling study"
	@echo "  paramspace / faulttour example tours (parameter space, degradation)"
	@echo ""
	@echo "Sweep service (cmd/sweepd): run sweeps remotely with a persistent"
	@echo "content-addressed result cache — resubmitting a grid with one changed"
	@echo "axis recomputes only the dirtied cells:"
	@echo ""
	@echo "  go run ./cmd/sweepd -listen 127.0.0.1:9139 -cache-dir results/cache &"
	@echo "  go run ./cmd/workbench -submit 127.0.0.1:9139 -schemes D-MCS,RMA-RW \\"
	@echo "      -profiles uniform,zipf -ps 16,32 -out results/remote.json"
	@echo "  curl -s http://127.0.0.1:9139/metrics | grep sweepd_cache_"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmarks are benchstat-compatible: `make bench`, change code,
# `make bench` again, then `benchstat` the two results/bench.txt copies.
# Re-running bench never touches the persisted trajectory files — mint
# one explicitly with `make bench-trajectory` (once per perf PR).
# Redirect-then-cat instead of `| tee`: a pipe would mask a failing
# benchmark behind tee's exit status and persist a truncated trajectory.
bench:
	@mkdir -p results
	$(GO) test -run '^$$' -bench . -benchmem ./... > results/bench.txt
	@cat results/bench.txt

# Persist the machine-readable trajectory BENCH_<n>.json (ns/op +
# allocs/op for the scheduler, harness and sweep benchmarks; schema in
# DESIGN.md): benchjson -auto numbers the file one past the highest
# existing index, so every perf PR grows the trajectory set without
# hardcoding the next number. Run once per PR, after `make bench`.
bench-trajectory: bench
	$(GO) run ./cmd/benchjson -auto -in results/bench.txt \
		-packages internal/sim,internal/workload,internal/sweep,internal/scheme

# Short bench pass over the perf-critical packages only; CI's bench-smoke
# job runs this and uploads both files as an artifact. The recorded PR
# number is derived from the repository's trajectory files (next index).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 100x \
		./internal/sim/... ./internal/workload/ ./internal/sweep/ ./internal/scheme/ \
		> bench-smoke.txt
	@cat bench-smoke.txt
	$(GO) run ./cmd/benchjson -in bench-smoke.txt -out bench-smoke.json

# Million-rank smoke: one 2^20-rank cell through the memory-flat core.
# The uniform profile with fw=1/locks=1 draws no per-rank randomness, so
# the run allocates zero lazy RNGs; RMA-MCS is the O(P)-total-ops queue
# lock, so the event budget stays linear in P. -memstats reports heap
# and sys bytes per rank (goroutine stacks dominate the latter).
million-smoke:
	$(GO) run ./cmd/workbench -schemes RMA-MCS -workloads empty \
		-profiles uniform -fw 1 -locks 1 -ps 1048576 -iters 1 -memstats

# Weak-scaling study for the memory-flat core: P from 2^10 to 2^20 on
# the empty workload (pure lock handoff traffic) with per-rank memory
# cost columns. Host-dependent (-memstats feeds Extra, which feeds the
# fingerprint), so this baseline documents scaling shape — it is not a
# byte-identical compare gate like results/sweep.json.
scale:
	@mkdir -p results
	$(GO) run ./cmd/workbench -schemes RMA-MCS -workloads empty \
		-profiles uniform -fw 1 -locks 1 \
		-ps 1024,4096,16384,65536,262144,1048576 -iters 1 -memstats \
		-out results/scale.json > results/scale.txt
	@cat results/scale.txt

# One full scheme × workload × profile grid with reproducibility check.
# Redirect-then-cat instead of `| tee`: a pipe would mask a failing
# -check behind tee's exit status.
grid:
	@mkdir -p results
	$(GO) run ./cmd/workbench -profiles uniform,zipf,bursty,sweep -check > results/grid.txt
	@cat results/grid.txt

# P-sweep across the grid, persisted as the perf baseline JSON.
sweep:
	@mkdir -p results
	$(GO) run ./cmd/workbench $(SWEEP_FLAGS) -out results/sweep.json > results/sweep.txt
	@cat results/sweep.txt

# Re-run the same grid and diff it per cell against the baseline.
compare:
	$(GO) run ./cmd/workbench $(SWEEP_FLAGS) -baseline results/sweep.json

# Fault-injection sweep with reproducibility check, persisted as the
# degradation baseline (fault-free sibling cells + derived p99/p999
# inflation metrics). Gated like results/sweep.json by faults-compare.
faults:
	@mkdir -p results
	$(GO) run ./cmd/workbench $(FAULT_FLAGS) -check -out results/faults.json > results/faults.txt
	@cat results/faults.txt

# Re-run the fault grid and diff it per cell against the baseline.
faults-compare:
	$(GO) run ./cmd/workbench $(FAULT_FLAGS) -baseline results/faults.json

# Capture an event trace of one contended cell per scheme pair
# (Perfetto-loadable Chrome JSON under results/) and summarize it:
# Jain fairness, handoff-locality histogram, wait tails.
trace:
	@mkdir -p results
	$(GO) run ./cmd/workbench -schemes RMA-MCS,D-MCS -workloads empty \
		-profiles uniform -p 32 -iters 40 -fw 1 -trace results/trace.json
	$(GO) run ./cmd/traceview results/trace_*.json

# Observability smoke: run a psim sweep with the HTTP plane listening,
# scrape /metrics and /progress mid-run, then check the merged snapshot
# side channel reports the gate serial fraction — ROADMAP item 2's
# Amdahl ceiling as a concrete measured number. CI's obs-smoke job runs
# this plus the fast-path allocation guard.
OBS_ADDR = 127.0.0.1:9137

obs-smoke:
	@mkdir -p results
	$(GO) build -o results/workbench-obs ./cmd/workbench
	@set -e; \
	./results/workbench-obs -schemes RMA-MCS,foMPI-Spin -workloads empty \
		-profiles uniform,zipf -ps 32,64 -iters 60 -engine psim \
		-listen $(OBS_ADDR) -metrics-out results/obs-metrics.json \
		> results/obs-smoke.txt 2> results/obs-smoke.err & \
	pid=$$!; ok=0; \
	for i in $$(seq 1 100); do \
		if curl -sf http://$(OBS_ADDR)/metrics -o results/obs-scrape.prom; then ok=1; break; fi; \
		sleep 0.05; \
	done; \
	if [ $$ok -ne 1 ]; then \
		echo "obs-smoke: /metrics never came up"; \
		kill $$pid 2>/dev/null; cat results/obs-smoke.err; exit 1; \
	fi; \
	curl -sf http://$(OBS_ADDR)/progress -o results/obs-progress.ndjson; \
	wait $$pid
	@cat results/obs-smoke.txt
	grep -q '^psim_gate_serial_fraction ' results/obs-scrape.prom
	grep -q '"summary":true' results/obs-progress.ndjson
	grep -q 'psim_gate_serial_fraction' results/obs-metrics.json
	@echo "obs-smoke: OK —$$(grep 'psim_gate_serial_fraction' results/obs-metrics.json | tr -d ',')"

# Sweep-service smoke: start sweepd on a fresh cache, submit a 4-cell
# grid through the workbench client, then resubmit with one changed
# tunables axis (-tune TR=900 applies only to RMA-RW; the two d-MCS
# cells are untouched). Asserts from /metrics that exactly the
# unchanged cells hit the cache, and that the daemon's cold result is
# byte-identical per cell to a direct local workbench run. The final
# `kill` exercises graceful shutdown: the daemon must drain and exit 0.
SWEEPD_ADDR = 127.0.0.1:9139
SWEEPD_GRID = -schemes D-MCS,RMA-RW -workloads empty -profiles uniform,zipf \
	-ps 16 -iters 20 -locks 4

sweepd-smoke:
	@mkdir -p results
	$(GO) build -o results/sweepd ./cmd/sweepd
	$(GO) build -o results/workbench-sweepd ./cmd/workbench
	rm -rf results/sweepd-cache
	./results/workbench-sweepd $(SWEEPD_GRID) -out results/sweepd-local.json \
		> results/sweepd-local.txt
	@set -e; \
	./results/sweepd -listen $(SWEEPD_ADDR) -cache-dir results/sweepd-cache \
		2> results/sweepd.err & \
	pid=$$!; ok=0; \
	for i in $$(seq 1 100); do \
		if curl -sf http://$(SWEEPD_ADDR)/metrics -o /dev/null; then ok=1; break; fi; \
		sleep 0.05; \
	done; \
	if [ $$ok -ne 1 ]; then \
		echo "sweepd-smoke: daemon never came up"; \
		kill $$pid 2>/dev/null; cat results/sweepd.err; exit 1; \
	fi; \
	./results/workbench-sweepd -submit $(SWEEPD_ADDR) $(SWEEPD_GRID) \
		-baseline results/sweepd-local.json \
		> results/sweepd-cold.txt 2> results/sweepd-cold.err; \
	grep -q '\[4/4 cells byte-identical to baseline\]' results/sweepd-cold.err; \
	./results/workbench-sweepd -submit $(SWEEPD_ADDR) $(SWEEPD_GRID) -tune TR=900 \
		> results/sweepd-tuned.txt 2> results/sweepd-tuned.err; \
	curl -sf http://$(SWEEPD_ADDR)/metrics -o results/sweepd-scrape.prom; \
	kill $$pid; wait $$pid
	grep -q '^sweepd_cache_hits_total 2$$' results/sweepd-scrape.prom
	grep -q '^sweepd_cache_misses_total 6$$' results/sweepd-scrape.prom
	grep -q '2 served from cache' results/sweepd-tuned.err
	@echo "sweepd-smoke: OK — cold grid byte-identical to local run; tuned resubmit reused the 2 unchanged d-MCS cells"

# The paper's parameter-space slice (scheme registry + tunables axis);
# CI runs the -smoke variant.
paramspace:
	$(GO) run ./examples/paramspace

# Graceful vs pathological degradation under the same stall profile
# (bounded spinlock vs convoying MCS queue); CI runs the -smoke variant.
faulttour:
	$(GO) run ./examples/faulttour

clean:
	rm -rf results bench-smoke.txt bench-smoke.json
	$(GO) clean ./...
