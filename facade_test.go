package rmalocks_test

// Tests of the registry-backed facade: NewLock/Tune/TuneLevels
// construction, Schemes/Describe discovery, and the validating
// NewMachineErr.

import (
	"errors"
	"strings"
	"testing"

	"rmalocks"
	"rmalocks/internal/locks/rmarw"
)

func TestNewLockWithTunables(t *testing.T) {
	m := rmalocks.NewMachine(rmalocks.MachineSpec{Nodes: 4, ProcsPerNode: 4})
	lock, err := rmalocks.NewLock(m, "rma-rw",
		rmalocks.Tune("TR", 500), rmalocks.TuneLevels("TL", 16, 32))
	if err != nil {
		t.Fatal(err)
	}
	if lock.Name() != "RMA-RW" || !lock.Caps().Has(rmalocks.CapRW) {
		t.Errorf("lock = %s/%v, want RMA-RW with CapRW", lock.Name(), lock.Caps())
	}
	rw := lock.Underlying().(*rmarw.Lock)
	if rw.TR() != 500 || rw.TW() != 16*32 {
		t.Errorf("TR=%d TW=%d, want 500 and 512", rw.TR(), rw.TW())
	}

	// The constructed handle drives a run through the unified interface.
	err = m.Run(func(p *rmalocks.Proc) {
		lock.AcquireRead(p)
		lock.ReleaseRead(p)
		lock.AcquireWrite(p)
		lock.ReleaseWrite(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if rw.ReadAcquires != int64(m.Procs()) || rw.WriteAcquires != int64(m.Procs()) {
		t.Errorf("acquires = %d/%d, want %d each", rw.ReadAcquires, rw.WriteAcquires, m.Procs())
	}
}

func TestNewLockValidates(t *testing.T) {
	m := rmalocks.NewMachine(rmalocks.MachineSpec{Nodes: 2, ProcsPerNode: 4})
	if _, err := rmalocks.NewLock(m, "no-such-scheme"); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := rmalocks.NewLock(m, "RMA-RW", rmalocks.Tune("TR", -1)); err == nil {
		t.Error("TR=-1 accepted")
	}
	if _, err := rmalocks.NewLock(m, "D-MCS", rmalocks.Tune("TR", 10)); err == nil {
		t.Error("D-MCS accepted a TR tunable")
	}
	if _, err := rmalocks.NewLock(m, "RMA-MCS", rmalocks.Tune("TL3", 8)); err == nil {
		t.Error("TL3 accepted on a two-level machine")
	}
}

func TestSchemesAndDescribe(t *testing.T) {
	names := rmalocks.Schemes()
	if len(names) != 5 || names[0] != "foMPI-Spin" || names[4] != "RMA-RW" {
		t.Errorf("Schemes() = %v", names)
	}
	for _, name := range names {
		d, err := rmalocks.Describe(name)
		if err != nil {
			t.Fatal(err)
		}
		if d.Name != name || d.Doc == "" {
			t.Errorf("Describe(%s) = %+v", name, d)
		}
	}
	d, _ := rmalocks.Describe("RMA-RW")
	keys := map[string]bool{}
	for _, spec := range d.Tunables {
		keys[spec.Key] = true
	}
	if !keys["TDC"] || !keys["TR"] || !keys["TL"] {
		t.Errorf("RMA-RW tunables = %+v, want TDC/TR/TL", d.Tunables)
	}
}

func TestNewMachineErrValidation(t *testing.T) {
	// Nodes not a multiple of Racks.
	if _, err := rmalocks.NewMachineErr(rmalocks.MachineSpec{Nodes: 5, Racks: 2, ProcsPerNode: 4}); err == nil {
		t.Error("Nodes=5 Racks=2 accepted")
	} else if !strings.Contains(err.Error(), "MachineSpec") {
		t.Errorf("error lacks context: %v", err)
	}
	// Non-positive fields.
	for _, spec := range []rmalocks.MachineSpec{
		{Nodes: -1},
		{ProcsPerNode: -2},
		{Nodes: 4, Racks: -1},
	} {
		if _, err := rmalocks.NewMachineErr(spec); err == nil {
			t.Errorf("invalid spec %+v accepted", spec)
		}
	}
	// A rank count overflowing int32 rank ids is rejected with the
	// typed, errors.As-matchable RankOverflowError.
	if _, err := rmalocks.NewMachineErr(rmalocks.MachineSpec{Nodes: 1 << 20, ProcsPerNode: 1 << 12}); err == nil {
		t.Error("2^32-rank spec accepted")
	} else {
		var roe *rmalocks.RankOverflowError
		if !errors.As(err, &roe) {
			t.Errorf("overflow error %v is not a *RankOverflowError", err)
		}
	}
	// Valid specs still work, including the three-level form.
	m, err := rmalocks.NewMachineErr(rmalocks.MachineSpec{Nodes: 4, Racks: 2, ProcsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Topology().Levels() != 3 || m.Procs() != 8 {
		t.Errorf("machine = %v", m.Topology())
	}
	// NewMachine keeps its signature and panics on the same input.
	defer func() {
		if recover() == nil {
			t.Error("NewMachine did not panic on an invalid spec")
		}
	}()
	rmalocks.NewMachine(rmalocks.MachineSpec{Nodes: 5, Racks: 2})
}
