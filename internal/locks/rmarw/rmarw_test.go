package rmarw

import (
	"testing"

	"rmalocks/internal/locks"
	"rmalocks/internal/locks/locktest"
	"rmalocks/internal/rma"
	"rmalocks/internal/topology"
)

func factory(cfg Config) locktest.RWFactory {
	return func(m *rma.Machine) locks.RWMutex { return NewConfig(m, cfg) }
}

func TestExclusionMixedTwoLevel(t *testing.T) {
	locktest.StressRW(t, topology.TwoLevel(2, 4), factory(Config{}), 1, 5,
		locktest.Options{Iters: 20})
}

func TestExclusionAllWriters(t *testing.T) {
	locktest.StressRW(t, topology.TwoLevel(2, 4), factory(Config{}), 1, 1,
		locktest.Options{Iters: 15})
}

func TestExclusionAllReaders(t *testing.T) {
	locktest.StressRW(t, topology.TwoLevel(2, 4), factory(Config{}), 0, 1,
		locktest.Options{Iters: 30})
}

func TestExclusionThreeLevel(t *testing.T) {
	locktest.StressRW(t, topology.MustNew([]int{1, 2, 4}, 4), factory(Config{}), 1, 4,
		locktest.Options{Iters: 12})
}

func TestExclusionSingleNode(t *testing.T) {
	locktest.StressRW(t, topology.TwoLevel(1, 8), factory(Config{}), 1, 3,
		locktest.Options{Iters: 20})
}

func TestExclusionWriterHeavy(t *testing.T) {
	locktest.StressRW(t, topology.TwoLevel(2, 4), factory(Config{}), 4, 5,
		locktest.Options{Iters: 15})
}

func TestTinyThresholds(t *testing.T) {
	// The smallest legal parameters exercise every mode-change path.
	locktest.StressRW(t, topology.TwoLevel(2, 4),
		factory(Config{TDC: 1, TR: 1, TL: []int64{0, 1, 1}}), 1, 3,
		locktest.Options{Iters: 15})
}

func TestLargeTR(t *testing.T) {
	locktest.StressRW(t, topology.TwoLevel(2, 4),
		factory(Config{TR: 1 << 40}), 1, 4, locktest.Options{Iters: 15})
}

func TestTDCVariants(t *testing.T) {
	for _, tdc := range []int{1, 2, 4, 8} {
		tdc := tdc
		t.Run("", func(t *testing.T) {
			locktest.StressRW(t, topology.TwoLevel(2, 4),
				factory(Config{TDC: tdc}), 1, 4, locktest.Options{Iters: 12})
		})
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	topo := topology.TwoLevel(2, 8)
	m := rma.NewMachine(topo)
	l := New(m)
	if l.TDC() != 8 {
		t.Errorf("default TDC=%d want one counter per node (8)", l.TDC())
	}
	if l.TR() != 1000 {
		t.Errorf("default TR=%d want 1000", l.TR())
	}
	if l.TW() != DefaultTL*DefaultTL {
		t.Errorf("default TW=%d want %d", l.TW(), DefaultTL*DefaultTL)
	}
	if got := len(l.CounterRanks()); got != 2 {
		t.Errorf("counters=%d want 2", got)
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("negative TDC", func() { NewConfig(rma.NewMachine(topo), Config{TDC: -1}) })
	mustPanic("huge TR", func() { NewConfig(rma.NewMachine(topo), Config{TR: Bias}) })
}

func TestWriterThresholdTriggersModeChange(t *testing.T) {
	// With a tiny T_W and waiting readers, writers must periodically hand
	// the lock to the readers: ModeChanges > 0.
	topo := topology.TwoLevel(2, 4)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 240_000_000_000})
	l := NewConfig(m, Config{TR: 4, TL: []int64{0, 2, 2}}) // T_W = 4
	err := m.Run(func(p *rma.Proc) {
		for i := 0; i < 15; i++ {
			if p.Rank()%2 == 0 {
				l.AcquireWrite(p)
				p.Compute(200)
				l.ReleaseWrite(p)
			} else {
				l.AcquireRead(p)
				p.Compute(200)
				l.ReleaseRead(p)
			}
			p.Compute(100)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.ModeChanges == 0 {
		t.Error("no WRITE→READ mode changes with T_W=4 and active readers")
	}
	if l.ReadAcquires != int64(15*topo.Procs()/2) {
		t.Errorf("ReadAcquires=%d want %d", l.ReadAcquires, 15*topo.Procs()/2)
	}
	if l.WriteAcquires != int64(15*topo.Procs()/2) {
		t.Errorf("WriteAcquires=%d want %d", l.WriteAcquires, 15*topo.Procs()/2)
	}
}

func TestReaderThresholdForcesBackoff(t *testing.T) {
	// A small T_R forces frequent back-offs and reader self-resets. The
	// number of readers per counter (T_DC=2) stays below T_R=4: with
	// more concurrent readers than T_R, the paper's reader protocol
	// thrashes — in-flight arrivals alone keep ARRIVE at T_R and nobody
	// enters (see DESIGN.md "known liveness corner").
	topo := topology.TwoLevel(1, 8)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 240_000_000_000})
	l := NewConfig(m, Config{TDC: 2, TR: 4})
	err := m.Run(func(p *rma.Proc) {
		for i := 0; i < 20; i++ {
			l.AcquireRead(p)
			p.Compute(300)
			l.ReleaseRead(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.ReaderBackoffs == 0 {
		t.Error("no reader back-offs with T_R=2 and 8 readers")
	}
	if l.ReadAcquires != int64(20*topo.Procs()) {
		t.Errorf("ReadAcquires=%d want %d", l.ReadAcquires, 20*topo.Procs())
	}
}

func TestReadersUseOwnCounter(t *testing.T) {
	// With T_DC = procsPerNode, a pure reader workload must touch only
	// intra-node targets (readers never enter the DQs): no ops at
	// distance 2 except the waiting-writer tail probe... which pure
	// readers only issue when T_R is reached. Use a huge T_R so the
	// counter never saturates: then zero inter-node ops happen at all.
	topo := topology.TwoLevel(2, 4)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 120_000_000_000})
	l := NewConfig(m, Config{TR: 1 << 40})
	err := m.Run(func(p *rma.Proc) {
		for i := 0; i < 10; i++ {
			l.AcquireRead(p)
			p.Compute(100)
			l.ReleaseRead(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if d2 := s.PerDistance[2]; d2.Data+d2.Atomic != 0 {
		t.Errorf("pure-reader workload issued %d inter-node ops; DC locality broken", d2.Data+d2.Atomic)
	}
}

func TestWriterDrainsActiveReaders(t *testing.T) {
	// §4.1: after switching counters to WRITE, the writer waits for all
	// active readers to depart. The locktest harness already detects a
	// writer entering alongside readers, but this targets long reader CSs.
	topo := topology.TwoLevel(1, 4)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 240_000_000_000})
	l := New(m)
	var readersIn, violations int
	err := m.Run(func(p *rma.Proc) {
		if p.Rank() == 0 {
			p.Compute(5_000) // let readers enter first
			for i := 0; i < 5; i++ {
				l.AcquireWrite(p)
				if readersIn != 0 {
					violations++
				}
				p.Compute(1_000)
				l.ReleaseWrite(p)
				p.Compute(2_000)
			}
			return
		}
		for i := 0; i < 10; i++ {
			l.AcquireRead(p)
			readersIn++
			p.Compute(20_000) // long reader CS
			readersIn--
			l.ReleaseRead(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if violations != 0 {
		t.Errorf("writer entered with %d active readers", violations)
	}
}

func TestSingleLevelMachine(t *testing.T) {
	locktest.StressRW(t, topology.MustNew([]int{1}, 6), factory(Config{}), 1, 3,
		locktest.Options{Iters: 15})
}

func TestDeterministicOutcome(t *testing.T) {
	run := func() (int64, int64) {
		topo := topology.TwoLevel(2, 4)
		m := rma.NewMachineConfig(topo, rma.Config{Seed: 7, TimeLimit: 240_000_000_000})
		l := NewConfig(m, Config{TR: 8, TL: []int64{0, 2, 4}})
		err := m.Run(func(p *rma.Proc) {
			for i := 0; i < 12; i++ {
				if locktest.WriterPattern(p.Rank(), i, 1, 4) {
					l.AcquireWrite(p)
					p.Compute(200)
					l.ReleaseWrite(p)
				} else {
					l.AcquireRead(p)
					p.Compute(200)
					l.ReleaseRead(p)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return l.ModeChanges, m.MaxClock()
	}
	mc1, t1 := run()
	mc2, t2 := run()
	if mc1 != mc2 || t1 != t2 {
		t.Errorf("nondeterministic: (%d,%d) vs (%d,%d)", mc1, t1, mc2, t2)
	}
}
