package rmarw

import (
	"rmalocks/internal/rma"
	"rmalocks/internal/scheme"
)

// SchemeName is the canonical registry name of this lock.
const SchemeName = "RMA-RW"

func init() {
	scheme.MustRegister(scheme.Descriptor{
		Name:    SchemeName,
		Aliases: []string{"rmarw"},
		Doc: "topology-aware distributed Reader-Writer lock (§3): distributed counter + tree of distributed queues",
		// No CapTimeout: writers sit in distributed queues (see D-MCS)
		// and readers publish counter increments the writer path
		// observes, so neither mode can abandon cleanly.
		Caps: scheme.CapMutex | scheme.CapRW,
		Order:   50,
		Tunables: []scheme.TunableSpec{
			{Key: "TDC", Doc: "distributed-counter threshold T_DC: one physical counter every TDC-th process (0 = one counter per compute node, the paper's default)",
				Default: 0, Min: 0, Max: 1 << 30},
			{Key: "TR", Doc: "reader threshold T_R: readers entering through one physical counter before yielding to writers",
				Default: 1000, Min: 1, Max: Bias/2 - 1},
			{Key: "TL", Doc: "locality threshold T_L,i of tree level i (T_W = Π T_L,i)",
				Default: DefaultTL, Min: 1, Max: 1 << 31, PerLevel: true},
		},
		New: func(m *rma.Machine, t scheme.Tunables) (scheme.Lock, error) {
			l, err := NewConfigErr(m, Config{
				TDC: int(t.Value("TDC", 0)),
				TR:  t.Value("TR", 0),
				TL:  t.LevelSlice("TL", m.Topology().Levels()),
			})
			if err != nil {
				return nil, err
			}
			return scheme.WrapRW(SchemeName, l), nil
		},
	})
}
