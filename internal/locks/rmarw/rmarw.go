// Package rmarw implements RMA-RW, the paper's topology-aware distributed
// Reader-Writer lock (§3): the interplay of three distributed structures,
//
//   - DC, a distributed counter with one physical counter every T_DC-th
//     process, counting readers in the critical section and encoding the
//     READ/WRITE mode (§3.2.1, Listing 6);
//   - DQs, per-element distributed MCS queues ordering writers, with
//     locality thresholds T_L,i (§3.2.2);
//   - DT, the tree of DQs binding the levels together and synchronizing
//     writers with readers at the root, with reader threshold T_R and
//     writer threshold T_W = Π T_L,i (§3.2.3).
//
// The protocols follow the paper's Listings 4–10; see DESIGN.md for the
// per-element queue-node placement and the reader-drain loop required by
// §4.1.
package rmarw

import (
	"fmt"
	"math"
	"sync/atomic"

	"rmalocks/internal/locks"
	"rmalocks/internal/rma"
	"rmalocks/internal/spinwait"
	"rmalocks/internal/topology"
)

// Bias is added to a physical counter's ARRIVE word to switch it to the
// WRITE mode (the paper uses INT64_MAX/2; any value far above T_R works).
const Bias int64 = 1 << 62

// DefaultTL is the default locality threshold T_L,i for every level
// (the paper's default, matching rmamcs.DefaultTL).
const DefaultTL int64 = 32

// Config selects the three performance parameters of the lock (Figure 1's
// parameter space).
type Config struct {
	// TDC is the distributed-counter threshold T_DC: one physical counter
	// every TDC-th process. Default: one counter per compute node.
	TDC int
	// TR is the reader threshold T_R: the maximum number of readers that
	// enter through one physical counter before yielding to writers.
	// Default 1000.
	TR int64
	// TL[i] is T_L,i for level i (1-based; TL[0] ignored; zero entries
	// default to DefaultTL). T_W is always Π T_L,i per the paper.
	TL []int64
}

// Lock is an RMA-RW lock instance.
type Lock struct {
	tree *locks.DQTree
	topo *topology.Topology
	n    int
	tdc  int
	tr   int64
	tw   int64
	id   int // trace lock id (Machine.RegisterLock)

	arriveOff    int
	departOff    int
	rlockOff     int // per-counter reset latch (see resetCounter)
	counterRanks []int

	// Statistics (single-runner safe).
	ReadAcquires   int64
	WriteAcquires  int64
	ModeChanges    int64 // WRITE→READ hand-overs (counter resets by writers)
	ReaderBackoffs int64 // reader arrivals that had to back off

	// Trace, when non-nil, receives protocol events (debugging aid; the
	// simulator runs one process at a time, so no synchronization is
	// needed). Events: "fao" (curr), "probe" (tail), "reader-reset",
	// "writer-reset", "park", "unpark".
	Trace func(event string, rank int, v int64)
}

func (l *Lock) trace(event string, rank int, v int64) {
	if l.Trace != nil {
		l.Trace(event, rank, v)
	}
}

// New allocates an RMA-RW lock with default parameters.
func New(m *rma.Machine) *Lock { return NewConfig(m, Config{}) }

// NewConfig allocates an RMA-RW lock with explicit parameters; it
// panics on invalid ones (the validating form is NewConfigErr, which
// the scheme registry dispatches through).
func NewConfig(m *rma.Machine, cfg Config) *Lock {
	l, err := NewConfigErr(m, cfg)
	if err != nil {
		panic(err.Error())
	}
	return l
}

// NewConfigErr allocates an RMA-RW lock with explicit parameters,
// returning a descriptive error for out-of-range ones instead of
// panicking.
func NewConfigErr(m *rma.Machine, cfg Config) (*Lock, error) {
	topo := m.Topology()
	n := topo.Levels()
	tdc := cfg.TDC
	if tdc == 0 {
		tdc = topo.ProcsPerLeaf()
	}
	if tdc < 1 {
		return nil, fmt.Errorf("rmarw: TDC must be >= 1, got %d", tdc)
	}
	tr := cfg.TR
	if tr == 0 {
		tr = 1000
	}
	if tr < 1 || tr >= Bias/2 {
		return nil, fmt.Errorf("rmarw: TR out of range: %d", tr)
	}
	tl := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		tl[i] = DefaultTL
		if i < len(cfg.TL) && cfg.TL[i] > 0 {
			tl[i] = cfg.TL[i]
		}
	}
	// Pre-check Π T_L,i before any window allocation happens, so an
	// invalid configuration leaves the machine untouched.
	prod := int64(1)
	for i := 1; i <= n; i++ {
		if tl[i] >= math.MaxInt64/prod {
			return nil, fmt.Errorf("rmarw: T_W overflow; choose smaller T_L,i")
		}
		prod *= tl[i]
	}
	l := &Lock{
		topo:         topo,
		n:            n,
		tdc:          tdc,
		tr:           tr,
		counterRanks: topo.CounterRanks(tdc),
		id:           m.RegisterLock(),
	}
	// The pre-check above already bounds Π T_L,i strictly below
	// MaxInt64, so ProductTL cannot saturate here.
	l.tree = locks.NewDQTree(m, tl)
	l.tw = l.tree.ProductTL()
	l.arriveOff = m.Alloc(1)
	l.departOff = m.Alloc(1)
	l.rlockOff = m.Alloc(1)
	m.OnInit(func(m *rma.Machine) {
		for _, r := range l.counterRanks {
			m.Set(r, l.arriveOff, 0)
			m.Set(r, l.departOff, 0)
			m.Set(r, l.rlockOff, 0)
		}
		l.ReadAcquires, l.WriteAcquires = 0, 0
		l.ModeChanges, l.ReaderBackoffs = 0, 0
	})
	return l, nil
}

// TW returns the writer threshold T_W = Π T_L,i.
func (l *Lock) TW() int64 { return l.tw }

// TR returns the reader threshold T_R.
func (l *Lock) TR() int64 { return l.tr }

// SetTR changes the reader threshold between runs (used by the adaptive
// controller of package adaptive; the paper's §8 future-work extension).
// It must not be called while a run is in progress.
func (l *Lock) SetTR(tr int64) {
	if tr < 1 || tr >= Bias/2 {
		panic(fmt.Sprintf("rmarw: TR out of range: %d", tr))
	}
	l.tr = tr
}

// TDC returns the distributed-counter threshold T_DC.
func (l *Lock) TDC() int { return l.tdc }

// CounterRanks returns the ranks hosting physical counters.
func (l *Lock) CounterRanks() []int { return l.counterRanks }

// CounterState reads a physical counter's (ARRIVE, DEPART, latch) words
// directly from machine memory; valid in OnInit callbacks and after a run
// (diagnostics and tests).
func (l *Lock) CounterState(m *rma.Machine, rank int) (arrive, depart, latch int64) {
	return m.At(rank, l.arriveOff), m.At(rank, l.departOff), m.At(rank, l.rlockOff)
}

// Tree exposes the underlying DQ tree (statistics, tests).
func (l *Lock) Tree() *locks.DQTree { return l.tree }

// counter returns c(p): the rank of the physical counter assigned to p.
func (l *Lock) counter(p *rma.Proc) int {
	return l.topo.CounterRank(p.Rank(), l.tdc)
}

// ---------------------------------------------------------------------
// Counter manipulation (paper Listing 6).
// ---------------------------------------------------------------------

// setCountersToWrite switches every physical counter to the WRITE mode by
// adding Bias to its arrival word, then—per §4.1—waits until every counter
// shows no active reader (arrivals minus bias all departed).
func (l *Lock) setCountersToWrite(p *rma.Proc) {
	for _, r := range l.counterRanks {
		p.Accumulate(Bias, r, l.arriveOff, rma.OpSum)
		p.Flush(r)
	}
	for _, r := range l.counterRanks {
		b := spinwait.Default()
		for {
			arr := p.Get(r, l.arriveOff)
			dep := p.Get(r, l.departOff)
			p.Flush(r)
			if arr-Bias == dep {
				break
			}
			b.Pause(p)
		}
	}
}

// resetCounter resets one physical counter: subtract the departures from
// both words, reopening the counter for T_R new readers.
//
// Two corrections to the paper's Listing 6, both found by the model
// checker in internal/model (see DESIGN.md):
//
//  1. Resets are serialized with a one-word CAS latch. The snapshot-then-
//     subtract sequence is not safe under concurrency: a reader-side
//     reset (Listing 9 line 20) can overlap a releasing writer's reset,
//     double-subtracting DEPART and corrupting the counter.
//  2. Only a releasing writer (stripBias) removes the WRITE bias. A
//     reader-side reset must never strip it: a writer may have switched
//     the counter to WRITE between the reader's TAIL probe and its reset,
//     and losing that bias would wedge the writer's drain loop forever.
func (l *Lock) resetCounter(p *rma.Proc, rank int, stripBias bool) {
	b := spinwait.Default()
	for {
		prev := p.CAS(1, 0, rank, l.rlockOff)
		p.Flush(rank)
		if prev == 0 {
			break
		}
		b.Pause(p)
		// Jitter desynchronizes contenders: with a deterministic
		// scheduler, symmetric spinning can lock into a periodic cycle.
		p.Compute(int64(p.Rand().Intn(200)) + 1)
	}
	arr := p.Get(rank, l.arriveOff)
	dep := p.Get(rank, l.departOff)
	p.Flush(rank)
	subArr, subDep := -dep, -dep
	if stripBias && arr >= Bias {
		subArr -= Bias
	}
	p.Accumulate(subArr, rank, l.arriveOff, rma.OpSum)
	p.Accumulate(subDep, rank, l.departOff, rma.OpSum)
	p.Flush(rank)
	p.Put(0, rank, l.rlockOff)
	p.Flush(rank)
}

// resetCounters hands the lock to the readers by resetting every counter.
func (l *Lock) resetCounters(p *rma.Proc) {
	for _, r := range l.counterRanks {
		l.resetCounter(p, r, true)
	}
	atomic.AddInt64(&l.ModeChanges, 1)
	l.trace("writer-reset", -1, 0)
}

// ---------------------------------------------------------------------
// Reader protocol (paper Listings 9–10).
// ---------------------------------------------------------------------

// AcquireRead admits the reader once its physical counter is in READ mode
// and below T_R.
func (l *Lock) AcquireRead(p *rma.Proc) {
	p.TraceAcquireStart(l.id, false)
	l.acquireRead(p)
	p.TraceAcquired(l.id, false)
}

func (l *Lock) acquireRead(p *rma.Proc) {
	c := l.counter(p)
	barrier := false
	for {
		if barrier {
			// Wait for a counter reset (ours or a releasing writer's).
			l.trace("park", p.Rank(), 0)
			p.SpinUntil(c, l.arriveOff, func(v int64) bool { return v < l.tr })
			l.trace("unpark", p.Rank(), 0)
		}
		// Increment the arrival counter.
		curr := p.FAO(1, c, l.arriveOff, rma.OpSum)
		p.Flush(c)
		if curr < l.tr {
			atomic.AddInt64(&l.ReadAcquires, 1)
			return
		}
		// T_R reached (or WRITE mode: the bias dwarfs T_R).
		barrier = true
		atomic.AddInt64(&l.ReaderBackoffs, 1)
		l.trace("fao", p.Rank(), curr)
		if curr == l.tr {
			// We are the first to reach T_R: pass the lock to the
			// writers if any are waiting, otherwise reopen the counter.
			tail := l.tree.ReadTail(p, 1, p.Rank())
			l.trace("probe", p.Rank(), tail)
			if tail == rma.Nil {
				l.resetCounter(p, c, false)
				l.trace("reader-reset", p.Rank(), 0)
				barrier = false
			}
		}
		// Back off and try again; jitter breaks the thundering herd of
		// readers whose +1/-1 pairs would otherwise keep the counter
		// saturated in lockstep at small T_R.
		p.Accumulate(-1, c, l.arriveOff, rma.OpSum)
		p.Flush(c)
		p.Compute(int64(p.Rand().Intn(400)) + 1)
	}
}

// ReleaseRead increments the departing-reader word of c(p).
func (l *Lock) ReleaseRead(p *rma.Proc) {
	p.TraceRelease(l.id, false)
	c := l.counter(p)
	p.Accumulate(1, c, l.departOff, rma.OpSum)
	p.Flush(c)
}

// ---------------------------------------------------------------------
// Writer protocol (paper Listings 4–5, 7–8).
// ---------------------------------------------------------------------

// AcquireWrite climbs the DT from the leaf; at the root it additionally
// synchronizes with the readers through the distributed counter.
func (l *Lock) AcquireWrite(p *rma.Proc) {
	p.TraceAcquireStart(l.id, true)
	l.acquireWrite(p)
	p.TraceAcquired(l.id, true)
}

func (l *Lock) acquireWrite(p *rma.Proc) {
	for i := l.n; i >= 2; i-- {
		status, hadPred := l.tree.EnterQueue(p, i)
		if hadPred {
			if status >= 0 {
				atomic.AddInt64(&l.WriteAcquires, 1)
				return // direct pass within the element (Listing 4)
			}
			if status != locks.StatusAcquireParent {
				panic(fmt.Sprintf("rmarw: unexpected status %d at level %d", status, i))
			}
		}
		l.tree.SetStatus(p, i, locks.StatusAcquireStart)
	}
	// Level 1 (Listing 7).
	status, hadPred := l.tree.EnterQueue(p, 1)
	switch {
	case hadPred && status >= 0:
		// Predecessor passed the lock; the count stays in our node.
	case hadPred && status == locks.StatusModeChange:
		// The readers have the lock now; take it back.
		l.setCountersToWrite(p)
		l.tree.SetStatus(p, 1, locks.StatusAcquireStart)
	case !hadPred:
		// Queue was empty: claim the lock from the readers.
		l.setCountersToWrite(p)
		l.tree.SetStatus(p, 1, locks.StatusAcquireStart)
	default:
		panic(fmt.Sprintf("rmarw: unexpected root status %d", status))
	}
	atomic.AddInt64(&l.WriteAcquires, 1)
}

// ReleaseWrite walks down from the leaf (Listing 5), ending at the root
// protocol (Listing 8).
func (l *Lock) ReleaseWrite(p *rma.Proc) {
	p.TraceRelease(l.id, true)
	l.releaseLevel(p, l.n)
}

func (l *Lock) releaseLevel(p *rma.Proc, i int) {
	if i == 1 {
		l.releaseRoot(p)
		return
	}
	succ, status := l.tree.ReadNode(p, i)
	if succ != rma.Nil && status < l.tree.TL[i] {
		l.tree.Pass(p, i, succ, status+1)
		return
	}
	// Threshold reached or no known successor: release the parent level
	// first, then leave this DQ or redirect the successor upward.
	l.releaseLevel(p, i-1)
	if succ == rma.Nil {
		succ = l.tree.Detach(p, i)
		if succ == rma.Nil {
			return
		}
	}
	l.tree.Pass(p, i, succ, locks.StatusAcquireParent)
}

// releaseRoot implements Listing 8: hand over to the readers if T_W is
// reached or no writer waits; otherwise pass to the next writer, possibly
// notifying it of the mode change.
func (l *Lock) releaseRoot(p *rma.Proc) {
	succ, status := l.tree.ReadNode(p, 1)
	countersReset := false
	next := status + 1
	if next == l.tw {
		// Pass the lock to the readers.
		l.resetCounters(p)
		next = locks.StatusModeChange
		countersReset = true
	}
	if succ == rma.Nil {
		if !countersReset {
			l.resetCounters(p)
			next = locks.StatusModeChange
		}
		succ = l.tree.Detach(p, 1)
		if succ == rma.Nil {
			return // no successor: the readers have the lock
		}
	}
	l.tree.Pass(p, 1, succ, next)
}
