// Package dmcs implements D-MCS, the distributed topology-oblivious MCS
// lock of the paper's §2.4 (Listings 2–3), derived from the MPI-3 MCS lock
// of Gropp et al. It is both a standalone comparison target and the
// conceptual building block of the DQs used by RMA-MCS and RMA-RW.
package dmcs

import (
	"sync/atomic"

	"rmalocks/internal/rma"
)

// Window offsets (words) within the lock's allocation.
const (
	offNext = iota // rank of the next process in the MCS queue (∅ if none)
	offWait        // spin flag: 1 = wait, 0 = go
	offTail        // queue tail rank; meaningful only on tailRank
	words
)

// Lock is a single distributed MCS queue spanning all ranks. The TAIL
// pointer lives on tailRank (rank 0 by default, configurable to study
// hot-spot placement).
type Lock struct {
	base     int
	tailRank int
	id       int // trace lock id (Machine.RegisterLock)

	// Acquires counts lock acquisitions (single-runner safe).
	Acquires int64
}

// New allocates a D-MCS lock on machine m with the TAIL word on rank 0.
func New(m *rma.Machine) *Lock { return NewAt(m, 0) }

// NewAt allocates a D-MCS lock whose TAIL word lives on tailRank.
func NewAt(m *rma.Machine, tailRank int) *Lock {
	l := &Lock{base: m.Alloc(words), tailRank: tailRank, id: m.RegisterLock()}
	m.OnInit(func(m *rma.Machine) {
		for r := 0; r < m.Procs(); r++ {
			m.Set(r, l.base+offNext, rma.Nil)
			m.Set(r, l.base+offWait, 0)
		}
		m.Set(l.tailRank, l.base+offTail, rma.Nil)
		l.Acquires = 0
	})
	return l
}

// Acquire implements the paper's Listing 2.
func (l *Lock) Acquire(p *rma.Proc) {
	p.TraceAcquireStart(l.id, true)
	l.acquire(p)
	p.TraceAcquired(l.id, true)
}

func (l *Lock) acquire(p *rma.Proc) {
	me := p.Rank()
	// Prepare local fields.
	p.Put(rma.Nil, me, l.base+offNext)
	p.Put(1, me, l.base+offWait)
	p.Flush(me)
	// Enter the tail of the MCS queue and get the predecessor.
	pred := p.FAO(int64(me), l.tailRank, l.base+offTail, rma.OpReplace)
	p.Flush(l.tailRank)
	if pred != rma.Nil {
		// Make the predecessor see us, then spin locally until the
		// predecessor clears our WAIT flag.
		p.Put(int64(me), int(pred), l.base+offNext)
		p.Flush(int(pred))
		p.SpinUntil(me, l.base+offWait, func(v int64) bool { return v == 0 })
	}
	atomic.AddInt64(&l.Acquires, 1)
}

// Release implements the paper's Listing 3.
func (l *Lock) Release(p *rma.Proc) {
	p.TraceRelease(l.id, true)
	me := p.Rank()
	succ := p.Get(me, l.base+offNext)
	p.Flush(me)
	if succ == rma.Nil {
		// Check if we are still the tail; if so the queue empties.
		curr := p.CAS(rma.Nil, int64(me), l.tailRank, l.base+offTail)
		p.Flush(l.tailRank)
		if curr == int64(me) {
			return // we were the only process in the queue
		}
		// Somebody swapped TAIL; wait until it links itself behind us.
		succ = p.SpinUntil(me, l.base+offNext, func(v int64) bool { return v != rma.Nil })
	}
	// Notify the successor.
	p.Put(0, int(succ), l.base+offWait)
	p.Flush(int(succ))
}
