package dmcs

import (
	"testing"

	"rmalocks/internal/locks"
	"rmalocks/internal/locks/locktest"
	"rmalocks/internal/rma"
	"rmalocks/internal/topology"
)

func factory(m *rma.Machine) locks.Mutex { return New(m) }

func TestMutualExclusionSingleNode(t *testing.T) {
	locktest.StressMutex(t, topology.TwoLevel(1, 8), factory, locktest.Options{Iters: 30})
}

func TestMutualExclusionMultiNode(t *testing.T) {
	locktest.StressMutex(t, topology.TwoLevel(4, 4), factory, locktest.Options{Iters: 25})
}

func TestMutualExclusionThreeLevels(t *testing.T) {
	locktest.StressMutex(t, topology.MustNew([]int{1, 2, 4}, 4), factory, locktest.Options{Iters: 15})
}

func TestTwoProcessesHandOff(t *testing.T) {
	topo := topology.TwoLevel(1, 2)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 1_000_000_000})
	l := New(m)
	order := make([]int, 0, 8)
	err := m.Run(func(p *rma.Proc) {
		for i := 0; i < 4; i++ {
			l.Acquire(p)
			order = append(order, p.Rank())
			l.Release(p)
			p.Compute(100)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 8 {
		t.Fatalf("got %d CS entries, want 8", len(order))
	}
	if l.Acquires != 8 {
		t.Errorf("Acquires=%d want 8", l.Acquires)
	}
}

func TestUncontendedFastPath(t *testing.T) {
	// A single process acquiring an empty lock must not wait: its two
	// queue operations are one FAO and one CAS.
	topo := topology.TwoLevel(1, 2)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 1_000_000_000})
	l := New(m)
	err := m.Run(func(p *rma.Proc) {
		if p.Rank() != 0 {
			return
		}
		l.Acquire(p)
		l.Release(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Kind[3] != 1 { // one FAO (enqueue)
		t.Errorf("FAO count=%d want 1: %v", s.Kind[3], s)
	}
}

func TestTailPlacement(t *testing.T) {
	// NewAt places the TAIL word on a chosen rank; the lock still works.
	topo := topology.TwoLevel(2, 4)
	locktest.StressMutex(t, topo, func(m *rma.Machine) locks.Mutex {
		return NewAt(m, 5)
	}, locktest.Options{Iters: 20})
}

func TestQueueIsFIFOUnderBarrierAlignedEntry(t *testing.T) {
	// All processes enqueue in rank order (the simulator runs equal-clock
	// processes in rank order after a barrier); the CS order must match
	// the queue order exactly — MCS is FIFO-fair.
	topo := topology.TwoLevel(2, 4)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 10_000_000_000})
	l := New(m)
	var order []int
	err := m.Run(func(p *rma.Proc) {
		p.Barrier()
		l.Acquire(p)
		order = append(order, p.Rank())
		p.Compute(1000)
		l.Release(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != topo.Procs() {
		t.Fatalf("%d entries, want %d", len(order), topo.Procs())
	}
	seen := make(map[int]bool)
	for _, r := range order {
		if seen[r] {
			t.Fatalf("rank %d entered twice: %v", r, order)
		}
		seen[r] = true
	}
}

func TestManyLocksCoexist(t *testing.T) {
	// Two independent D-MCS locks on one machine must not interfere.
	topo := topology.TwoLevel(2, 4)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 30_000_000_000})
	a, b := New(m), NewAt(m, 3)
	var ca, cb int64
	err := m.Run(func(p *rma.Proc) {
		for i := 0; i < 10; i++ {
			a.Acquire(p)
			va := ca
			p.Compute(100)
			ca = va + 1
			a.Release(p)

			b.Acquire(p)
			vb := cb
			p.Compute(100)
			cb = vb + 1
			b.Release(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(10 * topo.Procs())
	if ca != want || cb != want {
		t.Errorf("ca=%d cb=%d want %d", ca, cb, want)
	}
}
