package dmcs

import (
	"rmalocks/internal/rma"
	"rmalocks/internal/scheme"
)

// SchemeName is the canonical registry name of this lock.
const SchemeName = "D-MCS"

func init() {
	scheme.MustRegister(scheme.Descriptor{
		Name:    SchemeName,
		Aliases: []string{"dmcs"},
		Doc: "topology-oblivious distributed MCS lock (§2.4): one flat distributed queue",
		// No CapTimeout: an enqueued MCS node is reachable by its
		// predecessor and cannot be unlinked without successor
		// cooperation, so a bounded acquire cannot abandon cleanly.
		Caps: scheme.CapMutex,
		Order:   20,
		New: func(m *rma.Machine, t scheme.Tunables) (scheme.Lock, error) {
			return scheme.WrapMutex(SchemeName, New(m)), nil
		},
	})
}
