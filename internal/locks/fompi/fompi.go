// Package fompi implements the two comparison locks of the foMPI MPI-3
// RMA library (Gerstenberger et al., SC'13) that the paper evaluates
// against: a global spinlock (foMPI-Spin) and a centralized Reader-Writer
// lock (foMPI-RW). Both keep their state on a single rank, which is
// exactly the hot spot the paper's distributed designs remove.
package fompi

import (
	"sync/atomic"

	"rmalocks/internal/rma"
	"rmalocks/internal/spinwait"
)

// SpinLock is foMPI-Spin: a test-and-CAS spinlock with exponential backoff
// on one word of one rank.
type SpinLock struct {
	base int
	home int
	id   int // trace lock id (Machine.RegisterLock)

	// Retries counts failed CAS attempts (contention indicator).
	Retries int64
}

// NewSpin allocates a foMPI-Spin lock with its word on rank 0.
func NewSpin(m *rma.Machine) *SpinLock {
	l := &SpinLock{base: m.Alloc(1), home: 0, id: m.RegisterLock()}
	m.OnInit(func(m *rma.Machine) {
		m.Set(l.home, l.base, 0)
		l.Retries = 0
	})
	return l
}

// Acquire spins with capped exponential backoff until the CAS 0→1 wins.
func (l *SpinLock) Acquire(p *rma.Proc) {
	p.TraceAcquireStart(l.id, true)
	// Spinlocks back off much further than queue locks: every retry is a
	// remote atomic on the single hot word.
	b := spinwait.New(200, 16000)
	for {
		prev := p.CAS(1, 0, l.home, l.base)
		p.Flush(l.home)
		if prev == 0 {
			p.TraceAcquired(l.id, true)
			return
		}
		atomic.AddInt64(&l.Retries, 1)
		b.Pause(p)
	}
}

// TryAcquireFor is the bounded variant of Acquire: it spins until the
// CAS wins or the deadline passes, then gives up cleanly — a CAS lock
// enqueues nothing, so abandoning is just stopping. Failed attempts are
// resolved in the trace stream as EvAcqTimeout.
func (l *SpinLock) TryAcquireFor(p *rma.Proc, timeout int64) bool {
	p.TraceAcquireStart(l.id, true)
	deadline := p.Now() + timeout
	b := spinwait.New(200, 16000)
	for {
		prev := p.CAS(1, 0, l.home, l.base)
		p.Flush(l.home)
		if prev == 0 {
			p.TraceAcquired(l.id, true)
			return true
		}
		atomic.AddInt64(&l.Retries, 1)
		if p.Now() >= deadline {
			p.TraceAcquireTimeout(l.id, true)
			return false
		}
		b.Pause(p)
	}
}

// Release clears the lock word.
func (l *SpinLock) Release(p *rma.Proc) {
	p.TraceRelease(l.id, true)
	p.Accumulate(0, l.home, l.base, rma.OpReplace)
	p.Flush(l.home)
}

// writerBit marks a writer holding (or claiming) the RW lock; the low bits
// count active readers.
const writerBit int64 = 1 << 62

// RWLock is foMPI-RW: a centralized reader-writer lock on a single word.
// Readers fetch-and-add the reader count; a writer claims the writer bit
// and drains readers. All traffic targets one rank.
type RWLock struct {
	base int
	home int
	id   int // trace lock id (Machine.RegisterLock)

	// ReaderRetries / WriterRetries count back-offs (contention).
	ReaderRetries int64
	WriterRetries int64
}

// NewRW allocates a foMPI-RW lock with its word on rank 0.
func NewRW(m *rma.Machine) *RWLock {
	l := &RWLock{base: m.Alloc(1), home: 0, id: m.RegisterLock()}
	m.OnInit(func(m *rma.Machine) {
		m.Set(l.home, l.base, 0)
		l.ReaderRetries = 0
		l.WriterRetries = 0
	})
	return l
}

// AcquireRead increments the reader count; if a writer holds or claims the
// lock, it undoes the increment, waits for the writer bit to clear, and
// retries.
func (l *RWLock) AcquireRead(p *rma.Proc) {
	p.TraceAcquireStart(l.id, false)
	b := spinwait.New(200, 16000)
	for {
		prev := p.FAO(1, l.home, l.base, rma.OpSum)
		p.Flush(l.home)
		if prev&writerBit == 0 {
			p.TraceAcquired(l.id, false)
			return
		}
		// A writer is in or entering the CS: back out and wait.
		p.Accumulate(-1, l.home, l.base, rma.OpSum)
		p.Flush(l.home)
		atomic.AddInt64(&l.ReaderRetries, 1)
		for {
			v := p.Get(l.home, l.base)
			p.Flush(l.home)
			if v&writerBit == 0 {
				break
			}
			b.Pause(p)
		}
	}
}

// TryAcquireReadFor is the bounded variant of AcquireRead. The fast
// path already backs the increment out when a writer holds the lock, so
// a timed-out attempt leaves the word exactly as it found it.
func (l *RWLock) TryAcquireReadFor(p *rma.Proc, timeout int64) bool {
	p.TraceAcquireStart(l.id, false)
	deadline := p.Now() + timeout
	b := spinwait.New(200, 16000)
	for {
		prev := p.FAO(1, l.home, l.base, rma.OpSum)
		p.Flush(l.home)
		if prev&writerBit == 0 {
			p.TraceAcquired(l.id, false)
			return true
		}
		p.Accumulate(-1, l.home, l.base, rma.OpSum)
		p.Flush(l.home)
		atomic.AddInt64(&l.ReaderRetries, 1)
		for {
			if p.Now() >= deadline {
				p.TraceAcquireTimeout(l.id, false)
				return false
			}
			v := p.Get(l.home, l.base)
			p.Flush(l.home)
			if v&writerBit == 0 {
				break
			}
			b.Pause(p)
		}
	}
}

// ReleaseRead decrements the reader count.
func (l *RWLock) ReleaseRead(p *rma.Proc) {
	p.TraceRelease(l.id, false)
	p.Accumulate(-1, l.home, l.base, rma.OpSum)
	p.Flush(l.home)
}

// AcquireWrite claims the writer bit (one writer at a time), then waits
// for active readers to drain. Claiming before draining gives writers
// preference so they cannot starve behind a continuous reader stream.
func (l *RWLock) AcquireWrite(p *rma.Proc) {
	p.TraceAcquireStart(l.id, true)
	b := spinwait.New(200, 16000)
	for {
		v := p.Get(l.home, l.base)
		p.Flush(l.home)
		if v&writerBit != 0 {
			atomic.AddInt64(&l.WriterRetries, 1)
			b.Pause(p)
			continue
		}
		prev := p.CAS(v|writerBit, v, l.home, l.base)
		p.Flush(l.home)
		if prev == v {
			break // claimed
		}
		atomic.AddInt64(&l.WriterRetries, 1)
		b.Pause(p)
	}
	// Drain readers.
	b.Reset()
	for {
		v := p.Get(l.home, l.base)
		p.Flush(l.home)
		if v == writerBit {
			p.TraceAcquired(l.id, true)
			return
		}
		b.Pause(p)
	}
}

// TryAcquireWriteFor is the bounded variant of AcquireWrite. A deadline
// during the claim phase just stops retrying; a deadline during the
// reader drain backs the claimed writer bit out, so a timed-out writer
// never wedges the lock.
func (l *RWLock) TryAcquireWriteFor(p *rma.Proc, timeout int64) bool {
	p.TraceAcquireStart(l.id, true)
	deadline := p.Now() + timeout
	b := spinwait.New(200, 16000)
	for {
		v := p.Get(l.home, l.base)
		p.Flush(l.home)
		if v&writerBit != 0 {
			atomic.AddInt64(&l.WriterRetries, 1)
			if p.Now() >= deadline {
				p.TraceAcquireTimeout(l.id, true)
				return false
			}
			b.Pause(p)
			continue
		}
		prev := p.CAS(v|writerBit, v, l.home, l.base)
		p.Flush(l.home)
		if prev == v {
			break // claimed
		}
		atomic.AddInt64(&l.WriterRetries, 1)
		if p.Now() >= deadline {
			p.TraceAcquireTimeout(l.id, true)
			return false
		}
		b.Pause(p)
	}
	// Drain readers; past the deadline, back the claim out so readers
	// and later writers can proceed.
	b.Reset()
	for {
		v := p.Get(l.home, l.base)
		p.Flush(l.home)
		if v == writerBit {
			p.TraceAcquired(l.id, true)
			return true
		}
		if p.Now() >= deadline {
			p.Accumulate(-writerBit, l.home, l.base, rma.OpSum)
			p.Flush(l.home)
			p.TraceAcquireTimeout(l.id, true)
			return false
		}
		b.Pause(p)
	}
}

// ReleaseWrite clears the writer bit.
func (l *RWLock) ReleaseWrite(p *rma.Proc) {
	p.TraceRelease(l.id, true)
	p.Accumulate(-writerBit, l.home, l.base, rma.OpSum)
	p.Flush(l.home)
}
