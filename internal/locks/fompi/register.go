package fompi

import (
	"rmalocks/internal/rma"
	"rmalocks/internal/scheme"
)

// Canonical registry names of the two foMPI baselines.
const (
	SchemeSpin = "foMPI-Spin"
	SchemeRW   = "foMPI-RW"
)

func init() {
	scheme.MustRegister(scheme.Descriptor{
		Name:    SchemeSpin,
		Aliases: []string{"fompi-spin", "spin"},
		Doc:     "foMPI-style centralized test-and-CAS spinlock baseline (all traffic on one rank)",
		Caps:    scheme.CapMutex | scheme.CapTimeout,
		Order:   10,
		New: func(m *rma.Machine, t scheme.Tunables) (scheme.Lock, error) {
			return scheme.WrapMutex(SchemeSpin, NewSpin(m)), nil
		},
	})
	scheme.MustRegister(scheme.Descriptor{
		Name:    SchemeRW,
		Aliases: []string{"fompi-rw"},
		Doc:     "foMPI-style centralized Reader-Writer lock baseline (reader count + writer bit on one word)",
		Caps:    scheme.CapMutex | scheme.CapRW | scheme.CapTimeout,
		Order:   40,
		New: func(m *rma.Machine, t scheme.Tunables) (scheme.Lock, error) {
			return scheme.WrapRW(SchemeRW, NewRW(m)), nil
		},
	})
}
