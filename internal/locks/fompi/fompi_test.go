package fompi

import (
	"testing"

	"rmalocks/internal/locks"
	"rmalocks/internal/locks/locktest"
	"rmalocks/internal/rma"
	"rmalocks/internal/topology"
)

func TestSpinMutualExclusion(t *testing.T) {
	locktest.StressMutex(t, topology.TwoLevel(2, 4),
		func(m *rma.Machine) locks.Mutex { return NewSpin(m) },
		locktest.Options{Iters: 20})
}

func TestSpinSingleProcess(t *testing.T) {
	topo := topology.TwoLevel(1, 1)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 1_000_000_000})
	l := NewSpin(m)
	err := m.Run(func(p *rma.Proc) {
		for i := 0; i < 5; i++ {
			l.Acquire(p)
			l.Release(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Retries != 0 {
		t.Errorf("uncontended spinlock retried %d times", l.Retries)
	}
}

func TestSpinContentionCausesRetries(t *testing.T) {
	topo := topology.TwoLevel(2, 8)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 60_000_000_000})
	l := NewSpin(m)
	err := m.Run(func(p *rma.Proc) {
		for i := 0; i < 10; i++ {
			l.Acquire(p)
			p.Compute(2000)
			l.Release(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Retries == 0 {
		t.Error("contended spinlock never retried; contention model broken?")
	}
}

func TestRWExclusionMixed(t *testing.T) {
	locktest.StressRW(t, topology.TwoLevel(2, 4),
		func(m *rma.Machine) locks.RWMutex { return NewRW(m) },
		1, 5, locktest.Options{Iters: 20})
}

func TestRWAllWriters(t *testing.T) {
	locktest.StressRW(t, topology.TwoLevel(2, 4),
		func(m *rma.Machine) locks.RWMutex { return NewRW(m) },
		1, 1, locktest.Options{Iters: 15})
}

func TestRWAllReaders(t *testing.T) {
	locktest.StressRW(t, topology.TwoLevel(2, 4),
		func(m *rma.Machine) locks.RWMutex { return NewRW(m) },
		0, 1, locktest.Options{Iters: 25})
}

func TestRWWriterPreference(t *testing.T) {
	// A writer claiming the lock blocks subsequent readers even while
	// earlier readers drain, so it cannot starve: with a continuous
	// stream of readers the writer must still finish.
	topo := topology.TwoLevel(1, 8)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 120_000_000_000})
	l := NewRW(m)
	var writerDone bool
	err := m.Run(func(p *rma.Proc) {
		if p.Rank() == 0 {
			p.Compute(20_000) // let readers build a stream first
			l.AcquireWrite(p)
			writerDone = true
			l.ReleaseWrite(p)
			return
		}
		for i := 0; i < 200 && !writerDone; i++ {
			l.AcquireRead(p)
			p.Compute(500)
			l.ReleaseRead(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !writerDone {
		t.Error("writer starved behind readers")
	}
}

func TestRWCentralizedHotSpot(t *testing.T) {
	// All foMPI-RW traffic targets rank 0: the op-distance statistics
	// must show essentially everything at distance >= 1 for other ranks.
	topo := topology.TwoLevel(2, 4)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 60_000_000_000})
	l := NewRW(m)
	err := m.Run(func(p *rma.Proc) {
		for i := 0; i < 5; i++ {
			l.AcquireRead(p)
			l.ReleaseRead(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Remote() == 0 {
		t.Error("no remote ops recorded for centralized lock")
	}
}
