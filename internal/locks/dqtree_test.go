package locks

import (
	"math"
	"testing"

	"rmalocks/internal/rma"
	"rmalocks/internal/topology"
)

func TestNodeRankPlacement(t *testing.T) {
	topo := topology.MustNew([]int{1, 2, 4}, 4) // 3 levels, 16 procs
	m := rma.NewMachine(topo)
	tr := NewDQTree(m, nil)
	// Leaf level: own rank.
	for p := 0; p < topo.Procs(); p++ {
		if got := tr.NodeRank(p, 3); got != p {
			t.Errorf("NodeRank(%d, leaf)=%d want %d", p, got, p)
		}
	}
	// Level 2 (racks): node of p at level 2 is the leader of p's level-3
	// element (its compute node).
	if got := tr.NodeRank(5, 2); got != topo.Leader(3, topo.Element(5, 3)) {
		t.Errorf("NodeRank(5,2)=%d", got)
	}
	// Level 1 (root): the leader of p's rack.
	if got := tr.NodeRank(13, 1); got != topo.Leader(2, topo.Element(13, 2)) {
		t.Errorf("NodeRank(13,1)=%d", got)
	}
}

func TestNodeRanksDistinctPerSiblingElement(t *testing.T) {
	// Two processes from different child elements must use different
	// nodes in the parent's queue.
	topo := topology.TwoLevel(4, 4)
	m := rma.NewMachine(topo)
	tr := NewDQTree(m, nil)
	seen := map[int]int{} // nodeRank -> element
	for p := 0; p < topo.Procs(); p++ {
		node := tr.NodeRank(p, 1)
		elem := topo.Element(p, 2)
		if prev, ok := seen[node]; ok && prev != elem {
			t.Fatalf("elements %d and %d share root node %d", prev, elem, node)
		}
		seen[node] = elem
	}
	if len(seen) != 4 {
		t.Errorf("expected 4 distinct root nodes, got %d", len(seen))
	}
}

func TestProductTL(t *testing.T) {
	topo := topology.MustNew([]int{1, 2, 4}, 2)
	m := rma.NewMachine(topo)
	tr := NewDQTree(m, []int64{0, 2, 3, 5})
	if got := tr.ProductTL(); got != 30 {
		t.Errorf("ProductTL=%d want 30", got)
	}
	// Unlimited level => unlimited product.
	m2 := rma.NewMachine(topo)
	tr2 := NewDQTree(m2, []int64{0, 0, 3, 5})
	if got := tr2.ProductTL(); got != math.MaxInt64 {
		t.Errorf("ProductTL=%d want MaxInt64", got)
	}
}

func TestEnterQueueEmptyThenGranted(t *testing.T) {
	topo := topology.TwoLevel(1, 2)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 1_000_000_000})
	tr := NewDQTree(m, []int64{0, 0, 8})
	var firstHadPred, secondHadPred bool
	var secondStatus int64
	err := m.Run(func(p *rma.Proc) {
		lvl := 2
		if p.Rank() == 0 {
			_, hadPred := tr.EnterQueue(p, lvl)
			firstHadPred = hadPred
			p.Compute(5000) // hold while rank 1 enqueues
			succ, status := tr.ReadNode(p, lvl)
			if succ == rma.Nil || status != StatusWait {
				// Successor may not have arrived yet; wait for it.
				succ = tr.Detach(p, lvl)
				if succ != rma.Nil {
					tr.Pass(p, lvl, succ, 1)
				}
				return
			}
			tr.Pass(p, lvl, succ, 1)
			return
		}
		p.Compute(1000) // enqueue second
		status, hadPred := tr.EnterQueue(p, lvl)
		secondHadPred = hadPred
		secondStatus = status
	})
	if err != nil {
		t.Fatal(err)
	}
	if firstHadPred {
		t.Error("first enqueuer saw a predecessor in an empty queue")
	}
	if !secondHadPred {
		t.Error("second enqueuer saw an empty queue")
	}
	if secondStatus != 1 {
		t.Errorf("granted status=%d want 1", secondStatus)
	}
}

func TestDetachEmptiesQueue(t *testing.T) {
	topo := topology.TwoLevel(1, 2)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 1_000_000_000})
	tr := NewDQTree(m, nil)
	err := m.Run(func(p *rma.Proc) {
		if p.Rank() != 0 {
			return
		}
		if _, hadPred := tr.EnterQueue(p, 2); hadPred {
			t.Error("unexpected predecessor")
		}
		if succ := tr.Detach(p, 2); succ != rma.Nil {
			t.Errorf("Detach returned %d from a single-entry queue", succ)
		}
		// The queue must be reusable afterwards.
		if _, hadPred := tr.EnterQueue(p, 2); hadPred {
			t.Error("queue not empty after detach")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPassStatisticsSplit(t *testing.T) {
	topo := topology.TwoLevel(1, 2)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 1_000_000_000})
	tr := NewDQTree(m, nil)
	err := m.Run(func(p *rma.Proc) {
		if p.Rank() != 0 {
			return
		}
		tr.EnterQueue(p, 2)
		tr.Pass(p, 2, int64(1), 3)                   // count grant
		tr.Pass(p, 2, int64(1), StatusAcquireParent) // upward redirect
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Passes[2] != 1 || tr.ParentReleases[2] != 1 {
		t.Errorf("Passes=%d ParentReleases=%d want 1/1", tr.Passes[2], tr.ParentReleases[2])
	}
}

func TestWriterOnlyAdapter(t *testing.T) {
	topo := topology.TwoLevel(1, 4)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 10_000_000_000})
	inner := NewDQTree(m, nil)
	_ = inner // adapter test uses a trivial mutex below
	mu := &countingMutex{}
	rw := WriterOnly{Mu: mu}
	err := m.Run(func(p *rma.Proc) {
		rw.AcquireRead(p)
		rw.ReleaseRead(p)
		rw.AcquireWrite(p)
		rw.ReleaseWrite(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if mu.acq != int64(2*topo.Procs()) || mu.rel != mu.acq {
		t.Errorf("adapter routed %d/%d calls", mu.acq, mu.rel)
	}
}

type countingMutex struct{ acq, rel int64 }

func (c *countingMutex) Acquire(p *rma.Proc) { c.acq++; p.Compute(1) }
func (c *countingMutex) Release(p *rma.Proc) { c.rel++; p.Compute(1) }
