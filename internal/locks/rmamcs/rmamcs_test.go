package rmamcs

import (
	"testing"

	"rmalocks/internal/locks"
	"rmalocks/internal/locks/locktest"
	"rmalocks/internal/rma"
	"rmalocks/internal/topology"
)

func factory(cfg Config) locktest.MutexFactory {
	return func(m *rma.Machine) locks.Mutex { return NewConfig(m, cfg) }
}

func TestMutualExclusionSingleNode(t *testing.T) {
	locktest.StressMutex(t, topology.TwoLevel(1, 8), factory(Config{}), locktest.Options{Iters: 25})
}

func TestMutualExclusionTwoLevel(t *testing.T) {
	locktest.StressMutex(t, topology.TwoLevel(4, 4), factory(Config{}), locktest.Options{Iters: 25})
}

func TestMutualExclusionThreeLevel(t *testing.T) {
	locktest.StressMutex(t, topology.MustNew([]int{1, 2, 4}, 4), factory(Config{}), locktest.Options{Iters: 15})
}

func TestMutualExclusionFourLevel(t *testing.T) {
	locktest.StressMutex(t, topology.MustNew([]int{1, 2, 4, 8}, 2), factory(Config{}), locktest.Options{Iters: 10})
}

func TestSmallThresholdForcesRotation(t *testing.T) {
	// T_L,2 = 1 hands the lock across nodes almost every time.
	locktest.StressMutex(t, topology.TwoLevel(4, 4),
		factory(Config{TL: []int64{0, 0, 1}}), locktest.Options{Iters: 20})
}

func TestLargeThresholdKeepsLocality(t *testing.T) {
	locktest.StressMutex(t, topology.TwoLevel(4, 4),
		factory(Config{TL: []int64{0, 0, 1 << 40}}), locktest.Options{Iters: 20})
}

func TestSingleLevelDegeneratesToMCS(t *testing.T) {
	// N=1: the tree is a single process-level queue, i.e., plain D-MCS.
	locktest.StressMutex(t, topology.MustNew([]int{1}, 8), factory(Config{}), locktest.Options{Iters: 25})
}

func TestLocalityShortcutsHappen(t *testing.T) {
	// With several writers per node and a high threshold, most
	// acquisitions must short-cut via intra-element passes.
	topo := topology.TwoLevel(4, 8)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 120_000_000_000})
	l := NewConfig(m, Config{TL: []int64{0, 0, 64}})
	err := m.Run(func(p *rma.Proc) {
		for i := 0; i < 20; i++ {
			l.Acquire(p)
			p.Compute(300)
			l.Release(p)
			p.Compute(100)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	total := int64(20 * topo.Procs())
	if l.Acquires != total {
		t.Fatalf("Acquires=%d want %d", l.Acquires, total)
	}
	if l.DirectEntries == 0 {
		t.Error("no locality shortcuts with T_L=64; topology-awareness broken?")
	}
	frac := float64(l.DirectEntries) / float64(total)
	if frac < 0.5 {
		t.Errorf("only %.0f%% shortcut entries; expected majority with high T_L", frac*100)
	}
}

func TestThresholdBoundsConsecutiveLocalPasses(t *testing.T) {
	// With T_L,2 = 2, no more than 3 consecutive CS entries may come from
	// the same node (statuses 0,1,2 then forced hand-over).
	topo := topology.TwoLevel(2, 4)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 120_000_000_000})
	l := NewConfig(m, Config{TL: []int64{0, 0, 2}})
	var order []int
	err := m.Run(func(p *rma.Proc) {
		for i := 0; i < 25; i++ {
			l.Acquire(p)
			order = append(order, p.Rank())
			p.Compute(200)
			l.Release(p)
			p.Compute(50)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	run, maxRun := 0, 0
	prevNode := -1
	for _, r := range order {
		node := topo.Element(r, 2)
		if node == prevNode {
			run++
		} else {
			run = 1
			prevNode = node
		}
		if run > maxRun {
			maxRun = run
		}
	}
	// A burst is bounded by T_L+1 entries... plus the burst of the next
	// queue round if the other node's queue is empty; allow 2*(T_L+1).
	if maxRun > 6 {
		t.Errorf("max same-node run=%d, want <= 6 with T_L,2=2", maxRun)
	}
}

func TestPassStatisticsConsistent(t *testing.T) {
	topo := topology.TwoLevel(2, 4)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 120_000_000_000})
	l := New(m)
	const iters = 15
	err := m.Run(func(p *rma.Proc) {
		for i := 0; i < iters; i++ {
			l.Acquire(p)
			p.Compute(100)
			l.Release(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tree := l.Tree()
	var passes int64
	for i := 1; i <= tree.Levels(); i++ {
		passes += tree.Passes[i]
	}
	if passes == 0 {
		t.Error("no lock passes recorded under contention")
	}
	if passes >= int64(topo.Procs()*iters) {
		t.Errorf("passes=%d exceed total acquires", passes)
	}
}

func TestDefaultThresholds(t *testing.T) {
	topo := topology.MustNew([]int{1, 2, 4}, 2)
	m := rma.NewMachine(topo)
	l := New(m)
	tree := l.Tree()
	if tree.TL[2] != DefaultTL || tree.TL[3] != DefaultTL {
		t.Errorf("defaults not applied: %v", tree.TL[1:])
	}
	if tree.TL[1] <= DefaultTL {
		t.Error("root threshold must be unlimited for RMA-MCS")
	}
}
