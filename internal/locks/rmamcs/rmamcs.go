// Package rmamcs implements RMA-MCS, the paper's topology-aware
// distributed MCS lock (§3.5): a distributed tree (DT) of distributed
// queues (DQ), one DQ per machine element per level, with per-level
// locality thresholds T_L,i trading fairness for locality. It is the
// paper's Listings 4–5 restricted to writers only (no distributed counter,
// no readers), with T_L,1 not applicable (the root queue passes the lock
// indefinitely, since there are no readers to hand over to).
package rmamcs

import (
	"fmt"
	"math"
	"sync/atomic"

	"rmalocks/internal/locks"
	"rmalocks/internal/rma"
)

// Config selects the locality thresholds.
type Config struct {
	// TL[i] is T_L,i for level i (1-based; TL[0] ignored). Level 1 is
	// forced to "unlimited" per §3.5. Missing or zero entries default to
	// DefaultTL.
	TL []int64
}

// DefaultTL is the default locality threshold for every level below the
// root.
const DefaultTL int64 = 32

// Lock is an RMA-MCS lock instance.
type Lock struct {
	tree *locks.DQTree
	n    int
	id   int // trace lock id (Machine.RegisterLock)

	// Acquires counts lock acquisitions.
	Acquires int64
	// DirectEntries counts acquisitions that short-cut into the CS via an
	// intra-element pass without reaching the root (locality wins).
	DirectEntries int64
}

// New allocates an RMA-MCS lock on m with default thresholds.
func New(m *rma.Machine) *Lock { return NewConfig(m, Config{}) }

// NewConfig allocates an RMA-MCS lock with explicit thresholds.
func NewConfig(m *rma.Machine, cfg Config) *Lock {
	n := m.Topology().Levels()
	tl := make([]int64, n+1)
	for i := 2; i <= n; i++ {
		tl[i] = DefaultTL
		if i < len(cfg.TL) && cfg.TL[i] > 0 {
			tl[i] = cfg.TL[i]
		}
	}
	tl[1] = math.MaxInt64 // no readers to yield to at the root (§3.5)
	l := &Lock{tree: locks.NewDQTree(m, tl), n: n, id: m.RegisterLock()}
	m.OnInit(func(*rma.Machine) { l.Acquires = 0; l.DirectEntries = 0 })
	return l
}

// Tree exposes the underlying DQ tree (for statistics and tests).
func (l *Lock) Tree() *locks.DQTree { return l.tree }

// Acquire climbs the DT from the leaf level N toward the root (Listing 4).
// At each level it enqueues into the DQ of its machine element; a direct
// pass from a predecessor grants the global lock immediately, otherwise
// the process continues one level up on behalf of its element.
func (l *Lock) Acquire(p *rma.Proc) {
	p.TraceAcquireStart(l.id, true)
	l.acquire(p)
	p.TraceAcquired(l.id, true)
}

func (l *Lock) acquire(p *rma.Proc) {
	for i := l.n; i >= 1; i-- {
		status, hadPred := l.tree.EnterQueue(p, i)
		if hadPred {
			if status >= 0 {
				// T_L,i not reached: the lock was passed to us and we
				// directly proceed to the CS.
				atomic.AddInt64(&l.Acquires, 1)
				if i >= 2 {
					atomic.AddInt64(&l.DirectEntries, 1) // short-cut: never reached the root
				}
				return
			}
			if status != locks.StatusAcquireParent {
				panic(fmt.Sprintf("rmamcs: unexpected status %d at level %d", status, i))
			}
		}
		// No predecessor, or the predecessor released to the parent:
		// start acquiring the next level of the tree.
		l.tree.SetStatus(p, i, locks.StatusAcquireStart)
	}
	// Reached past the root with every level's queue empty or handed
	// over: we hold the global lock.
	atomic.AddInt64(&l.Acquires, 1)
}

// Release walks the DT from the leaf (Listing 5): at each level it passes
// the lock within the element while T_L,i is not reached; otherwise it
// first releases the parent level, then detaches or tells its successor to
// acquire the parent itself.
func (l *Lock) Release(p *rma.Proc) {
	p.TraceRelease(l.id, true)
	l.releaseLevel(p, l.n)
}

func (l *Lock) releaseLevel(p *rma.Proc, i int) {
	succ, status := l.tree.ReadNode(p, i)
	if succ != rma.Nil && status < l.tree.TL[i] {
		// Pass the lock to succ at level i together with the number of
		// past lock passings within this machine element.
		l.tree.Pass(p, i, succ, status+1)
		return
	}
	// No known successor, or T_L,i reached: release the parent first.
	if i > 1 {
		l.releaseLevel(p, i-1)
	}
	if succ == rma.Nil {
		succ = l.tree.Detach(p, i)
		if succ == rma.Nil {
			return // queue emptied; level-i lock is free
		}
		if i == 1 {
			// A late arrival at the root gets the lock itself (there is
			// no parent to re-acquire).
			l.tree.Pass(p, i, succ, status+1)
			return
		}
	}
	// Notify succ to acquire the lock at level i-1.
	l.tree.Pass(p, i, succ, locks.StatusAcquireParent)
}
