package rmamcs

import (
	"math"

	"rmalocks/internal/rma"
	"rmalocks/internal/scheme"
)

// SchemeName is the canonical registry name of this lock.
const SchemeName = "RMA-MCS"

func init() {
	scheme.MustRegister(scheme.Descriptor{
		Name:    SchemeName,
		Aliases: []string{"rmamcs"},
		Doc: "topology-aware distributed MCS lock (§3.5): tree of distributed queues with locality thresholds",
		// No CapTimeout: the distributed-queue nodes cannot be unlinked
		// without successor cooperation (same constraint as D-MCS, at
		// every tree level).
		Caps: scheme.CapMutex,
		Order:   30,
		Tunables: []scheme.TunableSpec{
			{Key: "TL", Doc: "locality threshold T_L,i of tree level i (level 1 is ignored: with no readers the root passes indefinitely, §3.5)",
				Default: DefaultTL, Min: 1, Max: math.MaxInt64, PerLevel: true},
		},
		New: func(m *rma.Machine, t scheme.Tunables) (scheme.Lock, error) {
			l := NewConfig(m, Config{TL: t.LevelSlice("TL", m.Topology().Levels())})
			return scheme.WrapMutex(SchemeName, l), nil
		},
	})
}
