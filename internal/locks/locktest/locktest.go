// Package locktest provides reusable conformance harnesses for the lock
// implementations: randomized stress programs that check mutual exclusion,
// reader-writer exclusion, progress (via the simulator's virtual-time
// limit) and completion, mirroring the designated-verifier approach of the
// paper's §4.4.
package locktest

import (
	"testing"

	"rmalocks/internal/locks"
	"rmalocks/internal/rma"
	"rmalocks/internal/topology"
)

// MutexFactory builds a mutex on a machine (called before Machine.Run).
type MutexFactory func(m *rma.Machine) locks.Mutex

// RWFactory builds an RW lock on a machine (called before Machine.Run).
type RWFactory func(m *rma.Machine) locks.RWMutex

// Options tunes a stress run.
type Options struct {
	// Iters is the number of acquire/release cycles per process.
	Iters int
	// CSWork is the virtual nanoseconds spent inside the critical
	// section (plus a small random jitter), creating overlap windows.
	CSWork int64
	// TimeLimit aborts a hung run (virtual ns). Default 60 ms.
	TimeLimit int64
	// Seed seeds the machine RNGs.
	Seed int64
}

func (o *Options) fill() {
	if o.Iters == 0 {
		o.Iters = 20
	}
	if o.CSWork == 0 {
		o.CSWork = 500
	}
	if o.TimeLimit == 0 {
		o.TimeLimit = 60_000_000_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// StressMutex runs Iters acquire/release cycles on every process and
// checks mutual exclusion plus a lost-update-free shared counter.
func StressMutex(t *testing.T, topo *topology.Topology, mk MutexFactory, opt Options) {
	t.Helper()
	opt.fill()
	m := rma.NewMachineConfig(topo, rma.Config{Seed: opt.Seed, TimeLimit: opt.TimeLimit})
	mu := mk(m)
	var (
		inCS    int
		maxInCS int
		counter int64 // deliberately unprotected: the lock must protect it
		viol    int
	)
	err := m.Run(func(p *rma.Proc) {
		for it := 0; it < opt.Iters; it++ {
			mu.Acquire(p)
			inCS++
			if inCS > maxInCS {
				maxInCS = inCS
			}
			if inCS != 1 {
				viol++
			}
			v := counter
			p.Compute(opt.CSWork + int64(p.Rand().Intn(100)))
			counter = v + 1
			inCS--
			mu.Release(p)
			p.Compute(int64(p.Rand().Intn(200)) + 1)
		}
	})
	if err != nil {
		t.Fatalf("stress run failed: %v", err)
	}
	if viol != 0 {
		t.Errorf("mutual exclusion violated %d times (max concurrent %d)", viol, maxInCS)
	}
	want := int64(topo.Procs() * opt.Iters)
	if counter != want {
		t.Errorf("lost updates: counter=%d want %d", counter, want)
	}
}

// WriterPattern decides deterministically whether iteration it of rank r
// acts as a writer, spreading a writer fraction of fwNum/fwDen evenly
// across ranks and iterations.
func WriterPattern(r, it int, fwNum, fwDen int) bool {
	if fwNum <= 0 {
		return false
	}
	if fwNum >= fwDen {
		return true
	}
	k := (r*7919 + it) % fwDen // deterministic spread over ranks and time
	return k < fwNum
}

// Pattern decides how iteration it of process p behaves: whether it
// enters exclusively (write) and how long it thinks after release.
// Implementations must draw randomness only from p.Rand() so stress runs
// stay deterministic; contention generators from internal/workload plug
// in here via a small closure.
type Pattern func(p *rma.Proc, it int) (write bool, think int64)

// StressRW runs a mixed reader/writer workload (writer fraction
// fwNum/fwDen) and checks reader-writer exclusion, writer-writer
// exclusion, and a writer-protected counter. It also reports whether any
// two readers ever overlapped in the CS (reader parallelism).
func StressRW(t *testing.T, topo *topology.Topology, mk RWFactory, fwNum, fwDen int, opt Options) {
	t.Helper()
	StressRWPattern(t, topo, mk, func(p *rma.Proc, it int) (bool, int64) {
		return WriterPattern(p.Rank(), it, fwNum, fwDen), 0
	}, opt)
}

// StressRWPattern runs a mixed workload whose per-iteration behaviour is
// decided by pat and checks the same invariants as StressRW: mutual
// writer exclusion, reader-writer exclusion, and a writer-protected
// counter; progress is enforced by the virtual-time limit.
func StressRWPattern(t *testing.T, topo *topology.Topology, mk RWFactory, pat Pattern, opt Options) {
	t.Helper()
	opt.fill()
	m := rma.NewMachineConfig(topo, rma.Config{Seed: opt.Seed, TimeLimit: opt.TimeLimit})
	rw := mk(m)
	var (
		readersIn     int
		writersIn     int
		maxReadersIn  int
		violations    int
		counter       int64
		writerEntries int64
	)
	var readerEntries int64
	err := m.Run(func(p *rma.Proc) {
		for it := 0; it < opt.Iters; it++ {
			write, think := pat(p, it)
			if write {
				rw.AcquireWrite(p)
				writersIn++
				if writersIn != 1 || readersIn != 0 {
					violations++
				}
				v := counter
				p.Compute(opt.CSWork + int64(p.Rand().Intn(100)))
				counter = v + 1
				writerEntries++
				writersIn--
				rw.ReleaseWrite(p)
			} else {
				rw.AcquireRead(p)
				readersIn++
				readerEntries++
				if readersIn > maxReadersIn {
					maxReadersIn = readersIn
				}
				if writersIn != 0 {
					violations++
				}
				v := counter
				p.Compute(opt.CSWork + int64(p.Rand().Intn(100)))
				if counter != v {
					violations++ // a writer snuck in while we read
				}
				readersIn--
				rw.ReleaseRead(p)
			}
			p.Compute(int64(p.Rand().Intn(200)) + 1)
			if think > 0 {
				p.Compute(think)
			}
		}
	})
	if err != nil {
		t.Fatalf("stress run failed: %v", err)
	}
	if violations != 0 {
		t.Errorf("reader/writer exclusion violated %d times", violations)
	}
	if counter != writerEntries {
		t.Errorf("writer counter=%d want %d", counter, writerEntries)
	}
	if readerEntries > 0 && topo.Procs() >= 4 && maxReadersIn < 2 {
		t.Logf("note: readers never overlapped (maxReadersIn=%d); workload may be too small", maxReadersIn)
	}
}
