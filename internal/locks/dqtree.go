package locks

import (
	"math"
	"sync/atomic"

	"rmalocks/internal/rma"
	"rmalocks/internal/topology"
)

// DQTree is the distributed tree (DT) of distributed queues (DQ) shared by
// RMA-MCS and RMA-RW (paper §3.2.2–§3.2.3). Every machine element at every
// level owns a DQ (an MCS-style queue); the DQs of one level share an RMA
// window with NEXT/STATUS words per queue node and a TAIL word per element
// (stored at the element's tail rank).
//
// Queue-node placement: at the leaf level N nodes are per-process (a
// process enqueues itself); at levels i < N a node represents a whole
// level-(i+1) element and lives at that element's leader rank, so whichever
// process currently holds the element's local lock can act on the parent
// queue on the element's behalf. The paper's per-process pseudocode relies
// on this (its HMCS heritage); see DESIGN.md §2 for the discussion.
type DQTree struct {
	m    *rma.Machine
	topo *topology.Topology
	// TL[i] is the locality threshold T_L,i of level i (1-based; TL[0]
	// unused). math.MaxInt64 disables hand-over at that level.
	TL []int64
	// Per-level window offsets (1-based, index 0 unused).
	nextOff   []int
	statusOff []int
	tailOff   []int

	// Statistics, maintained single-runner (safe in the simulator).
	// Passes[i] counts direct intra-element lock passes at level i;
	// ParentReleases[i] counts hand-overs to the parent of level i.
	Passes         []int64
	ParentReleases []int64
}

// NewDQTree allocates window space for a tree over m's topology with the
// given per-level locality thresholds (tl[i] for level i; tl[0] ignored;
// a zero or missing entry means "unlimited"). Must be called before m.Run.
func NewDQTree(m *rma.Machine, tl []int64) *DQTree {
	topo := m.Topology()
	n := topo.Levels()
	t := &DQTree{
		m:              m,
		topo:           topo,
		TL:             make([]int64, n+1),
		nextOff:        make([]int, n+1),
		statusOff:      make([]int, n+1),
		tailOff:        make([]int, n+1),
		Passes:         make([]int64, n+1),
		ParentReleases: make([]int64, n+1),
	}
	for i := 1; i <= n; i++ {
		t.TL[i] = math.MaxInt64
		if i < len(tl) && tl[i] > 0 {
			t.TL[i] = tl[i]
		}
		t.nextOff[i] = m.Alloc(1)
		t.statusOff[i] = m.Alloc(1)
		t.tailOff[i] = m.Alloc(1)
	}
	m.OnInit(func(m *rma.Machine) {
		for r := 0; r < topo.Procs(); r++ {
			for i := 1; i <= n; i++ {
				m.Set(r, t.nextOff[i], rma.Nil)
				m.Set(r, t.statusOff[i], StatusWait)
				m.Set(r, t.tailOff[i], rma.Nil)
			}
		}
		for i := range t.Passes {
			t.Passes[i] = 0
			t.ParentReleases[i] = 0
		}
	})
	return t
}

// Levels returns N.
func (t *DQTree) Levels() int { return t.topo.Levels() }

// ProductTL returns Π T_L,i over all levels: the writer threshold T_W of
// the paper. Saturates at MaxInt64.
func (t *DQTree) ProductTL() int64 {
	prod := int64(1)
	for i := 1; i <= t.Levels(); i++ {
		if t.TL[i] == math.MaxInt64 {
			return math.MaxInt64
		}
		if prod > math.MaxInt64/t.TL[i] {
			return math.MaxInt64
		}
		prod *= t.TL[i]
	}
	return prod
}

// NodeRank returns the rank hosting the queue node that process p uses at
// level i: p itself at the leaf, the leader of p's level-(i+1) element
// otherwise.
func (t *DQTree) NodeRank(p int, i int) int {
	if i == t.topo.Levels() {
		return p
	}
	return t.topo.Leader(i+1, t.topo.Element(p, i+1))
}

// TailRank returns the rank hosting the TAIL word of the DQ that process p
// enqueues into at level i: the tail rank of e(p, i).
func (t *DQTree) TailRank(p int, i int) int {
	return t.topo.TailRank(i, t.topo.Element(p, i))
}

// EnterQueue performs the enqueue part of the paper's Listing 4 at level
// i: it prepares p's node, swaps itself into the element's TAIL and, if
// there is a predecessor, links behind it and spin-waits for a grant.
//
// It returns (status, hadPred): when hadPred is true, status is the first
// non-WAIT value the predecessor installed (a count ≥ 0 meaning "the CS is
// yours", StatusAcquireParent, or StatusModeChange); when hadPred is false
// the queue was empty and the caller holds the level-i lock of its element
// and must proceed toward the root.
func (t *DQTree) EnterQueue(p *rma.Proc, i int) (int64, bool) {
	node := t.NodeRank(p.Rank(), i)
	p.Put(rma.Nil, node, t.nextOff[i])
	p.Put(StatusWait, node, t.statusOff[i])
	p.Flush(node)
	tail := t.TailRank(p.Rank(), i)
	pred := p.FAO(int64(node), tail, t.tailOff[i], rma.OpReplace)
	p.Flush(tail)
	if pred == rma.Nil {
		return StatusWait, false
	}
	p.Put(int64(node), int(pred), t.nextOff[i])
	p.Flush(int(pred))
	status := p.SpinUntil(node, t.statusOff[i], func(v int64) bool { return v != StatusWait })
	return status, true
}

// SetStatus installs a status value in p's node at level i (used to write
// ACQUIRE_START before climbing, per Listing 4 line 22).
func (t *DQTree) SetStatus(p *rma.Proc, i int, v int64) {
	node := t.NodeRank(p.Rank(), i)
	p.Put(v, node, t.statusOff[i])
	p.Flush(node)
}

// ReadNode returns the successor pointer and status of p's node at level i
// (Listing 5 lines 3–4).
func (t *DQTree) ReadNode(p *rma.Proc, i int) (succ int64, status int64) {
	node := t.NodeRank(p.Rank(), i)
	succ = p.Get(node, t.nextOff[i])
	status = p.Get(node, t.statusOff[i])
	p.Flush(node)
	return succ, status
}

// Pass grants the level-i lock to the successor node succ with the given
// status value (a count, ACQUIRE_PARENT, or MODE_CHANGE).
func (t *DQTree) Pass(p *rma.Proc, i int, succ int64, status int64) {
	p.Put(status, int(succ), t.statusOff[i])
	p.Flush(int(succ))
	if status >= 0 {
		atomic.AddInt64(&t.Passes[i], 1)
	} else {
		atomic.AddInt64(&t.ParentReleases[i], 1)
	}
}

// Detach removes p's node from the level-i queue when it observed no
// successor (Listing 5 lines 13–20): it CASes TAIL back to ∅ and, if some
// process enqueued concurrently, waits until that successor links itself
// and returns its node. Returns rma.Nil if the queue was emptied.
func (t *DQTree) Detach(p *rma.Proc, i int) int64 {
	node := t.NodeRank(p.Rank(), i)
	tail := t.TailRank(p.Rank(), i)
	curr := p.CAS(rma.Nil, int64(node), tail, t.tailOff[i])
	p.Flush(tail)
	if curr == int64(node) {
		return rma.Nil
	}
	return p.SpinUntil(node, t.nextOff[i], func(v int64) bool { return v != rma.Nil })
}

// TailValue reads the TAIL of element elem's DQ at level i directly from
// machine memory (diagnostics; valid after a run or in OnInit).
func (t *DQTree) TailValue(m *rma.Machine, i, elem int) int64 {
	return m.At(t.topo.TailRank(i, elem), t.tailOff[i])
}

// NodeState reads a queue node's (NEXT, STATUS) words directly from
// machine memory (diagnostics).
func (t *DQTree) NodeState(m *rma.Machine, i, nodeRank int) (next, status int64) {
	return m.At(nodeRank, t.nextOff[i]), m.At(nodeRank, t.statusOff[i])
}

// ReadTail returns the current TAIL of the DQ that process rank belongs to
// at level i (used by RMA-RW readers to detect waiting writers).
func (t *DQTree) ReadTail(p *rma.Proc, i int, rank int) int64 {
	tail := t.topo.TailRank(i, t.topo.Element(rank, i))
	v := p.Get(tail, t.tailOff[i])
	p.Flush(tail)
	return v
}
