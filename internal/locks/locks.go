// Package locks defines the lock interfaces shared by all lock
// implementations in this repository, the STATUS-field encoding of the
// paper (§3.2.4), and the generic distributed-queue tree (DT of DQs) that
// RMA-MCS and RMA-RW are built from.
package locks

import "rmalocks/internal/rma"

// Mutex is a distributed mutual-exclusion lock. Implementations keep all
// state in RMA windows; the methods are called from simulated process
// goroutines with that process's rma.Proc.
type Mutex interface {
	// Acquire blocks (in virtual time) until the calling process holds
	// the lock.
	Acquire(p *rma.Proc)
	// Release hands the lock over; the caller must hold it.
	Release(p *rma.Proc)
}

// RWMutex is a distributed Reader-Writer lock: multiple concurrent
// readers, or one exclusive writer.
type RWMutex interface {
	AcquireRead(p *rma.Proc)
	ReleaseRead(p *rma.Proc)
	AcquireWrite(p *rma.Proc)
	ReleaseWrite(p *rma.Proc)
}

// TryMutex is a Mutex supporting bounded acquisition: give up instead of
// spinning forever behind a stalled holder. Queue locks whose enqueued
// node cannot be unlinked without cooperation (MCS-style) deliberately do
// NOT implement it; the scheme registry surfaces support as the
// CapTimeout capability.
type TryMutex interface {
	Mutex
	// TryAcquireFor attempts the acquire for at most timeout virtual ns
	// from the call's effective clock. On failure it returns false with
	// the lock state fully restored (nothing enqueued, nothing held) and
	// the attempt resolved in the trace stream (EvAcqTimeout).
	TryAcquireFor(p *rma.Proc, timeout int64) bool
}

// TryRWMutex is an RWMutex supporting bounded acquisition in both modes,
// with the same clean-abandon contract as TryMutex.
type TryRWMutex interface {
	RWMutex
	TryAcquireReadFor(p *rma.Proc, timeout int64) bool
	TryAcquireWriteFor(p *rma.Proc, timeout int64) bool
}

// WriterOnly adapts a Mutex to the RWMutex interface by treating every
// reader as a writer; used to run RW workloads over plain mutexes.
type WriterOnly struct{ Mu Mutex }

func (w WriterOnly) AcquireRead(p *rma.Proc)  { w.Mu.Acquire(p) }
func (w WriterOnly) ReleaseRead(p *rma.Proc)  { w.Mu.Release(p) }
func (w WriterOnly) AcquireWrite(p *rma.Proc) { w.Mu.Acquire(p) }
func (w WriterOnly) ReleaseWrite(p *rma.Proc) { w.Mu.Release(p) }

// TryWriterOnly adapts a TryMutex to the TryRWMutex interface the same
// way WriterOnly adapts a Mutex.
type TryWriterOnly struct{ Mu TryMutex }

func (w TryWriterOnly) AcquireRead(p *rma.Proc)  { w.Mu.Acquire(p) }
func (w TryWriterOnly) ReleaseRead(p *rma.Proc)  { w.Mu.Release(p) }
func (w TryWriterOnly) AcquireWrite(p *rma.Proc) { w.Mu.Acquire(p) }
func (w TryWriterOnly) ReleaseWrite(p *rma.Proc) { w.Mu.Release(p) }
func (w TryWriterOnly) TryAcquireReadFor(p *rma.Proc, timeout int64) bool {
	return w.Mu.TryAcquireFor(p, timeout)
}
func (w TryWriterOnly) TryAcquireWriteFor(p *rma.Proc, timeout int64) bool {
	return w.Mu.TryAcquireFor(p, timeout)
}

// STATUS-field encoding (paper §3.2.4): two negative sentinels plus
// non-negative "enter the CS" values that simultaneously carry the count
// of past consecutive lock acquires within the machine element.
const (
	// StatusWait makes the owner spin; set before enqueueing.
	StatusWait int64 = -1
	// StatusAcquireParent tells the owner it must acquire the lock at the
	// parent tree level instead of entering the CS.
	StatusAcquireParent int64 = -2
	// StatusModeChange (level 1 of RMA-RW only) tells the owner the lock
	// mode changed to READ and it must reclaim the counters.
	StatusModeChange int64 = -3
	// StatusAcquireStart is the count value installed when a process
	// starts acquiring a level on behalf of its element.
	StatusAcquireStart int64 = 0
)
