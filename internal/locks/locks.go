// Package locks defines the lock interfaces shared by all lock
// implementations in this repository, the STATUS-field encoding of the
// paper (§3.2.4), and the generic distributed-queue tree (DT of DQs) that
// RMA-MCS and RMA-RW are built from.
package locks

import "rmalocks/internal/rma"

// Mutex is a distributed mutual-exclusion lock. Implementations keep all
// state in RMA windows; the methods are called from simulated process
// goroutines with that process's rma.Proc.
type Mutex interface {
	// Acquire blocks (in virtual time) until the calling process holds
	// the lock.
	Acquire(p *rma.Proc)
	// Release hands the lock over; the caller must hold it.
	Release(p *rma.Proc)
}

// RWMutex is a distributed Reader-Writer lock: multiple concurrent
// readers, or one exclusive writer.
type RWMutex interface {
	AcquireRead(p *rma.Proc)
	ReleaseRead(p *rma.Proc)
	AcquireWrite(p *rma.Proc)
	ReleaseWrite(p *rma.Proc)
}

// WriterOnly adapts a Mutex to the RWMutex interface by treating every
// reader as a writer; used to run RW workloads over plain mutexes.
type WriterOnly struct{ Mu Mutex }

func (w WriterOnly) AcquireRead(p *rma.Proc)  { w.Mu.Acquire(p) }
func (w WriterOnly) ReleaseRead(p *rma.Proc)  { w.Mu.Release(p) }
func (w WriterOnly) AcquireWrite(p *rma.Proc) { w.Mu.Acquire(p) }
func (w WriterOnly) ReleaseWrite(p *rma.Proc) { w.Mu.Release(p) }

// STATUS-field encoding (paper §3.2.4): two negative sentinels plus
// non-negative "enter the CS" values that simultaneously carry the count
// of past consecutive lock acquires within the machine element.
const (
	// StatusWait makes the owner spin; set before enqueueing.
	StatusWait int64 = -1
	// StatusAcquireParent tells the owner it must acquire the lock at the
	// parent tree level instead of entering the CS.
	StatusAcquireParent int64 = -2
	// StatusModeChange (level 1 of RMA-RW only) tells the owner the lock
	// mode changed to READ and it must reclaim the counters.
	StatusModeChange int64 = -3
	// StatusAcquireStart is the count value installed when a process
	// starts acquiring a level on behalf of its element.
	StatusAcquireStart int64 = 0
)
