// Package topology models the hierarchical structure of a distributed
// machine: a tree of machine elements (the whole machine, racks, compute
// nodes, ...) with processes placed block-wise on the leaves.
//
// It provides the mappings the paper's locks consume:
//
//   - e(p, i): the element a process p belongs to at level i (§3.2.3),
//   - c(p): the rank hosting the physical counter of reader p (§3.2.1),
//   - tail_rank[i, j]: the rank that stores the TAIL pointer of the
//     distributed queue of element j at level i (§3.2.2),
//   - the leader rank of an element, used to host per-element queue nodes.
//
// Levels are numbered as in the paper: level 1 is the root (the whole
// machine, one element) and level N is the leaf level (compute nodes).
// Elements at each level are indexed from 0. Ranks are 0-based; the null
// rank is represented by rma.Nil (-1) elsewhere.
package topology

import (
	"fmt"
	"math"
	"strings"
)

// RankOverflowError reports a machine whose total rank count would
// overflow the int32 rank ids used throughout the scheduler core
// (internal/sim trafficks in int32 ids; see sim.MaxProcs).
type RankOverflowError struct {
	// Leaves is the number of leaf elements, ProcsPerLeaf the processes
	// on each; their product is the offending rank count.
	Leaves       int
	ProcsPerLeaf int
}

func (e *RankOverflowError) Error() string {
	return fmt.Sprintf("topology: %d leaves x %d procs/leaf = %d ranks overflows int32 rank ids (max %d)",
		e.Leaves, e.ProcsPerLeaf, int64(e.Leaves)*int64(e.ProcsPerLeaf), math.MaxInt32)
}

// Topology describes a machine with N levels. Elements at level i+1 are
// distributed evenly among elements at level i, and processes are assigned
// to leaf elements in contiguous rank blocks, matching the paper's setup
// (x processes per node, node s hosting ranks (s-1)x .. sx-1).
type Topology struct {
	// counts[i-1] is the number of elements at level i. counts[0] == 1.
	counts []int
	// procsPerLeaf is the number of processes on each leaf element.
	procsPerLeaf int
	// p is the total number of processes.
	p int
}

// New builds a topology from the number of elements at each level (root
// first; the root count must be 1) and the number of processes per leaf
// element. Each level's element count must be a multiple of its parent's.
func New(elementsPerLevel []int, procsPerLeaf int) (*Topology, error) {
	if len(elementsPerLevel) == 0 {
		return nil, fmt.Errorf("topology: need at least one level")
	}
	if elementsPerLevel[0] != 1 {
		return nil, fmt.Errorf("topology: level 1 (root) must have exactly 1 element, got %d", elementsPerLevel[0])
	}
	for i := 1; i < len(elementsPerLevel); i++ {
		cur, par := elementsPerLevel[i], elementsPerLevel[i-1]
		if cur <= 0 {
			return nil, fmt.Errorf("topology: level %d has non-positive element count %d", i+1, cur)
		}
		if cur%par != 0 {
			return nil, fmt.Errorf("topology: level %d count %d not a multiple of parent count %d", i+1, cur, par)
		}
	}
	if procsPerLeaf <= 0 {
		return nil, fmt.Errorf("topology: procsPerLeaf must be positive, got %d", procsPerLeaf)
	}
	leaves := elementsPerLevel[len(elementsPerLevel)-1]
	// Guard each factor before the product so the int64 multiply below
	// cannot itself wrap on adversarial inputs.
	if leaves > math.MaxInt32 || procsPerLeaf > math.MaxInt32 ||
		int64(leaves)*int64(procsPerLeaf) > math.MaxInt32 {
		return nil, &RankOverflowError{Leaves: leaves, ProcsPerLeaf: procsPerLeaf}
	}
	counts := make([]int, len(elementsPerLevel))
	copy(counts, elementsPerLevel)
	return &Topology{
		counts:       counts,
		procsPerLeaf: procsPerLeaf,
		p:            counts[len(counts)-1] * procsPerLeaf,
	}, nil
}

// MustNew is New but panics on error; intended for tests and examples with
// literal arguments.
func MustNew(elementsPerLevel []int, procsPerLeaf int) *Topology {
	t, err := New(elementsPerLevel, procsPerLeaf)
	if err != nil {
		panic(err)
	}
	return t
}

// TwoLevel builds the evaluation machine of the paper (§5): N=2 with the
// whole machine at level 1 and compute nodes at level 2.
func TwoLevel(nodes, procsPerNode int) *Topology {
	return MustNew([]int{1, nodes}, procsPerNode)
}

// ForProcs builds a two-level machine with the given number of processes
// and processes per node, adding a final partially-unused node if p is not
// a multiple of procsPerNode. It mirrors how the paper scales P on a fixed
// 16-procs-per-node machine.
func ForProcs(p, procsPerNode int) *Topology {
	if p < procsPerNode {
		// Everything fits in one node; shrink the node so P == p.
		return TwoLevel(1, p)
	}
	nodes := (p + procsPerNode - 1) / procsPerNode
	t := TwoLevel(nodes, procsPerNode)
	t.p = p
	return t
}

// Levels returns N, the number of levels of the machine.
func (t *Topology) Levels() int { return len(t.counts) }

// Procs returns P, the total number of processes.
func (t *Topology) Procs() int { return t.p }

// ProcsPerLeaf returns the number of processes per leaf element.
func (t *Topology) ProcsPerLeaf() int { return t.procsPerLeaf }

// Elements returns N_i, the number of elements at level i (1 ≤ i ≤ N).
// Note this is the declared machine size; with a partially-filled last
// node (see ForProcs) some trailing elements may host fewer processes.
func (t *Topology) Elements(level int) int {
	t.checkLevel(level)
	return t.counts[level-1]
}

// Element returns e(p, i): the element id at level i that process p
// belongs to (0-based).
func (t *Topology) Element(p, level int) int {
	t.checkRank(p)
	t.checkLevel(level)
	leaf := p / t.procsPerLeaf
	// Leaves are distributed evenly among the elements of every upper
	// level, so the ancestor at level i is a contiguous-block division.
	leavesPerElem := t.counts[len(t.counts)-1] / t.counts[level-1]
	return leaf / leavesPerElem
}

// MemberRanks returns the ranks contained in element j of level i, capped
// at P (relevant for a partially-filled last node).
func (t *Topology) MemberRanks(level, elem int) []int {
	t.checkLevel(level)
	t.checkElem(level, elem)
	leavesPerElem := t.counts[len(t.counts)-1] / t.counts[level-1]
	first := elem * leavesPerElem * t.procsPerLeaf
	last := (elem + 1) * leavesPerElem * t.procsPerLeaf
	if last > t.p {
		last = t.p
	}
	ranks := make([]int, 0, last-first)
	for r := first; r < last; r++ {
		ranks = append(ranks, r)
	}
	return ranks
}

// Leader returns the leader rank of element j at level i: the lowest rank
// belonging to the element. The leader hosts the element's TAIL pointer
// (tail_rank[i,j]) and, for levels < N, the element's queue node.
func (t *Topology) Leader(level, elem int) int {
	t.checkLevel(level)
	t.checkElem(level, elem)
	leavesPerElem := t.counts[len(t.counts)-1] / t.counts[level-1]
	return elem * leavesPerElem * t.procsPerLeaf
}

// TailRank returns tail_rank[i, j]: the rank storing the TAIL pointer of
// the DQ of element j at level i. We place it on the element's leader.
func (t *Topology) TailRank(level, elem int) int { return t.Leader(level, elem) }

// Distance returns the topological distance between two ranks: 0 for the
// same rank, otherwise N+1-i where i is the deepest level at which the two
// ranks share an element. For a two-level machine this yields 0 (self),
// 1 (same node) or 2 (different nodes).
func (t *Topology) Distance(a, b int) int {
	t.checkRank(a)
	t.checkRank(b)
	if a == b {
		return 0
	}
	n := t.Levels()
	for i := n; i >= 1; i-- {
		if t.Element(a, i) == t.Element(b, i) {
			return n + 1 - i
		}
	}
	// Level 1 has a single element, so we always share it.
	return n
}

// MaxDistance returns the largest distance Distance can return: N.
func (t *Topology) MaxDistance() int { return t.Levels() }

// CounterRank returns c(p) for the given distributed-counter threshold
// T_DC: physical counters live on every T_DC-th rank, and p is assigned
// the counter of its block (paper §3.2.1: c(p) = ceil(p/T_DC) with 1-based
// ranks; 0-based this is floor(p/T_DC)*T_DC).
func (t *Topology) CounterRank(p, tdc int) int {
	t.checkRank(p)
	if tdc <= 0 {
		panic(fmt.Sprintf("topology: T_DC must be positive, got %d", tdc))
	}
	return (p / tdc) * tdc
}

// CounterRanks returns the ranks hosting physical counters for a given
// T_DC, in increasing order.
func (t *Topology) CounterRanks(tdc int) []int {
	if tdc <= 0 {
		panic(fmt.Sprintf("topology: T_DC must be positive, got %d", tdc))
	}
	var ranks []int
	for r := 0; r < t.p; r += tdc {
		ranks = append(ranks, r)
	}
	return ranks
}

// String renders a compact description such as "N=2 [1 4]x16 P=64".
func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "N=%d [", t.Levels())
	for i, c := range t.counts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	fmt.Fprintf(&b, "]x%d P=%d", t.procsPerLeaf, t.p)
	return b.String()
}

func (t *Topology) checkLevel(level int) {
	if level < 1 || level > len(t.counts) {
		panic(fmt.Sprintf("topology: level %d out of range [1,%d]", level, len(t.counts)))
	}
}

func (t *Topology) checkElem(level, elem int) {
	if elem < 0 || elem >= t.counts[level-1] {
		panic(fmt.Sprintf("topology: element %d out of range [0,%d) at level %d", elem, t.counts[level-1], level))
	}
}

func (t *Topology) checkRank(p int) {
	if p < 0 || p >= t.p {
		panic(fmt.Sprintf("topology: rank %d out of range [0,%d)", p, t.p))
	}
}
