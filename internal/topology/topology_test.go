package topology

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name   string
		levels []int
		ppl    int
		ok     bool
	}{
		{"empty", nil, 4, false},
		{"root-not-one", []int{2, 4}, 4, false},
		{"non-multiple", []int{1, 3, 4}, 2, false},
		{"zero-procs", []int{1, 2}, 0, false},
		{"negative-level", []int{1, -2}, 2, false},
		{"single-level", []int{1}, 8, true},
		{"two-level", []int{1, 4}, 16, true},
		{"three-level", []int{1, 2, 4}, 3, true},
		{"four-level", []int{1, 2, 4, 8}, 2, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.levels, c.ppl)
			if (err == nil) != c.ok {
				t.Fatalf("New(%v,%d) err=%v, want ok=%v", c.levels, c.ppl, err, c.ok)
			}
		})
	}
}

func TestNewRejectsInt32RankOverflow(t *testing.T) {
	// The scheduler core trafficks in int32 rank ids, so any leaf-count x
	// procs-per-leaf product past MaxInt32 must be rejected with the
	// typed error — including products that would wrap int64 math.
	for _, c := range []struct {
		name   string
		levels []int
		ppl    int
	}{
		{"just-over", []int{1, 1 << 20}, 1 << 11},       // 2^31
		{"way-over", []int{1, 1 << 20}, 1 << 12},        // 2^32
		{"factor-over", []int{1, math.MaxInt32 + 1}, 1}, // single factor too big
		{"int64-wrap", []int{1, 1 << 40}, 1 << 40},      // product wraps int64
	} {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.levels, c.ppl)
			if err == nil {
				t.Fatalf("New(%v,%d) accepted an int32-overflowing rank count", c.levels, c.ppl)
			}
			var roe *RankOverflowError
			if !errors.As(err, &roe) {
				t.Fatalf("error %v is not a *RankOverflowError", err)
			}
			if roe.Leaves != c.levels[len(c.levels)-1] || roe.ProcsPerLeaf != c.ppl {
				t.Errorf("error fields = %d/%d, want %d/%d", roe.Leaves, roe.ProcsPerLeaf, c.levels[len(c.levels)-1], c.ppl)
			}
		})
	}
	// Exactly MaxInt32 ranks is the largest legal machine.
	topo, err := New([]int{1}, math.MaxInt32)
	if err != nil {
		t.Fatalf("MaxInt32 ranks rejected: %v", err)
	}
	if topo.Procs() != math.MaxInt32 {
		t.Errorf("Procs=%d want %d", topo.Procs(), math.MaxInt32)
	}
}

func TestPaperExampleFigure2(t *testing.T) {
	// Figure 2: N=3 levels (machine, 2 racks, 4 nodes), with the example
	// mapping e(W1,1)=1, e(W1,2)=1, e(W1,3)=2 using 1-based element ids.
	// Our ids are 0-based: a rank on node 1 (second node) is in rack 0.
	topo := MustNew([]int{1, 2, 4}, 6) // 24 procs: 12 readers + 12 writers
	if topo.Levels() != 3 {
		t.Fatalf("Levels=%d want 3", topo.Levels())
	}
	if topo.Procs() != 24 {
		t.Fatalf("Procs=%d want 24", topo.Procs())
	}
	// Rank 6 is the first rank on node 1 (0-based), in rack 0, machine 0.
	if got := topo.Element(6, 3); got != 1 {
		t.Errorf("e(6,3)=%d want 1", got)
	}
	if got := topo.Element(6, 2); got != 0 {
		t.Errorf("e(6,2)=%d want 0", got)
	}
	if got := topo.Element(6, 1); got != 0 {
		t.Errorf("e(6,1)=%d want 0", got)
	}
	// Rank 18 is on node 3, rack 1.
	if got := topo.Element(18, 3); got != 3 {
		t.Errorf("e(18,3)=%d want 3", got)
	}
	if got := topo.Element(18, 2); got != 1 {
		t.Errorf("e(18,2)=%d want 1", got)
	}
}

func TestDistanceTwoLevel(t *testing.T) {
	topo := TwoLevel(4, 16) // 64 procs
	if d := topo.Distance(5, 5); d != 0 {
		t.Errorf("self distance=%d want 0", d)
	}
	if d := topo.Distance(0, 15); d != 1 {
		t.Errorf("same-node distance=%d want 1", d)
	}
	if d := topo.Distance(0, 16); d != 2 {
		t.Errorf("cross-node distance=%d want 2", d)
	}
	if topo.MaxDistance() != 2 {
		t.Errorf("MaxDistance=%d want 2", topo.MaxDistance())
	}
}

func TestDistanceThreeLevel(t *testing.T) {
	topo := MustNew([]int{1, 2, 4}, 4) // 2 racks, 4 nodes, 16 procs
	if d := topo.Distance(0, 1); d != 1 {
		t.Errorf("same-node=%d want 1", d)
	}
	if d := topo.Distance(0, 4); d != 2 {
		t.Errorf("same-rack cross-node=%d want 2", d)
	}
	if d := topo.Distance(0, 12); d != 3 {
		t.Errorf("cross-rack=%d want 3", d)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	topo := MustNew([]int{1, 2, 6}, 5)
	f := func(a, b uint8) bool {
		x := int(a) % topo.Procs()
		y := int(b) % topo.Procs()
		return topo.Distance(x, y) == topo.Distance(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestElementContainment(t *testing.T) {
	// Property: ancestors nest; if two ranks share an element at level i,
	// they share elements at all levels above (j < i).
	topo := MustNew([]int{1, 3, 6, 12}, 4)
	rng := rand.New(rand.NewSource(42))
	for it := 0; it < 2000; it++ {
		a := rng.Intn(topo.Procs())
		b := rng.Intn(topo.Procs())
		shared := false
		for i := topo.Levels(); i >= 1; i-- {
			same := topo.Element(a, i) == topo.Element(b, i)
			if shared && !same {
				t.Fatalf("ranks %d,%d share level %d but not an ancestor", a, b, i)
			}
			if same {
				shared = true
			}
		}
		if !shared {
			t.Fatalf("ranks %d,%d share no level (root must be shared)", a, b)
		}
	}
}

func TestMemberRanksPartition(t *testing.T) {
	topo := MustNew([]int{1, 2, 4}, 4)
	for level := 1; level <= topo.Levels(); level++ {
		seen := make(map[int]bool)
		for elem := 0; elem < topo.Elements(level); elem++ {
			for _, r := range topo.MemberRanks(level, elem) {
				if seen[r] {
					t.Fatalf("rank %d in two elements at level %d", r, level)
				}
				seen[r] = true
				if got := topo.Element(r, level); got != elem {
					t.Fatalf("rank %d: MemberRanks says elem %d, Element says %d", r, elem, got)
				}
			}
		}
		if len(seen) != topo.Procs() {
			t.Fatalf("level %d covers %d ranks, want %d", level, len(seen), topo.Procs())
		}
	}
}

func TestLeaderIsMember(t *testing.T) {
	topo := MustNew([]int{1, 2, 4, 8}, 3)
	for level := 1; level <= topo.Levels(); level++ {
		for elem := 0; elem < topo.Elements(level); elem++ {
			l := topo.Leader(level, elem)
			if topo.Element(l, level) != elem {
				t.Fatalf("leader %d of (level %d, elem %d) not a member", l, level, elem)
			}
			for _, r := range topo.MemberRanks(level, elem) {
				if r < l {
					t.Fatalf("leader %d not the lowest rank of (level %d, elem %d)", l, level, elem)
				}
			}
			if topo.TailRank(level, elem) != l {
				t.Fatalf("TailRank != Leader for (level %d, elem %d)", level, elem)
			}
		}
	}
}

func TestCounterRank(t *testing.T) {
	topo := TwoLevel(4, 16)
	// T_DC = 16: one counter per node, on the node's first rank.
	for p := 0; p < topo.Procs(); p++ {
		c := topo.CounterRank(p, 16)
		if c != (p/16)*16 {
			t.Errorf("CounterRank(%d,16)=%d", p, c)
		}
		if topo.Element(c, 2) != topo.Element(p, 2) {
			t.Errorf("counter of %d on different node", p)
		}
	}
	if got := len(topo.CounterRanks(16)); got != 4 {
		t.Errorf("CounterRanks(16) len=%d want 4", got)
	}
	if got := len(topo.CounterRanks(32)); got != 2 {
		t.Errorf("CounterRanks(32) len=%d want 2", got)
	}
	if got := len(topo.CounterRanks(1)); got != 64 {
		t.Errorf("CounterRanks(1) len=%d want 64", got)
	}
}

func TestCounterRankProperty(t *testing.T) {
	// Property: every process's counter rank hosts a counter, i.e., is a
	// multiple of T_DC, and is <= p.
	topo := TwoLevel(8, 16)
	f := func(pp, tt uint16) bool {
		p := int(pp) % topo.Procs()
		tdc := int(tt)%64 + 1
		c := topo.CounterRank(p, tdc)
		return c%tdc == 0 && c <= p && p-c < tdc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestForProcs(t *testing.T) {
	small := ForProcs(8, 16)
	if small.Procs() != 8 || small.Elements(2) != 1 {
		t.Errorf("ForProcs(8,16) = %v", small)
	}
	exact := ForProcs(64, 16)
	if exact.Procs() != 64 || exact.Elements(2) != 4 {
		t.Errorf("ForProcs(64,16) = %v", exact)
	}
	ragged := ForProcs(40, 16)
	if ragged.Procs() != 40 || ragged.Elements(2) != 3 {
		t.Errorf("ForProcs(40,16) = %v", ragged)
	}
	// The last node hosts only 8 ranks.
	if got := len(ragged.MemberRanks(2, 2)); got != 8 {
		t.Errorf("ragged last node has %d ranks, want 8", got)
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	topo := TwoLevel(2, 4)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad rank", func() { topo.Element(99, 1) })
	mustPanic("bad level", func() { topo.Element(0, 3) })
	mustPanic("bad elem", func() { topo.Leader(2, 9) })
	mustPanic("bad tdc", func() { topo.CounterRank(0, 0) })
	mustPanic("bad distance rank", func() { topo.Distance(-1, 0) })
}

func TestString(t *testing.T) {
	topo := MustNew([]int{1, 4}, 16)
	want := "N=2 [1 4]x16 P=64"
	if topo.String() != want {
		t.Errorf("String()=%q want %q", topo.String(), want)
	}
}
