package sweep_test

// The tunables axis of the sweep engine: cross-product enumeration in
// canonical order, per-scheme projection, key/fingerprint folding, and
// the regression gate that empty tunables leave the persisted PR2
// baseline (results/sweep.json) byte-identical.

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"rmalocks/internal/sweep"
	"rmalocks/internal/workload"
)

func tunedGrid() sweep.Grid {
	return sweep.Grid{
		Schemes:   []string{workload.SchemeRMARW, workload.SchemeFoMPISpin},
		Workloads: []string{"empty"},
		Profiles:  []string{"uniform"},
		Ps:        []int{16},
		Iters:     8,
		FW:        0.05,
		Tunables: []sweep.TunableAxis{
			{Key: "TR", Values: []int64{250, 500, 1000}},
			{Key: "TL2", Values: []int64{16, 32}},
		},
	}
}

// TestTunablesCrossProduct checks enumeration: RMA-RW accepts both
// axes (3×2 = 6 cells), foMPI-Spin accepts neither (1 untuned cell),
// in canonical order with the combination folded into each key.
func TestTunablesCrossProduct(t *testing.T) {
	cells := mustCells(t, tunedGrid())
	var keys []string
	for _, c := range cells {
		keys = append(keys, c.Key.String())
	}
	want := []string{
		"RMA-RW/empty/uniform/P=16/TL2=16,TR=250",
		"RMA-RW/empty/uniform/P=16/TL2=32,TR=250",
		"RMA-RW/empty/uniform/P=16/TL2=16,TR=500",
		"RMA-RW/empty/uniform/P=16/TL2=32,TR=500",
		"RMA-RW/empty/uniform/P=16/TL2=16,TR=1000",
		"RMA-RW/empty/uniform/P=16/TL2=32,TR=1000",
		"foMPI-Spin/empty/uniform/P=16",
	}
	if len(keys) != len(want) {
		t.Fatalf("got %d cells %v, want %d", len(keys), keys, len(want))
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("cell %d = %s, want %s", i, keys[i], want[i])
		}
	}
}

// TestTunablesRunAndFingerprint executes the tuned grid: every cell's
// report must carry its tunables, distinct tunables must yield
// distinct fingerprints, and the keys must survive a JSON round-trip.
func TestTunablesRunAndFingerprint(t *testing.T) {
	cells := mustCells(t, tunedGrid())
	results, err := sweep.Run(cells, sweep.Options{Workers: 2, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, r := range results {
		if r.Key.Tunables != r.Report.Tunables {
			t.Errorf("cell %s: key tunables %q != report tunables %q",
				r.Key, r.Key.Tunables, r.Report.Tunables)
		}
		if r.Key.Tunables != "" && !strings.Contains(r.Fingerprint, " tun="+r.Key.Tunables) {
			t.Errorf("cell %s: fingerprint lacks tunables: %s", r.Key, r.Fingerprint)
		}
		if prev, dup := seen[r.Fingerprint]; dup {
			t.Errorf("cells %s and %s share a fingerprint", prev, r.Key)
		}
		seen[r.Fingerprint] = r.Key.String()
	}

	data, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	var back []sweep.CellResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if back[i].Key != results[i].Key {
			t.Errorf("key %v did not round-trip (%v)", results[i].Key, back[i].Key)
		}
	}
}

// TestEmptyTunablesKeyOmitted: untuned cells serialize exactly as
// before the tunables axis existed (no "tunables" JSON field), so
// persisted baselines keep their byte format.
func TestEmptyTunablesKeyOmitted(t *testing.T) {
	data, err := json.Marshal(sweep.Key{Scheme: "RMA-RW", Workload: "empty", Profile: "uniform", P: 16})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "tunables") {
		t.Errorf("empty tunables leak into JSON: %s", data)
	}
	if got := (sweep.Key{Scheme: "s", Workload: "w", Profile: "p", P: 1}).String(); got != "s/w/p/P=1" {
		t.Errorf("untuned Key.String() = %q", got)
	}
}

// TestBaselineStillByteIdentical is the regression gate of the API
// redesign: re-running cells of the committed PR2 baseline
// (results/sweep.json) with the registry-dispatched harness and empty
// tunables must reproduce their fingerprints byte-identically. The
// P=16 slice keeps the test fast; `make compare` covers all 60 cells.
func TestBaselineStillByteIdentical(t *testing.T) {
	const path = "../../results/sweep.json"
	if _, err := os.Stat(path); err != nil {
		t.Skipf("no committed baseline at %s", path)
	}
	base, err := sweep.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	grid := sweep.Grid{
		Schemes:   workload.Schemes,
		Workloads: []string{"empty"},
		Profiles:  []string{"uniform", "zipf", "bursty", "sweep"},
		Ps:        []int{16},
		FW:        0.1, // the Makefile's sweep shape (workbench default)
	}
	results, err := sweep.Run(mustCells(t, grid), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[sweep.Key]sweep.CellResult{}
	for _, c := range base.Cells {
		byKey[c.Key] = c
	}
	matched := 0
	for _, r := range results {
		b, ok := byKey[r.Key]
		if !ok {
			t.Errorf("cell %s missing from the committed baseline", r.Key)
			continue
		}
		matched++
		if b.Fingerprint != r.Fingerprint {
			t.Errorf("cell %s drifted from the committed baseline:\n base: %s\n cur:  %s",
				r.Key, b.Fingerprint, r.Fingerprint)
		}
	}
	if matched == 0 {
		t.Error("no cells matched the committed baseline")
	}
}
