package sweep_test

import (
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"rmalocks/internal/sweep"
	"rmalocks/internal/workload"
)

// testGrid is a small but representative grid: two schemes (one mutex,
// one RW), two profiles, two process counts.
func testGrid() sweep.Grid {
	return sweep.Grid{
		Schemes:   []string{workload.SchemeDMCS, workload.SchemeRMARW},
		Workloads: []string{"empty"},
		Profiles:  []string{"uniform", "zipf"},
		Ps:        []int{8, 16},
		Iters:     12,
		FW:        0.2,
		Locks:     4,
	}
}

func TestSerialAndParallelByteIdentical(t *testing.T) {
	// The acceptance gate: the same grid run with one worker and with
	// many workers must merge to byte-identical output — fingerprints,
	// rendered table, and CSV alike.
	cells := testGrid().Cells()
	serial, err := sweep.Run(cells, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sweep.Run(testGrid().Cells(), sweep.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(cells) || len(parallel) != len(cells) {
		t.Fatalf("result counts: %d, %d want %d", len(serial), len(parallel), len(cells))
	}
	for i := range serial {
		if serial[i].Fingerprint != parallel[i].Fingerprint {
			t.Errorf("cell %s: serial and parallel fingerprints differ", serial[i].Key)
		}
		if serial[i].Key != cells[i].Key {
			t.Errorf("cell %d merged out of canonical order: %s vs %s", i, serial[i].Key, cells[i].Key)
		}
	}
	st := sweep.Table("grid", serial)
	pt := sweep.Table("grid", parallel)
	if st.String() != pt.String() {
		t.Error("rendered tables differ between -j 1 and -j 8")
	}
	if st.CSV() != pt.CSV() {
		t.Error("CSV output differs between -j 1 and -j 8")
	}
}

func TestGridCanonicalOrder(t *testing.T) {
	cells := sweep.Grid{
		Schemes:   []string{"A", "B"},
		Workloads: []string{"w"},
		Profiles:  []string{"p", "q"},
		Ps:        []int{1, 2},
	}.Cells()
	var got []string
	for _, c := range cells {
		got = append(got, c.Key.String())
	}
	want := []string{
		"A/w/p/P=1", "A/w/p/P=2", "A/w/q/P=1", "A/w/q/P=2",
		"B/w/p/P=1", "B/w/p/P=2", "B/w/q/P=1", "B/w/q/P=2",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order:\n got %v\nwant %v", got, want)
	}
}

func TestRunCheckMode(t *testing.T) {
	g := testGrid()
	g.Ps = []int{8}
	if _, err := sweep.Run(g.Cells(), sweep.Options{Workers: 4, Check: true}); err != nil {
		t.Fatalf("deterministic grid failed -check: %v", err)
	}
}

func TestRunPropagatesCellErrors(t *testing.T) {
	g := testGrid()
	g.Schemes = []string{"no-such-scheme"}
	if _, err := sweep.Run(g.Cells(), sweep.Options{}); err == nil {
		t.Fatal("want error for unknown scheme")
	}
}

func TestForEachDeterministicFirstError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for trial := 0; trial < 8; trial++ {
		err := sweep.ForEach(32, 8, func(i int) error {
			switch i {
			case 3:
				return errLow
			case 20:
				return errHigh
			default:
				return nil
			}
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: err=%v want lowest-index error", trial, err)
		}
	}
}

func TestForEachRunsEveryJob(t *testing.T) {
	var ran int64
	if err := sweep.ForEach(100, 7, func(i int) error {
		atomic.AddInt64(&ran, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran != 100 {
		t.Errorf("ran=%d want 100", ran)
	}
}

func TestSaveLoadCompareRoundTrip(t *testing.T) {
	g := testGrid()
	g.Ps = []int{8}
	results, err := sweep.Run(g.Cells(), sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "results", "sweep.json")
	if err := sweep.Save(path, sweep.NewRunFile("test run", results)); err != nil {
		t.Fatal(err)
	}
	loaded, err := sweep.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Label != "test run" || len(loaded.Cells) != len(results) {
		t.Fatalf("round trip lost data: %+v", loaded)
	}

	// A re-run of the same grid against the loaded baseline must show
	// zero deltas and byte-identical fingerprints on every cell.
	rerun, err := sweep.Run(g.Cells(), sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	deltas := sweep.Compare(loaded.Cells, rerun)
	if len(deltas) != len(results) {
		t.Fatalf("deltas=%d want %d", len(deltas), len(results))
	}
	for _, d := range deltas {
		if !d.InBase || !d.InCur || !d.Identical || d.MopsPct != 0 || d.LatPct != 0 {
			t.Errorf("cell %s not a clean round trip: %+v", d.Key, d)
		}
	}
	if regs := sweep.Regressions(deltas, 0); len(regs) != 0 {
		t.Errorf("clean round trip flagged regressions: %+v", regs)
	}
}

func TestCompareDetectsMovementAndMissingCells(t *testing.T) {
	g := testGrid()
	g.Ps = []int{8}
	base, err := sweep.Run(g.Cells(), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Degrade one cell by 50% and drop another; add nothing new.
	cur := make([]sweep.CellResult, len(base))
	copy(cur, base)
	cur[0].Report.ThroughputMops = base[0].Report.ThroughputMops / 2
	cur[0].Fingerprint = "mutated"
	cur = cur[:len(cur)-1]
	dropped := base[len(base)-1].Key

	deltas := sweep.Compare(base, cur)
	if len(deltas) != len(base) {
		t.Fatalf("deltas=%d want %d (dropped cells still reported)", len(deltas), len(base))
	}
	if d := deltas[0]; d.Identical || d.MopsPct > -49.9 || d.MopsPct < -50.1 {
		t.Errorf("degraded cell not detected: %+v", d)
	}
	last := deltas[len(deltas)-1]
	if last.Key != dropped || last.InCur || !last.InBase {
		t.Errorf("missing cell not reported: %+v", last)
	}

	regs := sweep.Regressions(deltas, 5)
	if len(regs) != 2 {
		t.Fatalf("regressions=%d want 2 (one drop, one missing): %+v", len(regs), regs)
	}
	tbl := sweep.CompareTable("diff", deltas).String()
	if !strings.Contains(tbl, "MISSING") || !strings.Contains(tbl, "identical") {
		t.Errorf("compare table lacks match markers:\n%s", tbl)
	}
}
