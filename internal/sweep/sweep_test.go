package sweep_test

import (
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"rmalocks/internal/sweep"
	"rmalocks/internal/workload"
)

// mustCells enumerates a grid that the test knows is well-formed.
func mustCells(tb testing.TB, g sweep.Grid) []sweep.Cell {
	tb.Helper()
	cells, err := g.Cells()
	if err != nil {
		tb.Fatal(err)
	}
	return cells
}

// testGrid is a small but representative grid: two schemes (one mutex,
// one RW), two profiles, two process counts.
func testGrid() sweep.Grid {
	return sweep.Grid{
		Schemes:   []string{workload.SchemeDMCS, workload.SchemeRMARW},
		Workloads: []string{"empty"},
		Profiles:  []string{"uniform", "zipf"},
		Ps:        []int{8, 16},
		Iters:     12,
		FW:        0.2,
		Locks:     4,
	}
}

func TestSerialAndParallelByteIdentical(t *testing.T) {
	// The acceptance gate: the same grid run with one worker and with
	// many workers must merge to byte-identical output — fingerprints,
	// rendered table, and CSV alike.
	cells := mustCells(t, testGrid())
	serial, err := sweep.Run(cells, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sweep.Run(mustCells(t, testGrid()), sweep.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(cells) || len(parallel) != len(cells) {
		t.Fatalf("result counts: %d, %d want %d", len(serial), len(parallel), len(cells))
	}
	for i := range serial {
		if serial[i].Fingerprint != parallel[i].Fingerprint {
			t.Errorf("cell %s: serial and parallel fingerprints differ", serial[i].Key)
		}
		if serial[i].Key != cells[i].Key {
			t.Errorf("cell %d merged out of canonical order: %s vs %s", i, serial[i].Key, cells[i].Key)
		}
	}
	st := sweep.Table("grid", serial)
	pt := sweep.Table("grid", parallel)
	if st.String() != pt.String() {
		t.Error("rendered tables differ between -j 1 and -j 8")
	}
	if st.CSV() != pt.CSV() {
		t.Error("CSV output differs between -j 1 and -j 8")
	}
}

func TestGridCanonicalOrder(t *testing.T) {
	cells := mustCells(t, sweep.Grid{
		Schemes:   []string{"A", "B"},
		Workloads: []string{"w"},
		Profiles:  []string{"p", "q"},
		Ps:        []int{1, 2},
	})
	var got []string
	for _, c := range cells {
		got = append(got, c.Key.String())
	}
	want := []string{
		"A/w/p/P=1", "A/w/p/P=2", "A/w/q/P=1", "A/w/q/P=2",
		"B/w/p/P=1", "B/w/p/P=2", "B/w/q/P=1", "B/w/q/P=2",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order:\n got %v\nwant %v", got, want)
	}
}

func TestRunCheckMode(t *testing.T) {
	g := testGrid()
	g.Ps = []int{8}
	if _, err := sweep.Run(mustCells(t, g), sweep.Options{Workers: 4, Check: true}); err != nil {
		t.Fatalf("deterministic grid failed -check: %v", err)
	}
}

func TestRunPropagatesCellErrors(t *testing.T) {
	g := testGrid()
	g.Schemes = []string{"no-such-scheme"}
	if _, err := sweep.Run(mustCells(t, g), sweep.Options{}); err == nil {
		t.Fatal("want error for unknown scheme")
	}
}

func TestForEachDeterministicFirstError(t *testing.T) {
	// The lowest-index failure must win for every worker count: serial,
	// fewer workers than failures, oversubscribed (workers > jobs, which
	// ForEach clamps), and the GOMAXPROCS default (0).
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{0, 1, 2, 5, 8, 32, 64} {
		for trial := 0; trial < 8; trial++ {
			err := sweep.ForEach(32, workers, func(i int) error {
				switch i {
				case 3:
					return errLow
				case 20:
					return errHigh
				default:
					return nil
				}
			})
			if !errors.Is(err, errLow) {
				t.Fatalf("workers=%d trial %d: err=%v want lowest-index error", workers, trial, err)
			}
		}
	}
}

func TestForEachRunsEveryJob(t *testing.T) {
	var ran int64
	if err := sweep.ForEach(100, 7, func(i int) error {
		atomic.AddInt64(&ran, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran != 100 {
		t.Errorf("ran=%d want 100", ran)
	}
}

func TestSaveLoadCompareRoundTrip(t *testing.T) {
	g := testGrid()
	g.Ps = []int{8}
	results, err := sweep.Run(mustCells(t, g), sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "results", "sweep.json")
	if err := sweep.Save(path, sweep.NewRunFile("test run", results)); err != nil {
		t.Fatal(err)
	}
	loaded, err := sweep.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Label != "test run" || len(loaded.Cells) != len(results) {
		t.Fatalf("round trip lost data: %+v", loaded)
	}

	// A re-run of the same grid against the loaded baseline must show
	// zero deltas and byte-identical fingerprints on every cell.
	rerun, err := sweep.Run(mustCells(t, g), sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	deltas := sweep.Compare(loaded.Cells, rerun)
	if len(deltas) != len(results) {
		t.Fatalf("deltas=%d want %d", len(deltas), len(results))
	}
	for _, d := range deltas {
		if !d.InBase || !d.InCur || !d.Identical || d.MopsPct != 0 || d.LatPct != 0 {
			t.Errorf("cell %s not a clean round trip: %+v", d.Key, d)
		}
	}
	if regs := sweep.Regressions(deltas, 0); len(regs) != 0 {
		t.Errorf("clean round trip flagged regressions: %+v", regs)
	}
}

// tableRow renders a one-cell table and returns its single data row.
func tableRow(t *testing.T, rep workload.Report) string {
	t.Helper()
	tbl := sweep.Table("t", []sweep.CellResult{{Report: rep}})
	lines := strings.Split(strings.TrimRight(tbl.String(), "\n"), "\n")
	return lines[len(lines)-1]
}

// TestTableJainGate: the Jain column must render whenever either
// trace-derived signal is present — in particular a fairness index
// without a handoff-locality histogram (a traced cell whose handoffs
// never reached the analyzer) — and stay "-" for untraced cells.
func TestTableJainGate(t *testing.T) {
	base := workload.Report{Scheme: "s", Workload: "w", Profile: "p", P: 4}

	fairOnly := base
	fairOnly.Fairness = 0.9375 // no HandoffLocality
	if row := tableRow(t, fairOnly); !strings.Contains(row, "0.9375") {
		t.Errorf("fairness-only row lacks the Jain index: %q", row)
	}

	withHist := base
	withHist.Fairness = 0.9375
	withHist.HandoffLocality = []int64{1, 2}
	if row := tableRow(t, withHist); !strings.Contains(row, "0.9375") {
		t.Errorf("traced row lacks the Jain index: %q", row)
	}

	if row := tableRow(t, base); strings.Count(row, "-") < 2 {
		// Untraced: both the Jain and Extra columns render as "-".
		t.Errorf("untraced row should dash the Jain column: %q", row)
	}
}

// TestTableExtraAllKeys: the Extra column renders every key of the
// report's Extra map in sorted order — including keys no workload
// shipped when the column was written — so new workloads' extras are
// never silently dropped, and rendering stays deterministic.
func TestTableExtraAllKeys(t *testing.T) {
	rep := workload.Report{Scheme: "s", Workload: "w", Profile: "p", P: 4,
		Extra: map[string]float64{
			"zz_new":    3,
			"stored":    128,
			"aa_metric": 0.5,
			"overflows": 7,
		}}
	row := tableRow(t, rep)
	const want = "aa_metric=0.5 overflows=7 stored=128 zz_new=3"
	if !strings.Contains(row, want) {
		t.Errorf("extra column not sorted-complete:\n row:  %q\n want: %q", row, want)
	}

	empty := workload.Report{Scheme: "s", Workload: "w", Profile: "p", P: 4}
	if row := tableRow(t, empty); !strings.HasSuffix(strings.TrimRight(row, " "), "-") {
		t.Errorf("empty extras should render as dash: %q", row)
	}
}

// TestGridExplicitZeroZipfS: ZipfSSet makes the zero exponent (a
// uniform draw) expressible, while a zero-valued grid without the flag
// keeps the documented 1.2 default — existing baselines never move.
func TestGridExplicitZeroZipfS(t *testing.T) {
	g := sweep.Grid{
		Schemes:   []string{workload.SchemeDMCS},
		Workloads: []string{"empty"},
		Profiles:  []string{"zipf"},
		Ps:        []int{8},
		Iters:     8,
	}
	spec := func(g sweep.Grid) workload.Spec {
		cells := mustCells(t, g)
		s, err := cells[0].Spec()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	if s := spec(g).Profile.(*workload.Zipf).S(); s != 1.2 {
		t.Errorf("defaulted grid ZipfS = %v, want 1.2", s)
	}

	g.ZipfSSet = true // ZipfS stays 0: explicitly uniform
	if s := spec(g).Profile.(*workload.Zipf).S(); s != 0 {
		t.Errorf("explicit-zero grid ZipfS = %v, want 0", s)
	}
	if seed := spec(g).Seed; seed != 1 {
		t.Errorf("Seed defaulting perturbed by ZipfSSet: %v", seed)
	}

	g.ZipfSSet = false
	g.SeedSet = true // Seed stays 0 (the machine layer maps it to 1)
	if seed := spec(g).Seed; seed != 0 {
		t.Errorf("explicit-zero seed rewritten to %v", seed)
	}
}

// TestCellsDuplicateAxis: a repeated tunables axis key must surface as
// a typed error from enumeration instead of a silent first-wins skip —
// even when no named scheme accepts the key (projection would otherwise
// hide the duplicate).
func TestCellsDuplicateAxis(t *testing.T) {
	g := sweep.Grid{
		Schemes:   []string{workload.SchemeRMARW},
		Workloads: []string{"empty"},
		Profiles:  []string{"uniform"},
		Ps:        []int{8},
		Tunables: []sweep.TunableAxis{
			{Key: "TR", Values: []int64{100}},
			{Key: "TR", Values: []int64{200}},
		},
	}
	_, err := g.Cells()
	var dup sweep.DuplicateAxisError
	if !errors.As(err, &dup) || dup.Key != "TR" {
		t.Fatalf("err = %v, want DuplicateAxisError{TR}", err)
	}

	// foMPI-Spin accepts no TR axis at all: the duplicate must still be
	// rejected (checked before per-scheme projection).
	g.Schemes = []string{workload.SchemeFoMPISpin}
	if _, err := g.Cells(); !errors.As(err, &dup) {
		t.Fatalf("projection hid the duplicate axis: err = %v", err)
	}
}

func TestCompareDetectsMovementAndMissingCells(t *testing.T) {
	g := testGrid()
	g.Ps = []int{8}
	base, err := sweep.Run(mustCells(t, g), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Degrade one cell by 50% and drop another; add nothing new.
	cur := make([]sweep.CellResult, len(base))
	copy(cur, base)
	cur[0].Report.ThroughputMops = base[0].Report.ThroughputMops / 2
	cur[0].Fingerprint = "mutated"
	cur = cur[:len(cur)-1]
	dropped := base[len(base)-1].Key

	deltas := sweep.Compare(base, cur)
	if len(deltas) != len(base) {
		t.Fatalf("deltas=%d want %d (dropped cells still reported)", len(deltas), len(base))
	}
	if d := deltas[0]; d.Identical || d.MopsPct > -49.9 || d.MopsPct < -50.1 {
		t.Errorf("degraded cell not detected: %+v", d)
	}
	last := deltas[len(deltas)-1]
	if last.Key != dropped || last.InCur || !last.InBase {
		t.Errorf("missing cell not reported: %+v", last)
	}

	regs := sweep.Regressions(deltas, 5)
	if len(regs) != 2 {
		t.Fatalf("regressions=%d want 2 (one drop, one missing): %+v", len(regs), regs)
	}
	tbl := sweep.CompareTable("diff", deltas).String()
	if !strings.Contains(tbl, "MISSING") || !strings.Contains(tbl, "identical") {
		t.Errorf("compare table lacks match markers:\n%s", tbl)
	}
}
