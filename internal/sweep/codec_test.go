package sweep_test

import (
	"errors"
	"testing"

	"rmalocks/internal/fault"
	"rmalocks/internal/obs"
	"rmalocks/internal/sweep"
	"rmalocks/internal/workload"
)

// wireGrid exercises every wire-expressible axis.
func wireGrid(t *testing.T) sweep.Grid {
	t.Helper()
	fp, err := fault.Parse("jitter=0.2,stall=50000@0.01,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	g := sweep.Grid{
		Schemes:       []string{workload.SchemeDMCS, workload.SchemeRMARW},
		Workloads:     []string{"empty"},
		Profiles:      []string{"uniform", "zipf"},
		Ps:            []int{8, 16},
		ProcsPerNode:  4,
		Iters:         50,
		Seed:          99,
		SeedSet:       true,
		FW:            0.3,
		Locks:         16,
		ZipfS:         1.1,
		ZipfSSet:      true,
		ThinkNs:       1500,
		ThinkJitterNs: 200,
		Tunables:      []sweep.TunableAxis{{Key: "TR", Values: []int64{500, 1000}}},
		Faults:        []*fault.Profile{nil, fp},
		Engine:        "des",
	}
	g.Params.TL = []int64{100, 200}
	g.Params.TDC = 3
	g.Params.TR = 750
	return g
}

// TestGridCodecRoundTrip: decode(encode(g)) enumerates the identical
// cell set — same keys, same content addresses — so a submitted grid
// computes exactly what the local grid would.
func TestGridCodecRoundTrip(t *testing.T) {
	g := wireGrid(t)
	data, err := sweep.EncodeGrid(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := sweep.DecodeGrid(data)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	cells2, err := g2.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(cells2) {
		t.Fatalf("cell counts differ: %d vs %d", len(cells), len(cells2))
	}
	for i := range cells {
		if cells[i].Key != cells2[i].Key {
			t.Errorf("cell %d key: %s vs %s", i, cells[i].Key, cells2[i].Key)
		}
		if cells[i].Input != cells2[i].Input {
			t.Errorf("cell %d content address drifted across the wire:\n %s\n %s",
				i, cells[i].Input, cells2[i].Input)
		}
		if cells[i].Input == "" {
			t.Errorf("cell %d of a wire grid is uncacheable", i)
		}
	}
}

// TestGridCodecRejectsUnserializable: in-process attachments fail with
// a typed WireError naming the field.
func TestGridCodecRejectsUnserializable(t *testing.T) {
	for _, tc := range []struct {
		field  string
		mutate func(*sweep.Grid)
	}{
		{"Obs", func(g *sweep.Grid) { g.Obs = obs.NewMetrics() }},
		{"Trace", func(g *sweep.Grid) { g.Trace = 1 }},
		{"MemStats", func(g *sweep.Grid) { g.MemStats = true }},
	} {
		g := wireGrid(t)
		tc.mutate(&g)
		_, err := sweep.EncodeGrid(g)
		var we sweep.WireError
		if !errors.As(err, &we) || we.Field != tc.field {
			t.Errorf("%s grid: err = %v, want WireError{%s}", tc.field, err, tc.field)
		}
	}
}

// TestGridCodecStrictDecode: unknown fields and bad fault specs are
// rejected eagerly.
func TestGridCodecStrictDecode(t *testing.T) {
	if _, err := sweep.DecodeGrid([]byte(`{"schemes":["x"],"typo_field":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := sweep.DecodeGrid([]byte(`{"schemes":["x"],"faults":["no-such-fault=1"]}`)); err == nil {
		t.Error("invalid fault spec accepted")
	}
}

// TestCellInputSemantics pins the content-address contract: stable for
// identical grids, distinct across any result-affecting axis, and empty
// (uncacheable) for host-dependent or unserializable cells.
func TestCellInputSemantics(t *testing.T) {
	base := mustCells(t, testGrid())
	same := mustCells(t, testGrid())
	for i := range base {
		if base[i].Input == "" {
			t.Fatalf("cell %s has no content address", base[i].Key)
		}
		if base[i].Input != same[i].Input {
			t.Fatalf("cell %s address unstable across enumerations", base[i].Key)
		}
	}

	seen := map[string]string{}
	for _, c := range base {
		if prev, dup := seen[c.Input]; dup {
			t.Fatalf("cells %s and %s share a content address", prev, c.Key)
		}
		seen[c.Input] = c.Key.String()
	}

	// A tunable axis changes addresses only for cells of schemes that
	// accept the key (axesFor projection) — the dirty-cell invalidation
	// sweepd relies on: the d-MCS half of the grid stays cache-clean
	// when only RMA-RW's TR moves.
	tuned := testGrid()
	tuned.Tunables = []sweep.TunableAxis{{Key: "TR", Values: []int64{12345}}}
	tcells := mustCells(t, tuned)
	if len(tcells) != len(base) {
		t.Fatalf("single-value axis changed the cell count: %d vs %d", len(tcells), len(base))
	}
	changed, unchanged := 0, 0
	for i, c := range tcells {
		if c.Input == base[i].Input {
			unchanged++
		} else {
			changed++
		}
	}
	if changed == 0 || unchanged == 0 {
		t.Fatalf("TR axis dirtied %d and kept %d cells; want a proper split", changed, unchanged)
	}

	// Host-dependent or unserializable outputs are uncacheable.
	ms := testGrid()
	ms.MemStats = true
	for _, c := range mustCells(t, ms) {
		if c.Input != "" {
			t.Fatal("MemStats cell carries a content address")
		}
	}
	tr := testGrid()
	tr.Trace = 1
	for _, c := range mustCells(t, tr) {
		if c.Input != "" {
			t.Fatal("Trace cell carries a content address")
		}
	}
}
