// Package sweep is the host-parallel sweep engine: it enumerates
// scheme × workload × profile × P parameter grids as independent
// workload.Spec cells, executes them on a bounded worker pool, and
// merges the results in canonical cell order.
//
// Every cell is a byte-deterministic simulation (see DESIGN.md,
// "Determinism") with no shared mutable state, so the grid is
// embarrassingly parallel across host cores: distributing cells over
// workers changes wall-clock time but never the merged output. A
// same-grid serial-vs-parallel equality test guards that property.
//
// Sweep runs persist as JSON (see persist.go) under results/, and
// Compare (compare.go) diffs a run against a persisted baseline —
// the repository's perf-regression gate.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"rmalocks/internal/fault"
	"rmalocks/internal/obs"
	"rmalocks/internal/scheme"
	"rmalocks/internal/stats"
	"rmalocks/internal/trace"
	"rmalocks/internal/workload"
)

// Key identifies one grid cell: the coordinates of the paper's
// scheme × workload × profile × P parameter space (§5), plus the
// scheme-tunables coordinate of its lock parameter space (Figure 1).
type Key struct {
	Scheme   string `json:"scheme"`
	Workload string `json:"workload"`
	Profile  string `json:"profile"`
	P        int    `json:"p"`
	// Tunables is the canonical "K1=V1,K2=V2" encoding (sorted keys,
	// see internal/scheme) of the cell's scheme tunables; empty — and
	// omitted from JSON, keeping pre-tunables baselines byte-identical —
	// when the cell uses scheme defaults.
	Tunables string `json:"tunables,omitempty"`
	// Faults is the canonical encoding of the cell's fault profile (see
	// internal/fault); empty — and omitted from JSON, keeping fault-free
	// baselines byte-identical — for unperturbed cells, including the
	// fault-free baseline cell a fault axis always enumerates.
	Faults string `json:"faults,omitempty"`
}

func (k Key) String() string {
	s := fmt.Sprintf("%s/%s/%s/P=%d", k.Scheme, k.Workload, k.Profile, k.P)
	if k.Tunables != "" {
		s += "/" + k.Tunables
	}
	if k.Faults != "" {
		s += "/faults=" + k.Faults
	}
	return s
}

// Cell is one independent simulation of a sweep.
type Cell struct {
	// Key names the cell in reports and baselines.
	Key Key
	// Input is the canonical encoding of every result-affecting input
	// parameter of the cell (see Grid.cellInput): because each cell is a
	// deterministic function of its inputs, Input is a valid content
	// address for the cell's result — the cache key of internal/cache.
	// Empty marks the cell uncacheable (host-dependent MemStats output,
	// or a trace sink that cannot be serialized).
	Input string
	// Spec builds a fresh workload.Spec for one execution. A fresh value
	// per call is required: Workload implementations carry per-run state
	// (window offsets, DHT tables), so executions — including the -check
	// re-run — must never share instances across workers.
	Spec func() (workload.Spec, error)
}

// CellResult is the merged outcome of one cell, in canonical order.
type CellResult struct {
	Key         Key             `json:"key"`
	Locks       int             `json:"locks"`
	Report      workload.Report `json:"report"`
	Fingerprint string          `json:"fingerprint"`
	// Trace holds the cell's event sink when the grid ran with tracing
	// (Grid.Trace); consumers (workbench -trace) export it. Never
	// persisted: baselines carry only the trace-derived Report fields.
	Trace *trace.Sink `json:"-"`
}

// Options configures a sweep execution.
type Options struct {
	// Workers bounds the worker pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Check runs every cell twice and fails the sweep unless both
	// executions produce byte-identical report fingerprints. Check
	// bypasses Cache lookups (a served result would defeat the
	// reproducibility verification); verified results are still stored.
	Check bool
	// Progress, when non-nil, receives cell lifecycle notifications
	// (obs.SweepProgress feeds the /progress endpoint). Purely
	// observational: notifications happen outside cell execution and
	// never influence scheduling order or results.
	Progress Progress
	// Cache, when non-nil, memoizes cell results by their content
	// address (Cell.Input). Run resolves every cacheable cell against it
	// up front — hits land in the merged output without executing, so a
	// warm re-run recomputes only the dirty cells — and stores freshly
	// computed results back. Because cells are deterministic functions
	// of their Input, the merged output is byte-identical whether a cell
	// was served or computed (test-enforced).
	Cache CellCache
	// Cancel, when non-nil, aborts the sweep when closed: workers stop
	// claiming new cells, in-flight cells run to completion (and still
	// reach the Cache), and Run returns ErrCanceled.
	Cancel <-chan struct{}
}

// CellCache memoizes cell results by content address (Cell.Input).
// Implementations must be safe for concurrent use; internal/cache's
// ResultStore is the canonical one. Get may miss spuriously (eviction,
// corruption) — the cell is then recomputed — but a hit must return a
// result produced by a run of the same Input.
type CellCache interface {
	Get(input string) (CellResult, bool)
	Put(input string, r CellResult)
}

// ErrCanceled reports a sweep aborted through Options.Cancel. In-flight
// cells were drained (run to completion); unclaimed cells never ran.
var ErrCanceled = errors.New("sweep: canceled")

// Progress receives sweep lifecycle notifications. Implementations must
// be safe for concurrent calls — workers report in parallel. Declared
// here (and satisfied by obs.SweepProgress) so the engine stays free of
// an obs dependency in its core path.
type Progress interface {
	// Start announces the full cell list, in canonical order, before any
	// cell executes.
	Start(keys []string)
	// CellRunning marks cell i as executing on some worker.
	CellRunning(i int)
	// CellCached marks cell i as resolved from the result cache, with
	// the cached report fingerprint: the cell reached its terminal state
	// without ever running. Fired during Run's pre-pass, before any cell
	// executes.
	CellCached(i int, fingerprint string)
	// CellDone marks cell i finished: its report fingerprint on success,
	// the error otherwise.
	CellDone(i int, fingerprint string, err error)
}

// ForEach runs n independent jobs on a bounded worker pool and blocks
// until all complete. Job errors do not cancel other jobs (cells are
// independent); the error returned is the lowest-index failure, so
// error reporting is deterministic regardless of worker count.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run executes every cell on the worker pool and returns the results in
// the cells' order. Output is byte-identical for any worker count:
// result slot i belongs to cell i no matter which worker ran it — and,
// with a Cache attached, no matter which cells were served instead of
// computed (a cached result is the byte-identical outcome of an earlier
// run of the same Input).
func Run(cells []Cell, opts Options) ([]CellResult, error) {
	if opts.Progress != nil {
		keys := make([]string, len(cells))
		for i, c := range cells {
			keys[i] = c.Key.String()
		}
		opts.Progress.Start(keys)
	}
	results := make([]CellResult, len(cells))
	// Cache pre-pass: resolve hits up front, so only dirty cells reach
	// the worker pool and progress knows immediately which cells are
	// instantaneous (the ETA extrapolates from computed cells only).
	pending := make([]int, 0, len(cells))
	for i, c := range cells {
		if opts.Cache != nil && !opts.Check && c.Input != "" {
			if r, ok := opts.Cache.Get(c.Input); ok && r.Key == c.Key {
				results[i] = r
				if opts.Progress != nil {
					opts.Progress.CellCached(i, r.Fingerprint)
				}
				continue
			}
		}
		pending = append(pending, i)
	}
	err := ForEach(len(pending), opts.Workers, func(pi int) error {
		i := pending[pi]
		c := cells[i]
		if opts.Cancel != nil {
			select {
			case <-opts.Cancel:
				// Drain semantics: this cell was never claimed for
				// execution, so progress keeps it queued; cells already
				// past this check complete normally (and still land in
				// the cache).
				return ErrCanceled
			default:
			}
		}
		if opts.Progress != nil {
			opts.Progress.CellRunning(i)
		}
		rep, locks, sink, err := runOnce(c)
		if err != nil {
			err = fmt.Errorf("sweep: cell %s: %w", c.Key, err)
			if opts.Progress != nil {
				opts.Progress.CellDone(i, "", err)
			}
			return err
		}
		fp := rep.Fingerprint()
		if opts.Check {
			rep2, _, _, err := runOnce(c)
			if err != nil {
				err = fmt.Errorf("sweep: cell %s (check re-run): %w", c.Key, err)
				if opts.Progress != nil {
					opts.Progress.CellDone(i, fp, err)
				}
				return err
			}
			if rep2.Fingerprint() != fp {
				err = fmt.Errorf("sweep: cell %s is NOT reproducible", c.Key)
				if opts.Progress != nil {
					opts.Progress.CellDone(i, fp, err)
				}
				return err
			}
		}
		results[i] = CellResult{Key: c.Key, Locks: locks, Report: rep, Fingerprint: fp, Trace: sink}
		if opts.Cache != nil && c.Input != "" {
			opts.Cache.Put(c.Input, results[i])
		}
		if opts.Progress != nil {
			opts.Progress.CellDone(i, fp, nil)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

func runOnce(c Cell) (workload.Report, int, *trace.Sink, error) {
	spec, err := c.Spec()
	if err != nil {
		return workload.Report{}, 0, nil, err
	}
	locks := 1
	if spec.Profile != nil {
		locks = spec.Profile.Locks()
	}
	rep, err := workload.Run(spec)
	return rep, locks, spec.Trace, err
}

// Grid enumerates a scheme × workload × profile × P (× tunables, see
// Tunables) parameter space with shared cell parameters.
//
// Zero fields select the defaults of the paper's evaluation setup:
// Ps {64}, ProcsPerNode 16, Iters 50, Seed 1, Locks 8, ZipfS 1.2.
// FW, ThinkNs and ThinkJitterNs default to 0 (zero is their natural
// meaning). For the two fields where zero is also a legitimate explicit
// setting — Seed and ZipfS — the SeedSet/ZipfSSet flags suppress the
// default fill; zero-valued grids without the flags keep enumerating
// the default parameter space byte-identically (persisted baselines
// never move).
type Grid struct {
	// Schemes, Workloads and Profiles name the axes (workload.Schemes,
	// workload.WorkloadNames, workload.ProfileNames).
	Schemes   []string
	Workloads []string
	Profiles  []string
	// Ps is the process-count axis (e.g. 16→512 to reproduce the
	// paper's scaling figures in one invocation). Default {64}.
	Ps []int

	// ProcsPerNode is the machine shape (default 16).
	ProcsPerNode int
	// Iters is the measured cycles per process (default 50); it also
	// sets the sweep profile's span.
	Iters int
	// Seed seeds every cell (default 1 unless SeedSet). Note the machine
	// layer treats seed 0 as 1 too, so an explicit zero seed runs the
	// same simulation as the default — SeedSet only keeps the grid from
	// rewriting the field.
	Seed int64
	// SeedSet marks Seed as explicitly chosen: fill leaves a zero Seed
	// alone instead of defaulting it to 1.
	SeedSet bool
	// FW is the writer fraction handed to the profiles.
	FW float64
	// Locks is the lock-set size for multi-lock profiles (default 8;
	// clamped to P for the sharded DHT workload).
	Locks int
	// ZipfS is the Zipf skew exponent (default 1.2 unless ZipfSSet).
	ZipfS float64
	// ZipfSSet marks ZipfS as explicitly chosen: fill leaves a zero
	// exponent alone, making S=0 (a uniform draw — every lock equally
	// hot) expressible from the workbench (-zipfs 0).
	ZipfSSet bool
	// ThinkNs / ThinkJitterNs set post-release think time.
	ThinkNs       int64
	ThinkJitterNs int64
	// Params tunes the lock schemes (legacy struct form, applied to
	// every cell; see Tunables for the sweepable axis).
	Params workload.SchemeParams
	// Tunables adds the paper's lock parameter space as grid axes: the
	// cross-product of every axis' values becomes extra cells, innermost
	// in the canonical order, with the combination folded into each
	// cell's Key and report fingerprint. An axis applies only to the
	// schemes whose registry descriptor accepts its key (e.g. a TR axis
	// sweeps RMA-RW but leaves foMPI-Spin with a single untuned cell),
	// so mixed-scheme grids stay enumerable. An empty list reproduces
	// the pre-tunables grid byte-identically.
	Tunables []TunableAxis
	// Faults adds a fault-injection axis: each profile becomes an extra
	// cell, innermost in the canonical order (inside the tunables
	// cross-product), with the profile's canonical encoding folded into
	// the cell Key and report fingerprint. A non-empty axis always
	// enumerates the fault-free cell first — the degradation baseline —
	// and switches every cell (including fault-free ones) to
	// FaultMetrics mode so tail-latency percentiles are comparable;
	// ApplyDegradation then derives per-cell inflation metrics. Profiles
	// that request acquire timeouts apply only to schemes whose registry
	// descriptor advertises CapTimeout (mirroring the tunables-axis
	// projection; an MCS-queue node cannot abandon its slot). An empty
	// axis reproduces the pre-fault grid byte-identically.
	Faults []*fault.Profile
	// Engine selects the scheduler implementation for every cell ("" or
	// "fast" = token-owned fast path, "ref" = reference engine); the
	// workbench -engine flag exposes it for ad-hoc differential sweeps.
	Engine string
	// MemStats enables host memory reporting per cell (see
	// workload.Spec.MemStats): heap/sys bytes per rank land in
	// Report.Extra. Host-dependent — forfeits byte-identical baselines.
	MemStats bool
	// Trace, when nonzero, attaches a fresh trace sink with this class
	// mask to every cell (cells run in parallel, so sinks are per-cell),
	// filling the per-cell Report.Fairness / Report.HandoffLocality
	// metrics and returning the raw sinks via CellResult.Trace.
	Trace trace.Class
	// Obs, when non-nil, attaches the live observability instruments to
	// every cell (see workload.Spec.Obs): phase spans, per-rank iteration
	// counters and — on psim cells — the conservative-gate metrics. One
	// Metrics is shared across all cells (every instrument is
	// concurrency-safe and merge-by-sum), so /metrics shows sweep-wide
	// totals mid-run. Observation only: with Obs on or off every report
	// and fingerprint is byte-identical (test-enforced).
	Obs *obs.Metrics
}

func (g Grid) fill() Grid {
	if len(g.Ps) == 0 {
		g.Ps = []int{64}
	}
	if g.ProcsPerNode == 0 {
		g.ProcsPerNode = 16
	}
	if g.Iters == 0 {
		g.Iters = 50
	}
	if g.Seed == 0 && !g.SeedSet {
		g.Seed = 1
	}
	if g.Locks == 0 {
		g.Locks = 8
	}
	if g.ZipfS == 0 && !g.ZipfSSet {
		g.ZipfS = 1.2
	}
	return g
}

// TunableAxis is one sweepable dimension of the paper's lock parameter
// space: a tunable key (registry form, e.g. "TR" or "TL2") and the
// values to enumerate.
type TunableAxis struct {
	Key    string
	Values []int64
}

// DuplicateAxisError reports a tunables axis key that appears more than
// once in a grid. A repeated key cannot cross-product: later values
// would overwrite earlier ones inside each combination, enumerating
// duplicate cell Keys that silently collide in Compare.
type DuplicateAxisError struct {
	Key string
}

func (e DuplicateAxisError) Error() string {
	return fmt.Sprintf("sweep: duplicate tunables axis %q", e.Key)
}

// combos expands the cross-product of the axes in declaration order
// (first axis outermost). No axes — or axes with no values — yield the
// single empty combination. Axis keys must be distinct; a repeated key
// yields a DuplicateAxisError rather than a silent first-wins skip.
func combos(axes []TunableAxis) ([]scheme.Tunables, error) {
	out := []scheme.Tunables{nil}
	seen := map[string]bool{}
	for _, ax := range axes {
		if seen[ax.Key] {
			return nil, DuplicateAxisError{Key: ax.Key}
		}
		seen[ax.Key] = true
		if len(ax.Values) == 0 {
			continue
		}
		next := make([]scheme.Tunables, 0, len(out)*len(ax.Values))
		for _, base := range out {
			for _, v := range ax.Values {
				t := base.Clone()
				if t == nil {
					t = scheme.Tunables{}
				}
				t[ax.Key] = v
				next = append(next, t)
			}
		}
		out = next
	}
	return out, nil
}

// axesFor projects the grid's tunable axes onto one scheme: only axes
// whose key the scheme's descriptor accepts take part in its
// cross-product, so a mixed-scheme grid never enumerates meaningless
// (and duplicate-keyed) cells. Unknown schemes keep every axis; the
// run surfaces the registry's typed error.
func axesFor(schemeName string, axes []TunableAxis) []TunableAxis {
	if len(axes) == 0 {
		return nil
	}
	d, err := scheme.Describe(schemeName)
	if err != nil {
		return axes
	}
	var out []TunableAxis
	for _, ax := range axes {
		if d.Accepts(ax.Key, 0) {
			out = append(out, ax)
		}
	}
	return out
}

// faultsFor projects the grid's fault axis onto one scheme: the
// fault-free baseline cell always leads, and profiles that bound
// acquires (Timeout > 0) take part only when the scheme's descriptor
// advertises CapTimeout — mirroring axesFor, so a mixed-scheme grid
// never enumerates cells the workload layer would typed-reject.
// Unknown schemes keep every profile; the run surfaces the registry's
// (or capability) typed error. An empty axis yields the single
// fault-free combination with metrics off.
func faultsFor(schemeName string, profiles []*fault.Profile) []*fault.Profile {
	if len(profiles) == 0 {
		return []*fault.Profile{nil}
	}
	out := []*fault.Profile{nil}
	d, err := scheme.Describe(schemeName)
	for _, fp := range profiles {
		if fp == nil {
			continue // the baseline cell is always enumerated exactly once
		}
		if fp.Timeout > 0 && err == nil && !d.Caps.Has(scheme.CapTimeout) {
			continue
		}
		out = append(out, fp)
	}
	return out
}

// Cells enumerates the grid in canonical order: scheme outermost, then
// workload, then profile, then P, then the tunables cross-product
// (first axis outermost), then the fault axis (fault-free baseline
// first). Reports, baselines and diffs all follow this order. A
// repeated tunables axis key yields a DuplicateAxisError — checked on
// the full axis list, before per-scheme projection, so the same grid
// fails the same way regardless of which schemes it names.
func (g Grid) Cells() ([]Cell, error) {
	g = g.fill()
	if _, err := combos(g.Tunables); err != nil {
		return nil, err
	}
	for i, fp := range g.Faults {
		if fp == nil {
			continue
		}
		if err := fp.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: fault axis entry %d: %w", i, err)
		}
	}
	faultMetrics := len(g.Faults) > 0
	var cells []Cell
	for _, schemeName := range g.Schemes {
		tuns, err := combos(axesFor(schemeName, g.Tunables))
		if err != nil {
			return nil, err
		}
		faults := faultsFor(schemeName, g.Faults)
		for _, wname := range g.Workloads {
			for _, pname := range g.Profiles {
				for _, p := range g.Ps {
					for _, tun := range tuns {
						for _, fp := range faults {
							cells = append(cells, g.cell(schemeName, wname, pname, p, tun, fp, faultMetrics))
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// cellInput canonically encodes every result-affecting input of one
// cell — the cell's content address (Cell.Input). The encoding is
// versioned: any change to what a cell computes from its inputs must
// bump the prefix, which cleanly invalidates all persisted cache
// entries. Cells whose output is host-dependent (MemStats) or carries
// an unserializable payload (a trace sink) return "" — uncacheable.
// The grid is filled (fill) before cells are enumerated, so explicit
// parameters and their defaults encode identically.
func (g Grid) cellInput(key Key, faultMetrics bool) string {
	if g.MemStats || g.Trace != 0 {
		return ""
	}
	return fmt.Sprintf("cell/v1 %s ppn=%d iters=%d seed=%d fw=%v locks=%d zipfs=%v think=%d thinkj=%d params=%+v fm=%v engine=%q",
		key, g.ProcsPerNode, g.Iters, g.Seed, g.FW, g.Locks, g.ZipfS,
		g.ThinkNs, g.ThinkJitterNs, g.Params, faultMetrics, g.Engine)
}

func (g Grid) cell(schemeName, wname, pname string, p int, tun scheme.Tunables, fp *fault.Profile, faultMetrics bool) Cell {
	key := Key{Scheme: schemeName, Workload: wname, Profile: pname, P: p,
		Tunables: tun.Canonical(), Faults: fp.Canonical()}
	return Cell{
		Key:   key,
		Input: g.cellInput(key, faultMetrics),
		Spec: func() (workload.Spec, error) {
			wl, err := workload.ByName(wname)
			if err != nil {
				return workload.Spec{}, err
			}
			// A sharded DHT needs one volume per lock: clamp the set to P.
			nlocks := g.Locks
			if wname == "dht" && nlocks > p {
				nlocks = p
			}
			prof, err := workload.ProfileByName(pname, workload.ProfileOpts{
				Locks: nlocks, FW: g.FW, ZipfS: g.ZipfS, ZipfSSet: g.ZipfSSet, Span: g.Iters,
				ThinkNs: g.ThinkNs, ThinkJitterNs: g.ThinkJitterNs,
			})
			if err != nil {
				return workload.Spec{}, err
			}
			spec := workload.Spec{
				Scheme:       schemeName,
				P:            p,
				ProcsPerNode: g.ProcsPerNode,
				Seed:         g.Seed,
				Iters:        g.Iters,
				Profile:      prof,
				Workload:     wl,
				Params:       g.Params,
				Tunables:     tun.Clone(),
				Faults:       fp.Clone(),
				FaultMetrics: faultMetrics,
				Engine:       g.Engine,
				MemStats:     g.MemStats,
				Obs:          g.Obs,
			}
			if g.Trace != 0 {
				spec.Trace = trace.New(g.Trace)
			}
			return spec, nil
		},
	}
}

// Table renders merged results as the workbench grid table; because the
// results arrive in canonical order, its rendering is byte-identical
// for any worker count.
func Table(title string, results []CellResult) *stats.Table {
	t := &stats.Table{
		Title: title,
		Columns: []string{"Scheme", "Workload", "Profile", "P", "Tunables", "Faults", "Locks",
			"Mops", "MeanLat[us]", "P95Lat[us]", "Makespan[ms]", "Reads", "Writes", "Jain", "Extra"},
	}
	for _, r := range results {
		rep := r.Report
		// Gate on either trace-derived signal, mirroring the Report
		// fingerprint's trace section: a cell can produce a fairness
		// index without a handoff-locality histogram (no handoffs
		// crossed the analyzer), and its Jain column must still render.
		jain := "-"
		if rep.Fairness != 0 || rep.HandoffLocality != nil {
			jain = stats.FmtF(rep.Fairness)
		}
		t.AddRow(rep.Scheme, rep.Workload, rep.Profile, fmt.Sprint(rep.P), orDash(r.Key.Tunables), orDash(r.Key.Faults), fmt.Sprint(r.Locks),
			stats.FmtF(rep.ThroughputMops), stats.FmtF(rep.Latency.Mean), stats.FmtF(rep.Latency.P95),
			stats.FmtF(rep.MakespanMs), fmt.Sprint(rep.Reads), fmt.Sprint(rep.Writes), jain, extraString(rep))
	}
	return t
}

// orDash renders an optional string cell.
func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// extraString flattens workload-specific extras into one cell, every
// key in sorted order so rendering stays deterministic (map iteration
// order must never leak in) and new workloads' extras show up without
// touching an allowlist.
func extraString(rep workload.Report) string {
	if len(rep.Extra) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(rep.Extra))
	for k := range rep.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%g", k, rep.Extra[k])
	}
	return strings.Join(parts, " ")
}
