// Package sweep is the host-parallel sweep engine: it enumerates
// scheme × workload × profile × P parameter grids as independent
// workload.Spec cells, executes them on a bounded worker pool, and
// merges the results in canonical cell order.
//
// Every cell is a byte-deterministic simulation (see DESIGN.md,
// "Determinism") with no shared mutable state, so the grid is
// embarrassingly parallel across host cores: distributing cells over
// workers changes wall-clock time but never the merged output. A
// same-grid serial-vs-parallel equality test guards that property.
//
// Sweep runs persist as JSON (see persist.go) under results/, and
// Compare (compare.go) diffs a run against a persisted baseline —
// the repository's perf-regression gate.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"rmalocks/internal/stats"
	"rmalocks/internal/trace"
	"rmalocks/internal/workload"
)

// Key identifies one grid cell: the coordinates of the paper's
// scheme × workload × profile × P parameter space (§5).
type Key struct {
	Scheme   string `json:"scheme"`
	Workload string `json:"workload"`
	Profile  string `json:"profile"`
	P        int    `json:"p"`
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/%s/P=%d", k.Scheme, k.Workload, k.Profile, k.P)
}

// Cell is one independent simulation of a sweep.
type Cell struct {
	// Key names the cell in reports and baselines.
	Key Key
	// Spec builds a fresh workload.Spec for one execution. A fresh value
	// per call is required: Workload implementations carry per-run state
	// (window offsets, DHT tables), so executions — including the -check
	// re-run — must never share instances across workers.
	Spec func() (workload.Spec, error)
}

// CellResult is the merged outcome of one cell, in canonical order.
type CellResult struct {
	Key         Key             `json:"key"`
	Locks       int             `json:"locks"`
	Report      workload.Report `json:"report"`
	Fingerprint string          `json:"fingerprint"`
	// Trace holds the cell's event sink when the grid ran with tracing
	// (Grid.Trace); consumers (workbench -trace) export it. Never
	// persisted: baselines carry only the trace-derived Report fields.
	Trace *trace.Sink `json:"-"`
}

// Options configures a sweep execution.
type Options struct {
	// Workers bounds the worker pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Check runs every cell twice and fails the sweep unless both
	// executions produce byte-identical report fingerprints.
	Check bool
}

// ForEach runs n independent jobs on a bounded worker pool and blocks
// until all complete. Job errors do not cancel other jobs (cells are
// independent); the error returned is the lowest-index failure, so
// error reporting is deterministic regardless of worker count.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run executes every cell on the worker pool and returns the results in
// the cells' order. Output is byte-identical for any worker count:
// result slot i belongs to cell i no matter which worker ran it.
func Run(cells []Cell, opts Options) ([]CellResult, error) {
	results := make([]CellResult, len(cells))
	err := ForEach(len(cells), opts.Workers, func(i int) error {
		c := cells[i]
		rep, locks, sink, err := runOnce(c)
		if err != nil {
			return fmt.Errorf("sweep: cell %s: %w", c.Key, err)
		}
		fp := rep.Fingerprint()
		if opts.Check {
			rep2, _, _, err := runOnce(c)
			if err != nil {
				return fmt.Errorf("sweep: cell %s (check re-run): %w", c.Key, err)
			}
			if rep2.Fingerprint() != fp {
				return fmt.Errorf("sweep: cell %s is NOT reproducible", c.Key)
			}
		}
		results[i] = CellResult{Key: c.Key, Locks: locks, Report: rep, Fingerprint: fp, Trace: sink}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

func runOnce(c Cell) (workload.Report, int, *trace.Sink, error) {
	spec, err := c.Spec()
	if err != nil {
		return workload.Report{}, 0, nil, err
	}
	locks := 1
	if spec.Profile != nil {
		locks = spec.Profile.Locks()
	}
	rep, err := workload.Run(spec)
	return rep, locks, spec.Trace, err
}

// Grid enumerates a scheme × workload × profile × P parameter space
// with shared cell parameters. Zero fields select the defaults of the
// paper's evaluation setup (fill).
type Grid struct {
	// Schemes, Workloads and Profiles name the axes (workload.Schemes,
	// workload.WorkloadNames, workload.ProfileNames).
	Schemes   []string
	Workloads []string
	Profiles  []string
	// Ps is the process-count axis (e.g. 16→512 to reproduce the
	// paper's scaling figures in one invocation). Default {64}.
	Ps []int

	// ProcsPerNode is the machine shape (default 16).
	ProcsPerNode int
	// Iters is the measured cycles per process (default 50); it also
	// sets the sweep profile's span.
	Iters int
	// Seed seeds every cell (default 1).
	Seed int64
	// FW is the writer fraction handed to the profiles.
	FW float64
	// Locks is the lock-set size for multi-lock profiles (default 8;
	// clamped to P for the sharded DHT workload).
	Locks int
	// ZipfS is the Zipf skew exponent (default 1.2).
	ZipfS float64
	// ThinkNs / ThinkJitterNs set post-release think time.
	ThinkNs       int64
	ThinkJitterNs int64
	// Params tunes the lock schemes.
	Params workload.SchemeParams
	// Engine selects the scheduler implementation for every cell ("" or
	// "fast" = token-owned fast path, "ref" = reference engine); the
	// workbench -engine flag exposes it for ad-hoc differential sweeps.
	Engine string
	// Trace, when nonzero, attaches a fresh trace sink with this class
	// mask to every cell (cells run in parallel, so sinks are per-cell),
	// filling the per-cell Report.Fairness / Report.HandoffLocality
	// metrics and returning the raw sinks via CellResult.Trace.
	Trace trace.Class
}

func (g Grid) fill() Grid {
	if len(g.Ps) == 0 {
		g.Ps = []int{64}
	}
	if g.ProcsPerNode == 0 {
		g.ProcsPerNode = 16
	}
	if g.Iters == 0 {
		g.Iters = 50
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	if g.Locks == 0 {
		g.Locks = 8
	}
	if g.ZipfS == 0 {
		g.ZipfS = 1.2
	}
	return g
}

// Cells enumerates the grid in canonical order: scheme outermost, then
// workload, then profile, then P. Reports, baselines and diffs all
// follow this order.
func (g Grid) Cells() []Cell {
	g = g.fill()
	var cells []Cell
	for _, scheme := range g.Schemes {
		for _, wname := range g.Workloads {
			for _, pname := range g.Profiles {
				for _, p := range g.Ps {
					cells = append(cells, g.cell(scheme, wname, pname, p))
				}
			}
		}
	}
	return cells
}

func (g Grid) cell(scheme, wname, pname string, p int) Cell {
	return Cell{
		Key: Key{Scheme: scheme, Workload: wname, Profile: pname, P: p},
		Spec: func() (workload.Spec, error) {
			wl, err := workload.ByName(wname)
			if err != nil {
				return workload.Spec{}, err
			}
			// A sharded DHT needs one volume per lock: clamp the set to P.
			nlocks := g.Locks
			if wname == "dht" && nlocks > p {
				nlocks = p
			}
			prof, err := workload.ProfileByName(pname, workload.ProfileOpts{
				Locks: nlocks, FW: g.FW, ZipfS: g.ZipfS, Span: g.Iters,
				ThinkNs: g.ThinkNs, ThinkJitterNs: g.ThinkJitterNs,
			})
			if err != nil {
				return workload.Spec{}, err
			}
			spec := workload.Spec{
				Scheme:       scheme,
				P:            p,
				ProcsPerNode: g.ProcsPerNode,
				Seed:         g.Seed,
				Iters:        g.Iters,
				Profile:      prof,
				Workload:     wl,
				Params:       g.Params,
				Engine:       g.Engine,
			}
			if g.Trace != 0 {
				spec.Trace = trace.New(g.Trace)
			}
			return spec, nil
		},
	}
}

// Table renders merged results as the workbench grid table; because the
// results arrive in canonical order, its rendering is byte-identical
// for any worker count.
func Table(title string, results []CellResult) *stats.Table {
	t := &stats.Table{
		Title: title,
		Columns: []string{"Scheme", "Workload", "Profile", "P", "Locks",
			"Mops", "MeanLat[us]", "P95Lat[us]", "Makespan[ms]", "Reads", "Writes", "Jain", "Extra"},
	}
	for _, r := range results {
		rep := r.Report
		jain := "-"
		if rep.HandoffLocality != nil {
			jain = stats.FmtF(rep.Fairness)
		}
		t.AddRow(rep.Scheme, rep.Workload, rep.Profile, fmt.Sprint(rep.P), fmt.Sprint(r.Locks),
			stats.FmtF(rep.ThroughputMops), stats.FmtF(rep.Latency.Mean), stats.FmtF(rep.Latency.P95),
			stats.FmtF(rep.MakespanMs), fmt.Sprint(rep.Reads), fmt.Sprint(rep.Writes), jain, extraString(rep))
	}
	return t
}

// extraString flattens workload-specific extras into one cell, in a
// fixed key order so rendering stays deterministic.
func extraString(rep workload.Report) string {
	if len(rep.Extra) == 0 {
		return "-"
	}
	out := ""
	for _, k := range []string{"stored", "overflows", "counter"} {
		if v, ok := rep.Extra[k]; ok {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s=%g", k, v)
		}
	}
	if out == "" {
		return "-"
	}
	return out
}
