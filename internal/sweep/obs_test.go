package sweep

import (
	"strings"
	"sync"
	"testing"

	"rmalocks/internal/obs"
)

// obsGrid is a small mixed-engine grid: enough cells that scrapes
// genuinely overlap running cells under -race.
func obsGrid(m *obs.Metrics) Grid {
	return Grid{
		Schemes:   []string{"RMA-MCS", "foMPI-Spin"},
		Workloads: []string{"empty"},
		Profiles:  []string{"uniform", "zipf"},
		Ps:        []int{16, 32},
		Iters:     10,
		Obs:       m,
	}
}

// TestScrapeWhileRunning is the mid-sweep race test: HTTP-plane reads
// (Prometheus scrape + progress NDJSON) run concurrently with sweep
// workers writing metrics and progress. Any unsynchronized access is a
// -race failure; the test also checks the final progress state and
// that attaching obs left every fingerprint identical to a bare run.
func TestScrapeWhileRunning(t *testing.T) {
	m := obs.NewMetrics()
	prog := obs.NewSweepProgress("race test")
	grid := obsGrid(m)
	cells, err := grid.Cells()
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	scrapers.Add(2)
	go func() {
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := m.Registry.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
			m.Registry.Snapshot()
		}
	}()
	go func() {
		defer scrapers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := prog.WriteNDJSON(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	results, err := Run(cells, Options{Workers: 4, Progress: prog})
	close(stop)
	scrapers.Wait()
	if err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := prog.WriteNDJSON(&sb); err != nil {
		t.Fatal(err)
	}
	final := sb.String()
	if !strings.Contains(final, `"done":8`) || strings.Contains(final, `"state":"queued"`) {
		t.Fatalf("final progress not fully done:\n%s", final)
	}
	for _, r := range results {
		if !strings.Contains(final, r.Fingerprint) {
			t.Fatalf("progress missing fingerprint of %s", r.Key)
		}
	}

	// Observe, never perturb, sweep edition: the same grid without obs
	// produces the same fingerprints cell for cell.
	bare := obsGrid(nil)
	bareCells, err := bare.Cells()
	if err != nil {
		t.Fatal(err)
	}
	bareResults, err := Run(bareCells, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(bareResults) != len(results) {
		t.Fatalf("cell counts differ: %d vs %d", len(bareResults), len(results))
	}
	for i := range results {
		if results[i].Fingerprint != bareResults[i].Fingerprint {
			t.Fatalf("cell %s fingerprint drifted with obs on: %s vs %s",
				results[i].Key, results[i].Fingerprint, bareResults[i].Fingerprint)
		}
	}

	// The shared registry accumulated across cells: 8 cells × P iters.
	iters := m.Registry.Snapshot().Counters["cell_iters_done_total"]
	var want int64
	for _, c := range cells {
		want += int64(c.Key.P * grid.Iters)
	}
	if iters != want {
		t.Fatalf("cell_iters_done_total = %d, want %d", iters, want)
	}
}
