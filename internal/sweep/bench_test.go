package sweep_test

// Benchmarks for the sweep engine: wall-clock and allocation cost of
// executing a small grid, serial and parallel. Together with the sim and
// workload benchmarks these feed BENCH_3.json (`make bench`), the
// repository's persisted performance trajectory. The allocs/op figure is
// what the scheduler proc pool and the harness report-buffer pool push
// down: repeated cells reuse procs, wake channels and sample buffers.

import (
	"fmt"
	"testing"

	"rmalocks/internal/sweep"
	"rmalocks/internal/workload"
)

func benchGrid() sweep.Grid {
	return sweep.Grid{
		Schemes:   []string{workload.SchemeDMCS, workload.SchemeRMARW},
		Workloads: []string{"empty"},
		Profiles:  []string{"uniform", "zipf"},
		Ps:        []int{16, 32},
		Iters:     10,
	}
}

// BenchmarkSweepGrid measures one full small-grid execution (8 cells).
func BenchmarkSweepGrid(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("j=%d", workers), func(b *testing.B) {
			cells := mustCells(b, benchGrid())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results, err := sweep.Run(cells, sweep.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(cells) {
					b.Fatalf("got %d results, want %d", len(results), len(cells))
				}
			}
			b.ReportMetric(float64(len(cells)), "cells/run")
		})
	}
}

// BenchmarkSweepCheck measures the -check mode (every cell twice), the
// heaviest repeated-cell pattern the pools are built for.
func BenchmarkSweepCheck(b *testing.B) {
	cells := mustCells(b, benchGrid())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Run(cells, sweep.Options{Check: true}); err != nil {
			b.Fatal(err)
		}
	}
}
