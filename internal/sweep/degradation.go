package sweep

// Degradation metrics: a fault-axis sweep enumerates, for every grid
// coordinate, a fault-free baseline cell followed by its perturbed
// variants. ApplyDegradation joins each faulted cell back to its
// baseline and derives relative graceful-degradation metrics, so the
// persisted results/faults.json answers "how much worse" directly
// instead of leaving the division to the reader.

// Extra keys written by ApplyDegradation into faulted cells' reports.
const (
	// ExtraP99Infl / ExtraP999Infl are tail-latency inflation factors:
	// the faulted cell's p99 / p99.9 acquire latency divided by the
	// fault-free baseline's (1 = no degradation, 3 = 3× fatter tail).
	ExtraP99Infl  = "p99_infl"
	ExtraP999Infl = "p999_infl"
	// ExtraJainDelta is the fairness movement under faults (faulted
	// minus baseline Jain index, so negative = less fair); present only
	// when both cells were traced.
	ExtraJainDelta = "jain_delta"
)

// ApplyDegradation computes per-cell degradation metrics in place: for
// every faulted cell whose fault-free sibling (same Key minus Faults)
// is present, the tail-latency inflation factors — and, when both
// cells carry trace-derived fairness, the Jain delta — are added to
// the faulted report's Extra map and the cell fingerprint is
// recomputed. Cells without a baseline (or with a zero-latency
// baseline) are left untouched. Deterministic: the join is by Key, so
// the outcome is independent of worker count and result order.
func ApplyDegradation(results []CellResult) {
	type baseMetrics struct {
		p99, p999 float64
		fair      float64
		traced    bool
	}
	base := make(map[Key]baseMetrics)
	for _, r := range results {
		if r.Key.Faults != "" {
			continue
		}
		base[r.Key] = baseMetrics{
			p99:    r.Report.Extra["lat_p99"],
			p999:   r.Report.Extra["lat_p999"],
			fair:   r.Report.Fairness,
			traced: r.Report.Fairness != 0 || r.Report.HandoffLocality != nil,
		}
	}
	for i := range results {
		r := &results[i]
		if r.Key.Faults == "" {
			continue
		}
		k := r.Key
		k.Faults = ""
		b, ok := base[k]
		if !ok {
			continue
		}
		changed := false
		if b.p99 > 0 {
			r.Report.Extra[ExtraP99Infl] = r.Report.Extra["lat_p99"] / b.p99
			changed = true
		}
		if b.p999 > 0 {
			r.Report.Extra[ExtraP999Infl] = r.Report.Extra["lat_p999"] / b.p999
			changed = true
		}
		if b.traced && (r.Report.Fairness != 0 || r.Report.HandoffLocality != nil) {
			r.Report.Extra[ExtraJainDelta] = r.Report.Fairness - b.fair
			changed = true
		}
		if changed {
			r.Fingerprint = r.Report.Fingerprint()
		}
	}
}
