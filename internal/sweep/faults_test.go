package sweep_test

import (
	"strings"
	"testing"

	"rmalocks/internal/fault"
	"rmalocks/internal/sweep"
	"rmalocks/internal/trace"
	"rmalocks/internal/workload"
)

func mustFault(tb testing.TB, spec string) *fault.Profile {
	tb.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// faultGrid mixes a CapTimeout scheme with a queue scheme and a fault
// axis carrying both a perturbation-only and a timeout profile, so the
// per-scheme projection is exercised.
func faultGrid(tb testing.TB) sweep.Grid {
	return sweep.Grid{
		Schemes:   []string{workload.SchemeFoMPISpin, workload.SchemeRMAMCS},
		Workloads: []string{"empty"},
		Profiles:  []string{"uniform"},
		Ps:        []int{16},
		Iters:     10,
		FW:        0.5,
		Locks:     2,
		Faults: []*fault.Profile{
			mustFault(tb, "jitter=0.2,stall=50us@0.05"),
			mustFault(tb, "jitter=0.2,timeout=150us"),
		},
	}
}

// TestFaultAxisEnumeration pins the canonical order and the projection:
// every coordinate leads with its fault-free baseline cell, and the
// timeout profile is enumerated only for the CapTimeout scheme.
func TestFaultAxisEnumeration(t *testing.T) {
	cells := mustCells(t, faultGrid(t))
	var got []string
	for _, c := range cells {
		got = append(got, c.Key.String())
	}
	want := []string{
		"foMPI-Spin/empty/uniform/P=16",
		"foMPI-Spin/empty/uniform/P=16/faults=jitter=0.2,stall=50000@0.05",
		"foMPI-Spin/empty/uniform/P=16/faults=jitter=0.2,timeout=150000",
		"RMA-MCS/empty/uniform/P=16",
		"RMA-MCS/empty/uniform/P=16/faults=jitter=0.2,stall=50000@0.05",
	}
	if len(got) != len(want) {
		t.Fatalf("cell count %d want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %d: %s want %s", i, got[i], want[i])
		}
	}
}

// TestFaultAxisInvalidProfile pins the enumeration-time validation: a
// malformed profile fails Cells with the fault package's typed error.
func TestFaultAxisInvalidProfile(t *testing.T) {
	g := faultGrid(t)
	g.Faults = append(g.Faults, &fault.Profile{Jitter: -1})
	if _, err := g.Cells(); err == nil {
		t.Fatal("Cells accepted a negative-jitter profile")
	}
}

// TestFaultSweepWorkerInvariance is the determinism-under-faults gate
// at the sweep layer: the same faulted grid with 1 and 4 workers must
// merge byte-identically, and -check must pass (each cell reproduces).
func TestFaultSweepWorkerInvariance(t *testing.T) {
	serial, err := sweep.Run(mustCells(t, faultGrid(t)), sweep.Options{Workers: 1, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sweep.Run(mustCells(t, faultGrid(t)), sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Fingerprint != parallel[i].Fingerprint {
			t.Errorf("cell %s: fingerprints differ between -j 1 and -j 4", serial[i].Key)
		}
	}
	if sweep.Table("g", serial).String() != sweep.Table("g", parallel).String() {
		t.Error("rendered tables differ between worker counts")
	}
	// Faulted cells must carry the fault metrics; the baseline cells the
	// axis enumerates must carry the percentiles (FaultMetrics mode) but
	// no fault counters.
	for _, r := range serial {
		if _, ok := r.Report.Extra["lat_p99"]; !ok {
			t.Errorf("cell %s: missing lat_p99 under a fault axis", r.Key)
		}
		_, hasTimeouts := r.Report.Extra["timeouts"]
		wantTimeouts := strings.Contains(r.Key.Faults, "timeout=")
		if hasTimeouts != wantTimeouts {
			t.Errorf("cell %s: timeouts key present=%v want %v", r.Key, hasTimeouts, wantTimeouts)
		}
	}
}

// TestApplyDegradation pins the baseline join and the derived metrics.
func TestApplyDegradation(t *testing.T) {
	g := faultGrid(t)
	g.Trace = trace.ClassSemantic // so jain_delta is computable
	results, err := sweep.Run(mustCells(t, g), sweep.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sweep.ApplyDegradation(results)
	// The degradation invariants must hold on every traced fault-sweep
	// cell: mutual exclusion under stalls, no lost wakeups, every
	// timed-out acquire cleanly resolved.
	for _, r := range results {
		if r.Trace == nil {
			t.Fatalf("cell %s: no trace sink despite Grid.Trace", r.Key)
		}
		if err := trace.Validate(r.Trace.Events()); err != nil {
			t.Errorf("cell %s: replay validation: %v", r.Key, err)
		}
	}
	faulted := 0
	for _, r := range results {
		if r.Key.Faults == "" {
			if _, ok := r.Report.Extra[sweep.ExtraP99Infl]; ok {
				t.Errorf("baseline cell %s gained an inflation metric", r.Key)
			}
			continue
		}
		faulted++
		infl, ok := r.Report.Extra[sweep.ExtraP99Infl]
		if !ok {
			t.Errorf("faulted cell %s: no %s", r.Key, sweep.ExtraP99Infl)
			continue
		}
		if infl <= 0 {
			t.Errorf("faulted cell %s: %s = %g", r.Key, sweep.ExtraP99Infl, infl)
		}
		if _, ok := r.Report.Extra[sweep.ExtraJainDelta]; !ok {
			t.Errorf("faulted cell %s: no %s despite tracing", r.Key, sweep.ExtraJainDelta)
		}
		if r.Fingerprint != r.Report.Fingerprint() {
			t.Errorf("faulted cell %s: fingerprint not recomputed", r.Key)
		}
	}
	if faulted == 0 {
		t.Fatal("grid enumerated no faulted cells")
	}
	// Idempotence: a second pass must not change anything (the metrics
	// divide baselines that are themselves unchanged).
	before := make([]string, len(results))
	for i, r := range results {
		before[i] = r.Fingerprint
	}
	sweep.ApplyDegradation(results)
	for i, r := range results {
		if r.Fingerprint != before[i] {
			t.Errorf("cell %s: ApplyDegradation is not idempotent", r.Key)
		}
	}
}
