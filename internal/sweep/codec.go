package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"

	"rmalocks/internal/fault"
)

// gridWire is the JSON wire form of a Grid — the request body of
// cmd/sweepd's POST /jobs and the payload of `workbench -submit`. It
// covers exactly the fields that define what a sweep computes; the
// server-side attachments (Obs) and host-dependent or unserializable
// modes (MemStats, Trace) are deliberately not wire-expressible, so a
// submitted grid always produces cacheable, byte-reproducible cells.
type gridWire struct {
	Schemes       []string       `json:"schemes"`
	Workloads     []string       `json:"workloads"`
	Profiles      []string       `json:"profiles"`
	Ps            []int          `json:"ps,omitempty"`
	ProcsPerNode  int            `json:"ppn,omitempty"`
	Iters         int            `json:"iters,omitempty"`
	Seed          int64          `json:"seed,omitempty"`
	SeedSet       bool           `json:"seed_set,omitempty"`
	FW            float64        `json:"fw,omitempty"`
	Locks         int            `json:"locks,omitempty"`
	ZipfS         float64        `json:"zipfs,omitempty"`
	ZipfSSet      bool           `json:"zipfs_set,omitempty"`
	ThinkNs       int64          `json:"think_ns,omitempty"`
	ThinkJitterNs int64          `json:"think_jitter_ns,omitempty"`
	TL            []int64        `json:"tl,omitempty"`
	TDC           int            `json:"tdc,omitempty"`
	TR            int64          `json:"tr,omitempty"`
	Tunables      []tunableWire  `json:"tunables,omitempty"`
	// Faults carries the canonical fault-profile encodings (see
	// internal/fault's grammar, e.g. "jitter=0.2,stall=50000@0.01").
	Faults []string `json:"faults,omitempty"`
	Engine string   `json:"engine,omitempty"`
}

type tunableWire struct {
	Key    string  `json:"key"`
	Values []int64 `json:"values"`
}

// WireError reports a Grid that cannot cross the wire: the named field
// is meaningful only in-process (a live obs registry, a trace sink) or
// would make the submitted cells non-reproducible (MemStats).
type WireError struct {
	Field string
}

func (e WireError) Error() string {
	return fmt.Sprintf("sweep: grid field %s is not wire-expressible", e.Field)
}

// EncodeGrid marshals a grid into its JSON wire form. Grids carrying
// in-process-only attachments fail with a typed WireError rather than
// silently dropping behaviour on the floor.
func EncodeGrid(g Grid) ([]byte, error) {
	switch {
	case g.Obs != nil:
		return nil, WireError{Field: "Obs"}
	case g.Trace != 0:
		return nil, WireError{Field: "Trace"}
	case g.MemStats:
		return nil, WireError{Field: "MemStats"}
	}
	w := gridWire{
		Schemes: g.Schemes, Workloads: g.Workloads, Profiles: g.Profiles,
		Ps: g.Ps, ProcsPerNode: g.ProcsPerNode, Iters: g.Iters,
		Seed: g.Seed, SeedSet: g.SeedSet, FW: g.FW, Locks: g.Locks,
		ZipfS: g.ZipfS, ZipfSSet: g.ZipfSSet,
		ThinkNs: g.ThinkNs, ThinkJitterNs: g.ThinkJitterNs,
		TL: g.Params.TL, TDC: g.Params.TDC, TR: g.Params.TR,
		Engine: g.Engine,
	}
	for _, ax := range g.Tunables {
		w.Tunables = append(w.Tunables, tunableWire{Key: ax.Key, Values: ax.Values})
	}
	for _, fp := range g.Faults {
		if fp == nil {
			continue // the fault-free baseline cell is implicit (faultsFor)
		}
		w.Faults = append(w.Faults, fp.Canonical())
	}
	return json.Marshal(w)
}

// DecodeGrid unmarshals a grid from its JSON wire form. Decoding is
// strict — unknown fields are rejected, so a typo'd submission fails
// eagerly instead of silently sweeping defaults — and fault profiles
// are re-parsed through internal/fault's validating grammar.
func DecodeGrid(data []byte) (Grid, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w gridWire
	if err := dec.Decode(&w); err != nil {
		return Grid{}, fmt.Errorf("sweep: decode grid: %w", err)
	}
	g := Grid{
		Schemes: w.Schemes, Workloads: w.Workloads, Profiles: w.Profiles,
		Ps: w.Ps, ProcsPerNode: w.ProcsPerNode, Iters: w.Iters,
		Seed: w.Seed, SeedSet: w.SeedSet, FW: w.FW, Locks: w.Locks,
		ZipfS: w.ZipfS, ZipfSSet: w.ZipfSSet,
		ThinkNs: w.ThinkNs, ThinkJitterNs: w.ThinkJitterNs,
		Engine: w.Engine,
	}
	g.Params.TL, g.Params.TDC, g.Params.TR = w.TL, w.TDC, w.TR
	for _, ax := range w.Tunables {
		g.Tunables = append(g.Tunables, TunableAxis{Key: ax.Key, Values: ax.Values})
	}
	for i, spec := range w.Faults {
		fp, err := fault.Parse(spec)
		if err != nil {
			return Grid{}, fmt.Errorf("sweep: decode grid: faults[%d]: %w", i, err)
		}
		g.Faults = append(g.Faults, fp)
	}
	return g, nil
}
