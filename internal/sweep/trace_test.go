package sweep_test

import (
	"strings"
	"testing"

	"rmalocks/internal/sweep"
	"rmalocks/internal/trace"
	"rmalocks/internal/workload"
)

// TestGridTraceCells pins the sweep-level trace wiring: a traced grid
// attaches a fresh per-cell sink, fills the trace-derived report
// metrics, survives the -check reproducibility re-run, and its
// fingerprints differ from an untraced run of the same grid ONLY by the
// appended trace fields — so untraced baselines stay byte-identical
// whether or not the toolchain knows about tracing.
func TestGridTraceCells(t *testing.T) {
	g := sweep.Grid{
		Schemes:   []string{workload.SchemeDMCS},
		Workloads: []string{"empty"},
		Profiles:  []string{"uniform"},
		Ps:        []int{8},
		Iters:     8,
		FW:        1,
	}
	plain, err := sweep.Run(mustCells(t, g), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g.Trace = trace.ClassLock
	traced, err := sweep.Run(mustCells(t, g), sweep.Options{Check: true})
	if err != nil {
		t.Fatal(err)
	}

	if plain[0].Trace != nil {
		t.Fatal("untraced cell carries a sink")
	}
	if plain[0].Report.HandoffLocality != nil || plain[0].Report.Fairness != 0 {
		t.Fatalf("untraced cell carries trace metrics: %+v", plain[0].Report)
	}
	tr := traced[0]
	if tr.Trace == nil || tr.Trace.Len() == 0 {
		t.Fatal("traced cell missing its event sink")
	}
	if tr.Report.HandoffLocality == nil {
		t.Fatal("traced cell missing HandoffLocality")
	}
	if tr.Report.Fairness <= 0 || tr.Report.Fairness > 1 {
		t.Fatalf("traced cell Fairness = %v", tr.Report.Fairness)
	}

	// Stripping the trace-only fields must recover the untraced
	// fingerprint byte-for-byte: tracing never changes the simulation.
	stripped := tr.Report
	stripped.Fairness = 0
	stripped.HandoffLocality = nil
	if got, want := stripped.Fingerprint(), plain[0].Fingerprint; got != want {
		t.Fatalf("tracing perturbed the cell:\n traced-stripped: %s\n untraced:        %s", got, want)
	}
	if !strings.Contains(tr.Fingerprint, " fair=") {
		t.Fatalf("traced fingerprint not marked: %s", tr.Fingerprint)
	}
}
