package sweep

import (
	"fmt"

	"rmalocks/internal/stats"
)

// Delta is the per-cell comparison of a current run against a persisted
// baseline: throughput and mean-latency movements, plus whether the two
// executions were byte-identical (same fingerprint).
type Delta struct {
	Key Key

	// InBase / InCur flag cells present on only one side (a grid change
	// between runs).
	InBase, InCur bool

	// BaseMops / CurMops are aggregate throughputs (mln locks/s);
	// MopsPct is the relative change in percent (positive = faster).
	BaseMops, CurMops, MopsPct float64
	// BaseLat / CurLat are mean latencies (µs); LatPct is the relative
	// change in percent (positive = slower).
	BaseLat, CurLat, LatPct float64

	// Identical reports byte-identical fingerprints — the strongest
	// possible match: not just equal performance, equal everything.
	Identical bool
}

// pct returns the relative change cur vs base in percent.
func pct(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 100
	}
	return (cur - base) / base * 100
}

// Compare matches the current run's cells against a baseline by Key and
// reports per-cell deltas: current cells first (canonical order), then
// baseline-only cells in baseline order. Deterministic for any worker
// count on either side.
func Compare(base, cur []CellResult) []Delta {
	baseByKey := make(map[Key]CellResult, len(base))
	for _, b := range base {
		baseByKey[b.Key] = b
	}
	seen := make(map[Key]bool, len(cur))
	deltas := make([]Delta, 0, len(cur))
	for _, c := range cur {
		seen[c.Key] = true
		d := Delta{
			Key:     c.Key,
			InCur:   true,
			CurMops: c.Report.ThroughputMops,
			CurLat:  c.Report.Latency.Mean,
		}
		if b, ok := baseByKey[c.Key]; ok {
			d.InBase = true
			d.BaseMops = b.Report.ThroughputMops
			d.BaseLat = b.Report.Latency.Mean
			d.MopsPct = pct(d.BaseMops, d.CurMops)
			d.LatPct = pct(d.BaseLat, d.CurLat)
			d.Identical = b.Fingerprint != "" && b.Fingerprint == c.Fingerprint
		}
		deltas = append(deltas, d)
	}
	for _, b := range base {
		if !seen[b.Key] {
			deltas = append(deltas, Delta{
				Key: b.Key, InBase: true,
				BaseMops: b.Report.ThroughputMops,
				BaseLat:  b.Report.Latency.Mean,
			})
		}
	}
	return deltas
}

// Regressions filters deltas whose throughput dropped by more than
// tolPct percent (or whose cell disappeared). Baseline-less cells are
// new work, not regressions.
func Regressions(deltas []Delta, tolPct float64) []Delta {
	var out []Delta
	for _, d := range deltas {
		switch {
		case d.InBase && !d.InCur:
			out = append(out, d)
		case d.InBase && d.InCur && d.MopsPct < -tolPct:
			out = append(out, d)
		}
	}
	return out
}

// CompareTable renders deltas as an aligned table (the `workbench
// -baseline` / `make compare` output).
func CompareTable(title string, deltas []Delta) *stats.Table {
	t := &stats.Table{
		Title: title,
		Columns: []string{"Scheme", "Workload", "Profile", "P", "Tunables", "Faults",
			"BaseMops", "CurMops", "dMops[%]", "BaseLat[us]", "CurLat[us]", "dLat[%]", "Match"},
	}
	for _, d := range deltas {
		match := "differs"
		switch {
		case !d.InBase:
			match = "new"
		case !d.InCur:
			match = "MISSING"
		case d.Identical:
			match = "identical"
		}
		t.AddRow(d.Key.Scheme, d.Key.Workload, d.Key.Profile, fmt.Sprint(d.Key.P), orDash(d.Key.Tunables), orDash(d.Key.Faults),
			stats.FmtF(d.BaseMops), stats.FmtF(d.CurMops), fmtPct(d.MopsPct),
			stats.FmtF(d.BaseLat), stats.FmtF(d.CurLat), fmtPct(d.LatPct), match)
	}
	return t
}

// fmtPct renders a signed percentage with fixed precision.
func fmtPct(v float64) string { return fmt.Sprintf("%+.2f", v) }
