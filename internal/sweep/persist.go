package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// RunFile is the persisted form of one sweep run — the results/*.json
// baseline format. Cells are stored in canonical grid order; every cell
// carries its full Report plus the Fingerprint used by reproducibility
// checks, so a baseline can both gate performance (Compare) and detect
// any behavioural drift at all (fingerprint inequality).
type RunFile struct {
	// Label describes the run (the grid title in workbench output).
	Label string `json:"label,omitempty"`
	// Created is an informational RFC3339 timestamp; it never takes
	// part in comparisons.
	Created string `json:"created,omitempty"`
	// Cells holds the merged results in canonical order.
	Cells []CellResult `json:"cells"`
}

// NewRunFile stamps a RunFile for persisting the given results.
func NewRunFile(label string, results []CellResult) RunFile {
	return RunFile{
		Label:   label,
		Created: time.Now().UTC().Format(time.RFC3339),
		Cells:   results,
	}
}

// Encode renders the run in the persisted format: indented JSON plus a
// trailing newline, exactly the bytes Save writes. cmd/sweepd serves
// results through this same encoder (with Created left empty) so a
// fetched result is byte-identical to a local `workbench -out` file
// modulo the informational timestamp.
func Encode(rf RunFile) ([]byte, error) {
	data, err := json.MarshalIndent(rf, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Save writes the run as indented JSON, creating parent directories as
// needed (results/ is the conventional home). The write goes through a
// temporary file and rename, so an interrupted save never leaves a
// truncated baseline behind.
func Save(path string, rf RunFile) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("sweep: save %s: %w", path, err)
	}
	data, err := Encode(rf)
	if err != nil {
		return fmt.Errorf("sweep: save %s: %w", path, err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("sweep: save %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("sweep: save %s: %w", path, err)
	}
	return nil
}

// Load reads a run persisted by Save.
func Load(path string) (RunFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return RunFile{}, fmt.Errorf("sweep: load %s: %w", path, err)
	}
	var rf RunFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return RunFile{}, fmt.Errorf("sweep: load %s: %w", path, err)
	}
	return rf, nil
}
