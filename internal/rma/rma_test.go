package rma

import (
	"errors"
	"testing"
	"testing/quick"

	"rmalocks/internal/sim"
	"rmalocks/internal/topology"
)

func testMachine(nodes, ppn int) *Machine {
	return NewMachine(topology.TwoLevel(nodes, ppn))
}

func TestPutGet(t *testing.T) {
	m := testMachine(2, 2)
	off := m.Alloc(4)
	err := m.Run(func(p *Proc) {
		// Everyone writes its rank to its own slot 0 and reads it back.
		p.Put(int64(p.Rank()+100), p.Rank(), off)
		p.Flush(p.Rank())
		if v := p.Get(p.Rank(), off); v != int64(p.Rank()+100) {
			t.Errorf("rank %d: got %d", p.Rank(), v)
		}
		p.Flush(p.Rank())
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemotePutVisibleAfterBarrier(t *testing.T) {
	m := testMachine(2, 2)
	off := m.Alloc(1)
	err := m.Run(func(p *Proc) {
		// Ring: rank r writes to rank (r+1) mod P.
		target := (p.Rank() + 1) % m.Procs()
		p.Put(int64(p.Rank()), target, off)
		p.Flush(target)
		p.Barrier()
		want := int64((p.Rank() + m.Procs() - 1) % m.Procs())
		if v := p.Get(p.Rank(), off); v != want {
			t.Errorf("rank %d: got %d want %d", p.Rank(), v, want)
		}
		p.Flush(p.Rank())
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFAOSumIsAtomicUnderContention(t *testing.T) {
	m := testMachine(4, 4)
	off := m.Alloc(1)
	const iters = 50
	err := m.Run(func(p *Proc) {
		for i := 0; i < iters; i++ {
			p.FAO(1, 0, off, OpSum)
			p.Flush(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.At(0, off); got != int64(m.Procs()*iters) {
		t.Errorf("counter=%d want %d", got, m.Procs()*iters)
	}
}

func TestFAOReplaceReturnsPrevious(t *testing.T) {
	m := testMachine(1, 2)
	off := m.Alloc(1)
	m.OnInit(func(m *Machine) { m.Set(0, off, 7) })
	err := m.Run(func(p *Proc) {
		if p.Rank() != 0 {
			return
		}
		if prev := p.FAO(42, 0, off, OpReplace); prev != 7 {
			t.Errorf("prev=%d want 7", prev)
		}
		p.Flush(0)
		if v := p.Get(0, off); v != 42 {
			t.Errorf("value=%d want 42", v)
		}
		p.Flush(0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCASMutualExclusion(t *testing.T) {
	// Every process tries to CAS Nil->rank on the same word; exactly one
	// must win per round.
	m := testMachine(4, 4)
	lockOff := m.Alloc(1)
	winsOff := m.Alloc(1)
	m.OnInit(func(m *Machine) { m.Set(0, lockOff, Nil) })
	const rounds = 20
	err := m.Run(func(p *Proc) {
		for r := 0; r < rounds; r++ {
			prev := p.CAS(int64(p.Rank()), Nil, 0, lockOff)
			p.Flush(0)
			if prev == Nil { // we won
				p.FAO(1, 0, winsOff, OpSum)
				p.Flush(0)
				// Release.
				p.Put(Nil, 0, lockOff)
				p.Flush(0)
			}
			p.Barrier()
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wins := m.At(0, winsOff)
	if wins < rounds {
		t.Errorf("wins=%d, want >= %d (at least one winner per round)", wins, rounds)
	}
}

func TestAccumulateSumAndReplace(t *testing.T) {
	m := testMachine(1, 4)
	off := m.Alloc(2)
	err := m.Run(func(p *Proc) {
		p.Accumulate(int64(p.Rank()+1), 0, off, OpSum)
		p.Flush(0)
		p.Barrier()
		if p.Rank() == 0 {
			if v := p.Get(0, off); v != 1+2+3+4 {
				t.Errorf("sum=%d want 10", v)
			}
			p.Flush(0)
			p.Accumulate(99, 0, off+1, OpReplace)
			p.Flush(0)
			if v := p.Get(0, off+1); v != 99 {
				t.Errorf("replace=%d want 99", v)
			}
			p.Flush(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistanceAffectsCost(t *testing.T) {
	// A remote inter-node op must cost more virtual time than a local one.
	m := testMachine(2, 2) // ranks 0,1 node 0; ranks 2,3 node 1
	off := m.Alloc(1)
	var localCost, remoteCost int64
	err := m.Run(func(p *Proc) {
		if p.Rank() != 0 {
			return
		}
		t0 := p.Now()
		p.Put(1, 0, off) // self
		localCost = p.Now() - t0
		t0 = p.Now()
		p.Put(1, 2, off) // inter-node
		remoteCost = p.Now() - t0
	})
	if err != nil {
		t.Fatal(err)
	}
	if remoteCost <= localCost {
		t.Errorf("remote cost %d <= local cost %d", remoteCost, localCost)
	}
}

func TestHotSpotSerializes(t *testing.T) {
	// P processes all issue one atomic to rank 0 "at the same time": the
	// makespan must reflect serialization (≥ P * occupancy), unlike ops
	// to distinct targets.
	topo := topology.TwoLevel(4, 4)
	lat := UniformLatency(topo.MaxDistance(), 1000, 500)
	mHot := NewMachineConfig(topo, Config{Latency: &lat})
	off := mHot.Alloc(1)
	if err := mHot.Run(func(p *Proc) {
		p.FAO(1, 0, off, OpSum)
		p.Flush(0)
	}); err != nil {
		t.Fatal(err)
	}
	hot := mHot.MaxClock()

	mSpread := NewMachineConfig(topo, Config{Latency: &lat})
	off2 := mSpread.Alloc(1)
	if err := mSpread.Run(func(p *Proc) {
		p.FAO(1, p.Rank(), off2, OpSum)
		p.Flush(p.Rank())
	}); err != nil {
		t.Fatal(err)
	}
	spread := mSpread.MaxClock()

	if hot < int64(topo.Procs())*500 {
		t.Errorf("hot-spot makespan %d < serialization bound %d", hot, topo.Procs()*500)
	}
	if spread >= hot {
		t.Errorf("spread makespan %d >= hot makespan %d", spread, hot)
	}
}

func TestStatsCounting(t *testing.T) {
	m := testMachine(2, 2)
	off := m.Alloc(1)
	err := m.Run(func(p *Proc) {
		p.Put(1, 0, off)
		p.Get(0, off)
		p.FAO(1, 0, off, OpSum)
		p.CAS(1, 0, 0, off)
		p.Accumulate(1, 0, off, OpSum)
		p.Flush(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	P := int64(m.Procs())
	if s.Kind[opPut] != P || s.Kind[opGet] != P || s.Kind[opFAO] != P ||
		s.Kind[opCAS] != P || s.Kind[opAcc] != P || s.Kind[opFlush] != P {
		t.Errorf("unexpected stats: %v", s)
	}
	if s.Total() != 5*P {
		t.Errorf("Total=%d want %d", s.Total(), 5*P)
	}
	// Rank 0's 5 ops are local; everyone else's are remote.
	if s.Remote() != 5*(P-1) {
		t.Errorf("Remote=%d want %d", s.Remote(), 5*(P-1))
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestTimeLimit(t *testing.T) {
	topo := topology.TwoLevel(1, 2)
	m := NewMachineConfig(topo, Config{TimeLimit: 100_000})
	off := m.Alloc(1)
	err := m.Run(func(p *Proc) {
		for { // livelock: spin forever on a flag nobody sets
			if p.Get(0, off) != 0 {
				return
			}
			p.Flush(0)
		}
	})
	if !errors.Is(err, sim.ErrTimeLimit) {
		t.Fatalf("err=%v want ErrTimeLimit", err)
	}
}

func TestRunTwiceReinitializes(t *testing.T) {
	m := testMachine(1, 2)
	off := m.Alloc(1)
	m.OnInit(func(m *Machine) { m.Set(0, off, 5) })
	body := func(p *Proc) {
		if p.Rank() == 0 {
			if v := p.Get(0, off); v != 5 {
				t.Errorf("init value=%d want 5", v)
			}
			p.Flush(0)
			p.Put(17, 0, off)
			p.Flush(0)
		}
	}
	if err := m.Run(body); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(body); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicMakespan(t *testing.T) {
	run := func() int64 {
		m := testMachine(4, 8)
		off := m.Alloc(1)
		if err := m.Run(func(p *Proc) {
			for i := 0; i < 20; i++ {
				p.FAO(1, (p.Rank()+i)%m.Procs(), off, OpSum)
				p.Flush((p.Rank() + i) % m.Procs())
			}
		}); err != nil {
			t.Fatal(err)
		}
		return m.MaxClock()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("nondeterministic makespan: %d vs %d", a, b)
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) []int64 {
		topo := topology.TwoLevel(1, 4)
		m := NewMachineConfig(topo, Config{Seed: seed})
		out := make([]int64, topo.Procs())
		if err := m.Run(func(p *Proc) {
			out[p.Rank()] = p.Rand().Int63()
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b, c := draw(1), draw(1), draw(2)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("same seed differs at rank %d", i)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
	// Distinct ranks must get distinct streams.
	if a[0] == a[1] && a[1] == a[2] {
		t.Error("ranks share an RNG stream")
	}
}

func TestLatencyModelValidateAndScale(t *testing.T) {
	lat := DefaultLatency(3)
	if err := lat.validate(3); err != nil {
		t.Fatal(err)
	}
	half := lat.Scale(1, 2)
	if half.DataRTT[2] != lat.DataRTT[2]/2 {
		t.Errorf("Scale: got %d want %d", half.DataRTT[2], lat.DataRTT[2]/2)
	}
	// Extending deeper hierarchies keeps tables monotone.
	deep := DefaultLatency(6)
	for d := 1; d <= 6; d++ {
		if deep.DataRTT[d] < deep.DataRTT[d-1] {
			t.Errorf("DataRTT not monotone at %d", d)
		}
	}
}

func TestUniformLatencyProperty(t *testing.T) {
	f := func(r, o uint16) bool {
		rtt := int64(r%5000) + 1
		occ := int64(o % 1000)
		m := UniformLatency(2, rtt, occ)
		return m.DataRTT[0] == rtt && m.AtomicRTT[2] == rtt && m.DataOcc[1] == occ
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
