package rma

import (
	"fmt"
	"strings"
)

type opKind int

const (
	opPut opKind = iota
	opGet
	opAcc
	opFAO
	opCAS
	opFlush
	numOpKinds
)

var opNames = [numOpKinds]string{"Put", "Get", "Accumulate", "FAO", "CAS", "Flush"}

// OpCount splits operation counts into data (Put/Get) and atomic
// (Accumulate/FAO/CAS) classes.
type OpCount struct {
	Data   int64
	Atomic int64
}

// Stats aggregates RMA operation counts for one run. Because the simulator
// executes one process at a time, plain integers are safe.
type Stats struct {
	// Kind[k] counts operations of each kind (Put, Get, ...).
	Kind [numOpKinds]int64
	// PerDistance[d] counts operations whose target was at distance d.
	PerDistance []OpCount
}

func (s *Stats) count(k opKind, dist int) {
	s.Kind[k]++
	if k == opFlush {
		return
	}
	if k == opPut || k == opGet {
		s.PerDistance[dist].Data++
	} else {
		s.PerDistance[dist].Atomic++
	}
}

// Total returns the total number of RMA operations excluding flushes.
func (s Stats) Total() int64 {
	var t int64
	for k := opKind(0); k < numOpKinds; k++ {
		if k != opFlush {
			t += s.Kind[k]
		}
	}
	return t
}

// Remote returns the number of operations that left the origin rank.
func (s Stats) Remote() int64 {
	var t int64
	for d := 1; d < len(s.PerDistance); d++ {
		t += s.PerDistance[d].Data + s.PerDistance[d].Atomic
	}
	return t
}

// String renders a compact summary.
func (s Stats) String() string {
	var b strings.Builder
	for k := opKind(0); k < numOpKinds; k++ {
		if s.Kind[k] > 0 {
			fmt.Fprintf(&b, "%s=%d ", opNames[k], s.Kind[k])
		}
	}
	for d, c := range s.PerDistance {
		if c.Data+c.Atomic > 0 {
			fmt.Fprintf(&b, "d%d=%d/%d ", d, c.Data, c.Atomic)
		}
	}
	return strings.TrimSpace(b.String())
}
