package rma

import "fmt"

// LatencyModel describes the timing of simulated RMA operations as a
// function of the topological distance between origin and target
// (0 = same rank, 1 = same node, 2 = one network hop, ...).
//
// Two operation classes are distinguished, reflecting RDMA hardware:
//
//   - data ops (Put/Get) can use shared-memory fast paths inside a node,
//     so their intra-node cost is far below the network cost;
//   - atomic ops (Accumulate/FAO/CAS) are executed by the NIC even for
//     local targets on Cray-style hardware, so they are expensive
//     everywhere and serialize per target.
//
// Occupancy is the per-operation service time at the target (memory
// controller or NIC); concurrent operations on the same target queue up
// behind it, which is what makes centralized hot spots collapse.
type LatencyModel struct {
	// DataRTT[d] is the round-trip latency (ns) of a Put/Get at distance d.
	DataRTT []int64
	// AtomicRTT[d] is the round-trip latency (ns) of an atomic at distance d.
	AtomicRTT []int64
	// DataOcc[d] is the target service time (ns) of a Put/Get at distance d.
	DataOcc []int64
	// AtomicOcc[d] is the target service time (ns) of an atomic at distance d.
	AtomicOcc []int64
}

// DefaultLatency returns the calibrated model used for the experiments:
// an Aries-like network with XPMEM-style intra-node data transfers and
// NIC-executed atomics. maxDist must be >= 1; distances beyond the table
// extrapolate by one extra network-ish hop per level.
func DefaultLatency(maxDist int) LatencyModel {
	if maxDist < 1 {
		panic(fmt.Sprintf("rma: maxDist must be >= 1, got %d", maxDist))
	}
	base := LatencyModel{
		//               self intra-node inter-node inter-rack
		DataRTT:   []int64{60, 150, 1300, 2000},
		AtomicRTT: []int64{400, 900, 1700, 2300},
		DataOcc:   []int64{25, 50, 100, 100},
		AtomicOcc: []int64{100, 150, 200, 200},
	}
	return base.extend(maxDist)
}

// UniformLatency returns a model where every operation costs rtt with
// occupancy occ regardless of distance; useful in unit tests where timing
// must not matter.
func UniformLatency(maxDist int, rtt, occ int64) LatencyModel {
	n := maxDist + 1
	m := LatencyModel{
		DataRTT:   make([]int64, n),
		AtomicRTT: make([]int64, n),
		DataOcc:   make([]int64, n),
		AtomicOcc: make([]int64, n),
	}
	for d := 0; d < n; d++ {
		m.DataRTT[d] = rtt
		m.AtomicRTT[d] = rtt
		m.DataOcc[d] = occ
		m.AtomicOcc[d] = occ
	}
	return m
}

// extend pads the tables out to maxDist+1 entries, repeating the growth of
// the last step for deeper hierarchies.
func (m LatencyModel) extend(maxDist int) LatencyModel {
	grow := func(t []int64) []int64 {
		out := make([]int64, maxDist+1)
		for d := 0; d <= maxDist; d++ {
			if d < len(t) {
				out[d] = t[d]
				continue
			}
			step := t[len(t)-1] - t[len(t)-2]
			if step < 0 {
				step = 0
			}
			out[d] = out[d-1] + step
		}
		return out
	}
	return LatencyModel{
		DataRTT:   grow(m.DataRTT),
		AtomicRTT: grow(m.AtomicRTT),
		DataOcc:   grow(m.DataOcc),
		AtomicOcc: grow(m.AtomicOcc),
	}
}

// Scale returns a copy of the model with all round-trip latencies and
// occupancies multiplied by num/den; used for sensitivity/ablation studies.
func (m LatencyModel) Scale(num, den int64) LatencyModel {
	sc := func(t []int64) []int64 {
		out := make([]int64, len(t))
		for i, v := range t {
			w := v * num / den
			if w < 1 {
				w = 1
			}
			out[i] = w
		}
		return out
	}
	return LatencyModel{
		DataRTT:   sc(m.DataRTT),
		AtomicRTT: sc(m.AtomicRTT),
		DataOcc:   sc(m.DataOcc),
		AtomicOcc: sc(m.AtomicOcc),
	}
}

func (m LatencyModel) validate(maxDist int) error {
	for name, t := range map[string][]int64{
		"DataRTT": m.DataRTT, "AtomicRTT": m.AtomicRTT,
		"DataOcc": m.DataOcc, "AtomicOcc": m.AtomicOcc,
	} {
		if len(t) < maxDist+1 {
			return fmt.Errorf("rma: latency table %s has %d entries, need %d", name, len(t), maxDist+1)
		}
		for d, v := range t {
			if v < 0 {
				return fmt.Errorf("rma: latency table %s[%d] is negative", name, d)
			}
		}
		if t[0] == 0 && (name == "DataRTT" || name == "AtomicRTT") {
			return fmt.Errorf("rma: %s[0] must be positive (zero-cost ops livelock spin loops)", name)
		}
	}
	return nil
}
