package rma

// Charge-coalescing equivalence at the raw RMA level: a protocol-shaped
// program (FAO tail swaps, Put links, SpinUntil grant waits, barriers,
// contended busy horizons) must be byte-identical — same MaxClock, same
// final window memory, same op counts — on every engine × coalescing
// combination. This is the substrate the workload-level differential
// suite builds on.

import (
	"fmt"
	"testing"

	"rmalocks/internal/topology"
)

// runCoalesceProgram runs a token ring: each round, rank r spins on its
// grant word, does contended counter traffic (busy-horizon
// serialization) plus local compute, then grants its ring successor —
// exercising SpinUntil wake-ups (the horizon-shrink path), coalesced
// charge flushes at block/barrier points, and per-target occupancy.
func runCoalesceProgram(t *testing.T, engine string, noCoalesce bool) (int64, []int64, Stats) {
	t.Helper()
	topo := topology.ForProcs(8, 4)
	m := NewMachineConfig(topo, Config{Seed: 3, Engine: engine, NoCoalesce: noCoalesce})
	grant := m.Alloc(1) // per rank: ring grant flag
	cnt := m.Alloc(1)   // rank 0: contended counter
	scratch := m.Alloc(1)
	err := m.Run(func(p *Proc) {
		r, procs := p.Rank(), p.Machine().Procs()
		for round := int64(1); round <= 3; round++ {
			if r != 0 {
				p.SpinUntil(r, grant, func(v int64) bool { return v == round })
			}
			// Contended counter traffic plus assorted op coverage.
			p.Accumulate(1, 0, cnt, OpSum)
			old := p.FAO(2, 0, cnt, OpSum)
			p.CAS(old, old+2, r, scratch)
			p.Compute(50 + int64(r))
			p.Put(round, (r+1)%procs, grant) // pass the token on
			if r == 0 {
				// Wait for the ring to come back around.
				p.SpinUntil(0, grant, func(v int64) bool { return v == round })
			}
			p.Flush(0)
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatalf("engine=%q nocoalesce=%v: %v", engine, noCoalesce, err)
	}
	memEnd := make([]int64, 0, 8*m.Words())
	for r := 0; r < m.Procs(); r++ {
		for w := 0; w < m.Words(); w++ {
			memEnd = append(memEnd, m.At(r, w))
		}
	}
	return m.MaxClock(), memEnd, m.Stats()
}

func TestCoalescingEquivalence(t *testing.T) {
	type combo struct {
		engine     string
		noCoalesce bool
	}
	combos := []combo{
		{EngineFast, false},
		{EngineFast, true},
		{EngineRef, false},
		{EngineRef, true},
	}
	baseClk, baseMem, baseStats := runCoalesceProgram(t, combos[0].engine, combos[0].noCoalesce)
	if baseClk == 0 {
		t.Fatal("program made no virtual progress")
	}
	for _, c := range combos[1:] {
		clk, mem, st := runCoalesceProgram(t, c.engine, c.noCoalesce)
		name := fmt.Sprintf("engine=%q nocoalesce=%v", c.engine, c.noCoalesce)
		if clk != baseClk {
			t.Errorf("%s: MaxClock %d != %d", name, clk, baseClk)
		}
		if fmt.Sprint(mem) != fmt.Sprint(baseMem) {
			t.Errorf("%s: final window memory diverged", name)
		}
		if fmt.Sprint(st) != fmt.Sprint(baseStats) {
			t.Errorf("%s: op stats diverged:\n a: %+v\n b: %+v", name, baseStats, st)
		}
	}
}

// TestNowIncludesPending pins the effective-clock contract: Now() must
// advance by at least the charged duration after every op even while the
// charge is still coalesced (unpublished to the scheduler).
func TestNowIncludesPending(t *testing.T) {
	topo := topology.ForProcs(2, 2)
	m := NewMachine(topo)
	off := m.Alloc(1)
	err := m.Run(func(p *Proc) {
		if p.Rank() != 0 {
			p.Compute(1 << 30) // park far away: rank 0 coalesces freely
			return
		}
		last := p.Now()
		for i := 0; i < 10; i++ {
			p.Put(int64(i), 0, off)
			if now := p.Now(); now <= last {
				t.Errorf("op %d: Now()=%d did not advance past %d", i, now, last)
			} else {
				last = now
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMachineRunReuse re-runs one machine and checks buffer reuse does
// not leak state between runs (window memory, busy horizons, watchers).
func TestMachineRunReuse(t *testing.T) {
	topo := topology.ForProcs(4, 2)
	m := NewMachine(topo)
	off := m.Alloc(2)
	var clks [3]int64
	for i := range clks {
		err := m.Run(func(p *Proc) {
			p.Accumulate(int64(p.Rank()+1), 0, off, OpSum)
			p.SpinUntil(0, off, func(v int64) bool { return v >= 10 })
			p.Barrier()
		})
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		clks[i] = m.MaxClock()
		if got := m.At(0, off); got != 10 {
			t.Fatalf("run %d: counter=%d want 10", i, got)
		}
	}
	if clks[0] != clks[1] || clks[1] != clks[2] {
		t.Errorf("re-runs diverged: %v", clks)
	}
}
