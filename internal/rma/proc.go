package rma

import (
	"fmt"
	"math/rand"

	"rmalocks/internal/trace"
)

// Proc is the per-process handle of a simulated program: it carries the
// process rank and implements the RMA operation set of the paper's
// Listing 1. All methods must be called only from the process's own
// goroutine (the body function passed to Machine.Run).
type Proc struct {
	m    *Machine
	rank int
	h    schedHandle
	// gate is non-nil under the parallel engine (see gateHandle): every
	// shared-memory access is bracketed by BeginAccess/EndAccess so the
	// gate can reproduce the sequential engines' global access order.
	gate gateHandle
	// st receives operation counts: &m.stats sequentially, a per-rank
	// shard under the parallel engine (merged after the run).
	st *Stats
	// rng is built lazily by Rand(): a rand.Rand costs ~5KB, so eager
	// per-rank construction would dominate memory at million-rank scale
	// while most programs never draw from it.
	rng *rand.Rand
	// pending is virtual time charged but not yet published to the
	// scheduler (charge coalescing, see spend). The process's effective
	// clock is h.Clock() + pending.
	pending int64
	// fidx is the rank's running charge-event index, the event axis of
	// the deterministic fault schedule (see internal/fault). charge is
	// called in the same per-rank order on every engine, so the index —
	// and therefore the schedule — is engine-invariant. Only advanced
	// when fault injection is on.
	fidx uint64
	// Per-class trace buffers (nil when tracing or the class is off):
	// opBuf receives RMA op issue/land events, lockBuf the lock
	// protocol events emitted via the TraceXxx helpers, chargeBuf the
	// coalescing flush boundaries.
	opBuf, lockBuf, chargeBuf *trace.Buf
}

// Rank returns the process's rank, 0-based.
func (p *Proc) Rank() int { return p.rank }

// Machine returns the machine this process runs on.
func (p *Proc) Machine() *Machine { return p.m }

// Now returns the process's effective virtual clock in nanoseconds,
// including charges coalesced but not yet published to the scheduler.
func (p *Proc) Now() int64 { return p.h.Clock() + p.pending }

// Rand returns the process's deterministic random source, created on
// first use. The seed derivation is fixed (machine seed and rank only),
// so the stream is byte-identical no matter when — or whether — other
// ranks draw.
func (p *Proc) Rand() *rand.Rand {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.m.seed*1000003 + int64(p.rank)))
	}
	return p.rng
}

// spend charges d nanoseconds of virtual time with charge coalescing:
// while the effective clock stays at or below the scheduler's fast-path
// horizon the charge only accumulates in p.pending — the scheduler would
// not have rescheduled at the intermediate point anyway, so deferring the
// publication is invisible to every other process (none of them runs in
// between, and nobody reads the holder's clock while it holds the token).
// Once a charge crosses the horizon, the accumulated time flushes through
// a single Advance, which performs the genuine handoff at exactly the
// clock an uncoalesced run would have reached. Yield points that publish
// unconditionally (SpinUntil's block, Barrier, process exit) call flush.
func (p *Proc) spend(d int64) {
	if d < 1 {
		d = 1 // match sim.Advance's minimum step
	}
	if p.m.nocoalesce {
		p.h.Advance(d)
		return
	}
	p.pending += d
	if p.h.Clock()+p.pending > p.h.Horizon() {
		d = p.pending
		p.pending = 0
		if p.chargeBuf != nil {
			p.chargeBuf.Emit(trace.EvFlush, p.h.Clock()+d, d, 0, 0)
		}
		p.h.Advance(d)
	}
}

// flush publishes any coalesced-but-unpublished virtual time. At every
// flush site the invariant "effective clock <= horizon" holds (spend
// flushes whenever it is violated), so the Advance below never yields the
// token; it only makes the published clock exact before the process
// blocks, synchronizes, or exits — the points where other processes (or
// the scheduler's barrier/wake logic) read it.
func (p *Proc) flush() {
	if p.pending != 0 {
		d := p.pending
		p.pending = 0
		if p.chargeBuf != nil {
			p.chargeBuf.Emit(trace.EvFlush, p.h.Clock()+d, d, 0, 0)
		}
		p.h.Advance(d)
	}
}

// traceOp records one RMA operation issue in the trace stream: the
// issue clock is the effective clock (identical whether or not charges
// are being coalesced), land the virtual time the operation applies at
// the target.
func (p *Proc) traceOp(op int64, target int, land int64) {
	if p.opBuf != nil {
		p.opBuf.Emit(trace.EvOp, p.Now(), op, int64(target), land)
	}
}

func wmode(write bool) int64 {
	if write {
		return 1
	}
	return 0
}

// TraceAcquireStart records the start of a lock acquisition (lock ids
// come from Machine.RegisterLock). The TraceXxx helpers are the
// instrumentation surface the lock implementations call around their
// protocols; with tracing off each is one nil check.
func (p *Proc) TraceAcquireStart(id int, write bool) {
	if p.lockBuf != nil {
		p.lockBuf.Emit(trace.EvAcqStart, p.Now(), int64(id), wmode(write), 0)
	}
}

// TraceAcquired records critical-section entry, tagging the event with
// the rank's leaf machine element so analyses can attribute handoff
// locality without re-deriving the topology.
func (p *Proc) TraceAcquired(id int, write bool) {
	if p.lockBuf != nil {
		elem := p.m.topo.Element(p.rank, p.m.topo.Levels())
		p.lockBuf.Emit(trace.EvAcquired, p.Now(), int64(id), wmode(write), int64(elem))
	}
}

// TraceRelease records the start of a lock release.
func (p *Proc) TraceRelease(id int, write bool) {
	if p.lockBuf != nil {
		p.lockBuf.Emit(trace.EvRelease, p.Now(), int64(id), wmode(write), 0)
	}
}

// TraceAcquireTimeout records a bounded acquire giving up: it resolves
// the rank's pending acq-start for the lock without an acquisition
// (trace.Validate enforces the pairing).
func (p *Proc) TraceAcquireTimeout(id int, write bool) {
	if p.lockBuf != nil {
		p.lockBuf.Emit(trace.EvAcqTimeout, p.Now(), int64(id), wmode(write), 0)
	}
}

// Abort terminates the whole run with err: every rank unwinds and Run
// returns an error wrapping err (errors.Is-visible), identically on all
// three engines (conformance-tested). It never returns. Use it for
// fatal protocol conditions a rank detects mid-run, e.g. exhausted
// bounded-acquire retries under a fault profile configured to abort.
func (p *Proc) Abort(err error) {
	p.h.Abort(err)
	panic("rma: scheduler Abort returned") // unreachable: Abort unwinds
}

// beginAccess passes the parallel engine's gate before a shared access at
// the current effective clock; one nil check sequentially. canWake marks
// ops that can trigger watcher wake-ups (everything that writes).
func (p *Proc) beginAccess(target int, atomic, canWake bool) {
	if p.gate == nil {
		return
	}
	d := p.m.topo.Distance(p.rank, target)
	dur, wake := p.m.look.dataDur[d], p.m.look.dataWake[d]
	if atomic {
		dur, wake = p.m.look.atomicDur[d], p.m.look.atomicWake[d]
	}
	if !canWake {
		wake = -1
	}
	p.gate.BeginAccess(p.Now(), target, dur, wake)
}

// endAccess completes a gated access whose charged duration is dur.
func (p *Proc) endAccess(target int, dur int64) {
	if p.gate != nil {
		p.gate.EndAccess(target, p.Now()+dur)
	}
}

// Put atomically places src in target's window at offset.
func (p *Proc) Put(src int64, target, offset int) {
	i := p.m.index(target, offset)
	p.beginAccess(target, false, true)
	p.m.mem[i] = src
	p.st.count(opPut, p.m.topo.Distance(p.rank, target))
	dur, land := p.m.charge(p, target, false)
	p.traceOp(trace.OpPut, target, land)
	p.m.wake(target, offset, src, land, p)
	p.endAccess(target, dur)
	p.spend(dur)
}

// Get atomically fetches and returns the word at target's window offset.
// Per the paper, the value is only guaranteed after a subsequent Flush; in
// this simulation it is already the linearized value at issue time.
func (p *Proc) Get(target, offset int) int64 {
	p.beginAccess(target, false, false)
	v := p.m.mem[p.m.index(target, offset)]
	p.st.count(opGet, p.m.topo.Distance(p.rank, target))
	dur, land := p.m.charge(p, target, false)
	p.traceOp(trace.OpGet, target, land)
	p.endAccess(target, dur)
	p.spend(dur)
	return v
}

// Accumulate atomically applies op with operand oprd to the word at
// target's window offset.
func (p *Proc) Accumulate(oprd int64, target, offset int, op Op) {
	i := p.m.index(target, offset)
	p.beginAccess(target, true, true)
	var nv int64
	switch op {
	case OpSum:
		nv = p.m.mem[i] + oprd
	case OpReplace:
		nv = oprd
	default:
		panic(fmt.Sprintf("rma: unknown op %v", op))
	}
	p.m.mem[i] = nv
	p.st.count(opAcc, p.m.topo.Distance(p.rank, target))
	dur, land := p.m.charge(p, target, true)
	p.traceOp(trace.OpAcc, target, land)
	p.m.wake(target, offset, nv, land, p)
	p.endAccess(target, dur)
	p.spend(dur)
}

// FAO atomically applies op with operand oprd to the word at target's
// window offset and returns the word's previous value.
func (p *Proc) FAO(oprd int64, target, offset int, op Op) int64 {
	i := p.m.index(target, offset)
	p.beginAccess(target, true, true)
	prev := p.m.mem[i]
	var nv int64
	switch op {
	case OpSum:
		nv = prev + oprd
	case OpReplace:
		nv = oprd
	default:
		panic(fmt.Sprintf("rma: unknown op %v", op))
	}
	p.m.mem[i] = nv
	p.st.count(opFAO, p.m.topo.Distance(p.rank, target))
	dur, land := p.m.charge(p, target, true)
	p.traceOp(trace.OpFAO, target, land)
	p.m.wake(target, offset, nv, land, p)
	p.endAccess(target, dur)
	p.spend(dur)
	return prev
}

// CAS atomically compares the word at target's window offset with cmp and,
// if equal, replaces it with src; it returns the word's previous value.
func (p *Proc) CAS(src, cmp int64, target, offset int) int64 {
	i := p.m.index(target, offset)
	p.beginAccess(target, true, true)
	prev := p.m.mem[i]
	changed := prev == cmp
	if changed {
		p.m.mem[i] = src
	}
	p.st.count(opCAS, p.m.topo.Distance(p.rank, target))
	dur, land := p.m.charge(p, target, true)
	p.traceOp(trace.OpCAS, target, land)
	if changed {
		p.m.wake(target, offset, src, land, p)
	}
	p.endAccess(target, dur)
	p.spend(dur)
	return prev
}

// Flush completes all pending RMA calls targeted at target. Operations in
// this simulation complete synchronously, so Flush only charges a small
// bookkeeping cost; it is kept so protocols read exactly like the paper.
func (p *Proc) Flush(target int) {
	p.st.count(opFlush, 0)
	p.traceOp(trace.OpFlush, target, 0)
	p.spend(flushCost)
}

// FlushAll completes all pending RMA calls of the process.
func (p *Proc) FlushAll() {
	p.st.count(opFlush, 0)
	p.traceOp(trace.OpFlush, -1, 0)
	p.spend(flushCost)
}

// flushCost is the virtual cost (ns) of a Flush; small but nonzero so that
// spin loops always advance virtual time.
const flushCost = 10

// SpinUntil waits until the word at target's window offset satisfies cond
// and returns the satisfying value. It models an MCS-style spin: the
// waiting process polls a (usually local or intra-node) word, which on
// real hardware costs nothing until the granting write arrives; here the
// process blocks and resumes at the landing time of that write plus one
// read latency. Use it for grant flags and status words; keep genuine
// contention loops (e.g., spinlock CAS retries) as explicit loops.
func (p *Proc) SpinUntil(target, offset int, cond func(int64) bool) int64 {
	if p.gate != nil {
		return p.spinUntilGated(target, offset, cond)
	}
	idx := p.m.index(target, offset)
	v := p.m.mem[idx]
	if cond(v) {
		// Fast path: one ordinary read observes the satisfying value.
		p.st.count(opGet, p.m.topo.Distance(p.rank, target))
		dur, land := p.m.charge(p, target, false)
		p.traceOp(trace.OpGet, target, land)
		p.spend(dur)
		return v
	}
	// Publish coalesced time before blocking: while we are blocked, the
	// granting write computes our wake-up clock against the published
	// clock. flush never yields (see its comment), so the register/block
	// pair below still happens in the same scheduler slice as the check
	// above — no granting write can slip in between (no lost wake-up).
	p.flush()
	for {
		p.m.addWatcher(target, offset, watcher{p: p, cond: cond})
		p.h.Block()
		// A satisfying write landed (our wake clock includes the read
		// latency). Re-validate: later writes may have landed before we
		// were scheduled again.
		v = p.m.mem[idx]
		if cond(v) {
			return v
		}
	}
}

// spinUntilGated is SpinUntil under the parallel engine. The probe is one
// gated access (minimum duration 0: an unsatisfied probe charges
// nothing); registration happens while still holding the target's effect
// slot, and BlockReleasing gives the slot up only after the process is
// parked — writes to the target serialize on that same slot, so no
// satisfying write can race the registration (no lost wake-up). A wake
// re-admits the process through the gate at its wake clock; the recheck
// is free, exactly like the sequential engines' re-validation loop.
func (p *Proc) spinUntilGated(target, offset int, cond func(int64) bool) int64 {
	idx := p.m.index(target, offset)
	p.gate.BeginAccess(p.Now(), target, 0, -1)
	v := p.m.mem[idx]
	if cond(v) {
		p.st.count(opGet, p.m.topo.Distance(p.rank, target))
		dur, land := p.m.charge(p, target, false)
		p.traceOp(trace.OpGet, target, land)
		p.gate.EndAccess(target, p.Now()+dur)
		p.spend(dur)
		return v
	}
	p.flush() // publish before blocking, as in the sequential path
	for {
		p.m.addWatcher(target, offset, watcher{p: p, cond: cond})
		p.gate.BlockReleasing(target)
		v = p.m.mem[idx]
		if cond(v) {
			p.gate.EndAccess(target, p.Now())
			return v
		}
	}
}

// Compute charges d nanoseconds of local computation (e.g., critical
// section work) to the process's virtual clock.
func (p *Proc) Compute(d int64) {
	p.spend(d)
}

// Barrier synchronizes all processes of the machine: everyone blocks until
// the last arrives, then all clocks jump to the maximum plus a fixed cost.
func (p *Proc) Barrier() {
	p.flush() // arrival clocks must be exact before synchronizing
	p.h.Barrier()
}
