package rma

import (
	"testing"

	"rmalocks/internal/topology"
)

// oddLatency builds a model whose RTTs are odd, so any half-RTT
// truncation in charge shows up as a missing nanosecond.
func oddLatency(maxDist int, dataRTT, atomicRTT, occ int64) *LatencyModel {
	n := maxDist + 1
	m := LatencyModel{
		DataRTT:   make([]int64, n),
		AtomicRTT: make([]int64, n),
		DataOcc:   make([]int64, n),
		AtomicOcc: make([]int64, n),
	}
	for d := 0; d < n; d++ {
		m.DataRTT[d] = dataRTT
		m.AtomicRTT[d] = atomicRTT
		m.DataOcc[d] = occ
		m.AtomicOcc[d] = occ
	}
	return &m
}

func TestChargeOddRTTRoundsUp(t *testing.T) {
	// An uncontended op from origin to completion must take exactly
	// RTT + occupancy: with RTT=61 the outbound wire is 30 ns and the
	// return wire 31 ns, not 30+30 (the historical truncation bug).
	topo := topology.TwoLevel(2, 2)
	const dataRTT, atomicRTT, occ = 61, 401, 7
	m := NewMachineConfig(topo, Config{Latency: oddLatency(topo.MaxDistance(), dataRTT, atomicRTT, occ)})
	off := m.Alloc(1)
	err := m.Run(func(p *Proc) {
		if p.Rank() != 0 {
			return
		}
		t0 := p.Now()
		p.Put(1, 3, off)
		if d := p.Now() - t0; d != dataRTT+occ {
			t.Errorf("Put duration=%d want %d", d, dataRTT+occ)
		}
		t0 = p.Now()
		p.Get(3, off)
		if d := p.Now() - t0; d != dataRTT+occ {
			t.Errorf("Get duration=%d want %d", d, dataRTT+occ)
		}
		t0 = p.Now()
		p.FAO(1, 3, off, OpSum)
		if d := p.Now() - t0; d != atomicRTT+occ {
			t.Errorf("FAO duration=%d want %d", d, atomicRTT+occ)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChargeHalvesSumToRTT(t *testing.T) {
	// charge must report land = completion - return wire, with the two
	// wire halves summing to the full RTT for even and odd values alike.
	for _, rtt := range []int64{60, 61, 1, 2, 999} {
		topo := topology.TwoLevel(1, 2)
		m := NewMachineConfig(topo, Config{Latency: oddLatency(topo.MaxDistance(), rtt, rtt, 0)})
		m.Alloc(1)
		rttCopy := rtt
		err := m.Run(func(p *Proc) {
			if p.Rank() != 0 {
				return
			}
			t0 := p.Now()
			p.Put(1, 1, 0)
			if d := p.Now() - t0; d != rttCopy {
				t.Errorf("rtt=%d: duration=%d", rttCopy, d)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
