// Package rma simulates the Remote Memory Access programming model of the
// paper (Listing 1) on a virtual distributed machine.
//
// Every simulated process (rank) exposes a window of 64-bit words. Processes
// access each other's windows with Put, Get, Accumulate, FAO, CAS and Flush,
// exactly the operation set the paper's locks are written against. Timing is
// virtual: operations charge a topology-dependent latency and serialize per
// target rank (NIC/memory occupancy), driven by the deterministic
// discrete-event scheduler in package sim (or its refsim reference
// implementation, selected by Config.Engine).
//
// Memory effects apply at operation issue (a legal linearization point), so
// protocol correctness is exact; timing is modeled.
package rma

import (
	"fmt"
	"time"

	"rmalocks/internal/fault"
	"rmalocks/internal/obs"
	"rmalocks/internal/sim"
	"rmalocks/internal/sim/psim"
	"rmalocks/internal/sim/refsim"
	"rmalocks/internal/topology"
	"rmalocks/internal/trace"
)

// Nil is the null rank/pointer value ∅ of the paper.
const Nil int64 = -1

// Op selects the operation applied by Accumulate and FAO.
type Op int

const (
	// OpSum atomically adds the operand to the target word.
	OpSum Op = iota
	// OpReplace atomically replaces the target word with the operand.
	OpReplace
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "SUM"
	case OpReplace:
		return "REPLACE"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// schedHandle abstracts the per-process scheduler handle behind the
// operations the RMA layer needs, so one Machine can run on either the
// fast-path scheduler (sim) or the reference one (refsim). Both engines
// expose the same Horizon semantics, which keeps charge coalescing — and
// therefore every interleaving — byte-identical between them.
type schedHandle interface {
	ID() int
	Clock() int64
	Horizon() int64
	Advance(d int64)
	Barrier()
	Block()
	WakeAt(clock int64)
	Abort(err error)
}

// gateHandle is the wider handle of the parallel engine (internal/
// sim/psim): every shared-memory access passes a conservative gate that
// reproduces the sequential engines' global (time, rank) access order.
// BeginAccess/EndAccess bracket an op's issue-time effect, BlockReleasing
// parks a SpinUntil waiter, and WakeAtFrom re-admits it. The sequential
// handles do not implement this interface; Proc.gate stays nil for them
// and every site degrades to one nil check.
type gateHandle interface {
	schedHandle
	BeginAccess(t int64, target int, minDur, minWake int64)
	EndAccess(target int, bound int64)
	BlockReleasing(target int)
	WakeAtFrom(clock int64, waker int)
}

// engine abstracts a whole scheduler run.
type engine interface {
	MaxClock() int64
	Release()
}

// Engine names accepted by Config.Engine.
const (
	// EngineFast is the token-owned fast-path scheduler (internal/sim),
	// the default.
	EngineFast = "fast"
	// EngineRef is the reference scheduler (internal/sim/refsim), used by
	// the differential determinism suite.
	EngineRef = "ref"
	// EnginePSim is the conservative parallel engine (internal/sim/psim):
	// process goroutines run concurrently and synchronize only at an
	// access gate whose lookahead derives from the latency model. It
	// produces runs byte-identical to the sequential engines
	// (test-enforced) while using multiple cores.
	EnginePSim = "psim"
)

// Machine is a simulated distributed machine: topology, latency model, and
// one RMA window per rank. Construct it, let locks and data structures
// allocate window words with Alloc and register initializers with OnInit,
// then call Run to execute one simulated program.
type Machine struct {
	topo *topology.Topology
	lat  LatencyModel

	words      int // window words per rank
	mem        []int64
	busy       []int64             // per-rank target busy-until (virtual ns)
	watchers   []map[int][]watcher // per target rank, keyed by offset
	inits      []func(m *Machine)
	seed       int64
	limit      int64 // virtual time limit (0 = none)
	bcost      int64 // barrier cost
	engine     string
	nocoalesce bool
	sink       *trace.Sink
	inj        *fault.Injector // nil when the fault profile perturbs nothing
	nextLockID int
	gate       *obs.GateMetrics
	ran        bool
	stats      Stats
	shards     []Stats // per-rank stat shards (psim only; merged after the run)
	procBuf    []Proc  // flat per-rank Proc slab, reused across runs
	look       lookahead
	maxClk     int64
}

// Config carries optional Machine parameters.
type Config struct {
	// Latency is the timing model; DefaultLatency(topo.MaxDistance()) if zero.
	Latency *LatencyModel
	// Seed seeds the per-process RNGs (default 1).
	Seed int64
	// TimeLimit aborts a run once virtual time exceeds it (0 = none).
	TimeLimit int64
	// BarrierCost is the virtual cost of one barrier (default 2µs).
	BarrierCost int64
	// Engine selects the scheduler implementation: "" or EngineFast for
	// the token-owned fast-path scheduler, EngineRef for the reference
	// one. Both produce byte-identical runs (test-enforced).
	Engine string
	// NoCoalesce disables charge coalescing, making every operation call
	// the scheduler immediately. A verification knob: coalesced and
	// uncoalesced runs must be byte-identical (test-enforced).
	NoCoalesce bool
	// Trace, when non-nil, captures the run's event stream (see
	// internal/trace): RMA op issue/land events, lock protocol events,
	// scheduler handoffs and coalescing boundaries, per the sink's
	// class mask. Tracing only observes — it never changes a single
	// virtual-time decision (differential-tested), and a nil sink
	// leaves the hot paths at one nil check.
	Trace *trace.Sink
	// Faults, when non-nil, perturbs the machine deterministically (see
	// internal/fault): RTT jitter, congestion windows on network links,
	// straggler occupancy multipliers and op-issue stalls. The schedule
	// is a pure function of (seed, rank, event index), so faulted runs
	// stay byte-identical across engines; a nil profile leaves charge at
	// one nil check.
	Faults *fault.Profile
	// Gate, when non-nil, receives conservative-gate instrumentation from
	// psim runs (mutex hold time, queue depths, lookahead slack — see
	// obs.GateMetrics) plus the run's wall-clock time, from which the
	// gate's serial fraction is derived. Observation only: it never
	// influences a virtual-time decision, and the sequential engines
	// ignore it entirely.
	Gate *obs.GateMetrics
}

// NewMachine creates a machine over the given topology with default config.
func NewMachine(topo *topology.Topology) *Machine {
	return NewMachineConfig(topo, Config{})
}

// NewMachineConfig creates a machine with explicit configuration.
func NewMachineConfig(topo *topology.Topology, cfg Config) *Machine {
	lat := DefaultLatency(topo.MaxDistance())
	if cfg.Latency != nil {
		lat = cfg.Latency.extend(topo.MaxDistance())
	}
	if err := lat.validate(topo.MaxDistance()); err != nil {
		panic(err)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	bcost := cfg.BarrierCost
	if bcost == 0 {
		bcost = 2000
	}
	switch cfg.Engine {
	case "", EngineFast, EngineRef, EnginePSim:
	default:
		panic(fmt.Sprintf("rma: unknown engine %q (have %q, %q, %q)", cfg.Engine, EngineFast, EngineRef, EnginePSim))
	}
	return &Machine{
		topo:       topo,
		lat:        lat,
		seed:       seed,
		limit:      cfg.TimeLimit,
		bcost:      bcost,
		engine:     cfg.Engine,
		nocoalesce: cfg.NoCoalesce,
		sink:       cfg.Trace,
		inj:        fault.NewInjector(cfg.Faults, seed, topo.Procs()),
		gate:       cfg.Gate,
	}
}

// Topology returns the machine's topology.
func (m *Machine) Topology() *topology.Topology { return m.topo }

// Latency returns the machine's latency model.
func (m *Machine) Latency() LatencyModel { return m.lat }

// Procs returns P.
func (m *Machine) Procs() int { return m.topo.Procs() }

// Alloc reserves n consecutive window words on every rank and returns the
// base offset. All allocation must happen before Run.
func (m *Machine) Alloc(n int) int {
	if m.ran {
		panic("rma: Alloc after Run")
	}
	if n <= 0 {
		panic(fmt.Sprintf("rma: Alloc(%d)", n))
	}
	base := m.words
	m.words += n
	return base
}

// OnInit registers f to run (single-threaded) right before the simulated
// program starts; use it to set initial window contents such as ∅ queue
// pointers.
func (m *Machine) OnInit(f func(m *Machine)) { m.inits = append(m.inits, f) }

// Set pokes a window word directly. Only valid inside OnInit callbacks and
// after Run returns (inspection).
func (m *Machine) Set(rank, offset int, v int64) { m.mem[m.index(rank, offset)] = v }

// At reads a window word directly. Only valid inside OnInit callbacks and
// after Run returns (inspection).
func (m *Machine) At(rank, offset int) int64 { return m.mem[m.index(rank, offset)] }

// Words returns the number of window words allocated per rank.
func (m *Machine) Words() int { return m.words }

// Trace returns the machine's trace sink (nil when tracing is off).
func (m *Machine) Trace() *trace.Sink { return m.sink }

// RegisterLock hands out the next lock id for trace attribution. Lock
// constructors call it before Run; construction order is deterministic,
// so ids are stable across runs and engines.
func (m *Machine) RegisterLock() int {
	id := m.nextLockID
	m.nextLockID++
	return id
}

// Run executes body once per rank as a simulated process and returns when
// all processes finish. It may be called multiple times; window memory is
// re-initialized before each run. Buffers (window memory, busy horizons,
// watcher map, scheduler procs) are reused across runs.
func (m *Machine) Run(body func(p *Proc)) error {
	p := m.topo.Procs()
	if m.words == 0 {
		m.words = 1 // allow op-less smoke programs
	}
	m.reset(p)
	for _, f := range m.inits {
		f(m)
	}
	m.ran = true
	m.stats = Stats{PerDistance: make([]OpCount, m.topo.MaxDistance()+1)}
	simCfg := sim.Config{Procs: p, TimeLimit: m.limit, BarrierCost: m.bcost, Trace: m.sink, ShardSize: m.topo.ProcsPerLeaf(), Gate: m.gate}
	if cap(m.procBuf) >= p {
		m.procBuf = m.procBuf[:p]
	} else {
		m.procBuf = make([]Proc, p)
	}
	wrap := func(h schedHandle) {
		// Procs live in one flat slab indexed by rank (no per-rank boxing).
		// Each rank writes only its own slot, so the parallel engine's
		// concurrent wrap calls stay race-free; the full re-initialization
		// clears any state left by a previous run. The RNG is built lazily
		// by Rand(): a rand.Rand is ~5KB, which at 10^6 ranks would dwarf
		// the flat scheduler state, and most workload profiles never draw.
		proc := &m.procBuf[h.ID()]
		*proc = Proc{
			m:    m,
			rank: h.ID(),
			h:    h,
			st:   &m.stats,
		}
		if gh, ok := h.(gateHandle); ok {
			// Parallel engine: gate every shared access and shard the
			// stats per rank (counts merge commutatively after the run).
			proc.gate = gh
			proc.st = &m.shards[proc.rank]
		}
		if m.sink != nil {
			// Per-class buffers, resolved once: a disabled class leaves
			// its pointer nil, so each emission site costs one check.
			proc.opBuf = m.sink.Buf(proc.rank, trace.ClassOp)
			proc.lockBuf = m.sink.Buf(proc.rank, trace.ClassLock)
			proc.chargeBuf = m.sink.Buf(proc.rank, trace.ClassCharge)
		}
		body(proc)
		proc.flush() // publish coalesced time before exit
	}
	var eng engine
	var err error
	switch m.engine {
	case EngineRef:
		sched := refsim.New(simCfg)
		err = sched.Run(func(h *refsim.Handle) { wrap(h) })
		eng = sched
	case EnginePSim:
		m.buildLookahead()
		m.shards = make([]Stats, p)
		for i := range m.shards {
			m.shards[i].PerDistance = make([]OpCount, m.topo.MaxDistance()+1)
		}
		sched := psim.New(simCfg)
		// Wall-clock the engine run itself (not setup or merge): the
		// gate's serial fraction is hold time over this duration.
		t0 := time.Now()
		err = sched.Run(func(h *psim.Handle) { wrap(h) })
		if m.gate != nil {
			m.gate.Wall.Add(time.Since(t0).Nanoseconds())
		}
		eng = sched
		m.mergeShards()
	default:
		sched := sim.New(simCfg)
		err = sched.Run(func(h *sim.Handle) { wrap(h) })
		eng = sched
	}
	m.maxClk = eng.MaxClock()
	eng.Release()
	return err
}

// mergeShards folds the per-rank stat shards of a parallel run into
// m.stats, in rank order (sums are commutative, so the result equals the
// sequential engines' counts exactly).
func (m *Machine) mergeShards() {
	for i := range m.shards {
		sh := &m.shards[i]
		for k := range sh.Kind {
			m.stats.Kind[k] += sh.Kind[k]
		}
		for d := range sh.PerDistance {
			m.stats.PerDistance[d].Data += sh.PerDistance[d].Data
			m.stats.PerDistance[d].Atomic += sh.PerDistance[d].Atomic
		}
	}
	m.shards = nil
}

// reset prepares the per-run buffers, reusing prior allocations where the
// shapes match (hot sweep loops run one machine many times).
func (m *Machine) reset(p int) {
	need := p * m.words
	if cap(m.mem) >= need {
		m.mem = m.mem[:need]
		for i := range m.mem {
			m.mem[i] = 0
		}
	} else {
		m.mem = make([]int64, need)
	}
	if cap(m.busy) >= p {
		m.busy = m.busy[:p]
		for i := range m.busy {
			m.busy[i] = 0
		}
	} else {
		m.busy = make([]int64, p)
	}
	if len(m.watchers) != p {
		m.watchers = make([]map[int][]watcher, p)
	} else {
		for i := range m.watchers {
			clear(m.watchers[i])
		}
	}
}

// MaxClock returns the makespan (maximum virtual time, ns) of the last run.
func (m *Machine) MaxClock() int64 { return m.maxClk }

// Stats returns aggregate operation statistics of the last run.
func (m *Machine) Stats() Stats { return m.stats }

func (m *Machine) index(rank, offset int) int {
	if rank < 0 || rank >= m.topo.Procs() {
		panic(fmt.Sprintf("rma: rank %d out of range [0,%d)", rank, m.topo.Procs()))
	}
	if offset < 0 || offset >= m.words {
		panic(fmt.Sprintf("rma: offset %d out of range [0,%d)", offset, m.words))
	}
	return rank*m.words + offset
}

// charge computes the virtual duration of one op from origin clock to
// completion, updates the target's busy-until, and returns the duration
// plus the virtual time at which the operation lands at the target. The
// origin clock is the process's effective clock (published plus pending
// coalesced charges), so coalescing never skews latency or occupancy.
// Caller must be the sole running process (guaranteed by the scheduler).
func (m *Machine) charge(origin *Proc, target int, atomic bool) (dur, land int64) {
	d := m.topo.Distance(origin.rank, target)
	var rtt, occ int64
	if atomic {
		rtt, occ = m.lat.AtomicRTT[d], m.lat.AtomicOcc[d]
	} else {
		rtt, occ = m.lat.DataRTT[d], m.lat.DataOcc[d]
	}
	clock := origin.Now()
	issue := clock
	if m.inj != nil {
		// Deterministic fault injection: stall defers the op's issue
		// (the rank is descheduled), jitter/congestion widen the round
		// trip, stragglers widen target occupancy. All perturbations are
		// additive-only, so the parallel engine's lookahead (built from
		// the unperturbed table) stays a valid lower bound; the memory
		// effect still applies at the unperturbed issue time, so the
		// global (time, rank) access order — and therefore every
		// interleaving — is identical with and without the gate.
		var stall int64
		rtt, occ, stall = m.inj.Perturb(origin.rank, origin.fidx, clock, d, target, rtt, occ)
		origin.fidx++
		issue += stall
	}
	// Split the round trip into outbound and return wire time; the return
	// half rounds up so the two always sum to the configured RTT (an odd
	// RTT must not lose a nanosecond to truncation).
	wireOut := rtt / 2
	wireBack := rtt - wireOut
	start := issue + wireOut
	if b := m.busy[target]; b > start {
		start = b
	}
	m.busy[target] = start + occ
	land = start + occ
	complete := land + wireBack
	dur = complete - clock
	if dur < 1 {
		dur = 1
	}
	return dur, land
}

// watcher is a process blocked in SpinUntil on one window word.
type watcher struct {
	p    *Proc
	cond func(int64) bool
}

// addWatcher registers a SpinUntil waiter on target's word at offset.
// Watcher state is keyed by target rank so that, under the parallel
// engine, it is only ever touched while holding that rank's effect slot.
func (m *Machine) addWatcher(target, offset int, w watcher) {
	ws := m.watchers[target]
	if ws == nil {
		ws = make(map[int][]watcher)
		m.watchers[target] = ws
	}
	ws[offset] = append(ws[offset], w)
}

// wake re-schedules every watcher of the given word whose condition is
// satisfied by the new value; the wake-up clock is the landing time of the
// triggering write plus the watcher's read latency for the word. origin is
// the process whose write triggered the wake (trace attribution).
func (m *Machine) wake(target, offset int, newVal, land int64, origin *Proc) {
	ws := m.watchers[target][offset]
	if len(ws) == 0 {
		return
	}
	remaining := ws[:0]
	for _, w := range ws {
		if w.cond(newVal) {
			detect := m.lat.DataRTT[m.topo.Distance(w.p.rank, target)]
			if w.p.gate != nil {
				w.p.gate.WakeAtFrom(land+detect, origin.rank)
			} else {
				w.p.h.WakeAt(land + detect)
			}
			continue
		}
		remaining = append(remaining, w)
	}
	if len(remaining) == 0 {
		delete(m.watchers[target], offset)
	} else {
		m.watchers[target][offset] = remaining
	}
}

// lookahead holds the per-distance conservative bounds handed to the
// parallel engine's access gate, derived from the latency model: an op's
// minimum duration is RTT + occupancy at its distance (queuing behind a
// busy target only increases it), and the earliest wake-up it can cause
// is its outbound wire time plus occupancy (earliest landing) plus the
// minimum detection latency over all watcher distances.
type lookahead struct {
	dataDur, atomicDur   []int64
	dataWake, atomicWake []int64
}

func (m *Machine) buildLookahead() {
	maxd := m.topo.MaxDistance()
	if len(m.look.dataDur) == maxd+1 {
		return
	}
	minDetect := m.lat.DataRTT[0]
	for d := 1; d <= maxd; d++ {
		if m.lat.DataRTT[d] < minDetect {
			minDetect = m.lat.DataRTT[d]
		}
	}
	l := lookahead{
		dataDur:    make([]int64, maxd+1),
		atomicDur:  make([]int64, maxd+1),
		dataWake:   make([]int64, maxd+1),
		atomicWake: make([]int64, maxd+1),
	}
	for d := 0; d <= maxd; d++ {
		l.dataDur[d] = m.lat.DataRTT[d] + m.lat.DataOcc[d]
		l.atomicDur[d] = m.lat.AtomicRTT[d] + m.lat.AtomicOcc[d]
		l.dataWake[d] = m.lat.DataRTT[d]/2 + m.lat.DataOcc[d] + minDetect
		l.atomicWake[d] = m.lat.AtomicRTT[d]/2 + m.lat.AtomicOcc[d] + minDetect
	}
	m.look = l
}
