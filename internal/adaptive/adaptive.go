// Package adaptive implements the runtime parameter selection the paper
// sketches as future work (§8): "RMA-RW could also be extended with
// adaptive schemes for a runtime selection and tuning of the values of
// the parameters."
//
// The Controller is a deterministic hill climber over the reader
// threshold T_R (the paper's own tuning recipe in §6 fixes T_DC first and
// then adjusts T_R, which is exactly the knob with a smooth throughput
// response). Episodes of the workload run with the current T_R; after
// each episode the caller reports the observed throughput and the
// controller proposes the next T_R, converging on a local optimum and
// then holding.
package adaptive

import "fmt"

// Observation summarizes one finished episode.
type Observation struct {
	// ThroughputMops is the episode's aggregate throughput.
	ThroughputMops float64
	// ReaderBackoffs and ModeChanges are the lock's counters for the
	// episode (diagnostics; not used by the current policy).
	ReaderBackoffs int64
	ModeChanges    int64
}

// Controller hill-climbs T_R by multiplicative steps.
type Controller struct {
	cur     int64
	step    float64 // multiplicative step, e.g. 2.0
	dir     int     // +1 growing, -1 shrinking
	minTR   int64
	maxTR   int64
	bestTR  int64
	bestTh  float64
	lastTh  float64
	settled bool
	moves   int
}

// Config bounds the search.
type Config struct {
	// InitialTR is the starting reader threshold (default 1000).
	InitialTR int64
	// MinTR/MaxTR clamp the search range (defaults 16 and 1<<20).
	MinTR, MaxTR int64
	// Step is the multiplicative step (default 2.0).
	Step float64
}

// New builds a controller.
func New(cfg Config) *Controller {
	if cfg.InitialTR == 0 {
		cfg.InitialTR = 1000
	}
	if cfg.MinTR == 0 {
		cfg.MinTR = 16
	}
	if cfg.MaxTR == 0 {
		cfg.MaxTR = 1 << 20
	}
	if cfg.Step == 0 {
		cfg.Step = 2.0
	}
	if cfg.MinTR > cfg.InitialTR || cfg.InitialTR > cfg.MaxTR || cfg.Step <= 1 {
		panic(fmt.Sprintf("adaptive: invalid config %+v", cfg))
	}
	return &Controller{
		cur:   cfg.InitialTR,
		step:  cfg.Step,
		dir:   +1,
		minTR: cfg.MinTR,
		maxTR: cfg.MaxTR,
	}
}

// TR returns the reader threshold to use for the next episode.
func (c *Controller) TR() int64 { return c.cur }

// Settled reports whether the climber has stopped moving.
func (c *Controller) Settled() bool { return c.settled }

// Best returns the best (T_R, throughput) seen so far.
func (c *Controller) Best() (int64, float64) { return c.bestTR, c.bestTh }

// Moves returns how many times the controller changed T_R.
func (c *Controller) Moves() int { return c.moves }

// Report feeds the result of the episode that ran with the current T_R
// and advances the climber. The policy: keep moving in the current
// direction while throughput improves; on the first regression, reverse
// once; on the second, settle on the best T_R seen.
func (c *Controller) Report(o Observation) {
	th := o.ThroughputMops
	if th > c.bestTh {
		c.bestTh = th
		c.bestTR = c.cur
	}
	if c.settled {
		return
	}
	improved := th > c.lastTh
	first := c.lastTh == 0
	c.lastTh = th
	if first || improved {
		c.move()
		return
	}
	// Regression: reverse once, or settle at the best point.
	if c.dir == +1 {
		c.dir = -1
		c.cur = c.bestTR
		c.move()
		return
	}
	c.cur = c.bestTR
	c.settled = true
}

func (c *Controller) move() {
	next := c.cur
	if c.dir > 0 {
		next = int64(float64(c.cur) * c.step)
	} else {
		next = int64(float64(c.cur) / c.step)
	}
	if next < c.minTR {
		next = c.minTR
	}
	if next > c.maxTR {
		next = c.maxTR
	}
	if next == c.cur {
		c.settled = true
		c.cur = c.bestTR
		return
	}
	c.cur = next
	c.moves++
}
