package adaptive

import (
	"math"
	"testing"

	"rmalocks/internal/locks/rmarw"
	"rmalocks/internal/rma"
	"rmalocks/internal/topology"
)

func TestClimbsTowardPeak(t *testing.T) {
	// Synthetic unimodal response: throughput peaks at T_R = 4096.
	resp := func(tr int64) float64 {
		x := math.Log2(float64(tr)) - 12 // peak at 2^12
		return 10 - x*x
	}
	c := New(Config{InitialTR: 256})
	for i := 0; i < 40 && !c.Settled(); i++ {
		c.Report(Observation{ThroughputMops: resp(c.TR())})
	}
	if !c.Settled() {
		t.Fatal("controller did not settle")
	}
	best, _ := c.Best()
	if best < 1024 || best > 16384 {
		t.Errorf("settled at T_R=%d, want near 4096", best)
	}
}

func TestSettlesAtBoundary(t *testing.T) {
	// Monotonically increasing response: must settle at MaxTR.
	c := New(Config{InitialTR: 64, MaxTR: 1024})
	for i := 0; i < 40 && !c.Settled(); i++ {
		c.Report(Observation{ThroughputMops: float64(c.TR())})
	}
	best, _ := c.Best()
	if best != 1024 {
		t.Errorf("best=%d want 1024 (boundary)", best)
	}
}

func TestDecreasingResponseReverses(t *testing.T) {
	// Monotonically decreasing response: must reverse and settle at MinTR.
	c := New(Config{InitialTR: 1024, MinTR: 32})
	for i := 0; i < 40 && !c.Settled(); i++ {
		c.Report(Observation{ThroughputMops: 1.0 / float64(c.TR())})
	}
	best, _ := c.Best()
	if best > 64 {
		t.Errorf("best=%d want near MinTR=32", best)
	}
}

func TestReportAfterSettleIsStable(t *testing.T) {
	c := New(Config{InitialTR: 64, MaxTR: 128})
	for i := 0; i < 20; i++ {
		c.Report(Observation{ThroughputMops: 1})
	}
	tr := c.TR()
	c.Report(Observation{ThroughputMops: 100})
	if c.TR() != tr {
		t.Error("settled controller moved")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid config did not panic")
		}
	}()
	New(Config{InitialTR: 10, MinTR: 100})
}

func TestEndToEndEpisodesWithRealLock(t *testing.T) {
	// Run the real RMA-RW lock in episodes, letting the controller move
	// T_R between runs. The point is integration (SetTR between runs is
	// safe and deterministic), not that the climb finds a global optimum.
	topo := topology.TwoLevel(2, 4)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 1 << 40})
	lock := rmarw.NewConfig(m, rmarw.Config{TR: 64})
	c := New(Config{InitialTR: 64, MinTR: 8, MaxTR: 4096})

	episode := func() float64 {
		err := m.Run(func(p *rma.Proc) {
			for i := 0; i < 20; i++ {
				if p.Rank() == 0 && i%5 == 0 {
					lock.AcquireWrite(p)
					p.Compute(200)
					lock.ReleaseWrite(p)
				} else {
					lock.AcquireRead(p)
					p.Compute(200)
					lock.ReleaseRead(p)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		ops := float64(20 * topo.Procs())
		return ops / float64(m.MaxClock()) * 1e3
	}

	for ep := 0; ep < 10 && !c.Settled(); ep++ {
		lock.SetTR(c.TR())
		c.Report(Observation{
			ThroughputMops: episode(),
			ReaderBackoffs: lock.ReaderBackoffs,
			ModeChanges:    lock.ModeChanges,
		})
	}
	best, th := c.Best()
	if best < 8 || best > 4096 || th <= 0 {
		t.Errorf("bad outcome: best TR=%d th=%f", best, th)
	}
}
