package bench

import (
	"strings"
	"testing"
)

func TestVerifyClaimsQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many benchmarks")
	}
	claims, err := VerifyClaims(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) < 7 {
		t.Fatalf("only %d claims checked", len(claims))
	}
	for _, c := range claims {
		if c.Holds {
			t.Logf("%s: OK — %s", c.ID, c.Detail)
			continue
		}
		// At quick scale (P=64) every shape claim is expected to hold;
		// a failure here means the simulation or a lock regressed.
		t.Errorf("%s does not hold: %s (%s)", c.ID, c.Description, c.Detail)
	}
	tb := ClaimsTable(claims)
	if len(tb.Rows) != len(claims) || !strings.Contains(tb.Title, "claim") {
		t.Errorf("bad claims table: %v", tb.Title)
	}
}
