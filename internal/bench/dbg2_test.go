package bench

import "testing"

func TestDbgWedge(t *testing.T) {
	for _, cfg := range []struct {
		p  int
		fw float64
		tr int64
	}{
		{16, 0, 64}, {16, 0, 256}, {16, 0.002, 64}, {64, 0, 64}, {64, 0.002, 64}, {64, 0.002, 256},
	} {
		r, err := RunRW(RWParams{Scheme: SchemeRMARW, P: cfg.p, Workload: ECSB, FW: cfg.fw, Iters: 60, TR: cfg.tr})
		if err != nil {
			t.Logf("P=%d FW=%g TR=%d: ERR %v", cfg.p, cfg.fw, cfg.tr, err)
		} else {
			t.Logf("P=%d FW=%g TR=%d: ok %.2f mln/s", cfg.p, cfg.fw, cfg.tr, r.ThroughputMops)
		}
	}
}
