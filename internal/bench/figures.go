package bench

import (
	"fmt"

	"rmalocks/internal/stats"
)

// Scale selects the sweep size of the figure runners: Quick keeps unit
// tests and in-repo benchmarks fast, Full mirrors the paper's process
// counts.
type Scale struct {
	Name   string
	Ps     []int // swept process counts
	Iters  int   // measured cycles per process
	DHTOps int   // DHT operations per process
}

// Quick is the test-sized sweep.
var Quick = Scale{Name: "quick", Ps: []int{8, 16, 32, 64}, Iters: 30, DHTOps: 12}

// Medium covers the crossover region at moderate cost.
var Medium = Scale{Name: "medium", Ps: []int{8, 16, 32, 64, 128, 256}, Iters: 40, DHTOps: 16}

// Full mirrors the paper's sweep (16–1024 processes, plus 8 to show the
// intra-node spike).
var Full = Scale{Name: "full", Ps: []int{8, 16, 32, 64, 128, 256, 512, 1024}, Iters: 50, DHTOps: 20}

// ScaleByName resolves a scale preset.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return Quick, nil
	case "medium":
		return Medium, nil
	case "full":
		return Full, nil
	default:
		return Scale{}, fmt.Errorf("bench: unknown scale %q (quick|medium|full)", name)
	}
}

// fwLabel formats a writer fraction the way the paper does ("0.2%").
func fwLabel(fw float64) string { return fmt.Sprintf("%g%%", fw*100) }

// Figure3 regenerates one subfigure of Figure 3 (§5.1): the RMA-MCS
// comparison against foMPI-Spin and D-MCS. sub is "a" (LB latency) or
// "b".."e" (ECSB/SOB/WCSB/WARB throughput).
func Figure3(sub string, sc Scale) (*stats.Table, []Result, error) {
	var (
		wl      Workload
		metric  string
		latency bool
	)
	switch sub {
	case "a":
		wl, metric, latency = ECSB, "MeanLatency[us]", true
	case "b":
		wl, metric = ECSB, "Throughput[mln/s]"
	case "c":
		wl, metric = SOB, "Throughput[mln/s]"
	case "d":
		wl, metric = WCSB, "Throughput[mln/s]"
	case "e":
		wl, metric = WARB, "Throughput[mln/s]"
	default:
		return nil, nil, fmt.Errorf("bench: Figure3 sub %q (want a..e)", sub)
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Figure 3%s: %s, %s vs P", sub, wl, metric),
		Columns: []string{"P", "Scheme", metric},
	}
	var all []Result
	for _, P := range sc.Ps {
		for _, scheme := range MutexSchemes {
			r, err := RunMutex(MutexParams{Scheme: scheme, P: P, Workload: wl, Iters: sc.Iters})
			if err != nil {
				return nil, nil, err
			}
			all = append(all, r)
			v := r.ThroughputMops
			if latency {
				v = r.Latency.Mean
			}
			t.AddRow(fmt.Sprint(P), scheme, stats.FmtF(v))
		}
	}
	return t, all, nil
}

// Figure4a regenerates Figure 4a (§5.2.1): T_DC sweep, SOB, F_W = 2%.
func Figure4a(sc Scale) (*stats.Table, []Result, error) {
	t := &stats.Table{
		Title:   "Figure 4a: T_DC analysis, SOB, F_W=2%",
		Columns: []string{"P", "T_DC", "Throughput[mln/s]"},
	}
	var all []Result
	for _, P := range sc.Ps {
		for _, tdc := range []int{64, 32, 16, 8, 4, 2} {
			if tdc > P {
				continue
			}
			r, err := RunRW(RWParams{Scheme: SchemeRMARW, P: P, Workload: SOB,
				FW: 0.02, Iters: sc.Iters, TDC: tdc})
			if err != nil {
				return nil, nil, err
			}
			r.Scheme = fmt.Sprintf("TDC=%d", tdc)
			all = append(all, r)
			t.AddRow(fmt.Sprint(P), fmt.Sprint(tdc), stats.FmtF(r.ThroughputMops))
		}
	}
	return t, all, nil
}

// tlForProduct picks (T_L,1, T_L,2) whose product is the requested T_W,
// keeping the node-level threshold near the paper's values.
func tlForProduct(prod int64) []int64 {
	switch prod {
	case 500:
		return []int64{0, 50, 10}
	case 1000:
		return []int64{0, 100, 10}
	case 2500:
		return []int64{0, 100, 25}
	case 5000:
		return []int64{0, 100, 50}
	case 7500:
		return []int64{0, 100, 75}
	default:
		return []int64{0, prod, 1}
	}
}

// Figure4b regenerates Figure 4b (§5.2.2): Π T_L,i sweep, SOB, F_W = 25%.
func Figure4b(sc Scale) (*stats.Table, []Result, error) {
	t := &stats.Table{
		Title:   "Figure 4b: Π T_L,i analysis, SOB, F_W=25%",
		Columns: []string{"P", "TL_product", "Throughput[mln/s]"},
	}
	var all []Result
	for _, P := range sc.Ps {
		for _, prod := range []int64{500, 1000, 2500, 5000, 7500} {
			r, err := RunRW(RWParams{Scheme: SchemeRMARW, P: P, Workload: SOB,
				FW: 0.25, Iters: sc.Iters, TL: tlForProduct(prod)})
			if err != nil {
				return nil, nil, err
			}
			r.Scheme = fmt.Sprintf("TW=%d", prod)
			all = append(all, r)
			t.AddRow(fmt.Sprint(P), fmt.Sprint(prod), stats.FmtF(r.ThroughputMops))
		}
	}
	return t, all, nil
}

// tlSplits are Figure 4c/4d's (T_L,2, T_L,1) splits of T_W = 1000,
// labeled T_L,2-T_L,1 as in the paper's legend.
var tlSplits = []struct {
	label string
	tl    []int64 // [_, T_L,1, T_L,2]
}{
	{"50-20", []int64{0, 20, 50}},
	{"25-40", []int64{0, 40, 25}},
	{"10-100", []int64{0, 100, 10}},
}

// Figure4c regenerates Figure 4c: T_L,i split sweep, SOB throughput,
// F_W = 25%.
func Figure4c(sc Scale) (*stats.Table, []Result, error) {
	t := &stats.Table{
		Title:   "Figure 4c: T_L,i analysis, SOB, F_W=25%",
		Columns: []string{"P", "TL2-TL1", "Throughput[mln/s]"},
	}
	var all []Result
	for _, P := range sc.Ps {
		for _, s := range tlSplits {
			r, err := RunRW(RWParams{Scheme: SchemeRMARW, P: P, Workload: SOB,
				FW: 0.25, Iters: sc.Iters, TL: s.tl})
			if err != nil {
				return nil, nil, err
			}
			r.Scheme = s.label
			all = append(all, r)
			t.AddRow(fmt.Sprint(P), s.label, stats.FmtF(r.ThroughputMops))
		}
	}
	return t, all, nil
}

// Figure4d regenerates Figure 4d: T_L,i split sweep, LB latency, F_W = 25%.
func Figure4d(sc Scale) (*stats.Table, []Result, error) {
	t := &stats.Table{
		Title:   "Figure 4d: T_L,i analysis, LB, F_W=25%",
		Columns: []string{"P", "TL2-TL1", "MeanLatency[us]"},
	}
	var all []Result
	for _, P := range sc.Ps {
		for _, s := range tlSplits {
			r, err := RunRW(RWParams{Scheme: SchemeRMARW, P: P, Workload: ECSB,
				FW: 0.25, Iters: sc.Iters, TL: s.tl})
			if err != nil {
				return nil, nil, err
			}
			r.Scheme = s.label
			all = append(all, r)
			t.AddRow(fmt.Sprint(P), s.label, stats.FmtF(r.Latency.Mean))
		}
	}
	return t, all, nil
}

// Figure4e regenerates Figure 4e (§5.2.3): T_R sweep, ECSB, F_W = 0.2%.
func Figure4e(sc Scale) (*stats.Table, []Result, error) {
	t := &stats.Table{
		Title:   "Figure 4e: T_R analysis, ECSB, F_W=0.2%",
		Columns: []string{"P", "T_R", "Throughput[mln/s]"},
	}
	var all []Result
	for _, P := range sc.Ps {
		for _, tr := range []int64{6000, 5000, 4000, 3000, 2000, 1000} {
			r, err := RunRW(RWParams{Scheme: SchemeRMARW, P: P, Workload: ECSB,
				FW: 0.002, Iters: sc.Iters, TR: tr})
			if err != nil {
				return nil, nil, err
			}
			r.Scheme = fmt.Sprintf("TR=%d", tr)
			all = append(all, r)
			t.AddRow(fmt.Sprint(P), fmt.Sprint(tr), stats.FmtF(r.ThroughputMops))
		}
	}
	return t, all, nil
}

// Figure4f regenerates Figure 4f: T_R × F_W interplay, ECSB.
func Figure4f(sc Scale) (*stats.Table, []Result, error) {
	t := &stats.Table{
		Title:   "Figure 4f: T_R analysis, ECSB, F_W in {2%, 5%}",
		Columns: []string{"P", "T_R-FW", "Throughput[mln/s]"},
	}
	var all []Result
	for _, P := range sc.Ps {
		for _, fw := range []float64{0.02, 0.05} {
			for _, tr := range []int64{3000, 4000, 5000} {
				r, err := RunRW(RWParams{Scheme: SchemeRMARW, P: P, Workload: ECSB,
					FW: fw, Iters: sc.Iters, TR: tr})
				if err != nil {
					return nil, nil, err
				}
				label := fmt.Sprintf("%d-%g", tr, fw*100)
				r.Scheme = label
				all = append(all, r)
				t.AddRow(fmt.Sprint(P), label, stats.FmtF(r.ThroughputMops))
			}
		}
	}
	return t, all, nil
}

// Figure5 regenerates one subfigure of Figure 5 (§5.2.4): RMA-RW vs
// foMPI-RW for F_W in {0.2%, 2%, 5%}. sub is "a" (LB latency), "b" (ECSB)
// or "c" (SOB).
func Figure5(sub string, sc Scale) (*stats.Table, []Result, error) {
	var (
		wl      Workload
		metric  string
		latency bool
	)
	switch sub {
	case "a":
		wl, metric, latency = ECSB, "MeanLatency[us]", true
	case "b":
		wl, metric = ECSB, "Throughput[mln/s]"
	case "c":
		wl, metric = SOB, "Throughput[mln/s]"
	default:
		return nil, nil, fmt.Errorf("bench: Figure5 sub %q (want a..c)", sub)
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Figure 5%s: RMA-RW vs foMPI-RW, %s, %s", sub, wl, metric),
		Columns: []string{"P", "Scheme", "F_W", metric},
	}
	var all []Result
	for _, P := range sc.Ps {
		for _, scheme := range []string{SchemeRMARW, SchemeFoMPIRW} {
			for _, fw := range []float64{0.002, 0.02, 0.05} {
				r, err := RunRW(RWParams{Scheme: scheme, P: P, Workload: wl,
					FW: fw, Iters: sc.Iters})
				if err != nil {
					return nil, nil, err
				}
				r.Scheme = fmt.Sprintf("%s-%s", scheme, fwLabel(fw))
				all = append(all, r)
				v := r.ThroughputMops
				if latency {
					v = r.Latency.Mean
				}
				t.AddRow(fmt.Sprint(P), scheme, fwLabel(fw), stats.FmtF(v))
			}
		}
	}
	return t, all, nil
}

// dhtFWs are Figure 6's writer fractions (subfigures a–d).
var dhtFWs = []float64{0.20, 0.05, 0.02, 0.0}

// Figure6 regenerates Figure 6 (§5.3): DHT total time for foMPI-A,
// foMPI-RW and RMA-RW across P, for each writer fraction.
func Figure6(sc Scale) (*stats.Table, []DHTResult, error) {
	t := &stats.Table{
		Title:   "Figure 6: DHT total time [ms], foMPI-A vs foMPI-RW vs RMA-RW",
		Columns: []string{"F_W", "P", "Scheme", "TotalTime[ms]"},
	}
	var all []DHTResult
	for _, fw := range dhtFWs {
		for _, P := range sc.Ps {
			for _, scheme := range []string{SchemeFoMPIA, SchemeFoMPIRW, SchemeRMARW} {
				r, err := RunDHT(DHTParams{Scheme: scheme, P: P, FW: fw, OpsPerProc: sc.DHTOps})
				if err != nil {
					return nil, nil, err
				}
				all = append(all, r)
				t.AddRow(fwLabel(fw), fmt.Sprint(P), scheme, stats.FmtF(r.TotalTimeMs))
			}
		}
	}
	return t, all, nil
}

// FigureNames lists every figure runner for CLI dispatch.
var FigureNames = []string{"3a", "3b", "3c", "3d", "3e", "4a", "4b", "4c", "4d", "4e", "4f", "5a", "5b", "5c", "6"}

// RunFigure dispatches a figure by name and returns its table.
func RunFigure(name string, sc Scale) (*stats.Table, error) {
	switch name {
	case "3a", "3b", "3c", "3d", "3e":
		t, _, err := Figure3(name[1:], sc)
		return t, err
	case "4a":
		t, _, err := Figure4a(sc)
		return t, err
	case "4b":
		t, _, err := Figure4b(sc)
		return t, err
	case "4c":
		t, _, err := Figure4c(sc)
		return t, err
	case "4d":
		t, _, err := Figure4d(sc)
		return t, err
	case "4e":
		t, _, err := Figure4e(sc)
		return t, err
	case "4f":
		t, _, err := Figure4f(sc)
		return t, err
	case "5a", "5b", "5c":
		t, _, err := Figure5(name[1:], sc)
		return t, err
	case "6":
		t, _, err := Figure6(sc)
		return t, err
	default:
		return nil, fmt.Errorf("bench: unknown figure %q", name)
	}
}
