package bench

import (
	"fmt"

	"rmalocks/internal/stats"
)

// Claim is one of the paper's headline results, re-checked against the
// simulation. Holds reports whether the *shape* of the claim (who wins,
// direction of the effect) reproduces; Detail carries the measured
// numbers so EXPERIMENTS.md can record paper-vs-measured.
type Claim struct {
	ID          string
	Description string
	Holds       bool
	Detail      string
}

// VerifyClaims re-runs the minimal set of benchmarks needed to check the
// paper's key claims at the largest process count of the scale.
func VerifyClaims(sc Scale) ([]Claim, error) {
	P := sc.Ps[len(sc.Ps)-1]
	var claims []Claim

	// --- §5.1: mutex latency and throughput ordering at scale. ---
	lat := map[string]float64{}
	thr := map[string]float64{}
	for _, scheme := range MutexSchemes {
		r, err := RunMutex(MutexParams{Scheme: scheme, P: P, Workload: ECSB, Iters: sc.Iters})
		if err != nil {
			return nil, err
		}
		lat[scheme] = r.Latency.Mean
		thr[scheme] = r.ThroughputMops
	}
	claims = append(claims, Claim{
		ID: "C1-latency",
		Description: fmt.Sprintf("§5.1: RMA-MCS acquire+release latency beats foMPI-Spin and D-MCS at P=%d "+
			"(paper: ≈10x and ≈4x at P=1024)", P),
		Holds: lat[SchemeRMAMCS] < lat[SchemeDMCS] && lat[SchemeRMAMCS] < lat[SchemeFoMPISpin],
		Detail: fmt.Sprintf("mean latency µs: RMA-MCS=%.1f D-MCS=%.1f foMPI-Spin=%.1f (ratios %.1fx, %.1fx)",
			lat[SchemeRMAMCS], lat[SchemeDMCS], lat[SchemeFoMPISpin],
			lat[SchemeFoMPISpin]/lat[SchemeRMAMCS], lat[SchemeDMCS]/lat[SchemeRMAMCS]),
	})
	claims = append(claims, Claim{
		ID:          "C2-mutex-throughput",
		Description: fmt.Sprintf("§5.1: RMA-MCS ECSB throughput beats D-MCS and foMPI-Spin at P=%d", P),
		Holds:       thr[SchemeRMAMCS] > thr[SchemeDMCS] && thr[SchemeRMAMCS] > thr[SchemeFoMPISpin],
		Detail: fmt.Sprintf("mln locks/s: RMA-MCS=%.2f D-MCS=%.2f foMPI-Spin=%.3f",
			thr[SchemeRMAMCS], thr[SchemeDMCS], thr[SchemeFoMPISpin]),
	})

	// --- §5.1: intra-node spike — topology-oblivious queues lose
	// throughput when crossing from one node (P=16) to two (P=32). ---
	d16, err := RunMutex(MutexParams{Scheme: SchemeDMCS, P: 16, Workload: ECSB, Iters: sc.Iters})
	if err != nil {
		return nil, err
	}
	d32, err := RunMutex(MutexParams{Scheme: SchemeDMCS, P: 32, Workload: ECSB, Iters: sc.Iters})
	if err != nil {
		return nil, err
	}
	claims = append(claims, Claim{
		ID:          "C3-intranode-spike",
		Description: "§5.1: ECSB throughput drops when leaving the single-node regime (P=16→32, D-MCS)",
		Holds:       d32.ThroughputMops < d16.ThroughputMops,
		Detail: fmt.Sprintf("D-MCS mln locks/s: P=16 %.2f → P=32 %.2f",
			d16.ThroughputMops, d32.ThroughputMops),
	})

	// --- §5.2.4: RMA-RW vs foMPI-RW. ---
	rwThr := map[string]map[float64]float64{SchemeRMARW: {}, SchemeFoMPIRW: {}}
	for _, scheme := range []string{SchemeRMARW, SchemeFoMPIRW} {
		for _, fw := range []float64{0.002, 0.02, 0.05} {
			r, err := RunRW(RWParams{Scheme: scheme, P: P, Workload: ECSB, FW: fw, Iters: sc.Iters})
			if err != nil {
				return nil, err
			}
			rwThr[scheme][fw] = r.ThroughputMops
		}
	}
	gain := rwThr[SchemeRMARW][0.002] / rwThr[SchemeFoMPIRW][0.002]
	claims = append(claims, Claim{
		ID: "C4-rw-vs-fompi",
		Description: fmt.Sprintf("§5.2.4: RMA-RW outperforms foMPI-RW at P=%d for every F_W "+
			"(paper: >6x for P≥64)", P),
		Holds: rwThr[SchemeRMARW][0.002] > rwThr[SchemeFoMPIRW][0.002] &&
			rwThr[SchemeRMARW][0.02] > rwThr[SchemeFoMPIRW][0.02] &&
			rwThr[SchemeRMARW][0.05] > rwThr[SchemeFoMPIRW][0.05],
		Detail: fmt.Sprintf("mln locks/s at F_W=0.2%%: RMA-RW=%.2f foMPI-RW=%.2f (%.1fx); "+
			"F_W=2%%: %.2f vs %.2f; F_W=5%%: %.2f vs %.2f",
			rwThr[SchemeRMARW][0.002], rwThr[SchemeFoMPIRW][0.002], gain,
			rwThr[SchemeRMARW][0.02], rwThr[SchemeFoMPIRW][0.02],
			rwThr[SchemeRMARW][0.05], rwThr[SchemeFoMPIRW][0.05]),
	})
	claims = append(claims, Claim{
		ID:          "C5-fw-ordering",
		Description: "§5.2.4: lower writer fraction gives higher RW throughput (0.2% > 2% > 5%)",
		Holds: rwThr[SchemeRMARW][0.002] > rwThr[SchemeRMARW][0.02] &&
			rwThr[SchemeRMARW][0.02] > rwThr[SchemeRMARW][0.05],
		Detail: fmt.Sprintf("RMA-RW mln locks/s: 0.2%%=%.2f 2%%=%.2f 5%%=%.2f",
			rwThr[SchemeRMARW][0.002], rwThr[SchemeRMARW][0.02], rwThr[SchemeRMARW][0.05]),
	})

	// --- §5.2.3: larger T_R favors read-dominated throughput. ---
	trLo, err := RunRW(RWParams{Scheme: SchemeRMARW, P: P, Workload: ECSB, FW: 0.002, Iters: sc.Iters, TR: 1000})
	if err != nil {
		return nil, err
	}
	trHi, err := RunRW(RWParams{Scheme: SchemeRMARW, P: P, Workload: ECSB, FW: 0.002, Iters: sc.Iters, TR: 6000})
	if err != nil {
		return nil, err
	}
	claims = append(claims, Claim{
		ID:          "C6-tr-preference",
		Description: "§5.2.3: increasing T_R improves read-dominated throughput (F_W=0.2%)",
		Holds:       trHi.ThroughputMops >= trLo.ThroughputMops,
		Detail: fmt.Sprintf("mln locks/s: T_R=6000 %.2f vs T_R=1000 %.2f",
			trHi.ThroughputMops, trLo.ThroughputMops),
	})

	// --- §5.3: the DHT case study. ---
	dhtTime := map[string]map[float64]float64{}
	for _, scheme := range []string{SchemeFoMPIA, SchemeFoMPIRW, SchemeRMARW} {
		dhtTime[scheme] = map[float64]float64{}
		for _, fw := range []float64{0.05, 0.0} {
			r, err := RunDHT(DHTParams{Scheme: scheme, P: P, FW: fw, OpsPerProc: sc.DHTOps})
			if err != nil {
				return nil, err
			}
			dhtTime[scheme][fw] = r.TotalTimeMs
		}
	}
	claims = append(claims, Claim{
		ID:          "C7-dht",
		Description: fmt.Sprintf("§5.3: RMA-RW beats foMPI-RW on the DHT at F_W=5%%, P=%d", P),
		Holds:       dhtTime[SchemeRMARW][0.05] < dhtTime[SchemeFoMPIRW][0.05],
		Detail: fmt.Sprintf("total ms at F_W=5%%: RMA-RW=%.2f foMPI-RW=%.2f foMPI-A=%.2f; "+
			"F_W=0%%: RMA-RW=%.2f foMPI-RW=%.2f",
			dhtTime[SchemeRMARW][0.05], dhtTime[SchemeFoMPIRW][0.05], dhtTime[SchemeFoMPIA][0.05],
			dhtTime[SchemeRMARW][0.0], dhtTime[SchemeFoMPIRW][0.0]),
	})

	return claims, nil
}

// ClaimsTable renders claims as a result table.
func ClaimsTable(claims []Claim) *stats.Table {
	t := &stats.Table{
		Title:   "Headline-claim verification (shape, not absolute numbers)",
		Columns: []string{"ID", "Holds", "Measured"},
	}
	for _, c := range claims {
		ok := "yes"
		if !c.Holds {
			ok = "NO"
		}
		t.AddRow(c.ID, ok, c.Detail)
	}
	return t
}
