package bench

import (
	"fmt"

	"rmalocks/internal/scheme"
	"rmalocks/internal/stats"
	"rmalocks/internal/sweep"
)

// Claim is one of the paper's headline results, re-checked against the
// simulation. Holds reports whether the *shape* of the claim (who wins,
// direction of the effect) reproduces; Detail carries the measured
// numbers so EXPERIMENTS.md can record paper-vs-measured.
type Claim struct {
	ID          string
	Description string
	Holds       bool
	Detail      string
}

// VerifyClaims re-runs the minimal set of benchmarks needed to check the
// paper's key claims at the largest process count of the scale. Every
// measurement is an independent deterministic simulation, so they all
// execute in parallel on the sweep engine's worker pool; the claims are
// assembled from the filled slots afterwards, in a fixed order.
func VerifyClaims(sc Scale) ([]Claim, error) {
	P := sc.Ps[len(sc.Ps)-1]

	var jobs []func() error
	add := func(fn func() error) { jobs = append(jobs, fn) }

	// --- §5.1 measurements: mutex latency/throughput plus the
	// intra-node spike pair. ---
	mutexRes := make([]Result, len(MutexSchemes))
	for i, scheme := range MutexSchemes {
		i, scheme := i, scheme
		add(func() error {
			r, err := RunMutex(MutexParams{Scheme: scheme, P: P, Workload: ECSB, Iters: sc.Iters})
			mutexRes[i] = r
			return err
		})
	}
	var d16, d32 Result
	add(func() error {
		var err error
		d16, err = RunMutex(MutexParams{Scheme: SchemeDMCS, P: 16, Workload: ECSB, Iters: sc.Iters})
		return err
	})
	add(func() error {
		var err error
		d32, err = RunMutex(MutexParams{Scheme: SchemeDMCS, P: 32, Workload: ECSB, Iters: sc.Iters})
		return err
	})

	// --- §5.2.4 measurements: RMA-RW vs foMPI-RW across F_W
	// (registry-derived: every scheme with reader-writer semantics). ---
	rwSchemes := scheme.RWCapable()
	rwFWs := []float64{0.002, 0.02, 0.05}
	rwRes := make([]Result, len(rwSchemes)*len(rwFWs))
	for i, scheme := range rwSchemes {
		for j, fw := range rwFWs {
			slot, scheme, fw := i*len(rwFWs)+j, scheme, fw
			add(func() error {
				r, err := RunRW(RWParams{Scheme: scheme, P: P, Workload: ECSB, FW: fw, Iters: sc.Iters})
				rwRes[slot] = r
				return err
			})
		}
	}

	// --- §5.2.3 measurements: the T_R preference pair. ---
	var trLo, trHi Result
	add(func() error {
		var err error
		trLo, err = RunRW(RWParams{Scheme: SchemeRMARW, P: P, Workload: ECSB, FW: 0.002, Iters: sc.Iters, TR: 1000})
		return err
	})
	add(func() error {
		var err error
		trHi, err = RunRW(RWParams{Scheme: SchemeRMARW, P: P, Workload: ECSB, FW: 0.002, Iters: sc.Iters, TR: 6000})
		return err
	})

	// --- §5.3 measurements: the DHT case study — the lock-free
	// foMPI-A baseline plus every RW-capable registry scheme. ---
	dhtSchemes := append([]string{SchemeFoMPIA}, scheme.RWCapable()...)
	dhtFWpair := []float64{0.05, 0.0}
	dhtRes := make([]DHTResult, len(dhtSchemes)*len(dhtFWpair))
	for i, scheme := range dhtSchemes {
		for j, fw := range dhtFWpair {
			slot, scheme, fw := i*len(dhtFWpair)+j, scheme, fw
			add(func() error {
				r, err := RunDHT(DHTParams{Scheme: scheme, P: P, FW: fw, OpsPerProc: sc.DHTOps})
				dhtRes[slot] = r
				return err
			})
		}
	}

	if err := sweep.ForEach(len(jobs), 0, func(i int) error { return jobs[i]() }); err != nil {
		return nil, err
	}

	lat := map[string]float64{}
	thr := map[string]float64{}
	for i, scheme := range MutexSchemes {
		lat[scheme] = mutexRes[i].Latency.Mean
		thr[scheme] = mutexRes[i].ThroughputMops
	}
	rwThr := map[string]map[float64]float64{}
	for i, scheme := range rwSchemes {
		rwThr[scheme] = map[float64]float64{}
		for j, fw := range rwFWs {
			rwThr[scheme][fw] = rwRes[i*len(rwFWs)+j].ThroughputMops
		}
	}
	dhtTime := map[string]map[float64]float64{}
	for i, scheme := range dhtSchemes {
		dhtTime[scheme] = map[float64]float64{}
		for j, fw := range dhtFWpair {
			dhtTime[scheme][fw] = dhtRes[i*len(dhtFWpair)+j].TotalTimeMs
		}
	}

	var claims []Claim
	claims = append(claims, Claim{
		ID: "C1-latency",
		Description: fmt.Sprintf("§5.1: RMA-MCS acquire+release latency beats foMPI-Spin and D-MCS at P=%d "+
			"(paper: ≈10x and ≈4x at P=1024)", P),
		Holds: lat[SchemeRMAMCS] < lat[SchemeDMCS] && lat[SchemeRMAMCS] < lat[SchemeFoMPISpin],
		Detail: fmt.Sprintf("mean latency µs: RMA-MCS=%.1f D-MCS=%.1f foMPI-Spin=%.1f (ratios %.1fx, %.1fx)",
			lat[SchemeRMAMCS], lat[SchemeDMCS], lat[SchemeFoMPISpin],
			lat[SchemeFoMPISpin]/lat[SchemeRMAMCS], lat[SchemeDMCS]/lat[SchemeRMAMCS]),
	})
	claims = append(claims, Claim{
		ID:          "C2-mutex-throughput",
		Description: fmt.Sprintf("§5.1: RMA-MCS ECSB throughput beats D-MCS and foMPI-Spin at P=%d", P),
		Holds:       thr[SchemeRMAMCS] > thr[SchemeDMCS] && thr[SchemeRMAMCS] > thr[SchemeFoMPISpin],
		Detail: fmt.Sprintf("mln locks/s: RMA-MCS=%.2f D-MCS=%.2f foMPI-Spin=%.3f",
			thr[SchemeRMAMCS], thr[SchemeDMCS], thr[SchemeFoMPISpin]),
	})
	claims = append(claims, Claim{
		ID:          "C3-intranode-spike",
		Description: "§5.1: ECSB throughput drops when leaving the single-node regime (P=16→32, D-MCS)",
		Holds:       d32.ThroughputMops < d16.ThroughputMops,
		Detail: fmt.Sprintf("D-MCS mln locks/s: P=16 %.2f → P=32 %.2f",
			d16.ThroughputMops, d32.ThroughputMops),
	})
	gain := rwThr[SchemeRMARW][0.002] / rwThr[SchemeFoMPIRW][0.002]
	claims = append(claims, Claim{
		ID: "C4-rw-vs-fompi",
		Description: fmt.Sprintf("§5.2.4: RMA-RW outperforms foMPI-RW at P=%d for every F_W "+
			"(paper: >6x for P≥64)", P),
		Holds: rwThr[SchemeRMARW][0.002] > rwThr[SchemeFoMPIRW][0.002] &&
			rwThr[SchemeRMARW][0.02] > rwThr[SchemeFoMPIRW][0.02] &&
			rwThr[SchemeRMARW][0.05] > rwThr[SchemeFoMPIRW][0.05],
		Detail: fmt.Sprintf("mln locks/s at F_W=0.2%%: RMA-RW=%.2f foMPI-RW=%.2f (%.1fx); "+
			"F_W=2%%: %.2f vs %.2f; F_W=5%%: %.2f vs %.2f",
			rwThr[SchemeRMARW][0.002], rwThr[SchemeFoMPIRW][0.002], gain,
			rwThr[SchemeRMARW][0.02], rwThr[SchemeFoMPIRW][0.02],
			rwThr[SchemeRMARW][0.05], rwThr[SchemeFoMPIRW][0.05]),
	})
	claims = append(claims, Claim{
		ID:          "C5-fw-ordering",
		Description: "§5.2.4: lower writer fraction gives higher RW throughput (0.2% > 2% > 5%)",
		Holds: rwThr[SchemeRMARW][0.002] > rwThr[SchemeRMARW][0.02] &&
			rwThr[SchemeRMARW][0.02] > rwThr[SchemeRMARW][0.05],
		Detail: fmt.Sprintf("RMA-RW mln locks/s: 0.2%%=%.2f 2%%=%.2f 5%%=%.2f",
			rwThr[SchemeRMARW][0.002], rwThr[SchemeRMARW][0.02], rwThr[SchemeRMARW][0.05]),
	})
	claims = append(claims, Claim{
		ID:          "C6-tr-preference",
		Description: "§5.2.3: increasing T_R improves read-dominated throughput (F_W=0.2%)",
		Holds:       trHi.ThroughputMops >= trLo.ThroughputMops,
		Detail: fmt.Sprintf("mln locks/s: T_R=6000 %.2f vs T_R=1000 %.2f",
			trHi.ThroughputMops, trLo.ThroughputMops),
	})
	claims = append(claims, Claim{
		ID:          "C7-dht",
		Description: fmt.Sprintf("§5.3: RMA-RW beats foMPI-RW on the DHT at F_W=5%%, P=%d", P),
		Holds:       dhtTime[SchemeRMARW][0.05] < dhtTime[SchemeFoMPIRW][0.05],
		Detail: fmt.Sprintf("total ms at F_W=5%%: RMA-RW=%.2f foMPI-RW=%.2f foMPI-A=%.2f; "+
			"F_W=0%%: RMA-RW=%.2f foMPI-RW=%.2f",
			dhtTime[SchemeRMARW][0.05], dhtTime[SchemeFoMPIRW][0.05], dhtTime[SchemeFoMPIA][0.05],
			dhtTime[SchemeRMARW][0.0], dhtTime[SchemeFoMPIRW][0.0]),
	})

	return claims, nil
}

// ClaimsTable renders claims as a result table.
func ClaimsTable(claims []Claim) *stats.Table {
	t := &stats.Table{
		Title:   "Headline-claim verification (shape, not absolute numbers)",
		Columns: []string{"ID", "Holds", "Measured"},
	}
	for _, c := range claims {
		ok := "yes"
		if !c.Holds {
			ok = "NO"
		}
		t.AddRow(c.ID, ok, c.Detail)
	}
	return t
}
