package bench

import (
	"strings"
	"testing"
)

func TestAblationLocalityTable(t *testing.T) {
	tiny := Scale{Name: "tiny", Ps: []int{16}, Iters: 15}
	tb, err := AblationLocality(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("rows=%d want 8", len(tb.Rows))
	}
	if !strings.Contains(tb.Title, "T_L,2") {
		t.Errorf("bad title %q", tb.Title)
	}
}

func TestAblationLocalityShortcutGrowsWithTL(t *testing.T) {
	// More locality budget must produce at least as many shortcuts.
	lo, err := RunMutex(MutexParams{Scheme: SchemeRMAMCS, P: 32, Workload: ECSB,
		Iters: 25, TL: []int64{0, 0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := RunMutex(MutexParams{Scheme: SchemeRMAMCS, P: 32, Workload: ECSB,
		Iters: 25, TL: []int64{0, 0, 128}})
	if err != nil {
		t.Fatal(err)
	}
	if hi.DirectEntries <= lo.DirectEntries {
		t.Errorf("shortcuts: TL=128 gave %d, TL=1 gave %d; expected growth",
			hi.DirectEntries, lo.DirectEntries)
	}
	if hi.ThroughputMops <= lo.ThroughputMops {
		t.Errorf("throughput: TL=128 %.3f <= TL=1 %.3f; locality should pay off",
			hi.ThroughputMops, lo.ThroughputMops)
	}
}

func TestAblationNetworkOrderingRobust(t *testing.T) {
	tiny := Scale{Name: "tiny", Ps: []int{32}, Iters: 15}
	tb, err := AblationNetwork(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4*len(MutexSchemes) {
		t.Fatalf("rows=%d", len(tb.Rows))
	}
}

func TestScaleRemoteOnlyTouchesRemote(t *testing.T) {
	lat := scaleRemote(200)(2)
	base := scaleRemote(100)(2)
	if lat.DataRTT[0] != base.DataRTT[0] || lat.DataRTT[1] != base.DataRTT[1] {
		t.Error("local/intra-node latencies must not change")
	}
	if lat.DataRTT[2] != base.DataRTT[2]*2 {
		t.Errorf("inter-node not doubled: %d vs %d", lat.DataRTT[2], base.DataRTT[2])
	}
}

func TestRunAblationDispatch(t *testing.T) {
	tiny := Scale{Name: "tiny", Ps: []int{16}, Iters: 10}
	for _, name := range AblationNames {
		if _, err := RunAblation(name, tiny); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := RunAblation("nope", tiny); err == nil {
		t.Error("want error for unknown ablation")
	}
}
