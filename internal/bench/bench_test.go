package bench

import (
	"strings"
	"testing"
)

func TestRunMutexAllSchemes(t *testing.T) {
	for _, scheme := range MutexSchemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			r, err := RunMutex(MutexParams{Scheme: scheme, P: 16, Workload: ECSB, Iters: 20})
			if err != nil {
				t.Fatal(err)
			}
			if r.Ops != 16*20 {
				t.Errorf("Ops=%d want 320", r.Ops)
			}
			if r.ThroughputMops <= 0 {
				t.Errorf("non-positive throughput: %+v", r)
			}
			if r.Latency.Mean <= 0 {
				t.Errorf("non-positive latency: %+v", r)
			}
		})
	}
}

func TestRunMutexUnknownScheme(t *testing.T) {
	if _, err := RunMutex(MutexParams{Scheme: "nope", P: 4}); err == nil {
		t.Error("want error for unknown scheme")
	}
}

func TestRunMutexWorkloads(t *testing.T) {
	for _, wl := range []Workload{ECSB, SOB, WCSB, WARB} {
		wl := wl
		t.Run(wl.String(), func(t *testing.T) {
			r, err := RunMutex(MutexParams{Scheme: SchemeRMAMCS, P: 8, Workload: wl, Iters: 15})
			if err != nil {
				t.Fatal(err)
			}
			if r.ThroughputMops <= 0 {
				t.Errorf("bad result: %+v", r)
			}
		})
	}
}

func TestWorkloadsOrderedByCost(t *testing.T) {
	// A CS with work (WCSB) must yield lower throughput than an empty CS.
	ecsb, err := RunMutex(MutexParams{Scheme: SchemeDMCS, P: 16, Workload: ECSB, Iters: 25})
	if err != nil {
		t.Fatal(err)
	}
	wcsb, err := RunMutex(MutexParams{Scheme: SchemeDMCS, P: 16, Workload: WCSB, Iters: 25})
	if err != nil {
		t.Fatal(err)
	}
	if wcsb.ThroughputMops >= ecsb.ThroughputMops {
		t.Errorf("WCSB %.3f >= ECSB %.3f mln/s", wcsb.ThroughputMops, ecsb.ThroughputMops)
	}
}

func TestRunRWSchemes(t *testing.T) {
	for _, scheme := range []string{SchemeRMARW, SchemeFoMPIRW} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			r, err := RunRW(RWParams{Scheme: scheme, P: 16, Workload: ECSB, FW: 0.1, Iters: 20})
			if err != nil {
				t.Fatal(err)
			}
			if r.Ops != 16*20 || r.ThroughputMops <= 0 {
				t.Errorf("bad result: %+v", r)
			}
		})
	}
}

func TestRunRWDeterministic(t *testing.T) {
	run := func() Result {
		r, err := RunRW(RWParams{Scheme: SchemeRMARW, P: 16, Workload: SOB, FW: 0.25, Iters: 20, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.ThroughputMops != b.ThroughputMops || a.Latency.Mean != b.Latency.Mean {
		t.Errorf("nondeterministic bench: %+v vs %+v", a, b)
	}
}

func TestRunDHTAllSchemes(t *testing.T) {
	for _, scheme := range []string{SchemeFoMPIA, SchemeFoMPIRW, SchemeRMARW} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			r, err := RunDHT(DHTParams{Scheme: scheme, P: 8, FW: 0.2, OpsPerProc: 10})
			if err != nil {
				t.Fatal(err)
			}
			if r.TotalTimeMs <= 0 {
				t.Errorf("bad total time: %+v", r)
			}
			if r.Inserts+r.Lookups != int64(7*10) { // P-1 clients
				t.Errorf("ops=%d want 70", r.Inserts+r.Lookups)
			}
			if r.FW > 0 && r.Stored == 0 {
				t.Errorf("nothing stored despite inserts: %+v", r)
			}
		})
	}
}

func TestRunDHTPureReads(t *testing.T) {
	r, err := RunDHT(DHTParams{Scheme: SchemeRMARW, P: 8, FW: 0, OpsPerProc: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.Inserts != 0 || r.Stored != 0 {
		t.Errorf("pure-read run inserted: %+v", r)
	}
}

func TestScaleByName(t *testing.T) {
	for _, n := range []string{"quick", "medium", "full"} {
		s, err := ScaleByName(n)
		if err != nil || s.Name != n {
			t.Errorf("ScaleByName(%q) = %+v, %v", n, s, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("want error for bogus scale")
	}
}

func TestRunFigureSmokeTiny(t *testing.T) {
	// One tiny end-to-end figure run: every figure name must dispatch and
	// produce a non-empty table. Uses a minimal scale to stay fast.
	tiny := Scale{Name: "tiny", Ps: []int{8}, Iters: 8, DHTOps: 6}
	for _, name := range FigureNames {
		name := name
		t.Run(name, func(t *testing.T) {
			tb, err := RunFigure(name, tiny)
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 {
				t.Error("empty table")
			}
			if !strings.Contains(tb.Title, "Figure") {
				t.Errorf("bad title %q", tb.Title)
			}
		})
	}
	if _, err := RunFigure("9z", tiny); err == nil {
		t.Error("want error for unknown figure")
	}
}
