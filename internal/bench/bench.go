// Package bench implements the paper's evaluation harness (§5): the five
// microbenchmarks (LB, ECSB, SOB, WCSB, WARB), the reader/writer workload
// generator, the distributed-hashtable benchmark, and per-figure runners
// that regenerate every figure of the evaluation section as a text table.
package bench

import (
	"fmt"

	"rmalocks/internal/scheme"
	"rmalocks/internal/stats"
	"rmalocks/internal/workload"
)

// Workload selects the critical-section and inter-acquire behaviour of a
// benchmark iteration (§5, "Selection of Benchmarks").
type Workload int

const (
	// ECSB: empty-critical-section benchmark.
	ECSB Workload = iota
	// SOB: single-operation benchmark (one remote memory access in the CS).
	SOB
	// WCSB: workload-critical-section benchmark (shared counter increment
	// plus 1–4 µs of local work in the CS).
	WCSB
	// WARB: wait-after-release benchmark (1–4 µs pause between releases).
	WARB
)

func (w Workload) String() string {
	switch w {
	case ECSB:
		return "ECSB"
	case SOB:
		return "SOB"
	case WCSB:
		return "WCSB"
	case WARB:
		return "WARB"
	default:
		return fmt.Sprintf("Workload(%d)", int(w))
	}
}

// Mutex scheme names (comparison targets of §5.1), aliased from the
// workload harness so the two packages cannot drift.
const (
	SchemeFoMPISpin = workload.SchemeFoMPISpin
	SchemeDMCS      = workload.SchemeDMCS
	SchemeRMAMCS    = workload.SchemeRMAMCS
)

// RW scheme names (§5.2, §5.3).
const (
	SchemeFoMPIRW = workload.SchemeFoMPIRW
	SchemeRMARW   = workload.SchemeRMARW
	SchemeFoMPIA  = "foMPI-A" // DHT only: raw atomics, no lock
)

// MutexSchemes lists the mutex comparison targets in presentation
// order, derived from the scheme registry (the writer-only schemes).
var MutexSchemes = scheme.Mutexes()

// ProcsPerNode is the paper's machine configuration: 16 MPI processes per
// compute node (one per hardware thread).
const ProcsPerNode = 16

// timeLimit bounds one benchmark run (virtual ns); generous, but converts
// protocol livelock into an error instead of a hang.
const timeLimit = 1 << 42 // ~73 min virtual

// MutexParams configures one mutex benchmark run.
type MutexParams struct {
	Scheme       string
	P            int
	Workload     Workload
	Iters        int // measured acquire/release cycles per process
	Seed         int64
	ProcsPerNode int     // default ProcsPerNode
	TL           []int64 // RMA-MCS locality thresholds (optional)
	Engine       string  // scheduler engine ("" = fast path, "ref" = reference)
}

// RWParams configures one reader-writer benchmark run.
type RWParams struct {
	Scheme       string
	P            int
	Workload     Workload // ECSB or SOB
	FW           float64  // writer fraction, e.g., 0.002 for 0.2%
	Iters        int
	Seed         int64
	ProcsPerNode int
	Engine       string // scheduler engine ("" = fast path, "ref" = reference)
	// RMA-RW parameters (ignored by foMPI-RW).
	TDC int
	TR  int64
	TL  []int64
}

// Result is the outcome of one benchmark run.
type Result struct {
	Scheme string
	P      int
	// ThroughputMops is aggregate lock acquires per second, in millions
	// (the paper's "mln locks/s").
	ThroughputMops float64
	// Latency summarizes per-operation acquire+release latency in µs.
	Latency stats.Summary
	// MakespanMs is the measured phase's virtual duration.
	MakespanMs float64
	// Ops is the number of measured acquire/release cycles.
	Ops int64
	// WarmupOps is the number of discarded warm-up cycles (lock-level
	// statistics such as DirectEntries cover warm-up too).
	WarmupOps int64
	// RemoteOps is the number of RMA operations that left their rank.
	RemoteOps int64
	// DirectEntries counts RMA-MCS acquisitions that short-cut into the
	// CS through an intra-element pass (0 for other schemes), including
	// warm-up cycles.
	DirectEntries int64
}

// DirectFraction returns the share of all acquisitions (including
// warm-up) that short-cut via an intra-element pass.
func (r Result) DirectFraction() float64 {
	total := r.Ops + r.WarmupOps
	if total == 0 {
		return 0
	}
	return float64(r.DirectEntries) / float64(total)
}

func (r Result) String() string {
	return fmt.Sprintf("%s P=%d: %.3f mln locks/s, mean latency %.2f µs",
		r.Scheme, r.P, r.ThroughputMops, r.Latency.Mean)
}

func (p *MutexParams) fill() {
	if p.ProcsPerNode == 0 {
		p.ProcsPerNode = ProcsPerNode
	}
	if p.Iters == 0 {
		p.Iters = 50
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

func (p *RWParams) fill() {
	if p.ProcsPerNode == 0 {
		p.ProcsPerNode = ProcsPerNode
	}
	if p.Iters == 0 {
		p.Iters = 50
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.TDC == 0 {
		p.TDC = p.ProcsPerNode // one counter per compute node (§6)
	}
	if p.TR == 0 {
		p.TR = 1000
	}
	if p.TL == nil {
		p.TL = []int64{0, 40, 25} // T_W = 1000, the paper's Fig. 4c middle
	}
}

// The per-workload critical-section bodies, lock construction, and the
// measurement loop itself live in internal/workload; the Run* functions
// in run.go translate this package's parameter structs into
// workload.Spec values.
