package bench

import "testing"

// TestRunMutexEngineDifferential pins the Engine plumb-through: the
// historical figure-runner entry points must produce identical results
// on the fast-path and reference schedulers.
func TestRunMutexEngineDifferential(t *testing.T) {
	mk := func(engine string) MutexParams {
		return MutexParams{Scheme: SchemeRMAMCS, P: 16, ProcsPerNode: 4,
			Workload: SOB, Iters: 10, Seed: 2, Engine: engine}
	}
	fast, err := RunMutex(mk(""))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := RunMutex(mk("ref"))
	if err != nil {
		t.Fatal(err)
	}
	if fast != ref {
		t.Errorf("engines diverged:\n fast: %+v\n ref:  %+v", fast, ref)
	}
}
