package bench

import (
	"fmt"

	"rmalocks/internal/rma"
	"rmalocks/internal/stats"
	"rmalocks/internal/sweep"
	"rmalocks/internal/workload"
)

// This file holds the ablation studies DESIGN.md calls out: they probe
// the design choices directly rather than reproducing a paper figure.
//
//   - AblationLocality quantifies the fairness-vs-locality trade of the
//     T_L threshold (Figure 1's DQ axis): throughput, tail latency and
//     the fraction of acquisitions that short-cut within a node.
//   - AblationNetwork re-runs the Figure 3b comparison with the
//     inter-node network scaled faster/slower, showing how far the
//     paper's conclusions depend on the network-to-local cost ratio.

// AblationNames lists the ablation runners for CLI dispatch.
var AblationNames = []string{"locality", "network"}

// RunAblation dispatches an ablation by name.
func RunAblation(name string, sc Scale) (*stats.Table, error) {
	switch name {
	case "locality":
		return AblationLocality(sc)
	case "network":
		return AblationNetwork(sc)
	default:
		return nil, fmt.Errorf("bench: unknown ablation %q (locality|network)", name)
	}
}

// AblationLocality sweeps the node-level locality threshold T_L,2 of
// RMA-MCS at a fixed process count and reports the throughput / tail
// latency / shortcut-fraction trade-off. The sweep points are
// independent cells, executed in parallel on the sweep engine's worker
// pool and tabled in threshold order.
func AblationLocality(sc Scale) (*stats.Table, error) {
	P := sc.Ps[len(sc.Ps)-1]
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: T_L,2 fairness-vs-locality trade, RMA-MCS, ECSB, P=%d", P),
		Columns: []string{"T_L2", "Throughput[mln/s]", "MeanLat[us]", "P99Lat[us]", "Shortcut[%]"},
	}
	tls := []int64{1, 2, 4, 8, 16, 32, 64, 128}
	res := make([]Result, len(tls))
	err := sweep.ForEach(len(tls), 0, func(i int) error {
		var err error
		res[i], err = RunMutex(MutexParams{
			Scheme: SchemeRMAMCS, P: P, Workload: ECSB,
			Iters: sc.Iters, TL: []int64{0, 0, tls[i]},
		})
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, tl := range tls {
		r := res[i]
		t.AddRow(fmt.Sprint(tl), stats.FmtF(r.ThroughputMops),
			stats.FmtF(r.Latency.Mean), stats.FmtF(r.Latency.P99),
			stats.FmtF(r.DirectFraction()*100))
	}
	return t, nil
}

// AblationNetwork re-runs the ECSB scheme comparison with the inter-node
// costs scaled by several factors, checking that the paper's ordering
// (RMA-MCS ≥ D-MCS ≥ foMPI-Spin at scale) is a property of having *any*
// expensive network, not of one calibration point.
func AblationNetwork(sc Scale) (*stats.Table, error) {
	P := sc.Ps[len(sc.Ps)-1]
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: inter-node cost sensitivity, ECSB, P=%d", P),
		Columns: []string{"NetScale[%]", "Scheme", "Throughput[mln/s]"},
	}
	pcts := []int64{50, 100, 200, 400}
	type cell struct {
		pct    int64
		scheme string
	}
	var cells []cell
	for _, pct := range pcts {
		for _, scheme := range MutexSchemes {
			cells = append(cells, cell{pct, scheme})
		}
	}
	res := make([]Result, len(cells))
	err := sweep.ForEach(len(cells), 0, func(i int) error {
		var err error
		res[i], err = runMutexWithLatency(MutexParams{
			Scheme: cells[i].scheme, P: P, Workload: ECSB, Iters: sc.Iters,
		}, scaleRemote(cells[i].pct))
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t.AddRow(fmt.Sprint(c.pct), c.scheme, stats.FmtF(res[i].ThroughputMops))
	}
	return t, nil
}

// scaleRemote returns the default latency model with every entry at
// distance >= 2 (inter-node and beyond) scaled to pct percent.
func scaleRemote(pct int64) func(maxDist int) rma.LatencyModel {
	return func(maxDist int) rma.LatencyModel {
		lat := rma.DefaultLatency(maxDist)
		scale := func(tab []int64) {
			for d := 2; d < len(tab); d++ {
				v := tab[d] * pct / 100
				if v < 1 {
					v = 1
				}
				tab[d] = v
			}
		}
		scale(lat.DataRTT)
		scale(lat.AtomicRTT)
		scale(lat.DataOcc)
		scale(lat.AtomicOcc)
		return lat
	}
}

// runMutexWithLatency is RunMutex with a custom latency model factory.
func runMutexWithLatency(params MutexParams, mkLat func(maxDist int) rma.LatencyModel) (Result, error) {
	params.fill()
	if err := validMutexScheme(params.Scheme); err != nil {
		return Result{}, err
	}
	spec := mutexSpec(params)
	spec.Latency = mkLat
	rep, err := workload.Run(spec)
	if err != nil {
		return Result{}, fmt.Errorf("bench: %s P=%d: %w", params.Scheme, params.P, err)
	}
	return toResult(rep, params.Scheme, params.P), nil
}
