package bench

import (
	"fmt"

	"rmalocks/internal/locks/rmamcs"
	"rmalocks/internal/rma"
	"rmalocks/internal/stats"
	"rmalocks/internal/topology"
)

// This file holds the ablation studies DESIGN.md calls out: they probe
// the design choices directly rather than reproducing a paper figure.
//
//   - AblationLocality quantifies the fairness-vs-locality trade of the
//     T_L threshold (Figure 1's DQ axis): throughput, tail latency and
//     the fraction of acquisitions that short-cut within a node.
//   - AblationNetwork re-runs the Figure 3b comparison with the
//     inter-node network scaled faster/slower, showing how far the
//     paper's conclusions depend on the network-to-local cost ratio.

// AblationNames lists the ablation runners for CLI dispatch.
var AblationNames = []string{"locality", "network"}

// RunAblation dispatches an ablation by name.
func RunAblation(name string, sc Scale) (*stats.Table, error) {
	switch name {
	case "locality":
		return AblationLocality(sc)
	case "network":
		return AblationNetwork(sc)
	default:
		return nil, fmt.Errorf("bench: unknown ablation %q (locality|network)", name)
	}
}

// AblationLocality sweeps the node-level locality threshold T_L,2 of
// RMA-MCS at a fixed process count and reports the throughput / tail
// latency / shortcut-fraction trade-off.
func AblationLocality(sc Scale) (*stats.Table, error) {
	P := sc.Ps[len(sc.Ps)-1]
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: T_L,2 fairness-vs-locality trade, RMA-MCS, ECSB, P=%d", P),
		Columns: []string{"T_L2", "Throughput[mln/s]", "MeanLat[us]", "P99Lat[us]", "Shortcut[%]"},
	}
	for _, tl := range []int64{1, 2, 4, 8, 16, 32, 64, 128} {
		r, err := RunMutex(MutexParams{
			Scheme: SchemeRMAMCS, P: P, Workload: ECSB,
			Iters: sc.Iters, TL: []int64{0, 0, tl},
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(tl), stats.FmtF(r.ThroughputMops),
			stats.FmtF(r.Latency.Mean), stats.FmtF(r.Latency.P99),
			stats.FmtF(r.DirectFraction()*100))
	}
	return t, nil
}

// AblationNetwork re-runs the ECSB scheme comparison with the inter-node
// costs scaled by several factors, checking that the paper's ordering
// (RMA-MCS ≥ D-MCS ≥ foMPI-Spin at scale) is a property of having *any*
// expensive network, not of one calibration point.
func AblationNetwork(sc Scale) (*stats.Table, error) {
	P := sc.Ps[len(sc.Ps)-1]
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: inter-node cost sensitivity, ECSB, P=%d", P),
		Columns: []string{"NetScale[%]", "Scheme", "Throughput[mln/s]"},
	}
	for _, pct := range []int64{50, 100, 200, 400} {
		for _, scheme := range MutexSchemes {
			r, err := runMutexWithLatency(MutexParams{
				Scheme: scheme, P: P, Workload: ECSB, Iters: sc.Iters,
			}, scaleRemote(pct))
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprint(pct), scheme, stats.FmtF(r.ThroughputMops))
		}
	}
	return t, nil
}

// scaleRemote returns the default latency model with every entry at
// distance >= 2 (inter-node and beyond) scaled to pct percent.
func scaleRemote(pct int64) func(maxDist int) rma.LatencyModel {
	return func(maxDist int) rma.LatencyModel {
		lat := rma.DefaultLatency(maxDist)
		scale := func(tab []int64) {
			for d := 2; d < len(tab); d++ {
				v := tab[d] * pct / 100
				if v < 1 {
					v = 1
				}
				tab[d] = v
			}
		}
		scale(lat.DataRTT)
		scale(lat.AtomicRTT)
		scale(lat.DataOcc)
		scale(lat.AtomicOcc)
		return lat
	}
}

// runMutexWithLatency is RunMutex with a custom latency model factory.
func runMutexWithLatency(params MutexParams, mkLat func(maxDist int) rma.LatencyModel) (Result, error) {
	params.fill()
	topo := topology.ForProcs(params.P, params.ProcsPerNode)
	lat := mkLat(topo.MaxDistance())
	m := rma.NewMachineConfig(topo, rma.Config{Seed: params.Seed, TimeLimit: timeLimit, Latency: &lat})
	mu, err := newMutex(m, params)
	if err != nil {
		return Result{}, err
	}
	dataOff := m.Alloc(1)
	warmup := params.Iters/10 + 1
	lats := make([][]float64, m.Procs())
	ends := make([]int64, m.Procs())
	var start int64
	runErr := m.Run(func(p *rma.Proc) {
		mine := make([]float64, 0, params.Iters)
		for i := 0; i < warmup; i++ {
			mu.Acquire(p)
			csWork(p, params.Workload, dataOff, true)
			mu.Release(p)
			afterWork(p, params.Workload)
		}
		p.Barrier()
		if p.Rank() == 0 {
			start = p.Now()
		}
		for i := 0; i < params.Iters; i++ {
			t0 := p.Now()
			mu.Acquire(p)
			csWork(p, params.Workload, dataOff, true)
			mu.Release(p)
			mine = append(mine, float64(p.Now()-t0)/1e3)
			afterWork(p, params.Workload)
		}
		ends[p.Rank()] = p.Now()
		lats[p.Rank()] = mine
	})
	if runErr != nil {
		return Result{}, fmt.Errorf("bench: %s P=%d: %w", params.Scheme, params.P, runErr)
	}
	res := summarize(params.Scheme, params.P, m, start, ends, lats)
	res.WarmupOps = int64(warmup * m.Procs())
	if l, ok := mu.(*rmamcs.Lock); ok {
		res.DirectEntries = l.DirectEntries
	}
	return res, nil
}
