package bench

import (
	"fmt"

	"rmalocks/internal/scheme"
	"rmalocks/internal/workload"
)

// isRWScheme reports whether the registry lists the scheme as having
// genuine reader-writer semantics.
func isRWScheme(name string) bool {
	for _, s := range scheme.RWCapable() {
		if s == name {
			return true
		}
	}
	return false
}

// The three Run* entry points below are thin adapters over the unified
// workload subsystem (internal/workload): they translate the historical
// parameter structs into a workload.Spec and map the Report back. All
// driver loops live in workload.Run.

// wlFor maps the paper's benchmark selector to a (workload, profile)
// pair of the unified subsystem; fw is the writer fraction (1 for
// mutexes, where every entry is exclusive).
func wlFor(w Workload, fw float64) (workload.Workload, workload.Profile) {
	prof := workload.Uniform{FW: fw}
	switch w {
	case SOB:
		return &workload.SharedOp{}, prof
	case WCSB:
		return &workload.CounterCompute{}, prof
	case WARB:
		// Wait-after-release: 1–4 µs pause between releases.
		prof.ThinkNs, prof.ThinkJitterNs = 1000, 3000
		return workload.Empty{}, prof
	default: // ECSB
		return workload.Empty{}, prof
	}
}

// mutexSpec builds the workload.Spec shared by RunMutex and the ablation
// variants.
func mutexSpec(params MutexParams) workload.Spec {
	wl, prof := wlFor(params.Workload, 1)
	return workload.Spec{
		Scheme:       params.Scheme,
		P:            params.P,
		ProcsPerNode: params.ProcsPerNode,
		Seed:         params.Seed,
		TimeLimit:    timeLimit,
		Iters:        params.Iters,
		Profile:      prof,
		Workload:     wl,
		Params:       workload.SchemeParams{TL: params.TL},
		Engine:       params.Engine,
	}
}

// toResult maps a workload.Report back to the historical Result type.
func toResult(rep workload.Report, scheme string, P int) Result {
	return Result{
		Scheme:         scheme,
		P:              P,
		ThroughputMops: rep.ThroughputMops,
		Latency:        rep.Latency,
		MakespanMs:     rep.MakespanMs,
		Ops:            rep.Ops,
		WarmupOps:      rep.WarmupOps,
		RemoteOps:      rep.RemoteOps,
		DirectEntries:  rep.DirectEntries,
	}
}

// RunMutex executes one mutex benchmark: every process performs warmup
// cycles, synchronizes on a barrier, then runs Iters measured
// acquire/release cycles of the chosen workload. Throughput is aggregate
// measured acquires divided by the measured phase's makespan; latency is
// the per-cycle virtual duration (the paper's LB measures exactly this
// with an empty CS).
func RunMutex(params MutexParams) (Result, error) {
	params.fill()
	if err := validMutexScheme(params.Scheme); err != nil {
		return Result{}, err
	}
	rep, err := workload.Run(mutexSpec(params))
	if err != nil {
		return Result{}, fmt.Errorf("bench: %s P=%d: %w", params.Scheme, params.P, err)
	}
	return toResult(rep, params.Scheme, params.P), nil
}

// validMutexScheme rejects RW and unknown scheme names with the
// historical error message.
func validMutexScheme(scheme string) error {
	for _, s := range MutexSchemes {
		if s == scheme {
			return nil
		}
	}
	return fmt.Errorf("bench: unknown mutex scheme %q", scheme)
}

// RunRW executes one reader/writer benchmark. Each iteration is a write
// with probability FW, a read otherwise (deterministic per-process RNG).
// Any registry scheme with reader-writer semantics is accepted.
func RunRW(params RWParams) (Result, error) {
	params.fill()
	if !isRWScheme(params.Scheme) {
		return Result{}, fmt.Errorf("bench: unknown RW scheme %q", params.Scheme)
	}
	wl, prof := wlFor(params.Workload, params.FW)
	rep, err := workload.Run(workload.Spec{
		Scheme:       params.Scheme,
		P:            params.P,
		ProcsPerNode: params.ProcsPerNode,
		Seed:         params.Seed,
		TimeLimit:    timeLimit,
		Iters:        params.Iters,
		Profile:      prof,
		Workload:     wl,
		Params:       workload.SchemeParams{TL: params.TL, TDC: params.TDC, TR: params.TR},
		Engine:       params.Engine,
	})
	if err != nil {
		return Result{}, fmt.Errorf("bench: %s P=%d FW=%g: %w", params.Scheme, params.P, params.FW, err)
	}
	return toResult(rep, params.Scheme, params.P), nil
}

// DHTParams configures one distributed-hashtable benchmark run (§5.3):
// P−1 processes issue OpsPerProc operations against the local volume of
// rank 0; each operation is an insert with probability FW, otherwise a
// read of a random key.
type DHTParams struct {
	Scheme       string // SchemeFoMPIA, SchemeFoMPIRW or SchemeRMARW
	P            int
	FW           float64
	OpsPerProc   int
	Seed         int64
	ProcsPerNode int
	Slots        int // table slots per volume (default 512)
	Cells        int // overflow cells (default: enough for all inserts)
	// RMA-RW parameters.
	TDC int
	TR  int64
	TL  []int64
}

// DHTResult is the outcome of one DHT benchmark run.
type DHTResult struct {
	Scheme      string
	P           int
	FW          float64
	TotalTimeMs float64 // the paper's Figure 6 metric
	Inserts     int64
	Lookups     int64
	Stored      int // elements in the target volume afterwards
}

// RunDHT executes one DHT benchmark run.
func RunDHT(params DHTParams) (DHTResult, error) {
	if params.ProcsPerNode == 0 {
		params.ProcsPerNode = ProcsPerNode
	}
	if params.OpsPerProc == 0 {
		params.OpsPerProc = 20
	}
	if params.Seed == 0 {
		params.Seed = 1
	}
	if params.Slots == 0 {
		params.Slots = 512
	}
	if params.Cells == 0 {
		params.Cells = params.P*params.OpsPerProc + 16
	}
	if params.Scheme != SchemeFoMPIA && !isRWScheme(params.Scheme) {
		return DHTResult{}, fmt.Errorf("bench: unknown DHT scheme %q", params.Scheme)
	}
	atomic := params.Scheme == SchemeFoMPIA
	wl := &workload.DHTOps{Slots: params.Slots, Cells: params.Cells, Vol: 0, Atomic: atomic}
	rep, err := workload.Run(workload.Spec{
		Scheme:       params.Scheme,
		NoLock:       atomic, // raw atomics
		P:            params.P,
		ProcsPerNode: params.ProcsPerNode,
		Seed:         params.Seed,
		TimeLimit:    timeLimit,
		Iters:        params.OpsPerProc,
		Warmup:       -1, // the paper's DHT benchmark has no warm-up phase
		Profile:      workload.Uniform{FW: params.FW},
		Workload:     wl,
		Params:       workload.SchemeParams{TL: params.TL, TDC: params.TDC, TR: params.TR},
		// Rank 0 only hosts the volume (the paper: P−1 clients).
		Skip: func(rank, procs int) bool { return rank == 0 },
	})
	if err != nil {
		return DHTResult{}, fmt.Errorf("bench: DHT %s P=%d FW=%g: %w", params.Scheme, params.P, params.FW, err)
	}
	return DHTResult{
		Scheme:      params.Scheme,
		P:           params.P,
		FW:          params.FW,
		TotalTimeMs: rep.MakespanMs,
		Inserts:     rep.Writes,
		Lookups:     rep.Reads,
		Stored:      int(rep.Extra["stored"]),
	}, nil
}
