package bench

import (
	"fmt"

	"rmalocks/internal/dht"
	"rmalocks/internal/locks/rmamcs"
	"rmalocks/internal/rma"
	"rmalocks/internal/stats"
)

// RunMutex executes one mutex benchmark: every process performs warmup
// cycles, synchronizes on a barrier, then runs Iters measured
// acquire/release cycles of the chosen workload. Throughput is aggregate
// measured acquires divided by the measured phase's makespan; latency is
// the per-cycle virtual duration (the paper's LB measures exactly this
// with an empty CS).
func RunMutex(params MutexParams) (Result, error) {
	params.fill()
	m := machineFor(params.P, params.ProcsPerNode, params.Seed)
	mu, err := newMutex(m, params)
	if err != nil {
		return Result{}, err
	}
	dataOff := m.Alloc(1)

	warmup := params.Iters/10 + 1 // the paper discards 10% as warmup
	lat := make([][]float64, m.Procs())
	ends := make([]int64, m.Procs())
	var start int64

	runErr := m.Run(func(p *rma.Proc) {
		mine := make([]float64, 0, params.Iters)
		for i := 0; i < warmup; i++ {
			mu.Acquire(p)
			csWork(p, params.Workload, dataOff, true)
			mu.Release(p)
			afterWork(p, params.Workload)
		}
		p.Barrier() // clocks align here
		if p.Rank() == 0 {
			start = p.Now()
		}
		for i := 0; i < params.Iters; i++ {
			t0 := p.Now()
			mu.Acquire(p)
			csWork(p, params.Workload, dataOff, true)
			mu.Release(p)
			mine = append(mine, float64(p.Now()-t0)/1e3) // µs
			afterWork(p, params.Workload)
		}
		ends[p.Rank()] = p.Now()
		lat[p.Rank()] = mine
	})
	if runErr != nil {
		return Result{}, fmt.Errorf("bench: %s P=%d: %w", params.Scheme, params.P, runErr)
	}
	res := summarize(params.Scheme, params.P, m, start, ends, lat)
	res.WarmupOps = int64(warmup * m.Procs())
	if l, ok := mu.(*rmamcs.Lock); ok {
		res.DirectEntries = l.DirectEntries
	}
	return res, nil
}

// RunRW executes one reader/writer benchmark. Each iteration is a write
// with probability FW, a read otherwise (deterministic per-process RNG).
func RunRW(params RWParams) (Result, error) {
	params.fill()
	m := machineFor(params.P, params.ProcsPerNode, params.Seed)
	rw, err := newRW(m, params)
	if err != nil {
		return Result{}, err
	}
	dataOff := m.Alloc(1)

	warmup := params.Iters/10 + 1
	lat := make([][]float64, m.Procs())
	ends := make([]int64, m.Procs())
	var start int64

	runErr := m.Run(func(p *rma.Proc) {
		mine := make([]float64, 0, params.Iters)
		cycle := func(measured bool) {
			write := p.Rand().Float64() < params.FW
			t0 := p.Now()
			if write {
				rw.AcquireWrite(p)
				csWork(p, params.Workload, dataOff, true)
				rw.ReleaseWrite(p)
			} else {
				rw.AcquireRead(p)
				csWork(p, params.Workload, dataOff, false)
				rw.ReleaseRead(p)
			}
			if measured {
				mine = append(mine, float64(p.Now()-t0)/1e3)
			}
			afterWork(p, params.Workload)
		}
		for i := 0; i < warmup; i++ {
			cycle(false)
		}
		p.Barrier()
		if p.Rank() == 0 {
			start = p.Now()
		}
		for i := 0; i < params.Iters; i++ {
			cycle(true)
		}
		ends[p.Rank()] = p.Now()
		lat[p.Rank()] = mine
	})
	if runErr != nil {
		return Result{}, fmt.Errorf("bench: %s P=%d FW=%g: %w", params.Scheme, params.P, params.FW, runErr)
	}
	return summarize(params.Scheme, params.P, m, start, ends, lat), nil
}

func summarize(scheme string, P int, m *rma.Machine, start int64, ends []int64, lat [][]float64) Result {
	var end int64
	var ops int64
	all := make([]float64, 0, 1024)
	for r := range ends {
		if ends[r] > end {
			end = ends[r]
		}
		ops += int64(len(lat[r]))
		all = append(all, lat[r]...)
	}
	return Result{
		Scheme:         scheme,
		P:              P,
		ThroughputMops: throughputMops(ops, end-start),
		Latency:        stats.Summarize(all),
		MakespanMs:     float64(end-start) / 1e6,
		Ops:            ops,
		RemoteOps:      m.Stats().Remote(),
	}
}

// DHTParams configures one distributed-hashtable benchmark run (§5.3):
// P−1 processes issue OpsPerProc operations against the local volume of
// rank 0; each operation is an insert with probability FW, otherwise a
// read of a random key.
type DHTParams struct {
	Scheme       string // SchemeFoMPIA, SchemeFoMPIRW or SchemeRMARW
	P            int
	FW           float64
	OpsPerProc   int
	Seed         int64
	ProcsPerNode int
	Slots        int // table slots per volume (default 512)
	Cells        int // overflow cells (default: enough for all inserts)
	// RMA-RW parameters.
	TDC int
	TR  int64
	TL  []int64
}

// DHTResult is the outcome of one DHT benchmark run.
type DHTResult struct {
	Scheme      string
	P           int
	FW          float64
	TotalTimeMs float64 // the paper's Figure 6 metric
	Inserts     int64
	Lookups     int64
	Stored      int // elements in the target volume afterwards
}

// RunDHT executes one DHT benchmark run.
func RunDHT(params DHTParams) (DHTResult, error) {
	if params.ProcsPerNode == 0 {
		params.ProcsPerNode = ProcsPerNode
	}
	if params.OpsPerProc == 0 {
		params.OpsPerProc = 20
	}
	if params.Seed == 0 {
		params.Seed = 1
	}
	if params.Slots == 0 {
		params.Slots = 512
	}
	if params.Cells == 0 {
		params.Cells = params.P*params.OpsPerProc + 16
	}
	m := machineFor(params.P, params.ProcsPerNode, params.Seed)
	table := dht.New(m, params.Slots, params.Cells)

	var rw interface {
		AcquireRead(*rma.Proc)
		ReleaseRead(*rma.Proc)
		AcquireWrite(*rma.Proc)
		ReleaseWrite(*rma.Proc)
	}
	switch params.Scheme {
	case SchemeFoMPIA:
		rw = nil // raw atomics
	case SchemeFoMPIRW, SchemeRMARW:
		p := RWParams{Scheme: params.Scheme, TDC: params.TDC, TR: params.TR, TL: params.TL, ProcsPerNode: params.ProcsPerNode}
		p.fill()
		l, err := newRW(m, p)
		if err != nil {
			return DHTResult{}, err
		}
		rw = l
	default:
		return DHTResult{}, fmt.Errorf("bench: unknown DHT scheme %q", params.Scheme)
	}

	const vol = 0                 // the selected process hosting the volume
	const keyspace = int64(1) << 30 // random keys, mostly unique inserts
	var (
		start   int64
		end     int64
		inserts int64
		lookups int64
	)
	ends := make([]int64, m.Procs())
	runErr := m.Run(func(p *rma.Proc) {
		p.Barrier()
		if p.Rank() == 0 {
			start = p.Now()
			return // rank 0 only hosts the volume (the paper: P−1 clients)
		}
		for i := 0; i < params.OpsPerProc; i++ {
			key := int64(p.Rand().Int63n(keyspace))
			if p.Rand().Float64() < params.FW {
				inserts++
				switch {
				case rw == nil:
					table.AtomicInsert(p, vol, key)
				default:
					rw.AcquireWrite(p)
					table.PlainInsert(p, vol, key)
					rw.ReleaseWrite(p)
				}
			} else {
				lookups++
				switch {
				case rw == nil:
					table.AtomicLookup(p, vol, key)
				default:
					rw.AcquireRead(p)
					table.PlainLookup(p, vol, key)
					rw.ReleaseRead(p)
				}
			}
		}
		ends[p.Rank()] = p.Now()
	})
	if runErr != nil {
		return DHTResult{}, fmt.Errorf("bench: DHT %s P=%d FW=%g: %w", params.Scheme, params.P, params.FW, runErr)
	}
	for _, e := range ends {
		if e > end {
			end = e
		}
	}
	return DHTResult{
		Scheme:      params.Scheme,
		P:           params.P,
		FW:          params.FW,
		TotalTimeMs: float64(end-start) / 1e6,
		Inserts:     inserts,
		Lookups:     lookups,
		Stored:      table.Count(m, vol),
	}, nil
}
