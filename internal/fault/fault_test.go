package fault

import (
	"errors"
	"testing"
)

func TestParseFull(t *testing.T) {
	p, err := Parse("jitter=0.2,stragglers=4x1%,stall=50us@0.01,congest=3x0.25,timeout=200us,retries=3,onexhaust=abort,seed=42")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := Profile{
		Seed: 42, Jitter: 0.2,
		CongestFactor: 3, CongestDuty: 0.25, CongestPeriod: DefaultCongestPeriod,
		StragglerFactor: 4, StragglerFrac: 0.01,
		Stall: 50_000, StallProb: 0.01,
		Timeout: 200_000, Retries: 3, AbortOnExhaust: true,
	}
	if *p != want {
		t.Fatalf("Parse = %+v, want %+v", *p, want)
	}
}

func TestParseDefaults(t *testing.T) {
	p, err := Parse("timeout=1ms,stall=2us")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Retries != DefaultRetries {
		t.Errorf("Retries = %d, want default %d", p.Retries, DefaultRetries)
	}
	if p.StallProb != 1 {
		t.Errorf("StallProb = %v, want 1 (bare stall)", p.StallProb)
	}
	if p.Timeout != 1_000_000 || p.Stall != 2_000 {
		t.Errorf("durations: timeout=%d stall=%d", p.Timeout, p.Stall)
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"",
		"jitter=0.2",
		"jitter=0.2,stragglers=4x1%,stall=50us@0.01",
		"congest=3x0.25@2ms,timeout=200us,retries=0,onexhaust=abort",
		"seed=7,stall=1us",
	} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		canon := p.Canonical()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(Canonical(%q) = %q): %v", spec, canon, err)
		}
		if *p2 != *p {
			t.Errorf("round trip %q → %q: %+v != %+v", spec, canon, *p2, *p)
		}
		if p2.Canonical() != canon {
			t.Errorf("Canonical not a fixed point: %q → %q", canon, p2.Canonical())
		}
	}
}

func TestParseTypedErrors(t *testing.T) {
	var unk *UnknownKeyError
	if _, err := Parse("jitterr=0.2"); !errors.As(err, &unk) {
		t.Fatalf("unknown key: got %v, want *UnknownKeyError", err)
	} else if unk.Key != "jitterr" || len(unk.Have) == 0 {
		t.Errorf("UnknownKeyError = %+v", unk)
	}
	var val *ValueError
	for _, spec := range []string{
		"jitter=-1", "jitter=nope", "jitter", "jitter=",
		"congest=0.5x0.25", "congest=3x1.5", "congest=3x0.25@0ns",
		"stragglers=4x0", "stragglers=0.5x1%",
		"stall=0", "stall=50us@2",
		"timeout=-5", "retries=-1", "onexhaust=panic",
		"seed=x",
	} {
		if _, err := Parse(spec); !errors.As(err, &val) {
			t.Errorf("Parse(%q): got %v, want *ValueError", spec, err)
		}
	}
}

func TestPerturbDeterministicAndAdditive(t *testing.T) {
	p, err := Parse("jitter=0.3,stragglers=4x25%,stall=50us@0.2,congest=3x0.25")
	if err != nil {
		t.Fatal(err)
	}
	a := NewInjector(p, 11, 64)
	b := NewInjector(p, 11, 64)
	if a == nil {
		t.Fatal("NewInjector returned nil for a perturbing profile")
	}
	sawStall, sawJitter := false, false
	for rank := 0; rank < 64; rank += 7 {
		for idx := uint64(0); idx < 200; idx++ {
			clock := int64(idx) * 1717
			const rtt, occ = 1000, 50
			r1, o1, s1 := a.Perturb(rank, idx, clock, 2, rank, rtt, occ)
			r2, o2, s2 := b.Perturb(rank, idx, clock, 2, rank, rtt, occ)
			if r1 != r2 || o1 != o2 || s1 != s2 {
				t.Fatalf("non-deterministic at rank=%d idx=%d", rank, idx)
			}
			if r1 < rtt || o1 < occ || s1 < 0 {
				t.Fatalf("perturbation not additive: rtt %d<%d occ %d<%d stall %d", r1, rtt, o1, occ, s1)
			}
			sawStall = sawStall || s1 > 0
			sawJitter = sawJitter || r1 > rtt
		}
	}
	if !sawStall || !sawJitter {
		t.Errorf("expected some stalls (%v) and jitter (%v) over the sample", sawStall, sawJitter)
	}
}

func TestStragglerFraction(t *testing.T) {
	p, _ := Parse("stragglers=4x25%")
	in := NewInjector(p, 1, 4096)
	n := 0
	for r := 0; r < 4096; r++ {
		if in.Straggler(r) {
			n++
		}
	}
	frac := float64(n) / 4096
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("straggler fraction = %v, want ~0.25", frac)
	}
	// Different machine seed → different membership.
	in2 := NewInjector(p, 2, 4096)
	same := 0
	for r := 0; r < 4096; r++ {
		if in.Straggler(r) == in2.Straggler(r) {
			same++
		}
	}
	if same == 4096 {
		t.Error("straggler set identical across machine seeds")
	}
}

func TestNewInjectorNilForTimeoutOnly(t *testing.T) {
	p, _ := Parse("timeout=200us")
	if NewInjector(p, 1, 8) != nil {
		t.Error("timeout-only profile should not compile an injector")
	}
	if NewInjector(nil, 1, 8) != nil {
		t.Error("nil profile should not compile an injector")
	}
	if p.Perturbs() {
		t.Error("timeout-only profile should not report Perturbs")
	}
}
