package fault

// Hash-stream salts, one per fault class. Two perturbations of the same
// charge event draw from independent streams, so enabling one never
// shifts another's schedule.
const (
	saltStall     uint64 = 0xA11CE
	saltJitter    uint64 = 0xB0B
	saltStraggler uint64 = 0x57A6
)

// Injector is a Profile compiled against one machine: the resolved hash
// seed and the per-rank straggler set. It is immutable after
// construction and safe for concurrent use (the parallel engine calls
// Perturb from many goroutines); the per-rank event index that drives
// the hash stream lives with the caller.
type Injector struct {
	prof      Profile
	seed      uint64
	straggler []bool
}

// NewInjector compiles prof for a machine with the given seed and rank
// count. Returns nil when prof is nil or perturbs nothing, so callers
// can gate injection on one nil check.
func NewInjector(prof *Profile, machineSeed int64, ranks int) *Injector {
	if !prof.Perturbs() {
		return nil
	}
	in := &Injector{
		prof: *prof,
		seed: mix(uint64(machineSeed) ^ mix(uint64(prof.Seed))),
	}
	if in.prof.CongestPeriod == 0 {
		in.prof.CongestPeriod = DefaultCongestPeriod
	}
	if in.prof.StragglerFactor > 1 {
		in.straggler = make([]bool, ranks)
		for r := range in.straggler {
			in.straggler[r] = unit(mix(in.seed^mix(uint64(r)^saltStraggler))) < in.prof.StragglerFrac
		}
	}
	return in
}

// Straggler reports whether rank is in the straggler set.
func (in *Injector) Straggler(rank int) bool {
	return in.straggler != nil && in.straggler[rank]
}

// Perturb applies the profile to one charge event: idx is the origin
// rank's running charge-event index, clock its effective clock, dist
// the topology distance and rtt/occ the base latency terms. It returns
// the perturbed rtt and occ plus a stall that defers the op's issue.
// Pure function of its arguments and the injector — no state — so the
// schedule is identical wherever in the engine matrix it is evaluated.
func (in *Injector) Perturb(rank int, idx uint64, clock int64, dist, target int, rtt, occ int64) (rtt2, occ2, stall int64) {
	p := &in.prof
	if p.Stall > 0 {
		if unit(in.hash(rank, idx, saltStall)) < p.StallProb {
			stall = p.Stall
		}
	}
	if p.CongestFactor > 1 && dist >= 2 {
		// Deterministic square wave over virtual time: the window state
		// depends on when the op actually issues (post-stall), like real
		// congestion would.
		phase := (clock + stall) % p.CongestPeriod
		if float64(phase) < p.CongestDuty*float64(p.CongestPeriod) {
			rtt = int64(float64(rtt) * p.CongestFactor)
		}
	}
	if p.Jitter > 0 {
		rtt += int64(float64(rtt) * p.Jitter * unit(in.hash(rank, idx, saltJitter)))
	}
	if in.straggler != nil && in.straggler[target] {
		occ = int64(float64(occ) * p.StragglerFactor)
	}
	return rtt, occ, stall
}

// hash derives the stream value for (rank, event index, fault class).
func (in *Injector) hash(rank int, idx, salt uint64) uint64 {
	return mix(in.seed ^ mix(uint64(rank)^mix(idx^salt)))
}

// mix is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// unit maps a hash to [0, 1) with 53-bit precision.
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }
