// Package fault is the deterministic perturbation layer of the machine
// model: seeded RTT jitter, congestion windows on the network link
// class, per-rank straggler multipliers on occupancy, and stall
// intervals that model a descheduled holder. Every perturbation is a
// pure function of (seed, rank, per-rank charge-event index, virtual
// clock), so a faulted run is exactly as deterministic as a fault-free
// one: identical configs stay byte-identical across the fast, reference
// and parallel engines (differential-tested).
//
// All perturbations are additive-only — jitter and congestion scale the
// round trip up, stragglers scale occupancy up, stalls defer the op —
// which keeps the parallel engine's latency-model lookahead a valid
// lower bound under any profile.
//
// A Profile also carries the bounded-acquire knobs (Timeout, Retries,
// AbortOnExhaust) consumed by the workload harness; they do not perturb
// the machine, they change how workloads acquire locks.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Defaults applied by Parse when a key is given without the optional
// sub-value.
const (
	// DefaultCongestPeriod is the congestion window period (1ms).
	DefaultCongestPeriod int64 = 1_000_000
	// DefaultRetries bounds the harness retry loop when timeout= is set
	// without retries=.
	DefaultRetries = 8
)

// Profile is one fault configuration. The zero value is fault-free.
// Durations are virtual nanoseconds.
type Profile struct {
	// Seed perturbs the fault hash stream independently of the machine
	// seed (0 = derive everything from the machine seed alone).
	Seed int64 `json:"seed,omitempty"`

	// Jitter adds up to Jitter×RTT of per-op round-trip jitter
	// (e.g. 0.2 = up to +20% per hop). Must be in [0, 16].
	Jitter float64 `json:"jitter,omitempty"`

	// CongestFactor multiplies the RTT of network links (distance >= 2)
	// by this factor during congestion windows. Must be >= 1 (1 = off).
	CongestFactor float64 `json:"congest_factor,omitempty"`
	// CongestDuty is the fraction of each period the window is
	// congested, in (0, 1].
	CongestDuty float64 `json:"congest_duty,omitempty"`
	// CongestPeriod is the square-wave period in virtual ns
	// (DefaultCongestPeriod when zero).
	CongestPeriod int64 `json:"congest_period,omitempty"`

	// StragglerFactor multiplies the occupancy of ops targeting a
	// straggler rank. Must be >= 1 (1 = off).
	StragglerFactor float64 `json:"straggler_factor,omitempty"`
	// StragglerFrac is the fraction of ranks that are stragglers,
	// in (0, 1]. Membership is a pure function of (seed, rank).
	StragglerFrac float64 `json:"straggler_frac,omitempty"`

	// Stall defers an op by this many virtual ns (the rank is
	// descheduled mid-protocol, e.g. a stalled lock holder).
	Stall int64 `json:"stall,omitempty"`
	// StallProb is the per-op probability of a stall, in (0, 1].
	StallProb float64 `json:"stall_prob,omitempty"`

	// Timeout bounds each lock acquire attempt (virtual ns). Requires a
	// scheme with the CapTimeout capability; others are typed-rejected.
	Timeout int64 `json:"timeout,omitempty"`
	// Retries is the number of backed-off re-attempts after the first
	// timed-out acquire before the rank gives up on the cycle.
	Retries int `json:"retries,omitempty"`
	// AbortOnExhaust aborts the whole run with ErrRetriesExhausted when
	// a rank runs out of retries, instead of abandoning the cycle.
	AbortOnExhaust bool `json:"abort_on_exhaust,omitempty"`
}

// UnknownKeyError reports an unrecognized key in a fault spec string.
type UnknownKeyError struct {
	Key  string
	Have []string // valid keys, sorted
}

func (e *UnknownKeyError) Error() string {
	return fmt.Sprintf("fault: unknown key %q (have %s)", e.Key, strings.Join(e.Have, ", "))
}

// ValueError reports a malformed or out-of-range value in a fault spec.
type ValueError struct {
	Key    string
	Value  string
	Reason string
}

func (e *ValueError) Error() string {
	return fmt.Sprintf("fault: bad value %s=%q: %s", e.Key, e.Value, e.Reason)
}

// keys lists the accepted spec keys, sorted (the Canonical emission
// order and the UnknownKeyError help text).
var keys = []string{
	"congest", "jitter", "onexhaust", "retries", "seed", "stall",
	"stragglers", "timeout",
}

// Parse builds a Profile from a comma-separated spec:
//
//	jitter=0.2                up to +20% RTT jitter per op
//	congest=3x0.25[@1ms]      ×3 RTT on network links, 25% duty windows
//	stragglers=4x1%           1% of ranks get ×4 occupancy
//	stall=50us@0.01           1% of ops deferred by 50µs
//	timeout=200us             bounded lock acquires (CapTimeout schemes)
//	retries=8                 backed-off re-attempts after a timeout
//	onexhaust=abandon|abort   exhausted retries: skip the cycle or abort
//	seed=42                   extra fault-stream seed
//
// Durations accept ns/us/ms/s suffixes (bare numbers are ns); fractions
// accept percent ("1%") or decimal ("0.01"). Unknown keys return a
// typed *UnknownKeyError, bad values a typed *ValueError.
func Parse(spec string) (*Profile, error) {
	p := &Profile{}
	retriesSet := false
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if !ok || val == "" {
			return nil, &ValueError{Key: key, Value: val, Reason: "want key=value"}
		}
		switch key {
		case "jitter":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 || f > 16 {
				return nil, &ValueError{Key: key, Value: val, Reason: "want a factor in [0, 16]"}
			}
			p.Jitter = f
		case "congest":
			factor, rest, ok := cutFloat(val, "x")
			if !ok || factor < 1 {
				return nil, &ValueError{Key: key, Value: val, Reason: "want FACTORxDUTY[@PERIOD] with factor >= 1"}
			}
			dutyStr, periodStr, hasPeriod := strings.Cut(rest, "@")
			duty, err := parseFrac(dutyStr)
			if err != nil || duty <= 0 || duty > 1 {
				return nil, &ValueError{Key: key, Value: val, Reason: "want duty in (0, 1]"}
			}
			period := DefaultCongestPeriod
			if hasPeriod {
				period, err = parseDur(periodStr)
				if err != nil || period <= 0 {
					return nil, &ValueError{Key: key, Value: val, Reason: "want period > 0"}
				}
			}
			p.CongestFactor, p.CongestDuty, p.CongestPeriod = factor, duty, period
		case "stragglers":
			factor, fracStr, ok := cutFloat(val, "x")
			if !ok || factor < 1 {
				return nil, &ValueError{Key: key, Value: val, Reason: "want FACTORxFRAC with factor >= 1"}
			}
			frac, err := parseFrac(fracStr)
			if err != nil || frac <= 0 || frac > 1 {
				return nil, &ValueError{Key: key, Value: val, Reason: "want fraction in (0, 1]"}
			}
			p.StragglerFactor, p.StragglerFrac = factor, frac
		case "stall":
			durStr, probStr, hasProb := strings.Cut(val, "@")
			d, err := parseDur(durStr)
			if err != nil || d <= 0 {
				return nil, &ValueError{Key: key, Value: val, Reason: "want DUR[@PROB] with dur > 0"}
			}
			prob := 1.0
			if hasProb {
				prob, err = parseFrac(probStr)
				if err != nil || prob <= 0 || prob > 1 {
					return nil, &ValueError{Key: key, Value: val, Reason: "want probability in (0, 1]"}
				}
			}
			p.Stall, p.StallProb = d, prob
		case "timeout":
			d, err := parseDur(val)
			if err != nil || d <= 0 {
				return nil, &ValueError{Key: key, Value: val, Reason: "want a duration > 0"}
			}
			p.Timeout = d
		case "retries":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, &ValueError{Key: key, Value: val, Reason: "want an integer >= 0"}
			}
			p.Retries = n
			retriesSet = true
		case "onexhaust":
			switch val {
			case "abandon":
				p.AbortOnExhaust = false
			case "abort":
				p.AbortOnExhaust = true
			default:
				return nil, &ValueError{Key: key, Value: val, Reason: `want "abandon" or "abort"`}
			}
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, &ValueError{Key: key, Value: val, Reason: "want an integer"}
			}
			p.Seed = n
		default:
			return nil, &UnknownKeyError{Key: key, Have: keys}
		}
	}
	if p.Timeout > 0 && !retriesSet {
		p.Retries = DefaultRetries
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate checks the profile's invariants: every multiplier >= 1,
// every additive term >= 0, every probability in range. These bounds
// are what keep the parallel engine's lookahead a lower bound.
func (p *Profile) Validate() error {
	check := func(ok bool, key, reason string) error {
		if ok {
			return nil
		}
		return &ValueError{Key: key, Value: p.Canonical(), Reason: reason}
	}
	if err := check(p.Jitter >= 0 && p.Jitter <= 16, "jitter", "factor out of [0, 16]"); err != nil {
		return err
	}
	if p.CongestFactor != 0 || p.CongestDuty != 0 {
		if err := check(p.CongestFactor >= 1, "congest", "factor < 1"); err != nil {
			return err
		}
		if err := check(p.CongestDuty > 0 && p.CongestDuty <= 1, "congest", "duty out of (0, 1]"); err != nil {
			return err
		}
	}
	if p.StragglerFactor != 0 || p.StragglerFrac != 0 {
		if err := check(p.StragglerFactor >= 1, "stragglers", "factor < 1"); err != nil {
			return err
		}
		if err := check(p.StragglerFrac > 0 && p.StragglerFrac <= 1, "stragglers", "fraction out of (0, 1]"); err != nil {
			return err
		}
	}
	if p.Stall != 0 || p.StallProb != 0 {
		if err := check(p.Stall > 0, "stall", "duration <= 0"); err != nil {
			return err
		}
		if err := check(p.StallProb > 0 && p.StallProb <= 1, "stall", "probability out of (0, 1]"); err != nil {
			return err
		}
	}
	if err := check(p.Timeout >= 0, "timeout", "duration < 0"); err != nil {
		return err
	}
	return check(p.Retries >= 0, "retries", "count < 0")
}

// Canonical renders the profile as a sorted key=value spec that Parse
// round-trips exactly; it is the form used in sweep keys, report
// fingerprints and baselines. A zero profile renders as "".
func (p *Profile) Canonical() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.CongestFactor > 1 {
		s := fmt.Sprintf("congest=%sx%s", ftoa(p.CongestFactor), ftoa(p.CongestDuty))
		if period := p.CongestPeriod; period != 0 && period != DefaultCongestPeriod {
			s += fmt.Sprintf("@%d", period)
		}
		parts = append(parts, s)
	}
	if p.Jitter > 0 {
		parts = append(parts, "jitter="+ftoa(p.Jitter))
	}
	if p.AbortOnExhaust {
		parts = append(parts, "onexhaust=abort")
	}
	if p.Timeout > 0 && p.Retries != DefaultRetries {
		parts = append(parts, fmt.Sprintf("retries=%d", p.Retries))
	}
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	if p.Stall > 0 {
		parts = append(parts, fmt.Sprintf("stall=%d@%s", p.Stall, ftoa(p.StallProb)))
	}
	if p.StragglerFactor > 1 {
		parts = append(parts, fmt.Sprintf("stragglers=%sx%s", ftoa(p.StragglerFactor), ftoa(p.StragglerFrac)))
	}
	if p.Timeout > 0 {
		parts = append(parts, fmt.Sprintf("timeout=%d", p.Timeout))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (p *Profile) String() string { return p.Canonical() }

// Clone returns a copy (profiles are plain values; Clone exists so
// callers holding a *Profile can snapshot it safely).
func (p *Profile) Clone() *Profile {
	if p == nil {
		return nil
	}
	c := *p
	return &c
}

// Perturbs reports whether the profile perturbs machine timing at all
// (the Timeout/Retries knobs alone do not — they only bound acquires).
func (p *Profile) Perturbs() bool {
	return p != nil && (p.Jitter > 0 || p.CongestFactor > 1 ||
		p.StragglerFactor > 1 || p.Stall > 0)
}

// MaxRetries returns the retry bound for bounded acquires.
func (p *Profile) MaxRetries() int { return p.Retries }

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// cutFloat splits "12.5xREST" at sep and parses the prefix.
func cutFloat(s, sep string) (float64, string, bool) {
	head, rest, ok := strings.Cut(s, sep)
	if !ok {
		return 0, "", false
	}
	f, err := strconv.ParseFloat(head, 64)
	if err != nil {
		return 0, "", false
	}
	return f, rest, true
}

// parseFrac parses "0.01" or "1%" into a fraction.
func parseFrac(s string) (float64, error) {
	if pct, ok := strings.CutSuffix(s, "%"); ok {
		f, err := strconv.ParseFloat(pct, 64)
		return f / 100, err
	}
	return strconv.ParseFloat(s, 64)
}

// parseDur parses a virtual duration: bare numbers are ns; ns/us/ms/s
// suffixes are accepted ("50us", "1.5ms").
func parseDur(s string) (int64, error) {
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{{"ns", 1}, {"us", 1_000}, {"µs", 1_000}, {"ms", 1_000_000}, {"s", 1_000_000_000}} {
		if v, ok := strings.CutSuffix(s, u.suffix); ok {
			s, mult = v, u.mult
			break
		}
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	return int64(f * float64(mult)), nil
}
