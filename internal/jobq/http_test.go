package jobq_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rmalocks/internal/cache"
	"rmalocks/internal/jobq"
	"rmalocks/internal/obs"
	"rmalocks/internal/sweep"
)

// newTestServer wires the full daemon stack — metrics, cache, multi
// progress, manager, job API — onto an httptest server, exactly as
// cmd/sweepd assembles it.
func newTestServer(t *testing.T) (*httptest.Server, *jobq.Manager, *cache.Store) {
	t.Helper()
	metrics := obs.NewMetrics()
	store, _, err := cache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	store.Register(metrics.Registry)
	multi := obs.NewMultiProgress()
	mgr := jobq.NewManager(jobq.Config{
		Workers: 4, MaxJobs: 2,
		Cache: cache.NewResultStore(store),
		Obs:   metrics, Multi: multi,
	})
	srv := obs.NewServer(metrics.Registry, multi)
	jobq.NewAPI(mgr).Mount(srv)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); mgr.Shutdown() })
	return ts, mgr, store
}

func submitGrid(t *testing.T, ts *httptest.Server, label string) jobq.Status {
	t.Helper()
	body, err := sweep.EncodeGrid(testGrid())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs?label="+label, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /jobs: %d %s", resp.StatusCode, raw)
	}
	var st jobq.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func awaitState(t *testing.T, ts *httptest.Server, id, want string) jobq.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st jobq.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		switch st.State {
		case jobq.StateFailed, jobq.StateCanceled, jobq.StateDone:
			t.Fatalf("job %s reached terminal state %s (error %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPSubmitResultEvents(t *testing.T) {
	ts, _, _ := newTestServer(t)
	st := submitGrid(t, ts, "api-test")
	if st.ID == "" || st.Cells == 0 {
		t.Fatalf("created job status %+v lacks id/cells", st)
	}
	awaitState(t, ts, st.ID, jobq.StateDone)

	// Result bytes must equal a direct local run of the same grid.
	results, err := sweep.Run(mustCells(t, testGrid()), sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.Encode(sweep.RunFile{Label: "api-test", Cells: results})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fetched result differs from direct local run bytes")
	}

	// The events stream of a finished job replays terminal states and a
	// final summary, then ends on its own.
	resp, err = http.Get(ts.URL + "/jobs/" + st.ID + "/events?interval_ms=10")
	if err != nil {
		t.Fatal(err)
	}
	events, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(events)), "\n")
	if len(lines) != st.Cells+1 {
		t.Fatalf("events stream has %d lines, want %d cells + summary", len(lines), st.Cells)
	}
	var sum obs.SummaryLine
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Summary || sum.Done != st.Cells || sum.EtaMs != 0 {
		t.Fatalf("final summary %+v, want done=%d eta=0", sum, st.Cells)
	}

	// The jobs list includes it.
	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []jobq.Status
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil || len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("GET /jobs = %+v (%v), want the one job", list, err)
	}
}

func TestHTTPCacheHitsAcrossSubmissions(t *testing.T) {
	ts, _, store := newTestServer(t)
	st1 := submitGrid(t, ts, "cold")
	awaitState(t, ts, st1.ID, jobq.StateDone)
	st2 := submitGrid(t, ts, "warm")
	fin := awaitState(t, ts, st2.ID, jobq.StateDone)
	if fin.Cached != fin.Cells {
		t.Fatalf("warm job cached %d/%d cells", fin.Cached, fin.Cells)
	}
	// /metrics exposes the counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, m := range []string{"sweepd_cache_hits_total", "sweepd_cache_misses_total", "sweepd_cache_evictions_total", "sweepd_cache_bytes"} {
		if !strings.Contains(text, m) {
			t.Errorf("/metrics missing %s", m)
		}
	}
	if st := store.Stats(); st.Hits != int64(fin.Cells) {
		t.Errorf("store hits = %d, want %d", st.Hits, fin.Cells)
	}
}

func TestHTTPErrors(t *testing.T) {
	ts, mgr, _ := newTestServer(t)

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/jobs/no-such-job"); code != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", code)
	}
	if code := get("/jobs/no-such-job/result"); code != http.StatusNotFound {
		t.Errorf("unknown job result = %d, want 404", code)
	}

	// Malformed grid JSON → 400 with a JSON error body.
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"bogus_field":1}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "error") {
		t.Errorf("bogus grid: %d %s, want 400 + error body", resp.StatusCode, raw)
	}

	// A job canceled before completion serves 410 for its result.
	j, err := mgr.Submit(testGrid(), "to-cancel")
	if err != nil {
		t.Fatal(err)
	}
	j.Cancel()
	<-j.Done()
	if st := j.Status(); st.State == jobq.StateCanceled {
		if code := get("/jobs/" + j.ID + "/result"); code != http.StatusGone {
			t.Errorf("canceled job result = %d, want 410", code)
		}
	}

	// The index page lists the mounted job routes.
	resp, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "/jobs") {
		t.Errorf("index page does not list /jobs: %q", raw)
	}
}

func TestHTTPProgressFanIn(t *testing.T) {
	ts, _, _ := newTestServer(t)
	st1 := submitGrid(t, ts, "a")
	awaitState(t, ts, st1.ID, jobq.StateDone)
	st2 := submitGrid(t, ts, "b")
	awaitState(t, ts, st2.ID, jobq.StateDone)

	resp, err := http.Get(ts.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	// Per job: cells + summary; plus one trailing aggregate summary.
	if want := 2*(st1.Cells+1) + 1; len(lines) != want {
		t.Fatalf("/progress has %d lines, want %d", len(lines), want)
	}
	var agg obs.SummaryLine
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Total != 2*st1.Cells || agg.Done != agg.Total || agg.EtaMs != 0 {
		t.Fatalf("aggregate summary %+v, want total=done=%d eta=0", agg, 2*st1.Cells)
	}
	// Cell lines carry their owning job's name.
	var first obs.CellLine
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Job != st1.ID {
		t.Fatalf("first cell line job = %q, want %q", first.Job, st1.ID)
	}
}
