// Package jobq is sweepd's job layer: grids arrive over the wire,
// become jobs, and run on a bounded pool with per-job progress
// tracking, cancellation, and cache-aware scheduling. The merge
// discipline is inherited from sweep.Run — results land at their
// canonical cell index regardless of cache state, worker count, or
// completion order — so a job's result bytes depend only on its grid.
package jobq

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"rmalocks/internal/obs"
	"rmalocks/internal/sweep"
)

// Job lifecycle states.
const (
	StateQueued   = "queued"   // submitted, waiting for a job slot
	StateRunning  = "running"  // cells executing (or resolving from cache)
	StateDone     = "done"     // all cells terminal, result available
	StateFailed   = "failed"   // a cell errored; partial results discarded
	StateCanceled = "canceled" // canceled before completion
)

// ErrDraining rejects submissions during graceful shutdown.
var ErrDraining = errors.New("jobq: daemon is draining, not accepting jobs")

// UnknownJobError names a job ID with no corresponding job.
type UnknownJobError struct{ ID string }

func (e UnknownJobError) Error() string { return fmt.Sprintf("jobq: unknown job %q", e.ID) }

// NotDoneError reports a result request for a job that has not (or will
// never) become done; State tells the caller which.
type NotDoneError struct {
	ID    string
	State string
}

func (e NotDoneError) Error() string {
	return fmt.Sprintf("jobq: job %s is %s, result unavailable", e.ID, e.State)
}

// Config wires a Manager into the daemon.
type Config struct {
	// Workers bounds each job's cell worker pool (<= 0: GOMAXPROCS).
	Workers int
	// MaxJobs bounds concurrently *running* jobs (<= 0: 1); excess
	// submissions queue in arrival order.
	MaxJobs int
	// Cache, when non-nil, resolves cells by content address before
	// they are scheduled (internal/cache's ResultStore).
	Cache sweep.CellCache
	// Obs attaches the daemon's live instruments to every job's cells.
	Obs *obs.Metrics
	// Multi, when non-nil, receives each job's progress tracker for the
	// /progress fan-in.
	Multi *obs.MultiProgress
}

// Job is one submitted sweep. Fields are immutable after Submit except
// state/err/results, which the job goroutine writes under mu.
type Job struct {
	ID    string
	Label string
	cells []sweep.Cell
	// degrade applies the fault-degradation join after the sweep (set
	// for grids with a fault axis), mirroring the workbench pipeline so
	// daemon results match local runs byte for byte.
	degrade bool
	prog    *obs.SweepProgress

	counts jobCounts

	cancel     chan struct{}
	cancelOnce sync.Once
	done       chan struct{} // closed when the job reaches a terminal state
	// started closes once the job has claimed a run slot (or died
	// queued); the next submission waits on it, so jobs start in
	// submission order instead of racing for slots.
	started chan struct{}
	prev    *Job

	mu      sync.Mutex
	state   string
	err     error
	results []sweep.CellResult
}

// jobCounts mirrors the progress tracker's aggregates as atomics so
// Status never contends with sweep workers.
type jobCounts struct {
	done, cached, failed atomic.Int64
}

// jobProgress fans sweep.Progress callbacks into both the job's obs
// tracker and its atomic counters.
type jobProgress struct{ j *Job }

func (p jobProgress) Start(keys []string) { p.j.prog.Start(keys) }
func (p jobProgress) CellRunning(i int)   { p.j.prog.CellRunning(i) }
func (p jobProgress) CellCached(i int, fp string) {
	p.j.counts.done.Add(1)
	p.j.counts.cached.Add(1)
	p.j.prog.CellCached(i, fp)
}
func (p jobProgress) CellDone(i int, fp string, err error) {
	p.j.counts.done.Add(1)
	if err != nil {
		p.j.counts.failed.Add(1)
	}
	p.j.prog.CellDone(i, fp, err)
}

// Status is the wire view of a job (GET /jobs, GET /jobs/{id}).
type Status struct {
	ID     string `json:"id"`
	Label  string `json:"label,omitempty"`
	State  string `json:"state"`
	Cells  int    `json:"cells"`
	Done   int    `json:"done"`
	Cached int    `json:"cached"`
	Failed int    `json:"failed"`
	Error  string `json:"error,omitempty"`
}

// Cancel requests cancellation: queued jobs never start, running jobs
// stop claiming cells (in-flight cells finish and still land in the
// cache — work done is never thrown away).
func (j *Job) Cancel() { j.cancelOnce.Do(func() { close(j.cancel) }) }

// Done exposes the job's terminal-state signal (events streaming).
func (j *Job) Done() <-chan struct{} { return j.done }

// Progress exposes the job's obs tracker (events streaming).
func (j *Job) Progress() *obs.SweepProgress { return j.prog }

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	state, err := j.state, j.err
	j.mu.Unlock()
	s := Status{
		ID: j.ID, Label: j.Label, State: state, Cells: len(j.cells),
		Done:   int(j.counts.done.Load()),
		Cached: int(j.counts.cached.Load()),
		Failed: int(j.counts.failed.Load()),
	}
	if err != nil {
		s.Error = err.Error()
	}
	return s
}

// setState transitions the job; terminal transitions close done.
func (j *Job) setState(state string, err error) {
	j.mu.Lock()
	j.state = state
	if err != nil {
		j.err = err
	}
	j.mu.Unlock()
	switch state {
	case StateDone, StateFailed, StateCanceled:
		close(j.done)
	}
}

// Manager owns the job table and the run slots.
type Manager struct {
	cfg   Config
	slots chan struct{}

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	draining bool

	wg sync.WaitGroup
}

// NewManager builds an idle manager.
func NewManager(cfg Config) *Manager {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 1
	}
	return &Manager{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.MaxJobs),
		jobs:  make(map[string]*Job),
	}
}

// Submit enumerates the grid (rejecting malformed grids eagerly, before
// a job ID is ever minted), registers the job, and schedules it. The
// daemon's instruments are attached server-side; submitted grids are
// wire-form and carry none.
func (m *Manager) Submit(g sweep.Grid, label string) (*Job, error) {
	g.Obs = m.cfg.Obs
	cells, err := g.Cells()
	if err != nil {
		return nil, fmt.Errorf("jobq: submit: %w", err)
	}
	if len(cells) == 0 {
		return nil, errors.New("jobq: submit: grid enumerates no cells")
	}

	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	m.nextID++
	id := fmt.Sprintf("job-%d", m.nextID)
	j := &Job{
		ID: id, Label: label, cells: cells,
		degrade: len(g.Faults) > 0,
		prog:    obs.NewSweepProgress(id),
		cancel:  make(chan struct{}),
		done:    make(chan struct{}),
		started: make(chan struct{}),
		state:   StateQueued,
	}
	if n := len(m.order); n > 0 {
		j.prev = m.jobs[m.order[n-1]]
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.wg.Add(1)
	m.mu.Unlock()

	if m.cfg.Multi != nil {
		m.cfg.Multi.Add(id, j.prog)
	}
	go m.run(j)
	return j, nil
}

// run is the job goroutine: wait behind earlier submissions, claim a
// slot, sweep, record the outcome.
func (m *Manager) run(j *Job) {
	defer m.wg.Done()
	if j.prev != nil {
		select {
		case <-j.cancel:
			close(j.started)
			j.setState(StateCanceled, sweep.ErrCanceled)
			return
		case <-j.prev.started:
		}
	}
	select {
	case <-j.cancel:
		close(j.started)
		j.setState(StateCanceled, sweep.ErrCanceled)
		return
	case m.slots <- struct{}{}:
	}
	close(j.started)
	defer func() { <-m.slots }()
	j.setState(StateRunning, nil)
	results, err := sweep.Run(j.cells, sweep.Options{
		Workers:  m.cfg.Workers,
		Cache:    m.cfg.Cache,
		Cancel:   j.cancel,
		Progress: jobProgress{j},
	})
	switch {
	case errors.Is(err, sweep.ErrCanceled):
		j.setState(StateCanceled, err)
	case err != nil:
		j.setState(StateFailed, err)
	default:
		if j.degrade {
			sweep.ApplyDegradation(results)
		}
		j.mu.Lock()
		j.results = results
		j.mu.Unlock()
		j.setState(StateDone, nil)
	}
}

// Get looks up a job.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, UnknownJobError{ID: id}
	}
	return j, nil
}

// Statuses lists all jobs in submission order.
func (m *Manager) Statuses() []Status {
	m.mu.Lock()
	order := append([]string(nil), m.order...)
	jobs := make([]*Job, len(order))
	for i, id := range order {
		jobs[i] = m.jobs[id]
	}
	m.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel cancels the named job.
func (m *Manager) Cancel(id string) error {
	j, err := m.Get(id)
	if err != nil {
		return err
	}
	j.Cancel()
	return nil
}

// Result returns the finished job's run file: label + cells in
// canonical order, no timestamp, so the bytes are a pure function of
// the submitted grid.
func (m *Manager) Result(id string) (sweep.RunFile, error) {
	j, err := m.Get(id)
	if err != nil {
		return sweep.RunFile{}, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return sweep.RunFile{}, NotDoneError{ID: id, State: j.state}
	}
	return sweep.RunFile{Label: j.Label, Cells: j.results}, nil
}

// Shutdown drains the manager: new submissions are refused, every job
// is canceled (in-flight cells complete and land in the cache), and
// Shutdown returns once all job goroutines have exited.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	m.draining = true
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
	m.wg.Wait()
}
