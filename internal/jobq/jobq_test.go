package jobq_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"rmalocks/internal/cache"
	"rmalocks/internal/jobq"
	"rmalocks/internal/sweep"
	"rmalocks/internal/workload"
)

func testGrid() sweep.Grid {
	return sweep.Grid{
		Schemes:   []string{workload.SchemeDMCS, workload.SchemeRMARW},
		Workloads: []string{"empty"},
		Profiles:  []string{"uniform", "zipf"},
		Ps:        []int{8, 16},
		Iters:     12,
		FW:        0.2,
		Locks:     4,
	}
}

func waitTerminal(t *testing.T, j *jobq.Job) jobq.Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s did not reach a terminal state", j.ID)
	}
	return j.Status()
}

// TestJobResultMatchesDirectRun: the daemon path (submit → run →
// Result → Encode) must produce the exact bytes of a direct local
// sweep of the same grid.
func TestJobResultMatchesDirectRun(t *testing.T) {
	results, err := sweep.Run(mustCells(t, testGrid()), sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.Encode(sweep.RunFile{Label: "grid", Cells: results})
	if err != nil {
		t.Fatal(err)
	}

	m := jobq.NewManager(jobq.Config{Workers: 4, MaxJobs: 2})
	defer m.Shutdown()
	j, err := m.Submit(testGrid(), "grid")
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st.State != jobq.StateDone {
		t.Fatalf("job state %s (error %q), want done", st.State, st.Error)
	}
	rf, err := m.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sweep.Encode(rf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("job result bytes differ from direct sweep run")
	}
	if rf.Created != "" {
		t.Fatal("job result carries a Created stamp; results must be byte-stable")
	}
}

func mustCells(tb testing.TB, g sweep.Grid) []sweep.Cell {
	tb.Helper()
	cells, err := g.Cells()
	if err != nil {
		tb.Fatal(err)
	}
	return cells
}

// TestJobCacheReuse: resubmitting an identical grid against a shared
// cache resolves every cell without recomputation and yields identical
// result bytes.
func TestJobCacheReuse(t *testing.T) {
	store, _, err := cache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := jobq.NewManager(jobq.Config{Workers: 4, MaxJobs: 1, Cache: cache.NewResultStore(store)})
	defer m.Shutdown()

	j1, err := m.Submit(testGrid(), "grid")
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitTerminal(t, j1)
	if st1.State != jobq.StateDone || st1.Cached != 0 {
		t.Fatalf("cold job: state %s cached %d, want done/0", st1.State, st1.Cached)
	}

	j2, err := m.Submit(testGrid(), "grid")
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitTerminal(t, j2)
	if st2.State != jobq.StateDone || st2.Cached != st2.Cells {
		t.Fatalf("warm job: state %s cached %d/%d, want all cells cached", st2.State, st2.Cached, st2.Cells)
	}

	rf1, _ := m.Result(j1.ID)
	rf2, _ := m.Result(j2.ID)
	b1, _ := sweep.Encode(rf1)
	b2, _ := sweep.Encode(rf2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("cached job result bytes differ from computed job")
	}
}

// gateCache blocks every Get until released — a deterministic way to
// hold a job in the running state.
type gateCache struct {
	release chan struct{}
}

func (g *gateCache) Get(string) (sweep.CellResult, bool) {
	<-g.release
	return sweep.CellResult{}, false
}
func (g *gateCache) Put(string, sweep.CellResult) {}

// TestMaxJobsQueueingAndQueuedCancel: with one job slot the second job
// waits in queued state, and canceling it there never runs a cell.
func TestMaxJobsQueueingAndQueuedCancel(t *testing.T) {
	gate := &gateCache{release: make(chan struct{})}
	m := jobq.NewManager(jobq.Config{Workers: 2, MaxJobs: 1, Cache: gate})

	j1, err := m.Submit(testGrid(), "first")
	if err != nil {
		t.Fatal(err)
	}
	j2, err := m.Submit(testGrid(), "second")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j1.Status().State != jobq.StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if st := j2.Status(); st.State != jobq.StateQueued {
		t.Fatalf("second job state %s, want queued behind MaxJobs=1", st.State)
	}

	j2.Cancel()
	if st := waitTerminal(t, j2); st.State != jobq.StateCanceled || st.Done != 0 {
		t.Fatalf("canceled-while-queued job: state %s done %d, want canceled/0", st.State, st.Done)
	}
	if _, err := m.Result(j2.ID); err == nil {
		t.Fatal("Result succeeded for a canceled job")
	}

	close(gate.release)
	if st := waitTerminal(t, j1); st.State != jobq.StateDone {
		t.Fatalf("first job state %s, want done", st.State)
	}
	m.Shutdown()
}

// cancelOnFirstPut cancels the job the moment its first computed cell
// lands in the cache — from the worker goroutine itself, so with one
// worker exactly one cell computes before the cancel is visible. The
// job arrives over a channel because the cache is built before Submit.
type cancelOnFirstPut struct {
	once  sync.Once
	jobCh chan *jobq.Job
}

func (c *cancelOnFirstPut) Get(string) (sweep.CellResult, bool) { return sweep.CellResult{}, false }
func (c *cancelOnFirstPut) Put(string, sweep.CellResult) {
	c.once.Do(func() { (<-c.jobCh).Cancel() })
}

// TestCancelDrainsInFlightCell: cancel mid-run completes the in-flight
// cell (its Put happened) and stops claiming the rest.
func TestCancelDrainsInFlightCell(t *testing.T) {
	cc := &cancelOnFirstPut{jobCh: make(chan *jobq.Job, 1)}
	m := jobq.NewManager(jobq.Config{Workers: 1, MaxJobs: 1, Cache: cc})
	j, err := m.Submit(testGrid(), "grid")
	if err != nil {
		t.Fatal(err)
	}
	cc.jobCh <- j
	st := waitTerminal(t, j)
	if st.State != jobq.StateCanceled {
		t.Fatalf("state %s, want canceled", st.State)
	}
	if st.Done == 0 {
		t.Fatal("no cell completed; the in-flight cell must drain, not abort")
	}
	if st.Done == st.Cells {
		t.Fatal("every cell completed; cancel did not stop the claim loop")
	}
	m.Shutdown()
}

// TestShutdownRefusesNewJobs: after Shutdown the manager is draining.
func TestShutdownRefusesNewJobs(t *testing.T) {
	m := jobq.NewManager(jobq.Config{Workers: 2, MaxJobs: 1})
	j, err := m.Submit(testGrid(), "grid")
	if err != nil {
		t.Fatal(err)
	}
	m.Shutdown()
	if _, err := m.Submit(testGrid(), "late"); !errors.Is(err, jobq.ErrDraining) {
		t.Fatalf("submit after Shutdown: %v, want ErrDraining", err)
	}
	st := j.Status()
	if st.State != jobq.StateDone && st.State != jobq.StateCanceled {
		t.Fatalf("job left in state %s after Shutdown", st.State)
	}
}

// TestSubmitRejectsMalformedGrid: bad grids fail eagerly, minting no job.
func TestSubmitRejectsMalformedGrid(t *testing.T) {
	m := jobq.NewManager(jobq.Config{})
	defer m.Shutdown()
	g := testGrid()
	g.Schemes = nil
	if _, err := m.Submit(g, "bad"); err == nil {
		t.Fatal("schemes-free grid accepted")
	}
	if n := len(m.Statuses()); n != 0 {
		t.Fatalf("%d jobs registered for a rejected submission", n)
	}
}
