package jobq

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rmalocks/internal/obs"
	"rmalocks/internal/sweep"
)

// maxBodyBytes bounds POST /jobs request bodies — grids are small.
const maxBodyBytes = 1 << 20

// API is the job HTTP surface, mounted on the observability mux:
//
//	POST   /jobs              submit a grid (wire JSON), returns the job
//	GET    /jobs              list job statuses
//	GET    /jobs/{id}         one job's status
//	GET    /jobs/{id}/result  the finished run file (byte-stable JSON)
//	GET    /jobs/{id}/events  NDJSON progress stream until terminal
//	DELETE /jobs/{id}         cancel
//
// Routing is by hand (go.mod predates method/wildcard mux patterns).
type API struct {
	mgr *Manager
}

// NewAPI wraps a manager.
func NewAPI(m *Manager) *API { return &API{mgr: m} }

// Mount registers the job routes on the observability server.
func (a *API) Mount(s *obs.Server) {
	s.Handle("/jobs", http.HandlerFunc(a.handleJobs))
	s.Handle("/jobs/", http.HandlerFunc(a.handleJob))
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}

func (a *API) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		a.submit(w, r)
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(a.mgr.Statuses()) //nolint:errcheck
	default:
		httpError(w, http.StatusMethodNotAllowed, errors.New("use POST to submit, GET to list"))
	}
}

func (a *API) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	g, err := sweep.DecodeGrid(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	j, err := a.mgr.Submit(g, r.URL.Query().Get("label"))
	switch {
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/jobs/"+j.ID)
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(j.Status()) //nolint:errcheck
}

func (a *API) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub := rest, ""
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		id, sub = rest[:i], rest[i+1:]
	}
	j, err := a.mgr.Get(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(j.Status()) //nolint:errcheck
	case sub == "" && r.Method == http.MethodDelete:
		j.Cancel()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(j.Status()) //nolint:errcheck
	case sub == "result" && r.Method == http.MethodGet:
		a.result(w, id)
	case sub == "events" && r.Method == http.MethodGet:
		a.events(w, r, j)
	default:
		httpError(w, http.StatusNotFound, errors.New("jobq: unknown job endpoint"))
	}
}

// result serves the finished run file. The bytes are sweep.Encode
// output with no Created stamp: a pure function of the submitted grid,
// byte-identical across cache states, worker counts, and daemons.
func (a *API) result(w http.ResponseWriter, id string) {
	rf, err := a.mgr.Result(id)
	if err != nil {
		var nd NotDoneError
		code := http.StatusNotFound
		if errors.As(err, &nd) {
			switch nd.State {
			case StateFailed:
				code = http.StatusInternalServerError
			case StateCanceled:
				code = http.StatusGone
			default: // queued, running
				code = http.StatusConflict
			}
		}
		httpError(w, code, err)
		return
	}
	data, err := sweep.Encode(rf)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck
}

// events streams the job's progress as NDJSON until the job reaches a
// terminal state or the client disconnects. Normal completion ends the
// stream from inside the tracker (every cell terminal, final summary
// emitted); the merged done channel covers jobs that never start —
// canceled while queued — so a follower is never left hanging.
func (a *API) events(w http.ResponseWriter, r *http.Request, j *Job) {
	interval := 250 * time.Millisecond
	if ms, err := strconv.Atoi(r.URL.Query().Get("interval_ms")); err == nil && ms > 0 {
		interval = time.Duration(ms) * time.Millisecond
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-r.Context().Done():
		case <-j.Done():
			// Let the tracker emit the final transitions before the
			// stream unblocks on done (cancel paths leave cells
			// non-terminal, so the tracker alone would wait forever).
			time.Sleep(2 * interval)
		}
	}()
	j.Progress().StreamNDJSON(w, interval, done) //nolint:errcheck // client gone
}
