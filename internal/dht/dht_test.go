package dht

import (
	"testing"
	"testing/quick"

	"rmalocks/internal/locks/rmarw"
	"rmalocks/internal/rma"
	"rmalocks/internal/topology"
)

func TestAtomicInsertAndLookupSingleProc(t *testing.T) {
	topo := topology.TwoLevel(1, 2)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 60_000_000_000})
	tb := New(m, 16, 64)
	err := m.Run(func(p *rma.Proc) {
		if p.Rank() != 0 {
			return
		}
		for k := int64(0); k < 40; k++ {
			if !tb.AtomicInsert(p, 0, k*3) {
				t.Errorf("insert %d failed", k*3)
			}
		}
		for k := int64(0); k < 40; k++ {
			if !tb.AtomicLookup(p, 0, k*3) {
				t.Errorf("lookup %d failed", k*3)
			}
			if tb.AtomicLookup(p, 0, k*3+1) {
				t.Errorf("found missing key %d", k*3+1)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Count(m, 0); got != 40 {
		t.Errorf("Count=%d want 40", got)
	}
}

func TestAtomicInsertConcurrentNoLostKeys(t *testing.T) {
	// All processes hammer rank 0's volume with distinct keys; every key
	// must be present afterwards (CAS insert loses nothing).
	topo := topology.TwoLevel(2, 4)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 120_000_000_000})
	const perProc = 20
	tb := New(m, 16, topo.Procs()*perProc) // tiny table: force collisions
	err := m.Run(func(p *rma.Proc) {
		for i := 0; i < perProc; i++ {
			key := int64(p.Rank()*perProc + i)
			if !tb.AtomicInsert(p, 0, key) {
				t.Errorf("rank %d: insert %d overflowed", p.Rank(), key)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < int64(topo.Procs()*perProc); k++ {
		if !tb.Contains(m, 0, k) {
			t.Errorf("key %d lost", k)
		}
	}
	if tb.Overflows != 0 {
		t.Errorf("unexpected overflows: %d", tb.Overflows)
	}
}

func TestAtomicInsertOverflowDetected(t *testing.T) {
	topo := topology.TwoLevel(1, 2)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 60_000_000_000})
	tb := New(m, 1, 3) // capacity: 1 slot + 3 cells = 4 keys
	var ok, fail int
	err := m.Run(func(p *rma.Proc) {
		if p.Rank() != 0 {
			return
		}
		for k := int64(0); k < 10; k++ {
			if tb.AtomicInsert(p, 0, k) {
				ok++
			} else {
				fail++
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok != 4 || fail != 6 {
		t.Errorf("ok=%d fail=%d want 4/6", ok, fail)
	}
	if tb.Overflows != 6 {
		t.Errorf("Overflows=%d want 6", tb.Overflows)
	}
}

func TestPlainOpsUnderRWLock(t *testing.T) {
	// Plain (lock-protected) ops with a mixed workload: all inserted keys
	// must be present, and lookups under read lock must never crash or
	// see torn chains.
	topo := topology.TwoLevel(2, 4)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 600_000_000_000})
	const perProc = 15
	tb := New(m, 8, topo.Procs()*perProc)
	lk := rmarw.NewConfig(m, rmarw.Config{TR: 64, TL: []int64{0, 4, 4}})
	err := m.Run(func(p *rma.Proc) {
		for i := 0; i < perProc; i++ {
			key := int64(p.Rank()*perProc + i)
			lk.AcquireWrite(p)
			if !tb.PlainInsert(p, 0, key) {
				t.Errorf("insert %d failed", key)
			}
			lk.ReleaseWrite(p)
			lk.AcquireRead(p)
			if !tb.PlainLookup(p, 0, key) {
				t.Errorf("own key %d not found", key)
			}
			lk.ReleaseRead(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < int64(topo.Procs()*perProc); k++ {
		if !tb.Contains(m, 0, k) {
			t.Errorf("key %d lost", k)
		}
	}
}

func TestVolumesAreIndependent(t *testing.T) {
	topo := topology.TwoLevel(2, 2)
	m := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 60_000_000_000})
	tb := New(m, 8, 32)
	err := m.Run(func(p *rma.Proc) {
		// Everyone inserts its rank into its own volume.
		if !tb.AtomicInsert(p, p.Rank(), int64(p.Rank()+100)) {
			t.Errorf("rank %d insert failed", p.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < topo.Procs(); r++ {
		for q := 0; q < topo.Procs(); q++ {
			want := r == q
			if got := tb.Contains(m, r, int64(q+100)); got != want {
				t.Errorf("volume %d key %d: got %v want %v", r, q+100, got, want)
			}
		}
	}
}

func TestSlotHashProperties(t *testing.T) {
	tb := &Table{slots: 64}
	f := func(k uint32) bool {
		s := tb.Slot(int64(k))
		return s >= 0 && s < 64 && s == tb.Slot(int64(k)) // in range, stable
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegativeKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative key did not panic")
		}
	}()
	checkKey(-5)
}

func TestBadGeometryPanics(t *testing.T) {
	topo := topology.TwoLevel(1, 1)
	m := rma.NewMachine(topo)
	defer func() {
		if recover() == nil {
			t.Error("bad geometry did not panic")
		}
	}()
	New(m, 0, 10)
}
