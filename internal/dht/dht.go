// Package dht implements the distributed hashtable of the paper's §5.3:
// the irregular-workload case study representing key-value stores and
// graph processing.
//
// The table stores 64-bit non-negative integers and consists of per-process
// parts called local volumes. Each local volume is a fixed-size slot table
// plus a fixed-size overflow heap for hash collisions, both in the owning
// process's RMA window. Inserts use atomic CASes: the slot CAS wins the
// slot, the loser allocates an overflow cell by atomically bumping the
// volume's next-free pointer and appends it to the slot's chain with an
// atomic swap of the last-element pointer.
//
// Two operation families are provided:
//
//   - Atomic* (the paper's foMPI-A): lock-free operations built on
//     CAS/FAO, safe under full concurrency;
//   - Plain* (used under an external RW lock): the same structure accessed
//     with cheap Put/Get only, relying on the lock for exclusion.
package dht

import (
	"fmt"
	"sync/atomic"

	"rmalocks/internal/rma"
)

// empty marks an unused slot or cell; keys must be non-negative.
const empty = rma.Nil

// Table is a distributed hashtable handle; the actual storage lives in the
// machine's RMA windows, one volume per rank.
type Table struct {
	slots   int // table slots per volume
	cells   int // overflow heap cells per volume
	valOff  int // slots words: slot values
	nxtOff  int // slots words: heap index of first overflow cell (∅ if none)
	lastOff int // slots words: heap index of last chain cell (∅ if none)
	heapVal int // cells words: overflow cell values
	heapNxt int // cells words: overflow cell chain links
	freeOff int // 1 word: next free heap cell

	// Overflows counts inserts rejected because a volume's heap was full.
	Overflows int64
}

// New allocates a table with the given per-volume geometry on machine m.
func New(m *rma.Machine, slots, cells int) *Table {
	if slots <= 0 || cells <= 0 {
		panic(fmt.Sprintf("dht: bad geometry %dx%d", slots, cells))
	}
	t := &Table{
		slots:   slots,
		cells:   cells,
		valOff:  m.Alloc(slots),
		nxtOff:  m.Alloc(slots),
		lastOff: m.Alloc(slots),
		heapVal: m.Alloc(cells),
		heapNxt: m.Alloc(cells),
		freeOff: m.Alloc(1),
	}
	m.OnInit(func(m *rma.Machine) {
		for r := 0; r < m.Procs(); r++ {
			for i := 0; i < slots; i++ {
				m.Set(r, t.valOff+i, empty)
				m.Set(r, t.nxtOff+i, rma.Nil)
				m.Set(r, t.lastOff+i, rma.Nil)
			}
			for i := 0; i < cells; i++ {
				m.Set(r, t.heapVal+i, empty)
				m.Set(r, t.heapNxt+i, rma.Nil)
			}
			m.Set(r, t.freeOff, 0)
		}
		t.Overflows = 0
	})
	return t
}

// Slots returns the number of table slots per volume.
func (t *Table) Slots() int { return t.slots }

// Cells returns the number of overflow cells per volume.
func (t *Table) Cells() int { return t.cells }

// Slot returns the home slot of key within a volume (Fibonacci hashing).
func (t *Table) Slot(key int64) int {
	h := uint64(key) * 0x9E3779B97F4A7C15
	return int(h % uint64(t.slots))
}

// checkKey rejects negative keys, which collide with the empty sentinel.
func checkKey(key int64) {
	if key < 0 {
		panic(fmt.Sprintf("dht: negative key %d", key))
	}
}

// ---------------------------------------------------------------------
// Atomic operations (foMPI-A): safe under full concurrency.
// ---------------------------------------------------------------------

// AtomicInsert adds key to the volume of rank vol using CAS/FAO only.
// It returns false if the volume's overflow heap is exhausted.
func (t *Table) AtomicInsert(p *rma.Proc, vol int, key int64) bool {
	checkKey(key)
	s := t.Slot(key)
	// Try to win the slot itself.
	prev := p.CAS(key, empty, vol, t.valOff+s)
	p.Flush(vol)
	if prev == empty {
		return true
	}
	// Collision: allocate an overflow cell.
	idx := p.FAO(1, vol, t.freeOff, rma.OpSum)
	p.Flush(vol)
	if idx >= int64(t.cells) {
		atomic.AddInt64(&t.Overflows, 1)
		return false
	}
	p.Put(key, vol, t.heapVal+int(idx))
	p.Put(rma.Nil, vol, t.heapNxt+int(idx))
	p.Flush(vol)
	// Swing the last-element pointer to us and link behind the previous
	// tail (the paper's "second CAS"; an atomic swap is equivalent here).
	last := p.FAO(idx, vol, t.lastOff+s, rma.OpReplace)
	p.Flush(vol)
	if last == rma.Nil {
		p.Put(idx, vol, t.nxtOff+s)
	} else {
		p.Put(idx, vol, t.heapNxt+int(last))
	}
	p.Flush(vol)
	return true
}

// AtomicLookup reports whether key is present in vol's volume, reading the
// chain with individually atomic Gets.
func (t *Table) AtomicLookup(p *rma.Proc, vol int, key int64) bool {
	checkKey(key)
	s := t.Slot(key)
	v := p.Get(vol, t.valOff+s)
	p.Flush(vol)
	if v == key {
		return true
	}
	if v == empty {
		return false
	}
	cur := p.Get(vol, t.nxtOff+s)
	p.Flush(vol)
	for cur != rma.Nil {
		cv := p.Get(vol, t.heapVal+int(cur))
		p.Flush(vol)
		if cv == key {
			return true
		}
		cur = p.Get(vol, t.heapNxt+int(cur))
		p.Flush(vol)
	}
	return false
}

// ---------------------------------------------------------------------
// Plain operations: must be called under an external lock (write lock for
// PlainInsert, read or write lock for PlainLookup).
// ---------------------------------------------------------------------

// PlainInsert adds key to vol's volume using only Put/Get; the caller must
// hold exclusive access. Returns false on overflow.
func (t *Table) PlainInsert(p *rma.Proc, vol int, key int64) bool {
	checkKey(key)
	s := t.Slot(key)
	v := p.Get(vol, t.valOff+s)
	p.Flush(vol)
	if v == empty {
		p.Put(key, vol, t.valOff+s)
		p.Flush(vol)
		return true
	}
	idx := p.Get(vol, t.freeOff)
	p.Flush(vol)
	if idx >= int64(t.cells) {
		atomic.AddInt64(&t.Overflows, 1)
		return false
	}
	p.Put(idx+1, vol, t.freeOff)
	p.Put(key, vol, t.heapVal+int(idx))
	p.Put(rma.Nil, vol, t.heapNxt+int(idx))
	p.Flush(vol)
	last := p.Get(vol, t.lastOff+s)
	p.Flush(vol)
	p.Put(idx, vol, t.lastOff+s)
	if last == rma.Nil {
		p.Put(idx, vol, t.nxtOff+s)
	} else {
		p.Put(idx, vol, t.heapNxt+int(last))
	}
	p.Flush(vol)
	return true
}

// PlainLookup reports whether key is present; the caller must hold at
// least shared access.
func (t *Table) PlainLookup(p *rma.Proc, vol int, key int64) bool {
	return t.AtomicLookup(p, vol, key) // same Get sequence
}

// ---------------------------------------------------------------------
// Inspection helpers (after Machine.Run; not simulated operations).
// ---------------------------------------------------------------------

// Count returns the number of elements stored in vol's volume.
func (t *Table) Count(m *rma.Machine, vol int) int {
	n := 0
	for i := 0; i < t.slots; i++ {
		if m.At(vol, t.valOff+i) != empty {
			n++
		}
	}
	used := m.At(vol, t.freeOff)
	if used > int64(t.cells) {
		used = int64(t.cells)
	}
	for i := int64(0); i < used; i++ {
		if m.At(vol, t.heapVal+int(i)) != empty {
			n++
		}
	}
	return n
}

// Contains checks membership directly in memory (after a run).
func (t *Table) Contains(m *rma.Machine, vol int, key int64) bool {
	s := t.Slot(key)
	if m.At(vol, t.valOff+s) == key {
		return true
	}
	cur := m.At(vol, t.nxtOff+s)
	for cur != rma.Nil {
		if m.At(vol, t.heapVal+int(cur)) == key {
			return true
		}
		cur = m.At(vol, t.heapNxt+int(cur))
	}
	return false
}
