package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Meta carries run metadata embedded in exported traces so a viewer
// (cmd/traceview) can rebuild the machine topology.
type Meta struct {
	// Label describes the run (grid cell key, seed, ...).
	Label string
	// P is the process count; PPN the processes per node.
	P   int
	PPN int
}

// chromeEvent is one Chrome trace-event record (the JSON array format
// Perfetto and chrome://tracing load). Field set kept to the documented
// minimum: name/cat/ph/ts/pid/tid plus dur for complete events and s
// for instant scope.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // µs
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the object form of the trace-event format.
type chromeFile struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// chromePid is the single process id under which all ranks appear as
// threads.
const chromePid = 1

// us converts a virtual-ns clock to the trace-event µs timescale.
func us(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChrome exports a canonical event stream as Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing). Ranks map to threads
// of one process; lock waits and holds become complete ("X") spans —
// named after the lock id, with the raw acquire clock in args.c so
// downstream tools keep full precision — and scheduler/RMA events
// become instants. Output is deterministic: map keys are sorted by
// encoding/json and events are emitted in canonical order.
func WriteChrome(w io.Writer, events []Event, meta Meta) error {
	f := chromeFile{
		TraceEvents:     make([]chromeEvent, 0, len(events)+1),
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"schema": "rmalocks-trace/v1",
			"label":  meta.Label,
			"p":      meta.P,
			"ppn":    meta.PPN,
		},
	}
	f.TraceEvents = append(f.TraceEvents, chromeEvent{
		Name: "process_name", Cat: "__metadata", Ph: "M", Pid: chromePid, Tid: 0,
		Args: map[string]any{"name": "ranks"},
	})

	type lockKey struct {
		rank int32
		lock int64
	}
	waitStart := map[lockKey]int64{} // EvAcqStart clock
	holdStart := map[lockKey]Event{} // EvAcquired event
	mode := func(e Event) string {
		if e.Arg1 != 0 {
			return "w"
		}
		return "r"
	}
	span := func(name, cat string, e Event, from, to int64, args map[string]any) {
		d := us(to - from)
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: name, Cat: cat, Ph: "X", Ts: us(from), Dur: &d,
			Pid: chromePid, Tid: int(e.Rank), Args: args,
		})
	}
	instant := func(name, cat string, e Event, args map[string]any) {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: name, Cat: cat, Ph: "i", Ts: us(e.Clock),
			Pid: chromePid, Tid: int(e.Rank), S: "t", Args: args,
		})
	}

	for _, e := range events {
		switch e.Kind {
		case EvAcqStart:
			waitStart[lockKey{e.Rank, e.Arg0}] = e.Clock
		case EvAcquired:
			k := lockKey{e.Rank, e.Arg0}
			if start, ok := waitStart[k]; ok {
				delete(waitStart, k)
				span(fmt.Sprintf("wait L%d", e.Arg0), "wait", e, start, e.Clock,
					map[string]any{"lock": e.Arg0, "mode": mode(e), "c": e.Clock})
			}
			holdStart[k] = e
		case EvRelease:
			k := lockKey{e.Rank, e.Arg0}
			if acq, ok := holdStart[k]; ok {
				delete(holdStart, k)
				span(fmt.Sprintf("hold L%d", e.Arg0), "lock", e, acq.Clock, e.Clock,
					map[string]any{"lock": e.Arg0, "mode": mode(e), "c": acq.Clock, "elem": acq.Arg2})
			}
		case EvAcqTimeout:
			k := lockKey{e.Rank, e.Arg0}
			if start, ok := waitStart[k]; ok {
				delete(waitStart, k)
				span(fmt.Sprintf("wait-timeout L%d", e.Arg0), "timeout", e, start, e.Clock,
					map[string]any{"lock": e.Arg0, "mode": mode(e), "c": e.Clock})
			}
		case EvOp:
			name := "op"
			if e.Arg0 >= 0 && int(e.Arg0) < len(OpNames) {
				name = OpNames[e.Arg0]
			}
			instant(name, "rma", e, map[string]any{"target": e.Arg1, "land": e.Arg2})
		case EvDispatch, EvBlock, EvWake, EvBarrier:
			instant(e.Kind.String(), "sched", e, map[string]any{"a": e.Arg0})
		case EvAdvance, EvFlush:
			instant(e.Kind.String(), "charge", e, map[string]any{"d": e.Arg0})
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// WriteCSV exports a canonical event stream as CSV with one row per
// event: clock,rank,seq,kind,arg0,arg1,arg2. The output is the
// byte-exact canonical encoding the differential suite compares.
func WriteCSV(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "clock,rank,seq,kind,arg0,arg1,arg2"); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%s,%d,%d,%d\n",
			e.Clock, e.Rank, e.Seq, e.Kind, e.Arg0, e.Arg1, e.Arg2); err != nil {
			return err
		}
	}
	return bw.Flush()
}
