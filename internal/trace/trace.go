// Package trace is the deterministic event-tracing subsystem: a
// near-zero-overhead capture layer (Sink) that the scheduler
// (internal/sim and its refsim reference), the RMA machine
// (internal/rma) and every lock implementation (internal/locks/...)
// emit fixed-size events into, plus the analyses, exporters and replay
// validation built on the merged stream.
//
// # Capture model
//
// Every simulated rank owns one append buffer (Buf). The simulator runs
// exactly one process at a time (token ownership, see internal/sim), and
// every emission site writes either to the running rank's own buffer or
// — for dispatch/wake events — to a parked rank's buffer strictly before
// the token handoff that resumes it, so capture needs no locks and no
// atomics: an emission is a slice append plus a sequence increment. The
// happens-before edges of the scheduler's mutex + wake channels make the
// whole capture race-clean (the differential suite runs traced cells
// under -race).
//
// Events carry the emitting rank's virtual clock; the canonical merged
// order is (Clock, Rank, Seq). Because the simulation itself is a
// deterministic function of the seed, so is the merged stream: two runs
// of the same spec produce byte-identical traces, and the differential
// suite requires the semantic classes (ClassSched | ClassOp | ClassLock)
// to be byte-identical across scheduler engines and charge-coalescing
// modes. The ClassCharge diagnostic class intentionally differs between
// those combinations — it records exactly where virtual time was
// published, which is the thing coalescing changes.
//
// # Overhead guard
//
// Classes are filtered at emission time: every instrumentation site
// holds a pre-resolved *Buf that is nil unless tracing is enabled for
// its class, so the disabled path costs one predictable nil check (and
// the scheduler's lock-free Advance fast path keeps its ~2ns budget —
// BenchmarkAdvanceUncontended vs BenchmarkAdvanceTraced in internal/sim
// pin both sides).
package trace

import (
	"fmt"
	"sort"
)

// Kind identifies one event type.
type Kind uint8

const (
	// EvDispatch: the execution token was handed to Rank.
	// Arg0 = previous holder's rank (-1 for the initial dispatch).
	EvDispatch Kind = iota
	// EvBlock: Rank blocked (SpinUntil wait or scheduler Block).
	EvBlock
	// EvWake: blocked Rank was made runnable again; Clock is its wake-up
	// clock. Arg0 = the waking rank.
	EvWake
	// EvBarrier: Rank arrived at a barrier (Clock = arrival time).
	EvBarrier
	// EvOp: Rank issued one RMA operation. Arg0 = operation code (OpPut
	// ... OpFlush), Arg1 = target rank, Arg2 = landing clock at the
	// target (0 for flushes).
	EvOp
	// EvAcqStart: Rank started acquiring a lock. Arg0 = lock id,
	// Arg1 = mode (0 read, 1 write).
	EvAcqStart
	// EvAcquired: Rank entered the critical section. Arg0 = lock id,
	// Arg1 = mode, Arg2 = the rank's leaf machine element.
	EvAcquired
	// EvRelease: Rank started releasing a lock it holds. Arg0 = lock id,
	// Arg1 = mode.
	EvRelease
	// EvAdvance: Rank published virtual time to the scheduler.
	// Arg0 = the published duration. Engine- and coalescing-dependent
	// by design (ClassCharge).
	EvAdvance
	// EvFlush: Rank flushed coalesced-but-unpublished virtual time at a
	// coalescing boundary. Arg0 = the flushed amount (ClassCharge).
	EvFlush
	// EvAcqTimeout: Rank's bounded lock acquire gave up at its deadline,
	// resolving the pending EvAcqStart without an acquisition. Arg0 =
	// lock id, Arg1 = mode (0 read, 1 write).
	EvAcqTimeout

	numKinds
)

var kindNames = [numKinds]string{
	"dispatch", "block", "wake", "barrier",
	"op", "acq-start", "acquired", "release",
	"advance", "flush", "acq-timeout",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Operation codes carried in EvOp's Arg0. The mapping from internal/rma
// operation kinds is fixed by rma's emission table (see rma.Proc).
const (
	OpPut int64 = iota
	OpGet
	OpAcc
	OpFAO
	OpCAS
	OpFlush
)

// OpNames maps EvOp Arg0 codes to display names.
var OpNames = [...]string{"put", "get", "acc", "fao", "cas", "flush"}

// Class is a bitmask of event classes, filtered at emission time: a Buf
// for a masked-out class is nil, so disabled sites cost one nil check
// and masked classes never consume sequence numbers (which keeps the
// enabled classes' streams byte-identical whatever else is masked).
type Class uint8

const (
	// ClassSched covers scheduler events: dispatch, block, wake, barrier.
	ClassSched Class = 1 << iota
	// ClassOp covers RMA operation issue/land events.
	ClassOp
	// ClassLock covers lock acquire-start/acquired/release events.
	ClassLock
	// ClassCharge covers virtual-time publication events (advance,
	// coalesce flush). Engine- and coalescing-dependent by design;
	// excluded from differential comparisons.
	ClassCharge
)

// ClassSemantic is the engine- and coalescing-independent event set: the
// differential suite requires it byte-identical across all engine ×
// coalescing combinations.
const ClassSemantic = ClassSched | ClassOp | ClassLock

// ClassAll enables every class including the ClassCharge diagnostics.
const ClassAll = ClassSemantic | ClassCharge

// KindClass returns the class an event kind belongs to.
func KindClass(k Kind) Class {
	switch k {
	case EvDispatch, EvBlock, EvWake, EvBarrier:
		return ClassSched
	case EvOp:
		return ClassOp
	case EvAcqStart, EvAcquired, EvRelease, EvAcqTimeout:
		return ClassLock
	default:
		return ClassCharge
	}
}

// Event is one fixed-size trace record. The meaning of Arg0..Arg2
// depends on Kind (see the Kind constants).
type Event struct {
	// Clock is the emitting rank's virtual time in ns. For EvWake it is
	// the woken rank's wake-up clock; for EvDispatch the dispatched
	// rank's clock.
	Clock int64
	Arg0  int64
	Arg1  int64
	Arg2  int64
	// Rank is the rank whose stream the event belongs to.
	Rank int32
	// Seq is the rank-local emission index; (Clock, Rank, Seq) is the
	// canonical total order.
	Seq  uint32
	Kind Kind
}

func (e Event) String() string {
	return fmt.Sprintf("%d r%d#%d %s %d %d %d", e.Clock, e.Rank, e.Seq, e.Kind, e.Arg0, e.Arg1, e.Arg2)
}

// Buf is one rank's append buffer. Emit must only be called while the
// simulation guarantees exclusive access to the rank's stream (the
// running process for its own buffer; the token holder for a parked
// rank's buffer, strictly before the handoff).
type Buf struct {
	events []Event
	rank   int32
	seq    uint32
}

// Emit appends one event at the given virtual clock.
func (b *Buf) Emit(k Kind, clock, a0, a1, a2 int64) {
	b.events = append(b.events, Event{Clock: clock, Arg0: a0, Arg1: a1, Arg2: a2, Rank: b.rank, Seq: b.seq, Kind: k})
	b.seq++
}

// Len returns the number of buffered events.
func (b *Buf) Len() int { return len(b.events) }

// Reset drops the buffered events but keeps counting Seq, so a
// bounded-memory capture (e.g. a long benchmark) can truncate
// periodically without ever reusing a sequence number.
func (b *Buf) Reset() { b.events = b.events[:0] }

// Sink owns the per-rank buffers of one simulation run. Create it with
// New, hand it to rma.Config.Trace / workload.Spec.Trace, and read the
// merged stream with Events after the run. A Sink must not be shared by
// concurrent runs (parallel sweep cells each build their own); starting
// a new run on the same machine resets it.
type Sink struct {
	mask Class
	bufs []Buf
	// merged caches the canonical stream; valid while mergedVer still
	// matches version() (the sum of per-rank sequence counters, which
	// is monotonic even across Buf.Reset truncations).
	merged    []Event
	mergedVer uint64
}

// New creates a sink capturing the given event classes; a zero mask
// selects ClassSemantic.
func New(mask Class) *Sink {
	if mask == 0 {
		mask = ClassSemantic
	}
	return &Sink{mask: mask}
}

// Mask returns the enabled event classes.
func (s *Sink) Mask() Class { return s.mask }

// Has reports whether every class in c is enabled.
func (s *Sink) Has(c Class) bool { return s.mask&c == c }

// Start sizes the sink for procs ranks and clears all buffers; the
// scheduler engines call it when a run begins.
func (s *Sink) Start(procs int) {
	if cap(s.bufs) < procs {
		s.bufs = make([]Buf, procs)
	}
	s.bufs = s.bufs[:procs]
	for i := range s.bufs {
		s.bufs[i].rank = int32(i)
		s.bufs[i].seq = 0
		s.bufs[i].events = s.bufs[i].events[:0]
	}
	s.merged, s.mergedVer = nil, 0
}

// Ranks returns the number of per-rank buffers (0 before Start).
func (s *Sink) Ranks() int { return len(s.bufs) }

// Buf returns rank's buffer if class is enabled, else nil.
// Instrumentation sites resolve their class-specific buffer once and
// guard each emission with a nil check.
func (s *Sink) Buf(rank int, class Class) *Buf {
	if s == nil || s.mask&class == 0 {
		return nil
	}
	return &s.bufs[rank]
}

// Len returns the total number of captured events.
func (s *Sink) Len() int {
	n := 0
	for i := range s.bufs {
		n += len(s.bufs[i].events)
	}
	return n
}

// RankEvents returns rank's raw stream (emission order).
func (s *Sink) RankEvents(rank int) []Event { return s.bufs[rank].events }

// Events returns every captured event merged into the canonical
// (Clock, Rank, Seq) order. The key is unique per event (Seq is
// rank-local and never reused), so the order is total and — because the
// simulation is deterministic — byte-identical across runs of the same
// spec. The merge is cached while no further events arrive (versioned
// by the monotonic per-rank sequence counters), so analyses and
// exporters reading the same finished run share one sort. Callers must
// not mutate the returned slice.
func (s *Sink) Events() []Event {
	if s.merged != nil && s.mergedVer == s.version() {
		return s.merged
	}
	out := make([]Event, 0, s.Len())
	for i := range s.bufs {
		out = append(out, s.bufs[i].events...)
	}
	SortCanonical(out)
	s.merged, s.mergedVer = out, s.version()
	return out
}

// version sums the per-rank sequence counters: a value that strictly
// increases with every emission, even across Buf.Reset truncations.
func (s *Sink) version() uint64 {
	var v uint64
	for i := range s.bufs {
		v += uint64(s.bufs[i].seq)
	}
	return v
}

// SortCanonical sorts events into the canonical (Clock, Rank, Seq)
// order in place.
func SortCanonical(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Clock != b.Clock {
			return a.Clock < b.Clock
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		return a.Seq < b.Seq
	})
}

// Filter returns the events whose kind belongs to one of the classes in
// mask, preserving order.
func Filter(events []Event, mask Class) []Event {
	out := make([]Event, 0, len(events))
	for _, e := range events {
		if mask&KindClass(e.Kind) != 0 {
			out = append(out, e)
		}
	}
	return out
}
