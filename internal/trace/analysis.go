package trace

import (
	"rmalocks/internal/stats"
)

// Acquisitions counts EvAcquired events per rank over ranks 0..n-1.
func Acquisitions(events []Event, n int) []int64 {
	counts := make([]int64, n)
	for _, e := range events {
		if e.Kind == EvAcquired && int(e.Rank) < n {
			counts[e.Rank]++
		}
	}
	return counts
}

// Jain returns the Jain fairness index (Σx)² / (n·Σx²) over the given
// per-rank counts: 1.0 means perfectly even, 1/n means one rank got
// everything. Returns 0 for an empty or all-zero sample.
func Jain(counts []int64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var sum, sq float64
	for _, c := range counts {
		x := float64(c)
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(counts)) * sq)
}

// LocalityHist builds the handoff-locality histogram: for every pair of
// consecutive EvAcquired events of the same lock (in the given order,
// which must be canonical), it measures dist(previous holder, next
// holder) and counts it in the returned slice, indexed 0..maxDist.
// Distance 0 is a re-acquire by the same rank; on the paper's two-level
// machines distance 1 is an intra-node handoff and distance 2 crosses
// nodes. This is the measurable form of the paper's locality claim:
// RMA-MCS's T_L thresholds should shift mass toward low distances
// relative to the FIFO D-MCS queue.
func LocalityHist(events []Event, dist func(a, b int) int, maxDist int) []int64 {
	hist := make([]int64, maxDist+1)
	last := map[int64]int32{} // lock id -> previous holder rank
	for _, e := range events {
		if e.Kind != EvAcquired {
			continue
		}
		if prev, ok := last[e.Arg0]; ok {
			d := dist(int(prev), int(e.Rank))
			if d >= 0 && d <= maxDist {
				hist[d]++
			}
		}
		last[e.Arg0] = e.Rank
	}
	return hist
}

// FractionAtMost returns the fraction of histogram mass at distances
// <= cutoff (e.g. cutoff 1 on a two-level machine = the intra-element
// handoff fraction). Returns 0 for an empty histogram.
func FractionAtMost(hist []int64, cutoff int) float64 {
	var near, total int64
	for d, c := range hist {
		total += c
		if d <= cutoff {
			near += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(near) / float64(total)
}

// DepthPoint is one step of the wait-queue depth series: Depth waiters
// are pending lock acquisitions from Clock onward.
type DepthPoint struct {
	Clock int64
	Depth int
}

// DepthSeries derives the aggregate wait-queue depth over time from
// EvAcqStart (+1) and EvAcquired (-1) events, which must be in
// canonical order. Consecutive steps at the same clock collapse into
// the last value.
func DepthSeries(events []Event) []DepthPoint {
	var out []DepthPoint
	depth := 0
	for _, e := range events {
		var d int
		switch e.Kind {
		case EvAcqStart:
			d = 1
		case EvAcquired:
			d = -1
		default:
			continue
		}
		depth += d
		if n := len(out); n > 0 && out[n-1].Clock == e.Clock {
			out[n-1].Depth = depth
			continue
		}
		out = append(out, DepthPoint{Clock: e.Clock, Depth: depth})
	}
	return out
}

// MaxDepth returns the maximum depth of a series (0 when empty).
func MaxDepth(series []DepthPoint) int {
	max := 0
	for _, p := range series {
		if p.Depth > max {
			max = p.Depth
		}
	}
	return max
}

// WaitTimes pairs each EvAcquired with the rank's pending EvAcqStart of
// the same lock and returns the per-rank acquire waits in µs, indexed
// by rank over 0..n-1. Unmatched events are skipped (e.g. a stream
// filtered to the measured phase may open with an Acquired whose start
// fell before the cut).
func WaitTimes(events []Event, n int) [][]float64 {
	waits := make([][]float64, n)
	type key struct {
		rank int32
		lock int64
	}
	pending := map[key]int64{}
	for _, e := range events {
		switch e.Kind {
		case EvAcqStart:
			pending[key{e.Rank, e.Arg0}] = e.Clock
		case EvAcquired:
			k := key{e.Rank, e.Arg0}
			if start, ok := pending[k]; ok {
				delete(pending, k)
				if int(e.Rank) < n {
					waits[e.Rank] = append(waits[e.Rank], float64(e.Clock-start)/1e3)
				}
			}
		}
	}
	return waits
}

// RankLatency summarizes one rank's acquire-wait distribution.
type RankLatency struct {
	Rank int
	Wait stats.Summary // µs
}

// Analysis is the one-stop summary of a merged event stream.
type Analysis struct {
	// Ranks is the machine size the analysis ran over.
	Ranks int
	// Events is the number of analyzed events.
	Events int
	// Acquired[r] counts rank r's lock acquisitions.
	Acquired []int64
	// Fairness is the Jain index over Acquired.
	Fairness float64
	// Locality is the handoff-distance histogram (index = distance).
	Locality []int64
	// IntraFrac is the fraction of handoffs at distance <= maxDist-1
	// (intra-element on a two-level machine).
	IntraFrac float64
	// MaxWaitDepth is the peak number of simultaneous waiters.
	MaxWaitDepth int
	// Wait summarizes acquire waits over all ranks (µs); PerRank splits
	// it by rank (tail-latency inspection).
	Wait    stats.Summary
	PerRank []RankLatency
	// Ops counts RMA operations by code (index = OpPut..OpFlush).
	Ops []int64
}

// Summarize computes the full Analysis of a canonical event stream over
// a machine of n ranks with the given topology distance function and
// maximum distance.
func Summarize(events []Event, n int, dist func(a, b int) int, maxDist int) Analysis {
	a := Analysis{
		Ranks:    n,
		Events:   len(events),
		Acquired: Acquisitions(events, n),
		Locality: LocalityHist(events, dist, maxDist),
		Ops:      make([]int64, len(OpNames)),
	}
	a.Fairness = Jain(a.Acquired)
	cutoff := maxDist - 1
	if cutoff < 0 {
		cutoff = 0
	}
	a.IntraFrac = FractionAtMost(a.Locality, cutoff)
	a.MaxWaitDepth = MaxDepth(DepthSeries(events))
	waits := WaitTimes(events, n)
	var all []float64
	for r, ws := range waits {
		if len(ws) == 0 {
			continue
		}
		all = append(all, ws...)
		a.PerRank = append(a.PerRank, RankLatency{Rank: r, Wait: stats.Summarize(ws)})
	}
	a.Wait = stats.Summarize(all)
	for _, e := range events {
		if e.Kind == EvOp && e.Arg0 >= 0 && int(e.Arg0) < len(a.Ops) {
			a.Ops[e.Arg0]++
		}
	}
	return a
}
