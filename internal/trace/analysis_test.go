package trace

import (
	"math"
	"strings"
	"testing"
)

func TestJain(t *testing.T) {
	cases := []struct {
		counts []int64
		want   float64
	}{
		{nil, 0},
		{[]int64{0, 0}, 0},
		{[]int64{5, 5, 5, 5}, 1},
		{[]int64{10, 0, 0, 0}, 0.25}, // one rank hogs: 1/n
		{[]int64{4, 2}, (6.0 * 6.0) / (2.0 * 20.0)},
	}
	for _, c := range cases {
		if got := Jain(c.counts); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jain(%v) = %v, want %v", c.counts, got, c.want)
		}
	}
}

// lockEvents builds a canonical acquired-only stream handing lock 0
// across the given ranks in order.
func lockEvents(ranks ...int32) []Event {
	var ev []Event
	for i, r := range ranks {
		ev = append(ev, Event{Clock: int64(10 * (i + 1)), Rank: r, Seq: uint32(i), Kind: EvAcquired, Arg1: 1})
	}
	return ev
}

func TestLocalityHist(t *testing.T) {
	// Distance: same rank 0, same parity 1, else 2 (a toy two-level map).
	dist := func(a, b int) int {
		switch {
		case a == b:
			return 0
		case a%2 == b%2:
			return 1
		default:
			return 2
		}
	}
	ev := lockEvents(0, 0, 2, 1, 3)
	hist := LocalityHist(ev, dist, 2)
	// handoffs: 0→0 (d0), 0→2 (d1), 2→1 (d2), 1→3 (d1)
	want := []int64{1, 2, 1}
	for d := range want {
		if hist[d] != want[d] {
			t.Fatalf("hist = %v, want %v", hist, want)
		}
	}
	if f := FractionAtMost(hist, 1); math.Abs(f-0.75) > 1e-12 {
		t.Fatalf("FractionAtMost(1) = %v, want 0.75", f)
	}
	// Two locks interleaved must chain independently.
	ev2 := []Event{
		{Clock: 1, Rank: 0, Kind: EvAcquired, Arg0: 0},
		{Clock: 2, Rank: 1, Kind: EvAcquired, Arg0: 1},
		{Clock: 3, Rank: 0, Seq: 1, Kind: EvAcquired, Arg0: 0},
	}
	hist2 := LocalityHist(ev2, dist, 2)
	if hist2[0] != 1 || hist2[1] != 0 || hist2[2] != 0 {
		t.Fatalf("per-lock chaining broken: %v", hist2)
	}
}

func TestDepthSeriesAndWaits(t *testing.T) {
	ev := []Event{
		{Clock: 10, Rank: 0, Seq: 0, Kind: EvAcqStart, Arg0: 0},
		{Clock: 12, Rank: 1, Seq: 0, Kind: EvAcqStart, Arg0: 0},
		{Clock: 20, Rank: 0, Seq: 1, Kind: EvAcquired, Arg0: 0},
		{Clock: 40, Rank: 1, Seq: 1, Kind: EvAcquired, Arg0: 0},
	}
	series := DepthSeries(ev)
	if MaxDepth(series) != 2 {
		t.Fatalf("max depth = %d, want 2 (series %v)", MaxDepth(series), series)
	}
	if last := series[len(series)-1]; last.Depth != 0 {
		t.Fatalf("final depth = %d, want 0", last.Depth)
	}
	waits := WaitTimes(ev, 2)
	if len(waits[0]) != 1 || waits[0][0] != 0.01 { // 10ns = 0.01µs
		t.Fatalf("rank 0 waits = %v", waits[0])
	}
	if len(waits[1]) != 1 || waits[1][0] != 0.028 {
		t.Fatalf("rank 1 waits = %v", waits[1])
	}
}

func TestSummarize(t *testing.T) {
	ev := []Event{
		{Clock: 1, Rank: 0, Seq: 0, Kind: EvOp, Arg0: OpPut, Arg1: 1},
		{Clock: 2, Rank: 0, Seq: 1, Kind: EvAcqStart, Arg0: 0, Arg1: 1},
		{Clock: 5, Rank: 0, Seq: 2, Kind: EvAcquired, Arg0: 0, Arg1: 1},
		{Clock: 9, Rank: 0, Seq: 3, Kind: EvRelease, Arg0: 0, Arg1: 1},
		{Clock: 10, Rank: 1, Seq: 0, Kind: EvAcqStart, Arg0: 0, Arg1: 1},
		{Clock: 15, Rank: 1, Seq: 1, Kind: EvAcquired, Arg0: 0, Arg1: 1},
	}
	dist := func(a, b int) int {
		if a == b {
			return 0
		}
		return 2
	}
	a := Summarize(ev, 2, dist, 2)
	if a.Events != 6 || a.Ranks != 2 {
		t.Fatalf("Events/Ranks = %d/%d", a.Events, a.Ranks)
	}
	if a.Acquired[0] != 1 || a.Acquired[1] != 1 {
		t.Fatalf("Acquired = %v", a.Acquired)
	}
	if a.Fairness != 1 {
		t.Fatalf("Fairness = %v, want 1", a.Fairness)
	}
	if a.Locality[2] != 1 {
		t.Fatalf("Locality = %v", a.Locality)
	}
	if a.Ops[OpPut] != 1 {
		t.Fatalf("Ops = %v", a.Ops)
	}
	if a.Wait.N != 2 {
		t.Fatalf("Wait.N = %d", a.Wait.N)
	}
}

func TestValidateCatchesProtocolViolations(t *testing.T) {
	ok := []Event{
		{Clock: 1, Rank: 0, Seq: 0, Kind: EvAcqStart, Arg0: 0, Arg1: 1},
		{Clock: 2, Rank: 0, Seq: 1, Kind: EvAcquired, Arg0: 0, Arg1: 1},
		{Clock: 3, Rank: 1, Seq: 0, Kind: EvAcqStart, Arg0: 0, Arg1: 1},
		{Clock: 4, Rank: 0, Seq: 2, Kind: EvRelease, Arg0: 0, Arg1: 1},
		{Clock: 5, Rank: 1, Seq: 1, Kind: EvAcquired, Arg0: 0, Arg1: 1},
		{Clock: 6, Rank: 1, Seq: 2, Kind: EvRelease, Arg0: 0, Arg1: 1},
	}
	if err := Validate(ok); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}

	overlap := []Event{
		{Clock: 1, Rank: 0, Seq: 0, Kind: EvAcqStart, Arg0: 0, Arg1: 1},
		{Clock: 2, Rank: 0, Seq: 1, Kind: EvAcquired, Arg0: 0, Arg1: 1},
		{Clock: 3, Rank: 1, Seq: 0, Kind: EvAcqStart, Arg0: 0, Arg1: 1},
		{Clock: 4, Rank: 1, Seq: 1, Kind: EvAcquired, Arg0: 0, Arg1: 1}, // still held by 0
	}
	if err := Validate(overlap); err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("overlapping write holds not caught: %v", err)
	}

	readersShare := []Event{
		{Clock: 1, Rank: 0, Seq: 0, Kind: EvAcqStart, Arg0: 0, Arg1: 0},
		{Clock: 2, Rank: 0, Seq: 1, Kind: EvAcquired, Arg0: 0, Arg1: 0},
		{Clock: 3, Rank: 1, Seq: 0, Kind: EvAcqStart, Arg0: 0, Arg1: 0},
		{Clock: 4, Rank: 1, Seq: 1, Kind: EvAcquired, Arg0: 0, Arg1: 0},
		{Clock: 5, Rank: 0, Seq: 2, Kind: EvRelease, Arg0: 0, Arg1: 0},
		{Clock: 6, Rank: 1, Seq: 2, Kind: EvRelease, Arg0: 0, Arg1: 0},
	}
	if err := Validate(readersShare); err != nil {
		t.Fatalf("concurrent readers must be legal: %v", err)
	}

	unordered := []Event{
		{Clock: 5, Rank: 0, Seq: 0, Kind: EvOp},
		{Clock: 4, Rank: 1, Seq: 0, Kind: EvOp},
	}
	if err := Validate(unordered); err == nil || !strings.Contains(err.Error(), "canonical order") {
		t.Fatalf("order violation not caught: %v", err)
	}

	orphanAcquire := []Event{
		{Clock: 2, Rank: 0, Seq: 0, Kind: EvAcquired, Arg0: 0, Arg1: 1},
	}
	if err := Validate(orphanAcquire); err == nil || !strings.Contains(err.Error(), "pending acq-start") {
		t.Fatalf("orphan acquire not caught: %v", err)
	}

	wakeNoBlock := []Event{
		{Clock: 2, Rank: 0, Seq: 0, Kind: EvWake, Arg0: 1},
	}
	if err := Validate(wakeNoBlock); err == nil || !strings.Contains(err.Error(), "no unresolved block") {
		t.Fatalf("wake without block not caught: %v", err)
	}
}
