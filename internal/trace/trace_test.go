package trace

import (
	"strings"
	"testing"
)

func TestSinkMergeCanonicalOrder(t *testing.T) {
	s := New(ClassAll)
	s.Start(3)
	// Emit out of global clock order across ranks; per-rank clocks are
	// non-decreasing as in a real capture.
	s.Buf(1, ClassOp).Emit(EvOp, 50, OpGet, 0, 60)
	s.Buf(0, ClassOp).Emit(EvOp, 10, OpPut, 1, 20)
	s.Buf(0, ClassLock).Emit(EvAcqStart, 10, 0, 1, 0)
	s.Buf(2, ClassSched).Emit(EvBlock, 10, 0, 0, 0)
	s.Buf(0, ClassLock).Emit(EvAcquired, 70, 0, 1, 0)

	ev := s.Events()
	if len(ev) != 5 {
		t.Fatalf("got %d events, want 5", len(ev))
	}
	want := []struct {
		clock int64
		rank  int32
		seq   uint32
	}{
		{10, 0, 0}, {10, 0, 1}, {10, 2, 0}, {50, 1, 0}, {70, 0, 2},
	}
	for i, w := range want {
		e := ev[i]
		if e.Clock != w.clock || e.Rank != w.rank || e.Seq != w.seq {
			t.Errorf("event %d = %v, want clock=%d rank=%d seq=%d", i, e, w.clock, w.rank, w.seq)
		}
	}
}

func TestSinkMaskFiltersAtEmission(t *testing.T) {
	s := New(ClassLock)
	s.Start(1)
	if b := s.Buf(0, ClassCharge); b != nil {
		t.Fatalf("charge buf should be nil under a lock-only mask")
	}
	if b := s.Buf(0, ClassSched); b != nil {
		t.Fatalf("sched buf should be nil under a lock-only mask")
	}
	b := s.Buf(0, ClassLock)
	if b == nil {
		t.Fatal("lock buf missing")
	}
	b.Emit(EvAcqStart, 1, 0, 1, 0)
	b.Emit(EvAcquired, 2, 0, 1, 0)
	ev := s.Events()
	if len(ev) != 2 || ev[0].Seq != 0 || ev[1].Seq != 1 {
		t.Fatalf("masked-out classes must not consume seq numbers: %v", ev)
	}
}

func TestSinkStartResets(t *testing.T) {
	s := New(ClassAll)
	s.Start(2)
	s.Buf(0, ClassOp).Emit(EvOp, 1, OpPut, 1, 2)
	s.Start(2)
	if s.Len() != 0 {
		t.Fatalf("Start must clear buffers, have %d events", s.Len())
	}
	s.Buf(0, ClassOp).Emit(EvOp, 1, OpPut, 1, 2)
	if ev := s.Events(); ev[0].Seq != 0 {
		t.Fatalf("Start must reset seq, got %d", ev[0].Seq)
	}
	// nil sink and masked class are both emission no-ops via nil bufs.
	var nilSink *Sink
	if nilSink.Buf(0, ClassOp) != nil {
		t.Fatal("nil sink must hand out nil bufs")
	}
}

func TestBufResetKeepsSeq(t *testing.T) {
	s := New(ClassCharge)
	s.Start(1)
	b := s.Buf(0, ClassCharge)
	b.Emit(EvAdvance, 1, 1, 0, 0)
	b.Emit(EvAdvance, 2, 1, 0, 0)
	b.Reset()
	b.Emit(EvAdvance, 3, 1, 0, 0)
	ev := s.Events()
	if len(ev) != 1 || ev[0].Seq != 2 {
		t.Fatalf("Reset must keep counting seq: %v", ev)
	}
}

func TestKindClassAndFilter(t *testing.T) {
	cases := map[Kind]Class{
		EvDispatch: ClassSched, EvBlock: ClassSched, EvWake: ClassSched, EvBarrier: ClassSched,
		EvOp:       ClassOp,
		EvAcqStart: ClassLock, EvAcquired: ClassLock, EvRelease: ClassLock,
		EvAdvance: ClassCharge, EvFlush: ClassCharge,
	}
	for k, want := range cases {
		if got := KindClass(k); got != want {
			t.Errorf("KindClass(%v) = %v, want %v", k, got, want)
		}
	}
	events := []Event{
		{Kind: EvOp}, {Kind: EvAdvance}, {Kind: EvAcquired}, {Kind: EvDispatch},
	}
	got := Filter(events, ClassSemantic)
	if len(got) != 3 {
		t.Fatalf("Filter(semantic) kept %d events, want 3", len(got))
	}
	for _, e := range got {
		if e.Kind == EvAdvance {
			t.Fatal("Filter kept a charge event under the semantic mask")
		}
	}
}

func TestCSVDeterministic(t *testing.T) {
	events := []Event{
		{Clock: 10, Rank: 0, Seq: 0, Kind: EvAcqStart, Arg0: 3, Arg1: 1},
		{Clock: 20, Rank: 0, Seq: 1, Kind: EvAcquired, Arg0: 3, Arg1: 1, Arg2: 0},
	}
	var a, b strings.Builder
	if err := WriteCSV(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b, events); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("CSV export not deterministic")
	}
	want := "clock,rank,seq,kind,arg0,arg1,arg2\n" +
		"10,0,0,acq-start,3,1,0\n" +
		"20,0,1,acquired,3,1,0\n"
	if a.String() != want {
		t.Fatalf("CSV:\n%s\nwant:\n%s", a.String(), want)
	}
}
