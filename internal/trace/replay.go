package trace

import "fmt"

// Validate replays a merged event stream and checks the invariants any
// correct capture of a correct lock protocol must satisfy:
//
//   - canonical order: (Clock, Rank, Seq) non-decreasing overall,
//     per-rank clocks non-decreasing and Seq strictly increasing;
//   - lock protocol: every EvAcquired matches a pending EvAcqStart of
//     the same (rank, lock); a write acquisition requires the lock to
//     be free, a read acquisition requires no write holder (readers may
//     share); every EvRelease matches a current holder;
//   - scheduling: EvWake targets a rank with an unresolved EvBlock;
//   - degradation (fault profiles): every EvAcqTimeout resolves a
//     pending EvAcqStart of the same (rank, lock) — a timed-out acquire
//     is cleanly abandoned, never half-acquired — and at end of stream
//     no rank is left blocked (no lost wakeups across stalls), no lock
//     is still held, and no acquire is still pending.
//
// The differential suite runs Validate over every traced cell, turning
// the trace subsystem into a replay-driven checker: a protocol bug that
// produces overlapping write holds fails here with the exact virtual
// time and ranks involved, instead of only skewing aggregate numbers.
//
// Streams filtered to a sub-window (e.g. the measured phase) can open
// mid-protocol; Validate is for complete captures.
func Validate(events []Event) error {
	type lockState struct {
		writer  int32 // holding writer rank, or -1
		readers map[int32]bool
	}
	locks := map[int64]*lockState{}
	state := func(id int64) *lockState {
		ls := locks[id]
		if ls == nil {
			ls = &lockState{writer: -1, readers: map[int32]bool{}}
			locks[id] = ls
		}
		return ls
	}
	type pendKey struct {
		rank int32
		lock int64
	}
	pendingAcq := map[pendKey]bool{}
	blocked := map[int32]bool{}
	lastClock := map[int32]int64{}
	lastSeq := map[int32]int64{}
	var prev *Event

	for i := range events {
		e := &events[i]
		if prev != nil {
			if e.Clock < prev.Clock ||
				(e.Clock == prev.Clock && e.Rank < prev.Rank) ||
				(e.Clock == prev.Clock && e.Rank == prev.Rank && e.Seq <= prev.Seq) {
				return fmt.Errorf("trace: canonical order violated at index %d: %v after %v", i, *e, *prev)
			}
		}
		prev = e
		if c, ok := lastClock[e.Rank]; ok && e.Clock < c {
			return fmt.Errorf("trace: rank %d clock moved backwards: %v (was at %d)", e.Rank, *e, c)
		}
		lastClock[e.Rank] = e.Clock
		if s, ok := lastSeq[e.Rank]; ok && int64(e.Seq) <= s {
			return fmt.Errorf("trace: rank %d seq not increasing: %v (was %d)", e.Rank, *e, s)
		}
		lastSeq[e.Rank] = int64(e.Seq)

		switch e.Kind {
		case EvAcqStart:
			pendingAcq[pendKey{e.Rank, e.Arg0}] = true
		case EvAcquired:
			k := pendKey{e.Rank, e.Arg0}
			if !pendingAcq[k] {
				return fmt.Errorf("trace: %v without a pending acq-start", *e)
			}
			delete(pendingAcq, k)
			ls := state(e.Arg0)
			if e.Arg1 != 0 { // write
				if ls.writer != -1 || len(ls.readers) != 0 {
					return fmt.Errorf("trace: write acquire %v overlaps holders (writer=%d readers=%d)",
						*e, ls.writer, len(ls.readers))
				}
				ls.writer = e.Rank
			} else {
				if ls.writer != -1 {
					return fmt.Errorf("trace: read acquire %v overlaps writer %d", *e, ls.writer)
				}
				ls.readers[e.Rank] = true
			}
		case EvRelease:
			ls := state(e.Arg0)
			if e.Arg1 != 0 {
				if ls.writer != e.Rank {
					return fmt.Errorf("trace: write release %v by non-holder (writer=%d)", *e, ls.writer)
				}
				ls.writer = -1
			} else {
				if !ls.readers[e.Rank] {
					return fmt.Errorf("trace: read release %v by non-holder", *e)
				}
				delete(ls.readers, e.Rank)
			}
		case EvAcqTimeout:
			k := pendKey{e.Rank, e.Arg0}
			if !pendingAcq[k] {
				return fmt.Errorf("trace: %v without a pending acq-start", *e)
			}
			delete(pendingAcq, k)
			ls := state(e.Arg0)
			if ls.writer == e.Rank || ls.readers[e.Rank] {
				return fmt.Errorf("trace: %v by a rank still holding the lock", *e)
			}
		case EvBlock:
			blocked[e.Rank] = true
		case EvWake:
			if !blocked[e.Rank] {
				return fmt.Errorf("trace: %v targets a rank with no unresolved block", *e)
			}
			delete(blocked, e.Rank)
		}
	}
	// End-of-stream degradation invariants: a complete capture of a run
	// that finished (faulted or not) must leave no rank blocked without
	// a wake, no lock held, and no acquire unresolved.
	for r := range blocked {
		return fmt.Errorf("trace: rank %d still blocked at end of stream (lost wakeup)", r)
	}
	for id, ls := range locks {
		if ls.writer != -1 || len(ls.readers) != 0 {
			return fmt.Errorf("trace: lock %d still held at end of stream (writer=%d readers=%d)",
				id, ls.writer, len(ls.readers))
		}
	}
	for k := range pendingAcq {
		return fmt.Errorf("trace: rank %d acquire of lock %d unresolved at end of stream", k.rank, k.lock)
	}
	return nil
}
