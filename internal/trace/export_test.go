package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// exportEvents is a small fixed stream exercising every exported shape:
// a wait+hold span pair, a handoff, RMA ops, and scheduler instants.
func exportEvents() []Event {
	return []Event{
		{Clock: 0, Rank: 0, Seq: 0, Kind: EvDispatch, Arg0: -1},
		{Clock: 100, Rank: 0, Seq: 1, Kind: EvAcqStart, Arg0: 0, Arg1: 1},
		{Clock: 150, Rank: 0, Seq: 2, Kind: EvOp, Arg0: OpPut, Arg1: 1, Arg2: 200},
		{Clock: 300, Rank: 0, Seq: 3, Kind: EvAcquired, Arg0: 0, Arg1: 1, Arg2: 0},
		{Clock: 350, Rank: 1, Seq: 0, Kind: EvAcqStart, Arg0: 0, Arg1: 1},
		{Clock: 360, Rank: 1, Seq: 1, Kind: EvBlock},
		{Clock: 500, Rank: 0, Seq: 4, Kind: EvRelease, Arg0: 0, Arg1: 1},
		{Clock: 700, Rank: 1, Seq: 2, Kind: EvWake, Arg0: 0},
		{Clock: 750, Rank: 1, Seq: 3, Kind: EvAcquired, Arg0: 0, Arg1: 1, Arg2: 0},
		{Clock: 900, Rank: 1, Seq: 4, Kind: EvRelease, Arg0: 0, Arg1: 1},
		{Clock: 950, Rank: 1, Seq: 5, Kind: EvBarrier},
	}
}

func TestChromeExportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, exportEvents(), Meta{Label: "golden", P: 2, PPN: 2}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome export drifted from golden (regenerate with -update if intended)\ngot:\n%s", buf.String())
	}
}

// TestChromeExportSchema validates the trace-event schema contract that
// makes the file loadable in Perfetto / chrome://tracing: a traceEvents
// array whose entries carry name/ph/ts/pid/tid, complete events carry a
// non-negative dur, instants a valid scope, and ts values are
// non-negative µs.
func TestChromeExportSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, exportEvents(), Meta{Label: "schema", P: 2, PPN: 2}); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   *float64       `json:"ts"`
			Dur  *float64       `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	if f.DisplayTimeUnit != "ms" && f.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit %q not a trace-event unit", f.DisplayTimeUnit)
	}
	if f.OtherData["p"] == nil || f.OtherData["ppn"] == nil {
		t.Fatal("otherData must carry the machine shape (p, ppn)")
	}
	waits, holds := 0, 0
	for i, e := range f.TraceEvents {
		if e.Name == "" || e.Pid == nil || e.Tid == nil {
			t.Fatalf("event %d missing name/pid/tid: %+v", i, e)
		}
		switch e.Ph {
		case "M":
			continue
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				t.Fatalf("complete event %d needs non-negative dur: %+v", i, e)
			}
			switch e.Cat {
			case "wait":
				waits++
			case "lock":
				holds++
			}
		case "i":
			if e.S != "t" && e.S != "p" && e.S != "g" {
				t.Fatalf("instant event %d has bad scope %q", i, e.S)
			}
		default:
			t.Fatalf("event %d has unexpected phase %q", i, e.Ph)
		}
		if e.Ts == nil || *e.Ts < 0 {
			t.Fatalf("event %d missing or negative ts", i)
		}
	}
	if waits != 2 || holds != 2 {
		t.Fatalf("expected 2 wait and 2 hold spans, got %d/%d", waits, holds)
	}
}
