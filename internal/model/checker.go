// Package model is the repository's stand-in for the paper's SPIN/PROMELA
// verification (§4.4): an explicit-state model checker that enumerates all
// interleavings of abstracted lock protocols (one RMA operation = one
// atomic step, matching the simulator's linearize-at-issue semantics) and
// checks mutual exclusion and deadlock freedom by exhaustive BFS.
package model

import "fmt"

// State is one global state of a model: shared memory plus per-process
// program counters and locals. States are value types; Step must not
// mutate its input.
type State struct {
	Mem []int64
	PC  []int
	Loc [][]int64
}

// Clone deep-copies a state.
func (s *State) Clone() *State {
	n := &State{
		Mem: append([]int64(nil), s.Mem...),
		PC:  append([]int(nil), s.PC...),
		Loc: make([][]int64, len(s.Loc)),
	}
	for i, l := range s.Loc {
		n.Loc[i] = append([]int64(nil), l...)
	}
	return n
}

// key returns a canonical encoding for the visited set.
func (s *State) key() string {
	b := make([]byte, 0, 8*(len(s.Mem)+len(s.PC))+8*len(s.Loc)*2)
	put := func(v int64) {
		for i := 0; i < 8; i++ {
			b = append(b, byte(v>>(8*i)))
		}
	}
	for _, v := range s.Mem {
		put(v)
	}
	for _, v := range s.PC {
		put(int64(v))
	}
	for _, l := range s.Loc {
		for _, v := range l {
			put(v)
		}
	}
	return string(b)
}

// StuckAcceptor is an optional Model extension: AcceptStuck reports
// whether a state in which no process can move (and not all are done) is
// an accepted end state rather than a deadlock. It exists for documented
// liveness corners such as the RW reader tail-starvation (see the RW
// model), letting safety checking proceed past them.
type StuckAcceptor interface {
	AcceptStuck(st *State) bool
}

// Model describes a checkable protocol.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Init returns the initial state.
	Init() *State
	// Step executes one atomic step of process p. It returns nil if the
	// process cannot progress right now (a spin guard is false or the
	// process is done). Step must not modify st.
	Step(st *State, p int) *State
	// Done reports whether process p has terminated in st.
	Done(st *State, p int) bool
	// Check returns an error describing a safety violation in st, or nil.
	Check(st *State) error
}

// Result summarizes an exhaustive check.
type Result struct {
	Model       string
	States      int   // distinct states explored
	Transitions int64 // transitions taken
	Violation   error // first safety violation found, if any
	Deadlock    bool  // a reachable state where nobody can move and not all are done
	Truncated   bool  // state limit hit before exhaustion
	// AcceptedStuck counts terminal states waved through by a model's
	// AcceptStuck (documented liveness corners, not deadlocks).
	AcceptedStuck int
}

func (r Result) String() string {
	status := "OK"
	switch {
	case r.Violation != nil:
		status = "VIOLATION: " + r.Violation.Error()
	case r.Deadlock:
		status = "DEADLOCK"
	case r.Truncated:
		status = "TRUNCATED"
	}
	return fmt.Sprintf("%s: %d states, %d transitions: %s", r.Model, r.States, r.Transitions, status)
}

// Check exhaustively explores m's state space by BFS, up to maxStates
// distinct states (0 means a default of 2,000,000). It stops early at the
// first safety violation or deadlock.
func Check(m Model, maxStates int) Result {
	if maxStates <= 0 {
		maxStates = 2_000_000
	}
	init := m.Init()
	res := Result{Model: m.Name()}
	visited := map[string]struct{}{init.key(): {}}
	queue := []*State{init}
	procs := len(init.PC)
	for len(queue) > 0 {
		st := queue[0]
		queue = queue[1:]
		res.States++
		if err := m.Check(st); err != nil {
			res.Violation = err
			return res
		}
		moved := false
		allDone := true
		for p := 0; p < procs; p++ {
			if m.Done(st, p) {
				continue
			}
			allDone = false
			next := m.Step(st, p)
			if next == nil {
				continue // blocked (spin guard false)
			}
			moved = true
			res.Transitions++
			k := next.key()
			if _, ok := visited[k]; !ok {
				visited[k] = struct{}{}
				queue = append(queue, next)
			}
		}
		if !moved && !allDone {
			if sa, ok := m.(StuckAcceptor); ok && sa.AcceptStuck(st) {
				res.AcceptedStuck++
				continue
			}
			res.Deadlock = true
			return res
		}
		if len(visited) >= maxStates {
			res.Truncated = true
			return res
		}
	}
	return res
}

// Roles assigns reader/writer roles deterministically for RW models:
// the first nWriters processes write, the rest read.
func Roles(nWriters, nProcs int) []bool {
	roles := make([]bool, nProcs)
	for i := 0; i < nWriters && i < nProcs; i++ {
		roles[i] = true
	}
	return roles
}
