package model

import "testing"

func TestTreeTwoNodesOneProcEach(t *testing.T) {
	r := Check(Tree{Nodes: 2, ProcsPerNode: 1, Iters: 2, TL: 1}, 0)
	if r.Violation != nil || r.Deadlock || r.Truncated {
		t.Fatalf("%v", r)
	}
	t.Log(r)
}

func TestTreeOneNodeTwoProcs(t *testing.T) {
	// Degenerate: a single node exercises only intra-node passes plus
	// threshold-forced round trips through the root.
	for _, tl := range []int64{1, 2, 1 << 40} {
		r := Check(Tree{Nodes: 1, ProcsPerNode: 2, Iters: 2, TL: tl}, 0)
		if r.Violation != nil || r.Deadlock || r.Truncated {
			t.Fatalf("TL=%d: %v", tl, r)
		}
	}
}

func TestTreeTwoNodesTwoProcsEach(t *testing.T) {
	// The core configuration: intra-node passes, ACQUIRE_PARENT
	// hand-offs, element-node reuse across processes — all interleavings.
	r := Check(Tree{Nodes: 2, ProcsPerNode: 2, Iters: 1, TL: 1}, 0)
	if r.Violation != nil || r.Deadlock || r.Truncated {
		t.Fatalf("%v", r)
	}
	t.Log(r)
}

func TestTreeTwoNodesTwoProcsHighTL(t *testing.T) {
	// With an effectively unlimited threshold the lock stays within a
	// node until the local queue drains.
	r := Check(Tree{Nodes: 2, ProcsPerNode: 2, Iters: 1, TL: 1 << 40}, 0)
	if r.Violation != nil || r.Deadlock || r.Truncated {
		t.Fatalf("%v", r)
	}
}

func TestTreeTwoNodesTwoIters(t *testing.T) {
	// The full space is enormous; a bounded BFS still covers hundreds of
	// thousands of distinct states breadth-first — truncation without a
	// violation or deadlock is the expected outcome.
	r := Check(Tree{Nodes: 2, ProcsPerNode: 2, Iters: 2, TL: 1}, 200_000)
	if r.Violation != nil || r.Deadlock {
		t.Fatalf("%v", r)
	}
	t.Log(r)
}

func TestTreeThreeNodes(t *testing.T) {
	r := Check(Tree{Nodes: 3, ProcsPerNode: 1, Iters: 2, TL: 2}, 0)
	if r.Violation != nil || r.Deadlock || r.Truncated {
		t.Fatalf("%v", r)
	}
	t.Log(r)
}

// brokenTree removes the release-parent-before-redirect ordering: the
// releaser redirects its leaf successor to the root *before* releasing
// the root, so two element nodes of the same element can be live at
// once. The checker must catch the resulting exclusion violation or
// deadlock — evidence it covers the element-node reuse race.
type brokenTree struct{ Tree }

func (m brokenTree) Step(st *State, p int) *State {
	if st.PC[p] == tRelReadLeaf {
		n := st.Clone()
		loc := n.Loc[p]
		loc[tlLeafSucc] = n.Mem[m.leafNext(p)]
		loc[tlLeafStatus] = n.Mem[m.leafStatus(p)]
		if loc[tlLeafSucc] != -1 && loc[tlLeafStatus] < m.TL {
			n.Mem[m.leafStatus(int(loc[tlLeafSucc]))] = loc[tlLeafStatus] + 1
			m.finish(n, p)
			return n
		}
		if loc[tlLeafSucc] != -1 {
			// BROKEN: redirect the successor upward immediately, then
			// release the root afterwards.
			n.Mem[m.leafStatus(int(loc[tlLeafSucc]))] = -2
			n.PC[p] = tRelReadRoot
			return n
		}
		n.PC[p] = tRelReadRoot
		return n
	}
	if st.PC[p] == tRelCASLeaf && st.Loc[p][tlLeafSucc] != -1 {
		// Successor already redirected in the broken step; just finish.
		n := st.Clone()
		m.finish(n, p)
		return n
	}
	return m.Tree.Step(st, p)
}

func TestCheckerCatchesElementNodeReuseRace(t *testing.T) {
	r := Check(brokenTree{Tree{Nodes: 2, ProcsPerNode: 2, Iters: 2, TL: 1}}, 500_000)
	if r.Violation == nil && !r.Deadlock {
		t.Fatalf("broken release ordering not caught: %v", r)
	}
	t.Log(r)
}
