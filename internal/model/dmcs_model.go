package model

import "fmt"

// DMCS is the abstract model of the D-MCS lock (paper §2.4, Listings 2–3):
// P processes each acquire and release the lock Iters times. One RMA
// operation is one atomic step.
//
// Shared memory layout: [0] = TAIL; then per process p: [1+2p] = NEXT_p,
// [2+2p] = WAIT_p. The null rank is -1.
type DMCS struct {
	Procs int
	Iters int
}

// Program counters.
const (
	dPrep     = iota // write own NEXT=∅, WAIT=1 (local prep)
	dSwap            // FAO TAIL -> pred
	dLink            // no pred: skip; pred: NEXT_pred = p
	dSpin            // spin on WAIT_p == 0
	dCS              // in the critical section
	dReadNext        // succ = NEXT_p
	dCASTail         // no succ: CAS(TAIL, p -> ∅)
	dWaitSucc        // spin on NEXT_p != ∅
	dNotify          // WAIT_succ = 0
	dDone
)

// Name implements Model.
func (m DMCS) Name() string { return fmt.Sprintf("D-MCS P=%d iters=%d", m.Procs, m.Iters) }

// Init implements Model.
func (m DMCS) Init() *State {
	st := &State{
		Mem: make([]int64, 1+2*m.Procs),
		PC:  make([]int, m.Procs),
		Loc: make([][]int64, m.Procs),
	}
	st.Mem[0] = -1 // TAIL = ∅
	for p := 0; p < m.Procs; p++ {
		st.Mem[1+2*p] = -1             // NEXT
		st.Mem[2+2*p] = 0              // WAIT
		st.Loc[p] = []int64{-1, -1, 0} // pred, succ, iter
	}
	return st
}

func (m DMCS) next(p int) int { return 1 + 2*p }
func (m DMCS) wait(p int) int { return 2 + 2*p }

// Done implements Model.
func (m DMCS) Done(st *State, p int) bool { return st.PC[p] == dDone }

// Step implements Model.
func (m DMCS) Step(st *State, p int) *State {
	n := st.Clone()
	pc := n.PC[p]
	loc := n.Loc[p]
	switch pc {
	case dPrep:
		n.Mem[m.next(p)] = -1
		n.Mem[m.wait(p)] = 1
		n.PC[p] = dSwap
	case dSwap:
		loc[0] = n.Mem[0] // pred
		n.Mem[0] = int64(p)
		if loc[0] == -1 {
			n.PC[p] = dCS
		} else {
			n.PC[p] = dLink
		}
	case dLink:
		n.Mem[m.next(int(loc[0]))] = int64(p)
		n.PC[p] = dSpin
	case dSpin:
		if st.Mem[m.wait(p)] != 0 {
			return nil // blocked
		}
		n.PC[p] = dCS
	case dCS:
		n.PC[p] = dReadNext
	case dReadNext:
		loc[1] = n.Mem[m.next(p)] // succ
		if loc[1] == -1 {
			n.PC[p] = dCASTail
		} else {
			n.PC[p] = dNotify
		}
	case dCASTail:
		if n.Mem[0] == int64(p) {
			n.Mem[0] = -1
			m.finishIter(n, p)
		} else {
			n.PC[p] = dWaitSucc
		}
	case dWaitSucc:
		if st.Mem[m.next(p)] == -1 {
			return nil // blocked: successor not linked yet
		}
		loc[1] = n.Mem[m.next(p)]
		n.PC[p] = dNotify
	case dNotify:
		n.Mem[m.wait(int(loc[1]))] = 0
		m.finishIter(n, p)
	default:
		return nil
	}
	return n
}

func (m DMCS) finishIter(st *State, p int) {
	st.Loc[p][2]++
	if int(st.Loc[p][2]) >= m.Iters {
		st.PC[p] = dDone
	} else {
		st.PC[p] = dPrep
	}
}

// Check implements Model: at most one process in the CS.
func (m DMCS) Check(st *State) error {
	in := 0
	for p := 0; p < m.Procs; p++ {
		if st.PC[p] == dCS {
			in++
		}
	}
	if in > 1 {
		return fmt.Errorf("mutual exclusion violated: %d processes in CS", in)
	}
	return nil
}

// SpinModel is the abstract foMPI-Spin lock: CAS 0→1 to acquire, store 0
// to release.
//
// Shared memory: [0] = lock word.
type SpinModel struct {
	Procs int
	Iters int
}

const (
	sTry = iota // CAS(lock, 0 -> 1)
	sCS
	sRel // lock = 0
	sDone
)

// Name implements Model.
func (m SpinModel) Name() string { return fmt.Sprintf("foMPI-Spin P=%d iters=%d", m.Procs, m.Iters) }

// Init implements Model.
func (m SpinModel) Init() *State {
	st := &State{
		Mem: make([]int64, 1),
		PC:  make([]int, m.Procs),
		Loc: make([][]int64, m.Procs),
	}
	for p := range st.Loc {
		st.Loc[p] = []int64{0} // iter
	}
	return st
}

// Done implements Model.
func (m SpinModel) Done(st *State, p int) bool { return st.PC[p] == sDone }

// Step implements Model.
func (m SpinModel) Step(st *State, p int) *State {
	n := st.Clone()
	switch n.PC[p] {
	case sTry:
		if st.Mem[0] != 0 {
			return nil // blocked: lock held (backoff abstracted away)
		}
		n.Mem[0] = 1
		n.PC[p] = sCS
	case sCS:
		n.PC[p] = sRel
	case sRel:
		n.Mem[0] = 0
		n.Loc[p][0]++
		if int(n.Loc[p][0]) >= m.Iters {
			n.PC[p] = sDone
		} else {
			n.PC[p] = sTry
		}
	default:
		return nil
	}
	return n
}

// Check implements Model.
func (m SpinModel) Check(st *State) error {
	in := 0
	for p := 0; p < m.Procs; p++ {
		if st.PC[p] == sCS {
			in++
		}
	}
	if in > 1 {
		return fmt.Errorf("mutual exclusion violated: %d processes in CS", in)
	}
	return nil
}
