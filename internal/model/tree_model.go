package model

import "fmt"

// Tree is the abstract model of a two-level RMA-MCS lock (§3.5): per-node
// leaf queues whose heads compete in a root queue through per-element
// queue nodes hosted at node leaders. It exhaustively exercises exactly
// the machinery the flat D-MCS model cannot: the locality threshold
// T_L, the ACQUIRE_PARENT hand-off, and the reuse of the per-element
// root-queue node by successive processes of the same node.
//
// Machine: Nodes compute nodes with ProcsPerNode processes each; process
// p lives on node p/ProcsPerNode, and the node's leader (its first
// process) hosts the element's root-queue node.
//
// Shared memory layout:
//
//	[0]                 root TAIL (values: element ids, -1 = ∅)
//	per element e:      [1+4e] rootNEXT_e, [2+4e] rootSTATUS_e,
//	                    [3+4e] leafTAIL_e (process ids), [4+4e] unused pad
//	per process p:      [base+2p] leafNEXT_p, [base+2p+1] leafSTATUS_p
//
// STATUS encoding matches the implementation: -1 WAIT, -2 ACQUIRE_PARENT,
// counts >= 0 grant the CS.
type Tree struct {
	Nodes        int
	ProcsPerNode int
	Iters        int
	TL           int64 // leaf-level locality threshold T_L,2
}

// Tree program counters.
const (
	tPrepLeaf = iota // reset own leaf node, then swap into the leaf tail
	tSwapLeaf
	tLinkLeaf
	tSpinLeaf
	tPrepRoot // reset the element node, then swap into the root tail
	tSwapRoot
	tLinkRoot
	tSpinRoot
	tCS
	// Release: leaf level first (Listing 5).
	tRelReadLeaf
	// Root release happens before leaving the leaf queue.
	tRelReadRoot
	tRelCASRoot
	tRelWaitRoot
	tRelPassRoot
	// Back at the leaf: detach or redirect the successor.
	tRelCASLeaf
	tRelWaitLeaf
	tRelPassLeaf
	tEnd
)

// Tree locals.
const (
	tlPred = iota
	tlLeafSucc
	tlLeafStatus
	tlRootSucc
	tlRootStatus
	tlIter
	tlNumLoc
)

// Name implements Model.
func (m Tree) Name() string {
	return fmt.Sprintf("RMA-MCS(2-level) %dx%d iters=%d TL=%d", m.Nodes, m.ProcsPerNode, m.Iters, m.TL)
}

func (m Tree) procs() int           { return m.Nodes * m.ProcsPerNode }
func (m Tree) nodeOf(p int) int     { return p / m.ProcsPerNode }
func (m Tree) procBase() int        { return 1 + 4*m.Nodes }
func (m Tree) rootNext(e int) int   { return 1 + 4*e }
func (m Tree) rootStatus(e int) int { return 2 + 4*e }
func (m Tree) leafTail(e int) int   { return 3 + 4*e }
func (m Tree) leafNext(p int) int   { return m.procBase() + 2*p }
func (m Tree) leafStatus(p int) int { return m.procBase() + 2*p + 1 }

// Init implements Model.
func (m Tree) Init() *State {
	st := &State{
		Mem: make([]int64, m.procBase()+2*m.procs()),
		PC:  make([]int, m.procs()),
		Loc: make([][]int64, m.procs()),
	}
	st.Mem[0] = -1 // root TAIL
	for e := 0; e < m.Nodes; e++ {
		st.Mem[m.rootNext(e)] = -1
		st.Mem[m.rootStatus(e)] = -1
		st.Mem[m.leafTail(e)] = -1
	}
	for p := 0; p < m.procs(); p++ {
		st.Mem[m.leafNext(p)] = -1
		st.Mem[m.leafStatus(p)] = -1
		st.Loc[p] = make([]int64, tlNumLoc)
	}
	return st
}

// Done implements Model.
func (m Tree) Done(st *State, p int) bool { return st.PC[p] == tEnd }

// Step implements Model.
func (m Tree) Step(st *State, p int) *State {
	n := st.Clone()
	loc := n.Loc[p]
	e := m.nodeOf(p)
	switch n.PC[p] {
	// ---- acquire, leaf level (Listing 4, i = 2) ----
	case tPrepLeaf:
		n.Mem[m.leafNext(p)] = -1
		n.Mem[m.leafStatus(p)] = -1
		n.PC[p] = tSwapLeaf
	case tSwapLeaf:
		loc[tlPred] = n.Mem[m.leafTail(e)]
		n.Mem[m.leafTail(e)] = int64(p)
		if loc[tlPred] == -1 {
			// Head of the leaf queue: install ACQUIRE_START (as the
			// implementation's SetStatus does) and climb.
			n.Mem[m.leafStatus(p)] = 0
			n.PC[p] = tPrepRoot
		} else {
			n.PC[p] = tLinkLeaf
		}
	case tLinkLeaf:
		n.Mem[m.leafNext(int(loc[tlPred]))] = int64(p)
		n.PC[p] = tSpinLeaf
	case tSpinLeaf:
		s := st.Mem[m.leafStatus(p)]
		if s == -1 {
			return nil // WAIT
		}
		if s == -2 { // ACQUIRE_PARENT: continue up on the element's behalf
			n.Mem[m.leafStatus(p)] = 0 // ACQUIRE_START
			n.PC[p] = tPrepRoot
		} else {
			n.PC[p] = tCS // direct intra-node pass
		}
	// ---- acquire, root level (per-element node at the leader) ----
	case tPrepRoot:
		n.Mem[m.rootNext(e)] = -1
		n.Mem[m.rootStatus(e)] = -1
		n.PC[p] = tSwapRoot
	case tSwapRoot:
		loc[tlPred] = n.Mem[0]
		n.Mem[0] = int64(e)
		if loc[tlPred] == -1 {
			n.Mem[m.rootStatus(e)] = 0 // ACQUIRE_START: we hold the root
			n.PC[p] = tCS
		} else {
			n.PC[p] = tLinkRoot
		}
	case tLinkRoot:
		n.Mem[m.rootNext(int(loc[tlPred]))] = int64(e)
		n.PC[p] = tSpinRoot
	case tSpinRoot:
		s := st.Mem[m.rootStatus(e)]
		if s == -1 {
			return nil // WAIT
		}
		// Root grants are always counts (no parent above the root).
		n.PC[p] = tCS
	// ---- critical section ----
	case tCS:
		n.PC[p] = tRelReadLeaf
	// ---- release, leaf level (Listing 5, i = 2) ----
	case tRelReadLeaf:
		loc[tlLeafSucc] = n.Mem[m.leafNext(p)]
		loc[tlLeafStatus] = n.Mem[m.leafStatus(p)]
		if loc[tlLeafSucc] != -1 && loc[tlLeafStatus] < m.TL {
			// Pass within the node.
			n.Mem[m.leafStatus(int(loc[tlLeafSucc]))] = loc[tlLeafStatus] + 1
			m.finish(n, p)
			break
		}
		n.PC[p] = tRelReadRoot // release the parent first
	// ---- release, root level (on the element node) ----
	case tRelReadRoot:
		loc[tlRootSucc] = n.Mem[m.rootNext(e)]
		loc[tlRootStatus] = n.Mem[m.rootStatus(e)]
		if loc[tlRootSucc] != -1 {
			n.PC[p] = tRelPassRoot
		} else {
			n.PC[p] = tRelCASRoot
		}
	case tRelCASRoot:
		if n.Mem[0] == int64(e) {
			n.Mem[0] = -1
			n.PC[p] = tRelCASLeaf // root queue emptied
		} else {
			n.PC[p] = tRelWaitRoot
		}
	case tRelWaitRoot:
		if st.Mem[m.rootNext(e)] == -1 {
			return nil // successor element not linked yet
		}
		loc[tlRootSucc] = n.Mem[m.rootNext(e)]
		n.PC[p] = tRelPassRoot
	case tRelPassRoot:
		// Pass the root lock to the next element (count semantics).
		n.Mem[m.rootStatus(int(loc[tlRootSucc]))] = loc[tlRootStatus] + 1
		n.PC[p] = tRelCASLeaf
	// ---- back at the leaf: detach or redirect ----
	case tRelCASLeaf:
		if loc[tlLeafSucc] != -1 {
			n.PC[p] = tRelPassLeaf
			break
		}
		if n.Mem[m.leafTail(e)] == int64(p) {
			n.Mem[m.leafTail(e)] = -1
			m.finish(n, p)
		} else {
			n.PC[p] = tRelWaitLeaf
		}
	case tRelWaitLeaf:
		if st.Mem[m.leafNext(p)] == -1 {
			return nil
		}
		loc[tlLeafSucc] = n.Mem[m.leafNext(p)]
		n.PC[p] = tRelPassLeaf
	case tRelPassLeaf:
		// Tell the successor to acquire the root itself.
		n.Mem[m.leafStatus(int(loc[tlLeafSucc]))] = -2 // ACQUIRE_PARENT
		m.finish(n, p)
	default:
		return nil
	}
	return n
}

func (m Tree) finish(st *State, p int) {
	st.Loc[p][tlIter]++
	if int(st.Loc[p][tlIter]) >= m.Iters {
		st.PC[p] = tEnd
	} else {
		st.PC[p] = tPrepLeaf
	}
}

// Check implements Model: at most one process in the CS.
func (m Tree) Check(st *State) error {
	in := 0
	for p := 0; p < m.procs(); p++ {
		if st.PC[p] == tCS {
			in++
		}
	}
	if in > 1 {
		return fmt.Errorf("mutual exclusion violated: %d processes in CS", in)
	}
	return nil
}
