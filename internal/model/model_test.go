package model

import (
	"strings"
	"testing"
)

func TestDMCSTwoProcs(t *testing.T) {
	r := Check(DMCS{Procs: 2, Iters: 2}, 0)
	if r.Violation != nil || r.Deadlock || r.Truncated {
		t.Fatalf("%v", r)
	}
	if r.States < 10 {
		t.Errorf("suspiciously small state space: %v", r)
	}
}

func TestDMCSThreeProcs(t *testing.T) {
	r := Check(DMCS{Procs: 3, Iters: 2}, 0)
	if r.Violation != nil || r.Deadlock || r.Truncated {
		t.Fatalf("%v", r)
	}
	t.Log(r)
}

func TestDMCSFourProcsOneIter(t *testing.T) {
	r := Check(DMCS{Procs: 4, Iters: 1}, 0)
	if r.Violation != nil || r.Deadlock || r.Truncated {
		t.Fatalf("%v", r)
	}
	t.Log(r)
}

func TestSpinModel(t *testing.T) {
	r := Check(SpinModel{Procs: 3, Iters: 2}, 0)
	if r.Violation != nil || r.Deadlock {
		t.Fatalf("%v", r)
	}
}

func TestRWOneWriterOneReader(t *testing.T) {
	r := Check(RW{Writers: 1, Readers: 1, Iters: 2, TW: 2, TR: 1, AcceptReaderStarvation: true}, 0)
	if r.Violation != nil || r.Deadlock || r.Truncated {
		t.Fatalf("%v", r)
	}
	t.Log(r)
}

func TestRWTwoWritersOneReader(t *testing.T) {
	r := Check(RW{Writers: 2, Readers: 1, Iters: 1, TW: 2, TR: 1, AcceptReaderStarvation: true}, 0)
	if r.Violation != nil || r.Deadlock || r.Truncated {
		t.Fatalf("%v", r)
	}
	t.Log(r)
}

func TestRWOneWriterTwoReaders(t *testing.T) {
	r := Check(RW{Writers: 1, Readers: 2, Iters: 1, TW: 2, TR: 2, AcceptReaderStarvation: true}, 0)
	if r.Violation != nil || r.Deadlock || r.Truncated {
		t.Fatalf("%v", r)
	}
	t.Log(r)
}

func TestRWTwoWritersTwoReaders(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space")
	}
	r := Check(RW{Writers: 2, Readers: 2, Iters: 1, TW: 2, TR: 2, AcceptReaderStarvation: true}, 8_000_000)
	if r.Violation != nil || r.Deadlock {
		t.Fatalf("%v", r)
	}
	t.Log(r)
}

func TestRWPureReaders(t *testing.T) {
	// Readers alone cycle through counter resets without writers; the
	// only terminal states are documented reader tail-starvations.
	r := Check(RW{Writers: 0, Readers: 2, Iters: 2, TW: 2, TR: 2, AcceptReaderStarvation: true}, 0)
	if r.Violation != nil || r.Deadlock || r.Truncated {
		t.Fatalf("%v", r)
	}
}

func TestKnownLimitationReaderTailStarvation(t *testing.T) {
	// The paper's reader protocol (Listing 9) admits an adversarial
	// schedule in which a backed-off reader waits at the T_R barrier
	// while the remaining readers complete enough entries after the
	// final counter reset to refill ARRIVE to T_R: the counter then
	// freezes at T_R and the parked reader spins forever. Without the
	// accept-list, the checker must find that terminal state. Real
	// configurations use T_R ≫ readers-per-counter, where a frozen
	// counter at exactly T_R cannot happen silently.
	r := Check(RW{Writers: 0, Readers: 2, Iters: 2, TW: 2, TR: 1}, 0)
	if !r.Deadlock {
		t.Fatalf("expected the reader tail-starvation to be found, got %v", r)
	}
}

func TestReaderResetMustNotStripWriterBias(t *testing.T) {
	// Regression for the race found by this checker: a reader that
	// probed TAIL before a writer enqueued could reset the counter after
	// the writer set the WRITE bias; a bias-stripping reset wedges the
	// writer's drain loop forever — a true deadlock that
	// AcceptReaderStarvation does NOT mask (the stuck process is a
	// writer). With the fix (reader-side resets keep the bias), every
	// mixed configuration below must be free of writer deadlocks.
	for _, cfg := range []RW{
		{Writers: 1, Readers: 1, Iters: 2, TW: 2, TR: 1, AcceptReaderStarvation: true},
		{Writers: 1, Readers: 1, Iters: 2, TW: 3, TR: 2, AcceptReaderStarvation: true},
		{Writers: 2, Readers: 1, Iters: 2, TW: 2, TR: 1, AcceptReaderStarvation: true},
	} {
		r := Check(cfg, 0)
		if r.Violation != nil || r.Deadlock || r.Truncated {
			t.Fatalf("%v", r)
		}
	}
}

func TestRWPureWriters(t *testing.T) {
	r := Check(RW{Writers: 3, Readers: 0, Iters: 1, TW: 2, TR: 1}, 0)
	if r.Violation != nil || r.Deadlock || r.Truncated {
		t.Fatalf("%v", r)
	}
}

// brokenSpin omits the CAS guard: acquire is a blind store, which must be
// caught as a mutual-exclusion violation — a self-test of the checker.
type brokenSpin struct{ SpinModel }

func (m brokenSpin) Step(st *State, p int) *State {
	n := st.Clone()
	switch n.PC[p] {
	case sTry:
		n.Mem[0] = 1 // no compare: broken on purpose
		n.PC[p] = sCS
	case sCS:
		n.PC[p] = sRel
	case sRel:
		n.Mem[0] = 0
		n.Loc[p][0]++
		if int(n.Loc[p][0]) >= m.Iters {
			n.PC[p] = sDone
		} else {
			n.PC[p] = sTry
		}
	default:
		return nil
	}
	return n
}

func TestCheckerDetectsViolation(t *testing.T) {
	r := Check(brokenSpin{SpinModel{Procs: 2, Iters: 1}}, 0)
	if r.Violation == nil {
		t.Fatal("checker failed to catch a broken lock")
	}
	if !strings.Contains(r.String(), "VIOLATION") {
		t.Errorf("bad report: %v", r)
	}
}

// deadlockModel: two processes wait for each other forever.
type deadlockModel struct{}

func (deadlockModel) Name() string { return "deadlock" }
func (deadlockModel) Init() *State {
	return &State{Mem: []int64{0, 0}, PC: make([]int, 2), Loc: [][]int64{{}, {}}}
}
func (deadlockModel) Done(st *State, p int) bool { return st.PC[p] == 2 }
func (deadlockModel) Step(st *State, p int) *State {
	// Each proc waits for the other's flag, then sets its own — classic.
	other := 1 - p
	switch st.PC[p] {
	case 0:
		if st.Mem[other] == 0 {
			return nil // wait for the other to go first
		}
		n := st.Clone()
		n.PC[p] = 1
		return n
	case 1:
		n := st.Clone()
		n.Mem[p] = 1
		n.PC[p] = 2
		return n
	}
	return nil
}
func (deadlockModel) Check(st *State) error { return nil }

func TestCheckerDetectsDeadlock(t *testing.T) {
	r := Check(deadlockModel{}, 0)
	if !r.Deadlock {
		t.Fatalf("checker missed a deadlock: %v", r)
	}
}

func TestTruncation(t *testing.T) {
	r := Check(DMCS{Procs: 3, Iters: 3}, 50)
	if !r.Truncated {
		t.Errorf("expected truncation at 50 states: %v", r)
	}
}

func TestRolesHelper(t *testing.T) {
	roles := Roles(2, 5)
	want := []bool{true, true, false, false, false}
	for i := range want {
		if roles[i] != want[i] {
			t.Fatalf("Roles(2,5)=%v", roles)
		}
	}
}

func TestStateCloneIndependence(t *testing.T) {
	m := DMCS{Procs: 2, Iters: 1}
	a := m.Init()
	b := a.Clone()
	b.Mem[0] = 99
	b.PC[0] = 5
	b.Loc[0][0] = 42
	if a.Mem[0] == 99 || a.PC[0] == 5 || a.Loc[0][0] == 42 {
		t.Error("Clone shares storage with original")
	}
	if a.key() == b.key() {
		t.Error("distinct states share a key")
	}
}
