package model

import "fmt"

// RW is the abstract model of RMA-RW on a single-level machine: writers
// form one MCS root queue (Listings 7–8) and synchronize with readers
// through one physical counter (Listings 6, 9, 10). This covers the
// reader/writer interplay — the part of RMA-RW that SPIN checking targets
// in §4.4 — while the tree layers above are covered by the DQ-tree model
// and implementation tests.
//
// Shared memory: [0] TAIL, [1] ARRIVE, [2] DEPART, [3] RLOCK (the
// per-counter reset latch; see below), then per process p: [4+2p] NEXT_p,
// [5+2p] STATUS_p (only used by writers).
//
// RLOCK is a correction to the paper: reset_counter (Listing 6) reads
// ARRIVE/DEPART and then subtracts the snapshot, which is not safe under
// concurrency — a reader-side reset (Listing 9 line 20) can overlap a
// releasing writer's reset, double-subtracting DEPART and leaving a stray
// WRITE bias that wedges every later writer. This checker found the race;
// serializing resets with a one-word CAS latch removes it.
type RW struct {
	Writers int
	Readers int
	Iters   int
	TW      int64 // writer threshold (T_W)
	TR      int64 // reader threshold (T_R)

	// AcceptReaderStarvation treats terminal states in which every
	// remaining process is a reader parked at the T_R barrier as accepted
	// end states instead of deadlocks. This is the paper's reader
	// tail-starvation corner: with finite work, the last T_R arrivals
	// after the final counter reset can refill ARRIVE to exactly T_R
	// while a backed-off reader misses every ARRIVE < T_R window, leaving
	// it spinning forever. The window only closes after T_R fresh
	// arrivals, so real deployments with T_R ≫ readers-per-counter never
	// hit it; exhaustive search without fairness assumptions always does.
	AcceptReaderStarvation bool
}

// AcceptStuck implements StuckAcceptor (see AcceptReaderStarvation).
func (m RW) AcceptStuck(st *State) bool {
	if !m.AcceptReaderStarvation {
		return false
	}
	for p := 0; p < m.procs(); p++ {
		if m.Done(st, p) {
			continue
		}
		if m.isWriter(p) || st.PC[p] != rBarrier {
			return false
		}
	}
	return true
}

// rwBias is the model's WRITE-mode bias (any value ≫ TR works).
const rwBias int64 = 1 << 20

// Status encoding (as in the implementation).
const (
	rwWait       int64 = -1
	rwModeChange int64 = -3
)

// Writer program counters.
const (
	wPrep = iota
	wSwap
	wLink
	wSpin
	wBias
	wDrain
	wSetStart
	wCS
	wRel
	wResetLock // CAS the reset latch
	wResetRead // snapshot ARRIVE/DEPART
	wResetArr  // subtract from ARRIVE
	wResetDep  // subtract from DEPART
	wResetRel  // release the latch, resume continuation
	wReadSucc
	wCASTail
	wWaitSucc
	wPass
	wEnd
)

// Reader program counters (offset so they never collide in reports).
const (
	rBarrier = 100 + iota
	rFAO
	rCheck
	rTail
	rResetLock
	rResetRead
	rResetArr
	rResetDep
	rResetRel
	rDec
	rCS
	rRel
	rEnd
)

// Writer locals.
const (
	lPred = iota
	lSucc
	lNextStat
	lArr
	lDep
	lReset // counters already reset this release?
	lCont  // continuation PC after the reset block
	lIter
	numLoc
)

// Reader locals reuse: lArr/lDep for snapshots, lPred as cur, lReset as
// the barrier flag, lIter as the iteration counter.

// Name implements Model.
func (m RW) Name() string {
	return fmt.Sprintf("RMA-RW(1-level) W=%d R=%d iters=%d TW=%d TR=%d",
		m.Writers, m.Readers, m.Iters, m.TW, m.TR)
}

func (m RW) procs() int { return m.Writers + m.Readers }

func (m RW) isWriter(p int) bool { return p < m.Writers }

func nextOf(p int) int   { return 4 + 2*p }
func statusOf(p int) int { return 5 + 2*p }

// Init implements Model.
func (m RW) Init() *State {
	n := m.procs()
	st := &State{
		Mem: make([]int64, 4+2*n),
		PC:  make([]int, n),
		Loc: make([][]int64, n),
	}
	st.Mem[0] = -1 // TAIL
	for p := 0; p < n; p++ {
		st.Mem[nextOf(p)] = -1
		st.Mem[statusOf(p)] = rwWait
		st.Loc[p] = make([]int64, numLoc)
		if m.isWriter(p) {
			st.PC[p] = wPrep
		} else {
			st.PC[p] = rBarrier
		}
	}
	return st
}

// Done implements Model.
func (m RW) Done(st *State, p int) bool {
	return st.PC[p] == wEnd || st.PC[p] == rEnd
}

// Step implements Model.
func (m RW) Step(st *State, p int) *State {
	if m.isWriter(p) {
		return m.stepWriter(st, p)
	}
	return m.stepReader(st, p)
}

func (m RW) stepWriter(st *State, p int) *State {
	n := st.Clone()
	loc := n.Loc[p]
	switch n.PC[p] {
	case wPrep:
		n.Mem[nextOf(p)] = -1
		n.Mem[statusOf(p)] = rwWait
		n.PC[p] = wSwap
	case wSwap:
		loc[lPred] = n.Mem[0]
		n.Mem[0] = int64(p)
		if loc[lPred] == -1 {
			n.PC[p] = wBias
		} else {
			n.PC[p] = wLink
		}
	case wLink:
		n.Mem[nextOf(int(loc[lPred]))] = int64(p)
		n.PC[p] = wSpin
	case wSpin:
		s := st.Mem[statusOf(p)]
		if s == rwWait {
			return nil // blocked
		}
		if s == rwModeChange {
			n.PC[p] = wBias
		} else {
			n.PC[p] = wCS // direct pass: the count stays in STATUS_p
		}
	case wBias:
		n.Mem[1] += rwBias
		n.PC[p] = wDrain
	case wDrain:
		// §4.1: wait until no active readers remain.
		if st.Mem[1]-rwBias != st.Mem[2] {
			return nil // blocked
		}
		n.PC[p] = wSetStart
	case wSetStart:
		n.Mem[statusOf(p)] = 0 // ACQUIRE_START
		n.PC[p] = wCS
	case wCS:
		n.PC[p] = wRel
	case wRel:
		loc[lNextStat] = n.Mem[statusOf(p)] + 1
		loc[lReset] = 0
		if loc[lNextStat] == m.TW {
			loc[lNextStat] = rwModeChange
			loc[lReset] = 1
			loc[lCont] = wReadSucc
			n.PC[p] = wResetLock
		} else {
			n.PC[p] = wReadSucc
		}
	case wResetLock:
		if st.Mem[3] != 0 {
			return nil // latch held
		}
		n.Mem[3] = 1
		n.PC[p] = wResetRead
	case wResetRead:
		loc[lArr] = n.Mem[1]
		loc[lDep] = n.Mem[2]
		n.PC[p] = wResetArr
	case wResetArr:
		sub := loc[lDep]
		if loc[lArr] >= rwBias {
			sub += rwBias
		}
		n.Mem[1] -= sub
		n.PC[p] = wResetDep
	case wResetDep:
		n.Mem[2] -= loc[lDep]
		n.PC[p] = wResetRel
	case wResetRel:
		n.Mem[3] = 0
		n.PC[p] = int(loc[lCont])
	case wReadSucc:
		loc[lSucc] = n.Mem[nextOf(p)]
		if loc[lSucc] != -1 {
			n.PC[p] = wPass
			break
		}
		if loc[lReset] == 0 {
			// Pass the lock to the readers before leaving.
			loc[lNextStat] = rwModeChange
			loc[lReset] = 1
			loc[lCont] = wCASTail
			n.PC[p] = wResetLock
		} else {
			n.PC[p] = wCASTail
		}
	case wCASTail:
		if n.Mem[0] == int64(p) {
			n.Mem[0] = -1
			m.finishWriter(n, p)
		} else {
			n.PC[p] = wWaitSucc
		}
	case wWaitSucc:
		if st.Mem[nextOf(p)] == -1 {
			return nil // blocked
		}
		loc[lSucc] = n.Mem[nextOf(p)]
		n.PC[p] = wPass
	case wPass:
		n.Mem[statusOf(int(loc[lSucc]))] = loc[lNextStat]
		m.finishWriter(n, p)
	default:
		return nil
	}
	return n
}

func (m RW) finishWriter(st *State, p int) {
	st.Loc[p][lIter]++
	if int(st.Loc[p][lIter]) >= m.Iters {
		st.PC[p] = wEnd
	} else {
		st.PC[p] = wPrep
	}
}

func (m RW) stepReader(st *State, p int) *State {
	n := st.Clone()
	loc := n.Loc[p]
	switch n.PC[p] {
	case rBarrier:
		if loc[lReset] != 0 && st.Mem[1] >= m.TR {
			return nil // blocked waiting for a counter reset
		}
		n.PC[p] = rFAO
	case rFAO:
		loc[lPred] = n.Mem[1] // cur
		n.Mem[1]++
		if loc[lPred] < m.TR {
			n.PC[p] = rCS
		} else {
			loc[lReset] = 1 // barrier
			n.PC[p] = rCheck
		}
	case rCheck:
		if loc[lPred] == m.TR {
			n.PC[p] = rTail
		} else {
			n.PC[p] = rDec
		}
	case rTail:
		if n.Mem[0] == -1 { // no waiting writers: reopen the counter
			n.PC[p] = rResetLock
		} else {
			n.PC[p] = rDec
		}
	case rResetLock:
		if st.Mem[3] != 0 {
			return nil // latch held
		}
		n.Mem[3] = 1
		n.PC[p] = rResetRead
	case rResetRead:
		loc[lArr] = n.Mem[1]
		loc[lDep] = n.Mem[2]
		n.PC[p] = rResetArr
	case rResetArr:
		// Reader-side reset never strips the WRITE bias: a writer may
		// have switched the counter to WRITE between our TAIL probe and
		// this reset, and stripping its bias would wedge its drain loop
		// forever (found by this model checker; see DESIGN.md).
		n.Mem[1] -= loc[lDep]
		n.PC[p] = rResetDep
	case rResetDep:
		n.Mem[2] -= loc[lDep]
		n.PC[p] = rResetRel
	case rResetRel:
		n.Mem[3] = 0
		loc[lReset] = 0 // barrier off
		n.PC[p] = rDec
	case rDec:
		n.Mem[1]--
		n.PC[p] = rBarrier
	case rCS:
		n.PC[p] = rRel
	case rRel:
		n.Mem[2]++
		loc[lReset] = 0
		loc[lIter]++
		if int(loc[lIter]) >= m.Iters {
			n.PC[p] = rEnd
		} else {
			n.PC[p] = rBarrier
		}
	default:
		return nil
	}
	return n
}

// Check implements Model: one writer at most, and never a writer together
// with a reader.
func (m RW) Check(st *State) error {
	writers, readers := 0, 0
	for p := 0; p < m.procs(); p++ {
		switch st.PC[p] {
		case wCS:
			writers++
		case rCS:
			readers++
		}
	}
	if writers > 1 {
		return fmt.Errorf("two writers in CS")
	}
	if writers == 1 && readers > 0 {
		return fmt.Errorf("writer sharing CS with %d readers", readers)
	}
	return nil
}
