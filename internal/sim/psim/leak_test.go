package psim_test

import (
	"runtime"
	"testing"
	"time"

	"rmalocks/internal/sim"
	"rmalocks/internal/sim/psim"
)

// waitGoroutines polls until the live goroutine count drops to at most
// want (process goroutines unwind asynchronously after Run returns).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d live, want <= %d\n%s",
				n, want, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(time.Millisecond)
	}
}

// TestNoGoroutineLeakAfterTeardown checks psim's normal teardown: all
// process goroutines — including ones that blocked and were woken —
// are gone once Run returns.
func TestNoGoroutineLeakAfterTeardown(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := psim.New(sim.Config{Procs: 32})
	err := s.Run(func(h *psim.Handle) {
		t0 := int64(1 + h.ID())
		h.BeginAccess(t0, 0, 1, -1)
		h.EndAccess(0, t0+1)
		h.Barrier()
		h.Advance(5)
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Release()
	waitGoroutines(t, baseline)
}

// TestNoGoroutineLeakAfterAbort checks the failure teardown: an abort
// mid-run (time limit) must release every goroutine parked in the
// grant channel, a slot turnstile or a barrier — the paths failLocked
// and wakeSlots cover.
func TestNoGoroutineLeakAfterAbort(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := psim.New(sim.Config{Procs: 32, TimeLimit: 1000})
	err := s.Run(func(h *psim.Handle) {
		if h.ID() == 0 {
			for {
				h.Advance(400) // rank 0 trips the limit
			}
		}
		// Everyone else parks at the barrier, which can never complete.
		h.Barrier()
	})
	if err == nil {
		t.Fatal("expected time-limit error")
	}
	waitGoroutines(t, baseline)
}
