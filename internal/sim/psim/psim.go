// Package psim is the conservative parallel discrete-event engine: the
// third scheduler next to the token-owned fast path (internal/sim) and
// the reference implementation (internal/sim/refsim).
//
// The sequential engines execute every shared-memory access (an RMA op's
// issue-time memory effect, the busy-horizon update, watcher wake-ups) in
// strictly increasing (virtual time, rank) order — that order IS the
// simulated machine's linearization. psim reproduces exactly the same
// order while letting process goroutines run concurrently between
// accesses: each access first passes a conservative gate that grants
// requests in global (t, id) order, and the granted effect then executes
// on the caller's own goroutine, serialized per *target* rank by a ticket
// turnstile. Effects on different targets touch disjoint machine state
// (the target's window words, busy horizon and watcher lists), so they
// run genuinely in parallel.
//
// The gate's lookahead comes from the latency model (see package rma): a
// granted-but-unfinished op at time t cannot issue its *next* access
// before t plus the op's minimum duration (RTT + occupancy at its
// distance), and cannot wake a blocked process before t plus half an RTT
// plus occupancy plus the minimum detection latency — the topology's
// minimum RTT bound of the conservative-PDES literature. A request
// (t, id) is granted as soon as no other process can still produce an
// access ordered before it; this is the charge-coalescing horizon of the
// fast engine lifted from "one process may run ahead" to "all processes
// may run ahead, within the lookahead window".
//
// The engine shares sim.Config and sim's sentinel errors, and emits the
// same semantic trace events at the same clocks (EvBlock/EvWake/
// EvBarrier and everything package rma emits). It does not emit
// EvDispatch: there is no execution token to hand off, so that
// (ClassSched) event is meaningless here — differential trace
// comparisons against the sequential engines filter it out.
package psim

import (
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"rmalocks/internal/obs"
	"rmalocks/internal/sim"
	"rmalocks/internal/trace"
)

// abortSignal is panicked inside process goroutines when the simulation is
// torn down early; the Run wrapper recovers it.
type abortSignal struct{}

// state is a process's position in the gate protocol.
type state uint8

const (
	// stRun: executing body code; p.bound lower-bounds its next access time.
	stRun state = iota
	// stReq: waiting in the request heap for a grant.
	stReq
	// stInOp: granted; the access effect is executing on p's goroutine.
	stInOp
	// stBlocked: parked in SpinUntil, waiting for a watcher wake-up.
	stBlocked
	// stBarrier: arrived at the barrier.
	stBarrier
	// stExited: body returned.
	stExited
)

type proc struct {
	id    int
	clock int64 // owned by p's goroutine; wakers/barrier write it under s.mu while p is parked
	state state
	// bound (valid while stRun) lower-bounds the virtual time of p's next
	// access: the completion time of its previous one.
	bound int64
	// Request fields (valid while stReq).
	reqT    int64 // access time — the grant key is (reqT, id)
	reqDur  int64 // lookahead: minimum duration of the access
	reqWake int64 // lookahead: minimum delta to any wake-up it can cause; <0 = cannot wake
	// In-flight fields (valid while stInOp).
	opBound   int64 // reqT + reqDur: earliest next access of this proc
	wakeBound int64 // earliest wake-up this effect can cause (MaxInt64 if none)
	target    int   // target rank of the granted access (slot index)
	ticket    uint64
	// conVer stamps constraint-heap entries; bumping it retires them.
	conVer uint64
	grant  chan struct{}
	// tb is the proc's ClassCharge trace buffer (nil when disabled).
	tb *trace.Buf
}

// Handle is a per-process handle passed to the process body. Its methods
// must only be called from that process's goroutine, except WakeAtFrom
// (called by the waking process's goroutine while it holds the target's
// effect slot).
type Handle struct {
	s *Scheduler
	p *proc
}

// ID returns the process id (the simulated rank).
func (h *Handle) ID() int { return h.p.id }

// Clock returns the process's current virtual time in nanoseconds.
func (h *Handle) Clock() int64 { return h.p.clock }

// slot serializes access effects per target rank: tickets are assigned in
// grant order under Scheduler.mu, and effects run in ticket order. The
// slot mutex also carries the happens-before edge between consecutive
// effects on the same target's state.
type slot struct {
	mu   sync.Mutex
	cond *sync.Cond
	turn uint64 // ticket currently allowed to run its effect
	next uint64 // next ticket to assign (guarded by Scheduler.mu)
}

// conEntry is one conservative constraint: no future access from the
// source rank src can be ordered before key (t, id). Entries are retired
// lazily — an entry is live iff its ver still matches the source proc's
// conVer.
type conEntry struct {
	t   int64
	id  int // -1 for wake bounds (an unknown woken process)
	src int32
	ver uint64
}

// Scheduler coordinates the access gate for a fixed set of processes.
// Proc state lives in one contiguous slab indexed by rank id (mirroring
// the memory-flat core of internal/sim); the request and constraint
// heaps traffic in int32 rank ids, not pointers. Per-node constraint
// sharding is deferred (ROADMAP item 2).
type Scheduler struct {
	mu        sync.Mutex
	procs     []proc     // flat per-rank slab; never reallocated after New
	req       []int32    // min-heap of rank ids on (reqT, id): pending access requests
	cons      []conEntry // min-heap on (t, id): conservative lower bounds
	slots     []slot
	live      int
	runCnt    int // processes in stRun
	opCnt     int // processes in stInOp
	arrived   []int32
	syncCost  int64
	timeLimit int64 // 0 = unlimited
	tsink     *trace.Sink
	err       error
	failed    atomic.Bool
	// gm, when non-nil, receives gate instrumentation (cfg.Gate). heldAt
	// is the wall-clock instant the gate mutex was last acquired, written
	// and read only under mu; the accumulated hold time is the engine's
	// measured serial section (ROADMAP item 2). A nil gm reduces every
	// site to one pointer check — the trace.Buf pattern.
	gm     *obs.GateMetrics
	heldAt time.Time
}

// New creates a parallel scheduler for cfg.Procs processes. It shares
// sim.Config (and sim's sentinel errors) so the engines are drop-in
// interchangeable.
func New(cfg sim.Config) *Scheduler {
	if cfg.Procs <= 0 {
		panic(fmt.Sprintf("psim: Procs must be positive, got %d", cfg.Procs))
	}
	if cfg.Procs > sim.MaxProcs {
		panic(fmt.Sprintf("psim: Procs %d exceeds MaxProcs %d", cfg.Procs, sim.MaxProcs))
	}
	s := &Scheduler{
		procs:     make([]proc, cfg.Procs),
		slots:     make([]slot, cfg.Procs),
		live:      cfg.Procs,
		syncCost:  cfg.BarrierCost,
		timeLimit: cfg.TimeLimit,
		gm:        cfg.Gate,
	}
	for i := range s.procs {
		p := &s.procs[i]
		p.id = i
		p.grant = make(chan struct{}, 1)
	}
	for i := range s.slots {
		s.slots[i].cond = sync.NewCond(&s.slots[i].mu)
	}
	if cfg.Trace != nil {
		cfg.Trace.Start(cfg.Procs)
		if cfg.Trace.Has(trace.ClassSched) {
			s.tsink = cfg.Trace
		}
		for i := range s.procs {
			s.procs[i].tb = cfg.Trace.Buf(i, trace.ClassCharge)
		}
	}
	return s
}

// Release is a no-op: psim does not pool its procs. Interface parity with
// sim.Scheduler.
func (s *Scheduler) Release() {}

// lock acquires the gate mutex, stamping the acquisition instant when
// instrumented. All gate entry points go through lock/unlock so the
// accumulated hold time covers the entire serial section.
func (s *Scheduler) lock() {
	s.mu.Lock()
	if s.gm != nil {
		s.heldAt = time.Now()
	}
}

// unlock accumulates the hold time of the critical section opened by
// lock and releases the gate mutex. Timing runs inside the lock, so
// Hold measures pure hold time (the serial section), never wait time.
func (s *Scheduler) unlock() {
	if s.gm != nil {
		s.gm.Hold.Add(time.Since(s.heldAt).Nanoseconds())
		s.gm.Lockings.Inc()
	}
	s.mu.Unlock()
}

// HandleFor returns a handle for process id. Handles carry no
// per-goroutine state, so this is safe to call anywhere; it exists for
// tests that wake one process from another's effect (package rma reaches
// the wakee through the handle stored in its watcher instead).
func (s *Scheduler) HandleFor(id int) *Handle { return &Handle{s: s, p: &s.procs[id]} }

// Run executes body(handle) once per process, each in its own goroutine,
// and returns when all processes have exited (or the simulation aborted).
// Unlike the sequential engines there is no token: all goroutines start
// immediately and only synchronize at the access gate.
func (s *Scheduler) Run(body func(h *Handle)) error {
	s.lock()
	for i := range s.procs {
		p := &s.procs[i]
		p.state = stRun
		p.bound = 0
		p.conVer++
		s.pushCon(0, p.id, p)
	}
	s.runCnt = len(s.procs)
	s.unlock()
	var wg sync.WaitGroup
	wg.Add(len(s.procs))
	for i := range s.procs {
		go func(p *proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortSignal); ok {
						return // torn down by scheduler
					}
					s.fail(fmt.Errorf("psim: process %d panicked: %v\n%s", p.id, r, debug.Stack()))
				}
			}()
			h := &Handle{s: s, p: p}
			body(h)
			h.exit()
		}(&s.procs[i])
	}
	wg.Wait()
	return s.err
}

// Err returns the error recorded by the simulation, if any.
func (s *Scheduler) Err() error {
	s.lock()
	defer s.unlock()
	return s.err
}

// MaxClock returns the largest virtual clock reached by any process.
func (s *Scheduler) MaxClock() int64 {
	s.lock()
	defer s.unlock()
	var max int64
	for i := range s.procs {
		if c := s.procs[i].clock; c > max {
			max = c
		}
	}
	return max
}

// Horizon returns the clock up to which the calling process may advance
// without consulting the scheduler. psim has no token to keep, so the
// only bound is the time limit: charges coalesce until an explicit flush
// point (block, barrier, exit) or the limit. The gate orders accesses by
// their effective time independent of when time is published, so the
// coalescing decision cannot change any interleaving.
func (h *Handle) Horizon() int64 {
	if h.s.timeLimit > 0 {
		return h.s.timeLimit
	}
	return math.MaxInt64
}

// Advance charges d nanoseconds of virtual time to the calling process.
// Purely local: no other process reads a running process's clock (wake-up
// clocks are computed against published clocks of *blocked* processes).
func (h *Handle) Advance(d int64) {
	if d < 1 {
		d = 1
	}
	if h.s.failed.Load() {
		panic(abortSignal{})
	}
	p := h.p
	p.clock += d
	if h.s.timeLimit > 0 && p.clock > h.s.timeLimit {
		h.s.fail(fmt.Errorf("%w (process %d at %d ns)", sim.ErrTimeLimit, p.id, p.clock))
		panic(abortSignal{})
	}
	if p.tb != nil {
		p.tb.Emit(trace.EvAdvance, p.clock, d, 0, 0)
	}
}

// BeginAccess requests the gate for one shared-memory access at virtual
// time t against the target rank. minDur lower-bounds the access's
// duration and minWake the delta to any wake-up it can cause (negative if
// it cannot wake anyone); both come from the caller's latency model. It
// returns once every access ordered before (t, caller) has started and
// all earlier effects on target have finished — the caller then owns the
// target's effect slot until EndAccess or BlockReleasing.
func (h *Handle) BeginAccess(t int64, target int, minDur, minWake int64) {
	s, p := h.s, h.p
	s.lock()
	if s.err != nil {
		s.unlock()
		panic(abortSignal{})
	}
	p.state = stReq
	s.runCnt--
	p.conVer++ // retire the stRun bound
	p.reqT, p.reqDur, p.reqWake = t, minDur, minWake
	p.target = target
	s.pushReq(p)
	s.pumpLocked()
	s.unlock()
	h.waitGrant()
	s.slotAcquire(target, p.ticket)
}

// EndAccess completes the calling process's in-flight access: bound is
// the access's completion time, a lower bound on the process's next
// access. Releases the target's effect slot.
func (h *Handle) EndAccess(target int, bound int64) {
	s, p := h.s, h.p
	s.slotRelease(target)
	s.lock()
	p.state = stRun
	s.opCnt--
	s.runCnt++
	p.bound = bound
	p.conVer++
	s.pushCon(bound, p.id, p)
	s.pumpLocked()
	s.unlock()
}

// BlockReleasing parks the calling process (SpinUntil): it releases the
// target's effect slot and waits until a later effect on that target
// wakes it via WakeAtFrom. On return the process has been re-granted (a
// fresh ticket on the same target) and may re-examine the target's state.
// The caller must have registered its watcher before calling (still under
// the slot), so no satisfying write can slip between registration and the
// park — writes to the target are serialized on the very slot being
// released.
func (h *Handle) BlockReleasing(target int) {
	s, p := h.s, h.p
	s.lock()
	if s.err != nil {
		s.unlock()
		panic(abortSignal{})
	}
	p.state = stBlocked
	s.opCnt--
	p.conVer++
	if s.tsink != nil {
		s.tsink.Buf(p.id, trace.ClassSched).Emit(trace.EvBlock, p.clock, 0, 0, 0)
	}
	s.pumpLocked()
	s.unlock()
	s.slotRelease(target)
	h.waitGrant()
	s.slotAcquire(target, p.ticket)
}

// WakeAtFrom makes the blocked process h runnable with its clock advanced
// to at least clock, re-requesting the gate at that time. It must be
// called from an effect that holds h's blocking target's slot (watcher
// wake-ups always come from a write to that target).
func (h *Handle) WakeAtFrom(clock int64, waker int) {
	s, q := h.s, h.p
	s.lock()
	if s.err != nil {
		s.unlock()
		panic(abortSignal{})
	}
	if q.state != stBlocked {
		s.unlock()
		panic(fmt.Sprintf("psim: wake of non-blocked process %d", q.id))
	}
	if clock > q.clock {
		q.clock = clock
	}
	if s.tsink != nil {
		s.tsink.Buf(q.id, trace.ClassSched).Emit(trace.EvWake, q.clock, int64(waker), 0, 0)
	}
	q.state = stReq
	q.reqT, q.reqDur, q.reqWake = q.clock, 0, -1
	// q.target keeps the slot it blocked on; the recheck re-reads it.
	s.pushReq(q)
	s.pumpLocked()
	s.unlock()
}

// Barrier blocks until every live process has called Barrier, then sets
// all clocks to the maximum arrival time plus the configured cost.
func (h *Handle) Barrier() {
	s, p := h.s, h.p
	s.lock()
	if s.err != nil {
		s.unlock()
		panic(abortSignal{})
	}
	p.state = stBarrier
	s.runCnt--
	p.conVer++
	if s.tsink != nil {
		s.tsink.Buf(p.id, trace.ClassSched).Emit(trace.EvBarrier, p.clock, 0, 0, 0)
	}
	s.arrived = append(s.arrived, int32(p.id))
	if len(s.arrived) == s.live {
		s.releaseBarrierLocked()
	}
	s.pumpLocked()
	s.unlock()
	h.waitGrant()
}

// Block is part of the sequential scheduler interface but unused here:
// package rma's psim path parks via BlockReleasing.
func (h *Handle) Block() {
	panic("psim: Block is not supported; use BlockReleasing")
}

// WakeAt is part of the sequential scheduler interface but unused here:
// package rma's psim path wakes via WakeAtFrom.
// Abort terminates the simulation with err exactly like the sequential
// engines' Handle.Abort: first failure wins, the error is wrapped with
// the aborting process and clock, every parked process is released, and
// the calling goroutine unwinds immediately — Abort never returns.
func (h *Handle) Abort(err error) {
	h.s.fail(fmt.Errorf("%w (process %d at %d ns)", err, h.p.id, h.p.clock))
	panic(abortSignal{})
}

func (h *Handle) WakeAt(clock int64) {
	panic("psim: WakeAt is not supported; use WakeAtFrom")
}

// releaseBarrierLocked completes the current barrier. Caller holds s.mu.
func (s *Scheduler) releaseBarrierLocked() {
	var max int64
	for _, qi := range s.arrived {
		if c := s.procs[qi].clock; c > max {
			max = c
		}
	}
	max += s.syncCost
	for _, qi := range s.arrived {
		q := &s.procs[qi]
		q.clock = max
		q.state = stRun
		q.bound = max
		q.conVer++
		s.pushCon(max, q.id, q)
		s.runCnt++
		s.sendGrant(q)
	}
	s.arrived = s.arrived[:0]
}

// exit removes the process from the simulation.
func (h *Handle) exit() {
	s, p := h.s, h.p
	s.lock()
	if s.err != nil {
		s.unlock()
		return
	}
	p.state = stExited
	p.conVer++
	s.runCnt--
	s.live--
	if s.live > 0 && len(s.arrived) == s.live {
		s.releaseBarrierLocked()
	}
	s.pumpLocked()
	s.unlock()
}

// pumpLocked grants every request that is now safe, in global (t, id)
// order: the heap-minimum request K is granted iff no live conservative
// constraint — a running process's bound, an in-flight op's earliest next
// access, or an in-flight op's earliest possible wake-up — is ordered at
// or before K. In-flight effects always drain (per-target ticket order is
// grant order, and an effect never waits on a later grant), so the gate
// cannot deadlock on its own constraints. Afterwards it checks for
// genuine simulation deadlock: nothing runnable, nothing requested,
// nothing in flight, yet live processes remain parked.
func (s *Scheduler) pumpLocked() {
	if s.gm != nil {
		// Sample queue occupancy at every pump: these depths are what a
		// per-node sharding of the gate (ROADMAP item 2) would split.
		s.gm.ReqDepth.Observe(0, int64(len(s.req)))
		s.gm.ConsDepth.Observe(0, int64(len(s.cons)))
	}
	for len(s.req) > 0 {
		p := &s.procs[s.req[0]]
		ct, cid, ok := s.minConLocked()
		if ok && !keyLess(p.reqT, p.id, ct, cid) {
			break
		}
		s.popReq()
		if s.gm != nil && ok {
			// Virtual-ns slack between the granted request and the
			// earliest conservative constraint: how far inside the
			// lookahead window the grant was.
			s.gm.Slack.Observe(0, ct-p.reqT)
		}
		s.grantLocked(p)
	}
	if len(s.req) == 0 && s.opCnt == 0 && s.runCnt == 0 &&
		s.live > 0 && len(s.arrived) < s.live && s.err == nil {
		s.failLocked(sim.ErrDeadlock)
	}
}

// grantLocked moves p from stReq to stInOp, assigns its effect ticket on
// the target slot (in grant order — this is what serializes same-target
// effects in linearization order) and publishes its in-flight bounds.
func (s *Scheduler) grantLocked(p *proc) {
	if s.gm != nil {
		s.gm.Grants.Inc()
	}
	p.state = stInOp
	s.opCnt++
	p.conVer++
	p.opBound = p.reqT + p.reqDur
	s.pushCon(p.opBound, p.id, p)
	if p.reqWake >= 0 {
		p.wakeBound = p.reqT + p.reqWake
		s.pushCon(p.wakeBound, -1, p)
	} else {
		p.wakeBound = math.MaxInt64
	}
	sl := &s.slots[p.target]
	p.ticket = sl.next
	sl.next++
	s.sendGrant(p)
}

// waitGrant parks until the scheduler grants the process (or tears the
// simulation down).
func (h *Handle) waitGrant() {
	<-h.p.grant
	if h.s.failed.Load() {
		panic(abortSignal{})
	}
}

// slotAcquire waits until the caller's ticket is up on the target slot.
func (s *Scheduler) slotAcquire(target int, ticket uint64) {
	sl := &s.slots[target]
	sl.mu.Lock()
	for sl.turn != ticket {
		if s.failed.Load() {
			sl.mu.Unlock()
			panic(abortSignal{})
		}
		sl.cond.Wait()
	}
	sl.mu.Unlock()
	if s.failed.Load() {
		panic(abortSignal{})
	}
}

func (s *Scheduler) slotRelease(target int) {
	sl := &s.slots[target]
	sl.mu.Lock()
	sl.turn++
	sl.cond.Broadcast()
	sl.mu.Unlock()
}

// fail aborts the simulation with err (first error wins) and wakes every
// parked process so its goroutine can unwind.
func (s *Scheduler) fail(err error) {
	s.lock()
	s.failLocked(err)
	s.unlock()
}

func (s *Scheduler) failLocked(err error) {
	if s.err != nil {
		return
	}
	s.err = err
	s.failed.Store(true)
	for i := range s.procs {
		if p := &s.procs[i]; p.state != stExited {
			s.sendGrant(p)
		}
	}
	// Slot waiters need a broadcast under the slot mutex; s.mu must not
	// nest inside slot mutexes (WakeAtFrom holds a slot when it takes
	// s.mu), so hand the broadcasts to a fresh goroutine.
	go s.wakeSlots()
}

func (s *Scheduler) wakeSlots() {
	for i := range s.slots {
		sl := &s.slots[i]
		sl.mu.Lock()
		sl.cond.Broadcast()
		sl.mu.Unlock()
	}
}

func (s *Scheduler) sendGrant(p *proc) {
	select {
	case p.grant <- struct{}{}:
	default:
		// Already has a pending grant (only possible during teardown).
	}
}

func keyLess(at int64, aid int, bt int64, bid int) bool {
	if at != bt {
		return at < bt
	}
	return aid < bid
}

// Request heap: min-heap of requesting rank ids on (reqT, id).

// reqLess orders two queued rank ids by their request key (reqT, id).
func (s *Scheduler) reqLess(a, b int32) bool {
	pa, pb := &s.procs[a], &s.procs[b]
	return keyLess(pa.reqT, pa.id, pb.reqT, pb.id)
}

func (s *Scheduler) pushReq(p *proc) {
	s.req = append(s.req, int32(p.id))
	i := len(s.req) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.reqLess(s.req[i], s.req[parent]) {
			break
		}
		s.req[i], s.req[parent] = s.req[parent], s.req[i]
		i = parent
	}
}

func (s *Scheduler) popReq() *proc {
	top := s.req[0]
	n := len(s.req) - 1
	s.req[0] = s.req[n]
	s.req = s.req[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s.reqLess(s.req[l], s.req[small]) {
			small = l
		}
		if r < n && s.reqLess(s.req[r], s.req[small]) {
			small = r
		}
		if small == i {
			break
		}
		s.req[i], s.req[small] = s.req[small], s.req[i]
		i = small
	}
	return &s.procs[top]
}

// Constraint heap: min-heap of conservative bounds on (t, id), retired
// lazily by version stamp.

func (s *Scheduler) pushCon(t int64, id int, p *proc) {
	s.cons = append(s.cons, conEntry{t: t, id: id, src: int32(p.id), ver: p.conVer})
	i := len(s.cons) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !keyLess(s.cons[i].t, s.cons[i].id, s.cons[parent].t, s.cons[parent].id) {
			break
		}
		s.cons[i], s.cons[parent] = s.cons[parent], s.cons[i]
		i = parent
	}
}

// minConLocked returns the smallest live constraint key, discarding
// retired entries from the top. Caller holds s.mu.
func (s *Scheduler) minConLocked() (t int64, id int, ok bool) {
	for len(s.cons) > 0 {
		e := s.cons[0]
		if e.ver == s.procs[e.src].conVer {
			return e.t, e.id, true
		}
		s.popCon()
	}
	return 0, 0, false
}

func (s *Scheduler) popCon() {
	n := len(s.cons) - 1
	s.cons[0] = s.cons[n]
	s.cons[n] = conEntry{}
	s.cons = s.cons[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && keyLess(s.cons[l].t, s.cons[l].id, s.cons[small].t, s.cons[small].id) {
			small = l
		}
		if r < n && keyLess(s.cons[r].t, s.cons[r].id, s.cons[small].t, s.cons[small].id) {
			small = r
		}
		if small == i {
			break
		}
		s.cons[i], s.cons[small] = s.cons[small], s.cons[i]
		i = small
	}
}
