package psim_test

import (
	"errors"
	"sync"
	"testing"

	"rmalocks/internal/sim"
	"rmalocks/internal/sim/psim"
)

// TestGateGrantOrder pins the core guarantee: accesses are granted in
// global (time, id) order. Every process requests one access against the
// same target with request times *decreasing* in process id, so the
// grant order must be the reverse of the id order. The shared log is
// safe to append to without extra locking only because same-target
// effects serialize on the target's slot — which is itself part of what
// the test verifies.
func TestGateGrantOrder(t *testing.T) {
	const procs = 8
	var order []int
	s := psim.New(sim.Config{Procs: procs})
	err := s.Run(func(h *psim.Handle) {
		reqT := int64(100 * (procs - h.ID()))
		h.BeginAccess(reqT, 0, 1, -1)
		order = append(order, h.ID())
		h.EndAccess(0, reqT+1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != procs {
		t.Fatalf("recorded %d accesses, want %d", len(order), procs)
	}
	for i, id := range order {
		if want := procs - 1 - i; id != want {
			t.Fatalf("grant order %v: position %d is process %d, want %d", order, i, id, want)
		}
	}
}

// TestGateTieBreak pins the id tie-break at equal request times.
func TestGateTieBreak(t *testing.T) {
	const procs = 6
	var order []int
	s := psim.New(sim.Config{Procs: procs})
	err := s.Run(func(h *psim.Handle) {
		h.BeginAccess(42, 0, 1, -1)
		order = append(order, h.ID())
		h.EndAccess(0, 43)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("grant order %v: ties must break by id", order)
		}
	}
}

// TestBarrier verifies clocks synchronize to the maximum arrival plus the
// configured cost.
func TestBarrier(t *testing.T) {
	const procs = 4
	var mu sync.Mutex
	after := make(map[int]int64)
	s := psim.New(sim.Config{Procs: procs, BarrierCost: 500})
	err := s.Run(func(h *psim.Handle) {
		h.Advance(int64(1000 * (h.ID() + 1)))
		h.Barrier()
		mu.Lock()
		after[h.ID()] = h.Clock()
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range after {
		if c != 4500 {
			t.Errorf("process %d clock after barrier = %d, want 4500", id, c)
		}
	}
	if got := s.MaxClock(); got != 4500 {
		t.Errorf("MaxClock = %d, want 4500", got)
	}
}

// TestDeadlock: every process parks with nobody left to wake it.
func TestDeadlock(t *testing.T) {
	s := psim.New(sim.Config{Procs: 3})
	err := s.Run(func(h *psim.Handle) {
		h.BeginAccess(0, h.ID(), 0, -1)
		h.BlockReleasing(h.ID()) // nobody will wake us
	})
	if !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

// TestBarrierDeadlock: one process parks while the rest wait in the
// barrier; the barrier can never complete.
func TestBarrierDeadlock(t *testing.T) {
	s := psim.New(sim.Config{Procs: 3})
	err := s.Run(func(h *psim.Handle) {
		if h.ID() == 0 {
			h.BeginAccess(0, 0, 0, -1)
			h.BlockReleasing(0)
			return
		}
		h.Barrier()
	})
	if !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

// TestTimeLimit: advancing past the limit aborts the run.
func TestTimeLimit(t *testing.T) {
	s := psim.New(sim.Config{Procs: 2, TimeLimit: 1000})
	err := s.Run(func(h *psim.Handle) {
		for i := 0; i < 100; i++ {
			h.Advance(50)
		}
		h.Barrier()
	})
	if !errors.Is(err, sim.ErrTimeLimit) {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
}

// TestWake exercises the park/wake handshake: process 0 parks on its own
// slot, process 1 wakes it from an effect holding that slot.
func TestWake(t *testing.T) {
	const wakeClock = 7700
	var woken int64 = -1
	s := psim.New(sim.Config{Procs: 2})
	err := s.Run(func(h *psim.Handle) {
		switch h.ID() {
		case 0:
			h.BeginAccess(0, 0, 0, -1)
			h.BlockReleasing(0) // re-granted at the wake clock
			woken = h.Clock()
			h.EndAccess(0, h.Clock())
		case 1:
			// An access on target 0 that can wake: minWake 100 means the
			// gate holds back any request at or past t+100 until we
			// finish. The wakee is parked by the time our grant arrives:
			// its in-flight bound from the request at t=0 blocks ours
			// until it calls BlockReleasing.
			h.BeginAccess(10, 0, 200, 100)
			s.HandleFor(0).WakeAtFrom(wakeClock, 1)
			h.EndAccess(0, 210)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if woken != wakeClock {
		t.Errorf("woken clock = %d, want %d", woken, wakeClock)
	}
}
