package sim

import (
	"runtime"
	"testing"
	"time"
)

// waitGoroutines polls until the live goroutine count drops to at most
// want, failing after a deadline. Process goroutines unwind
// asynchronously after Run returns (the final barrier release or exit
// handoff happens before the last goroutine's deferred cleanup runs),
// so an immediate read would race with their teardown.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // finalize any park channels being collected
		n := runtime.NumGoroutine()
		if n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d live, want <= %d\n%s",
				n, want, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(time.Millisecond)
	}
}

// TestNoGoroutineLeakAfterRelease is the leak regression test of the
// pooled scheduler core: after Run and Release — and after a second
// scheduler reacquires the pooled core and runs again — the goroutine
// count returns to the pre-run baseline (a leaked parked rank would
// hold its goroutine forever).
func TestNoGoroutineLeakAfterRelease(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		s := New(Config{Procs: 64})
		err := s.Run(func(h *Handle) {
			h.Advance(int64(1 + h.ID()))
			h.Barrier() // every rank parks at least once
			h.Advance(10)
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Release() // round > 0 reacquires the pooled core
		waitGoroutines(t, baseline)
	}
}

// TestNoGoroutineLeakAfterAbort checks the teardown path: a time-limit
// abort mid-run must still unwind every parked process goroutine.
func TestNoGoroutineLeakAfterAbort(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New(Config{Procs: 64, TimeLimit: 500})
	err := s.Run(func(h *Handle) {
		for {
			h.Advance(100) // every rank eventually trips the limit
		}
	})
	if err == nil {
		t.Fatal("expected time-limit error")
	}
	s.Release()
	waitGoroutines(t, baseline)
}
