package sim_test

// Engine-level benchmarks. The headline pair is
// BenchmarkAdvanceUncontended vs BenchmarkAdvanceUncontendedRef: the
// token-owned fast path against the reference (global-mutex,
// container/heap) engine on the same uncontended Advance pattern — the
// overwhelmingly common case under think time and local spins. The fast
// path must be allocation-free and ≥3× cheaper; `make bench` records
// both in BENCH_3.json so future PRs can gate on the ratio.

import (
	"testing"

	"rmalocks/internal/sim"
	"rmalocks/internal/sim/refsim"
	"rmalocks/internal/trace"
)

// BenchmarkAdvanceUncontended measures the fast path: process 1 parks far
// in the future, so every Advance of process 0 stays below its cached
// horizon — a lock-free, heap-free, channel-free clock increment.
func BenchmarkAdvanceUncontended(b *testing.B) {
	s := sim.New(sim.Config{Procs: 2})
	b.ReportAllocs()
	err := s.Run(func(h *sim.Handle) {
		if h.ID() == 1 {
			h.Advance(1 << 40) // park beyond any b.N of 1ns steps
			return
		}
		h.Advance(1) // hand process 1 its slot, take the token back
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Advance(1)
		}
		b.StopTimer()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAdvanceUncontendedRef is the identical pattern on the refsim
// reference engine: every Advance takes the global mutex and does two
// boxed container/heap operations even though no reschedule happens.
func BenchmarkAdvanceUncontendedRef(b *testing.B) {
	s := refsim.New(sim.Config{Procs: 2})
	b.ReportAllocs()
	err := s.Run(func(h *refsim.Handle) {
		if h.ID() == 1 {
			h.Advance(1 << 40)
			return
		}
		h.Advance(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Advance(1)
		}
		b.StopTimer()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAdvanceTraced is BenchmarkAdvanceUncontended with full
// tracing (ClassAll) enabled. The pair pins both sides of the tracing
// guard: tracing emits only from the slow (already-locked) scheduler
// paths and the RMA layer's coalescing boundaries, so the lock-free
// fast path is byte-for-byte the untraced code — this benchmark must
// stay at BenchmarkAdvanceUncontended's cost, proving that enabling
// tracing does not tax the ~2ns uncontended Advance at all. (The
// per-event emission cost itself is bounded by the trace package's
// append: one fixed-size store plus a sequence increment.)
func BenchmarkAdvanceTraced(b *testing.B) {
	sink := trace.New(trace.ClassAll)
	s := sim.New(sim.Config{Procs: 2, Trace: sink})
	b.ReportAllocs()
	err := s.Run(func(h *sim.Handle) {
		if h.ID() == 1 {
			h.Advance(1 << 40)
			return
		}
		h.Advance(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Advance(1)
		}
		b.StopTimer()
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSchedulerRun measures a whole simulation: procs × advances
// virtual operations including goroutine handoff and the proc-pool
// recycling across runs, the end-to-end cost a workload harness run pays
// per simulated op.
func BenchmarkSchedulerRun(b *testing.B) {
	const procs, advances = 16, 200
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := sim.New(sim.Config{Procs: procs})
		err := s.Run(func(h *sim.Handle) {
			for k := 0; k < advances; k++ {
				h.Advance(int64(k%7) + 1)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Release()
	}
	b.ReportMetric(float64(procs*advances), "ops/run")
}

// BenchmarkSchedulerRunRef is the same end-to-end simulation on the
// reference engine.
func BenchmarkSchedulerRunRef(b *testing.B) {
	const procs, advances = 16, 200
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := refsim.New(sim.Config{Procs: procs})
		err := s.Run(func(h *refsim.Handle) {
			for k := 0; k < advances; k++ {
				h.Advance(int64(k%7) + 1)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(procs*advances), "ops/run")
}
