// Package refsim is the reference scheduler: the original global-mutex,
// container/heap implementation of internal/sim, kept as an independent
// oracle for the token-owned fast-path rewrite. Every operation takes the
// scheduler lock and goes through the boxed heap — slow, but so simple it
// is easy to audit.
//
// The differential determinism suite in internal/workload runs every lock
// scheme × contention profile on both engines and requires byte-identical
// reports and equal MaxClock. Horizon is provided for parity with the
// fast engine (package rma's charge coalescing reads it); it computes
// under the lock the exact value the fast engine caches, so coalescing
// decisions — and therefore interleavings — match between engines.
package refsim

import (
	"container/heap"
	"fmt"
	"math"
	"runtime/debug"
	"sync"

	"rmalocks/internal/sim"
	"rmalocks/internal/trace"
)

// abortSignal is panicked inside process goroutines when the simulation is
// torn down early; the Run wrapper recovers it.
type abortSignal struct{}

type proc struct {
	id      int
	clock   int64
	wake    chan struct{}
	inHeap  bool
	heapIdx int
	blocked bool // waiting in a barrier
	exited  bool
	// tb is the proc's ClassCharge trace buffer (nil when disabled),
	// mirroring the fast engine's instrumentation.
	tb *trace.Buf
}

// Handle is a per-process handle passed to the process body. Its methods
// must only be called from that process's goroutine.
type Handle struct {
	s *Scheduler
	p *proc
}

// ID returns the process id (the simulated rank).
func (h *Handle) ID() int { return h.p.id }

// Clock returns the process's current virtual time in nanoseconds.
func (h *Handle) Clock() int64 { return h.p.clock }

// Scheduler coordinates the virtual clocks of a fixed set of processes.
type Scheduler struct {
	mu        sync.Mutex
	procs     []*proc
	heap      procHeap
	live      int
	arrived   []*proc     // processes blocked in the current barrier
	syncCost  int64       // virtual cost charged by a barrier
	timeLimit int64       // 0 = unlimited
	running   *proc       // current token holder (trace attribution)
	tsink     *trace.Sink // non-nil only when ClassSched tracing is on
	err       error
}

// New creates a reference scheduler for cfg.Procs processes. It shares
// sim.Config (and sim's sentinel errors) so the two engines are drop-in
// interchangeable.
func New(cfg sim.Config) *Scheduler {
	if cfg.Procs <= 0 {
		panic(fmt.Sprintf("refsim: Procs must be positive, got %d", cfg.Procs))
	}
	s := &Scheduler{
		procs:     make([]*proc, cfg.Procs),
		live:      cfg.Procs,
		syncCost:  cfg.BarrierCost,
		timeLimit: cfg.TimeLimit,
	}
	for i := range s.procs {
		s.procs[i] = &proc{id: i, wake: make(chan struct{}, 1), heapIdx: -1}
	}
	if cfg.Trace != nil {
		cfg.Trace.Start(cfg.Procs)
		if cfg.Trace.Has(trace.ClassSched) {
			s.tsink = cfg.Trace
		}
		for i, p := range s.procs {
			p.tb = cfg.Trace.Buf(i, trace.ClassCharge)
		}
	}
	return s
}

// Release is a no-op: the reference engine does not pool its procs. It
// exists for interface parity with sim.Scheduler.
func (s *Scheduler) Release() {}

// Run executes body(handle) once per process, each in its own goroutine,
// and returns when all processes have exited (or the simulation aborted).
// A panic inside a body aborts the whole simulation and is returned as an
// error. Run may only be called once per Scheduler.
func (s *Scheduler) Run(body func(h *Handle)) error {
	var wg sync.WaitGroup
	wg.Add(len(s.procs))
	for _, p := range s.procs {
		go func(p *proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortSignal); ok {
						return // torn down by scheduler
					}
					s.fail(fmt.Errorf("refsim: process %d panicked: %v\n%s", p.id, r, debug.Stack()))
				}
			}()
			h := &Handle{s: s, p: p}
			h.park() // wait for the initial token
			body(h)
			h.exit()
		}(p)
	}
	s.mu.Lock()
	for _, p := range s.procs {
		s.push(p)
	}
	s.sendWake(s.dispatchLocked())
	s.mu.Unlock()
	wg.Wait()
	return s.err
}

// Err returns the error recorded by the simulation, if any.
func (s *Scheduler) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// MaxClock returns the largest virtual clock reached by any process.
func (s *Scheduler) MaxClock() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max int64
	for _, p := range s.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// Horizon returns the largest clock the calling process can advance to
// while keeping the execution token, computed fresh from the heap top —
// the exact value the fast engine caches at dispatch (including the
// time-limit clamp), so charge coalescing behaves identically on both
// engines.
func (h *Handle) Horizon() int64 {
	s := h.s
	s.mu.Lock()
	defer s.mu.Unlock()
	hz := int64(math.MaxInt64)
	if len(s.heap) > 0 {
		top := s.heap[0]
		hz = top.clock
		if h.p.id > top.id {
			hz--
		}
	}
	if s.timeLimit > 0 && hz > s.timeLimit {
		hz = s.timeLimit
	}
	return hz
}

// Advance charges d nanoseconds of virtual time to the calling process and
// yields the execution token if another process now has the minimum clock.
// Advance enforces d >= 1.
func (h *Handle) Advance(d int64) {
	if d < 1 {
		d = 1
	}
	s := h.s
	p := h.p
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		panic(abortSignal{})
	}
	p.clock += d
	if s.timeLimit > 0 && p.clock > s.timeLimit {
		s.failLocked(fmt.Errorf("%w (process %d at %d ns)", sim.ErrTimeLimit, p.id, p.clock))
		s.mu.Unlock()
		panic(abortSignal{})
	}
	if p.tb != nil {
		p.tb.Emit(trace.EvAdvance, p.clock, d, 0, 0)
	}
	s.push(p)
	next := s.dispatchLocked()
	if next == p {
		s.mu.Unlock()
		return
	}
	s.sendWake(next)
	s.mu.Unlock()
	h.park()
}

// Barrier blocks until every live process has called Barrier, then sets all
// clocks to the maximum arrival time plus the configured barrier cost.
func (h *Handle) Barrier() {
	s := h.s
	p := h.p
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		panic(abortSignal{})
	}
	p.blocked = true
	if s.tsink != nil {
		s.tsink.Buf(p.id, trace.ClassSched).Emit(trace.EvBarrier, p.clock, 0, 0, 0)
	}
	s.arrived = append(s.arrived, p)
	if len(s.arrived) == s.live {
		s.releaseBarrierLocked()
		next := s.dispatchLocked()
		if next == p {
			s.mu.Unlock()
			return
		}
		s.sendWake(next)
		s.mu.Unlock()
		h.park()
		return
	}
	if len(s.heap) == 0 {
		s.failLocked(sim.ErrDeadlock)
		s.mu.Unlock()
		panic(abortSignal{})
	}
	next := s.dispatchLocked()
	s.sendWake(next)
	s.mu.Unlock()
	h.park()
}

// Block removes the calling process from scheduling until another process
// calls Wake on it.
func (h *Handle) Block() {
	s := h.s
	p := h.p
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		panic(abortSignal{})
	}
	p.blocked = true
	if s.tsink != nil {
		s.tsink.Buf(p.id, trace.ClassSched).Emit(trace.EvBlock, p.clock, 0, 0, 0)
	}
	if len(s.heap) == 0 {
		s.failLocked(sim.ErrDeadlock)
		s.mu.Unlock()
		panic(abortSignal{})
	}
	next := s.dispatchLocked()
	s.sendWake(next)
	s.mu.Unlock()
	h.park()
}

// releaseBarrierLocked completes the current barrier (see sim). Caller
// must hold s.mu.
func (s *Scheduler) releaseBarrierLocked() {
	var max int64
	for _, q := range s.arrived {
		if q.clock > max {
			max = q.clock
		}
	}
	max += s.syncCost
	for _, q := range s.arrived {
		q.clock = max
		q.blocked = false
		s.push(q)
	}
	s.arrived = s.arrived[:0]
}

// WakeAt makes the blocked process h runnable again with its virtual
// clock advanced to at least clock. It must be called by the currently
// running process, which keeps the execution token.
func (h *Handle) WakeAt(clock int64) {
	s := h.s
	q := h.p
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		panic(abortSignal{})
	}
	if q.exited {
		s.mu.Unlock()
		panic(fmt.Sprintf("refsim: Wake of exited process %d (its body already returned)", q.id))
	}
	if !q.blocked {
		s.mu.Unlock()
		panic(fmt.Sprintf("refsim: Wake of non-blocked process %d", q.id))
	}
	q.blocked = false
	if clock > q.clock {
		q.clock = clock
	}
	if s.tsink != nil {
		waker := int64(-1)
		if s.running != nil {
			waker = int64(s.running.id)
		}
		s.tsink.Buf(q.id, trace.ClassSched).Emit(trace.EvWake, q.clock, waker, 0, 0)
	}
	s.push(q)
	s.mu.Unlock()
}

// Wake makes the blocked process q runnable again with its virtual clock
// advanced to at least clock; the caller keeps the execution token.
func (h *Handle) Wake(q *Handle, clock int64) { q.WakeAt(clock) }

// Abort terminates the simulation with err exactly like the fast
// engine's Handle.Abort: first failure wins, the error is wrapped with
// the aborting process and clock, and the calling goroutine unwinds
// immediately — Abort never returns.
func (h *Handle) Abort(err error) {
	s := h.s
	s.mu.Lock()
	s.failLocked(fmt.Errorf("%w (process %d at %d ns)", err, h.p.id, h.p.clock))
	s.mu.Unlock()
	panic(abortSignal{})
}

// park blocks the calling process until it is woken with the token.
func (h *Handle) park() {
	<-h.p.wake
	h.s.mu.Lock()
	err := h.s.err
	h.s.mu.Unlock()
	if err != nil {
		panic(abortSignal{})
	}
}

// exit removes the process from the simulation and hands the token on.
func (h *Handle) exit() {
	s := h.s
	p := h.p
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		return
	}
	p.exited = true
	s.live--
	if s.live == 0 {
		s.mu.Unlock()
		return
	}
	// Invariant: s.live >= 1 here, so a matching arrived count means every
	// remaining live process is blocked in the barrier we can now release.
	if len(s.arrived) == s.live {
		s.releaseBarrierLocked()
	}
	if len(s.heap) == 0 {
		s.failLocked(sim.ErrDeadlock)
		s.mu.Unlock()
		return
	}
	next := s.dispatchLocked()
	s.sendWake(next)
	s.mu.Unlock()
}

// fail aborts the simulation with err (first error wins) and wakes every
// parked process so its goroutine can unwind.
func (s *Scheduler) fail(err error) {
	s.mu.Lock()
	s.failLocked(err)
	s.mu.Unlock()
}

func (s *Scheduler) failLocked(err error) {
	if s.err == nil {
		s.err = err
	}
	for _, p := range s.procs {
		if !p.exited {
			select {
			case p.wake <- struct{}{}:
			default:
			}
		}
	}
}

func (s *Scheduler) sendWake(p *proc) {
	select {
	case p.wake <- struct{}{}:
	default:
		// Already has a pending wake (only possible during teardown).
	}
}

// heap helpers (min-heap on (clock, id)) — deliberately container/heap
// with interface boxing, exactly the pre-rewrite implementation.

type procHeap []*proc

func (h procHeap) Len() int { return len(h) }
func (h procHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].id < h[j].id
}
func (h procHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *procHeap) Push(x any) {
	p := x.(*proc)
	p.heapIdx = len(*h)
	*h = append(*h, p)
}
func (h *procHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	p.heapIdx = -1
	*h = old[:n-1]
	return p
}

func (s *Scheduler) push(p *proc) {
	if p.inHeap {
		panic(fmt.Sprintf("refsim: process %d pushed twice", p.id))
	}
	p.inHeap = true
	heap.Push(&s.heap, p)
}

func (s *Scheduler) popMin() *proc {
	p := heap.Pop(&s.heap).(*proc)
	p.inHeap = false
	return p
}

// dispatchLocked pops the new minimum and records it as the token
// holder, emitting the same EvDispatch handoff event as the fast
// engine: next.clock and the previous holder's rank, only when the
// token actually changes hands. Caller must hold s.mu.
func (s *Scheduler) dispatchLocked() *proc {
	next := s.popMin()
	if s.tsink != nil && next != s.running {
		prev := int64(-1)
		if s.running != nil {
			prev = int64(s.running.id)
		}
		s.tsink.Buf(next.id, trace.ClassSched).Emit(trace.EvDispatch, next.clock, prev, 0, 0)
	}
	s.running = next
	return next
}
