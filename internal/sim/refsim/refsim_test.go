package refsim

// The reference engine gets its own smoke battery: the differential
// suite in internal/workload only proves fast == ref, which is vacuous
// if ref itself drifts from the documented semantics.

import (
	"errors"
	"strings"
	"testing"

	"rmalocks/internal/sim"
)

func TestVirtualTimeOrderAndDeterminism(t *testing.T) {
	run := func() []int {
		var order []int
		s := New(sim.Config{Procs: 8})
		err := s.Run(func(h *Handle) {
			for i := 0; i < 20; i++ {
				h.Advance(int64(50 + h.ID()*13))
			}
			order = append(order, h.ID()) // token-held: safe
		})
		if err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != 8 {
		t.Fatalf("only %d exits recorded", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic exit order: %v vs %v", a, b)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	const cost = 500
	s := New(sim.Config{Procs: 4, BarrierCost: cost})
	clocks := make([]int64, 4)
	err := s.Run(func(h *Handle) {
		h.Advance(int64(1000 * (h.ID() + 1)))
		h.Barrier()
		clocks[h.ID()] = h.Clock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range clocks {
		if c != 4000+cost {
			t.Errorf("proc %d clock=%d want %d", id, c, 4000+cost)
		}
	}
}

func TestTimeLimitSharesSimSentinel(t *testing.T) {
	s := New(sim.Config{Procs: 2, TimeLimit: 10_000})
	err := s.Run(func(h *Handle) {
		for {
			h.Advance(100)
		}
	})
	if !errors.Is(err, sim.ErrTimeLimit) {
		t.Fatalf("err=%v want sim.ErrTimeLimit", err)
	}
}

func TestExitCompletesBarrier(t *testing.T) {
	const cost = 100
	s := New(sim.Config{Procs: 5, BarrierCost: cost})
	clocks := make([]int64, 5)
	err := s.Run(func(h *Handle) {
		if h.ID() >= 3 {
			h.Advance(int64(10 * (h.ID() + 1)))
			return
		}
		h.Advance(int64(100 * (h.ID() + 1)))
		h.Barrier()
		clocks[h.ID()] = h.Clock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range clocks[:3] {
		if c != 300+cost {
			t.Errorf("proc %d clock=%d want %d", id, c, 300+cost)
		}
	}
}

func TestWakeExitedPanicsDistinctly(t *testing.T) {
	s := New(sim.Config{Procs: 2})
	s.procs[1].exited = true
	h0 := &Handle{s: s, p: s.procs[0]}
	h1 := &Handle{s: s, p: s.procs[1]}
	defer func() {
		msg, ok := recover().(string)
		if !ok || !strings.Contains(msg, "exited") {
			t.Fatalf("want exited panic, got %v", msg)
		}
	}()
	h0.Wake(h1, 100)
}

func TestHorizonMatchesFastEngineFormula(t *testing.T) {
	// Horizon must equal the fast engine's cached value: heap-top clock,
	// minus one when the caller loses the (clock, id) tie-break, clamped
	// to the time limit.
	s := New(sim.Config{Procs: 3, TimeLimit: 1 << 30})
	var got []int64
	err := s.Run(func(h *Handle) {
		if h.ID() == 0 {
			// Others still at clock 0: horizon is 0 (we win ties... no:
			// heap top is proc 1 at clock 0 and 0 < 1, so horizon = 0).
			got = append(got, h.Horizon())
			h.Advance(10)
		} else {
			h.Advance(int64(100 * h.ID()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0] != 0 {
		t.Fatalf("Horizon=%v want [0]", got)
	}
}
