package sim

// Internal benchmarks for the sharded, id-based (no-boxing) min-heap
// behind the genuine-handoff slow path. The engine-level benchmarks
// (fast path vs refsim) live in bench_engines_test.go.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// newBenchScheduler returns a scheduler with n procs pre-pushed at
// pseudo-random clocks (steady-state heap shape). shardSize 0 keeps the
// single-shard layout.
func newBenchScheduler(n, shardSize int) *Scheduler {
	s := New(Config{Procs: n, ShardSize: shardSize})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		s.hot[i].clock = rng.Int63n(1 << 20)
		s.push(int32(i))
	}
	return s
}

// BenchmarkProcHeapPushPop measures one genuine-handoff scheduling
// decision on the sharded heap: pop the minimum rank, charge it time,
// push it back.
func BenchmarkProcHeapPushPop(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			s := newBenchScheduler(n, 0)
			rng := rand.New(rand.NewSource(2))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := s.popMin()
				s.hot[id].clock += rng.Int63n(1000) + 1
				s.push(id)
			}
		})
	}
}

// BenchmarkProcHeapDrainRefill measures full heap churn: drain all procs
// then refill, the pattern of a barrier release. The 4-ary sift keeps
// per-element cost near log(n) well past the sizes where the former
// binary *proc heap went super-linear (pointer-chasing cache misses).
func BenchmarkProcHeapDrainRefill(b *testing.B) {
	for _, n := range []int{16, 256, 4096, 65536} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			s := newBenchScheduler(n, 0)
			drained := make([]int32, 0, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drained = drained[:0]
				for s.heap.size > 0 {
					drained = append(drained, s.popMin())
				}
				for _, id := range drained {
					s.push(id)
				}
			}
		})
	}
}

// BenchmarkProcHeapDrainRefillSharded is the same churn with the heap
// sharded at the default machine shape (16 ranks per node).
func BenchmarkProcHeapDrainRefillSharded(b *testing.B) {
	for _, n := range []int{4096, 65536} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			s := newBenchScheduler(n, 16)
			drained := make([]int32, 0, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drained = drained[:0]
				for s.heap.size > 0 {
					drained = append(drained, s.popMin())
				}
				for _, id := range drained {
					s.push(id)
				}
			}
		})
	}
}

// drainRefillSeconds times one full drain+refill of an n-rank heap,
// minimum over trials runs.
func drainRefillSeconds(n, shardSize, trials int) float64 {
	s := newBenchScheduler(n, shardSize)
	drained := make([]int32, 0, n)
	best := math.MaxFloat64
	for t := 0; t < trials; t++ {
		start := time.Now()
		drained = drained[:0]
		for s.heap.size > 0 {
			drained = append(drained, s.popMin())
		}
		for _, id := range drained {
			s.push(id)
		}
		if el := time.Since(start).Seconds(); el < best {
			best = el
		}
	}
	return best
}

// TestProcHeapDrainScalesNearNLogN is the regression gate for the
// super-linear drain cost BENCH_5.json recorded on the binary *proc
// heap: per-element-per-log cost at 2^20 ranks must stay within a
// generous constant of the 2^12-rank cost, for both the single-shard
// and the node-sharded layout. A return to super-linear growth (cache
// thrash, accidental O(n) repair) blows the ratio far past the bound.
func TestProcHeapDrainScalesNearNLogN(t *testing.T) {
	if testing.Short() {
		t.Skip("million-rank drain timing skipped in -short")
	}
	const small, big = 1 << 12, 1 << 20
	for _, cfg := range []struct {
		name      string
		shardSize int
	}{{"single-shard", 0}, {"sharded-16", 16}} {
		t.Run(cfg.name, func(t *testing.T) {
			perOp := func(n int) float64 {
				sec := drainRefillSeconds(n, cfg.shardSize, 3)
				return sec / (float64(n) * math.Log2(float64(n)))
			}
			cs, cb := perOp(small), perOp(big)
			// Allow the big run an 8x per-op-per-log handicap: cache misses
			// on a 4MB+ working set are real, super-linear algorithmic cost
			// (the old heap showed >2x already at 256 vs 16) is not. The
			// wall-clock floor guards against a zero-cost small measurement.
			if cs <= 0 {
				t.Fatalf("degenerate small-heap timing: %v s/op-log", cs)
			}
			if ratio := cb / cs; ratio > 8 {
				t.Errorf("drain cost not near n log n: per-op-per-log %.3g (n=%d) vs %.3g (n=%d), ratio %.1f > 8",
					cb, big, cs, small, ratio)
			}
		})
	}
}
