package sim

// Internal benchmarks for the specialized (non-container/heap, no-boxing)
// min-heap behind the genuine-handoff slow path. The engine-level
// benchmarks (fast path vs refsim) live in bench_engines_test.go.

import (
	"fmt"
	"math/rand"
	"testing"
)

// newBenchScheduler returns a scheduler with n procs pre-pushed at
// pseudo-random clocks (steady-state heap shape).
func newBenchScheduler(n int) *Scheduler {
	s := New(Config{Procs: n})
	rng := rand.New(rand.NewSource(1))
	for _, p := range s.procs {
		p.clock = rng.Int63n(1 << 20)
		s.push(p)
	}
	return s
}

// BenchmarkProcHeapPushPop measures one genuine-handoff scheduling
// decision on the specialized heap: pop the minimum proc, charge it
// time, push it back.
func BenchmarkProcHeapPushPop(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			s := newBenchScheduler(n)
			rng := rand.New(rand.NewSource(2))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := s.popMin()
				p.clock += rng.Int63n(1000) + 1
				s.push(p)
			}
		})
	}
}

// BenchmarkProcHeapDrainRefill measures full heap churn: drain all procs
// then refill, the pattern of a barrier release.
func BenchmarkProcHeapDrainRefill(b *testing.B) {
	for _, n := range []int{16, 256} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			s := newBenchScheduler(n)
			drained := make([]*proc, 0, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drained = drained[:0]
				for len(s.heap.a) > 0 {
					drained = append(drained, s.popMin())
				}
				for _, p := range drained {
					s.push(p)
				}
			}
		})
	}
}
