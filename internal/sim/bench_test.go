package sim

// Benchmarks for the scheduler hot path: every simulated operation goes
// through one push + popMin pair on the (clock, id) min-heap, and every
// yield through the channel handoff in Advance. These pin a baseline for
// future scheduler optimisations (run with `make bench`, compare with
// benchstat).

import (
	"fmt"
	"math/rand"
	"testing"
)

// newBenchScheduler returns a scheduler with n procs pre-pushed at
// pseudo-random clocks (steady-state heap shape).
func newBenchScheduler(n int) *Scheduler {
	s := New(Config{Procs: n})
	rng := rand.New(rand.NewSource(1))
	for _, p := range s.procs {
		p.clock = rng.Int63n(1 << 20)
		s.push(p)
	}
	return s
}

// BenchmarkProcHeapPushPop measures one scheduling decision: pop the
// minimum proc, charge it time, push it back.
func BenchmarkProcHeapPushPop(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			s := newBenchScheduler(n)
			rng := rand.New(rand.NewSource(2))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := s.popMin()
				p.clock += rng.Int63n(1000) + 1
				s.push(p)
			}
		})
	}
}

// BenchmarkProcHeapDrainRefill measures full heap churn: drain all procs
// then refill, the pattern of a barrier release.
func BenchmarkProcHeapDrainRefill(b *testing.B) {
	for _, n := range []int{16, 256} {
		b.Run(fmt.Sprintf("procs=%d", n), func(b *testing.B) {
			s := newBenchScheduler(n)
			drained := make([]*proc, 0, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drained = drained[:0]
				for len(s.heap) > 0 {
					drained = append(drained, s.popMin())
				}
				for _, p := range drained {
					s.push(p)
				}
			}
		})
	}
}

// BenchmarkSchedulerRun measures a whole simulation: procs × advances
// virtual operations including goroutine handoff, the end-to-end cost a
// workload harness run pays per simulated op.
func BenchmarkSchedulerRun(b *testing.B) {
	const procs, advances = 16, 200
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(Config{Procs: procs})
		err := s.Run(func(h *Handle) {
			for k := 0; k < advances; k++ {
				h.Advance(int64(k%7) + 1)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(procs*advances), "ops/run")
}
