// Package sim implements a deterministic discrete-event scheduler for
// simulated distributed processes.
//
// Each simulated process is a goroutine with a virtual clock (nanoseconds).
// The scheduler admits exactly one process at a time: the one with the
// minimum (clock, id) pair. A process runs until it calls Advance (charging
// virtual time for an operation it just performed), Barrier, or Exit, at
// which point the token is handed to the new minimum. Execution is therefore
// a fully deterministic sequential interleaving in virtual-time order,
// independent of the host's core count and of the Go scheduler.
//
// # Token ownership and the fast path
//
// The scheduler is built around token ownership: exactly one process (the
// token holder) executes at any time, and everything the holder does to its
// own virtual clock is invisible to the other processes until the token is
// handed over. When a process is dispatched it caches a horizon — the
// largest clock it can reach while provably remaining the minimum
// (heap-top clock adjusted for the (clock, id) tie-break, clamped to the
// time limit). As long as an Advance stays at or below the horizon it is a
// lock-free, heap-free, channel-free clock increment: two compares and an
// add, zero allocations. Only a genuine handoff (crossing the horizon)
// takes the mutex and touches the specialized min-heap. The horizon is
// only ever written by the dispatching goroutine before the wake-channel
// send (or by the holder itself via Wake), so the fast path needs no
// atomics. The refsim subpackage preserves the original global-mutex
// scheduler; the differential determinism suite in internal/workload
// checks both engines produce byte-identical results.
//
// The package knows nothing about RMA; package rma layers windows, latency
// and contention modeling on top of it.
package sim

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"

	"rmalocks/internal/trace"
)

// ErrTimeLimit is returned by Run when a process's virtual clock exceeded
// the configured limit, which almost always indicates livelock or deadlock
// in the simulated protocol.
var ErrTimeLimit = errors.New("sim: virtual time limit exceeded")

// ErrDeadlock is returned by Run when no process can make progress: every
// live process is blocked in a barrier that can never complete.
var ErrDeadlock = errors.New("sim: deadlock: all live processes blocked in barrier")

// abortSignal is panicked inside process goroutines when the simulation is
// torn down early; the Run wrapper recovers it.
type abortSignal struct{}

type proc struct {
	id    int
	clock int64
	// horizon is the fast-path bound: the largest clock this process can
	// reach while provably keeping the execution token (see the package
	// comment). Valid only while the process holds the token; written by
	// the dispatching goroutine before the wake send.
	horizon int64
	wake    chan struct{}
	inHeap  bool
	blocked bool // waiting in a barrier or Block
	exited  bool
	// tb is the proc's ClassCharge trace buffer; nil unless charge
	// tracing is enabled. Only the slow (already-locked) paths emit
	// through it: the lock-free Advance fast path stays byte-for-byte
	// untouched by tracing — a fast-path advance is exactly the
	// publication that no other process can observe, so the charge
	// stream loses nothing by recording only handoffs (here) and
	// coalescing boundaries (rma's EvFlush).
	tb *trace.Buf
}

// Handle is a per-process handle passed to the process body. Its methods
// must only be called from that process's goroutine (except Wake/WakeAt,
// which the current token holder calls on a blocked process's handle).
type Handle struct {
	s *Scheduler
	p *proc
}

// ID returns the process id (the simulated rank).
func (h *Handle) ID() int { return h.p.id }

// Clock returns the process's current virtual time in nanoseconds.
func (h *Handle) Clock() int64 { return h.p.clock }

// Horizon returns the largest virtual clock the calling process can
// advance to while provably keeping the execution token: any Advance that
// leaves the clock at or below Horizon() is guaranteed not to reschedule.
// Callers (package rma) use it to coalesce consecutive charges into one
// Advance without changing the interleaving. Valid only while the calling
// process holds the token; a Wake may shrink it.
func (h *Handle) Horizon() int64 { return h.p.horizon }

// Scheduler coordinates the virtual clocks of a fixed set of processes.
type Scheduler struct {
	mu        sync.Mutex
	procs     []*proc
	heap      procHeap
	running   *proc // current token holder (horizon cache owner)
	live      int
	arrived   []*proc     // processes blocked in the current barrier
	syncCost  int64       // virtual cost charged by a barrier
	timeLimit int64       // 0 = unlimited
	tsink     *trace.Sink // non-nil only when ClassSched tracing is on
	err       error
}

// Config holds scheduler construction parameters.
type Config struct {
	// Procs is the number of simulated processes.
	Procs int
	// TimeLimit aborts the run with ErrTimeLimit once any process's
	// virtual clock exceeds it. Zero means no limit.
	TimeLimit int64
	// BarrierCost is the virtual time charged to every process by a
	// barrier, on top of synchronizing clocks to the maximum.
	BarrierCost int64
	// Trace, when non-nil, receives scheduler events (ClassSched:
	// dispatch/block/wake/barrier) and slow-path clock publications
	// (ClassCharge). The sink is restarted for this run. The lock-free
	// Advance fast path is byte-for-byte identical traced or not
	// (BenchmarkAdvanceUncontended vs BenchmarkAdvanceTraced pin it).
	Trace *trace.Sink
}

// corePool recycles proc sets — the proc structs, their wake channels and
// the heap/arrived backing arrays — across scheduler instances, so hot
// sweep loops that build one machine per cell stop re-allocating them.
// Release returns a scheduler's core to the pool.
var corePool sync.Pool

type schedCore struct {
	procs   []*proc
	heap    []*proc
	arrived []*proc
}

// New creates a scheduler for cfg.Procs processes, drawing the proc set
// from the package free list when one is available.
func New(cfg Config) *Scheduler {
	if cfg.Procs <= 0 {
		panic(fmt.Sprintf("sim: Procs must be positive, got %d", cfg.Procs))
	}
	s := &Scheduler{
		live:      cfg.Procs,
		syncCost:  cfg.BarrierCost,
		timeLimit: cfg.TimeLimit,
	}
	if v := corePool.Get(); v != nil {
		core := v.(*schedCore)
		s.procs = resizeProcs(core.procs, cfg.Procs)
		s.heap.a = core.heap[:0]
		s.arrived = core.arrived[:0]
	} else {
		s.procs = resizeProcs(nil, cfg.Procs)
	}
	if cfg.Trace != nil {
		cfg.Trace.Start(cfg.Procs)
		if cfg.Trace.Has(trace.ClassSched) {
			s.tsink = cfg.Trace
		}
		for i, p := range s.procs {
			p.tb = cfg.Trace.Buf(i, trace.ClassCharge)
		}
	}
	return s
}

// resizeProcs returns ps grown or truncated to n entries, resetting every
// reused proc (and draining any stale teardown token from its wake
// channel) and allocating the missing ones.
func resizeProcs(ps []*proc, n int) []*proc {
	if cap(ps) >= n {
		ps = ps[:n]
	} else {
		ps = append(ps[:cap(ps)], make([]*proc, n-cap(ps))...)
	}
	for i, p := range ps {
		if p == nil {
			ps[i] = &proc{id: i, wake: make(chan struct{}, 1)}
			continue
		}
		select {
		case <-p.wake:
		default:
		}
		p.id = i
		p.clock, p.horizon = 0, 0
		p.inHeap, p.blocked, p.exited = false, false, false
		p.tb = nil // pooled procs may carry a previous run's trace buffer
	}
	return ps
}

// Release resets the scheduler and returns its proc set to the package
// free list. Only call it after Run has returned (and after any MaxClock
// inspection); the scheduler must not be used afterwards.
func (s *Scheduler) Release() {
	core := &schedCore{procs: s.procs, heap: s.heap.a, arrived: s.arrived}
	s.procs, s.heap.a, s.arrived, s.running = nil, nil, nil, nil
	corePool.Put(core)
}

// Run executes body(handle) once per process, each in its own goroutine,
// and returns when all processes have exited (or the simulation aborted).
// A panic inside a body aborts the whole simulation and is returned as an
// error. Run may only be called once per Scheduler.
func (s *Scheduler) Run(body func(h *Handle)) error {
	var wg sync.WaitGroup
	wg.Add(len(s.procs))
	for _, p := range s.procs {
		go func(p *proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortSignal); ok {
						return // torn down by scheduler
					}
					s.fail(fmt.Errorf("sim: process %d panicked: %v\n%s", p.id, r, debug.Stack()))
				}
			}()
			h := &Handle{s: s, p: p}
			h.park() // wait for the initial token
			body(h)
			h.exit()
		}(p)
	}
	// All processes start parked in the heap with clock 0; give the token
	// to the minimum (process 0).
	s.mu.Lock()
	for _, p := range s.procs {
		s.push(p)
	}
	s.sendWake(s.dispatchLocked())
	s.mu.Unlock()
	wg.Wait()
	return s.err
}

// Err returns the error recorded by the simulation, if any.
func (s *Scheduler) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// MaxClock returns the largest virtual clock reached by any process. It is
// meaningful after Run returns (total simulated makespan).
func (s *Scheduler) MaxClock() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max int64
	for _, p := range s.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// Advance charges d nanoseconds of virtual time to the calling process and
// yields the execution token if another process now has the minimum clock.
// d must be positive for operations inside spin loops, or the simulation
// could livelock; Advance enforces d >= 1.
//
// Fast path: while the new clock stays at or below the cached horizon the
// process provably remains the minimum, so the charge is a plain local
// increment — no lock, no heap, no channel, no allocation.
func (h *Handle) Advance(d int64) {
	if d < 1 {
		d = 1
	}
	p := h.p
	if c := p.clock + d; c <= p.horizon {
		p.clock = c
		return
	}
	h.advanceSlow(d)
}

// advanceSlow is the genuine-handoff path of Advance: re-queue under the
// lock and hand the token to the new minimum (possibly ourselves, when
// only the time-limit clamp forced us off the fast path).
func (h *Handle) advanceSlow(d int64) {
	s := h.s
	p := h.p
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		panic(abortSignal{})
	}
	p.clock += d
	if s.timeLimit > 0 && p.clock > s.timeLimit {
		s.failLocked(fmt.Errorf("%w (process %d at %d ns)", ErrTimeLimit, p.id, p.clock))
		s.mu.Unlock()
		panic(abortSignal{})
	}
	if p.tb != nil {
		p.tb.Emit(trace.EvAdvance, p.clock, d, 0, 0)
	}
	s.push(p)
	next := s.dispatchLocked()
	if next == p {
		s.mu.Unlock()
		return
	}
	s.sendWake(next)
	s.mu.Unlock()
	h.park()
}

// Barrier blocks until every live process has called Barrier, then sets all
// clocks to the maximum arrival time plus the configured barrier cost.
func (h *Handle) Barrier() {
	s := h.s
	p := h.p
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		panic(abortSignal{})
	}
	p.blocked = true
	if s.tsink != nil {
		s.tsink.Buf(p.id, trace.ClassSched).Emit(trace.EvBarrier, p.clock, 0, 0, 0)
	}
	s.arrived = append(s.arrived, p)
	if len(s.arrived) == s.live {
		// Last arriver releases everyone.
		s.releaseBarrierLocked()
		next := s.dispatchLocked()
		if next == p {
			s.mu.Unlock()
			return
		}
		s.sendWake(next)
		s.mu.Unlock()
		h.park()
		return
	}
	// Hand the token over; non-arrived live processes are all in the heap.
	if len(s.heap.a) == 0 {
		s.failLocked(ErrDeadlock)
		s.mu.Unlock()
		panic(abortSignal{})
	}
	next := s.dispatchLocked()
	s.sendWake(next)
	s.mu.Unlock()
	h.park()
}

// Block removes the calling process from scheduling until another process
// calls Wake on it. Use it for event-driven waiting (e.g., an MCS-style
// spin on a local flag, where polling is free on real hardware and the
// wake time is the landing time of the granting write). If no runnable
// process remains the simulation aborts with ErrDeadlock.
func (h *Handle) Block() {
	s := h.s
	p := h.p
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		panic(abortSignal{})
	}
	p.blocked = true
	if s.tsink != nil {
		s.tsink.Buf(p.id, trace.ClassSched).Emit(trace.EvBlock, p.clock, 0, 0, 0)
	}
	if len(s.heap.a) == 0 {
		s.failLocked(ErrDeadlock)
		s.mu.Unlock()
		panic(abortSignal{})
	}
	next := s.dispatchLocked()
	s.sendWake(next)
	s.mu.Unlock()
	h.park()
}

// releaseBarrierLocked completes the current barrier: every arrived
// process's clock synchronizes to the maximum arrival time plus the
// barrier cost, and all are re-queued as runnable. Shared by Barrier
// (last arriver) and exit (an exit can complete a pending barrier).
// Caller must hold s.mu.
func (s *Scheduler) releaseBarrierLocked() {
	var max int64
	for _, q := range s.arrived {
		if q.clock > max {
			max = q.clock
		}
	}
	max += s.syncCost
	for _, q := range s.arrived {
		q.clock = max
		q.blocked = false
		s.push(q)
	}
	s.arrived = s.arrived[:0]
}

// WakeAt makes the blocked process h runnable again with its virtual
// clock advanced to at least clock. It must be called by the currently
// running process, which keeps the execution token; because the woken
// process may become the new next-minimum, the caller's fast-path
// horizon is re-derived.
func (h *Handle) WakeAt(clock int64) {
	s := h.s
	q := h.p
	s.mu.Lock()
	if s.err != nil {
		// The simulation is tearing down: the target may already be
		// unwinding (its blocked flag is stale), so waking it is both
		// unsafe and pointless. Abort like Advance/Barrier/Block do.
		s.mu.Unlock()
		panic(abortSignal{})
	}
	if q.exited {
		s.mu.Unlock()
		panic(fmt.Sprintf("sim: Wake of exited process %d (its body already returned)", q.id))
	}
	if !q.blocked {
		s.mu.Unlock()
		panic(fmt.Sprintf("sim: Wake of non-blocked process %d", q.id))
	}
	q.blocked = false
	if clock > q.clock {
		q.clock = clock
	}
	if s.tsink != nil {
		waker := int64(-1)
		if s.running != nil {
			waker = int64(s.running.id)
		}
		s.tsink.Buf(q.id, trace.ClassSched).Emit(trace.EvWake, q.clock, waker, 0, 0)
	}
	s.push(q)
	if r := s.running; r != nil {
		r.horizon = s.horizonForLocked(r)
	}
	s.mu.Unlock()
}

// Wake makes the blocked process q runnable again with its virtual clock
// advanced to at least clock. It must be called by the currently running
// process; the caller keeps the execution token.
func (h *Handle) Wake(q *Handle, clock int64) { q.WakeAt(clock) }

// park blocks the calling process until it is woken with the token.
func (h *Handle) park() {
	<-h.p.wake
	h.s.mu.Lock()
	err := h.s.err
	h.s.mu.Unlock()
	if err != nil {
		panic(abortSignal{})
	}
}

// exit removes the process from the simulation and hands the token on.
func (h *Handle) exit() {
	s := h.s
	p := h.p
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		return
	}
	p.exited = true
	s.live--
	if s.live == 0 {
		s.mu.Unlock()
		return
	}
	// A barrier that was waiting for us can now be complete. Invariant:
	// s.live >= 1 here (the live == 0 case returned above), so a matching
	// arrived count means every remaining live process is in the barrier.
	if len(s.arrived) == s.live {
		s.releaseBarrierLocked()
	}
	if len(s.heap.a) == 0 {
		s.failLocked(ErrDeadlock)
		s.mu.Unlock()
		return
	}
	next := s.dispatchLocked()
	s.sendWake(next)
	s.mu.Unlock()
}

// fail aborts the simulation with err (first error wins) and wakes every
// parked process so its goroutine can unwind.
func (s *Scheduler) fail(err error) {
	s.mu.Lock()
	s.failLocked(err)
	s.mu.Unlock()
}

// failLocked must be called with s.mu held (every failure site already
// holds it, which is why no sync.Once is needed: first error wins).
func (s *Scheduler) failLocked(err error) {
	if s.err == nil {
		s.err = err
	}
	for _, p := range s.procs {
		if !p.exited {
			select {
			case p.wake <- struct{}{}:
			default:
			}
		}
	}
}

// dispatchLocked pops the new minimum, records it as the token holder and
// caches its fast-path horizon. Caller must hold s.mu and send the wake
// (unless the minimum is the caller itself). A genuine handoff (the token
// changing hands) emits an EvDispatch event into the new holder's stream;
// writes to a parked proc's trace buffer happen-before the wake send, so
// capture stays race-free.
func (s *Scheduler) dispatchLocked() *proc {
	next := s.popMin()
	next.horizon = s.horizonForLocked(next)
	if s.tsink != nil && next != s.running {
		prev := int64(-1)
		if s.running != nil {
			prev = int64(s.running.id)
		}
		s.tsink.Buf(next.id, trace.ClassSched).Emit(trace.EvDispatch, next.clock, prev, 0, 0)
	}
	s.running = next
	return next
}

// horizonForLocked derives p's fast-path horizon from the current heap
// top: p keeps the token while (clock, id) stays lexicographically at or
// below the top's, so it may reach the top clock exactly when its id wins
// the tie-break. The time limit is folded in so the fast path detects
// limit crossings with the same single compare. Caller must hold s.mu;
// p must not be in the heap.
func (s *Scheduler) horizonForLocked(p *proc) int64 {
	hz := int64(math.MaxInt64)
	if len(s.heap.a) > 0 {
		top := s.heap.a[0]
		hz = top.clock
		if p.id > top.id {
			hz--
		}
	}
	if s.timeLimit > 0 && hz > s.timeLimit {
		hz = s.timeLimit
	}
	return hz
}

func (s *Scheduler) sendWake(p *proc) {
	select {
	case p.wake <- struct{}{}:
	default:
		// Already has a pending wake (only possible during teardown).
	}
}

// procHeap is a specialized binary min-heap on (clock, id). It replaces
// container/heap on the scheduler hot path: direct *proc storage, no
// interface boxing, inlinable sift loops.
type procHeap struct {
	a []*proc
}

func (h *procHeap) push(p *proc) {
	a := append(h.a, p)
	h.a = a
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		q := a[parent]
		if p.clock > q.clock || (p.clock == q.clock && p.id > q.id) {
			break
		}
		a[i] = q
		i = parent
	}
	a[i] = p
}

func (h *procHeap) pop() *proc {
	a := h.a
	top := a[0]
	n := len(a) - 1
	last := a[n]
	a[n] = nil
	a = a[:n]
	h.a = a
	if n == 0 {
		return top
	}
	// Sift the former last element down from the root.
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n {
			lp, rp := a[l], a[r]
			if rp.clock < lp.clock || (rp.clock == lp.clock && rp.id < lp.id) {
				min = r
			}
		}
		m := a[min]
		if last.clock < m.clock || (last.clock == m.clock && last.id < m.id) {
			break
		}
		a[i] = m
		i = min
	}
	a[i] = last
	return top
}

func (s *Scheduler) push(p *proc) {
	if p.inHeap {
		panic(fmt.Sprintf("sim: process %d pushed twice", p.id))
	}
	p.inHeap = true
	s.heap.push(p)
}

func (s *Scheduler) popMin() *proc {
	p := s.heap.pop()
	p.inHeap = false
	return p
}
