// Package sim implements a deterministic discrete-event scheduler for
// simulated distributed processes.
//
// Each simulated process is a goroutine with a virtual clock (nanoseconds).
// The scheduler admits exactly one process at a time: the one with the
// minimum (clock, id) pair. A process runs until it calls Advance (charging
// virtual time for an operation it just performed), Barrier, or Exit, at
// which point the token is handed to the new minimum. Execution is therefore
// a fully deterministic sequential interleaving in virtual-time order,
// independent of the host's core count and of the Go scheduler.
//
// # Token ownership and the fast path
//
// The scheduler is built around token ownership: exactly one process (the
// token holder) executes at any time, and everything the holder does to its
// own virtual clock is invisible to the other processes until the token is
// handed over. When a process is dispatched it caches a horizon — the
// largest clock it can reach while provably remaining the minimum
// (heap-top clock adjusted for the (clock, id) tie-break, clamped to the
// time limit). As long as an Advance stays at or below the horizon it is a
// lock-free, heap-free, channel-free clock increment: two compares and an
// add, zero allocations. Only a genuine handoff (crossing the horizon)
// takes the mutex and touches the sharded min-heap. The horizon is
// only ever written by the dispatching goroutine before the wake-channel
// send (or by the holder itself via Wake), so the fast path needs no
// atomics. The refsim subpackage preserves the original global-mutex
// scheduler; the differential determinism suite in internal/workload
// checks both engines produce byte-identical results.
//
// # Memory-flat proc state
//
// Per-process state is struct-of-arrays, indexed by rank id: clocks,
// horizons and scheduling flags live in flat slices, the pending-process
// queue (see shardHeap) traffics in int32 rank ids, and a Handle caches
// pointers into the clock/horizon slices so the fast path stays a plain
// increment. Process goroutines are spawned lazily, driven by dispatch: a
// rank that has never run is represented implicitly by its (0, id) key —
// the virtual start entries [nextStart, Procs) — and its goroutine starts
// already holding the token. Wake channels are likewise allocated only
// when a rank first parks. A 10^6-rank machine whose ranks run one after
// another therefore pays for goroutine stacks and channels only as ranks
// genuinely interleave, and the flat state costs ~61 bytes per rank.
//
// The package knows nothing about RMA; package rma layers windows, latency
// and contention modeling on top of it.
package sim

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"

	"rmalocks/internal/obs"
	"rmalocks/internal/trace"
)

// ErrTimeLimit is returned by Run when a process's virtual clock exceeded
// the configured limit, which almost always indicates livelock or deadlock
// in the simulated protocol.
var ErrTimeLimit = errors.New("sim: virtual time limit exceeded")

// ErrDeadlock is returned by Run when no process can make progress: every
// live process is blocked in a barrier that can never complete.
var ErrDeadlock = errors.New("sim: deadlock: all live processes blocked in barrier")

// MaxProcs is the largest supported process count: rank ids are int32
// throughout the scheduler core (heap entries, shard indices, handles).
const MaxProcs = math.MaxInt32

// abortSignal is panicked inside process goroutines when the simulation is
// torn down early; the Run wrapper recovers it.
type abortSignal struct{}

// Per-rank scheduling flags (the state slice of the SoA layout).
const (
	stInHeap uint8 = 1 << iota
	stBlocked
	stExited
	stStarted
)

// Handle is a per-process handle passed to the process body. Its methods
// must only be called from that process's goroutine (except Wake/WakeAt,
// which the current token holder calls on a blocked process's handle).
// Handles live in one flat slice owned by the scheduler; clock and
// horizon cache pointers into the scheduler's SoA state so the Advance
// fast path needs no bounds checks or extra indirection.
type Handle struct {
	s  *Scheduler
	id int32
	// hs points at s.hot[id]: the process's virtual clock and its
	// fast-path horizon, packed in one 16-byte pair so the Advance fast
	// path touches a single cache line (same load count as a pointer to
	// a per-proc struct, without the per-proc allocation).
	hs *hotState
	// tb is the proc's ClassCharge trace buffer; nil unless charge
	// tracing is enabled. Only the slow (already-locked) paths emit
	// through it: the lock-free Advance fast path stays byte-for-byte
	// untouched by tracing — a fast-path advance is exactly the
	// publication that no other process can observe, so the charge
	// stream loses nothing by recording only handoffs (here) and
	// coalescing boundaries (rma's EvFlush).
	tb *trace.Buf
}

// ID returns the process id (the simulated rank).
func (h *Handle) ID() int { return int(h.id) }

// Clock returns the process's current virtual time in nanoseconds.
func (h *Handle) Clock() int64 { return h.hs.clock }

// Horizon returns the largest virtual clock the calling process can
// advance to while provably keeping the execution token: any Advance that
// leaves the clock at or below Horizon() is guaranteed not to reschedule.
// Callers (package rma) use it to coalesce consecutive charges into one
// Advance without changing the interleaving. Valid only while the calling
// process holds the token; a Wake may shrink it.
func (h *Handle) Horizon() int64 { return h.hs.horizon }

// Scheduler coordinates the virtual clocks of a fixed set of processes.
// All per-rank state is struct-of-arrays, indexed by rank id.
type Scheduler struct {
	mu sync.Mutex
	n  int32
	// SoA per-rank state. hot packs each rank's (clock, horizon) pair —
	// the only fields the Advance fast path and the heap order touch —
	// in one flat slice; scheduling flags live beside it in state.
	hot   []hotState
	state []uint8
	// wakes holds the per-rank wake channels, allocated lazily the first
	// time a rank parks (ranks that never lose the token never allocate
	// one). A send hands the execution token to the receiver.
	wakes   []chan struct{}
	handles []Handle
	heap    shardHeap
	// running is the current token holder (horizon cache owner); -1
	// before the first dispatch.
	running int32
	// nextStart is the first rank whose goroutine has not been spawned
	// yet: ranks [nextStart, n) are implicitly pending at (clock 0, id),
	// merged with the real heap by topKeyLocked. Dispatching one spawns
	// its goroutine, which starts running with the token (no initial
	// park), so goroutines and wake channels materialize only as the
	// simulation genuinely interleaves.
	nextStart int32
	live      int
	arrived   []int32     // processes blocked in the current barrier
	syncCost  int64       // virtual cost charged by a barrier
	timeLimit int64       // 0 = unlimited
	tsink     *trace.Sink // non-nil only when ClassSched tracing is on
	body      func(h *Handle)
	wg        sync.WaitGroup
	core      *schedCore
	err       error
}

// Config holds scheduler construction parameters.
type Config struct {
	// Procs is the number of simulated processes (at most MaxProcs).
	Procs int
	// TimeLimit aborts the run with ErrTimeLimit once any process's
	// virtual clock exceeds it. Zero means no limit.
	TimeLimit int64
	// BarrierCost is the virtual time charged to every process by a
	// barrier, on top of synchronizing clocks to the maximum.
	BarrierCost int64
	// ShardSize splits the pending-process heap into ceil(Procs/ShardSize)
	// contiguous rank-range shards (package rma passes the topology's
	// procs-per-leaf so shards mirror compute nodes). Zero or out-of-range
	// values select a single shard. Sharding is transparent: (clock, id)
	// keys are unique, so the dispatch order is identical for every
	// ShardSize (property-tested).
	ShardSize int
	// Trace, when non-nil, receives scheduler events (ClassSched:
	// dispatch/block/wake/barrier) and slow-path clock publications
	// (ClassCharge). The sink is restarted for this run. The lock-free
	// Advance fast path is byte-for-byte identical traced or not
	// (BenchmarkAdvanceUncontended vs BenchmarkAdvanceTraced pin it).
	Trace *trace.Sink
	// Gate, when non-nil, receives the parallel engine's conservative-gate
	// instrumentation (mutex hold time, grant-queue depth, lookahead
	// slack; see obs.GateMetrics). Only psim reads it — the sequential
	// engines have no gate, and the token-owned fast path is never
	// instrumented (its Advance stays byte-identical with obs on or off).
	Gate *obs.GateMetrics
}

// corePool recycles scheduler cores — the SoA state slices, the wake
// channels already allocated by earlier runs, and the heap/arrived
// backing arrays — across scheduler instances, so hot sweep loops that
// build one machine per cell stop re-allocating them. Release returns a
// scheduler's core to the pool.
var corePool sync.Pool

type schedCore struct {
	hot     []hotState
	state   []uint8
	wakes   []chan struct{}
	handles []Handle
	arrived []int32
	shards  [][]int32
	top     []int32
	topPos  []int32
}

// New creates a scheduler for cfg.Procs processes, drawing the core from
// the package free list when one is available.
func New(cfg Config) *Scheduler {
	if cfg.Procs <= 0 {
		panic(fmt.Sprintf("sim: Procs must be positive, got %d", cfg.Procs))
	}
	if cfg.Procs > MaxProcs {
		panic(fmt.Sprintf("sim: Procs %d exceeds MaxProcs %d (rank ids are int32)", cfg.Procs, MaxProcs))
	}
	n := cfg.Procs
	s := &Scheduler{
		n:         int32(n),
		live:      n,
		syncCost:  cfg.BarrierCost,
		timeLimit: cfg.TimeLimit,
		running:   -1,
	}
	core, _ := corePool.Get().(*schedCore)
	if core == nil {
		core = &schedCore{}
	}
	s.core = core
	s.hot = resizeHot(core.hot, n)
	s.state = resizeState(core.state, n)
	s.wakes = resizeWakes(core.wakes, n)
	s.handles = resizeHandles(core.handles, n)
	s.arrived = core.arrived[:0]
	var tsink *trace.Sink
	if cfg.Trace != nil {
		cfg.Trace.Start(n)
		if cfg.Trace.Has(trace.ClassSched) {
			s.tsink = cfg.Trace
		}
		tsink = cfg.Trace
	}
	for i := range s.handles {
		h := &s.handles[i]
		h.s = s
		h.id = int32(i)
		h.hs = &s.hot[i]
		h.tb = nil // pooled handles may carry a previous run's trace buffer
		if tsink != nil {
			h.tb = tsink.Buf(i, trace.ClassCharge)
		}
	}
	s.heap.init(s.hot, n, cfg.ShardSize, core)
	return s
}

// hotState is one rank's fast-path pair: its virtual clock and the
// cached horizon (see the package comment).
type hotState struct {
	clock   int64
	horizon int64
}

// resizeHot returns a zeroed slice with room for n entries, reusing its
// backing array when large enough.
func resizeHot(a []hotState, n int) []hotState {
	if cap(a) >= n {
		a = a[:n]
		clear(a)
	} else {
		a = make([]hotState, n)
	}
	return a
}

func resizeState(a []uint8, n int) []uint8 {
	if cap(a) >= n {
		a = a[:n]
		clear(a)
	} else {
		a = make([]uint8, n)
	}
	return a
}

// resizeWakes keeps channels allocated by earlier runs (they are the
// expensive part of the core) but drains any stale teardown token: a
// failed run sends on every channel, and a pooled channel must not wake
// its next owner spuriously. The full capacity region is drained, not
// just [:n] — a shrink followed by a regrow would otherwise resurface a
// stale token.
func resizeWakes(ws []chan struct{}, n int) []chan struct{} {
	full := ws[:cap(ws)]
	for _, ch := range full {
		if ch != nil {
			select {
			case <-ch:
			default:
			}
		}
	}
	if cap(ws) >= n {
		return ws[:n]
	}
	return append(full, make([]chan struct{}, n-cap(ws))...)
}

func resizeHandles(hs []Handle, n int) []Handle {
	if cap(hs) >= n {
		return hs[:n]
	}
	return make([]Handle, n)
}

// Release resets the scheduler and returns its core to the package free
// list. Only call it after Run has returned (and after any MaxClock
// inspection); the scheduler must not be used afterwards.
func (s *Scheduler) Release() {
	core := s.core
	if core == nil {
		return
	}
	core.hot, core.state = s.hot, s.state
	core.wakes, core.handles, core.arrived = s.wakes, s.handles, s.arrived
	core.shards, core.top, core.topPos = s.heap.shards, s.heap.top, s.heap.topPos
	s.hot, s.state, s.wakes, s.handles, s.arrived = nil, nil, nil, nil, nil
	s.heap = shardHeap{}
	s.core = nil
	s.running = -1
	corePool.Put(core)
}

// Run executes body(handle) once per process, each in its own goroutine,
// and returns when all processes have exited (or the simulation aborted).
// Goroutines are spawned lazily in dispatch order — a rank's goroutine
// starts when its (0, id) key first becomes the minimum, already holding
// the token. A panic inside a body aborts the whole simulation and is
// returned as an error. Run may only be called once per Scheduler.
func (s *Scheduler) Run(body func(h *Handle)) error {
	s.body = body
	s.mu.Lock()
	s.resumeLocked(s.dispatchLocked()) // rank 0: the (0, 0) minimum
	s.mu.Unlock()
	s.wg.Wait()
	return s.err
}

// runProc is the goroutine of one simulated process, spawned by the
// dispatch that first selects the rank. It runs body immediately: the
// spawn IS the wake, so a fresh rank needs no channel round trip.
func (s *Scheduler) runProc(id int32) {
	defer s.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); ok {
				return // torn down by scheduler
			}
			s.fail(fmt.Errorf("sim: process %d panicked: %v\n%s", id, r, debug.Stack()))
		}
	}()
	h := &s.handles[id]
	s.body(h)
	h.exit()
}

// Err returns the error recorded by the simulation, if any.
func (s *Scheduler) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// MaxClock returns the largest virtual clock reached by any process. It is
// meaningful after Run returns (total simulated makespan).
func (s *Scheduler) MaxClock() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max int64
	for i := range s.hot {
		if c := s.hot[i].clock; c > max {
			max = c
		}
	}
	return max
}

// Advance charges d nanoseconds of virtual time to the calling process and
// yields the execution token if another process now has the minimum clock.
// d must be positive for operations inside spin loops, or the simulation
// could livelock; Advance enforces d >= 1.
//
// Fast path: while the new clock stays at or below the cached horizon the
// process provably remains the minimum, so the charge is a plain local
// increment — no lock, no heap, no channel, no allocation.
func (h *Handle) Advance(d int64) {
	if d < 1 {
		d = 1
	}
	p := h.hs
	if c := p.clock + d; c <= p.horizon {
		p.clock = c
		return
	}
	h.advanceSlow(d)
}

// advanceSlow is the genuine-handoff path of Advance: re-queue under the
// lock and hand the token to the new minimum (possibly ourselves, when
// only the time-limit clamp forced us off the fast path).
func (h *Handle) advanceSlow(d int64) {
	s := h.s
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		panic(abortSignal{})
	}
	c := h.hs.clock + d
	h.hs.clock = c
	if s.timeLimit > 0 && c > s.timeLimit {
		s.failLocked(fmt.Errorf("%w (process %d at %d ns)", ErrTimeLimit, h.id, c))
		s.mu.Unlock()
		panic(abortSignal{})
	}
	if h.tb != nil {
		h.tb.Emit(trace.EvAdvance, c, d, 0, 0)
	}
	s.push(h.id)
	next := s.dispatchLocked()
	if next == h.id {
		s.mu.Unlock()
		return
	}
	ch := s.wakeChanLocked(h.id)
	s.resumeLocked(next)
	s.mu.Unlock()
	h.park(ch)
}

// Barrier blocks until every live process has called Barrier, then sets all
// clocks to the maximum arrival time plus the configured barrier cost.
func (h *Handle) Barrier() {
	s := h.s
	id := h.id
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		panic(abortSignal{})
	}
	s.state[id] |= stBlocked
	if s.tsink != nil {
		s.tsink.Buf(int(id), trace.ClassSched).Emit(trace.EvBarrier, h.hs.clock, 0, 0, 0)
	}
	s.arrived = append(s.arrived, id)
	if len(s.arrived) == s.live {
		// Last arriver releases everyone.
		s.releaseBarrierLocked()
		next := s.dispatchLocked()
		if next == id {
			s.mu.Unlock()
			return
		}
		ch := s.wakeChanLocked(id)
		s.resumeLocked(next)
		s.mu.Unlock()
		h.park(ch)
		return
	}
	// Hand the token over; non-arrived live processes are in the heap or
	// not yet started.
	if !s.hasRunnableLocked() {
		s.failLocked(ErrDeadlock)
		s.mu.Unlock()
		panic(abortSignal{})
	}
	next := s.dispatchLocked()
	ch := s.wakeChanLocked(id)
	s.resumeLocked(next)
	s.mu.Unlock()
	h.park(ch)
}

// Block removes the calling process from scheduling until another process
// calls Wake on it. Use it for event-driven waiting (e.g., an MCS-style
// spin on a local flag, where polling is free on real hardware and the
// wake time is the landing time of the granting write). If no runnable
// process remains the simulation aborts with ErrDeadlock.
func (h *Handle) Block() {
	s := h.s
	id := h.id
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		panic(abortSignal{})
	}
	s.state[id] |= stBlocked
	if s.tsink != nil {
		s.tsink.Buf(int(id), trace.ClassSched).Emit(trace.EvBlock, h.hs.clock, 0, 0, 0)
	}
	if !s.hasRunnableLocked() {
		s.failLocked(ErrDeadlock)
		s.mu.Unlock()
		panic(abortSignal{})
	}
	next := s.dispatchLocked()
	ch := s.wakeChanLocked(id)
	s.resumeLocked(next)
	s.mu.Unlock()
	h.park(ch)
}

// releaseBarrierLocked completes the current barrier: every arrived
// process's clock synchronizes to the maximum arrival time plus the
// barrier cost, and all are re-queued as runnable. Shared by Barrier
// (last arriver) and exit (an exit can complete a pending barrier).
// Caller must hold s.mu.
func (s *Scheduler) releaseBarrierLocked() {
	var max int64
	for _, q := range s.arrived {
		if c := s.hot[q].clock; c > max {
			max = c
		}
	}
	max += s.syncCost
	for _, q := range s.arrived {
		s.hot[q].clock = max
		s.state[q] &^= stBlocked
		s.push(q)
	}
	s.arrived = s.arrived[:0]
}

// WakeAt makes the blocked process h runnable again with its virtual
// clock advanced to at least clock. It must be called by the currently
// running process, which keeps the execution token; because the woken
// process may become the new next-minimum, the caller's fast-path
// horizon is re-derived.
func (h *Handle) WakeAt(clock int64) {
	s := h.s
	q := h.id
	s.mu.Lock()
	if s.err != nil {
		// The simulation is tearing down: the target may already be
		// unwinding (its blocked flag is stale), so waking it is both
		// unsafe and pointless. Abort like Advance/Barrier/Block do.
		s.mu.Unlock()
		panic(abortSignal{})
	}
	st := s.state[q]
	if st&stExited != 0 {
		s.mu.Unlock()
		panic(fmt.Sprintf("sim: Wake of exited process %d (its body already returned)", q))
	}
	if st&stBlocked == 0 {
		s.mu.Unlock()
		panic(fmt.Sprintf("sim: Wake of non-blocked process %d", q))
	}
	s.state[q] = st &^ stBlocked
	if clock > s.hot[q].clock {
		s.hot[q].clock = clock
	}
	if s.tsink != nil {
		waker := int64(-1)
		if s.running >= 0 {
			waker = int64(s.running)
		}
		s.tsink.Buf(int(q), trace.ClassSched).Emit(trace.EvWake, s.hot[q].clock, waker, 0, 0)
	}
	s.push(q)
	if r := s.running; r >= 0 {
		s.hot[r].horizon = s.horizonForLocked(r)
	}
	s.mu.Unlock()
}

// Wake makes the blocked process q runnable again with its virtual clock
// advanced to at least clock. It must be called by the currently running
// process; the caller keeps the execution token.
func (h *Handle) Wake(q *Handle, clock int64) { q.WakeAt(clock) }

// Abort terminates the simulation with err: the error is recorded (first
// failure wins, wrapped with the aborting process and its virtual time,
// errors.Is-visible), every parked process is released to unwind, and the
// calling goroutine unwinds immediately — Abort never returns. Must be
// called by the running process itself. All three engines surface aborts
// identically (conformance-tested).
func (h *Handle) Abort(err error) {
	s := h.s
	s.mu.Lock()
	s.failLocked(fmt.Errorf("%w (process %d at %d ns)", err, h.id, h.hs.clock))
	s.mu.Unlock()
	panic(abortSignal{})
}

// park blocks the calling process until it is woken with the token. ch is
// the caller's wake channel, resolved under the mutex by the slow path
// that decided to park (wakeChanLocked), so no wake can be sent before
// the channel exists.
func (h *Handle) park(ch chan struct{}) {
	<-ch
	h.s.mu.Lock()
	err := h.s.err
	h.s.mu.Unlock()
	if err != nil {
		panic(abortSignal{})
	}
}

// exit removes the process from the simulation and hands the token on.
func (h *Handle) exit() {
	s := h.s
	id := h.id
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		return
	}
	s.state[id] |= stExited
	s.live--
	if s.live == 0 {
		s.mu.Unlock()
		return
	}
	// A barrier that was waiting for us can now be complete. Invariant:
	// s.live >= 1 here (the live == 0 case returned above), so a matching
	// arrived count means every remaining live process is in the barrier.
	if len(s.arrived) == s.live {
		s.releaseBarrierLocked()
	}
	if !s.hasRunnableLocked() {
		s.failLocked(ErrDeadlock)
		s.mu.Unlock()
		return
	}
	s.resumeLocked(s.dispatchLocked())
	s.mu.Unlock()
}

// fail aborts the simulation with err (first error wins) and wakes every
// parked process so its goroutine can unwind.
func (s *Scheduler) fail(err error) {
	s.mu.Lock()
	s.failLocked(err)
	s.mu.Unlock()
}

// failLocked must be called with s.mu held (every failure site already
// holds it, which is why no sync.Once is needed: first error wins). Only
// ranks that ever parked own a wake channel; the others are either
// running (the failing goroutine itself), already exited, or never
// spawned — none of them is blocked on a receive.
func (s *Scheduler) failLocked(err error) {
	if s.err == nil {
		s.err = err
	}
	for i, ch := range s.wakes {
		if ch == nil || s.state[i]&stExited != 0 {
			continue
		}
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// hasRunnableLocked reports whether any process is pending dispatch:
// queued in the heap or not yet started. Caller must hold s.mu.
func (s *Scheduler) hasRunnableLocked() bool {
	return s.heap.size > 0 || s.nextStart < s.n
}

// topKeyLocked returns the minimum pending (clock, id) across the real
// heap and the virtual start entries: rank nextStart, pending at clock 0,
// stands for every not-yet-started rank (they all share clock 0, so the
// smallest id is the only candidate). Caller must hold s.mu.
func (s *Scheduler) topKeyLocked() (clock int64, id int32, ok bool) {
	c, top, hok := s.heap.peek()
	if s.nextStart < s.n {
		// Queued ranks are always started, so top != nextStart; the
		// virtual entry wins exactly when (0, nextStart) < (c, top).
		if !hok || c > 0 || (c == 0 && s.nextStart < top) {
			return 0, s.nextStart, true
		}
	}
	return c, top, hok
}

// dispatchLocked removes the new minimum from the pending set (real heap
// or virtual start entries), records it as the token holder and caches
// its fast-path horizon. Caller must hold s.mu and resume it via
// resumeLocked (unless the minimum is the caller itself). A genuine
// handoff (the token changing hands) emits an EvDispatch event into the
// new holder's stream; writes to a parked proc's trace buffer
// happen-before the wake send (or the spawning go statement), so capture
// stays race-free.
func (s *Scheduler) dispatchLocked() int32 {
	var next int32
	c, top, hok := s.heap.peek()
	if s.nextStart < s.n && (!hok || c > 0 || (c == 0 && s.nextStart < top)) {
		next = s.nextStart
		s.nextStart++
	} else {
		next = s.popMin()
	}
	s.hot[next].horizon = s.horizonForLocked(next)
	if s.tsink != nil && next != s.running {
		prev := int64(-1)
		if s.running >= 0 {
			prev = int64(s.running)
		}
		s.tsink.Buf(int(next), trace.ClassSched).Emit(trace.EvDispatch, s.hot[next].clock, prev, 0, 0)
	}
	s.running = next
	return next
}

// resumeLocked transfers control to the dispatched rank: the first
// dispatch of a rank spawns its goroutine (which starts running the body
// immediately — the spawn is the wake), later ones send the token on its
// wake channel. Caller must hold s.mu.
func (s *Scheduler) resumeLocked(next int32) {
	if s.state[next]&stStarted == 0 {
		s.state[next] |= stStarted
		s.wg.Add(1)
		go s.runProc(next)
		return
	}
	s.sendWake(next)
}

// horizonForLocked derives rank id's fast-path horizon from the pending
// minimum: id keeps the token while (clock, id) stays lexicographically
// at or below the top's, so it may reach the top clock exactly when its
// id wins the tie-break. The time limit is folded in so the fast path
// detects limit crossings with the same single compare. Caller must hold
// s.mu; id must not be pending.
func (s *Scheduler) horizonForLocked(id int32) int64 {
	hz := int64(math.MaxInt64)
	if c, top, ok := s.topKeyLocked(); ok {
		hz = c
		if id > top {
			hz--
		}
	}
	if s.timeLimit > 0 && hz > s.timeLimit {
		hz = s.timeLimit
	}
	return hz
}

// wakeChanLocked returns rank id's wake channel, allocating it on first
// park. Caller must hold s.mu; because every wake send also happens under
// s.mu, a channel resolved here is visible to all future wakers before
// the caller can park on it.
func (s *Scheduler) wakeChanLocked(id int32) chan struct{} {
	ch := s.wakes[id]
	if ch == nil {
		ch = make(chan struct{}, 1)
		s.wakes[id] = ch
	}
	return ch
}

func (s *Scheduler) sendWake(id int32) {
	select {
	case s.wakes[id] <- struct{}{}:
	default:
		// Already has a pending wake (only possible during teardown).
	}
}

func (s *Scheduler) push(id int32) {
	if s.state[id]&stInHeap != 0 {
		panic(fmt.Sprintf("sim: process %d pushed twice", id))
	}
	s.state[id] |= stInHeap
	s.heap.push(id)
}

func (s *Scheduler) popMin() int32 {
	id := s.heap.pop()
	s.state[id] &^= stInHeap
	return id
}
