// Package sim implements a deterministic discrete-event scheduler for
// simulated distributed processes.
//
// Each simulated process is a goroutine with a virtual clock (nanoseconds).
// The scheduler admits exactly one process at a time: the one with the
// minimum (clock, id) pair. A process runs until it calls Advance (charging
// virtual time for an operation it just performed), Barrier, or Exit, at
// which point the token is handed to the new minimum. Execution is therefore
// a fully deterministic sequential interleaving in virtual-time order,
// independent of the host's core count and of the Go scheduler.
//
// The package knows nothing about RMA; package rma layers windows, latency
// and contention modeling on top of it.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// ErrTimeLimit is returned by Run when a process's virtual clock exceeded
// the configured limit, which almost always indicates livelock or deadlock
// in the simulated protocol.
var ErrTimeLimit = errors.New("sim: virtual time limit exceeded")

// ErrDeadlock is returned by Run when no process can make progress: every
// live process is blocked in a barrier that can never complete.
var ErrDeadlock = errors.New("sim: deadlock: all live processes blocked in barrier")

// abortSignal is panicked inside process goroutines when the simulation is
// torn down early; the Run wrapper recovers it.
type abortSignal struct{}

type proc struct {
	id      int
	clock   int64
	wake    chan struct{}
	inHeap  bool
	heapIdx int
	blocked bool // waiting in a barrier
	exited  bool
}

// Handle is a per-process handle passed to the process body. Its methods
// must only be called from that process's goroutine.
type Handle struct {
	s *Scheduler
	p *proc
}

// ID returns the process id (the simulated rank).
func (h *Handle) ID() int { return h.p.id }

// Clock returns the process's current virtual time in nanoseconds.
func (h *Handle) Clock() int64 { return h.p.clock }

// Scheduler coordinates the virtual clocks of a fixed set of processes.
type Scheduler struct {
	mu        sync.Mutex
	procs     []*proc
	heap      procHeap
	live      int
	arrived   []*proc // processes blocked in the current barrier
	syncCost  int64   // virtual cost charged by a barrier
	timeLimit int64   // 0 = unlimited
	err       error
	errOnce   sync.Once
}

// Config holds scheduler construction parameters.
type Config struct {
	// Procs is the number of simulated processes.
	Procs int
	// TimeLimit aborts the run with ErrTimeLimit once any process's
	// virtual clock exceeds it. Zero means no limit.
	TimeLimit int64
	// BarrierCost is the virtual time charged to every process by a
	// barrier, on top of synchronizing clocks to the maximum.
	BarrierCost int64
}

// New creates a scheduler for cfg.Procs processes.
func New(cfg Config) *Scheduler {
	if cfg.Procs <= 0 {
		panic(fmt.Sprintf("sim: Procs must be positive, got %d", cfg.Procs))
	}
	s := &Scheduler{
		procs:     make([]*proc, cfg.Procs),
		live:      cfg.Procs,
		syncCost:  cfg.BarrierCost,
		timeLimit: cfg.TimeLimit,
	}
	for i := range s.procs {
		s.procs[i] = &proc{id: i, wake: make(chan struct{}, 1), heapIdx: -1}
	}
	return s
}

// Run executes body(handle) once per process, each in its own goroutine,
// and returns when all processes have exited (or the simulation aborted).
// A panic inside a body aborts the whole simulation and is returned as an
// error. Run may only be called once per Scheduler.
func (s *Scheduler) Run(body func(h *Handle)) error {
	var wg sync.WaitGroup
	wg.Add(len(s.procs))
	for _, p := range s.procs {
		go func(p *proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(abortSignal); ok {
						return // torn down by scheduler
					}
					s.fail(fmt.Errorf("sim: process %d panicked: %v\n%s", p.id, r, debug.Stack()))
				}
			}()
			h := &Handle{s: s, p: p}
			h.park() // wait for the initial token
			body(h)
			h.exit()
		}(p)
	}
	// All processes start parked in the heap with clock 0; give the token
	// to the minimum (process 0).
	s.mu.Lock()
	for _, p := range s.procs {
		s.push(p)
	}
	s.sendWake(s.popMin())
	s.mu.Unlock()
	wg.Wait()
	return s.err
}

// Err returns the error recorded by the simulation, if any.
func (s *Scheduler) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// MaxClock returns the largest virtual clock reached by any process. It is
// meaningful after Run returns (total simulated makespan).
func (s *Scheduler) MaxClock() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var max int64
	for _, p := range s.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// Advance charges d nanoseconds of virtual time to the calling process and
// yields the execution token if another process now has the minimum clock.
// d must be positive for operations inside spin loops, or the simulation
// could livelock; Advance enforces d >= 1.
func (h *Handle) Advance(d int64) {
	if d < 1 {
		d = 1
	}
	s := h.s
	p := h.p
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		panic(abortSignal{})
	}
	p.clock += d
	if s.timeLimit > 0 && p.clock > s.timeLimit {
		s.failLocked(fmt.Errorf("%w (process %d at %d ns)", ErrTimeLimit, p.id, p.clock))
		s.mu.Unlock()
		panic(abortSignal{})
	}
	s.push(p)
	next := s.popMin()
	if next == p {
		s.mu.Unlock()
		return
	}
	s.sendWake(next)
	s.mu.Unlock()
	h.park()
}

// Barrier blocks until every live process has called Barrier, then sets all
// clocks to the maximum arrival time plus the configured barrier cost.
func (h *Handle) Barrier() {
	s := h.s
	p := h.p
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		panic(abortSignal{})
	}
	p.blocked = true
	s.arrived = append(s.arrived, p)
	if len(s.arrived) == s.live {
		// Last arriver releases everyone.
		s.releaseBarrierLocked()
		next := s.popMin()
		if next == p {
			s.mu.Unlock()
			return
		}
		s.sendWake(next)
		s.mu.Unlock()
		h.park()
		return
	}
	// Hand the token over; non-arrived live processes are all in the heap.
	if len(s.heap) == 0 {
		s.failLocked(ErrDeadlock)
		s.mu.Unlock()
		panic(abortSignal{})
	}
	next := s.popMin()
	s.sendWake(next)
	s.mu.Unlock()
	h.park()
}

// Block removes the calling process from scheduling until another process
// calls Wake on it. Use it for event-driven waiting (e.g., an MCS-style
// spin on a local flag, where polling is free on real hardware and the
// wake time is the landing time of the granting write). If no runnable
// process remains the simulation aborts with ErrDeadlock.
func (h *Handle) Block() {
	s := h.s
	p := h.p
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		panic(abortSignal{})
	}
	p.blocked = true
	if len(s.heap) == 0 {
		s.failLocked(ErrDeadlock)
		s.mu.Unlock()
		panic(abortSignal{})
	}
	next := s.popMin()
	s.sendWake(next)
	s.mu.Unlock()
	h.park()
}

// releaseBarrierLocked completes the current barrier: every arrived
// process's clock synchronizes to the maximum arrival time plus the
// barrier cost, and all are re-queued as runnable. Shared by Barrier
// (last arriver) and exit (an exit can complete a pending barrier).
// Caller must hold s.mu.
func (s *Scheduler) releaseBarrierLocked() {
	var max int64
	for _, q := range s.arrived {
		if q.clock > max {
			max = q.clock
		}
	}
	max += s.syncCost
	for _, q := range s.arrived {
		q.clock = max
		q.blocked = false
		s.push(q)
	}
	s.arrived = s.arrived[:0]
}

// Wake makes the blocked process q runnable again with its virtual clock
// advanced to at least clock. It must be called by the currently running
// process; the caller keeps the execution token.
func (h *Handle) Wake(q *Handle, clock int64) {
	s := h.s
	s.mu.Lock()
	if s.err != nil {
		// The simulation is tearing down: the target may already be
		// unwinding (its blocked flag is stale), so waking it is both
		// unsafe and pointless. Abort like Advance/Barrier/Block do.
		s.mu.Unlock()
		panic(abortSignal{})
	}
	if !q.p.blocked {
		s.mu.Unlock()
		panic(fmt.Sprintf("sim: Wake of non-blocked process %d", q.p.id))
	}
	q.p.blocked = false
	if clock > q.p.clock {
		q.p.clock = clock
	}
	s.push(q.p)
	s.mu.Unlock()
}

// park blocks the calling process until it is woken with the token.
func (h *Handle) park() {
	<-h.p.wake
	h.s.mu.Lock()
	err := h.s.err
	h.s.mu.Unlock()
	if err != nil {
		panic(abortSignal{})
	}
}

// exit removes the process from the simulation and hands the token on.
func (h *Handle) exit() {
	s := h.s
	p := h.p
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		return
	}
	p.exited = true
	s.live--
	if s.live == 0 {
		s.mu.Unlock()
		return
	}
	// A barrier that was waiting for us can now be complete.
	if len(s.arrived) == s.live && s.live > 0 {
		s.releaseBarrierLocked()
	}
	if len(s.heap) == 0 {
		s.failLocked(ErrDeadlock)
		s.mu.Unlock()
		return
	}
	next := s.popMin()
	s.sendWake(next)
	s.mu.Unlock()
}

// fail aborts the simulation with err (first error wins) and wakes every
// parked process so its goroutine can unwind.
func (s *Scheduler) fail(err error) {
	s.mu.Lock()
	s.failLocked(err)
	s.mu.Unlock()
}

func (s *Scheduler) failLocked(err error) {
	s.errOnce.Do(func() { s.err = err })
	for _, p := range s.procs {
		if !p.exited {
			select {
			case p.wake <- struct{}{}:
			default:
			}
		}
	}
}

func (s *Scheduler) sendWake(p *proc) {
	select {
	case p.wake <- struct{}{}:
	default:
		// Already has a pending wake (only possible during teardown).
	}
}

// heap helpers (min-heap on (clock, id)).

type procHeap []*proc

func (h procHeap) Len() int { return len(h) }
func (h procHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	return h[i].id < h[j].id
}
func (h procHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *procHeap) Push(x any) {
	p := x.(*proc)
	p.heapIdx = len(*h)
	*h = append(*h, p)
}
func (h *procHeap) Pop() any {
	old := *h
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	p.heapIdx = -1
	*h = old[:n-1]
	return p
}

func (s *Scheduler) push(p *proc) {
	if p.inHeap {
		panic(fmt.Sprintf("sim: process %d pushed twice", p.id))
	}
	p.inHeap = true
	heap.Push(&s.heap, p)
}

func (s *Scheduler) popMin() *proc {
	p := heap.Pop(&s.heap).(*proc)
	p.inHeap = false
	return p
}
