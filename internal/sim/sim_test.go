package sim

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestSingleProcess(t *testing.T) {
	s := New(Config{Procs: 1})
	var clock int64
	err := s.Run(func(h *Handle) {
		for i := 0; i < 10; i++ {
			h.Advance(100)
		}
		clock = h.Clock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if clock != 1000 {
		t.Errorf("clock=%d want 1000", clock)
	}
	if s.MaxClock() != 1000 {
		t.Errorf("MaxClock=%d want 1000", s.MaxClock())
	}
}

func TestVirtualTimeOrder(t *testing.T) {
	// Two processes with different step sizes: the sequence of observed
	// (id, clock) events must be sorted by (clock, id).
	type ev struct {
		id    int
		clock int64
	}
	var (
		mu  chan struct{} = make(chan struct{}, 1)
		log []ev
	)
	mu <- struct{}{}
	record := func(id int, c int64) {
		<-mu
		log = append(log, ev{id, c})
		mu <- struct{}{}
	}
	s := New(Config{Procs: 2})
	err := s.Run(func(h *Handle) {
		step := int64(100)
		if h.ID() == 1 {
			step = 70
		}
		for i := 0; i < 50; i++ {
			h.Advance(step)
			record(h.ID(), h.Clock())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Events are recorded after Advance returns, i.e., when the process
	// holds the token, so they must appear in nondecreasing clock order.
	for i := 1; i < len(log); i++ {
		a, b := log[i-1], log[i]
		if b.clock < a.clock || (b.clock == a.clock && b.id < a.id) {
			t.Fatalf("event %d (%v) out of order after %v", i, b, a)
		}
	}
	if len(log) != 100 {
		t.Fatalf("got %d events, want 100", len(log))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		var order []int
		s := New(Config{Procs: 8})
		err := s.Run(func(h *Handle) {
			for i := 0; i < 20; i++ {
				h.Advance(int64(50 + h.ID()*13))
			}
			order = append(order, h.ID()) // token-held: safe
		})
		if err != nil {
			t.Fatal(err)
		}
		return order
	}
	a := run()
	b := run()
	if len(a) != 8 {
		t.Fatalf("only %d exits recorded", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic exit order: %v vs %v", a, b)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	const cost = 500
	s := New(Config{Procs: 4, BarrierCost: cost})
	clocks := make([]int64, 4)
	err := s.Run(func(h *Handle) {
		h.Advance(int64(1000 * (h.ID() + 1))) // clocks 1000..4000
		h.Barrier()
		clocks[h.ID()] = h.Clock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range clocks {
		if c != 4000+cost {
			t.Errorf("proc %d clock=%d want %d", id, c, 4000+cost)
		}
	}
}

func TestRepeatedBarriers(t *testing.T) {
	s := New(Config{Procs: 5, BarrierCost: 1})
	var sum int64
	err := s.Run(func(h *Handle) {
		for round := 0; round < 10; round++ {
			h.Advance(int64(h.ID()*7 + 1))
			h.Barrier()
		}
		atomic.AddInt64(&sum, h.Clock())
	})
	if err != nil {
		t.Fatal(err)
	}
	// All clocks identical after the final barrier.
	if sum%5 != 0 {
		t.Errorf("clocks differ after barrier: sum=%d", sum)
	}
}

func TestTimeLimitAborts(t *testing.T) {
	s := New(Config{Procs: 2, TimeLimit: 10_000})
	err := s.Run(func(h *Handle) {
		for { // spin forever: must be cut off
			h.Advance(100)
		}
	})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err=%v want ErrTimeLimit", err)
	}
}

func TestBodyPanicBecomesError(t *testing.T) {
	s := New(Config{Procs: 3})
	err := s.Run(func(h *Handle) {
		if h.ID() == 1 {
			panic("boom")
		}
		for i := 0; i < 1000; i++ {
			h.Advance(10)
		}
	})
	if err == nil {
		t.Fatal("want error from panicking body")
	}
}

func TestExitDuringBarrierDeadlocks(t *testing.T) {
	s := New(Config{Procs: 2})
	err := s.Run(func(h *Handle) {
		if h.ID() == 0 {
			h.Advance(10)
			return // exits; proc 1 waits in barrier forever... but live
			// count drops, so the barrier releases with 1 participant.
		}
		h.Barrier()
	})
	// Exit reduces live count, so a barrier on the remaining process
	// completes rather than deadlocking.
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestAdvanceMinimumStep(t *testing.T) {
	s := New(Config{Procs: 1})
	err := s.Run(func(h *Handle) {
		h.Advance(0)  // clamped to 1
		h.Advance(-5) // clamped to 1
		if h.Clock() != 2 {
			t.Errorf("clock=%d want 2", h.Clock())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyProcs(t *testing.T) {
	const p = 512
	s := New(Config{Procs: p})
	var done int64
	err := s.Run(func(h *Handle) {
		for i := 0; i < 10; i++ {
			h.Advance(int64(1 + (h.ID()+i)%17))
		}
		atomic.AddInt64(&done, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != p {
		t.Errorf("done=%d want %d", done, p)
	}
}

func TestWakeDuringTeardownAborts(t *testing.T) {
	// Regression: once the simulation has failed, a still-running process
	// that Wakes a watcher must abort like Advance/Barrier/Block do — not
	// trip the "Wake of non-blocked process" panic against a target whose
	// blocked flag went stale while its goroutine unwinds.
	s := New(Config{Procs: 2})
	s.err = errors.New("teardown in progress")
	h0 := &Handle{s: s, p: s.procs[0]}
	h1 := &Handle{s: s, p: s.procs[1]}
	h1.p.blocked = false // target already released/unwinding
	defer func() {
		if _, ok := recover().(abortSignal); !ok {
			t.Fatalf("Wake under a recorded error must panic abortSignal")
		}
	}()
	h0.Wake(h1, 100)
}

func TestWakeAfterTimeLimitTeardown(t *testing.T) {
	// End-to-end flavor of the same defect: process 1 exceeds the time
	// limit while process 0 is blocked; the run must come back with
	// ErrTimeLimit, not a secondary Wake panic, and never hang.
	s := New(Config{Procs: 3, TimeLimit: 5_000})
	handles := make([]*Handle, 3)
	err := s.Run(func(h *Handle) {
		handles[h.ID()] = h // token-held write, then Advance publishes
		h.Advance(1)
		switch h.ID() {
		case 0:
			h.Block() // woken only by teardown
		case 1:
			for {
				h.Advance(1_000) // exceeds the limit, fails the sim
			}
		case 2:
			h.Advance(10_000_000) // parked far in the future
		}
	})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err=%v want ErrTimeLimit", err)
	}
}

func TestExitReleasesBarrierClocks(t *testing.T) {
	// The exit path reuses the same barrier release as Barrier itself:
	// when the last straggler exits instead of arriving, the remaining
	// processes must still synchronize to max arrival + BarrierCost.
	const cost = 300
	s := New(Config{Procs: 3, BarrierCost: cost})
	clocks := make([]int64, 3)
	err := s.Run(func(h *Handle) {
		if h.ID() == 2 {
			h.Advance(50)
			return // exits; the two-process barrier completes without it
		}
		h.Advance(int64(1000 * (h.ID() + 1)))
		h.Barrier()
		clocks[h.ID()] = h.Clock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range clocks[:2] {
		if c != 2000+cost {
			t.Errorf("proc %d clock=%d want %d", id, c, 2000+cost)
		}
	}
}
