package sim

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

func TestSingleProcess(t *testing.T) {
	s := New(Config{Procs: 1})
	var clock int64
	err := s.Run(func(h *Handle) {
		for i := 0; i < 10; i++ {
			h.Advance(100)
		}
		clock = h.Clock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if clock != 1000 {
		t.Errorf("clock=%d want 1000", clock)
	}
	if s.MaxClock() != 1000 {
		t.Errorf("MaxClock=%d want 1000", s.MaxClock())
	}
}

func TestVirtualTimeOrder(t *testing.T) {
	// Two processes with different step sizes: the sequence of observed
	// (id, clock) events must be sorted by (clock, id).
	type ev struct {
		id    int
		clock int64
	}
	var (
		mu  chan struct{} = make(chan struct{}, 1)
		log []ev
	)
	mu <- struct{}{}
	record := func(id int, c int64) {
		<-mu
		log = append(log, ev{id, c})
		mu <- struct{}{}
	}
	s := New(Config{Procs: 2})
	err := s.Run(func(h *Handle) {
		step := int64(100)
		if h.ID() == 1 {
			step = 70
		}
		for i := 0; i < 50; i++ {
			h.Advance(step)
			record(h.ID(), h.Clock())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Events are recorded after Advance returns, i.e., when the process
	// holds the token, so they must appear in nondecreasing clock order.
	for i := 1; i < len(log); i++ {
		a, b := log[i-1], log[i]
		if b.clock < a.clock || (b.clock == a.clock && b.id < a.id) {
			t.Fatalf("event %d (%v) out of order after %v", i, b, a)
		}
	}
	if len(log) != 100 {
		t.Fatalf("got %d events, want 100", len(log))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		var order []int
		s := New(Config{Procs: 8})
		err := s.Run(func(h *Handle) {
			for i := 0; i < 20; i++ {
				h.Advance(int64(50 + h.ID()*13))
			}
			order = append(order, h.ID()) // token-held: safe
		})
		if err != nil {
			t.Fatal(err)
		}
		return order
	}
	a := run()
	b := run()
	if len(a) != 8 {
		t.Fatalf("only %d exits recorded", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic exit order: %v vs %v", a, b)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	const cost = 500
	s := New(Config{Procs: 4, BarrierCost: cost})
	clocks := make([]int64, 4)
	err := s.Run(func(h *Handle) {
		h.Advance(int64(1000 * (h.ID() + 1))) // clocks 1000..4000
		h.Barrier()
		clocks[h.ID()] = h.Clock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range clocks {
		if c != 4000+cost {
			t.Errorf("proc %d clock=%d want %d", id, c, 4000+cost)
		}
	}
}

func TestRepeatedBarriers(t *testing.T) {
	s := New(Config{Procs: 5, BarrierCost: 1})
	var sum int64
	err := s.Run(func(h *Handle) {
		for round := 0; round < 10; round++ {
			h.Advance(int64(h.ID()*7 + 1))
			h.Barrier()
		}
		atomic.AddInt64(&sum, h.Clock())
	})
	if err != nil {
		t.Fatal(err)
	}
	// All clocks identical after the final barrier.
	if sum%5 != 0 {
		t.Errorf("clocks differ after barrier: sum=%d", sum)
	}
}

func TestTimeLimitAborts(t *testing.T) {
	s := New(Config{Procs: 2, TimeLimit: 10_000})
	err := s.Run(func(h *Handle) {
		for { // spin forever: must be cut off
			h.Advance(100)
		}
	})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err=%v want ErrTimeLimit", err)
	}
}

func TestBodyPanicBecomesError(t *testing.T) {
	s := New(Config{Procs: 3})
	err := s.Run(func(h *Handle) {
		if h.ID() == 1 {
			panic("boom")
		}
		for i := 0; i < 1000; i++ {
			h.Advance(10)
		}
	})
	if err == nil {
		t.Fatal("want error from panicking body")
	}
}

func TestExitDuringBarrierDeadlocks(t *testing.T) {
	s := New(Config{Procs: 2})
	err := s.Run(func(h *Handle) {
		if h.ID() == 0 {
			h.Advance(10)
			return // exits; proc 1 waits in barrier forever... but live
			// count drops, so the barrier releases with 1 participant.
		}
		h.Barrier()
	})
	// Exit reduces live count, so a barrier on the remaining process
	// completes rather than deadlocking.
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestAdvanceMinimumStep(t *testing.T) {
	s := New(Config{Procs: 1})
	err := s.Run(func(h *Handle) {
		h.Advance(0)  // clamped to 1
		h.Advance(-5) // clamped to 1
		if h.Clock() != 2 {
			t.Errorf("clock=%d want 2", h.Clock())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyProcs(t *testing.T) {
	const p = 512
	s := New(Config{Procs: p})
	var done int64
	err := s.Run(func(h *Handle) {
		for i := 0; i < 10; i++ {
			h.Advance(int64(1 + (h.ID()+i)%17))
		}
		atomic.AddInt64(&done, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != p {
		t.Errorf("done=%d want %d", done, p)
	}
}

func TestWakeDuringTeardownAborts(t *testing.T) {
	// Regression: once the simulation has failed, a still-running process
	// that Wakes a watcher must abort like Advance/Barrier/Block do — not
	// trip the "Wake of non-blocked process" panic against a target whose
	// blocked flag went stale while its goroutine unwinds.
	s := New(Config{Procs: 2})
	s.err = errors.New("teardown in progress")
	h0 := &s.handles[0]
	h1 := &s.handles[1] // target not blocked: already released/unwinding
	defer func() {
		if _, ok := recover().(abortSignal); !ok {
			t.Fatalf("Wake under a recorded error must panic abortSignal")
		}
	}()
	h0.Wake(h1, 100)
}

func TestWakeAfterTimeLimitTeardown(t *testing.T) {
	// End-to-end flavor of the same defect: process 1 exceeds the time
	// limit while process 0 is blocked; the run must come back with
	// ErrTimeLimit, not a secondary Wake panic, and never hang.
	s := New(Config{Procs: 3, TimeLimit: 5_000})
	handles := make([]*Handle, 3)
	err := s.Run(func(h *Handle) {
		handles[h.ID()] = h // token-held write, then Advance publishes
		h.Advance(1)
		switch h.ID() {
		case 0:
			h.Block() // woken only by teardown
		case 1:
			for {
				h.Advance(1_000) // exceeds the limit, fails the sim
			}
		case 2:
			h.Advance(10_000_000) // parked far in the future
		}
	})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err=%v want ErrTimeLimit", err)
	}
}

func TestWakeExitedPanicsDistinctly(t *testing.T) {
	// Regression: waking a process whose body already returned used to
	// report the misleading "Wake of non-blocked process"; exited must be
	// distinguished from merely non-blocked.
	s := New(Config{Procs: 2})
	s.state[1] |= stExited
	h0 := &s.handles[0]
	h1 := &s.handles[1]
	defer func() {
		r := recover()
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("want string panic, got %T (%v)", r, r)
		}
		if !strings.Contains(msg, "exited") {
			t.Fatalf("panic %q does not mention the process exited", msg)
		}
	}()
	h0.Wake(h1, 100)
}

func TestWakeNonBlockedStillPanics(t *testing.T) {
	s := New(Config{Procs: 2})
	h0 := &s.handles[0]
	h1 := &s.handles[1]
	defer func() {
		msg, ok := recover().(string)
		if !ok || !strings.Contains(msg, "non-blocked") {
			t.Fatalf("want non-blocked panic, got %v", msg)
		}
	}()
	h0.Wake(h1, 100)
}

func TestWakeShrinksHorizon(t *testing.T) {
	// The woken process may become the new next-minimum: after Wake, the
	// caller's fast path must hand over before running past the wake-up
	// clock. Without the horizon re-derivation in WakeAt, process 1 would
	// fast-path to 105 before process 0 runs at 8.
	type ev struct {
		id    int
		clock int64
	}
	var log []ev // token-held appends only
	s := New(Config{Procs: 2})
	handles := make([]*Handle, 2)
	err := s.Run(func(h *Handle) {
		handles[h.ID()] = h
		if h.ID() == 0 {
			h.Block()
			log = append(log, ev{0, h.Clock()})
			return
		}
		h.Advance(5)
		h.Wake(handles[0], 8)
		h.Advance(100)
		log = append(log, ev{1, h.Clock()})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []ev{{0, 8}, {1, 105}}
	if len(log) != 2 || log[0] != want[0] || log[1] != want[1] {
		t.Fatalf("event order %v, want %v", log, want)
	}
}

func TestExitCompletesBarrier(t *testing.T) {
	// Exit-completes-barrier regression: when stragglers exit instead of
	// arriving, the remaining processes' barrier must complete the moment
	// the last non-arriving live process exits (invariant: past the
	// live==0 early return, live >= 1, so arrived == live means everyone
	// left is in the barrier).
	const cost = 100
	s := New(Config{Procs: 5, BarrierCost: cost})
	clocks := make([]int64, 5)
	err := s.Run(func(h *Handle) {
		if h.ID() >= 3 { // two processes exit without arriving
			h.Advance(int64(10 * (h.ID() + 1)))
			return
		}
		h.Advance(int64(100 * (h.ID() + 1)))
		h.Barrier()
		clocks[h.ID()] = h.Clock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range clocks[:3] {
		if c != 300+cost {
			t.Errorf("proc %d clock=%d want %d", id, c, 300+cost)
		}
	}
}

func TestSchedulerReleaseReuse(t *testing.T) {
	// Release returns procs (and their wake channels) to the pool; a
	// later New must produce a fully reset scheduler with identical
	// behavior — including after an errored run, whose teardown leaves
	// stale tokens in the wake channels.
	run := func() (int64, error) {
		s := New(Config{Procs: 8})
		err := s.Run(func(h *Handle) {
			for i := 0; i < 50; i++ {
				h.Advance(int64(1 + (h.ID()*7+i)%13))
			}
		})
		max := s.MaxClock()
		s.Release()
		return max, err
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	// An errored run in between must not poison the pool.
	s := New(Config{Procs: 8, TimeLimit: 100})
	if err := s.Run(func(h *Handle) {
		for {
			h.Advance(50)
		}
	}); !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err=%v want ErrTimeLimit", err)
	}
	s.Release()
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("pooled rerun diverged: MaxClock %d vs %d", a, b)
	}
}

func TestExitReleasesBarrierClocks(t *testing.T) {
	// The exit path reuses the same barrier release as Barrier itself:
	// when the last straggler exits instead of arriving, the remaining
	// processes must still synchronize to max arrival + BarrierCost.
	const cost = 300
	s := New(Config{Procs: 3, BarrierCost: cost})
	clocks := make([]int64, 3)
	err := s.Run(func(h *Handle) {
		if h.ID() == 2 {
			h.Advance(50)
			return // exits; the two-process barrier completes without it
		}
		h.Advance(int64(1000 * (h.ID() + 1)))
		h.Barrier()
		clocks[h.ID()] = h.Clock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, c := range clocks[:2] {
		if c != 2000+cost {
			t.Errorf("proc %d clock=%d want %d", id, c, 2000+cost)
		}
	}
}
