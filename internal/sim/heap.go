package sim

// shardHeap is the pending-process priority queue of the scheduler,
// sharded by contiguous rank ranges so that heaps stay small (and their
// working sets stay within their owning node's proc state) on
// million-rank machines.
//
// Layout: ranks [k*shardSize, (k+1)*shardSize) belong to shard k — with
// shardSize = topology procs-per-leaf, a shard is exactly one compute
// node of the simulated machine. Each shard is a 4-ary min-heap of
// int32 rank ids ordered by (clock, id); clocks live in the scheduler's
// flat hot-state slice, so the heap stores ids only (4 bytes per pending
// rank). A small top-level binary heap orders the non-empty shards by
// their head key, with a position index (topPos) so a shard whose head
// changed can be re-sifted in O(log #shards).
//
// Ownership invariants:
//   - a rank id appears in at most one shard (its own), at most once;
//   - a shard appears in the top heap iff it is non-empty, exactly once,
//     and topPos[k] is its current index there (-1 when absent);
//   - hot[id].clock is immutable while id is queued (the scheduler only
//     touches a rank's clock when it is running, blocked or being woken
//     — never while pending), so heap order cannot rot.
//
// (clock, id) keys are unique and totally ordered, so any conforming
// min-heap pops them in exactly one order: sharding cannot change the
// dispatch sequence (property-tested against the single-shard layout).
//
// The 4-ary shard sift replaces the former binary *proc heap: one level
// of a 4-ary heap touches one cache line of ids, halving the tree depth
// that made BenchmarkProcHeapDrainRefill super-linear once the working
// set outgrew cache.
type shardHeap struct {
	hot       []hotState
	shardSize int32
	shards    [][]int32
	top       []int32 // binary min-heap of shard indices, keyed by shard head
	topPos    []int32 // shard index -> position in top (-1 = not queued)
	size      int
}

// init prepares the heap for n ranks split into ceil(n/shardSize)
// shards, reusing the backing arrays carried by core.
func (h *shardHeap) init(hot []hotState, n, shardSize int, core *schedCore) {
	if shardSize <= 0 || shardSize > n {
		shardSize = n
	}
	h.hot = hot
	h.shardSize = int32(shardSize)
	nShards := (n + shardSize - 1) / shardSize
	sh := core.shards
	if cap(sh) >= nShards {
		sh = sh[:nShards]
	} else {
		sh = append(sh[:cap(sh)], make([][]int32, nShards-cap(sh))...)
	}
	for i := range sh {
		if sh[i] != nil {
			sh[i] = sh[i][:0]
		}
	}
	h.shards = sh
	h.top = core.top[:0]
	tp := core.topPos
	if cap(tp) >= nShards {
		tp = tp[:nShards]
	} else {
		tp = make([]int32, nShards)
	}
	for i := range tp {
		tp[i] = -1
	}
	h.topPos = tp
	h.size = 0
}

// less orders rank ids by (clock, id).
func (h *shardHeap) less(a, b int32) bool {
	ca, cb := h.hot[a].clock, h.hot[b].clock
	return ca < cb || (ca == cb && a < b)
}

// push queues rank id. Caller must hold the scheduler mutex and id must
// not already be queued (the scheduler's inHeap flag guards this).
func (h *shardHeap) push(id int32) {
	si := id / h.shardSize
	a := append(h.shards[si], id)
	c := h.hot[id].clock
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		q := a[parent]
		cq := h.hot[q].clock
		if c > cq || (c == cq && id > q) {
			break
		}
		a[i] = q
		i = parent
	}
	a[i] = id
	h.shards[si] = a
	h.size++
	if i == 0 {
		// The shard's head changed (or the shard just became non-empty):
		// its top-heap key decreased.
		if h.topPos[si] < 0 {
			h.topPush(si)
		} else {
			h.topUp(int(h.topPos[si]))
		}
	}
}

// pop removes and returns the minimum (clock, id) rank across all shards.
// Caller must hold the scheduler mutex; h.size must be positive.
func (h *shardHeap) pop() int32 {
	si := h.top[0]
	a := h.shards[si]
	id := a[0]
	n := len(a) - 1
	last := a[n]
	a = a[:n]
	h.shards[si] = a
	h.size--
	if n == 0 {
		h.topRemoveRoot()
		return id
	}
	// Sift the former last element down from the shard root (4-ary).
	cl := h.hot
	lastC := cl[last].clock
	i := 0
	for {
		c0 := i<<2 + 1
		if c0 >= n {
			break
		}
		min, minID := c0, a[c0]
		minC := cl[minID].clock
		end := c0 + 4
		if end > n {
			end = n
		}
		for c := c0 + 1; c < end; c++ {
			q := a[c]
			cq := cl[q].clock
			if cq < minC || (cq == minC && q < minID) {
				min, minID, minC = c, q, cq
			}
		}
		if lastC < minC || (lastC == minC && last < minID) {
			break
		}
		a[i] = minID
		i = min
	}
	a[i] = last
	// The shard head grew (heap property): restore the top heap downward.
	h.topDown(0)
	return id
}

// peek returns the minimum pending (clock, id) without removing it.
func (h *shardHeap) peek() (clock int64, id int32, ok bool) {
	if h.size == 0 {
		return 0, 0, false
	}
	id = h.shards[h.top[0]][0]
	return h.hot[id].clock, id, true
}

// topLess orders shards by their head rank's (clock, id).
func (h *shardHeap) topLess(x, y int32) bool {
	return h.less(h.shards[x][0], h.shards[y][0])
}

func (h *shardHeap) topPush(si int32) {
	h.top = append(h.top, si)
	h.topPos[si] = int32(len(h.top) - 1)
	h.topUp(len(h.top) - 1)
}

func (h *shardHeap) topUp(i int) {
	t := h.top
	for i > 0 {
		parent := (i - 1) / 2
		if !h.topLess(t[i], t[parent]) {
			break
		}
		t[i], t[parent] = t[parent], t[i]
		h.topPos[t[i]] = int32(i)
		h.topPos[t[parent]] = int32(parent)
		i = parent
	}
}

func (h *shardHeap) topDown(i int) {
	t := h.top
	n := len(t)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && h.topLess(t[r], t[l]) {
			min = r
		}
		if !h.topLess(t[min], t[i]) {
			break
		}
		t[i], t[min] = t[min], t[i]
		h.topPos[t[i]] = int32(i)
		h.topPos[t[min]] = int32(min)
		i = min
	}
}

func (h *shardHeap) topRemoveRoot() {
	t := h.top
	h.topPos[t[0]] = -1
	n := len(t) - 1
	t[0] = t[n]
	t = t[:n]
	h.top = t
	if n > 0 {
		h.topPos[t[0]] = 0
		h.topDown(0)
	}
}
