package sim

// Tests for the memory-flat core's two refactor-specific risks: pooled
// schedCore reuse leaking state between schedulers, and the sharded heap
// changing dispatch order relative to a single heap.

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"rmalocks/internal/trace"
)

// tracedBlockingRun executes a canonical workload that exercises every
// per-rank state class — horizons (advances), wake channels (block/wake),
// barriers and trace buffers — and returns its full event stream and
// makespan. Byte-identical output is the ground truth for reuse tests.
func tracedBlockingRun(t *testing.T) ([]trace.Event, int64) {
	t.Helper()
	sink := trace.New(trace.ClassAll)
	s := New(Config{Procs: 3, ShardSize: 2, BarrierCost: 5, Trace: sink})
	handles := make([]*Handle, 3)
	err := s.Run(func(h *Handle) {
		handles[h.ID()] = h
		switch h.ID() {
		case 0:
			h.Block()
			h.Advance(3)
		case 1:
			h.Advance(7)
			h.Wake(handles[0], 9)
			h.Advance(40)
		default:
			h.Advance(25)
		}
		h.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	max := s.MaxClock()
	s.Release()
	return sink.Events(), max
}

func TestReleaseReacquireNoStaleState(t *testing.T) {
	wantEvs, wantMax := tracedBlockingRun(t)

	// Pollute the pool: a traced run (handles get trace buffers), then an
	// errored run whose teardown leaves stale tokens in wake channels,
	// both at shapes different from the canonical run's.
	tracedBlockingRun(t)
	s := New(Config{Procs: 6, ShardSize: 3, TimeLimit: 100})
	if err := s.Run(func(h *Handle) {
		if h.ID() == 0 {
			h.Block() // parked at teardown: its wake channel gets the abort token
		}
		for {
			h.Advance(30)
		}
	}); !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err=%v want ErrTimeLimit", err)
	}
	s.Release()

	// A reacquired scheduler must be indistinguishable from a fresh one:
	// zeroed hot state and flags, rebuilt handles without stale trace
	// buffers, drained wake channels, empty heap.
	s = New(Config{Procs: 4, ShardSize: 2})
	for i := 0; i < 4; i++ {
		if s.hot[i] != (hotState{}) {
			t.Errorf("rank %d: stale hot state %+v", i, s.hot[i])
		}
		if s.state[i] != 0 {
			t.Errorf("rank %d: stale flags %b", i, s.state[i])
		}
		h := &s.handles[i]
		if h.s != s || h.id != int32(i) || h.hs != &s.hot[i] {
			t.Errorf("rank %d: handle not rebuilt for this scheduler", i)
		}
		if h.tb != nil {
			t.Errorf("rank %d: handle kept a stale trace buffer", i)
		}
		if ch := s.wakes[i]; ch != nil {
			select {
			case <-ch:
				t.Errorf("rank %d: stale wake token survived reacquire", i)
			default:
			}
		}
	}
	if s.heap.size != 0 {
		t.Errorf("heap size=%d want 0", s.heap.size)
	}
	for si, pos := range s.heap.topPos {
		if pos != -1 {
			t.Errorf("shard %d queued in top heap of a fresh scheduler", si)
		}
	}
	s.Release()

	// And behaviorally: the canonical run replayed through the polluted
	// pool stays byte-identical, trace stream included.
	gotEvs, gotMax := tracedBlockingRun(t)
	if gotMax != wantMax {
		t.Errorf("MaxClock %d, want %d", gotMax, wantMax)
	}
	if !reflect.DeepEqual(gotEvs, wantEvs) {
		t.Errorf("trace stream diverged after pooled reuse: %d events vs %d", len(gotEvs), len(wantEvs))
	}
}

func TestShardedDispatchOrderMatchesSingleHeap(t *testing.T) {
	// Property: (clock, id) keys are unique and totally ordered, so the
	// shard layout must be invisible — every ShardSize yields the exact
	// dispatch sequence of the single heap, for random process counts and
	// random advance/barrier workloads.
	shardSizes := []int{0, 1, 3, 16, 64}
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*7919 + 1))
		procs := 1 + rng.Intn(48)
		steps := 1 + rng.Intn(40)
		barriers := rng.Intn(3)
		seedBase := rng.Int63()
		body := func(h *Handle) {
			r := rand.New(rand.NewSource(seedBase + int64(h.ID())))
			for b := 0; b <= barriers; b++ {
				for i := 0; i < steps; i++ {
					h.Advance(1 + r.Int63n(97))
				}
				if b < barriers {
					h.Barrier()
				}
			}
		}
		var wantEvs []trace.Event
		var wantMax int64
		for _, ss := range shardSizes {
			sink := trace.New(trace.ClassSched)
			s := New(Config{Procs: procs, ShardSize: ss, BarrierCost: 11, Trace: sink})
			if err := s.Run(body); err != nil {
				t.Fatalf("trial %d shardSize %d: %v", trial, ss, err)
			}
			max := s.MaxClock()
			s.Release()
			evs := sink.Events()
			if ss == shardSizes[0] {
				wantEvs, wantMax = evs, max
				continue
			}
			if max != wantMax {
				t.Fatalf("trial %d (procs=%d): shardSize %d MaxClock %d, single-heap %d",
					trial, procs, ss, max, wantMax)
			}
			if !reflect.DeepEqual(evs, wantEvs) {
				t.Fatalf("trial %d (procs=%d): shardSize %d dispatch stream diverged from single heap (%d vs %d events)",
					trial, procs, ss, len(evs), len(wantEvs))
			}
		}
	}
}
