package spinwait

import (
	"testing"
	"testing/quick"
)

type fakeClock struct{ total int64 }

func (f *fakeClock) Compute(d int64) { f.total += d }

func TestPauseDoublesUpToCap(t *testing.T) {
	b := New(100, 800)
	var c fakeClock
	waits := []int64{}
	for i := 0; i < 6; i++ {
		before := c.total
		b.Pause(&c)
		waits = append(waits, c.total-before)
	}
	want := []int64{100, 200, 400, 800, 800, 800}
	for i := range want {
		if waits[i] != want[i] {
			t.Fatalf("waits=%v want %v", waits, want)
		}
	}
}

func TestReset(t *testing.T) {
	b := New(50, 1000)
	var c fakeClock
	b.Pause(&c)
	b.Pause(&c)
	b.Reset()
	if b.Cur() != 50 {
		t.Errorf("Cur after Reset = %d, want 50", b.Cur())
	}
}

func TestDefaultsSane(t *testing.T) {
	b := Default()
	if b.Cur() < 1 {
		t.Error("default backoff starts below 1ns")
	}
	var c fakeClock
	for i := 0; i < 20; i++ {
		b.Pause(&c)
	}
	if b.Cur() > 2000 {
		t.Errorf("default cap exceeded: %d", b.Cur())
	}
}

func TestDegenerateBounds(t *testing.T) {
	b := New(0, -5) // both invalid: clamp to 1
	var c fakeClock
	b.Pause(&c)
	if c.total < 1 {
		t.Error("pause must always advance time")
	}
	if b.Cur() < 1 {
		t.Error("interval collapsed to zero")
	}
}

func TestPauseAlwaysPositiveProperty(t *testing.T) {
	f := func(min, max int16, n uint8) bool {
		b := New(int64(min), int64(max))
		var c fakeClock
		for i := 0; i < int(n%32); i++ {
			before := c.total
			b.Pause(&c)
			if c.total <= before {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCapIsRespectedProperty(t *testing.T) {
	f := func(min, max uint16) bool {
		lo, hi := int64(min%1000)+1, int64(max%10000)+1
		if hi < lo {
			hi = lo
		}
		b := New(lo, hi)
		var c fakeClock
		for i := 0; i < 40; i++ {
			b.Pause(&c)
			if b.Cur() > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
