// Package spinwait provides the virtual-time exponential backoff used by
// every spin loop in the lock protocols.
//
// The paper's protocols spin with repeated Get+Flush pairs. In a
// discrete-event simulation, polling at the raw Get rate would generate
// enormous numbers of events while a process waits; real implementations
// insert backoff for the same reason (to reduce load on the memory system).
// Backoff advances the waiting process's virtual clock, so waiting costs
// time exactly as it should.
package spinwait

// Computer is the minimal clock-advancing surface a backoff needs; both
// rma.Proc and test fakes satisfy it.
type Computer interface {
	Compute(d int64)
}

// Backoff implements capped exponential backoff in virtual nanoseconds.
// The zero value is not usable; use New or Default.
type Backoff struct {
	min, max, cur int64
}

// New returns a backoff starting at min ns, doubling up to max ns.
func New(min, max int64) Backoff {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	return Backoff{min: min, max: max, cur: min}
}

// Default returns the backoff policy used by the lock protocols: start at
// 100 ns, cap at 2 µs (well below the modeled network latencies, so backoff
// adds little noise to measured lock passing times).
func Default() Backoff { return New(100, 2000) }

// Pause charges the current backoff interval to p's virtual clock and
// doubles the interval up to the cap.
func (b *Backoff) Pause(p Computer) {
	p.Compute(b.cur)
	b.cur *= 2
	if b.cur > b.max {
		b.cur = b.max
	}
}

// Reset restores the interval to its minimum; call it after the awaited
// condition was observed so the next wait starts fast.
func (b *Backoff) Reset() { b.cur = b.min }

// Cur returns the next pause duration (for tests).
func (b *Backoff) Cur() int64 { return b.cur }
