package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestProgressCachedCells drives the cached-cell lifecycle: cached
// cells are terminal, counted in Done and Cached, and excluded from
// the ETA extrapolation base.
func TestProgressCachedCells(t *testing.T) {
	p := NewSweepProgress("cached sweep")
	p.Start([]string{"a", "b", "c", "d"})

	// Two cache hits resolve instantly. No computed completions yet, so
	// the ETA must stay unknown (-1) — extrapolating from instantaneous
	// hits would promise a near-zero finish time for cells that still
	// have to compute.
	p.CellCached(0, "fp-a")
	p.CellCached(1, "fp-b")
	cells, sum := decodeProgress(t, p)
	if cells[0].State != StateCached || cells[0].Fingerprint != "fp-a" {
		t.Fatalf("cached cell = %+v", cells[0])
	}
	if sum.Done != 2 || sum.Cached != 2 || sum.Queued != 2 {
		t.Fatalf("summary after hits = %+v", sum)
	}
	if sum.EtaMs != -1 {
		t.Fatalf("eta after cache-only completions = %v, want -1", sum.EtaMs)
	}

	// First computed completion: now there is a real rate to
	// extrapolate from.
	p.CellRunning(2)
	p.CellDone(2, "fp-c", nil)
	_, sum = decodeProgress(t, p)
	if sum.EtaMs < 0 {
		t.Fatalf("eta after first computed completion = %v, want >= 0", sum.EtaMs)
	}

	p.CellRunning(3)
	p.CellDone(3, "fp-d", nil)
	_, sum = decodeProgress(t, p)
	if sum.Done != 4 || sum.Cached != 2 || sum.EtaMs != 0 {
		t.Fatalf("final summary = %+v", sum)
	}
}

// TestProgressAllCachedEta: a sweep resolved entirely from cache is
// finished — ETA 0, never a bogus extrapolation.
func TestProgressAllCachedEta(t *testing.T) {
	p := NewSweepProgress("all cached")
	p.Start([]string{"a", "b"})
	p.CellCached(0, "fp-a")
	p.CellCached(1, "fp-b")
	_, sum := decodeProgress(t, p)
	if sum.EtaMs != 0 || sum.Done != 2 || sum.Cached != 2 {
		t.Fatalf("all-cached summary = %+v, want done eta=0", sum)
	}
}

// TestProgressEndpointEta pins the satellite guarantees at the HTTP
// layer: /progress never serves a bogus ETA when nothing has computed
// yet, and serves 0 when everything resolved from cache.
func TestProgressEndpointEta(t *testing.T) {
	readSummary := func(p ProgressReporter) SummaryLine {
		t.Helper()
		srv := NewServer(nil, p)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/progress", nil))
		lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
		var sum SummaryLine
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
			t.Fatalf("bad summary line %q: %v", lines[len(lines)-1], err)
		}
		if !sum.Summary {
			t.Fatalf("last line is not a summary: %+v", sum)
		}
		return sum
	}

	// Zero completions of any kind.
	fresh := NewSweepProgress("fresh")
	fresh.Start([]string{"a", "b"})
	if sum := readSummary(fresh); sum.EtaMs != -1 {
		t.Errorf("fresh sweep eta = %v, want -1", sum.EtaMs)
	}

	// Cache hits only, computed cells remaining.
	hits := NewSweepProgress("hits")
	hits.Start([]string{"a", "b", "c"})
	hits.CellCached(0, "fp")
	hits.CellCached(1, "fp")
	if sum := readSummary(hits); sum.EtaMs != -1 {
		t.Errorf("cache-hits-only eta = %v, want -1", sum.EtaMs)
	}

	// Everything cached: terminal, eta 0.
	all := NewSweepProgress("all")
	all.Start([]string{"a", "b"})
	all.CellCached(0, "fp")
	all.CellCached(1, "fp")
	if sum := readSummary(all); sum.EtaMs != 0 {
		t.Errorf("all-cached eta = %v, want 0", sum.EtaMs)
	}
}

// TestMultiProgressAggregate checks the fan-in: per-job summaries keyed
// by job name, cell lines annotated, and the aggregate line summing
// counts with a max-of-jobs ETA discipline.
func TestMultiProgressAggregate(t *testing.T) {
	a := NewSweepProgress("job-1")
	a.Start([]string{"x", "y"})
	a.CellRunning(0)
	a.CellDone(0, "fp-x", nil)
	b := NewSweepProgress("job-2")
	b.Start([]string{"z"})
	b.CellCached(0, "fp-z")

	m := NewMultiProgress()
	m.Add("job-1", a)
	m.Add("job-2", b)

	var sb strings.Builder
	if err := m.WriteNDJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var cells []CellLine
	var sums []SummaryLine
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		var probe map[string]any
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if probe["summary"] == true {
			var s SummaryLine
			json.Unmarshal(sc.Bytes(), &s) //nolint:errcheck
			sums = append(sums, s)
			continue
		}
		var c CellLine
		json.Unmarshal(sc.Bytes(), &c) //nolint:errcheck
		cells = append(cells, c)
	}
	if len(cells) != 3 {
		t.Fatalf("cell lines = %d, want 3", len(cells))
	}
	if cells[0].Job != "job-1" || cells[2].Job != "job-2" {
		t.Fatalf("cell job annotations = %q, %q", cells[0].Job, cells[2].Job)
	}
	if len(sums) != 3 {
		t.Fatalf("summary lines = %d, want 2 jobs + aggregate", len(sums))
	}
	if sums[0].Title != "job-1" || sums[1].Title != "job-2" || sums[2].Title != "" {
		t.Fatalf("summary titles = %q, %q, %q", sums[0].Title, sums[1].Title, sums[2].Title)
	}
	agg := sums[2]
	if agg.Total != 3 || agg.Done != 2 || agg.Cached != 1 {
		t.Fatalf("aggregate = %+v", agg)
	}
	// job-1 has a computed completion (finite eta); job-2 is finished
	// (eta 0): the aggregate takes the max — job-1's finite eta.
	if agg.EtaMs < 0 {
		t.Fatalf("aggregate eta = %v, want finite", agg.EtaMs)
	}
}

// TestServerHandleExtension: routes mounted via Handle serve on the
// same mux and appear on the index page.
func TestServerHandleExtension(t *testing.T) {
	srv := NewServer(nil, nil)
	srv.Handle("/jobs", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/jobs", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("mounted route returned %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if !strings.Contains(rec.Body.String(), "/jobs") {
		t.Fatalf("index page does not list the mounted route:\n%s", rec.Body.String())
	}
}
