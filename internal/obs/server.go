package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"
)

// ProgressReporter is the /progress data source: a single sweep's
// tracker (*SweepProgress, the workbench) or the multi-job fan-in
// (*MultiProgress, sweepd). Both render NDJSON snapshots and follow
// streams.
type ProgressReporter interface {
	WriteNDJSON(w io.Writer) error
	StreamNDJSON(w io.Writer, interval time.Duration, done <-chan struct{}) error
}

// Server is the HTTP observability plane (`workbench -listen`): the
// first slice of cmd/sweepd. It serves
//
//	/metrics         Prometheus text exposition of the registry
//	/progress        per-cell sweep status as NDJSON (?follow=1 streams
//	                 state transitions until the sweep finishes)
//	/debug/pprof/*   the standard pprof handlers on this mux
//
// All endpoints are read-only: a scrape never blocks or perturbs a
// running simulation (every metric cell is an atomic; progress state is
// under its own small mutex that sweep workers touch only at cell
// boundaries).
type Server struct {
	reg  *Registry
	prog ProgressReporter
	mux  *http.ServeMux
	ln   net.Listener
	srv  *http.Server

	mu    sync.Mutex
	extra []string // extra route patterns, listed by the index page
}

// NewServer builds an unstarted server over the given registry and
// progress reporter (either may be nil; the endpoints degrade to empty
// expositions).
func NewServer(reg *Registry, prog ProgressReporter) *Server {
	s := &Server{reg: reg, prog: prog}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/progress", s.handleProgress)
	// net/http/pprof registers on DefaultServeMux at import; wire the
	// same handlers onto our private mux instead.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.HandleFunc("/", s.handleIndex)
	s.srv = &http.Server{Handler: s.mux}
	return s
}

// Handle mounts an additional route on the observability mux — how
// cmd/sweepd's job API (POST /jobs, GET /jobs/{id}, ...) extends the
// plane without owning it. The pattern shows up on the index page.
// Register routes before Listen; http.ServeMux panics on duplicates,
// exactly like registering twice on the default mux.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
	s.mu.Lock()
	s.extra = append(s.extra, pattern)
	sort.Strings(s.extra)
	s.mu.Unlock()
}

// Handler returns the observability mux. Exposed separately so tests
// can drive it with httptest without opening a socket.
func (s *Server) Handler() http.Handler { return s.mux }

// Listen binds addr (e.g. ":0", "127.0.0.1:9137") and serves in a
// background goroutine. Addr reports the bound address.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return nil
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	if s == nil || s.ln == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // client gone
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if s.prog == nil {
		fmt.Fprintln(w, `{"summary":true,"total":0,"done":0,"running":0,"queued":0,"failed":0,"elapsed_ms":0,"eta_ms":-1}`)
		return
	}
	if follow, _ := strconv.ParseBool(r.URL.Query().Get("follow")); follow {
		interval := 250 * time.Millisecond
		if ms, err := strconv.Atoi(r.URL.Query().Get("interval_ms")); err == nil && ms > 0 {
			interval = time.Duration(ms) * time.Millisecond
		}
		s.prog.StreamNDJSON(w, interval, r.Context().Done()) //nolint:errcheck // client gone
		return
	}
	s.prog.WriteNDJSON(w) //nolint:errcheck // client gone
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fmt.Fprint(w, "rmalocks observability plane\n\n/metrics\n/progress (?follow=1)\n/debug/pprof/\n")
	s.mu.Lock()
	extra := append([]string(nil), s.extra...)
	s.mu.Unlock()
	for _, p := range extra {
		fmt.Fprintln(w, p)
	}
}
