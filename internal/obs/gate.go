package obs

// GateMetrics instruments the conservative gate of the parallel engine
// (internal/sim/psim) — the one global serial section of a psim run.
// ROADMAP item 2 asks to "profile and shrink the gate's serial
// fraction"; these metrics turn that fraction from a guess into a
// measured number:
//
//   - Hold accumulates wall-clock nanoseconds spent holding the gate
//     mutex (measured inside the lock, so it is pure hold time, not
//     wait time), and Wall accumulates the wall-clock duration of the
//     psim runs that fed it. SerialFraction = Hold / Wall is the
//     Amdahl ceiling of the engine: with N cores the best possible
//     speedup is 1 / (serial + (1-serial)/N).
//   - Lockings counts gate-mutex acquisitions and Grants counts
//     requests granted, so Hold/Lockings is the mean critical-section
//     length and Grants/Lockings the grant yield per lock trip.
//   - ReqDepth and ConsDepth sample the grant-queue (request heap) and
//     constraint-heap occupancy at every pump, the queues a per-node
//     sharding of the gate would split.
//   - Slack histograms the lookahead slack at grant time in *virtual*
//     nanoseconds: how far below the earliest conservative constraint
//     the granted request was. Large slacks mean the lookahead bounds
//     are loose enough that batched grant wakeups would win.
//
// All fields are registry-backed atomics: psim updates them under its
// own gate mutex (or not at all — a nil *GateMetrics costs each site
// one nil check), and /metrics scrapes read them mid-run without
// touching the simulation.
type GateMetrics struct {
	Hold     *Counter
	Wall     *Counter
	Lockings *Counter
	Grants   *Counter
	ReqDepth *Histogram
	ConsDepth *Histogram
	Slack    *Histogram
}

// NewGateMetrics registers the psim gate instruments on r (nil r yields
// nil, disabling every site) and a derived psim_gate_serial_fraction
// gauge computed at scrape time.
func NewGateMetrics(r *Registry) *GateMetrics {
	if r == nil {
		return nil
	}
	g := &GateMetrics{
		Hold:     r.Counter("psim_gate_hold_ns_total", "Wall-clock nanoseconds the gate mutex was held."),
		Wall:     r.Counter("psim_run_wall_ns_total", "Wall-clock nanoseconds spent inside psim engine runs."),
		Lockings: r.Counter("psim_gate_lockings_total", "Gate-mutex acquisitions."),
		Grants:   r.Counter("psim_gate_grants_total", "Access requests granted by the gate."),
		ReqDepth: r.Histogram("psim_gate_grant_queue_depth", "Request-heap depth sampled at each gate pump.",
			ExpBuckets(1, 2, 13), 1), // 1 .. 4096
		ConsDepth: r.Histogram("psim_gate_constraint_heap_entries", "Constraint-heap occupancy sampled at each gate pump.",
			ExpBuckets(1, 2, 13), 1),
		Slack: r.Histogram("psim_gate_lookahead_slack_ns", "Virtual-ns slack between a granted request and the earliest conservative constraint.",
			ExpBuckets(64, 4, 12), 1), // 64ns .. ~268ms virtual
	}
	r.GaugeFunc("psim_gate_serial_fraction",
		"Share of psim run wall-clock spent holding the gate mutex (the engine's measured serial fraction).",
		g.SerialFraction)
	return g
}

// SerialFraction returns gate-mutex hold time as a share of psim run
// wall-clock time — the measured serial fraction of the conservative
// engine. 0 until a psim run has recorded wall time (0 on nil).
func (g *GateMetrics) SerialFraction() float64 {
	if g == nil {
		return 0
	}
	wall := g.Wall.Value()
	if wall <= 0 {
		return 0
	}
	return float64(g.Hold.Value()) / float64(wall)
}

// HoldValue returns the cumulative gate-mutex hold nanoseconds (0 on
// nil) — harness phase spans read it before/after a run to attribute
// serial-section time to the run phase.
func (g *GateMetrics) HoldValue() int64 {
	if g == nil {
		return 0
	}
	return g.Hold.Value()
}

// Metrics bundles the per-run observability instruments threaded
// through the stack: the metric registry and the psim gate metrics
// registered on it. A nil *Metrics disables observability at one nil
// check per site; sweep grids share one Metrics across all cells
// (every instrument is concurrency-safe and merge-by-sum).
type Metrics struct {
	Registry *Registry
	Gate     *GateMetrics
}

// NewMetrics builds a fresh registry with the gate instruments
// registered.
func NewMetrics() *Metrics {
	r := NewRegistry()
	return &Metrics{Registry: r, Gate: NewGateMetrics(r)}
}

// Span opens a phase span (no-op span when m is nil).
func (m *Metrics) Span(name string) Span {
	if m == nil {
		return Span{}
	}
	return m.Registry.Span(name)
}

// GateMetrics returns the gate instruments (nil when m is nil).
func (m *Metrics) GateMetrics() *GateMetrics {
	if m == nil {
		return nil
	}
	return m.Gate
}
