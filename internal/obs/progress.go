package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Cell lifecycle states reported by /progress.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
	// StateCached marks a cell resolved from the result cache: terminal
	// without ever running (sweepd's dirty-cell-only recompute path).
	StateCached = "cached"
)

// SweepProgress tracks per-cell sweep status for the /progress
// endpoint. It implements sweep.Progress (Start / CellRunning /
// CellDone) without importing package sweep, mirroring how the trace
// sink plugs into the engines. All methods are goroutine-safe: sweep
// workers update concurrently with HTTP readers, and nothing here can
// reach back into a simulation — progress is observational only.
type SweepProgress struct {
	mu      sync.Mutex
	started time.Time
	title   string
	cells   []cellStat
	done    int
	running int
	cached  int
	// ver increments on every state change; the follow stream uses it
	// to ship only transitions.
	ver uint64
}

type cellStat struct {
	key         string
	state       string
	fingerprint string
	err         string
	startedAt   time.Time
	elapsed     time.Duration
}

// NewSweepProgress creates an empty tracker; Start (called by
// sweep.Run) populates it.
func NewSweepProgress(title string) *SweepProgress {
	return &SweepProgress{title: title}
}

// Start registers the sweep's cells in canonical order, all queued.
// Implements sweep.Progress.
func (p *SweepProgress) Start(keys []string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.started = time.Now()
	p.cells = make([]cellStat, len(keys))
	for i, k := range keys {
		p.cells[i] = cellStat{key: k, state: StateQueued}
	}
	p.done, p.running, p.cached = 0, 0, 0
	p.ver++
}

// CellCached marks cell i as resolved from the result cache — terminal,
// instantaneous, never run. Implements sweep.Progress. Cached cells
// count as done but are excluded from the ETA extrapolation base (they
// complete in ~0 time and would drag the per-cell mean toward zero).
func (p *SweepProgress) CellCached(i int, fingerprint string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.cells) {
		return
	}
	c := &p.cells[i]
	c.state = StateCached
	c.fingerprint = fingerprint
	p.done++
	p.cached++
	p.ver++
}

// CellRunning marks cell i as executing. Implements sweep.Progress.
func (p *SweepProgress) CellRunning(i int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.cells) {
		return
	}
	p.cells[i].state = StateRunning
	p.cells[i].startedAt = time.Now()
	p.running++
	p.ver++
}

// CellDone records cell i's outcome: its report fingerprint on
// success, the error otherwise. Implements sweep.Progress.
func (p *SweepProgress) CellDone(i int, fingerprint string, err error) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if i < 0 || i >= len(p.cells) {
		return
	}
	c := &p.cells[i]
	if c.state == StateRunning {
		p.running--
	}
	c.state = StateDone
	c.fingerprint = fingerprint
	if err != nil {
		c.state = StateFailed
		c.err = err.Error()
	}
	if !c.startedAt.IsZero() {
		c.elapsed = time.Since(c.startedAt)
	}
	p.done++
	p.ver++
}

// CellLine is one cell's status, one NDJSON line of /progress.
type CellLine struct {
	Cell        string  `json:"cell"`
	State       string  `json:"state"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	Error       string  `json:"error,omitempty"`
	ElapsedMs   float64 `json:"elapsed_ms,omitempty"`
	// Job names the owning job on multi-job expositions (sweepd's
	// /progress fan-in); empty on single-sweep streams, keeping the
	// workbench NDJSON schema byte-identical to pre-sweepd output.
	Job string `json:"job,omitempty"`
}

// SummaryLine is the trailing NDJSON line of /progress: aggregate
// counts plus an ETA extrapolated from the completed-cell rate.
type SummaryLine struct {
	Summary   bool    `json:"summary"`
	Title     string  `json:"title,omitempty"`
	Total     int     `json:"total"`
	Done      int     `json:"done"`
	Running   int     `json:"running"`
	Queued    int     `json:"queued"`
	Failed    int     `json:"failed"`
	// Cached counts cells resolved from the result cache (a subset of
	// Done); omitted when zero, keeping cache-free sweeps' NDJSON
	// byte-identical to pre-sweepd output.
	Cached    int     `json:"cached,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms"`
	// EtaMs extrapolates time to completion from the mean rate of
	// *computed* completions — cache hits are instantaneous and excluded
	// from the base. -1 until the first computed cell completes (no
	// bogus extrapolation from zero or cache-only completions); 0 once
	// every cell is terminal, including the all-cells-cached case.
	EtaMs float64 `json:"eta_ms"`
}

// snapshotLocked renders the current state. Caller holds p.mu.
func (p *SweepProgress) snapshotLocked() ([]CellLine, SummaryLine) {
	lines := make([]CellLine, len(p.cells))
	failed := 0
	for i, c := range p.cells {
		lines[i] = CellLine{Cell: c.key, State: c.state, Fingerprint: c.fingerprint, Error: c.err}
		switch c.state {
		case StateRunning:
			lines[i].ElapsedMs = float64(time.Since(c.startedAt)) / 1e6
		case StateDone, StateFailed:
			lines[i].ElapsedMs = float64(c.elapsed) / 1e6
		}
		if c.state == StateFailed {
			failed++
		}
	}
	elapsed := time.Duration(0)
	if !p.started.IsZero() {
		elapsed = time.Since(p.started)
	}
	sum := SummaryLine{
		Summary: true, Title: p.title,
		Total: len(p.cells), Done: p.done, Running: p.running,
		Queued: len(p.cells) - p.done - p.running, Failed: failed,
		Cached:    p.cached,
		ElapsedMs: float64(elapsed) / 1e6, EtaMs: -1,
	}
	// ETA: remaining cells × mean wall time per computed completion.
	// Cached completions are excluded from the base — they resolve
	// instantaneously during the pre-pass and would extrapolate a bogus
	// near-zero ETA for cells that still have to compute.
	computed := p.done - p.cached
	if p.done == len(p.cells) {
		sum.EtaMs = 0
	} else if computed > 0 {
		perCell := elapsed / time.Duration(computed)
		sum.EtaMs = float64(perCell*time.Duration(len(p.cells)-p.done)) / 1e6
	}
	return lines, sum
}

// version returns the state-change counter.
func (p *SweepProgress) version() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ver
}

// finished reports whether every cell reached a terminal state.
func (p *SweepProgress) finished() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.cells) > 0 && p.done == len(p.cells)
}

// WriteNDJSON writes the current snapshot as NDJSON: one CellLine per
// cell in canonical order, then one SummaryLine.
func (p *SweepProgress) WriteNDJSON(w io.Writer) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	lines, sum := p.snapshotLocked()
	p.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, l := range lines {
		if err := enc.Encode(l); err != nil {
			return err
		}
	}
	return enc.Encode(sum)
}

// flusher lets the streaming writer push each update through an
// http.ResponseWriter's buffer.
type flusher interface{ Flush() }

// StreamNDJSON writes the snapshot like WriteNDJSON and then keeps
// streaming: on every state change (polled at the given interval) it
// emits the transitioned cells and a fresh SummaryLine, until the sweep
// finishes or the writer errors (client gone). done receives an
// optional external stop signal (may be nil).
func (p *SweepProgress) StreamNDJSON(w io.Writer, interval time.Duration, done <-chan struct{}) error {
	if p == nil {
		return nil
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	enc := json.NewEncoder(w)
	p.mu.Lock()
	lines, sum := p.snapshotLocked()
	last := make([]string, len(p.cells))
	for i, c := range p.cells {
		last[i] = c.state
	}
	ver := p.ver
	p.mu.Unlock()
	for _, l := range lines {
		if err := enc.Encode(l); err != nil {
			return err
		}
	}
	if err := enc.Encode(sum); err != nil {
		return err
	}
	if f, ok := w.(flusher); ok {
		f.Flush()
	}
	for !p.finished() {
		select {
		case <-done:
			return nil
		case <-time.After(interval):
		}
		if p.version() == ver {
			continue
		}
		p.mu.Lock()
		lines, sum = p.snapshotLocked()
		changed := lines[:0:0]
		for i := range p.cells {
			if p.cells[i].state != last[i] {
				last[i] = p.cells[i].state
				changed = append(changed, lines[i])
			}
		}
		ver = p.ver
		p.mu.Unlock()
		for _, l := range changed {
			if err := enc.Encode(l); err != nil {
				return err
			}
		}
		if err := enc.Encode(sum); err != nil {
			return err
		}
		if f, ok := w.(flusher); ok {
			f.Flush()
		}
	}
	return nil
}
