package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exposition byte-for-byte on a
// registry with known values: metric names, HELP/TYPE headers, label
// sets and ordering are API surface — a scraper's dashboard breaks if
// they drift silently.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "Sorts last.").Add(7)
	r.Counter("aa_first_total", "Sorts first.").Add(3)
	r.Gauge("mid_gauge", "A settable gauge.").Set(-4)
	r.GaugeFunc("mid_ratio", "A derived gauge.", func() float64 { return 0.25 })
	sc := r.ShardedCounter("sharded_total", "A sharded counter.", 64)
	for w := 0; w < 64; w++ {
		sc.Add(w, 2)
	}
	h := r.Histogram("depth", "A depth histogram.", []int64{1, 4, 16}, 8)
	h.Observe(0, 1)
	h.Observe(3, 3)
	h.Observe(5, 100)
	r.Span("run").EndSerial(0) // wall ns is live; pin only names below

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	want := `# HELP aa_first_total Sorts first.
# TYPE aa_first_total counter
aa_first_total 3
# HELP depth A depth histogram.
# TYPE depth histogram
depth_bucket{le="1"} 1
depth_bucket{le="4"} 2
depth_bucket{le="16"} 2
depth_bucket{le="+Inf"} 3
depth_sum 104
depth_count 3
# HELP mid_gauge A settable gauge.
# TYPE mid_gauge gauge
mid_gauge -4
# HELP mid_ratio A derived gauge.
# TYPE mid_ratio gauge
mid_ratio 0.25
# HELP sharded_total A sharded counter.
# TYPE sharded_total counter
sharded_total 128
# HELP zz_last_total Sorts last.
# TYPE zz_last_total counter
zz_last_total 7
`
	// Phase lines carry live wall-clock values; split them off and check
	// the metric block exactly, the phase block structurally.
	idx := strings.Index(got, "# HELP obs_phase_wall_ns_total")
	if idx < 0 {
		t.Fatalf("missing phase exposition in:\n%s", got)
	}
	if got[:idx] != want {
		t.Errorf("metric exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got[:idx], want)
	}
	phases := got[idx:]
	for _, line := range []string{
		`# TYPE obs_phase_wall_ns_total counter`,
		`obs_phase_wall_ns_total{phase="run"} `,
		`obs_phase_serial_ns_total{phase="run"} 0`,
		`obs_phase_spans_total{phase="run"} 1`,
	} {
		if !strings.Contains(phases, line) {
			t.Errorf("phase exposition missing %q in:\n%s", line, phases)
		}
	}
}

// TestGateMetricsScrapeNames pins the psim gate metric names — the
// contract the obs-smoke CI job greps for.
func TestGateMetricsScrapeNames(t *testing.T) {
	r := NewRegistry()
	NewGateMetrics(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, name := range []string{
		"psim_gate_hold_ns_total",
		"psim_run_wall_ns_total",
		"psim_gate_lockings_total",
		"psim_gate_grants_total",
		"psim_gate_grant_queue_depth_bucket",
		"psim_gate_constraint_heap_entries_bucket",
		"psim_gate_lookahead_slack_ns_bucket",
		"psim_gate_serial_fraction",
	} {
		if !strings.Contains(got, "\n"+name+" ") && !strings.Contains(got, "\n"+name+"{") {
			t.Errorf("scrape missing metric %q:\n%s", name, got)
		}
	}
}

// TestSerialFraction checks the derived gauge: Hold/Wall, 0 before any
// wall time lands.
func TestSerialFraction(t *testing.T) {
	g := NewGateMetrics(NewRegistry())
	if f := g.SerialFraction(); f != 0 {
		t.Fatalf("fraction before wall time = %v, want 0", f)
	}
	g.Hold.Add(250)
	g.Wall.Add(1000)
	if f := g.SerialFraction(); f != 0.25 {
		t.Fatalf("fraction = %v, want 0.25", f)
	}
}

// TestNilSafety drives every nil-receiver path: the disabled-obs
// configuration must cost one nil check, never a panic.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c", "").Inc()
	r.Gauge("g", "").Set(1)
	r.GaugeFunc("f", "", func() float64 { return 1 })
	r.ShardedCounter("s", "", 8).Add(3, 1)
	r.Histogram("h", "", []int64{1}, 8).Observe(0, 5)
	r.Span("x").End()
	r.Span("y").EndSerial(9)
	if v := r.Counter("c", "").Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Phases) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}

	var g *GateMetrics
	if g.SerialFraction() != 0 || g.HoldValue() != 0 {
		t.Fatal("nil GateMetrics not zero")
	}

	var m *Metrics
	m.Span("p").End()
	if m.GateMetrics() != nil {
		t.Fatal("nil Metrics returned non-nil gate")
	}
}

// TestGetOrCreate checks that re-registration returns the same
// instance (shared sweep registry) and that a type clash panics.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h")
	b := r.Counter("x_total", "h")
	if a != b {
		t.Fatal("re-registered counter is a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as a different type did not panic")
		}
	}()
	r.Gauge("x_total", "h")
}

// TestShardedCounterExact checks writer folding keeps counts exact for
// writer counts beyond the shard cap.
func TestShardedCounterExact(t *testing.T) {
	r := NewRegistry()
	writers := 3 * maxShards
	sc := r.ShardedCounter("wide_total", "", writers)
	for w := 0; w < writers; w++ {
		sc.Add(w, 1)
	}
	if v := sc.Value(); v != int64(writers) {
		t.Fatalf("merged value = %d, want %d", v, writers)
	}
}

// TestHistogramBuckets checks bucket assignment at the boundaries and
// the cumulative merge.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", ExpBuckets(1, 2, 3), 4) // bounds 1,2,4
	for _, v := range []int64{0, 1, 2, 3, 4, 5} {
		h.Observe(int(v), int64(v))
	}
	cum, count, sum := h.merged()
	if count != 6 || sum != 15 {
		t.Fatalf("count=%d sum=%d, want 6/15", count, sum)
	}
	// cumulative: ≤1: {0,1}=2, ≤2: +{2}=3, ≤4: +{3,4}=5, +Inf: +{5}=6
	want := []int64{2, 3, 5, 6}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum=%v, want %v", cum, want)
		}
	}
}

// TestConcurrentWritesAndScrapes hammers one registry from writer and
// scraper goroutines; meaningful under -race (the mid-sweep scrape
// case), and checks the merged totals afterwards.
func TestConcurrentWritesAndScrapes(t *testing.T) {
	r := NewRegistry()
	const writers, perWriter = 8, 1000
	sc := r.ShardedCounter("hammer_total", "", writers)
	h := r.Histogram("hammer_hist", "", ExpBuckets(1, 4, 6), writers)
	c := r.Counter("plain_total", "")
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(2)
	for s := 0; s < 2; s++ {
		go func() {
			defer scrapes.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				r.Snapshot()
			}
		}()
	}
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sc.Add(w, 1)
				h.Observe(w, int64(i%100))
				c.Inc()
				sp := r.Span("run")
				sp.EndSerial(1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()
	if v := sc.Value(); v != writers*perWriter {
		t.Fatalf("sharded total = %d, want %d", v, writers*perWriter)
	}
	if v := c.Value(); v != writers*perWriter {
		t.Fatalf("plain total = %d, want %d", v, writers*perWriter)
	}
	if n := h.Count(); n != writers*perWriter {
		t.Fatalf("hist count = %d, want %d", n, writers*perWriter)
	}
	snap := r.Snapshot()
	ph := snap.Phases["run"]
	if ph.Spans != writers*perWriter || ph.SerialNs != writers*perWriter {
		t.Fatalf("phase spans=%d serial=%d, want %d", ph.Spans, ph.SerialNs, writers*perWriter)
	}
}

// TestSpanWall sanity-checks span wall accumulation.
func TestSpanWall(t *testing.T) {
	r := NewRegistry()
	sp := r.Span("p")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if w := r.Snapshot().Phases["p"].WallNs; w < int64(time.Millisecond) {
		t.Fatalf("span wall = %dns, want >= 1ms", w)
	}
}

// TestExpBuckets pins the generator.
func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(64, 4, 4)
	want := []int64{64, 256, 1024, 4096}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
