package obs

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Server, *SweepProgress, *Registry) {
	t.Helper()
	r := NewRegistry()
	p := NewSweepProgress("srv test")
	return NewServer(r, p), p, r
}

// TestMetricsEndpoint checks content type and exposition body.
func TestMetricsEndpoint(t *testing.T) {
	srv, _, reg := newTestServer(t)
	reg.Counter("hits_total", "Hits.").Add(5)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "hits_total 5") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}
}

// TestProgressEndpoint checks the NDJSON payload and content type.
func TestProgressEndpoint(t *testing.T) {
	srv, prog, _ := newTestServer(t)
	prog.Start([]string{"cell-0", "cell-1"})
	prog.CellRunning(0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) != 3 { // 2 cells + summary
		t.Fatalf("lines = %d (%q), want 3", len(lines), lines)
	}
	if !strings.Contains(lines[0], `"cell-0"`) || !strings.Contains(lines[0], `"running"`) {
		t.Fatalf("first line = %s", lines[0])
	}
	if !strings.Contains(lines[2], `"summary":true`) {
		t.Fatalf("last line = %s", lines[2])
	}
}

// TestProgressFollow streams with ?follow=1 while cells complete and
// checks the stream ends once the sweep finishes, having carried the
// transitions.
func TestProgressFollow(t *testing.T) {
	srv, prog, _ := newTestServer(t)
	prog.Start([]string{"c0", "c1"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	go func() {
		time.Sleep(20 * time.Millisecond)
		prog.CellRunning(0)
		prog.CellDone(0, "fp0", nil)
		time.Sleep(20 * time.Millisecond)
		prog.CellRunning(1)
		prog.CellDone(1, "fp1", nil)
	}()
	resp, err := http.Get(ts.URL + "/progress?follow=1&interval_ms=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body) // returns only when the stream closes
	if err != nil {
		t.Fatal(err)
	}
	s := string(body)
	if !strings.Contains(s, `"fp0"`) || !strings.Contains(s, `"fp1"`) {
		t.Fatalf("stream missing completions:\n%s", s)
	}
	if !strings.Contains(s, `"done":2`) {
		t.Fatalf("stream missing final summary:\n%s", s)
	}
}

// TestPprofEndpoint checks /debug/pprof/ is wired onto the custom mux.
func TestPprofEndpoint(t *testing.T) {
	srv, _, _ := newTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index unexpected body:\n%.200s", body)
	}
}

// TestListenAndClose binds :0, scrapes over TCP, and shuts down.
func TestListenAndClose(t *testing.T) {
	srv, _, reg := newTestServer(t)
	reg.Counter("up", "").Inc()
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up 1") {
		t.Fatalf("scrape over TCP:\n%s", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
