// Package obs is the deterministic-safe observability subsystem: live
// counters, gauges and histograms sharded per rank (the same lock-free
// shard pattern as internal/trace's per-rank buffers and the psim stat
// shards — every writer owns its slot, merges happen at read time),
// named phase spans (setup / run / drain / merge) with wall-clock and
// cumulative serial-section timing, and the scrape surfaces built on
// top: a Prometheus text exposition (server.go: /metrics), an NDJSON
// sweep-progress stream (/progress), and a merged JSON snapshot
// (workbench -metrics-out).
//
// # Observe, never perturb
//
// Nothing in this package may influence a simulation result. Metrics
// measure *host* behaviour (wall-clock time, queue depths, goroutine
// counts); virtual-time decisions never read them, and metric values
// never enter workload.Report.Extra or report fingerprints — with obs
// enabled or disabled, every report is byte-identical (test-enforced,
// see internal/workload's obs tests). The one deliberate exception to
// "host-only" is the gate's lookahead-slack histogram, which records
// virtual nanoseconds — but it too is write-only from the simulator's
// perspective.
//
// # Cost model
//
// Every instrumentation site holds a possibly-nil metric pointer and
// all metric methods are nil-receiver-safe, so the disabled path costs
// one predictable nil check — exactly the trace.Buf pattern. The
// scheduler's lock-free Advance fast path is not instrumented at all:
// with obs off or on it is byte-for-byte the same code
// (BenchmarkAdvanceUncontended stays ~1.6ns / 0 allocs).
//
// Reads (scrapes) may run concurrently with writes: all cells are
// atomics, so a mid-run /metrics scrape sees a consistent-enough view
// without stopping a single simulation goroutine.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// maxShards caps the shard count of per-rank sharded metrics. Ranks are
// folded onto shards by index masking, so counts stay exact at any P;
// beyond this many shards the cache-line padding would cost real memory
// (64B × shards × metrics) without buying contention relief the host's
// core count can use.
const maxShards = 4096

// Registry is a metric container: a named set of counters, gauges and
// histograms plus the phase table. All methods are safe for concurrent
// use, and every method is nil-receiver-safe — a nil *Registry hands
// out nil metrics whose methods no-op, so call sites need no obs-on
// conditionals.
//
// Metric constructors are get-or-create: asking for an existing name
// with the same type returns the registered instance (parallel sweep
// cells share one registry), and with a different type panics (a
// programming error, like prometheus.MustRegister).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
	phases  map[string]*phaseStat
}

// NewRegistry creates an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]metric),
		phases:  make(map[string]*phaseStat),
	}
}

// metric is the common surface of every registered instrument.
type metric interface {
	metricName() string
	metricHelp() string
	metricType() string // "counter" | "gauge" | "histogram"
	// expose writes the exposition sample lines (not the HELP/TYPE
	// header) in Prometheus text format.
	expose(w io.Writer)
	// snap folds the merged value(s) into a Snapshot.
	snap(s *Snapshot)
}

// register implements get-or-create under the registry lock. make is
// only called when the name is new.
func (r *Registry) register(name, typ string, make func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.metricType() != typ {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, m.metricType()))
		}
		return m
	}
	m := make()
	r.metrics[name] = m
	return m
}

// Counter returns the named monotonically-increasing counter,
// registering it on first use. Nil registries return a nil counter
// (whose methods no-op).
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, "counter", func() metric {
		return &Counter{nm: name, hp: help}
	}).(*Counter)
}

// Gauge returns the named settable gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, "gauge", func() metric {
		return &Gauge{nm: name, hp: help}
	}).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed at scrape time by
// fn (e.g. a live goroutine count, or a ratio of two counters). fn must
// be safe for concurrent calls. Re-registering the same name keeps the
// first function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, "gauge", func() metric {
		return &gaugeFunc{nm: name, hp: help, fn: fn}
	})
}

// CounterFunc registers a counter whose value is read at scrape time by
// fn — for subsystems that already keep their own atomic totals (the
// result cache's hit/miss/eviction counts) and only need an exposition.
// fn must be monotonic and safe for concurrent calls. Re-registering
// the same name keeps the first function.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.register(name, "counter", func() metric {
		return &counterFunc{nm: name, hp: help, fn: fn}
	})
}

// ShardedCounter returns the named counter sharded for the given writer
// count (typically the rank count P), registering it on first use.
// Writer i adds through shard i&mask without contending with other
// writers: each shard is one cache-line-padded atomic, the per-rank
// pattern of trace's buffers and psim's stat shards. Counts are exact
// for any writer count; only contention relief degrades past maxShards.
// Get-or-create keeps the first shard sizing (values stay exact).
func (r *Registry) ShardedCounter(name, help string, writers int) *ShardedCounter {
	if r == nil {
		return nil
	}
	return r.register(name, "counter", func() metric {
		return newShardedCounter(name, help, writers)
	}).(*ShardedCounter)
}

// Histogram returns the named histogram with the given upper bucket
// bounds (ascending; an implicit +Inf bucket is appended) sharded for
// the given writer count, registering it on first use.
func (r *Registry) Histogram(name, help string, bounds []int64, writers int) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, "histogram", func() metric {
		return newHistogram(name, help, bounds, writers)
	}).(*Histogram)
}

// Counter is a monotonically-increasing atomic counter.
type Counter struct {
	nm, hp string
	v      atomic.Int64
}

// Add increments the counter by d; no-op on a nil counter.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one; no-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) metricName() string { return c.nm }
func (c *Counter) metricHelp() string { return c.hp }
func (c *Counter) metricType() string { return "counter" }
func (c *Counter) expose(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.nm, c.Value())
}
func (c *Counter) snap(s *Snapshot) { s.Counters[c.nm] = c.Value() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	nm, hp string
	v      atomic.Int64
}

// Set replaces the gauge value; no-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by d; no-op on a nil gauge.
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) metricName() string { return g.nm }
func (g *Gauge) metricHelp() string { return g.hp }
func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) expose(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", g.nm, g.Value())
}
func (g *Gauge) snap(s *Snapshot) { s.Gauges[g.nm] = float64(g.Value()) }

// gaugeFunc is a gauge computed at read time.
type gaugeFunc struct {
	nm, hp string
	fn     func() float64
}

func (g *gaugeFunc) metricName() string { return g.nm }
func (g *gaugeFunc) metricHelp() string { return g.hp }
func (g *gaugeFunc) metricType() string { return "gauge" }
func (g *gaugeFunc) expose(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.nm, fmtFloat(g.fn()))
}
func (g *gaugeFunc) snap(s *Snapshot) { s.Gauges[g.nm] = g.fn() }

// counterFunc is a counter read from an external atomic at scrape time.
type counterFunc struct {
	nm, hp string
	fn     func() int64
}

func (c *counterFunc) metricName() string { return c.nm }
func (c *counterFunc) metricHelp() string { return c.hp }
func (c *counterFunc) metricType() string { return "counter" }
func (c *counterFunc) expose(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.nm, c.fn())
}
func (c *counterFunc) snap(s *Snapshot) { s.Counters[c.nm] = c.fn() }

// shard is one cache-line-padded atomic cell: writers on different
// shards never share a line, the point of the per-rank pattern.
type shard struct {
	v atomic.Int64
	_ [56]byte
}

// shardCount rounds the writer count up to a power of two capped at
// maxShards, so writer→shard folding is a mask.
func shardCount(writers int) int {
	n := 1
	for n < writers && n < maxShards {
		n <<= 1
	}
	return n
}

// ShardedCounter is a counter whose increments spread over padded
// per-writer shards; reads merge the shards.
type ShardedCounter struct {
	nm, hp string
	mask   int
	shards []shard
}

func newShardedCounter(name, help string, writers int) *ShardedCounter {
	n := shardCount(writers)
	return &ShardedCounter{nm: name, hp: help, mask: n - 1, shards: make([]shard, n)}
}

// Add increments the counter by d through writer's shard; no-op on a
// nil counter. writer is typically the simulated rank.
func (c *ShardedCounter) Add(writer int, d int64) {
	if c != nil {
		c.shards[writer&c.mask].v.Add(d)
	}
}

// Value merges the shards into the current total (0 on nil).
func (c *ShardedCounter) Value() int64 {
	if c == nil {
		return 0
	}
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

func (c *ShardedCounter) metricName() string { return c.nm }
func (c *ShardedCounter) metricHelp() string { return c.hp }
func (c *ShardedCounter) metricType() string { return "counter" }
func (c *ShardedCounter) expose(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.nm, c.Value())
}
func (c *ShardedCounter) snap(s *Snapshot) { s.Counters[c.nm] = c.Value() }

// Histogram counts observations into fixed buckets, sharded per writer
// like ShardedCounter. Bounds are int64 because every observed quantity
// here is a nanosecond duration or a queue depth.
type Histogram struct {
	nm, hp string
	bounds []int64
	mask   int
	// cells is laid out shard-major: shard s owns
	// cells[s*(len(bounds)+2) : (s+1)*(len(bounds)+2)], the bucket
	// counts followed by the +Inf count and the value sum. Shards are
	// padded out to whole cache lines by construction (stride rounded
	// up below would over-engineer: one simulation writes a few dozen
	// histogram points per grant, not per Advance).
	cells []atomic.Int64
}

func newHistogram(name, help string, bounds []int64, writers int) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending: %v", name, bounds))
		}
	}
	n := shardCount(writers)
	b := append([]int64(nil), bounds...)
	return &Histogram{
		nm: name, hp: help, bounds: b, mask: n - 1,
		cells: make([]atomic.Int64, n*(len(b)+2)),
	}
}

// Observe records v through writer's shard; no-op on a nil histogram.
func (h *Histogram) Observe(writer int, v int64) {
	if h == nil {
		return
	}
	stride := len(h.bounds) + 2
	base := (writer & h.mask) * stride
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.cells[base+i].Add(1)            // bucket (or the +Inf slot at len(bounds))
	h.cells[base+len(h.bounds)+1].Add(v) // sum
}

// merged returns cumulative bucket counts (one per bound plus +Inf),
// the total count and the value sum.
func (h *Histogram) merged() (cum []int64, count, sum int64) {
	if h == nil {
		return nil, 0, 0
	}
	stride := len(h.bounds) + 2
	raw := make([]int64, len(h.bounds)+1)
	for s := 0; s <= h.mask; s++ {
		base := s * stride
		for i := range raw {
			raw[i] += h.cells[base+i].Load()
		}
		sum += h.cells[base+len(h.bounds)+1].Load()
	}
	cum = make([]int64, len(raw))
	for i, c := range raw {
		count += c
		cum[i] = count
	}
	return cum, count, sum
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	_, n, _ := h.merged()
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	_, _, s := h.merged()
	return s
}

func (h *Histogram) metricName() string { return h.nm }
func (h *Histogram) metricHelp() string { return h.hp }
func (h *Histogram) metricType() string { return "histogram" }
func (h *Histogram) expose(w io.Writer) {
	cum, count, sum := h.merged()
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", h.nm, b, cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.nm, cum[len(cum)-1])
	fmt.Fprintf(w, "%s_sum %d\n", h.nm, sum)
	fmt.Fprintf(w, "%s_count %d\n", h.nm, count)
}
func (h *Histogram) snap(s *Snapshot) {
	cum, count, sum := h.merged()
	hs := HistogramSnapshot{Count: count, Sum: sum}
	for i, b := range h.bounds {
		hs.Buckets = append(hs.Buckets, BucketSnapshot{Le: strconv.FormatInt(b, 10), Count: cum[i]})
	}
	hs.Buckets = append(hs.Buckets, BucketSnapshot{Le: "+Inf", Count: cum[len(cum)-1]})
	s.Histograms[h.nm] = hs
}

// ExpBuckets returns bounds start, start*factor, ... (n bounds), the
// usual shape for nanosecond-duration and depth histograms.
func ExpBuckets(start, factor int64, n int) []int64 {
	b := make([]int64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// phaseStat accumulates one named phase: how many spans completed, the
// cumulative wall-clock nanoseconds across them, and the cumulative
// serial-section nanoseconds its spans attributed (time provably spent
// under a global lock while the phase ran — for the psim run phase, the
// conservative gate's mutex hold time).
type phaseStat struct {
	spans    atomic.Int64
	wallNs   atomic.Int64
	serialNs atomic.Int64
}

// Span is one in-flight phase span. The zero Span (from a nil registry)
// no-ops. Spans on the same phase may overlap freely (parallel sweep
// cells each open their own); wall time accumulates per span, so
// overlapping spans sum CPU-style rather than eliding overlap.
type Span struct {
	st *phaseStat
	t0 time.Time
}

// Span opens a span on the named phase. End (or EndSerial) closes it.
func (r *Registry) Span(name string) Span {
	if r == nil {
		return Span{}
	}
	r.mu.Lock()
	st, ok := r.phases[name]
	if !ok {
		st = &phaseStat{}
		r.phases[name] = st
	}
	r.mu.Unlock()
	return Span{st: st, t0: time.Now()}
}

// End closes the span, accumulating its wall time into the phase.
func (s Span) End() { s.EndSerial(0) }

// EndSerial closes the span like End and additionally attributes
// serialNs nanoseconds of the span's duration to serial sections — the
// caller measured them (e.g. as the delta of the psim gate's hold-time
// counter across the span).
func (s Span) EndSerial(serialNs int64) {
	if s.st == nil {
		return
	}
	s.st.spans.Add(1)
	s.st.wallNs.Add(time.Since(s.t0).Nanoseconds())
	s.st.serialNs.Add(serialNs)
}

// PhaseSnapshot is one phase's merged totals.
type PhaseSnapshot struct {
	Spans    int64 `json:"spans"`
	WallNs   int64 `json:"wall_ns"`
	SerialNs int64 `json:"serial_ns,omitempty"`
}

// BucketSnapshot is one histogram bucket's cumulative count.
type BucketSnapshot struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramSnapshot is one histogram's merged state.
type HistogramSnapshot struct {
	Buckets []BucketSnapshot `json:"buckets"`
	Count   int64            `json:"count"`
	Sum     int64            `json:"sum"`
}

// Snapshot is the merged post-run view of a registry, the side-channel
// payload of `workbench -metrics-out`. Maps marshal with sorted keys,
// so the JSON layout is deterministic (values are host wall-clock
// measurements and are not).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Phases     map[string]PhaseSnapshot     `json:"phases,omitempty"`
}

// Snapshot merges every metric and phase into a Snapshot (empty on a
// nil registry).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Phases:     map[string]PhaseSnapshot{},
	}
	if r == nil {
		return s
	}
	for _, m := range r.sorted() {
		m.snap(&s)
	}
	r.mu.Lock()
	for name, st := range r.phases {
		s.Phases[name] = PhaseSnapshot{
			Spans: st.spans.Load(), WallNs: st.wallNs.Load(), SerialNs: st.serialNs.Load(),
		}
	}
	r.mu.Unlock()
	return s
}

// sorted returns the registered metrics in name order (the stable
// scrape order the golden exposition test pins).
func (r *Registry) sorted() []metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]metric, len(names))
	for i, n := range names {
		out[i] = r.metrics[n]
	}
	return out
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4): metrics in name order, each with HELP and
// TYPE headers, then the phase table as two labeled counter families.
// Metric names and label sets are stable across runs (test-pinned);
// values are live.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if r != nil {
		for _, m := range r.sorted() {
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s %s\n", m.metricName(), m.metricHelp(), m.metricName(), m.metricType())
			m.expose(bw)
		}
		r.exposePhases(bw)
	}
	return bw.Flush()
}

// exposePhases renders the phase table: cumulative wall ns, serial ns
// and span counts per phase, labeled by phase name in sorted order.
func (r *Registry) exposePhases(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.phases))
	for n := range r.phases {
		names = append(names, n)
	}
	sort.Strings(names)
	stats := make([]*phaseStat, len(names))
	for i, n := range names {
		stats[i] = r.phases[n]
	}
	r.mu.Unlock()
	if len(names) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP obs_phase_wall_ns_total Cumulative wall-clock nanoseconds per phase span.\n# TYPE obs_phase_wall_ns_total counter\n")
	for i, n := range names {
		fmt.Fprintf(w, "obs_phase_wall_ns_total{phase=%q} %d\n", n, stats[i].wallNs.Load())
	}
	fmt.Fprintf(w, "# HELP obs_phase_serial_ns_total Cumulative serial-section nanoseconds attributed per phase.\n# TYPE obs_phase_serial_ns_total counter\n")
	for i, n := range names {
		fmt.Fprintf(w, "obs_phase_serial_ns_total{phase=%q} %d\n", n, stats[i].serialNs.Load())
	}
	fmt.Fprintf(w, "# HELP obs_phase_spans_total Completed spans per phase.\n# TYPE obs_phase_spans_total counter\n")
	for i, n := range names {
		fmt.Fprintf(w, "obs_phase_spans_total{phase=%q} %d\n", n, stats[i].spans.Load())
	}
}

// fmtFloat renders a gauge value the way Prometheus expects: shortest
// round-trip representation.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
