package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// MultiProgress fans several SweepProgress trackers — one per sweepd
// job, jobs may run concurrently — into a single /progress exposition.
// Cell lines carry the owning job's name in the "job" field, each job
// contributes its own summary line (Title = job name), and one
// aggregate summary line (empty Title) trails the exposition with the
// summed counts. All methods are nil-receiver-safe and safe for
// concurrent use; trackers may be added while readers stream.
type MultiProgress struct {
	mu       sync.Mutex
	names    []string
	trackers []*SweepProgress
}

// NewMultiProgress creates an empty fan-in; Add registers job trackers.
func NewMultiProgress() *MultiProgress { return &MultiProgress{} }

// Add registers a job's tracker under its job name. Jobs are exposed in
// registration order — sweepd submission order, which is stable.
func (m *MultiProgress) Add(name string, p *SweepProgress) {
	if m == nil || p == nil {
		return
	}
	m.mu.Lock()
	m.names = append(m.names, name)
	m.trackers = append(m.trackers, p)
	m.mu.Unlock()
}

// jobs snapshots the registered (name, tracker) pairs.
func (m *MultiProgress) jobs() ([]string, []*SweepProgress) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.names...), append([]*SweepProgress(nil), m.trackers...)
}

// snapshot renders every job's cells (annotated with the job name) and
// summary, plus the trailing aggregate summary.
func (m *MultiProgress) snapshot() (lines []CellLine, sums []SummaryLine, agg SummaryLine) {
	names, trackers := m.jobs()
	agg = SummaryLine{Summary: true, EtaMs: 0}
	etaUnknown := false
	var maxElapsed, maxEta float64
	for i, p := range trackers {
		p.mu.Lock()
		cl, sum := p.snapshotLocked()
		p.mu.Unlock()
		for j := range cl {
			cl[j].Job = names[i]
		}
		sum.Title = names[i]
		lines = append(lines, cl...)
		sums = append(sums, sum)
		agg.Total += sum.Total
		agg.Done += sum.Done
		agg.Running += sum.Running
		agg.Queued += sum.Queued
		agg.Failed += sum.Failed
		agg.Cached += sum.Cached
		if sum.ElapsedMs > maxElapsed {
			maxElapsed = sum.ElapsedMs
		}
		switch {
		case sum.EtaMs < 0:
			etaUnknown = true
		case sum.EtaMs > maxEta:
			maxEta = sum.EtaMs
		}
	}
	agg.ElapsedMs = maxElapsed
	// Jobs run concurrently, so the fleet finishes when the slowest job
	// does: the aggregate ETA is the max over jobs, unknown (-1) while
	// any unfinished job has no computed completions to extrapolate from.
	if agg.Done == agg.Total {
		agg.EtaMs = 0
	} else if etaUnknown {
		agg.EtaMs = -1
	} else {
		agg.EtaMs = maxEta
	}
	return lines, sums, agg
}

// version folds every tracker's change counter plus the registration
// count; the follow stream polls it.
func (m *MultiProgress) version() uint64 {
	_, trackers := m.jobs()
	v := uint64(len(trackers))
	for _, p := range trackers {
		v += p.version()
	}
	return v
}

// WriteNDJSON writes the full multi-job snapshot: per job, its cell
// lines then its summary; finally the aggregate summary.
func (m *MultiProgress) WriteNDJSON(w io.Writer) error {
	if m == nil {
		return nil
	}
	lines, sums, agg := m.snapshot()
	enc := json.NewEncoder(w)
	emitted := 0
	for _, sum := range sums {
		for ; emitted < len(lines) && lines[emitted].Job == sum.Title; emitted++ {
			if err := enc.Encode(lines[emitted]); err != nil {
				return err
			}
		}
		if err := enc.Encode(sum); err != nil {
			return err
		}
	}
	return enc.Encode(agg)
}

// StreamNDJSON writes the snapshot like WriteNDJSON and then keeps
// streaming state transitions (plus a fresh aggregate summary) at the
// given poll interval until done closes — a daemon never "finishes",
// new jobs may arrive at any time, so the client owns the lifetime.
func (m *MultiProgress) StreamNDJSON(w io.Writer, interval time.Duration, done <-chan struct{}) error {
	if m == nil {
		return nil
	}
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	if err := m.WriteNDJSON(w); err != nil {
		return err
	}
	if f, ok := w.(flusher); ok {
		f.Flush()
	}
	last := map[string]string{} // job+cell -> state
	lines, _, _ := m.snapshot()
	for _, l := range lines {
		last[l.Job+"\x00"+l.Cell] = l.State
	}
	ver := m.version()
	enc := json.NewEncoder(w)
	for {
		select {
		case <-done:
			return nil
		case <-time.After(interval):
		}
		if m.version() == ver {
			continue
		}
		ver = m.version()
		lines, _, agg := m.snapshot()
		for _, l := range lines {
			k := l.Job + "\x00" + l.Cell
			if last[k] != l.State {
				last[k] = l.State
				if err := enc.Encode(l); err != nil {
					return err
				}
			}
		}
		if err := enc.Encode(agg); err != nil {
			return err
		}
		if f, ok := w.(flusher); ok {
			f.Flush()
		}
	}
}
