package obs

import (
	"bufio"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestProgressNDJSONSchema walks a three-cell sweep through its
// lifecycle and checks the /progress payload at each step: one valid
// JSON object per line, cells in canonical order, and a summary line
// whose counts and ETA follow the transitions.
func TestProgressNDJSONSchema(t *testing.T) {
	p := NewSweepProgress("test sweep")
	p.Start([]string{"a/empty/uniform/P=16", "b/empty/uniform/P=16", "c/empty/uniform/P=16"})

	cells, sum := decodeProgress(t, p)
	if len(cells) != 3 {
		t.Fatalf("cell lines = %d, want 3", len(cells))
	}
	for i, c := range cells {
		if c.State != StateQueued {
			t.Fatalf("cell %d state = %q, want queued", i, c.State)
		}
	}
	if sum.Total != 3 || sum.Done != 0 || sum.Queued != 3 || sum.EtaMs != -1 {
		t.Fatalf("initial summary = %+v", sum)
	}

	p.CellRunning(0)
	p.CellRunning(1)
	p.CellDone(0, "fp-a", nil)
	cells, sum = decodeProgress(t, p)
	if cells[0].State != StateDone || cells[0].Fingerprint != "fp-a" {
		t.Fatalf("cell 0 = %+v", cells[0])
	}
	if cells[1].State != StateRunning || cells[2].State != StateQueued {
		t.Fatalf("cells = %+v", cells)
	}
	if sum.Done != 1 || sum.Running != 1 || sum.Queued != 1 || sum.EtaMs < 0 {
		t.Fatalf("mid summary = %+v", sum)
	}

	p.CellDone(1, "", errors.New("boom"))
	p.CellRunning(2)
	p.CellDone(2, "fp-c", nil)
	cells, sum = decodeProgress(t, p)
	if cells[1].State != StateFailed || cells[1].Error != "boom" {
		t.Fatalf("failed cell = %+v", cells[1])
	}
	if sum.Done != 3 || sum.Failed != 1 || sum.EtaMs != 0 {
		t.Fatalf("final summary = %+v", sum)
	}
}

// decodeProgress renders p and decodes every NDJSON line, failing on
// malformed JSON, a missing summary, or cells after the summary.
func decodeProgress(t *testing.T, p *SweepProgress) ([]CellLine, SummaryLine) {
	t.Helper()
	var sb strings.Builder
	if err := p.WriteNDJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var cells []CellLine
	var sum SummaryLine
	sawSummary := false
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		if sawSummary {
			t.Fatalf("line after summary: %s", sc.Text())
		}
		// Distinguish line kinds by the summary marker field.
		var probe map[string]any
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if probe["summary"] == true {
			if err := json.Unmarshal(sc.Bytes(), &sum); err != nil {
				t.Fatal(err)
			}
			sawSummary = true
			continue
		}
		var c CellLine
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			t.Fatal(err)
		}
		if c.Cell == "" || c.State == "" {
			t.Fatalf("cell line missing fields: %s", sc.Text())
		}
		cells = append(cells, c)
	}
	if !sawSummary {
		t.Fatal("no summary line")
	}
	return cells, sum
}

// TestProgressNil drives the nil tracker (progress disabled).
func TestProgressNil(t *testing.T) {
	var p *SweepProgress
	p.Start([]string{"x"})
	p.CellRunning(0)
	p.CellDone(0, "fp", nil)
	if err := p.WriteNDJSON(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestProgressOutOfRange checks stray indices are ignored, not panics.
func TestProgressOutOfRange(t *testing.T) {
	p := NewSweepProgress("")
	p.Start([]string{"only"})
	p.CellRunning(5)
	p.CellDone(-1, "", nil)
	_, sum := decodeProgress(t, p)
	if sum.Done != 0 || sum.Running != 0 {
		t.Fatalf("summary after stray indices = %+v", sum)
	}
}
