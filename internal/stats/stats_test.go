package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("bad summary: %+v", s)
	}
	if s.SampleTotal != 15 {
		t.Errorf("total=%v", s.SampleTotal)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Errorf("stddev=%v want sqrt(2)", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestPercentileBounds(t *testing.T) {
	s := []float64{10, 20, 30, 40}
	if Percentile(s, 0) != 10 || Percentile(s, 100) != 40 {
		t.Error("percentile bounds wrong")
	}
	if Percentile(s, 50) != 25 {
		t.Errorf("P50=%v want 25", Percentile(s, 50))
	}
	if Percentile(nil, 50) != 0 {
		t.Error("nil sample should give 0")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		s := make([]float64, len(raw))
		copy(s, raw)
		sort.Float64s(s)
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(s, pa) <= Percentile(s, pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMeanWithinMinMaxProperty(t *testing.T) {
	f := func(raw []float64) bool {
		clean := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Mean+1e-6 && s.Mean <= s.Max+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "Demo", Columns: []string{"P", "Scheme", "Value"}}
	tb.AddRow("16", "RMA-MCS", "1.23")
	tb.AddRow("1024", "foMPI-Spin", "0.04")
	out := tb.String()
	if !strings.Contains(out, "## Demo") || !strings.Contains(out, "RMA-MCS") {
		t.Errorf("bad render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "P,Scheme,Value\n") {
		t.Errorf("bad CSV: %q", csv)
	}
	if !strings.Contains(csv, "1024,foMPI-Spin,0.04") {
		t.Errorf("bad CSV row: %q", csv)
	}
}

func TestFmtF(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		123.45: "123.5",
		12.345: "12.35",
		0.1234: "0.1234",
	}
	for in, want := range cases {
		if got := FmtF(in); got != want {
			t.Errorf("FmtF(%v)=%q want %q", in, got, want)
		}
	}
}

func TestPercentileGoldenValues(t *testing.T) {
	// Pin the linear-interpolation (R type-7) definition the doc promises:
	// rank = p/100*(N-1), fractional ranks blend neighbours. A change to
	// nearest-rank would shift every report percentile.
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"single-any-p", []float64{42}, 50, 42},
		{"single-p95", []float64{42}, 95, 42},
		{"two-p50-midpoint", []float64{1, 3}, 50, 2}, // nearest-rank would give 1 or 3
		{"two-p95", []float64{1, 3}, 95, 2.9},        // 1*(0.05) + 3*(0.95)
		{"two-p25", []float64{10, 20}, 25, 12.5},
		{"five-p50-exact", []float64{10, 20, 30, 40, 50}, 50, 30},
		{"five-p95", []float64{10, 20, 30, 40, 50}, 95, 48}, // rank 3.8 → 40*0.2+50*0.8
		{"five-p25-exact", []float64{10, 20, 30, 40, 50}, 25, 20},
		{"four-p99", []float64{1, 2, 3, 100}, 99, 97.09}, // rank 2.97 → 3*0.03+100*0.97
	}
	for _, c := range cases {
		got := Percentile(c.sorted, c.p)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: Percentile(%v, %v)=%v want %v", c.name, c.sorted, c.p, got, c.want)
		}
	}
}

func TestSummarizePercentilesUseInterpolation(t *testing.T) {
	// Summary percentiles flow through the same definition.
	s := Summarize([]float64{1, 3})
	if s.P50 != 2 {
		t.Errorf("P50=%v want 2 (interpolated midpoint)", s.P50)
	}
	if math.Abs(s.P95-2.9) > 1e-9 || math.Abs(s.P99-2.98) > 1e-9 {
		t.Errorf("P95=%v P99=%v want 2.9, 2.98", s.P95, s.P99)
	}
	one := Summarize([]float64{7})
	if one.P50 != 7 || one.P95 != 7 || one.P99 != 7 {
		t.Errorf("single-element percentiles must all be the element: %+v", one)
	}
}
