// Package stats provides the small statistical toolkit used by the
// benchmark harness: summaries (mean/percentiles) and aligned text tables
// for figure output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N           int
	Mean        float64
	Min         float64
	Max         float64
	P50         float64
	P95         float64
	P99         float64
	StdDev      float64
	SampleTotal float64
}

// Summarize computes a Summary; it returns a zero Summary for an empty
// sample. The input is left untouched (it is copied before sorting).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	return SummarizeInPlace(s)
}

// SummarizeInPlace is Summarize without the defensive copy: it sorts xs
// in place. Hot report paths that own their sample buffers (and recycle
// them) use it to avoid one allocation per summary.
func SummarizeInPlace(s []float64) Summary {
	if len(s) == 0 {
		return Summary{}
	}
	sort.Float64s(s)
	var sum, sq float64
	for _, x := range s {
		sum += x
		sq += x * x
	}
	n := float64(len(s))
	mean := sum / n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:           len(s),
		Mean:        mean,
		Min:         s[0],
		Max:         s[len(s)-1],
		P50:         Percentile(s, 50),
		P95:         Percentile(s, 95),
		P99:         Percentile(s, 99),
		StdDev:      math.Sqrt(variance),
		SampleTotal: sum,
	}
}

// Percentile returns the p-th percentile (0–100) of a sorted sample by
// linear interpolation between the two closest ranks (the numpy
// "linear" / R type-7 definition): rank = p/100·(N−1), and a fractional
// rank blends the two neighbouring order statistics. This is NOT the
// nearest-rank method — a 2-element sample has P50 halfway between the
// elements, not at either one. Report values depend on this definition;
// golden tests in stats_test.go pin it.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Table is a simple column-aligned result table, one per figure.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no title).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// FmtF formats a float with 3 significant decimals, trimming noise.
func FmtF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
