// Package scheme is the capability-based lock-scheme registry: the
// single source of truth for which lock schemes exist, what they can do
// (mutex vs reader-writer capabilities), and which tunables — the
// paper's three-dimensional lock parameter space T_DC, T_R, T_L,i
// (Figure 1, §3) — each of them accepts, together with the tunables'
// documented defaults and validity ranges.
//
// Each lock package (fompi, dmcs, rmamcs, rmarw) self-registers a
// Descriptor from an init function, so importing the implementations
// populates the registry; the workload harness, the sweep engine and
// the rmalocks facade then *enumerate* schemes and tunables as data
// instead of switching on scheme names. Construction goes through New,
// which validates tunables against the registered specs and returns
// typed errors (UnknownSchemeError, UnknownTunableError, RangeError,
// LevelError) instead of the silent-default/panic behaviour of the
// legacy per-scheme constructors.
package scheme

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rmalocks/internal/locks"
)

// Caps is the capability bitmask of a lock scheme.
type Caps uint8

const (
	// CapMutex marks a scheme offering mutual exclusion.
	CapMutex Caps = 1 << iota
	// CapRW marks a scheme with genuine reader-writer semantics
	// (concurrent readers). Schemes without CapRW present the RWMutex
	// interface through a writer-only adaptation: reads acquire
	// exclusively.
	CapRW
	// CapTimeout marks a scheme supporting bounded acquisition
	// (locks.TryMutex / locks.TryRWMutex): a timed-out acquire is
	// cleanly abandoned with nothing enqueued. Queue locks whose MCS
	// node cannot be unlinked without successor cooperation do not have
	// it; requesting a timeout against them is typed-rejected
	// (CapabilityError).
	CapTimeout
)

// Has reports whether every capability in q is present in c.
func (c Caps) Has(q Caps) bool { return c&q == q }

func (c Caps) String() string {
	var parts []string
	if c.Has(CapMutex) {
		parts = append(parts, "Mutex")
	}
	if c.Has(CapRW) {
		parts = append(parts, "RW")
	}
	if c.Has(CapTimeout) {
		parts = append(parts, "Timeout")
	}
	if len(parts) == 0 {
		return "Caps(0)"
	}
	return strings.Join(parts, "|")
}

// TunableSpec declares one tunable of a scheme: its key, documented
// default and validity range. A PerLevel spec declares a whole family
// of keys — Key immediately followed by the 1-based tree level, e.g.
// "TL2" for T_L,2 — because the number of levels depends on the
// machine the lock is built for.
type TunableSpec struct {
	// Key is the canonical tunable key ("TDC", "TR", "TL"). For
	// PerLevel specs the accepted keys are Key + level ("TL1", "TL2",
	// ...).
	Key string
	// Doc is a one-line description shown by discovery consumers.
	Doc string
	// Default is the value used when the tunable is not given; 0 marks
	// a machine-dependent default described in Doc (e.g. T_DC = one
	// counter per compute node).
	Default int64
	// Min and Max bound accepted values (inclusive).
	Min, Max int64
	// PerLevel marks a per-tree-level family of keys (see Key).
	PerLevel bool
}

// Tunables maps tunable keys to values. Per-level tunables use the
// level-suffixed form ("TL2"). A nil map is a valid empty set.
type Tunables map[string]int64

// Clone returns an independent copy of t (nil stays nil).
func (t Tunables) Clone() Tunables {
	if t == nil {
		return nil
	}
	c := make(Tunables, len(t))
	for k, v := range t {
		c[k] = v
	}
	return c
}

// Keys returns t's keys in sorted order.
func (t Tunables) Keys() []string {
	keys := make([]string, 0, len(t))
	for k := range t {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Canonical renders t as the canonical "K1=V1,K2=V2" encoding with
// sorted keys: the textual identity used in sweep cell keys, report
// fingerprints and baselines. An empty set renders as "".
func (t Tunables) Canonical() string {
	if len(t) == 0 {
		return ""
	}
	var b strings.Builder
	for i, k := range t.Keys() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", k, t[k])
	}
	return b.String()
}

// Value returns t[key], or def when the key is absent.
func (t Tunables) Value(key string, def int64) int64 {
	if v, ok := t[key]; ok {
		return v
	}
	return def
}

// LevelSlice assembles the 1-based per-level slice consumed by the lock
// constructors from a PerLevel family: index i holds t[base+i] when
// set, 0 (meaning "scheme default") otherwise. Index 0 is unused, as in
// the paper's T_L,i notation.
func (t Tunables) LevelSlice(base string, levels int) []int64 {
	out := make([]int64, levels+1)
	for i := 1; i <= levels; i++ {
		out[i] = t[base+strconv.Itoa(i)]
	}
	return out
}

// splitLevel parses a level-suffixed key: "TL2" → ("TL", 2, true).
// Only the canonical spelling is accepted — a leading-zero suffix like
// "TL02" is rejected, because LevelSlice and Canonical would otherwise
// treat it as a distinct, silently-ignored key.
func splitLevel(key string) (base string, level int, ok bool) {
	i := len(key)
	for i > 0 && key[i-1] >= '0' && key[i-1] <= '9' {
		i--
	}
	if i == 0 || i == len(key) {
		return "", 0, false
	}
	n, err := strconv.Atoi(key[i:])
	if err != nil || n < 1 || key[i:] != strconv.Itoa(n) {
		return "", 0, false
	}
	return key[:i], n, true
}

// Lock is the unified handle the registry returns: every scheme
// presents the reader-writer interface (schemes without CapRW through a
// writer-only adaptation, so reads acquire exclusively), and carries
// its identity, capabilities and the concrete implementation for
// consumers that need scheme-specific statistics.
type Lock interface {
	locks.RWMutex
	// Name returns the canonical scheme name.
	Name() string
	// Caps returns the scheme's capability mask.
	Caps() Caps
	// Underlying returns the concrete lock implementation (e.g.
	// *rmamcs.Lock), for statistics and diagnostics.
	Underlying() any
}

// wrapped is the one Lock implementation.
type wrapped struct {
	locks.RWMutex
	name string
	caps Caps
	impl any
}

func (w wrapped) Name() string    { return w.name }
func (w wrapped) Caps() Caps      { return w.caps }
func (w wrapped) Underlying() any { return w.impl }

// WrapMutex adapts a mutex-only implementation to the unified Lock
// interface: reads acquire exclusively (locks.WriterOnly), and Caps
// reports CapMutex, plus CapTimeout when the implementation supports
// bounded acquisition (locks.TryMutex).
func WrapMutex(name string, mu locks.Mutex) Lock {
	caps := CapMutex
	if _, ok := mu.(locks.TryMutex); ok {
		caps |= CapTimeout
	}
	return wrapped{RWMutex: locks.WriterOnly{Mu: mu}, name: name, caps: caps, impl: mu}
}

// WrapRW wraps a genuine reader-writer implementation; Caps reports
// CapMutex|CapRW (a writer acquisition is mutual exclusion), plus
// CapTimeout when the implementation supports bounded acquisition
// (locks.TryRWMutex).
func WrapRW(name string, rw locks.RWMutex) Lock {
	caps := CapMutex | CapRW
	if _, ok := rw.(locks.TryRWMutex); ok {
		caps |= CapTimeout
	}
	return wrapped{RWMutex: rw, name: name, caps: caps, impl: rw}
}

// AsMutex extracts the mutex view of a registry lock: the concrete
// Mutex for writer-only schemes, or false for genuine RW schemes.
func AsMutex(l Lock) (locks.Mutex, bool) {
	mu, ok := l.Underlying().(locks.Mutex)
	return mu, ok
}

// AsTimed extracts the bounded-acquire view of a registry lock:
// directly for TryRWMutex implementations, through the writer-only
// adaptation for TryMutex ones, or false for schemes without
// CapTimeout.
func AsTimed(l Lock) (locks.TryRWMutex, bool) {
	switch impl := l.Underlying().(type) {
	case locks.TryRWMutex:
		return impl, true
	case locks.TryMutex:
		return locks.TryWriterOnly{Mu: impl}, true
	}
	return nil, false
}

// ---------------------------------------------------------------------
// Typed validation errors.
// ---------------------------------------------------------------------

// UnknownSchemeError reports a scheme name absent from the registry.
type UnknownSchemeError struct {
	Name string
	Have []string
}

func (e *UnknownSchemeError) Error() string {
	return fmt.Sprintf("scheme: unknown scheme %q (have %v)", e.Name, e.Have)
}

// CapabilityError reports a request for a capability a scheme does not
// have, e.g. bounded-timeout acquires (CapTimeout) against an MCS-queue
// lock whose enqueued node cannot be abandoned.
type CapabilityError struct {
	Scheme string
	Need   Caps
}

func (e *CapabilityError) Error() string {
	return fmt.Sprintf("scheme: %s lacks capability %s", e.Scheme, e.Need)
}

// UnknownTunableError reports a tunable key the scheme does not accept.
type UnknownTunableError struct {
	Scheme string
	Key    string
	// Have lists the accepted keys, with per-level families shown as
	// "TL<level>".
	Have []string
}

func (e *UnknownTunableError) Error() string {
	return fmt.Sprintf("scheme: %s does not accept tunable %q (accepts %v)", e.Scheme, e.Key, e.Have)
}

// RangeError reports a tunable value outside its declared range.
type RangeError struct {
	Scheme, Key string
	Value       int64
	Min, Max    int64
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("scheme: %s tunable %s=%d out of range [%d, %d]", e.Scheme, e.Key, e.Value, e.Min, e.Max)
}

// LevelError reports a per-level tunable addressing a tree level the
// machine does not have.
type LevelError struct {
	Scheme, Key string
	Level       int
	// Levels is the machine's level count.
	Levels int
}

func (e *LevelError) Error() string {
	return fmt.Sprintf("scheme: %s tunable %s addresses level %d of a %d-level machine", e.Scheme, e.Key, e.Level, e.Levels)
}
