package scheme_test

// Registry conformance suite: the registered schemes' tunable defaults
// must match the paper's (T_L,i = 32, T_R = 1000, T_DC = one counter
// per compute node), validation must reject unknown and out-of-range
// tunables with typed errors, and lookup must be case-insensitive and
// alias-aware.

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"rmalocks/internal/locks/dmcs"
	"rmalocks/internal/locks/fompi"
	"rmalocks/internal/locks/rmamcs"
	"rmalocks/internal/locks/rmarw"
	"rmalocks/internal/rma"
	"rmalocks/internal/scheme"
	"rmalocks/internal/topology"
)

func TestRegistryEnumeration(t *testing.T) {
	want := []string{"foMPI-Spin", "D-MCS", "RMA-MCS", "foMPI-RW", "RMA-RW"}
	if got := scheme.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
	if got, want := scheme.Mutexes(), []string{"foMPI-Spin", "D-MCS", "RMA-MCS"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Mutexes() = %v, want %v", got, want)
	}
	if got, want := scheme.RWCapable(), []string{"foMPI-RW", "RMA-RW"}; !reflect.DeepEqual(got, want) {
		t.Errorf("RWCapable() = %v, want %v", got, want)
	}
}

func TestLookupAliasesAndCase(t *testing.T) {
	for _, name := range []string{"RMA-RW", "rma-rw", "RmA-rW", "rmarw", " rma-rw "} {
		d, err := scheme.Describe(name)
		if err != nil {
			t.Fatalf("Describe(%q): %v", name, err)
		}
		if d.Name != "RMA-RW" {
			t.Errorf("Describe(%q).Name = %q", name, d.Name)
		}
	}
	_, err := scheme.Describe("no-such-lock")
	var unk *scheme.UnknownSchemeError
	if !errors.As(err, &unk) {
		t.Fatalf("Describe(no-such-lock) error = %v, want UnknownSchemeError", err)
	}
	if unk.Name != "no-such-lock" || len(unk.Have) != 5 {
		t.Errorf("UnknownSchemeError = %+v", unk)
	}
}

// TestPaperDefaults pins the declared tunable defaults to the paper's:
// T_L,i = 32 for both topology-aware locks, T_R = 1000, and T_DC
// machine-dependent (one counter per compute node, declared as 0).
func TestPaperDefaults(t *testing.T) {
	spec := func(schemeName, key string) scheme.TunableSpec {
		t.Helper()
		d, err := scheme.Describe(schemeName)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range d.Tunables {
			if s.Key == key {
				return s
			}
		}
		t.Fatalf("%s has no tunable %s", schemeName, key)
		return scheme.TunableSpec{}
	}
	if s := spec("RMA-MCS", "TL"); s.Default != 32 || !s.PerLevel {
		t.Errorf("RMA-MCS TL spec = %+v, want per-level default 32", s)
	}
	if s := spec("RMA-RW", "TL"); s.Default != 32 || !s.PerLevel {
		t.Errorf("RMA-RW TL spec = %+v, want per-level default 32", s)
	}
	if s := spec("RMA-RW", "TR"); s.Default != 1000 {
		t.Errorf("RMA-RW TR default = %d, want 1000", s.Default)
	}
	if s := spec("RMA-RW", "TDC"); s.Default != 0 || !strings.Contains(s.Doc, "compute node") {
		t.Errorf("RMA-RW TDC spec = %+v, want dynamic default documented as one counter per compute node", s)
	}
	for _, name := range []string{"foMPI-Spin", "D-MCS", "foMPI-RW"} {
		d, err := scheme.Describe(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Tunables) != 0 {
			t.Errorf("%s declares tunables %v, want none", name, d.Tunables)
		}
	}
}

// TestEffectiveDefaults builds every scheme with an empty tunable set
// and checks the constructed locks carry the paper's defaults.
func TestEffectiveDefaults(t *testing.T) {
	m := rma.NewMachine(topology.TwoLevel(2, 8))
	l, err := scheme.New(m, "RMA-RW", nil)
	if err != nil {
		t.Fatal(err)
	}
	rw := l.Underlying().(*rmarw.Lock)
	if rw.TDC() != 8 {
		t.Errorf("default TDC = %d, want one counter per node (8)", rw.TDC())
	}
	if rw.TR() != 1000 {
		t.Errorf("default TR = %d, want 1000", rw.TR())
	}
	if rw.TW() != 32*32 {
		t.Errorf("default TW = %d, want 1024 (TL_i = 32)", rw.TW())
	}
	l2, err := scheme.New(m, "RMA-MCS", nil)
	if err != nil {
		t.Fatal(err)
	}
	mcs := l2.Underlying().(*rmamcs.Lock)
	if got := mcs.Tree().TL[2]; got != 32 {
		t.Errorf("RMA-MCS default TL2 = %d, want 32", got)
	}
}

func TestTunablesReachTheLock(t *testing.T) {
	m := rma.NewMachine(topology.TwoLevel(4, 4))
	l, err := scheme.New(m, "rma-rw", scheme.Tunables{"TDC": 2, "TR": 77, "TL1": 3, "TL2": 5})
	if err != nil {
		t.Fatal(err)
	}
	rw := l.Underlying().(*rmarw.Lock)
	if rw.TDC() != 2 || rw.TR() != 77 || rw.TW() != 15 {
		t.Errorf("got TDC=%d TR=%d TW=%d, want 2/77/15", rw.TDC(), rw.TR(), rw.TW())
	}
}

func TestValidationTypedErrors(t *testing.T) {
	m := rma.NewMachine(topology.TwoLevel(2, 4)) // 2 levels

	// Unknown tunable key.
	_, err := scheme.New(m, "RMA-RW", scheme.Tunables{"BOGUS": 1})
	var unkTun *scheme.UnknownTunableError
	if !errors.As(err, &unkTun) || unkTun.Key != "BOGUS" || unkTun.Scheme != "RMA-RW" {
		t.Errorf("BOGUS: err = %v, want UnknownTunableError", err)
	}

	// A tunable another scheme declares is still unknown here.
	_, err = scheme.New(m, "foMPI-Spin", scheme.Tunables{"TR": 100})
	if !errors.As(err, &unkTun) || unkTun.Scheme != "foMPI-Spin" {
		t.Errorf("foMPI-Spin TR: err = %v, want UnknownTunableError", err)
	}

	// A bare per-level base key is not a valid tunable.
	_, err = scheme.New(m, "RMA-RW", scheme.Tunables{"TL": 8})
	if !errors.As(err, &unkTun) {
		t.Errorf("bare TL: err = %v, want UnknownTunableError", err)
	}

	// Only the canonical level spelling is accepted: "TL02" would be
	// validated here but ignored by the constructor's "TL2" lookup.
	_, err = scheme.New(m, "RMA-RW", scheme.Tunables{"TL02": 8})
	if !errors.As(err, &unkTun) {
		t.Errorf("TL02: err = %v, want UnknownTunableError", err)
	}

	// Out-of-range values.
	var rng *scheme.RangeError
	_, err = scheme.New(m, "RMA-RW", scheme.Tunables{"TR": 0})
	if !errors.As(err, &rng) || rng.Key != "TR" || rng.Min != 1 {
		t.Errorf("TR=0: err = %v, want RangeError", err)
	}
	_, err = scheme.New(m, "RMA-RW", scheme.Tunables{"TL2": -4})
	if !errors.As(err, &rng) || rng.Key != "TL2" {
		t.Errorf("TL2=-4: err = %v, want RangeError", err)
	}
	_, err = scheme.New(m, "RMA-RW", scheme.Tunables{"TDC": -1})
	if !errors.As(err, &rng) {
		t.Errorf("TDC=-1: err = %v, want RangeError", err)
	}

	// A level the machine does not have.
	var lvl *scheme.LevelError
	_, err = scheme.New(m, "RMA-RW", scheme.Tunables{"TL3": 8})
	if !errors.As(err, &lvl) || lvl.Level != 3 || lvl.Levels != 2 {
		t.Errorf("TL3: err = %v, want LevelError{Level:3, Levels:2}", err)
	}

	// Check without a machine skips the level bound but not the range.
	if err := scheme.Check("RMA-RW", scheme.Tunables{"TL7": 8}, 0); err != nil {
		t.Errorf("Check levels=0 TL7: %v", err)
	}
	if err := scheme.Check("RMA-RW", scheme.Tunables{"TL7": 0}, 0); !errors.As(err, &rng) {
		t.Errorf("Check levels=0 TL7=0: err = %v, want RangeError", err)
	}
}

func TestCanonicalEncoding(t *testing.T) {
	if got := (scheme.Tunables)(nil).Canonical(); got != "" {
		t.Errorf("nil Canonical = %q", got)
	}
	tun := scheme.Tunables{"TR": 500, "TDC": 4, "TL2": 16}
	if got, want := tun.Canonical(), "TDC=4,TL2=16,TR=500"; got != want {
		t.Errorf("Canonical = %q, want %q", got, want)
	}
	// Clone is independent.
	c := tun.Clone()
	c["TR"] = 9
	if tun["TR"] != 500 {
		t.Error("Clone aliases its source")
	}
}

func TestCapsAndWrapping(t *testing.T) {
	m := rma.NewMachine(topology.TwoLevel(2, 4))
	for _, name := range scheme.Mutexes() {
		l, err := scheme.New(m, name, nil)
		if err != nil {
			t.Fatal(err)
		}
		if l.Caps().Has(scheme.CapRW) || !l.Caps().Has(scheme.CapMutex) {
			t.Errorf("%s caps = %v", name, l.Caps())
		}
		if _, ok := scheme.AsMutex(l); !ok {
			t.Errorf("%s: AsMutex failed", name)
		}
		if l.Name() != name {
			t.Errorf("Name() = %q, want %q", l.Name(), name)
		}
	}
	for _, name := range scheme.RWCapable() {
		l, err := scheme.New(m, name, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !l.Caps().Has(scheme.CapMutex | scheme.CapRW) {
			t.Errorf("%s caps = %v, want Mutex|RW", name, l.Caps())
		}
	}
	if got := (scheme.CapMutex | scheme.CapRW).String(); got != "Mutex|RW" {
		t.Errorf("Caps string = %q", got)
	}
	// The concrete implementations are reachable for statistics.
	l, _ := scheme.New(m, "D-MCS", nil)
	if _, ok := l.Underlying().(*dmcs.Lock); !ok {
		t.Errorf("D-MCS Underlying = %T", l.Underlying())
	}
	l, _ = scheme.New(m, "foMPI-Spin", nil)
	if _, ok := l.Underlying().(*fompi.SpinLock); !ok {
		t.Errorf("foMPI-Spin Underlying = %T", l.Underlying())
	}
}

func TestRegisterRejectsMalformedAndDuplicate(t *testing.T) {
	newFn := func(m *rma.Machine, tun scheme.Tunables) (scheme.Lock, error) { return nil, nil }
	cases := []struct {
		name string
		d    scheme.Descriptor
	}{
		{"empty name", scheme.Descriptor{New: newFn, Caps: scheme.CapMutex}},
		{"nil New", scheme.Descriptor{Name: "x1", Caps: scheme.CapMutex}},
		{"no mutex cap", scheme.Descriptor{Name: "x2", New: newFn, Caps: scheme.CapRW}},
		{"duplicate", scheme.Descriptor{Name: "RMA-RW", New: newFn, Caps: scheme.CapMutex}},
		{"duplicate alias", scheme.Descriptor{Name: "x3", Aliases: []string{"dmcs"}, New: newFn, Caps: scheme.CapMutex}},
		{"empty tunable key", scheme.Descriptor{Name: "x4", New: newFn, Caps: scheme.CapMutex,
			Tunables: []scheme.TunableSpec{{}}}},
		{"per-level digit key", scheme.Descriptor{Name: "x5", New: newFn, Caps: scheme.CapMutex,
			Tunables: []scheme.TunableSpec{{Key: "TL2", PerLevel: true, Min: 1, Max: 2}}}},
		{"min above max", scheme.Descriptor{Name: "x6", New: newFn, Caps: scheme.CapMutex,
			Tunables: []scheme.TunableSpec{{Key: "K", Min: 5, Max: 1}}}},
		{"default out of range", scheme.Descriptor{Name: "x7", New: newFn, Caps: scheme.CapMutex,
			Tunables: []scheme.TunableSpec{{Key: "K", Default: 9, Min: 1, Max: 5}}}},
		{"duplicate tunable key", scheme.Descriptor{Name: "x8", New: newFn, Caps: scheme.CapMutex,
			Tunables: []scheme.TunableSpec{{Key: "K", Min: 1, Max: 5}, {Key: "K", Min: 1, Max: 5}}}},
	}
	for _, tc := range cases {
		if err := scheme.Register(tc.d); err == nil {
			t.Errorf("Register(%s) accepted a malformed descriptor", tc.name)
		}
	}
	// The registry is unchanged after every rejection.
	if got := scheme.Names(); len(got) != 5 {
		t.Errorf("registry polluted by rejected registrations: %v", got)
	}
}
