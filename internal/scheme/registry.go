package scheme

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rmalocks/internal/rma"
)

// Descriptor declares one lock scheme: its identity, capabilities, the
// tunables it accepts, and a validating constructor. Lock packages
// register their descriptor from init, so importing an implementation
// makes it enumerable.
type Descriptor struct {
	// Name is the canonical (presentation) scheme name, e.g. "RMA-RW".
	// Lookups are case-insensitive, so "rma-rw" resolves too.
	Name string
	// Aliases are additional lookup names (also case-insensitive).
	Aliases []string
	// Doc is a one-line description of the scheme.
	Doc string
	// Caps is the capability mask (CapMutex, CapRW).
	Caps Caps
	// Order fixes the presentation order of Names (mutex baselines
	// first, then the RW locks, matching the paper's evaluation).
	Order int
	// Tunables declares the accepted tunables with defaults and ranges.
	Tunables []TunableSpec
	// New builds one lock on m from validated tunables. The registry
	// calls Check first, so New sees only known, in-range values; it may
	// still return errors for machine-dependent constraints (e.g. T_W
	// overflow).
	New func(m *rma.Machine, t Tunables) (Lock, error)
}

var (
	regMu   sync.RWMutex
	byName  = map[string]*Descriptor{} // normalized name/alias → descriptor
	ordered []*Descriptor
)

func normalize(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// Register adds a descriptor to the registry. It fails on duplicate
// names/aliases and malformed descriptors; lock packages use
// MustRegister from init.
func Register(d Descriptor) error {
	if d.Name == "" {
		return fmt.Errorf("scheme: descriptor with empty Name")
	}
	if d.New == nil {
		return fmt.Errorf("scheme: %s: descriptor without New", d.Name)
	}
	if !d.Caps.Has(CapMutex) {
		return fmt.Errorf("scheme: %s: every lock scheme must offer mutual exclusion (CapMutex)", d.Name)
	}
	seen := map[string]bool{}
	for _, spec := range d.Tunables {
		if spec.Key == "" {
			return fmt.Errorf("scheme: %s: tunable with empty Key", d.Name)
		}
		if c := spec.Key[len(spec.Key)-1]; spec.PerLevel && c >= '0' && c <= '9' {
			return fmt.Errorf("scheme: %s: per-level tunable key %q must not end in a digit", d.Name, spec.Key)
		}
		if seen[spec.Key] {
			return fmt.Errorf("scheme: %s: duplicate tunable key %q", d.Name, spec.Key)
		}
		seen[spec.Key] = true
		if spec.Min > spec.Max {
			return fmt.Errorf("scheme: %s: tunable %s has Min %d > Max %d", d.Name, spec.Key, spec.Min, spec.Max)
		}
		if spec.Default != 0 && (spec.Default < spec.Min || spec.Default > spec.Max) {
			return fmt.Errorf("scheme: %s: tunable %s default %d outside [%d, %d]", d.Name, spec.Key, spec.Default, spec.Min, spec.Max)
		}
	}
	names := append([]string{d.Name}, d.Aliases...)
	regMu.Lock()
	defer regMu.Unlock()
	for _, n := range names {
		if _, dup := byName[normalize(n)]; dup {
			return fmt.Errorf("scheme: duplicate registration of %q", n)
		}
	}
	dc := d // copy; the registry owns its descriptor
	dc.Aliases = append([]string(nil), d.Aliases...)
	dc.Tunables = append([]TunableSpec(nil), d.Tunables...)
	for _, n := range names {
		byName[normalize(n)] = &dc
	}
	ordered = append(ordered, &dc)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Order != ordered[j].Order {
			return ordered[i].Order < ordered[j].Order
		}
		return ordered[i].Name < ordered[j].Name
	})
	return nil
}

// MustRegister is Register but panics on error (init-time use).
func MustRegister(d Descriptor) {
	if err := Register(d); err != nil {
		panic(err)
	}
}

// Names lists every registered scheme's canonical name in presentation
// order.
func Names() []string {
	return names(func(*Descriptor) bool { return true })
}

// Mutexes lists the writer-only schemes (no CapRW) in presentation
// order: the paper's mutex comparison targets.
func Mutexes() []string {
	return names(func(d *Descriptor) bool { return !d.Caps.Has(CapRW) })
}

// RWCapable lists the schemes with genuine reader-writer semantics in
// presentation order.
func RWCapable() []string {
	return names(func(d *Descriptor) bool { return d.Caps.Has(CapRW) })
}

func names(keep func(*Descriptor) bool) []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var out []string
	for _, d := range ordered {
		if keep(d) {
			out = append(out, d.Name)
		}
	}
	return out
}

// Describe returns a copy of the named scheme's descriptor (lookup is
// case-insensitive and alias-aware).
func Describe(name string) (Descriptor, error) {
	d, err := lookup(name)
	if err != nil {
		return Descriptor{}, err
	}
	dc := *d
	dc.Aliases = append([]string(nil), d.Aliases...)
	dc.Tunables = append([]TunableSpec(nil), d.Tunables...)
	return dc, nil
}

func lookup(name string) (*Descriptor, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if d, ok := byName[normalize(name)]; ok {
		return d, nil
	}
	var have []string
	for _, d := range ordered {
		have = append(have, d.Name)
	}
	return nil, &UnknownSchemeError{Name: name, Have: have}
}

// spec resolves a tunable key against the descriptor: an exact
// non-per-level match, or a per-level family member ("TL2" → TL spec).
// levels bounds the accepted level range; pass 0 to skip the bound
// check (machine not known yet, e.g. CLI-time validation).
func (d *Descriptor) spec(key string, levels int) (*TunableSpec, error) {
	for i := range d.Tunables {
		s := &d.Tunables[i]
		if !s.PerLevel && s.Key == key {
			return s, nil
		}
	}
	if base, level, ok := splitLevel(key); ok {
		for i := range d.Tunables {
			s := &d.Tunables[i]
			if s.PerLevel && s.Key == base {
				if levels > 0 && level > levels {
					return nil, &LevelError{Scheme: d.Name, Key: key, Level: level, Levels: levels}
				}
				return s, nil
			}
		}
	}
	return nil, &UnknownTunableError{Scheme: d.Name, Key: key, Have: d.acceptedKeys()}
}

func (d *Descriptor) acceptedKeys() []string {
	var keys []string
	for _, s := range d.Tunables {
		if s.PerLevel {
			keys = append(keys, s.Key+"<level>")
		} else {
			keys = append(keys, s.Key)
		}
	}
	return keys
}

// Accepts reports whether the scheme accepts the tunable key (level
// bound checked only when levels > 0).
func (d *Descriptor) Accepts(key string, levels int) bool {
	_, err := d.spec(key, levels)
	return err == nil
}

// Check validates a tunable set against the descriptor: every key must
// resolve to a declared spec (with its level inside [1, levels] when
// levels > 0) and every value must lie inside the spec's range. Errors
// are typed (UnknownTunableError, RangeError, LevelError) and
// deterministic: keys are checked in sorted order.
func (d *Descriptor) Check(t Tunables, levels int) error {
	for _, key := range t.Keys() {
		s, err := d.spec(key, levels)
		if err != nil {
			return err
		}
		if v := t[key]; v < s.Min || v > s.Max {
			return &RangeError{Scheme: d.Name, Key: key, Value: v, Min: s.Min, Max: s.Max}
		}
	}
	return nil
}

// Check validates a tunable set against the named scheme without
// building a lock (levels as in Descriptor.Check).
func Check(name string, t Tunables, levels int) error {
	d, err := lookup(name)
	if err != nil {
		return err
	}
	return d.Check(t, levels)
}

// New validates t against the named scheme's descriptor and builds one
// lock on m. This is the registry's single construction entry point:
// the workload harness, the sweep engine and the rmalocks facade all
// dispatch through it.
func New(m *rma.Machine, name string, t Tunables) (Lock, error) {
	d, err := lookup(name)
	if err != nil {
		return nil, err
	}
	if err := d.Check(t, m.Topology().Levels()); err != nil {
		return nil, err
	}
	return d.New(m, t)
}
