package scheme_test

// Benchmark guard for the API redesign: registry-based lock
// construction (lookup + validation + wrap dispatch) must add no
// measurable overhead where it matters — in a harness run, whose cost
// is the simulation itself.
//
// The construction-only pair (BenchmarkRegistryDispatch vs
// BenchmarkDirectConstructor) isolates the registry layer: lookup,
// tunable validation and the capability wrap cost well under a µs per
// lock. The harness pair (BenchmarkHarnessRegistryDispatch vs
// BenchmarkHarnessDirectConstructor) runs a real workload cell both
// ways; compare with benchstat — construction happens once per run, so
// the registry's sub-µs cost disappears in the run's milliseconds.

import (
	"testing"

	"rmalocks/internal/locks"
	"rmalocks/internal/locks/rmarw"
	"rmalocks/internal/rma"
	"rmalocks/internal/scheme"
	"rmalocks/internal/topology"
	"rmalocks/internal/workload"
)

var benchTun = scheme.Tunables{"TR": 500, "TL2": 16}

func BenchmarkRegistryDispatch(b *testing.B) {
	topo := topology.TwoLevel(4, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := rma.NewMachine(topo)
		l, err := scheme.New(m, "RMA-RW", benchTun)
		if err != nil {
			b.Fatal(err)
		}
		sinkLock = l
	}
}

func BenchmarkDirectConstructor(b *testing.B) {
	topo := topology.TwoLevel(4, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := rma.NewMachine(topo)
		sinkLock = rmarw.NewConfig(m, rmarw.Config{TR: 500, TL: []int64{0, 0, 16}})
	}
}

// sinkLock defeats dead-code elimination of the constructed locks.
var sinkLock any

func harnessSpec() workload.Spec {
	return workload.Spec{
		Scheme: "RMA-RW", P: 32, ProcsPerNode: 16, Iters: 20,
		Profile:  workload.Uniform{FW: 0.1},
		Tunables: benchTun,
	}
}

func BenchmarkHarnessRegistryDispatch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := workload.Run(harnessSpec())
		if err != nil {
			b.Fatal(err)
		}
		sinkLock = rep.Ops
	}
}

func BenchmarkHarnessDirectConstructor(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec := harnessSpec()
		spec.Tunables = nil
		spec.Make = func(m *rma.Machine, n int) ([]locks.RWMutex, error) {
			set := make([]locks.RWMutex, n)
			for i := range set {
				set[i] = rmarw.NewConfig(m, rmarw.Config{
					TDC: m.Topology().ProcsPerLeaf(), TR: 500, TL: []int64{0, 0, 16}})
			}
			return set, nil
		}
		rep, err := workload.Run(spec)
		if err != nil {
			b.Fatal(err)
		}
		sinkLock = rep.Ops
	}
}
