package cache

import (
	"encoding/json"

	"rmalocks/internal/sweep"
)

// ResultStore adapts the byte store to sweep.CellCache: cell results
// cross the boundary as their canonical JSON, the same encoding the
// baseline files use, so a cached cell is byte-identical to a computed
// one after the RunFile round-trip.
type ResultStore struct {
	store *Store
}

// NewResultStore wraps a byte store.
func NewResultStore(s *Store) *ResultStore { return &ResultStore{store: s} }

// Store returns the underlying byte store (metrics, Flush).
func (r *ResultStore) Store() *Store { return r.store }

// Get implements sweep.CellCache. An entry that fails to decode is a
// miss — the cell recomputes and Put overwrites it.
func (r *ResultStore) Get(input string) (sweep.CellResult, bool) {
	data, ok := r.store.Get(input)
	if !ok {
		return sweep.CellResult{}, false
	}
	var res sweep.CellResult
	if err := json.Unmarshal(data, &res); err != nil {
		return sweep.CellResult{}, false
	}
	return res, true
}

// Put implements sweep.CellCache.
func (r *ResultStore) Put(input string, res sweep.CellResult) {
	data, err := json.Marshal(res)
	if err != nil {
		return
	}
	r.store.Put(input, data)
}
