// Package cache is sweepd's content-addressed result store. Entries are
// keyed by a cell's canonical *input* encoding (sweep.Cell.Input, the
// "cell/v1 ..." string covering every result-affecting parameter), so a
// hit is decidable before the cell ever runs — unlike the output
// fingerprint, which exists only after. The store is an in-memory LRU
// with a byte budget, backed by one file per entry under a cache
// directory: writes go through write-then-rename so a crash never
// leaves a torn entry visible, and loads tolerate corruption by
// skipping (and reporting) bad files rather than refusing to start.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// envelopeVersion versions the on-disk entry layout; bumping it orphans
// (and Open skips) every older entry.
const envelopeVersion = 1

// envelope is the on-disk form of one cache entry. The input string is
// stored verbatim so a load can verify the file really holds the entry
// its name promises (names are sha256(input) — a renamed or truncated
// file fails the check and is reported as corrupt, not served).
type envelope struct {
	V     int             `json:"v"`
	Input string          `json:"input"`
	Sum   string          `json:"sha256"`
	Data  json.RawMessage `json:"data"`
}

// entry is one resident cache entry.
type entry struct {
	key  string // sha256(input), also the file name stem
	data []byte // serialized payload (what Get returns)
	elem *list.Element
}

// LoadReport summarizes what Open found on disk.
type LoadReport struct {
	// Entries counts well-formed entries indexed (not necessarily
	// resident: only the freshest fit the byte budget).
	Entries int
	// Loaded counts entries brought into memory within the budget.
	Loaded int
	// Corrupt lists files that failed validation and were skipped.
	Corrupt []string
}

// Store is a content-addressed byte store: Get/Put by canonical input
// string, sha256 of the input as the address. Safe for concurrent use.
type Store struct {
	dir    string
	budget int64

	mu      sync.Mutex
	entries map[string]*entry // key -> entry
	lru     *list.List        // front = most recent; values are *entry
	bytes   int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	putErr    atomic.Int64
}

// Open opens (creating if needed) a store rooted at dir with the given
// in-memory byte budget (<= 0 means 64 MiB). Existing entries are
// validated and loaded freshest-first until the budget fills; malformed
// files are skipped and listed in the report — a corrupt cache degrades
// to recomputation, never to a failed daemon.
func Open(dir string, budget int64) (*Store, LoadReport, error) {
	if budget <= 0 {
		budget = 64 << 20
	}
	s := &Store{
		dir:     dir,
		budget:  budget,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, LoadReport{}, fmt.Errorf("cache: open %s: %w", dir, err)
	}
	rep, err := s.load()
	if err != nil {
		return nil, rep, err
	}
	return s, rep, nil
}

// load scans dir for entry files, validates each, and admits the
// freshest into memory within the budget. The optional index.json
// (written by Flush) supplies the recency order; entries absent from
// the index rank last in name order, so a cache without an index still
// loads deterministically.
func (s *Store) load() (LoadReport, error) {
	var rep LoadReport
	names, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return rep, fmt.Errorf("cache: scan %s: %w", s.dir, err)
	}
	rank := s.loadIndex()
	sort.Slice(names, func(i, j int) bool {
		ri, iok := rank[stem(names[i])]
		rj, jok := rank[stem(names[j])]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		if filepath.Base(name) == indexName {
			continue
		}
		env, err := readEnvelope(name)
		if err != nil {
			rep.Corrupt = append(rep.Corrupt, filepath.Base(name))
			continue
		}
		rep.Entries++
		if s.bytes+int64(len(env.Data)) > s.budget {
			continue // over budget: stays on disk, not resident
		}
		e := &entry{key: env.Sum, data: env.Data}
		e.elem = s.lru.PushBack(e) // names are sorted freshest-first
		s.entries[e.key] = e
		s.bytes += int64(len(e.data))
		rep.Loaded++
	}
	return rep, nil
}

// readEnvelope reads and validates one entry file.
func readEnvelope(name string) (envelope, error) {
	raw, err := os.ReadFile(name)
	if err != nil {
		return envelope{}, err
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return envelope{}, err
	}
	if env.V != envelopeVersion {
		return envelope{}, fmt.Errorf("cache: envelope version %d", env.V)
	}
	sum := keyOf(env.Input)
	if env.Sum != sum || sum != stem(name) {
		return envelope{}, errors.New("cache: address mismatch")
	}
	if len(env.Data) == 0 {
		return envelope{}, errors.New("cache: empty payload")
	}
	return env, nil
}

func stem(name string) string {
	return strings.TrimSuffix(filepath.Base(name), ".json")
}

// keyOf is the content address: hex sha256 of the canonical input.
func keyOf(input string) string {
	sum := sha256.Sum256([]byte(input))
	return hex.EncodeToString(sum[:])
}

// Get returns the payload cached for input, pulling from disk when the
// entry was evicted from memory but survives on disk. The returned
// slice is shared; callers must not mutate it.
func (s *Store) Get(input string) ([]byte, bool) {
	key := keyOf(input)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.lru.MoveToFront(e.elem)
		s.mu.Unlock()
		s.hits.Add(1)
		return e.data, true
	}
	s.mu.Unlock()
	// Miss in memory: an evicted (or never-admitted) entry may still be
	// on disk. A corrupt file here is a plain miss — the caller
	// recomputes and Put overwrites the bad entry.
	env, err := readEnvelope(filepath.Join(s.dir, key+".json"))
	if err != nil || env.Input != input {
		s.misses.Add(1)
		return nil, false
	}
	s.admit(key, env.Data)
	s.hits.Add(1)
	return env.Data, true
}

// Put stores the payload (which must be valid JSON — cell results
// cross this boundary as their canonical encoding) for input,
// admitting it to the in-memory LRU and persisting to disk atomically.
// Disk errors are counted but not fatal: the in-memory entry still
// serves this process.
func (s *Store) Put(input string, data []byte) {
	if input == "" || len(data) == 0 {
		return
	}
	key := keyOf(input)
	s.admit(key, data)
	env := envelope{V: envelopeVersion, Input: input, Sum: key, Data: data}
	raw, err := json.Marshal(env)
	if err != nil {
		s.putErr.Add(1) // non-JSON payload: resident but not persisted
		return
	}
	if err := writeAtomic(filepath.Join(s.dir, key+".json"), raw); err != nil {
		s.putErr.Add(1)
	}
}

// admit inserts (or refreshes) an in-memory entry, evicting from the
// LRU tail to stay within budget.
func (s *Store) admit(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		s.bytes += int64(len(data)) - int64(len(e.data))
		e.data = data
		s.lru.MoveToFront(e.elem)
	} else {
		e = &entry{key: key, data: data}
		e.elem = s.lru.PushFront(e)
		s.entries[key] = e
		s.bytes += int64(len(data))
	}
	for s.bytes > s.budget && s.lru.Len() > 1 {
		tail := s.lru.Back()
		ev := tail.Value.(*entry)
		s.lru.Remove(tail)
		delete(s.entries, ev.key)
		s.bytes -= int64(len(ev.data))
		s.evictions.Add(1)
	}
}

// writeAtomic writes data via a temp file + rename so readers (and
// crash recovery) never observe a torn entry.
func writeAtomic(name string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(name), ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), name); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

const indexName = "index.json"

// loadIndex reads the recency index written by Flush; absent or
// unreadable indexes yield an empty ranking (harmless: load falls back
// to name order).
func (s *Store) loadIndex() map[string]int {
	raw, err := os.ReadFile(filepath.Join(s.dir, indexName))
	if err != nil {
		return nil
	}
	var keys []string
	if json.Unmarshal(raw, &keys) != nil {
		return nil
	}
	rank := make(map[string]int, len(keys))
	for i, k := range keys {
		rank[k] = i
	}
	return rank
}

// Flush persists the LRU recency order as index.json so the next Open
// admits the most recently useful entries first. Entry payloads are
// already on disk (Put is write-through); Flush only saves the order.
func (s *Store) Flush() error {
	s.mu.Lock()
	keys := make([]string, 0, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*entry).key)
	}
	s.mu.Unlock()
	raw, err := json.Marshal(keys)
	if err != nil {
		return err
	}
	return writeAtomic(filepath.Join(s.dir, indexName), raw)
}

// Stats is a point-in-time view of the store's counters.
type Stats struct {
	Hits, Misses, Evictions int64
	Bytes                   int64
	Resident                int
}

// Stats returns the current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	bytes, resident := s.bytes, s.lru.Len()
	s.mu.Unlock()
	return Stats{
		Hits: s.hits.Load(), Misses: s.misses.Load(),
		Evictions: s.evictions.Load(), Bytes: bytes, Resident: resident,
	}
}

// registry is the obs surface the store exposes metrics on; satisfied
// by *obs.Registry without importing it (the trace-sink pattern:
// low-level packages stay obs-free).
type registry interface {
	CounterFunc(name, help string, fn func() int64)
	GaugeFunc(name, help string, fn func() float64)
}

// Register exposes the store's counters on an obs registry:
// sweepd_cache_{hits,misses,evictions}_total and sweepd_cache_bytes.
func (s *Store) Register(r registry) {
	if r == nil {
		return
	}
	r.CounterFunc("sweepd_cache_hits_total",
		"Result-cache lookups served without recomputation.",
		func() int64 { return s.hits.Load() })
	r.CounterFunc("sweepd_cache_misses_total",
		"Result-cache lookups that required computing the cell.",
		func() int64 { return s.misses.Load() })
	r.CounterFunc("sweepd_cache_evictions_total",
		"Entries evicted from the in-memory LRU by the byte budget.",
		func() int64 { return s.evictions.Load() })
	r.GaugeFunc("sweepd_cache_bytes",
		"Bytes resident in the in-memory result cache.",
		func() float64 { return float64(s.Stats().Bytes) })
}
