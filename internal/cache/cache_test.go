package cache_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rmalocks/internal/cache"
	"rmalocks/internal/sweep"
	"rmalocks/internal/workload"
)

func testGrid() sweep.Grid {
	return sweep.Grid{
		Schemes:   []string{workload.SchemeDMCS, workload.SchemeRMARW},
		Workloads: []string{"empty"},
		Profiles:  []string{"uniform", "zipf"},
		Ps:        []int{8, 16},
		Iters:     12,
		FW:        0.2,
		Locks:     4,
	}
}

func mustCells(tb testing.TB, g sweep.Grid) []sweep.Cell {
	tb.Helper()
	cells, err := g.Cells()
	if err != nil {
		tb.Fatal(err)
	}
	return cells
}

func runBytes(tb testing.TB, c sweep.CellCache) []byte {
	tb.Helper()
	results, err := sweep.Run(mustCells(tb, testGrid()), sweep.Options{Workers: 4, Cache: c})
	if err != nil {
		tb.Fatal(err)
	}
	rf := sweep.RunFile{Label: "cache-test", Cells: results}
	path := filepath.Join(tb.TempDir(), "out.json")
	if err := sweep.Save(path, rf); err != nil {
		tb.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// TestHitVsMissByteIdentity is the core guarantee: a sweep served
// entirely from cache persists byte-identically to the cold run that
// populated it.
func TestHitVsMissByteIdentity(t *testing.T) {
	store, _, err := cache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rs := cache.NewResultStore(store)

	cold := runBytes(t, rs)
	st := store.Stats()
	if st.Hits != 0 {
		t.Fatalf("cold run recorded %d hits", st.Hits)
	}
	if st.Misses == 0 {
		t.Fatal("cold run recorded no misses")
	}

	warm := runBytes(t, rs)
	st2 := store.Stats()
	if want := int64(len(mustCells(t, testGrid()))); st2.Hits != want {
		t.Fatalf("warm run hits = %d, want %d (every cell)", st2.Hits, want)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm (all-cached) run output differs from cold run")
	}
}

// TestCrossProcessRoundTrip reopens the cache directory with a fresh
// store — a new daemon process — and checks entries survive with
// fingerprints intact.
func TestCrossProcessRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, _, err := cache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := runBytes(t, cache.NewResultStore(store))
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}

	store2, rep, err := cache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 0 {
		t.Fatalf("clean reopen reported corrupt entries: %v", rep.Corrupt)
	}
	if want := len(mustCells(t, testGrid())); rep.Entries != want || rep.Loaded != want {
		t.Fatalf("reopen found %d/%d entries, want %d", rep.Loaded, rep.Entries, want)
	}
	warm := runBytes(t, cache.NewResultStore(store2))
	if !bytes.Equal(cold, warm) {
		t.Fatal("cross-process warm run output differs from cold run")
	}
	if st := store2.Stats(); st.Misses != 0 {
		t.Fatalf("cross-process warm run recorded %d misses", st.Misses)
	}
}

// TestEvictionUnderSmallBudget forces LRU eviction and checks evicted
// entries still hit via the disk fallback.
func TestEvictionUnderSmallBudget(t *testing.T) {
	store, _, err := cache.Open(t.TempDir(), 256)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`"` + strings.Repeat("x", 98) + `"`) // 100-byte JSON string
	for i := 0; i < 8; i++ {
		store.Put(fmt.Sprintf("cell/v1 test input %d", i), payload)
	}
	st := store.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions under a 256-byte budget with 8×100-byte entries")
	}
	if st.Bytes > 256 {
		t.Fatalf("resident bytes %d exceed budget 256", st.Bytes)
	}
	// Every entry — evicted or resident — must still be retrievable.
	for i := 0; i < 8; i++ {
		data, ok := store.Get(fmt.Sprintf("cell/v1 test input %d", i))
		if !ok {
			t.Fatalf("entry %d lost after eviction (disk fallback failed)", i)
		}
		if !bytes.Equal(data, payload) {
			t.Fatalf("entry %d payload corrupted", i)
		}
	}
}

// TestCorruptEntryDegradesToRecompute truncates one entry on disk: Open
// must report (not fail on) it, and a sweep must recompute that cell
// and heal the cache.
func TestCorruptEntryDegradesToRecompute(t *testing.T) {
	dir := t.TempDir()
	store, _, err := cache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := runBytes(t, cache.NewResultStore(store))
	if err := store.Flush(); err != nil {
		t.Fatal(err)
	}

	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	mangled := 0
	for _, name := range names {
		if filepath.Base(name) == "index.json" {
			continue
		}
		if mangled == 0 {
			if err := os.WriteFile(name, []byte(`{"v":1,"truncated`), 0o644); err != nil {
				t.Fatal(err)
			}
		} else if mangled == 1 {
			if err := os.WriteFile(name, []byte{}, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		mangled++
		if mangled == 2 {
			break
		}
	}
	if mangled != 2 {
		t.Fatalf("expected at least 2 cache entries to mangle, got %d", mangled)
	}

	store2, rep, err := cache.Open(dir, 0)
	if err != nil {
		t.Fatalf("Open must tolerate corrupt entries, got %v", err)
	}
	if len(rep.Corrupt) != 2 {
		t.Fatalf("corrupt report = %v, want 2 entries", rep.Corrupt)
	}
	warm := runBytes(t, cache.NewResultStore(store2))
	if !bytes.Equal(cold, warm) {
		t.Fatal("recomputed-after-corruption output differs from cold run")
	}
	st := store2.Stats()
	if st.Misses != 2 {
		t.Fatalf("misses = %d, want 2 (one per corrupted cell)", st.Misses)
	}

	// The recompute healed the entries: a third process sees a clean cache.
	_, rep3, err := cache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep3.Corrupt) != 0 {
		t.Fatalf("cache not healed after recompute: %v", rep3.Corrupt)
	}
}

// TestAddressMismatchRejected: a valid envelope under the wrong file
// name (e.g. copied by hand) must not be served.
func TestAddressMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	store, _, err := cache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	store.Put("cell/v1 a", []byte(`{"x":1}`))
	names, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(names) != 1 {
		t.Fatalf("want 1 entry file, got %d", len(names))
	}
	bogus := filepath.Join(dir, strings.Repeat("ab", 32)+".json")
	data, _ := os.ReadFile(names[0])
	if err := os.WriteFile(bogus, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep, err := cache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 1 {
		t.Fatalf("renamed entry not flagged corrupt: %v", rep.Corrupt)
	}
}
