package workload_test

// Cross-scheme lock conformance matrix: every Mutex and RWMutex
// implementation in the repository runs through the locktest invariants
// (mutual exclusion, reader/writer exclusion, progress via the virtual
// time limit, completion) under each contention generator of the
// workload subsystem. The whole matrix also runs under `go test -race`.

import (
	"testing"

	"rmalocks/internal/locks"
	"rmalocks/internal/locks/dmcs"
	"rmalocks/internal/locks/fompi"
	"rmalocks/internal/locks/locktest"
	"rmalocks/internal/locks/rmamcs"
	"rmalocks/internal/locks/rmarw"
	"rmalocks/internal/rma"
	"rmalocks/internal/topology"
	"rmalocks/internal/workload"
)

// conformanceProfiles lists one instance of every contention generator,
// tuned small so the full matrix stays fast under -race. NumLocks is 1:
// the invariant checks guard a single critical section.
func conformanceProfiles() []workload.Profile {
	return []workload.Profile{
		workload.Uniform{FW: 0.25},
		workload.NewZipf(1, 1.2, 0.25),
		workload.Bursty{FW: 0.25, BurstLen: 3, IdleLen: 3, IdleThinkNs: 2000, Desync: true},
		workload.RWSweep{FWStart: 0, FWEnd: 1, Span: 12},
	}
}

// pattern adapts a contention generator to the locktest Pattern hook,
// capping think time so stress runs stay short.
func pattern(pr workload.Profile) locktest.Pattern {
	return func(p *rma.Proc, it int) (bool, int64) {
		in := pr.Next(p, it)
		think := in.Think
		if think > 2000 {
			think = 2000
		}
		return in.Write, think
	}
}

// TestConformanceMatrix runs every lock scheme (mutexes through
// locks.WriterOnly) against every contention generator.
func TestConformanceMatrix(t *testing.T) {
	topo := topology.TwoLevel(2, 4) // 8 procs across 2 nodes
	for _, scheme := range workload.Schemes {
		scheme := scheme
		for _, pr := range conformanceProfiles() {
			pr := pr
			t.Run(scheme+"/"+pr.Name(), func(t *testing.T) {
				mk := func(m *rma.Machine) locks.RWMutex {
					set, err := workload.NewLockSet(m, scheme, 1, workload.SchemeParams{}, nil)
					if err != nil {
						t.Fatal(err)
					}
					return set[0]
				}
				locktest.StressRWPattern(t, topo, mk, pattern(pr), locktest.Options{Iters: 12})
			})
		}
	}
}

// TestConformanceMutexDirect runs the three plain mutex implementations
// through the dedicated mutual-exclusion stress (no WriterOnly wrapper),
// once per contention generator's think-time pattern.
func TestConformanceMutexDirect(t *testing.T) {
	topo := topology.TwoLevel(2, 4)
	mutexes := map[string]locktest.MutexFactory{
		workload.SchemeFoMPISpin: func(m *rma.Machine) locks.Mutex { return fompi.NewSpin(m) },
		workload.SchemeDMCS:      func(m *rma.Machine) locks.Mutex { return dmcs.New(m) },
		workload.SchemeRMAMCS:    func(m *rma.Machine) locks.Mutex { return rmamcs.New(m) },
	}
	for name, mk := range mutexes {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			locktest.StressMutex(t, topo, mk, locktest.Options{Iters: 15})
		})
	}
}

// TestConformanceThreeLevel repeats a slice of the matrix on a
// three-level (rack) machine, where the topology-aware schemes exercise
// their multi-level tree paths.
func TestConformanceThreeLevel(t *testing.T) {
	topo := topology.MustNew([]int{1, 2, 4}, 2) // 2 racks × 2 nodes × 2 procs
	for _, scheme := range []string{workload.SchemeRMAMCS, workload.SchemeRMARW} {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			mk := func(m *rma.Machine) locks.RWMutex {
				set, err := workload.NewLockSet(m, scheme, 1, workload.SchemeParams{}, nil)
				if err != nil {
					t.Fatal(err)
				}
				return set[0]
			}
			locktest.StressRWPattern(t, topo, mk, pattern(workload.Uniform{FW: 0.3}), locktest.Options{Iters: 10})
		})
	}
}

// TestConformanceRWProper checks the two native RW locks also via the
// original fraction-based stress (reader overlap reporting).
func TestConformanceRWProper(t *testing.T) {
	topo := topology.TwoLevel(2, 4)
	rws := map[string]locktest.RWFactory{
		workload.SchemeFoMPIRW: func(m *rma.Machine) locks.RWMutex { return fompi.NewRW(m) },
		workload.SchemeRMARW:   func(m *rma.Machine) locks.RWMutex { return rmarw.New(m) },
	}
	for name, mk := range rws {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			locktest.StressRW(t, topo, mk, 1, 8, locktest.Options{Iters: 16})
		})
	}
}
