package workload

import (
	"fmt"
	"math"
	"sort"

	"rmalocks/internal/rma"
)

// Intent describes one harness iteration as decided by a Profile: which
// lock of the set the process contends on, whether it enters exclusively
// (write) or shared (read), and how long it thinks after release.
type Intent struct {
	// Lock indexes the harness's lock set, in [0, Profile.Locks()).
	Lock int
	// Write selects exclusive entry; false enters shared (read) mode.
	// Plain mutex schemes treat both modes as exclusive.
	Write bool
	// Think is virtual nanoseconds of local computation after release
	// (the paper's WARB wait-after-release, burst idle phases, …).
	Think int64
}

// Profile is a contention generator: per iteration it decides the Intent
// of a process. Implementations must draw randomness only from p.Rand()
// so a run is a deterministic function of the machine seed; `it` is the
// iteration index within the current phase (warm-up or measured).
type Profile interface {
	// Name is a short stable identifier ("uniform", "zipf", …).
	Name() string
	// Locks returns the size of the lock set this profile addresses; the
	// harness allocates that many lock instances.
	Locks() int
	// Next decides iteration it of process p.
	Next(p *rma.Proc, it int) Intent
}

// drawThink returns base plus a uniform draw in [0, jitter).
func drawThink(p *rma.Proc, base, jitter int64) int64 {
	if jitter > 0 {
		return base + p.Rand().Int63n(jitter)
	}
	return base
}

// lockCount normalizes a NumLocks field.
func lockCount(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// pickUniform selects a lock uniformly, consuming randomness only when
// there is a real choice.
func pickUniform(p *rma.Proc, n int) int {
	if n <= 1 {
		return 0
	}
	return p.Rand().Intn(n)
}

// pickWrite decides read-vs-write for writer fraction fw, consuming
// randomness only when the outcome is not forced.
func pickWrite(p *rma.Proc, fw float64) bool {
	if fw <= 0 {
		return false
	}
	if fw >= 1 {
		return true
	}
	return p.Rand().Float64() < fw
}

// Uniform is the baseline contention generator: every iteration picks a
// lock uniformly from the set, writes with probability FW, and thinks
// ThinkNs plus a uniform jitter after release. The zero value is the
// paper's ECSB driver on a single mutex (all-write, no think time).
type Uniform struct {
	// NumLocks is the lock-set size (default 1).
	NumLocks int
	// FW is the writer fraction in [0, 1]; FW >= 1 makes every entry
	// exclusive (mutex workloads).
	FW float64
	// ThinkNs is the base post-release think time (virtual ns).
	ThinkNs int64
	// ThinkJitterNs adds a uniform draw in [0, ThinkJitterNs).
	ThinkJitterNs int64
}

func (u Uniform) Name() string { return "uniform" }
func (u Uniform) Locks() int   { return lockCount(u.NumLocks) }

func (u Uniform) Next(p *rma.Proc, it int) Intent {
	return Intent{
		Lock:  pickUniform(p, u.Locks()),
		Write: pickWrite(p, u.FW),
		Think: drawThink(p, u.ThinkNs, u.ThinkJitterNs),
	}
}

// Zipf skews lock selection: lock k of the set is chosen with probability
// proportional to 1/(k+1)^S, modelling the hot-key/hot-volume access
// patterns of skewed key-value and graph workloads. Construct with
// NewZipf; the zero value is not usable.
type Zipf struct {
	// FW is the writer fraction, as in Uniform.
	FW float64
	// ThinkNs / ThinkJitterNs as in Uniform.
	ThinkNs       int64
	ThinkJitterNs int64

	s   float64
	cdf []float64 // cdf[k] = P(lock <= k); cdf[len-1] == 1
}

// NewZipf builds a Zipf profile over numLocks locks with skew exponent s
// and writer fraction fw. A negative s selects the default 1.2; s == 0
// is a legitimate setting — the skew degenerates to a uniform draw
// (every lock equally hot).
func NewZipf(numLocks int, s, fw float64) *Zipf {
	n := lockCount(numLocks)
	if s < 0 {
		s = 1.2
	}
	cdf := make([]float64, n)
	var total float64
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), s)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{s: s, FW: fw, cdf: cdf}
}

func (z *Zipf) Name() string { return "zipf" }
func (z *Zipf) Locks() int   { return len(z.cdf) }

// S returns the skew exponent.
func (z *Zipf) S() float64 { return z.s }

func (z *Zipf) Next(p *rma.Proc, it int) Intent {
	lock := 0
	if len(z.cdf) > 1 {
		u := p.Rand().Float64()
		lock = sort.SearchFloat64s(z.cdf, u)
		if lock >= len(z.cdf) {
			lock = len(z.cdf) - 1
		}
	}
	return Intent{
		Lock:  lock,
		Write: pickWrite(p, z.FW),
		Think: drawThink(p, z.ThinkNs, z.ThinkJitterNs),
	}
}

// Bursty alternates on-phases of back-to-back acquisitions with
// off-phases of long think time, modelling bursty critical-section
// arrival. With Desync each rank shifts its phase so bursts only
// partially overlap (rolling contention); without it all ranks burst
// together (maximum contention spikes).
type Bursty struct {
	// NumLocks is the lock-set size (default 1).
	NumLocks int
	// FW is the writer fraction, as in Uniform.
	FW float64
	// BurstLen is the number of back-to-back iterations per on-phase
	// (default 8).
	BurstLen int
	// IdleLen is the number of iterations per off-phase (default 8).
	IdleLen int
	// IdleThinkNs is the think time charged per off-phase iteration
	// (default 20 µs).
	IdleThinkNs int64
	// IdleJitterNs adds a uniform draw in [0, IdleJitterNs) to each
	// off-phase think time.
	IdleJitterNs int64
	// Desync staggers the phase offset by rank.
	Desync bool
}

func (b Bursty) Name() string { return "bursty" }
func (b Bursty) Locks() int   { return lockCount(b.NumLocks) }

func (b Bursty) Next(p *rma.Proc, it int) Intent {
	burst, idle := b.BurstLen, b.IdleLen
	if burst <= 0 {
		burst = 8
	}
	if idle <= 0 {
		idle = 8
	}
	think := b.IdleThinkNs
	if think <= 0 {
		think = 20_000
	}
	cycle := burst + idle
	pos := it % cycle
	if b.Desync {
		pos = (it + p.Rank()*(cycle/4+1)) % cycle
	}
	in := Intent{
		Lock:  pickUniform(p, b.Locks()),
		Write: pickWrite(p, b.FW),
	}
	if pos >= burst {
		in.Think = drawThink(p, think, b.IdleJitterNs)
	}
	return in
}

// RWSweep sweeps the writer fraction linearly from FWStart to FWEnd over
// Span iterations, modelling a workload whose read/write mix drifts over
// time (e.g. a store turning read-mostly as caches warm). Iterations
// beyond Span stay at FWEnd.
type RWSweep struct {
	// NumLocks is the lock-set size (default 1).
	NumLocks int
	// FWStart and FWEnd bound the sweep (both in [0, 1]).
	FWStart, FWEnd float64
	// Span is the number of iterations the sweep covers (default 100).
	Span int
	// ThinkNs / ThinkJitterNs as in Uniform.
	ThinkNs       int64
	ThinkJitterNs int64
}

func (s RWSweep) Name() string { return "sweep" }
func (s RWSweep) Locks() int   { return lockCount(s.NumLocks) }

// FWAt returns the writer fraction in effect at iteration it.
func (s RWSweep) FWAt(it int) float64 {
	span := s.Span
	if span <= 0 {
		span = 100
	}
	frac := float64(it) / float64(span)
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	return s.FWStart + (s.FWEnd-s.FWStart)*frac
}

func (s RWSweep) Next(p *rma.Proc, it int) Intent {
	return Intent{
		Lock:  pickUniform(p, s.Locks()),
		Write: pickWrite(p, s.FWAt(it)),
		Think: drawThink(p, s.ThinkNs, s.ThinkJitterNs),
	}
}

// ProfileNames lists the named contention generators for CLI dispatch.
var ProfileNames = []string{"uniform", "zipf", "bursty", "sweep"}

// ProfileOpts parameterizes ProfileByName.
type ProfileOpts struct {
	// Locks is the lock-set size (default 1).
	Locks int
	// FW is the writer fraction (sweep uses it as the end point).
	FW float64
	// ZipfS is the Zipf skew exponent (default 1.2 unless ZipfSSet).
	ZipfS float64
	// ZipfSSet marks ZipfS as explicitly chosen: a zero exponent then
	// means a uniform draw instead of the 1.2 default.
	ZipfSSet bool
	// Span is the sweep length in iterations (default 100).
	Span int
	// ThinkNs / ThinkJitterNs set post-release think time.
	ThinkNs       int64
	ThinkJitterNs int64
}

// ProfileByName builds one of the named contention generators.
func ProfileByName(name string, o ProfileOpts) (Profile, error) {
	switch name {
	case "uniform":
		return Uniform{NumLocks: o.Locks, FW: o.FW, ThinkNs: o.ThinkNs, ThinkJitterNs: o.ThinkJitterNs}, nil
	case "zipf":
		s := o.ZipfS
		if s == 0 && !o.ZipfSSet {
			s = 1.2
		}
		z := NewZipf(o.Locks, s, o.FW)
		z.ThinkNs, z.ThinkJitterNs = o.ThinkNs, o.ThinkJitterNs
		return z, nil
	case "bursty":
		// ThinkNs maps onto the off-phase think time (0 keeps the bursty
		// default); dropping either option silently would make the same
		// opts mean different things per profile.
		return Bursty{NumLocks: o.Locks, FW: o.FW, Desync: true,
			IdleThinkNs: o.ThinkNs, IdleJitterNs: o.ThinkJitterNs}, nil
	case "sweep":
		end := o.FW
		if end <= 0 {
			end = 1
		}
		return RWSweep{NumLocks: o.Locks, FWStart: 0, FWEnd: end, Span: o.Span,
			ThinkNs: o.ThinkNs, ThinkJitterNs: o.ThinkJitterNs}, nil
	default:
		return nil, fmt.Errorf("workload: unknown profile %q (have %v)", name, ProfileNames)
	}
}
