package workload

import (
	"runtime"
	"runtime/metrics"
)

// goroutineSample is the runtime/metrics name of the live goroutine
// count — the scheduler-maintained figure NumGoroutine also reads, but
// fetched through the sampling API alongside any future signals.
const goroutineSample = "/sched/goroutines:goroutines"

// liveGoroutines returns the current live goroutine count via
// runtime/metrics, falling back to runtime.NumGoroutine if the sample
// name is unknown to the running toolchain. With -memstats this lands
// in Report.Extra["goroutines"]: read right after a run it bounds how
// many rank goroutines the scheduler actually spawned, which is the
// measurable form of the lazy-goroutine claim (a 2^20-rank uniform
// empty run stays in the hundreds, not the millions).
func liveGoroutines() int64 {
	sample := []metrics.Sample{{Name: goroutineSample}}
	metrics.Read(sample)
	if sample[0].Value.Kind() == metrics.KindUint64 {
		return int64(sample[0].Value.Uint64())
	}
	return int64(runtime.NumGoroutine())
}
