package workload_test

import (
	"testing"

	"rmalocks/internal/rma"
	"rmalocks/internal/workload"
)

func TestRunDefaultsEverySCheme(t *testing.T) {
	for _, scheme := range workload.Schemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			rep, err := workload.Run(workload.Spec{Scheme: scheme, P: 16, Iters: 15})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Ops != 16*15 {
				t.Errorf("Ops=%d want 240", rep.Ops)
			}
			if rep.Writes != rep.Ops || rep.Reads != 0 {
				t.Errorf("default profile must be all-write: %+v", rep)
			}
			if rep.ThroughputMops <= 0 || rep.Latency.Mean <= 0 {
				t.Errorf("bad report: %+v", rep)
			}
			if rep.MaxClock <= 0 {
				t.Errorf("MaxClock=%d", rep.MaxClock)
			}
			if rep.Scheme != scheme || rep.Workload != "empty" || rep.Profile != "uniform" {
				t.Errorf("bad identity fields: %+v", rep)
			}
		})
	}
}

func TestRunUnknownScheme(t *testing.T) {
	if _, err := workload.Run(workload.Spec{Scheme: "nope", P: 4}); err == nil {
		t.Error("want error for unknown scheme")
	}
}

func TestRunReadWriteSplit(t *testing.T) {
	rep, err := workload.Run(workload.Spec{
		Scheme: workload.SchemeRMARW, P: 16, Iters: 30, Seed: 2,
		Profile: workload.Uniform{FW: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reads+rep.Writes != rep.Ops || rep.Ops != 16*30 {
		t.Errorf("split does not add up: %+v", rep)
	}
	if rep.Reads == 0 || rep.Writes == 0 {
		t.Errorf("FW=0.25 should mix reads and writes: r=%d w=%d", rep.Reads, rep.Writes)
	}
	if rep.Latency.N != rep.ReadLatency.N+rep.WriteLatency.N {
		t.Errorf("latency sample counts inconsistent: %+v", rep)
	}
}

func TestRunZipfMultiLock(t *testing.T) {
	z := workload.NewZipf(8, 1.2, 0.1)
	if z.Locks() != 8 {
		t.Fatalf("Locks=%d want 8", z.Locks())
	}
	rep, err := workload.Run(workload.Spec{
		Scheme: workload.SchemeRMAMCS, P: 16, Iters: 20, Profile: z,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 16*20 {
		t.Errorf("Ops=%d want 320", rep.Ops)
	}
}

func TestRunBurstySlowerThanUniform(t *testing.T) {
	base := workload.Spec{Scheme: workload.SchemeDMCS, P: 16, Iters: 24}
	uni := base
	uni.Profile = workload.Uniform{FW: 1}
	bur := base
	bur.Profile = workload.Bursty{FW: 1, BurstLen: 4, IdleLen: 4, IdleThinkNs: 50_000}
	ru, err := workload.Run(uni)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := workload.Run(bur)
	if err != nil {
		t.Fatal(err)
	}
	// Idle phases stretch the makespan, so bursty throughput must drop.
	if rb.ThroughputMops >= ru.ThroughputMops {
		t.Errorf("bursty %.3f >= uniform %.3f mln/s", rb.ThroughputMops, ru.ThroughputMops)
	}
}

func TestRunSweepShiftsMix(t *testing.T) {
	rep, err := workload.Run(workload.Spec{
		Scheme: workload.SchemeFoMPIRW, P: 8, Iters: 40, Warmup: -1,
		Profile: workload.RWSweep{FWStart: 0, FWEnd: 1, Span: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reads == 0 || rep.Writes == 0 {
		t.Errorf("sweep 0→1 should produce both classes: r=%d w=%d", rep.Reads, rep.Writes)
	}
}

func TestRunSkipRanks(t *testing.T) {
	rep, err := workload.Run(workload.Spec{
		Scheme: workload.SchemeRMARW, P: 8, Iters: 10, Warmup: -1,
		Skip: func(rank, procs int) bool { return rank == 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 7*10 {
		t.Errorf("Ops=%d want 70 (rank 0 sits out)", rep.Ops)
	}
	if rep.WarmupOps != 0 {
		t.Errorf("WarmupOps=%d want 0", rep.WarmupOps)
	}
}

func TestRunNoLockDHT(t *testing.T) {
	w := &workload.DHTOps{Slots: 64, Cells: 256, Atomic: true}
	rep, err := workload.Run(workload.Spec{
		NoLock: true, P: 8, Iters: 12, Warmup: -1,
		Profile:  workload.Uniform{FW: 0.5},
		Workload: w,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Writes == 0 {
		t.Fatalf("no inserts happened: %+v", rep)
	}
	if rep.Extra["stored"] <= 0 {
		t.Errorf("stored=%v despite %d inserts", rep.Extra["stored"], rep.Writes)
	}
	if rep.Scheme != "nolock" {
		t.Errorf("Scheme=%q want nolock", rep.Scheme)
	}
}

func TestRunCounterExtract(t *testing.T) {
	rep, err := workload.Run(workload.Spec{
		Scheme: workload.SchemeFoMPISpin, P: 8, Iters: 10, Warmup: -1,
		Workload: &workload.CounterCompute{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Extra["counter"]; got != float64(8*10) {
		t.Errorf("counter=%v want 80", got)
	}
}

func TestRunDirectEntriesOnlyRMAMCS(t *testing.T) {
	rep, err := workload.Run(workload.Spec{Scheme: workload.SchemeRMAMCS, P: 32, Iters: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DirectEntries <= 0 {
		t.Errorf("RMA-MCS at P=32 should take intra-node shortcuts: %+v", rep)
	}
	rep2, err := workload.Run(workload.Spec{Scheme: workload.SchemeDMCS, P: 32, Iters: 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.DirectEntries != 0 {
		t.Errorf("D-MCS DirectEntries=%d want 0", rep2.DirectEntries)
	}
}

func TestByNameHelpers(t *testing.T) {
	for _, name := range workload.WorkloadNames {
		if _, err := workload.ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := workload.ByName("bogus"); err == nil {
		t.Error("want error for bogus workload")
	}
	for _, name := range workload.ProfileNames {
		pr, err := workload.ProfileByName(name, workload.ProfileOpts{Locks: 4, FW: 0.2})
		if err != nil {
			t.Errorf("ProfileByName(%q): %v", name, err)
			continue
		}
		if pr.Name() != name {
			t.Errorf("ProfileByName(%q).Name()=%q", name, pr.Name())
		}
		if pr.Locks() != 4 {
			t.Errorf("ProfileByName(%q).Locks()=%d want 4", name, pr.Locks())
		}
	}
	if _, err := workload.ProfileByName("bogus", workload.ProfileOpts{}); err == nil {
		t.Error("want error for bogus profile")
	}
}

func TestZipfSkew(t *testing.T) {
	// Lock 0 must be the clear favourite under Zipf skew: count the
	// first-lock share over a run with many iterations.
	z := workload.NewZipf(16, 1.2, 0)
	rep, err := workload.Run(workload.Spec{
		Scheme: workload.SchemeFoMPIRW, P: 8, Iters: 100, Warmup: -1, Profile: z,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != 800 {
		t.Fatalf("Ops=%d", rep.Ops)
	}
	// Indirect check: the run completed with 16 locks and pure readers;
	// direct distribution checks live below without the harness.
	counts := make([]int, 16)
	// Sample the generator directly through a tiny machine run.
	rep2, err := workload.Run(workload.Spec{
		Scheme: workload.SchemeFoMPIRW, P: 1, ProcsPerNode: 1, Iters: 2000, Warmup: -1,
		Profile:  z,
		Workload: countingWorkload{counts: counts},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = rep2
	if counts[0] <= counts[15]*2 {
		t.Errorf("zipf skew too flat: first=%d last=%d", counts[0], counts[15])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 2000 {
		t.Errorf("total=%d want 2000", total)
	}
}

// countingWorkload tallies which lock index each iteration targeted.
type countingWorkload struct{ counts []int }

func (countingWorkload) Name() string                           { return "counting" }
func (countingWorkload) Setup(*rma.Machine)                     {}
func (w countingWorkload) Body(p *rma.Proc, in workload.Intent) { w.counts[in.Lock]++ }
func (countingWorkload) Extract(*rma.Machine, *workload.Report) {}

func TestSkipRankStartUsesAlignedClock(t *testing.T) {
	// When rank 0 sits out (Spec.Skip), it is still the rank that samples
	// the measured-phase start time — which must be the post-barrier
	// aligned clock, not its pre-barrier arrival time. If it were not,
	// the makespan would absorb the other ranks' warm-up phase: pinning
	// makespan/throughput as invariant under the warm-up length proves
	// the start really is taken after clocks align. (foMPI-Spin with an
	// uncontended single participant consumes no RNG, so the measured
	// phase is byte-identical regardless of how many warm-up cycles ran.)
	run := func(warmup int) workload.Report {
		rep, err := workload.Run(workload.Spec{
			Scheme: workload.SchemeFoMPISpin, P: 2, Iters: 20, Warmup: warmup,
			Skip: func(rank, procs int) bool { return rank == 0 },
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	noWarm, warm := run(-1), run(25)
	if noWarm.Ops != 20 || warm.Ops != 20 {
		t.Fatalf("ops: %d, %d want 20 (only rank 1 participates)", noWarm.Ops, warm.Ops)
	}
	if warm.WarmupOps != 25 {
		t.Errorf("WarmupOps=%d want 25", warm.WarmupOps)
	}
	if warm.MakespanMs != noWarm.MakespanMs {
		t.Errorf("makespan absorbed the warm-up phase: %v ms (warmup=25) vs %v ms (no warmup)",
			warm.MakespanMs, noWarm.MakespanMs)
	}
	if warm.ThroughputMops != noWarm.ThroughputMops {
		t.Errorf("throughput depends on warm-up length: %v vs %v",
			warm.ThroughputMops, noWarm.ThroughputMops)
	}
	if warm.MaxClock <= noWarm.MaxClock {
		t.Errorf("warm-up must still extend total virtual time: %d <= %d",
			warm.MaxClock, noWarm.MaxClock)
	}
	// Throughput and makespan must describe the same interval.
	wantMops := float64(warm.Ops) / (warm.MakespanMs * 1e3)
	if d := warm.ThroughputMops - wantMops; d > 1e-9 || d < -1e-9 {
		t.Errorf("throughput %v inconsistent with makespan (want %v)", warm.ThroughputMops, wantMops)
	}
}
