package workload_test

// Benchmarks for the unified harness: wall-clock cost of simulating one
// grid cell, per scheme and per contention profile. Baseline for future
// performance PRs (run with `make bench`, compare with benchstat).

import (
	"testing"

	"rmalocks/internal/workload"
)

func benchSpec(scheme string, pr workload.Profile) workload.Spec {
	return workload.Spec{
		Scheme: scheme,
		P:      32, ProcsPerNode: 16,
		Iters:    10,
		Profile:  pr,
		Workload: workload.Empty{},
	}
}

// BenchmarkHarnessSchemes measures one harness run per scheme under the
// uniform profile.
func BenchmarkHarnessSchemes(b *testing.B) {
	for _, scheme := range workload.Schemes {
		scheme := scheme
		b.Run(scheme, func(b *testing.B) {
			var last workload.Report
			for i := 0; i < b.N; i++ {
				rep, err := workload.Run(benchSpec(scheme, workload.Uniform{FW: 0.1}))
				if err != nil {
					b.Fatal(err)
				}
				last = rep
			}
			b.ReportMetric(last.ThroughputMops, "mln-locks/s")
			b.ReportMetric(float64(last.Ops), "sim-ops/run")
		})
	}
}

// BenchmarkHarnessProfiles measures one RMA-RW harness run per
// contention generator.
func BenchmarkHarnessProfiles(b *testing.B) {
	profiles := []workload.Profile{
		workload.Uniform{FW: 0.1},
		workload.NewZipf(8, 1.2, 0.1),
		workload.Bursty{FW: 0.1, Desync: true},
		workload.RWSweep{FWStart: 0, FWEnd: 1, Span: 10},
	}
	for _, pr := range profiles {
		pr := pr
		b.Run(pr.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := workload.Run(benchSpec(workload.SchemeRMARW, pr)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
