package workload_test

// Registry-dispatch equivalence: NewLockSet now builds locks through
// the capability-based scheme registry (internal/scheme). This suite
// pins the redesign's compatibility contract: registry-constructed
// locks are behaviorally identical — byte-identical report
// fingerprints — to the legacy direct constructors with the harness's
// historical defaults, and typed tunables flow end to end.

import (
	"errors"
	"strings"
	"testing"

	"rmalocks/internal/locks"
	"rmalocks/internal/locks/dmcs"
	"rmalocks/internal/locks/fompi"
	"rmalocks/internal/locks/rmamcs"
	"rmalocks/internal/locks/rmarw"
	"rmalocks/internal/rma"
	"rmalocks/internal/scheme"
	"rmalocks/internal/topology"
	"rmalocks/internal/workload"
)

// legacyFactory reproduces the pre-registry per-scheme switch of
// NewLockSet, including the harness defaults (RMA-RW: T_DC one per
// node, T_R=1000, T_L=(40,25)).
func legacyFactory(schemeName string) func(m *rma.Machine, n int) ([]locks.RWMutex, error) {
	return func(m *rma.Machine, n int) ([]locks.RWMutex, error) {
		set := make([]locks.RWMutex, n)
		for i := range set {
			switch schemeName {
			case workload.SchemeFoMPISpin:
				set[i] = locks.WriterOnly{Mu: fompi.NewSpin(m)}
			case workload.SchemeDMCS:
				set[i] = locks.WriterOnly{Mu: dmcs.New(m)}
			case workload.SchemeRMAMCS:
				set[i] = locks.WriterOnly{Mu: rmamcs.NewConfig(m, rmamcs.Config{})}
			case workload.SchemeFoMPIRW:
				set[i] = fompi.NewRW(m)
			case workload.SchemeRMARW:
				set[i] = rmarw.NewConfig(m, rmarw.Config{
					TDC: m.Topology().ProcsPerLeaf(), TR: 1000, TL: []int64{0, 40, 25}})
			}
		}
		return set, nil
	}
}

// TestRegistryMatchesLegacyConstructors runs every scheme once through
// the registry dispatch and once through the legacy constructors and
// requires byte-identical fingerprints (including DirectEntries, which
// exercises the unwrapping of both lock-handle shapes).
func TestRegistryMatchesLegacyConstructors(t *testing.T) {
	for _, schemeName := range workload.Schemes {
		schemeName := schemeName
		t.Run(schemeName, func(t *testing.T) {
			base := workload.Spec{
				Scheme: schemeName, P: 24, ProcsPerNode: 8, Iters: 20,
				Profile: workload.Uniform{FW: 0.25, NumLocks: 2},
			}
			viaRegistry, err := workload.Run(base)
			if err != nil {
				t.Fatal(err)
			}
			legacy := base
			legacy.Make = legacyFactory(schemeName)
			viaLegacy, err := workload.Run(legacy)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := viaRegistry.Fingerprint(), viaLegacy.Fingerprint(); a != b {
				t.Errorf("registry vs legacy constructors diverge:\n registry: %s\n legacy:   %s", a, b)
			}
		})
	}
}

// TestSpecTunablesValidation: unknown or out-of-range Spec.Tunables
// fail the run with the registry's typed errors.
func TestSpecTunablesValidation(t *testing.T) {
	spec := workload.Spec{Scheme: workload.SchemeRMARW, P: 8, Iters: 4,
		Tunables: scheme.Tunables{"BOGUS": 1}}
	_, err := workload.Run(spec)
	var unk *scheme.UnknownTunableError
	if !errors.As(err, &unk) {
		t.Fatalf("unknown tunable: err = %v, want UnknownTunableError", err)
	}
	spec.Tunables = scheme.Tunables{"TR": -1}
	_, err = workload.Run(spec)
	var rng *scheme.RangeError
	if !errors.As(err, &rng) {
		t.Fatalf("TR=-1: err = %v, want RangeError", err)
	}
}

// TestSpecTunablesRecorded: non-empty tunables show up canonically in
// the report and its fingerprint; empty tunables leave both untouched.
func TestSpecTunablesRecorded(t *testing.T) {
	base := workload.Spec{Scheme: workload.SchemeRMARW, P: 16, Iters: 10,
		Profile: workload.Uniform{FW: 0.1}}
	plain, err := workload.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Tunables != "" {
		t.Errorf("untuned run recorded Tunables %q", plain.Tunables)
	}
	if strings.Contains(plain.Fingerprint(), "tun=") {
		t.Errorf("untuned fingerprint mentions tunables: %s", plain.Fingerprint())
	}

	tuned := base
	tuned.Tunables = scheme.Tunables{"TR": 1000, "TL1": 40, "TL2": 25}
	rep, err := workload.Run(tuned)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tunables != "TL1=40,TL2=25,TR=1000" {
		t.Errorf("Report.Tunables = %q", rep.Tunables)
	}
	if !strings.Contains(rep.Fingerprint(), " tun=TL1=40,TL2=25,TR=1000") {
		t.Errorf("fingerprint lacks tunables: %s", rep.Fingerprint())
	}
	// These explicit tunables equal the harness defaults, so the
	// simulation itself is identical: only the tunables annotation may
	// differ between the two fingerprints.
	want := strings.Replace(rep.Fingerprint(), " tun=TL1=40,TL2=25,TR=1000", "", 1)
	if plain.Fingerprint() != want {
		t.Errorf("explicit harness defaults changed the simulation:\n plain: %s\n tuned: %s",
			plain.Fingerprint(), rep.Fingerprint())
	}
}

// TestTunablesOverrideParams: Spec.Tunables wins over Spec.Params key
// by key, and reaches the constructed lock.
func TestTunablesOverrideParams(t *testing.T) {
	m := rma.NewMachine(topology.TwoLevel(2, 8))
	set, err := workload.NewLockSet(m, workload.SchemeRMARW, 1,
		workload.SchemeParams{TR: 500, TDC: 4}, scheme.Tunables{"TR": 9})
	if err != nil {
		t.Fatal(err)
	}
	rw := set[0].(scheme.Lock).Underlying().(*rmarw.Lock)
	if rw.TR() != 9 {
		t.Errorf("TR = %d, want tunable override 9", rw.TR())
	}
	if rw.TDC() != 4 {
		t.Errorf("TDC = %d, want legacy param 4", rw.TDC())
	}
	// With a TL tunable present, the harness's historical TL default is
	// not injected: the remaining levels take the scheme default.
	set, err = workload.NewLockSet(m, workload.SchemeRMARW, 1,
		workload.SchemeParams{}, scheme.Tunables{"TL2": 5})
	if err != nil {
		t.Fatal(err)
	}
	rw = set[0].(scheme.Lock).Underlying().(*rmarw.Lock)
	if rw.TW() != rmarw.DefaultTL*5 {
		t.Errorf("TW = %d, want %d (TL1 default %d, TL2 5)", rw.TW(), rmarw.DefaultTL*5, rmarw.DefaultTL)
	}
}

// TestSchemesDerivedFromRegistry: the harness's scheme list is the
// registry's, in presentation order.
func TestSchemesDerivedFromRegistry(t *testing.T) {
	if got, want := len(workload.Schemes), len(scheme.Names()); got != want {
		t.Fatalf("workload.Schemes has %d entries, registry %d", got, want)
	}
	for i, name := range scheme.Names() {
		if workload.Schemes[i] != name {
			t.Errorf("Schemes[%d] = %q, registry %q", i, workload.Schemes[i], name)
		}
	}
}
