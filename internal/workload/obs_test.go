package workload

import (
	"os"
	"testing"

	"rmalocks/internal/obs"
	"rmalocks/internal/rma"
)

// obsSpec is the shared cell of the observe-never-perturb tests:
// contended enough that psim exercises blocking, waking and the full
// gate protocol.
func obsSpec(engine string, m *obs.Metrics) Spec {
	return Spec{
		Scheme:  SchemeRMAMCS,
		P:       32,
		Iters:   20,
		Profile: Uniform{FW: 1},
		Engine:  engine,
		Obs:     m,
	}
}

// TestObsNeverPerturbs is the tentpole invariant: with observability
// attached, every engine produces a report byte-identical (by
// fingerprint) to its unobserved run, and no metric key leaks into
// Report.Extra.
func TestObsNeverPerturbs(t *testing.T) {
	for _, engine := range []string{"", rma.EngineRef, rma.EnginePSim} {
		name := engine
		if name == "" {
			name = "fast"
		}
		t.Run(name, func(t *testing.T) {
			bare, err := Run(obsSpec(engine, nil))
			if err != nil {
				t.Fatal(err)
			}
			observed, err := Run(obsSpec(engine, obs.NewMetrics()))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := observed.Fingerprint(), bare.Fingerprint(); got != want {
				t.Fatalf("obs-on fingerprint %s != obs-off %s", got, want)
			}
			for k := range observed.Extra {
				switch k {
				case "heap_bytes_per_rank", "sys_bytes_per_rank", "goroutines", "gc_pause_total_ns":
					t.Fatalf("metric key %q leaked into Report.Extra", k)
				}
			}
		})
	}
}

// TestObsGateMetricsOnPSim checks a psim run actually feeds the gate
// instruments — hold time, wall time, lockings, grants, depth samples —
// and that the serial fraction lands in (0, 1]; on the sequential
// engines the same instruments stay untouched (they have no gate).
func TestObsGateMetricsOnPSim(t *testing.T) {
	m := obs.NewMetrics()
	if _, err := Run(obsSpec(rma.EnginePSim, m)); err != nil {
		t.Fatal(err)
	}
	g := m.Gate
	if g.Hold.Value() <= 0 || g.Wall.Value() <= 0 {
		t.Fatalf("gate hold=%d wall=%d, want both > 0", g.Hold.Value(), g.Wall.Value())
	}
	if g.Lockings.Value() <= 0 || g.Grants.Value() <= 0 {
		t.Fatalf("gate lockings=%d grants=%d, want both > 0", g.Lockings.Value(), g.Grants.Value())
	}
	if g.ReqDepth.Count() <= 0 || g.ConsDepth.Count() <= 0 {
		t.Fatalf("gate depth samples req=%d cons=%d, want both > 0", g.ReqDepth.Count(), g.ConsDepth.Count())
	}
	f := g.SerialFraction()
	if f <= 0 || f > 1 {
		t.Fatalf("serial fraction = %v, want in (0, 1]", f)
	}
	snap := m.Registry.Snapshot()
	run := snap.Phases["run"]
	if run.Spans != 1 || run.SerialNs != g.Hold.Value() {
		t.Fatalf("run phase = %+v, want 1 span with serial = hold %d", run, g.Hold.Value())
	}
	if snap.Phases["setup"].Spans != 1 || snap.Phases["drain"].Spans != 1 {
		t.Fatalf("phases = %+v, want setup and drain spans", snap.Phases)
	}
	if got := snap.Counters["cell_iters_done_total"]; got != 32*20 {
		t.Fatalf("cell_iters_done_total = %d, want %d", got, 32*20)
	}

	seq := obs.NewMetrics()
	if _, err := Run(obsSpec("", seq)); err != nil {
		t.Fatal(err)
	}
	if h := seq.Gate.Hold.Value(); h != 0 {
		t.Fatalf("fast engine touched the gate: hold=%d", h)
	}
	if got := seq.Registry.Snapshot().Counters["cell_iters_done_total"]; got != 32*20 {
		t.Fatalf("fast-engine iters counter = %d, want %d", got, 32*20)
	}
}

// TestMemStatsRuntimeSignals checks the -memstats extension: the
// runtime/metrics signals land in Extra with plausible values.
func TestMemStatsRuntimeSignals(t *testing.T) {
	spec := obsSpec("", nil)
	spec.MemStats = true
	rep, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := rep.Extra["goroutines"]
	if !ok || g < 1 {
		t.Fatalf("Extra[goroutines] = %v (ok=%v), want >= 1", g, ok)
	}
	if _, ok := rep.Extra["gc_pause_total_ns"]; !ok {
		t.Fatal("Extra[gc_pause_total_ns] missing")
	}
	if _, ok := rep.Extra["heap_bytes_per_rank"]; !ok {
		t.Fatal("Extra[heap_bytes_per_rank] missing")
	}
}

// TestLazyGoroutines asserts the lazy-goroutine claim with the new
// runtime signal: after a P-rank single-lock run, the live goroutine
// count in Extra["goroutines"] stays orders of magnitude below P —
// ranks that finished released their goroutines, and ranks mostly ran
// one after another. Default P is 2^14 to keep tier-1 fast; set
// RMALOCKS_MILLION=1 to assert the full 2^20-rank claim (the
// `make million-smoke` shape, ~minutes on one core).
func TestLazyGoroutines(t *testing.T) {
	p := 1 << 14
	if os.Getenv("RMALOCKS_MILLION") != "" {
		p = 1 << 20
	}
	rep, err := Run(Spec{
		Scheme:   SchemeRMAMCS,
		P:        p,
		Iters:    1,
		Warmup:   -1,
		Profile:  Uniform{FW: 1},
		MemStats: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := rep.Extra["goroutines"]
	if g <= 0 {
		t.Fatalf("Extra[goroutines] = %v, want > 0", g)
	}
	if limit := float64(p) / 16; g >= limit {
		t.Fatalf("goroutines = %v at P=%d, want < %v (lazy-goroutine claim)", g, p, limit)
	}
}
