package workload_test

// Fault-enabled differential suite: the deterministic perturbation
// layer (internal/fault) must preserve the core guarantee — identical
// configs produce byte-identical runs across all six engine ×
// coalescing combinations — under jitter, congestion windows,
// stragglers, stalls, and the bounded-acquire timeout path. Runs under
// -race in CI (the race and chaos-smoke jobs' Differential pattern).

import (
	"errors"
	"strings"
	"testing"

	"rmalocks/internal/fault"
	"rmalocks/internal/rma"
	"rmalocks/internal/scheme"
	"rmalocks/internal/sim"
	"rmalocks/internal/trace"
	"rmalocks/internal/workload"
)

// perturbProfile is the perturbation-only fault mix (no acquire
// timeouts), applicable to every scheme including the MCS-queue locks.
func perturbProfile(t *testing.T) *fault.Profile {
	t.Helper()
	p, err := fault.Parse("jitter=0.2,stragglers=4x10%,stall=50us@0.05,congest=3x0.25")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// timeoutProfile adds bounded acquires on top of the perturbations;
// only CapTimeout schemes accept it.
func timeoutProfile(t *testing.T) *fault.Profile {
	t.Helper()
	p, err := fault.Parse("jitter=0.2,stall=100us@0.1,timeout=150us")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDifferentialFaultsAllSchemes(t *testing.T) {
	for _, sch := range workload.Schemes {
		sch := sch
		t.Run(sch, func(t *testing.T) {
			t.Parallel()
			var baseFP string
			var baseClock int64
			for i, ec := range engineCases {
				rep, err := workload.Run(workload.Spec{
					Scheme: sch,
					P:      16, ProcsPerNode: 4,
					Seed:     11,
					Iters:    12,
					Profile:  workload.Uniform{FW: 0.5, NumLocks: 2},
					Workload: &workload.SharedOp{},
					Faults:   perturbProfile(t),
					Engine:   ec.engine, NoCoalesce: ec.noCoalesce,
				})
				if err != nil {
					t.Fatalf("%s: %v", ec.name, err)
				}
				if rep.Faults == "" {
					t.Fatal("Report.Faults not recorded")
				}
				fp := rep.Fingerprint()
				if i == 0 {
					baseFP, baseClock = fp, rep.MaxClock
					continue
				}
				if fp != baseFP {
					t.Errorf("%s diverged from %s:\n a: %s\n b: %s",
						ec.name, engineCases[0].name, baseFP, fp)
				}
				if rep.MaxClock != baseClock {
					t.Errorf("%s MaxClock %d != %d", ec.name, rep.MaxClock, baseClock)
				}
			}
		})
	}
}

// TestDifferentialFaultTimeoutPath pins the bounded try/backoff/retry
// acquire path across the engine matrix on both CapTimeout schemes.
// The profile is contentious enough that timeouts genuinely occur
// (asserted), so the retry machinery itself is differential-tested.
func TestDifferentialFaultTimeoutPath(t *testing.T) {
	for _, sch := range []string{workload.SchemeFoMPISpin, workload.SchemeFoMPIRW} {
		sch := sch
		t.Run(sch, func(t *testing.T) {
			t.Parallel()
			var baseFP string
			for i, ec := range engineCases {
				rep, err := workload.Run(workload.Spec{
					Scheme: sch,
					P:      16, ProcsPerNode: 4,
					Seed:     11,
					Iters:    12,
					Profile:  workload.Uniform{FW: 0.7, NumLocks: 2},
					Workload: &workload.SharedOp{},
					Faults:   timeoutProfile(t),
					Engine:   ec.engine, NoCoalesce: ec.noCoalesce,
				})
				if err != nil {
					t.Fatalf("%s: %v", ec.name, err)
				}
				if i == 0 {
					baseFP = rep.Fingerprint()
					if rep.Extra["timeouts"] == 0 {
						t.Errorf("expected some acquire timeouts under the contention profile, got none")
					}
					continue
				}
				if fp := rep.Fingerprint(); fp != baseFP {
					t.Errorf("%s diverged:\n a: %s\n b: %s", ec.name, baseFP, fp)
				}
			}
		})
	}
}

// TestDifferentialFaultTraceStreams extends the semantic trace-stream
// gate to faulted runs: under stalls, jitter and acquire timeouts, the
// merged semantic event stream must stay byte-identical across the
// matrix (raw CSV between the sequential engines, dispatch-free
// rendering for psim), and every stream must replay cleanly through
// trace.Validate's degradation invariants — mutual exclusion under
// stalls, no lost wakeups, every timed-out acquire cleanly resolved.
func TestDifferentialFaultTraceStreams(t *testing.T) {
	cases := []struct {
		scheme string
		prof   func(*testing.T) *fault.Profile
	}{
		{workload.SchemeFoMPISpin, timeoutProfile}, // EvAcqTimeout present
		{workload.SchemeRMAMCS, perturbProfile},    // queue lock under stalls
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.scheme, func(t *testing.T) {
			t.Parallel()
			var baseCSV, baseSem string
			sawTimeout := false
			for i, ec := range engineCases {
				sink := trace.New(trace.ClassSemantic)
				_, err := workload.Run(workload.Spec{
					Scheme: tc.scheme,
					P:      16, ProcsPerNode: 4,
					Seed:     13,
					Iters:    10,
					Profile:  workload.Uniform{FW: 0.5, NumLocks: 2},
					Workload: &workload.SharedOp{},
					Faults:   tc.prof(t),
					Engine:   ec.engine, NoCoalesce: ec.noCoalesce,
					Trace:    sink,
				})
				if err != nil {
					t.Fatalf("%s: %v", ec.name, err)
				}
				events := sink.Events()
				if err := trace.Validate(events); err != nil {
					t.Fatalf("%s: replay validation: %v", ec.name, err)
				}
				for _, e := range events {
					if e.Kind == trace.EvAcqTimeout {
						sawTimeout = true
					}
				}
				var b strings.Builder
				if err := trace.WriteCSV(&b, events); err != nil {
					t.Fatal(err)
				}
				sem := semanticLines(events)
				if i == 0 {
					baseCSV, baseSem = b.String(), sem
					if len(events) == 0 {
						t.Fatal("empty event stream")
					}
					continue
				}
				got, want := b.String(), baseCSV
				if ec.engine == rma.EnginePSim {
					got, want = sem, baseSem
				}
				if got != want {
					t.Errorf("%s event stream diverged from %s (%d vs %d lines)",
						ec.name, engineCases[0].name,
						strings.Count(got, "\n"), strings.Count(want, "\n"))
					a, bb := strings.Split(want, "\n"), strings.Split(got, "\n")
					for j := 0; j < len(a) && j < len(bb); j++ {
						if a[j] != bb[j] {
							t.Errorf("first divergence at line %d:\n a: %s\n b: %s", j, a[j], bb[j])
							break
						}
					}
				}
			}
			if tc.scheme == workload.SchemeFoMPISpin && !sawTimeout {
				t.Error("expected EvAcqTimeout events under the timeout profile")
			}
		})
	}
}

// TestDifferentialFaultFreeUnchanged guards the off switch: a spec with
// a nil fault profile must produce a fingerprint byte-identical to a
// pre-fault run — no new Extra keys, no Faults part.
func TestDifferentialFaultFreeUnchanged(t *testing.T) {
	rep, err := workload.Run(workload.Spec{
		Scheme: workload.SchemeRMAMCS,
		P:      16, ProcsPerNode: 4,
		Seed:  11,
		Iters: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	fp := rep.Fingerprint()
	for _, frag := range []string{"faults=", "lat_p99", "timeouts"} {
		if strings.Contains(fp, frag) {
			t.Errorf("fault-free fingerprint contains %q: %s", frag, fp)
		}
	}
}

// TestFaultConformanceCapabilityRejection types the timeout capability
// gate: requesting bounded acquires against the MCS-queue schemes must
// fail fast with a *scheme.CapabilityError naming CapTimeout, on every
// engine.
func TestFaultConformanceCapabilityRejection(t *testing.T) {
	prof, err := fault.Parse("timeout=100us")
	if err != nil {
		t.Fatal(err)
	}
	for _, sch := range []string{workload.SchemeDMCS, workload.SchemeRMAMCS, workload.SchemeRMARW} {
		for _, ec := range engineCases[:3] {
			_, err := workload.Run(workload.Spec{
				Scheme: sch, P: 8, ProcsPerNode: 4, Iters: 2,
				Faults: prof, Engine: ec.engine,
			})
			var capErr *scheme.CapabilityError
			if !errors.As(err, &capErr) {
				t.Fatalf("%s/%s: got %v, want *scheme.CapabilityError", sch, ec.name, err)
			}
			if capErr.Scheme != sch || !capErr.Need.Has(scheme.CapTimeout) {
				t.Errorf("%s: CapabilityError = %+v", sch, capErr)
			}
		}
	}
}

// TestAbortConformanceAcrossEngines is the unified teardown gate: the
// two typed abort conditions — sim.ErrTimeLimit and the bounded-acquire
// ErrRetriesExhausted — must round-trip through errors.Is identically
// on all three engines.
func TestAbortConformanceAcrossEngines(t *testing.T) {
	engines := []string{rma.EngineFast, rma.EngineRef, rma.EnginePSim}
	t.Run("time-limit", func(t *testing.T) {
		for _, eng := range engines {
			_, err := workload.Run(workload.Spec{
				Scheme: workload.SchemeFoMPISpin,
				P:      8, ProcsPerNode: 4,
				Iters: 50, TimeLimit: 50_000,
				Engine: eng,
			})
			if !errors.Is(err, sim.ErrTimeLimit) {
				t.Errorf("%s: got %v, want errors.Is(_, sim.ErrTimeLimit)", eng, err)
			}
		}
	})
	t.Run("retries-exhausted", func(t *testing.T) {
		// A 1ns timeout with zero retries cannot succeed under write
		// contention; onexhaust=abort must surface the typed sentinel.
		prof, err := fault.Parse("timeout=1ns,retries=0,onexhaust=abort")
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range engines {
			_, err := workload.Run(workload.Spec{
				Scheme: workload.SchemeFoMPISpin,
				P:      8, ProcsPerNode: 4,
				Iters:   10,
				Profile: workload.Uniform{FW: 1},
				Faults:  prof,
				Engine:  eng,
			})
			if !errors.Is(err, workload.ErrRetriesExhausted) {
				t.Errorf("%s: got %v, want errors.Is(_, workload.ErrRetriesExhausted)", eng, err)
			}
		}
	})
}

// TestFaultConformanceSeedSensitivity pins that the fault stream really
// is keyed by the seed: two different fault seeds must (with these
// perturbation magnitudes) produce different fingerprints, while two
// identical ones are byte-identical.
func TestFaultConformanceSeedSensitivity(t *testing.T) {
	run := func(faultSeed int64) string {
		prof := perturbProfile(t)
		prof.Seed = faultSeed
		rep, err := workload.Run(workload.Spec{
			Scheme: workload.SchemeFoMPISpin,
			P:      16, ProcsPerNode: 4,
			Seed:     11,
			Iters:    12,
			Profile:  workload.Uniform{FW: 0.5, NumLocks: 2},
			Workload: &workload.SharedOp{},
			Faults:   prof,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Fingerprint()
	}
	a1, a2, b := run(1), run(1), run(2)
	if a1 != a2 {
		t.Errorf("same fault seed diverged:\n a: %s\n b: %s", a1, a2)
	}
	if a1 == b {
		t.Error("different fault seeds produced identical fingerprints")
	}
	if !strings.Contains(a1, "seed=1") || !strings.Contains(b, "seed=2") {
		t.Errorf("fault seed missing from fingerprints:\n a: %s\n b: %s", a1, b)
	}
}
