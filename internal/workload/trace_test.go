package workload_test

// Trace-wiring tests: the trace-derived report fields, their gating
// (untraced reports must be byte-identical to pre-trace ones), and the
// acceptance assertion of the paper's locality claim — RMA-MCS's
// locality thresholds must yield a strictly higher intra-element
// handoff fraction than the FIFO D-MCS queue on the same contended
// cell.

import (
	"strings"
	"testing"

	"rmalocks/internal/trace"
	"rmalocks/internal/workload"
)

// contendedSpec is one single-lock, all-write, fully contended cell on
// a 4-node machine: every acquisition fights every rank, so handoff
// order is entirely up to the lock's policy.
func contendedSpec(scheme string, sink *trace.Sink) workload.Spec {
	return workload.Spec{
		Scheme: scheme,
		P:      32, ProcsPerNode: 8,
		Seed:     7,
		Iters:    60,
		Profile:  workload.Uniform{FW: 1},
		Workload: workload.Empty{},
		Trace:    sink,
	}
}

// TestHandoffLocalityRMAMCSBeatsDMCS is the paper's central locality
// claim made measurable: on the same contended grid cell, RMA-MCS
// (T_L passes inside the element before releasing upward) must show a
// strictly higher intra-element handoff fraction than the
// topology-oblivious D-MCS FIFO queue.
func TestHandoffLocalityRMAMCSBeatsDMCS(t *testing.T) {
	frac := func(scheme string) (float64, []int64) {
		sink := trace.New(trace.ClassLock)
		rep, err := workload.Run(contendedSpec(scheme, sink))
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if rep.HandoffLocality == nil {
			t.Fatalf("%s: traced run missing HandoffLocality", scheme)
		}
		// Intra-element = distance < MaxDistance (0: same rank, 1: same
		// node on the two-level machine).
		cutoff := len(rep.HandoffLocality) - 2
		return trace.FractionAtMost(rep.HandoffLocality, cutoff), rep.HandoffLocality
	}
	mcsFrac, mcsHist := frac(workload.SchemeRMAMCS)
	dmcsFrac, dmcsHist := frac(workload.SchemeDMCS)
	t.Logf("RMA-MCS intra-element fraction %.3f (hist %v), D-MCS %.3f (hist %v)",
		mcsFrac, mcsHist, dmcsFrac, dmcsHist)
	if !(mcsFrac > dmcsFrac) {
		t.Fatalf("locality claim violated: RMA-MCS intra fraction %.3f not > D-MCS %.3f",
			mcsFrac, dmcsFrac)
	}
}

// TestTraceReportFields checks the traced report surface: fairness in
// (0, 1], a histogram whose mass equals the measured handoffs, and a
// stream that passes replay validation end to end.
func TestTraceReportFields(t *testing.T) {
	sink := trace.New(trace.ClassSemantic)
	rep, err := workload.Run(contendedSpec(workload.SchemeRMAMCS, sink))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fairness <= 0 || rep.Fairness > 1 {
		t.Fatalf("Fairness = %v, want in (0, 1]", rep.Fairness)
	}
	var handoffs int64
	for _, c := range rep.HandoffLocality {
		handoffs += c
	}
	if handoffs <= 0 {
		t.Fatalf("empty handoff histogram: %v", rep.HandoffLocality)
	}
	// The full stream (warm-up included) must replay cleanly: matched
	// acquire/release pairs, mutual exclusion, canonical order.
	if err := trace.Validate(sink.Events()); err != nil {
		t.Fatalf("replay validation failed: %v", err)
	}

	// Untraced run of the same spec: identical everywhere except the
	// trace-only fields.
	untraced, err := workload.Run(contendedSpec(workload.SchemeRMAMCS, nil))
	if err != nil {
		t.Fatal(err)
	}
	if untraced.Fairness != 0 || untraced.HandoffLocality != nil {
		t.Fatalf("untraced report carries trace fields: %+v", untraced)
	}
	stripped := rep
	stripped.Fairness = 0
	stripped.HandoffLocality = nil
	if stripped.Fingerprint() != untraced.Fingerprint() {
		t.Fatalf("tracing changed the simulation:\ntraced:   %s\nuntraced: %s",
			stripped.Fingerprint(), untraced.Fingerprint())
	}

	// Traced runs are deterministic including the trace-derived fields.
	rep2, err := workload.Run(contendedSpec(workload.SchemeRMAMCS, trace.New(trace.ClassSemantic)))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Fingerprint() != rep.Fingerprint() {
		t.Fatalf("traced fingerprint not reproducible:\n a: %s\n b: %s",
			rep.Fingerprint(), rep2.Fingerprint())
	}
}

// TestFingerprintTraceGatingAndExtraOrder pins Fingerprint determinism
// for the new fields: the Extra map encodes in sorted-key order
// regardless of insertion order, untraced fingerprints contain no trace
// section (so pre-trace baselines keep matching byte-for-byte), and
// traced fingerprints include both new fields.
func TestFingerprintTraceGatingAndExtraOrder(t *testing.T) {
	base := workload.Report{Scheme: "s", Workload: "w", Profile: "p", P: 4}

	a := base
	a.Extra = map[string]float64{}
	a.Extra["stored"] = 12
	a.Extra["overflows"] = 1
	a.Extra["counter"] = 3
	b := base
	b.Extra = map[string]float64{}
	b.Extra["counter"] = 3
	b.Extra["overflows"] = 1
	b.Extra["stored"] = 12
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("Extra insertion order leaked into the fingerprint:\n a: %s\n b: %s",
			a.Fingerprint(), b.Fingerprint())
	}
	if !strings.Contains(a.Fingerprint(), "counter=3;overflows=1;stored=12;") {
		t.Fatalf("Extra keys not sorted: %s", a.Fingerprint())
	}

	if fp := base.Fingerprint(); strings.Contains(fp, "fair=") {
		t.Fatalf("untraced fingerprint must not carry trace fields: %s", fp)
	}
	traced := base
	traced.Fairness = 0.5
	traced.HandoffLocality = []int64{1, 2, 3}
	fp := traced.Fingerprint()
	if !strings.Contains(fp, "fair=0.5") || !strings.Contains(fp, "hloc=[1 2 3]") {
		t.Fatalf("traced fingerprint missing trace fields: %s", fp)
	}
	// A traced run with zero measured handoffs still differs from an
	// untraced one (non-nil empty histogram keeps the gate on).
	tracedEmpty := base
	tracedEmpty.HandoffLocality = []int64{}
	if tracedEmpty.Fingerprint() == base.Fingerprint() {
		t.Fatal("traced-with-no-handoffs fingerprint must still be marked as traced")
	}
}
