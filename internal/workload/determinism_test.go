package workload_test

// Determinism regression: for every scheme, two runs of the same Spec
// (same MachineSpec.Seed) must produce byte-identical workload reports
// and equal MaxClock. This is the substrate every reproducibility claim
// in the repository rests on.

import (
	"testing"

	"rmalocks/internal/workload"
)

// mkSpec builds a fresh Spec (workloads carry per-run state, so each run
// gets its own instance).
func mkSpec(scheme string, seed int64) workload.Spec {
	return workload.Spec{
		Scheme: scheme,
		P:      16, ProcsPerNode: 4,
		Seed:     seed,
		Iters:    15,
		Profile:  workload.NewZipf(4, 1.2, 0.3),
		Workload: &workload.SharedOp{},
	}
}

func TestDeterminismAllSchemes(t *testing.T) {
	for _, scheme := range workload.Schemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			a, err := workload.Run(mkSpec(scheme, 7))
			if err != nil {
				t.Fatal(err)
			}
			b, err := workload.Run(mkSpec(scheme, 7))
			if err != nil {
				t.Fatal(err)
			}
			if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
				t.Errorf("same seed, different reports:\n a: %s\n b: %s", fa, fb)
			}
			if a.MaxClock != b.MaxClock {
				t.Errorf("MaxClock differs: %d vs %d", a.MaxClock, b.MaxClock)
			}
		})
	}
}

func TestDeterminismSeedSensitivity(t *testing.T) {
	// A different seed must actually change the run (the RNG is wired
	// through); otherwise the determinism test above proves nothing.
	a, err := workload.Run(mkSpec(workload.SchemeRMARW, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Run(mkSpec(workload.SchemeRMARW, 8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different seeds produced identical reports; RNG not wired through")
	}
}

func TestDeterminismDHT(t *testing.T) {
	mk := func() workload.Spec {
		return workload.Spec{
			Scheme: workload.SchemeRMARW,
			P:      8, ProcsPerNode: 4,
			Seed:  5,
			Iters: 12, Warmup: -1,
			Profile:  workload.Uniform{FW: 0.4},
			Workload: &workload.DHTOps{Slots: 64, Cells: 256},
			Skip:     func(rank, procs int) bool { return rank == 0 },
		}
	}
	a, err := workload.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() || a.MaxClock != b.MaxClock {
		t.Errorf("DHT run not reproducible:\n a: %s\n b: %s", a.Fingerprint(), b.Fingerprint())
	}
}
