// Package workload is the unified workload subsystem: it decouples the
// three axes every benchmark in this repository varies —
//
//   - which lock scheme runs (any locks.Mutex / locks.RWMutex),
//   - what the critical section does (the Workload interface),
//   - how contention arrives (the Profile interface: uniform,
//     Zipf-skewed, bursty, time-varying reader/writer ratio),
//
// — behind one generic harness (Run) that produces unified
// throughput/latency reports via internal/stats. The former hard-coded
// drivers in internal/bench (RunMutex, RunRW, RunDHT) are thin adapters
// over this package; cmd/workbench enumerates scheme × workload ×
// profile grids directly.
//
// Everything is driven by the machine's per-process seeded RNG, so a run
// is a deterministic function of (Spec, MachineSpec.Seed).
package workload

import (
	"rmalocks/internal/dht"
	"rmalocks/internal/rma"
)

// Workload supplies the critical-section body of a benchmark iteration
// plus its setup and result extraction. Implementations allocate any
// window state in Setup (before Machine.Run) and must draw randomness
// only from p.Rand().
type Workload interface {
	// Name is a short stable identifier ("empty", "sharedop", …).
	Name() string
	// Setup allocates and initializes window state; called once per run,
	// before Machine.Run.
	Setup(m *rma.Machine)
	// Body runs while the lock selected by in.Lock is held (shared if
	// !in.Write, exclusive otherwise; always exclusive for plain mutex
	// schemes).
	Body(p *rma.Proc, in Intent)
	// Extract adds workload-specific results to the report after a run
	// (e.g. elements stored in a hashtable).
	Extract(m *rma.Machine, r *Report)
}

// Empty is the empty-critical-section workload (the paper's ECSB/LB/WARB
// bodies): the lock protocol itself is the entire cost.
type Empty struct{}

func (Empty) Name() string                  { return "empty" }
func (Empty) Setup(*rma.Machine)            {}
func (Empty) Body(*rma.Proc, Intent)        {}
func (Empty) Extract(*rma.Machine, *Report) {}

// SharedOp performs one remote memory access to a shared word on a
// random rank (the paper's SOB, modelling fine-grained graph
// processing): writers Put, readers Get.
type SharedOp struct {
	off int
}

func (*SharedOp) Name() string { return "sharedop" }

func (w *SharedOp) Setup(m *rma.Machine) { w.off = m.Alloc(1) }

func (w *SharedOp) Body(p *rma.Proc, in Intent) {
	target := p.Rand().Intn(p.Machine().Procs())
	if in.Write {
		p.Put(1, target, w.off)
	} else {
		p.Get(target, w.off)
	}
	p.Flush(target)
}

func (*SharedOp) Extract(*rma.Machine, *Report) {}

// CounterCompute increments a shared counter on rank 0 and then computes
// locally for ComputeNs plus a uniform draw in [0, JitterNs) (the
// paper's WCSB: a workload-heavy critical section).
type CounterCompute struct {
	// ComputeNs is the base local compute time (default 1000 ns).
	ComputeNs int64
	// JitterNs adds a uniform draw in [0, JitterNs) (default 3000 ns).
	JitterNs int64

	off int
}

func (*CounterCompute) Name() string { return "counter" }

func (w *CounterCompute) Setup(m *rma.Machine) { w.off = m.Alloc(1) }

func (w *CounterCompute) Body(p *rma.Proc, in Intent) {
	base, jitter := w.ComputeNs, w.JitterNs
	if base <= 0 {
		base = 1000
	}
	if jitter <= 0 {
		jitter = 3000
	}
	p.Accumulate(1, 0, w.off, rma.OpSum)
	p.Flush(0)
	p.Compute(base + p.Rand().Int63n(jitter))
}

func (w *CounterCompute) Extract(m *rma.Machine, r *Report) {
	r.Extra["counter"] = float64(m.At(0, w.off))
}

// DHTOps runs key-value operations against the distributed hashtable of
// the paper's §5.3: a write intent inserts a uniformly random key, a
// read intent looks one up. With ShardByLock, lock k of the set guards
// the volume of rank k (a sharded store whose per-volume contention
// follows the profile's lock distribution); otherwise every operation
// targets the single volume Vol, as in the paper's benchmark.
type DHTOps struct {
	// Slots and Cells give the per-volume geometry (defaults 512 and
	// 4096).
	Slots, Cells int
	// Vol is the single target volume when ShardByLock is false.
	Vol int
	// Keyspace bounds the random keys (default 1<<30).
	Keyspace int64
	// Atomic selects the lock-free CAS/FAO operation family (the paper's
	// foMPI-A, run without any lock); otherwise the Plain family is used
	// and the surrounding lock provides exclusion.
	Atomic bool
	// ShardByLock maps lock index to volume rank. Only sound when the
	// profile's lock-set size is at most the process count, so no two
	// locks guard the same volume.
	ShardByLock bool

	// Table is the underlying hashtable, populated by Setup.
	Table *dht.Table
}

func (*DHTOps) Name() string { return "dht" }

func (w *DHTOps) Setup(m *rma.Machine) {
	slots, cells := w.Slots, w.Cells
	if slots <= 0 {
		slots = 512
	}
	if cells <= 0 {
		cells = 4096
	}
	if w.Keyspace <= 0 {
		w.Keyspace = 1 << 30
	}
	w.Table = dht.New(m, slots, cells)
}

func (w *DHTOps) volume(p *rma.Proc, in Intent) int {
	if w.ShardByLock {
		return in.Lock % p.Machine().Procs()
	}
	return w.Vol
}

func (w *DHTOps) Body(p *rma.Proc, in Intent) {
	vol := w.volume(p, in)
	key := p.Rand().Int63n(w.Keyspace)
	switch {
	case in.Write && w.Atomic:
		w.Table.AtomicInsert(p, vol, key)
	case in.Write:
		w.Table.PlainInsert(p, vol, key)
	case w.Atomic:
		w.Table.AtomicLookup(p, vol, key)
	default:
		w.Table.PlainLookup(p, vol, key)
	}
}

func (w *DHTOps) Extract(m *rma.Machine, r *Report) {
	stored := 0
	if w.ShardByLock {
		for vol := 0; vol < m.Procs(); vol++ {
			stored += w.Table.Count(m, vol)
		}
	} else {
		stored = w.Table.Count(m, w.Vol)
	}
	r.Extra["stored"] = float64(stored)
	r.Extra["overflows"] = float64(w.Table.Overflows)
}

// WorkloadNames lists the named critical-section workloads for CLI
// dispatch.
var WorkloadNames = []string{"empty", "sharedop", "counter", "dht"}

// ByName builds one of the named workloads with default geometry. Fresh
// value per call: workloads carry per-run state.
func ByName(name string) (Workload, error) {
	switch name {
	case "empty":
		return Empty{}, nil
	case "sharedop":
		return &SharedOp{}, nil
	case "counter":
		return &CounterCompute{}, nil
	case "dht":
		return &DHTOps{ShardByLock: true}, nil
	default:
		return nil, errUnknown("workload", name, WorkloadNames)
	}
}
