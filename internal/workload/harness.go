package workload

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"

	"rmalocks/internal/fault"
	"rmalocks/internal/locks"
	"rmalocks/internal/locks/dmcs"
	"rmalocks/internal/locks/fompi"
	"rmalocks/internal/locks/rmamcs"
	"rmalocks/internal/locks/rmarw"
	"rmalocks/internal/obs"
	"rmalocks/internal/rma"
	"rmalocks/internal/scheme"
	"rmalocks/internal/stats"
	"rmalocks/internal/topology"
	"rmalocks/internal/trace"
)

// ErrRetriesExhausted aborts a faulted run whose fault profile sets
// onexhaust=abort once a rank runs out of bounded-acquire retries. It
// surfaces through Run wrapped (errors.Is-visible) identically on all
// three engines, like sim.ErrTimeLimit.
var ErrRetriesExhausted = errors.New("workload: bounded-acquire retries exhausted")

// Lock scheme names understood by the harness, aliased from the lock
// packages' registry names so the layers cannot drift.
const (
	SchemeFoMPISpin = fompi.SchemeSpin
	SchemeDMCS      = dmcs.SchemeName
	SchemeRMAMCS    = rmamcs.SchemeName
	SchemeFoMPIRW   = fompi.SchemeRW
	SchemeRMARW     = rmarw.SchemeName
)

// Schemes lists every lock scheme the harness can run, derived from the
// scheme registry in presentation order: the mutexes (run through a
// writer-only adaptation) followed by the RW locks.
var Schemes = scheme.Names()

// SchemeParams carries the per-scheme tuning knobs of the paper's
// parameter space; zero fields select the defaults of internal/bench.
// It predates the registry's typed Tunables (Spec.Tunables), which
// override it key by key; keys a scheme does not declare are dropped,
// matching the historical leniency of the per-scheme switch.
type SchemeParams struct {
	// TL holds the locality thresholds T_L,i (RMA-MCS and RMA-RW).
	TL []int64
	// TDC is the distributed-counter threshold T_DC (RMA-RW); default
	// one counter per compute node.
	TDC int
	// TR is the reader threshold T_R (RMA-RW); default 1000.
	TR int64
}

// tunables merges the legacy SchemeParams (lenient: keys the scheme
// does not declare are dropped, zero fields stay unset) with the typed
// tunables (strict: validated by the registry), tun winning key by key.
// When the RMA-RW scheme ends up with no locality thresholds at all, it
// receives the harness default T_L,1..2 = (40, 25) — T_W = 1000, the
// paper's Fig. 4c middle — as the historical per-scheme switch did.
// Levels below 2 (machines with racks) take the scheme default
// (rmarw.DefaultTL, the paper's 32); the harness's own runs always
// build two-level machines (topology.ForProcs), so their reports are
// unaffected by that default.
func tunables(d *scheme.Descriptor, m *rma.Machine, ps SchemeParams, tun scheme.Tunables) scheme.Tunables {
	levels := m.Topology().Levels()
	t := scheme.Tunables{}
	if ps.TDC != 0 && d.Accepts("TDC", levels) {
		t["TDC"] = int64(ps.TDC)
	}
	if ps.TR != 0 && d.Accepts("TR", levels) {
		t["TR"] = ps.TR
	}
	for i := 1; i < len(ps.TL) && i <= levels; i++ {
		if key := "TL" + strconv.Itoa(i); ps.TL[i] > 0 && d.Accepts(key, levels) {
			t[key] = ps.TL[i]
		}
	}
	for k, v := range tun {
		t[k] = v
	}
	if d.Name == SchemeRMARW && ps.TL == nil && !hasLevelKey(t, "TL", levels) {
		harnessTL := []int64{0, 40, 25}
		for i := 1; i < len(harnessTL) && i <= levels; i++ {
			t["TL"+strconv.Itoa(i)] = harnessTL[i]
		}
	}
	return t
}

func hasLevelKey(t scheme.Tunables, base string, levels int) bool {
	for i := 1; i <= levels; i++ {
		if _, ok := t[base+strconv.Itoa(i)]; ok {
			return true
		}
	}
	return false
}

// NewLockSet builds n instances of the named scheme on m through the
// scheme registry, so every scheme presents the RWMutex interface
// (mutex-only schemes through a writer-only adaptation). tun overrides
// ps key by key and is validated strictly (typed errors for unknown or
// out-of-range tunables). Call before m.Run.
func NewLockSet(m *rma.Machine, name string, n int, ps SchemeParams, tun scheme.Tunables) ([]locks.RWMutex, error) {
	if n < 1 {
		n = 1
	}
	d, err := scheme.Describe(name)
	if err != nil {
		return nil, err
	}
	t := tunables(&d, m, ps, tun)
	set := make([]locks.RWMutex, n)
	for i := range set {
		l, err := scheme.New(m, name, t)
		if err != nil {
			return nil, err
		}
		set[i] = l
	}
	return set, nil
}

// Spec configures one harness run: a lock scheme (or custom factory), a
// contention profile, a critical-section workload, and the machine
// dimensions. Zero fields select the defaults of the paper's evaluation
// setup.
type Spec struct {
	// Scheme selects the lock scheme (one of Schemes). Ignored when
	// NoLock or Make is set.
	Scheme string
	// Make optionally overrides the lock factory; it must build n
	// RWMutex instances on m before the run starts.
	Make func(m *rma.Machine, n int) ([]locks.RWMutex, error)
	// NoLock runs the workload bodies without any lock (the paper's
	// foMPI-A lock-free baseline; only sound for workloads that are
	// themselves concurrency-safe, such as DHTOps with Atomic).
	NoLock bool

	// P is the process count (default 64).
	P int
	// ProcsPerNode is the machine shape (default 16, the paper's).
	ProcsPerNode int
	// Seed seeds the per-process RNG streams (default 1).
	Seed int64
	// TimeLimit bounds one run in virtual ns (default ~73 virtual
	// minutes), converting protocol livelock into an error.
	TimeLimit int64
	// Latency optionally overrides the machine's latency model
	// (ablation studies).
	Latency func(maxDist int) rma.LatencyModel

	// Iters is the number of measured cycles per participating process
	// (default 50).
	Iters int
	// Warmup is the number of discarded cycles before the measured
	// phase; 0 selects the paper's 10% (Iters/10+1), negative disables
	// warm-up entirely.
	Warmup int
	// Profile is the contention generator (default Uniform{FW: 1}: an
	// all-write single-lock workload).
	Profile Profile
	// Workload is the critical-section body (default Empty).
	Workload Workload
	// Params tunes the scheme (legacy struct form; see Tunables).
	Params SchemeParams
	// Tunables sets scheme tunables by registry key (the paper's typed
	// parameter space, e.g. "TR": 500, "TL2": 16), overriding Params
	// key by key. Unlike Params, Tunables are validated strictly:
	// unknown keys or out-of-range values fail the run with a typed
	// error from internal/scheme. Non-empty tunables are recorded in
	// Report.Tunables and its fingerprint; empty tunables leave reports
	// byte-identical to pre-registry baselines. Ignored when NoLock or
	// Make is set.
	Tunables scheme.Tunables
	// Skip marks ranks that sit out the benchmark loop (they still
	// participate in the start barrier and then exit, like the paper's
	// DHT volume host).
	Skip func(rank, procs int) bool

	// Faults, when non-nil, runs the cell under the deterministic
	// perturbation profile (see internal/fault): jitter, congestion,
	// stragglers and stalls flow into rma.Config.Faults; a Timeout
	// switches lock acquires to the bounded try/backoff/retry path,
	// which requires a scheme with the CapTimeout capability — others
	// fail with a typed *scheme.CapabilityError. Faulted runs stay
	// byte-identical across engines (differential-tested); the profile's
	// canonical string is recorded in Report.Faults and its fingerprint,
	// and degradation metrics (lat_p99/lat_p999, timeout/retry counts)
	// land in Report.Extra. Nil leaves reports byte-identical to
	// fault-free baselines.
	Faults *fault.Profile
	// FaultMetrics forces the tail-latency Extra keys (lat_p99,
	// lat_p999) even on a fault-free run. Sweep grids with a faults axis
	// set it on every cell, so the fault-free baseline cell carries the
	// percentiles the degradation pass divides by.
	FaultMetrics bool

	// Engine selects the scheduler implementation: "" or rma.EngineFast
	// for the token-owned fast-path scheduler, rma.EngineRef for the
	// reference one. The differential determinism suite runs every cell
	// on both and requires byte-identical reports.
	Engine string
	// NoCoalesce disables RMA charge coalescing (verification knob; see
	// rma.Config.NoCoalesce).
	NoCoalesce bool
	// MemStats records host memory cost in Report.Extra after the run:
	// "heap_bytes_per_rank" (live heap / P) and "sys_bytes_per_rank"
	// (total runtime-held memory / P, which includes goroutine stacks —
	// the dominant term when many ranks genuinely interleave). Off by
	// default: the numbers are host-dependent and Extra feeds the report
	// fingerprint, so enabling this forfeits byte-identical comparisons
	// against baselines recorded without it.
	MemStats bool
	// Trace, when non-nil, captures the run's event stream (see
	// internal/trace) and fills Report.Fairness and
	// Report.HandoffLocality from the measured phase. The sink is
	// restarted by the run and left holding the full stream (warm-up
	// included) for export or deeper analysis; it must not be shared by
	// concurrent runs. Tracing never changes the simulation — traced
	// and untraced runs are byte-identical up to the trace-only report
	// fields (differential-tested).
	Trace *trace.Sink
	// Obs, when non-nil, attaches live observability instruments to the
	// run (see internal/obs): setup/run/drain phase spans, a per-rank
	// iteration counter, and — on psim runs — the conservative-gate
	// metrics, with the gate's mutex hold time attributed to the run
	// phase as its serial section. Observe, never perturb: metric values
	// never enter Report.Extra or fingerprints, so obs-on and obs-off
	// runs are byte-identical (test-enforced), unlike MemStats.
	Obs *obs.Metrics
}

func (s *Spec) fill() {
	if s.P == 0 {
		s.P = 64
	}
	if s.ProcsPerNode == 0 {
		s.ProcsPerNode = 16
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.TimeLimit == 0 {
		s.TimeLimit = 1 << 42
	}
	if s.Iters == 0 {
		s.Iters = 50
	}
	if s.Warmup == 0 {
		s.Warmup = s.Iters/10 + 1
	}
	if s.Warmup < 0 {
		s.Warmup = 0
	}
	if s.Profile == nil {
		s.Profile = Uniform{FW: 1}
	}
	if s.Workload == nil {
		s.Workload = Empty{}
	}
}

// Run executes one workload benchmark: build the machine and lock set,
// run Warmup discarded cycles per process, synchronize on a barrier,
// run Iters measured cycles, and summarize. The per-cycle latency spans
// acquire through release (the paper's LB measures exactly this with an
// empty CS); think time is charged after the measurement point.
func Run(spec Spec) (Report, error) {
	spec.fill()
	setupSpan := spec.Obs.Span("setup")
	topo := topology.ForProcs(spec.P, spec.ProcsPerNode)
	gate := spec.Obs.GateMetrics()
	cfg := rma.Config{Seed: spec.Seed, TimeLimit: spec.TimeLimit,
		Engine: spec.Engine, NoCoalesce: spec.NoCoalesce, Trace: spec.Trace,
		Faults: spec.Faults, Gate: gate}
	if spec.Latency != nil {
		lat := spec.Latency(topo.MaxDistance())
		cfg.Latency = &lat
	}
	m := rma.NewMachineConfig(topo, cfg)

	var set []locks.RWMutex
	var err error
	switch {
	case spec.NoLock:
	case spec.Make != nil:
		set, err = spec.Make(m, spec.Profile.Locks())
	default:
		set, err = NewLockSet(m, spec.Scheme, spec.Profile.Locks(), spec.Params, spec.Tunables)
	}
	if err != nil {
		return Report{}, err
	}
	timed, err := timedSet(spec, set)
	if err != nil {
		return Report{}, err
	}
	spec.Workload.Setup(m)

	procs := m.Procs()
	bufs := getRunBufs(procs)
	defer putRunBufs(bufs)
	rlat, wlat, ends := bufs.rlat, bufs.wlat, bufs.ends
	var start int64
	var fc *faultCounters
	if timed != nil {
		fc = newFaultCounters(procs)
	}
	// One per-rank sharded counter per measured cycle is the harness's
	// entire hot-path cost with obs on (a nil-check no-op with it off);
	// the scheduler's Advance fast path is never instrumented.
	var itersDone *obs.ShardedCounter
	if spec.Obs != nil {
		itersDone = spec.Obs.Registry.ShardedCounter("cell_iters_done_total",
			"Measured workload cycles completed, summed over ranks and cells.", procs)
	}
	setupSpan.End()
	runSpan := spec.Obs.Span("run")
	holdBefore := gate.HoldValue()

	runErr := m.Run(func(p *rma.Proc) {
		r := p.Rank()
		if spec.Skip != nil && spec.Skip(r, procs) {
			p.Barrier()
			if r == 0 {
				start = p.Now()
			}
			return
		}
		rl, wl := rlat[r][:0], wlat[r][:0] // reuse pooled capacity
		step := func(it int, measured bool) {
			in := spec.Profile.Next(p, it)
			t0 := p.Now()
			acquired := true
			switch {
			case spec.NoLock:
				spec.Workload.Body(p, in)
			case timed != nil:
				if acquired = acquireTimed(p, timed[in.Lock], in.Write, spec.Faults, fc); acquired {
					spec.Workload.Body(p, in)
					if in.Write {
						timed[in.Lock].ReleaseWrite(p)
					} else {
						timed[in.Lock].ReleaseRead(p)
					}
				}
			case in.Write:
				lk := set[in.Lock]
				lk.AcquireWrite(p)
				spec.Workload.Body(p, in)
				lk.ReleaseWrite(p)
			default:
				lk := set[in.Lock]
				lk.AcquireRead(p)
				spec.Workload.Body(p, in)
				lk.ReleaseRead(p)
			}
			if measured && acquired {
				d := float64(p.Now()-t0) / 1e3 // µs
				if in.Write {
					wl = append(wl, d)
				} else {
					rl = append(rl, d)
				}
			}
			if in.Think > 0 {
				p.Compute(in.Think)
			}
		}
		for i := 0; i < spec.Warmup; i++ {
			step(i, false)
		}
		p.Barrier() // clocks align here
		if r == 0 {
			start = p.Now()
		}
		for i := 0; i < spec.Iters; i++ {
			step(i, true)
			itersDone.Add(r, 1)
		}
		ends[r] = p.Now()
		rlat[r], wlat[r] = rl, wl
	})
	// The run phase's serial section is the gate-mutex hold time this run
	// added (zero on the sequential engines, which have no gate).
	runSpan.EndSerial(gate.HoldValue() - holdBefore)
	if runErr != nil {
		return Report{}, fmt.Errorf("workload: %s/%s/%s P=%d: %w",
			specScheme(spec), spec.Workload.Name(), spec.Profile.Name(), spec.P, runErr)
	}

	drainSpan := spec.Obs.Span("drain")
	rep := summarize(spec, m, start, bufs)
	rep.DirectEntries = directEntries(set)
	if !spec.NoLock && spec.Make == nil && len(spec.Tunables) > 0 {
		rep.Tunables = spec.Tunables.Canonical()
	}
	if spec.Faults != nil {
		rep.Faults = spec.Faults.Canonical()
	}
	if spec.FaultMetrics || spec.Faults != nil {
		// Tail latencies for the degradation pass (sweep.ApplyDegradation
		// divides a faulted cell's tails by its fault-free baseline's).
		// bufs.all was sorted by summarize.
		rep.Extra["lat_p99"] = stats.Percentile(bufs.all, 99)
		rep.Extra["lat_p999"] = stats.Percentile(bufs.all, 99.9)
	}
	if fc != nil {
		fc.apply(&rep)
	}
	if spec.Trace != nil {
		applyTraceMetrics(&rep, spec.Trace, topo, start, spec.Skip)
	}
	if spec.MemStats {
		// Read after the run, while the machine/scheduler buffers are
		// still reachable: HeapAlloc approximates the run's resident
		// simulation state, Sys adds the runtime's stack spans.
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		rep.Extra["heap_bytes_per_rank"] = float64(ms.HeapAlloc) / float64(procs)
		rep.Extra["sys_bytes_per_rank"] = float64(ms.Sys) / float64(procs)
		// runtime/metrics signals (see runtimestats.go): the goroutine
		// count read here, right after the run, is the evidence for the
		// lazy-goroutine claim — ranks that never genuinely interleave
		// never get a goroutine, so it stays far below P at scale.
		rep.Extra["goroutines"] = float64(liveGoroutines())
		rep.Extra["gc_pause_total_ns"] = float64(ms.PauseTotalNs)
	}
	spec.Workload.Extract(m, &rep)
	drainSpan.End()
	return rep, nil
}

// applyTraceMetrics fills the trace-derived report fields from the
// measured phase (events at or after the post-warm-up barrier): the
// Jain fairness index over participating ranks' lock acquisitions, and
// the handoff-locality histogram — topology distance between
// consecutive holders of each lock, the paper's locality claim made
// measurable per cell.
func applyTraceMetrics(rep *Report, sink *trace.Sink, topo *topology.Topology, start int64, skip func(rank, procs int) bool) {
	events := sink.Events()
	// Keep only the measured phase; warm-up handoffs would otherwise
	// skew fairness between cells with different warm-up shares.
	measured := events[:0:0]
	for _, e := range events {
		if e.Clock >= start {
			measured = append(measured, e)
		}
	}
	procs := topo.Procs()
	counts := trace.Acquisitions(measured, procs)
	participant := counts[:0:0]
	for r := 0; r < procs; r++ {
		if skip != nil && skip(r, procs) {
			continue
		}
		participant = append(participant, counts[r])
	}
	rep.Fairness = trace.Jain(participant)
	rep.HandoffLocality = trace.LocalityHist(measured, topo.Distance, topo.MaxDistance())
}

func specScheme(spec Spec) string {
	switch {
	case spec.NoLock:
		return "nolock"
	case spec.Make != nil && spec.Scheme == "":
		return "custom"
	default:
		return spec.Scheme
	}
}

// directEntries sums the intra-element shortcut count over every RMA-MCS
// lock in the set (0 for other schemes), unwrapping both the registry's
// Lock handle and the legacy WriterOnly adaptation (custom Make
// factories).
func directEntries(set []locks.RWMutex) int64 {
	var n int64
	for _, l := range set {
		impl := any(l)
		if sl, ok := l.(scheme.Lock); ok {
			impl = sl.Underlying()
		}
		if w, ok := impl.(locks.WriterOnly); ok {
			impl = w.Mu
		}
		if rl, ok := impl.(*rmamcs.Lock); ok {
			n += rl.DirectEntries
		}
	}
	return n
}

func errUnknown(kind, name string, have []string) error {
	return fmt.Errorf("workload: unknown %s %q (have %v)", kind, name, have)
}
