package workload

import (
	"fmt"
	"sort"
	"sync"

	"rmalocks/internal/rma"
	"rmalocks/internal/stats"
)

// runBufs holds the per-rank sample buffers of one harness run plus the
// summary scratch space. A sync.Pool recycles them across runs, so hot
// sweep loops (repeated cells, -check re-runs, benchmark iterations)
// stop re-allocating report buffers. Nothing in a Report aliases a
// runBufs, so pooling cannot change results.
type runBufs struct {
	rlat, wlat  [][]float64
	ends        []int64
	all, rs, ws []float64
}

var runBufPool = sync.Pool{New: func() any { return &runBufs{} }}

// getRunBufs returns a pooled buffer set sized for procs ranks, with
// ends zeroed and every per-rank sample slice emptied (capacity kept).
func getRunBufs(procs int) *runBufs {
	b := runBufPool.Get().(*runBufs)
	if cap(b.rlat) < procs {
		b.rlat = make([][]float64, procs)
		b.wlat = make([][]float64, procs)
		b.ends = make([]int64, procs)
	} else {
		b.rlat, b.wlat, b.ends = b.rlat[:procs], b.wlat[:procs], b.ends[:procs]
	}
	for i := 0; i < procs; i++ {
		b.rlat[i] = b.rlat[i][:0]
		b.wlat[i] = b.wlat[i][:0]
		b.ends[i] = 0
	}
	return b
}

func putRunBufs(b *runBufs) { runBufPool.Put(b) }

// Report is the unified outcome of one harness run.
type Report struct {
	// Scheme, Workload and Profile identify the grid cell.
	Scheme   string
	Workload string
	Profile  string
	// P is the process count of the machine.
	P int
	// Tunables is the canonical encoding of the scheme tunables the run
	// was constructed with ("TL2=16,TR=500", sorted keys; see
	// internal/scheme). Empty when the run used no explicit tunables,
	// and then omitted from JSON and the Fingerprint, so pre-registry
	// baselines stay byte-identical.
	Tunables string `json:",omitempty"`
	// Faults is the canonical encoding of the fault profile the run was
	// perturbed with (see internal/fault; e.g.
	// "jitter=0.2,stall=50000@0.01", sorted keys). Empty for fault-free
	// runs and then omitted from JSON and the Fingerprint, so fault-free
	// baselines stay byte-identical to pre-fault ones.
	Faults string `json:",omitempty"`

	// Ops is the number of measured cycles (Reads + Writes); WarmupOps
	// counts the discarded warm-up cycles.
	Ops       int64
	Reads     int64
	Writes    int64
	WarmupOps int64

	// ThroughputMops is aggregate measured acquisitions per second, in
	// millions (the paper's "mln locks/s").
	ThroughputMops float64
	// Latency summarizes per-cycle acquire→release virtual latency in
	// µs over all measured cycles; ReadLatency / WriteLatency split it
	// by entry mode.
	Latency      stats.Summary
	ReadLatency  stats.Summary
	WriteLatency stats.Summary

	// MakespanMs is the measured phase's virtual duration.
	MakespanMs float64
	// MaxClock is the total virtual makespan of the run in ns,
	// including warm-up (Machine.MaxClock).
	MaxClock int64
	// RemoteOps counts RMA operations that left their rank.
	RemoteOps int64
	// DirectEntries counts RMA-MCS acquisitions that short-cut into the
	// CS through an intra-element pass (0 for other schemes), including
	// warm-up cycles.
	DirectEntries int64

	// Extra holds workload-specific results (e.g. "stored" for DHTOps).
	Extra map[string]float64

	// Fairness is the Jain fairness index of per-rank lock acquisitions
	// over the measured phase; HandoffLocality is the handoff-distance
	// histogram (index = topology distance between consecutive holders
	// of the same lock: 0 = re-acquire, 1 = intra-node, 2 = cross-node
	// on a two-level machine). Both are computed only for traced runs
	// (Spec.Trace) and omitted from JSON and the Fingerprint otherwise,
	// so untraced baselines stay byte-identical to pre-trace ones.
	Fairness        float64 `json:",omitempty"`
	HandoffLocality []int64 `json:",omitempty"`
}

func (r Report) String() string {
	return fmt.Sprintf("%s/%s/%s P=%d: %.3f mln locks/s, mean latency %.2f µs, makespan %.2f ms",
		r.Scheme, r.Workload, r.Profile, r.P, r.ThroughputMops, r.Latency.Mean, r.MakespanMs)
}

// Fingerprint returns a canonical textual encoding of every field. Two
// runs of the same Spec must produce byte-identical fingerprints; the
// determinism regression tests rely on this. The Extra map is encoded
// in sorted-key order (map iteration order must never leak in), and the
// trace-only fields are appended only when the run was traced, so
// untraced fingerprints are byte-identical to those of pre-trace
// baselines.
func (r Report) Fingerprint() string {
	keys := make([]string, 0, len(r.Extra))
	for k := range r.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	extra := ""
	for _, k := range keys {
		extra += fmt.Sprintf("%s=%v;", k, r.Extra[k])
	}
	tracePart := ""
	if r.HandoffLocality != nil || r.Fairness != 0 {
		tracePart = fmt.Sprintf(" fair=%v hloc=%v", r.Fairness, r.HandoffLocality)
	}
	tunPart := ""
	if r.Tunables != "" {
		tunPart = fmt.Sprintf(" tun=%s", r.Tunables)
	}
	faultPart := ""
	if r.Faults != "" {
		faultPart = fmt.Sprintf(" faults=%s", r.Faults)
	}
	return fmt.Sprintf("%s/%s/%s P=%d ops=%d r=%d w=%d warm=%d thr=%v lat=%+v rlat=%+v wlat=%+v mk=%v clk=%d rem=%d de=%d extra=%s%s%s%s",
		r.Scheme, r.Workload, r.Profile, r.P, r.Ops, r.Reads, r.Writes, r.WarmupOps,
		r.ThroughputMops, r.Latency, r.ReadLatency, r.WriteLatency,
		r.MakespanMs, r.MaxClock, r.RemoteOps, r.DirectEntries, extra, tracePart, tunPart, faultPart)
}

// summarize assembles a Report from the raw per-rank samples in b. The
// summary scratch slices live in b too (SummarizeInPlace sorts them);
// their grown capacity is kept for the next pooled run.
func summarize(spec Spec, m *rma.Machine, start int64, b *runBufs) Report {
	var end int64
	var reads, writes int64
	rlat, wlat, ends := b.rlat, b.wlat, b.ends
	all, rs, ws := b.all[:0], b.rs[:0], b.ws[:0]
	participants := 0
	for r := range ends {
		if spec.Skip != nil && spec.Skip(r, len(ends)) {
			continue
		}
		participants++
		if ends[r] > end {
			end = ends[r]
		}
		reads += int64(len(rlat[r]))
		writes += int64(len(wlat[r]))
		rs = append(rs, rlat[r]...)
		ws = append(ws, wlat[r]...)
		all = append(all, rlat[r]...)
		all = append(all, wlat[r]...)
	}
	b.all, b.rs, b.ws = all, rs, ws
	ops := reads + writes
	return Report{
		Scheme:         specScheme(spec),
		Workload:       spec.Workload.Name(),
		Profile:        spec.Profile.Name(),
		P:              spec.P,
		Ops:            ops,
		Reads:          reads,
		Writes:         writes,
		WarmupOps:      int64(spec.Warmup * participants),
		ThroughputMops: throughputMops(ops, end-start),
		Latency:        stats.SummarizeInPlace(all),
		ReadLatency:    stats.SummarizeInPlace(rs),
		WriteLatency:   stats.SummarizeInPlace(ws),
		MakespanMs:     float64(end-start) / 1e6,
		MaxClock:       m.MaxClock(),
		RemoteOps:      m.Stats().Remote(),
		Extra:          map[string]float64{},
	}
}

// throughputMops converts (ops, makespan ns) to million ops per second.
func throughputMops(ops int64, ns int64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(ops) / float64(ns) * 1e3
}
