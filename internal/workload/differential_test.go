package workload_test

// Differential determinism suite: the token-owned fast-path scheduler
// (internal/sim) against the reference engine (internal/sim/refsim) and
// the conservative parallel engine (internal/sim/psim), and charge
// coalescing (internal/rma) against uncoalesced charging. For every lock
// scheme × contention profile cell, all six engine/coalesce combinations
// must produce byte-identical reports and equal MaxClock — the fast
// path, the coalescer and the parallel gate are pure optimisations,
// never allowed to change a single virtual-time decision. Run under
// -race in CI to also exercise the fast path's lock-free clock
// increments and the parallel engine's cross-goroutine effects.

import (
	"fmt"
	"strings"
	"testing"

	"rmalocks/internal/rma"
	"rmalocks/internal/trace"
	"rmalocks/internal/workload"
)

// diffProfiles returns fresh instances of every contention generator
// (profiles are stateless values, but build them per call anyway).
func diffProfiles() []workload.Profile {
	return []workload.Profile{
		workload.Uniform{FW: 0.2, NumLocks: 4},
		workload.NewZipf(4, 1.2, 0.3),
		workload.Bursty{FW: 0.3, Desync: true},
		workload.RWSweep{FWStart: 0, FWEnd: 1, Span: 12},
	}
}

type engineCase struct {
	name       string
	engine     string
	noCoalesce bool
}

var engineCases = []engineCase{
	{"fast", rma.EngineFast, false},
	{"fast-nocoalesce", rma.EngineFast, true},
	{"ref", rma.EngineRef, false},
	{"ref-nocoalesce", rma.EngineRef, true},
	{"psim", rma.EnginePSim, false},
	{"psim-nocoalesce", rma.EnginePSim, true},
}

func TestDifferentialEnginesAllSchemesProfiles(t *testing.T) {
	for _, scheme := range workload.Schemes {
		for pi := range diffProfiles() {
			scheme, pi := scheme, pi
			t.Run(fmt.Sprintf("%s/%s", scheme, diffProfiles()[pi].Name()), func(t *testing.T) {
				t.Parallel()
				var baseFP string
				var baseClock int64
				for i, ec := range engineCases {
					spec := workload.Spec{
						Scheme: scheme,
						P:      16, ProcsPerNode: 4,
						Seed:     11,
						Iters:    12,
						Profile:  diffProfiles()[pi],
						Workload: &workload.SharedOp{},
						Engine:   ec.engine, NoCoalesce: ec.noCoalesce,
					}
					rep, err := workload.Run(spec)
					if err != nil {
						t.Fatalf("%s: %v", ec.name, err)
					}
					fp := rep.Fingerprint()
					if i == 0 {
						baseFP, baseClock = fp, rep.MaxClock
						continue
					}
					if fp != baseFP {
						t.Errorf("%s diverged from %s:\n a: %s\n b: %s",
							ec.name, engineCases[0].name, baseFP, fp)
					}
					if rep.MaxClock != baseClock {
						t.Errorf("%s MaxClock %d != %d", ec.name, rep.MaxClock, baseClock)
					}
				}
			})
		}
	}
}

// semanticLines renders the merged event stream one event per line with
// every semantically meaningful field: clock, rank, kind, args. Two
// normalizations against raw WriteCSV output: EvDispatch is dropped (the
// parallel engine has no execution token, so token-handoff events exist
// only on the sequential engines) and Seq is omitted (dispatch events
// consume per-rank sequence numbers, shifting them; the canonical merge
// order already encodes what Seq pins — per-rank program order).
func semanticLines(events []trace.Event) string {
	var b strings.Builder
	for _, e := range events {
		if e.Kind == trace.EvDispatch {
			continue
		}
		fmt.Fprintf(&b, "%d,%d,%s,%d,%d,%d\n", e.Clock, e.Rank, e.Kind, e.Arg0, e.Arg1, e.Arg2)
	}
	return b.String()
}

// TestDifferentialTraceStreams is the trace ↔ coalescing interplay
// gate: for every engine × coalescing combination, the merged semantic
// event stream (scheduler handoffs, RMA ops, lock protocol — everything
// except the ClassCharge publication diagnostics) must be byte-identical,
// and must replay cleanly through trace.Validate. Charge coalescing may
// move *when* virtual time is published, but never when anything
// observable happens; this test pins that at per-event granularity.
// The sequential engines must match on the raw CSV (including EvDispatch
// handoffs and Seq numbers); psim must match them on the dispatch-free
// semantic rendering (see semanticLines) — every block, wake, barrier,
// op and lock event at the same clock with the same arguments.
// Runs under -race in CI (the race job's Differential pattern), which
// also exercises the lock-free emission path of the fast engine and the
// parallel engine's gate.
func TestDifferentialTraceStreams(t *testing.T) {
	for _, scheme := range workload.Schemes {
		scheme := scheme
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			var baseCSV, baseSem string
			for i, ec := range engineCases {
				sink := trace.New(trace.ClassSemantic)
				spec := workload.Spec{
					Scheme: scheme,
					P:      16, ProcsPerNode: 4,
					Seed:     13,
					Iters:    10,
					Profile:  workload.Uniform{FW: 0.5, NumLocks: 2},
					Workload: &workload.SharedOp{},
					Engine:   ec.engine, NoCoalesce: ec.noCoalesce,
					Trace: sink,
				}
				if _, err := workload.Run(spec); err != nil {
					t.Fatalf("%s: %v", ec.name, err)
				}
				events := sink.Events()
				if err := trace.Validate(events); err != nil {
					t.Fatalf("%s: replay validation: %v", ec.name, err)
				}
				var b strings.Builder
				if err := trace.WriteCSV(&b, events); err != nil {
					t.Fatal(err)
				}
				sem := semanticLines(events)
				if i == 0 {
					baseCSV, baseSem = b.String(), sem
					if len(events) == 0 {
						t.Fatal("empty event stream")
					}
					continue
				}
				got := b.String()
				if ec.engine == rma.EnginePSim {
					got = sem // no dispatch events: compare the semantic rendering
				}
				want := baseCSV
				if ec.engine == rma.EnginePSim {
					want = baseSem
				}
				if got != want {
					t.Errorf("%s event stream diverged from %s (%d vs %d lines)",
						ec.name, engineCases[0].name,
						strings.Count(got, "\n"), strings.Count(want, "\n"))
					// Show the first diverging line for debugging.
					a, bb := strings.Split(want, "\n"), strings.Split(got, "\n")
					for j := 0; j < len(a) && j < len(bb); j++ {
						if a[j] != bb[j] {
							t.Errorf("first divergence at line %d:\n a: %s\n b: %s", j, a[j], bb[j])
							break
						}
					}
				}
			}
		})
	}
}

// TestDifferentialDHT pins the engines against each other on the DHT
// workload (Skip rank, sharded locks): the heaviest user of SpinUntil
// wake-ups and therefore of the horizon-shrink path.
func TestDifferentialDHT(t *testing.T) {
	mk := func(engine string, noCoalesce bool) workload.Spec {
		return workload.Spec{
			Scheme: workload.SchemeRMARW,
			P:      8, ProcsPerNode: 4,
			Seed:  5,
			Iters: 10, Warmup: -1,
			Profile:  workload.Uniform{FW: 0.4},
			Workload: &workload.DHTOps{Slots: 64, Cells: 256},
			Skip:     func(rank, procs int) bool { return rank == 0 },
			Engine:   engine, NoCoalesce: noCoalesce,
		}
	}
	var baseFP string
	for i, ec := range engineCases {
		rep, err := workload.Run(mk(ec.engine, ec.noCoalesce))
		if err != nil {
			t.Fatalf("%s: %v", ec.name, err)
		}
		if i == 0 {
			baseFP = rep.Fingerprint()
			continue
		}
		if fp := rep.Fingerprint(); fp != baseFP {
			t.Errorf("%s diverged:\n a: %s\n b: %s", ec.name, baseFP, fp)
		}
	}
}

// TestDifferentialWorkloads sweeps the remaining critical-section bodies
// (empty, counter) on both engines at a writer-heavy mix.
func TestDifferentialWorkloads(t *testing.T) {
	for _, wname := range []string{"empty", "counter"} {
		wname := wname
		t.Run(wname, func(t *testing.T) {
			t.Parallel()
			var baseFP string
			for i, ec := range engineCases {
				wl, err := workload.ByName(wname)
				if err != nil {
					t.Fatal(err)
				}
				spec := workload.Spec{
					Scheme: workload.SchemeRMAMCS,
					P:      16, ProcsPerNode: 4,
					Seed:     3,
					Iters:    10,
					Profile:  workload.Uniform{FW: 1},
					Workload: wl,
					Engine:   ec.engine, NoCoalesce: ec.noCoalesce,
				}
				rep, err := workload.Run(spec)
				if err != nil {
					t.Fatalf("%s: %v", ec.name, err)
				}
				if i == 0 {
					baseFP = rep.Fingerprint()
					continue
				}
				if fp := rep.Fingerprint(); fp != baseFP {
					t.Errorf("%s diverged:\n a: %s\n b: %s", ec.name, baseFP, fp)
				}
			}
		})
	}
}
