package workload_test

// Differential determinism suite: the token-owned fast-path scheduler
// (internal/sim) against the reference engine (internal/sim/refsim), and
// charge coalescing (internal/rma) against uncoalesced charging. For
// every lock scheme × contention profile cell, all four engine/coalesce
// combinations must produce byte-identical reports and equal MaxClock —
// the fast path and the coalescer are pure optimisations, never allowed
// to change a single virtual-time decision. Run under -race in CI to
// also exercise the fast path's lock-free clock increments.

import (
	"fmt"
	"testing"

	"rmalocks/internal/rma"
	"rmalocks/internal/workload"
)

// diffProfiles returns fresh instances of every contention generator
// (profiles are stateless values, but build them per call anyway).
func diffProfiles() []workload.Profile {
	return []workload.Profile{
		workload.Uniform{FW: 0.2, NumLocks: 4},
		workload.NewZipf(4, 1.2, 0.3),
		workload.Bursty{FW: 0.3, Desync: true},
		workload.RWSweep{FWStart: 0, FWEnd: 1, Span: 12},
	}
}

type engineCase struct {
	name       string
	engine     string
	noCoalesce bool
}

var engineCases = []engineCase{
	{"fast", rma.EngineFast, false},
	{"fast-nocoalesce", rma.EngineFast, true},
	{"ref", rma.EngineRef, false},
	{"ref-nocoalesce", rma.EngineRef, true},
}

func TestDifferentialEnginesAllSchemesProfiles(t *testing.T) {
	for _, scheme := range workload.Schemes {
		for pi := range diffProfiles() {
			scheme, pi := scheme, pi
			t.Run(fmt.Sprintf("%s/%s", scheme, diffProfiles()[pi].Name()), func(t *testing.T) {
				t.Parallel()
				var baseFP string
				var baseClock int64
				for i, ec := range engineCases {
					spec := workload.Spec{
						Scheme: scheme,
						P:      16, ProcsPerNode: 4,
						Seed:     11,
						Iters:    12,
						Profile:  diffProfiles()[pi],
						Workload: &workload.SharedOp{},
						Engine:   ec.engine, NoCoalesce: ec.noCoalesce,
					}
					rep, err := workload.Run(spec)
					if err != nil {
						t.Fatalf("%s: %v", ec.name, err)
					}
					fp := rep.Fingerprint()
					if i == 0 {
						baseFP, baseClock = fp, rep.MaxClock
						continue
					}
					if fp != baseFP {
						t.Errorf("%s diverged from %s:\n a: %s\n b: %s",
							ec.name, engineCases[0].name, baseFP, fp)
					}
					if rep.MaxClock != baseClock {
						t.Errorf("%s MaxClock %d != %d", ec.name, rep.MaxClock, baseClock)
					}
				}
			})
		}
	}
}

// TestDifferentialDHT pins the engines against each other on the DHT
// workload (Skip rank, sharded locks): the heaviest user of SpinUntil
// wake-ups and therefore of the horizon-shrink path.
func TestDifferentialDHT(t *testing.T) {
	mk := func(engine string, noCoalesce bool) workload.Spec {
		return workload.Spec{
			Scheme: workload.SchemeRMARW,
			P:      8, ProcsPerNode: 4,
			Seed:  5,
			Iters: 10, Warmup: -1,
			Profile:  workload.Uniform{FW: 0.4},
			Workload: &workload.DHTOps{Slots: 64, Cells: 256},
			Skip:     func(rank, procs int) bool { return rank == 0 },
			Engine:   engine, NoCoalesce: noCoalesce,
		}
	}
	var baseFP string
	for i, ec := range engineCases {
		rep, err := workload.Run(mk(ec.engine, ec.noCoalesce))
		if err != nil {
			t.Fatalf("%s: %v", ec.name, err)
		}
		if i == 0 {
			baseFP = rep.Fingerprint()
			continue
		}
		if fp := rep.Fingerprint(); fp != baseFP {
			t.Errorf("%s diverged:\n a: %s\n b: %s", ec.name, baseFP, fp)
		}
	}
}

// TestDifferentialWorkloads sweeps the remaining critical-section bodies
// (empty, counter) on both engines at a writer-heavy mix.
func TestDifferentialWorkloads(t *testing.T) {
	for _, wname := range []string{"empty", "counter"} {
		wname := wname
		t.Run(wname, func(t *testing.T) {
			t.Parallel()
			var baseFP string
			for i, ec := range engineCases {
				wl, err := workload.ByName(wname)
				if err != nil {
					t.Fatal(err)
				}
				spec := workload.Spec{
					Scheme: workload.SchemeRMAMCS,
					P:      16, ProcsPerNode: 4,
					Seed:     3,
					Iters:    10,
					Profile:  workload.Uniform{FW: 1},
					Workload: wl,
					Engine:   ec.engine, NoCoalesce: ec.noCoalesce,
				}
				rep, err := workload.Run(spec)
				if err != nil {
					t.Fatalf("%s: %v", ec.name, err)
				}
				if i == 0 {
					baseFP = rep.Fingerprint()
					continue
				}
				if fp := rep.Fingerprint(); fp != baseFP {
					t.Errorf("%s diverged:\n a: %s\n b: %s", ec.name, baseFP, fp)
				}
			}
		})
	}
}
