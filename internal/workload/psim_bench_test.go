package workload_test

// Scaling benchmarks for the conservative parallel engine (psim): a
// GOMAXPROCS × P matrix over contended cells, plus a speedup benchmark
// whose b.ReportMetric columns land in the persisted trajectory JSON
// (BENCH_<pr>.json via cmd/benchjson). "speedup" is psim's self-relative
// multi-core scaling (psim at the host's core count vs psim pinned to
// one core — it degenerates to ~1.0 on a single-core host, by
// construction); "speedup-vs-ref" compares against the sequential
// reference engine on the same cell, which holds even single-core.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"rmalocks/internal/rma"
	"rmalocks/internal/workload"
)

// psimBenchSpec is one contended cell: every rank hammers a small hot
// lock set with 100% writers, the regime where the gate's grant order
// and the per-target effect serialization are both maximally loaded. A
// fresh Spec per run is required (SharedOp carries per-run state).
func psimBenchSpec(p, locks int, engine string) workload.Spec {
	return workload.Spec{
		Scheme: workload.SchemeRMAMCS,
		P:      p, ProcsPerNode: 16,
		Seed: 1, Iters: 10,
		Profile:  workload.Uniform{FW: 1, NumLocks: locks},
		Workload: &workload.SharedOp{},
		Engine:   engine,
	}
}

// gomaxprocsAxis is {1, 2, 4, ..., NumCPU}, deduplicated: on a
// single-core host it collapses to {1} and the matrix still runs.
func gomaxprocsAxis() []int {
	var axis []int
	for _, g := range []int{1, 2, 4, runtime.NumCPU()} {
		if g > runtime.NumCPU() || (len(axis) > 0 && axis[len(axis)-1] >= g) {
			continue
		}
		axis = append(axis, g)
	}
	return axis
}

// BenchmarkPSimScaling is the GOMAXPROCS × P matrix on contended cells
// (8 hot locks: contended, but with cross-lock parallelism for the
// per-target effect slots to exploit).
func BenchmarkPSimScaling(b *testing.B) {
	for _, p := range []int{64, 256} {
		for _, g := range gomaxprocsAxis() {
			b.Run(fmt.Sprintf("P=%d/G=%d", p, g), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(g)
				defer runtime.GOMAXPROCS(prev)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := workload.Run(psimBenchSpec(p, 8, rma.EnginePSim)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkPSimSpeedup times psim at the host's core count on a
// contended P=256, 8-hot-lock cell (the timed loop is the ns/op figure)
// and reports two trajectory metrics: "speedup" vs psim pinned to one
// core (the multi-core scaling figure; ~1.0 by construction on a
// single-core host), and "speedup-vs-ref" vs the sequential reference
// engine on the same cell — psim gates only the shared accesses where
// refsim handshakes on every event, so that one exceeds 1× even
// single-core. Each side is estimated as the minimum per-iteration time
// over several interleaved trials — the min is the standard
// noise-robust estimator for shared hosts, where a single long
// measurement absorbs whatever the neighbors were doing.
func BenchmarkPSimSpeedup(b *testing.B) {
	const p = 256
	runN := func(engine string, gmp, n int) time.Duration {
		prev := runtime.GOMAXPROCS(gmp)
		defer runtime.GOMAXPROCS(prev)
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := workload.Run(psimBenchSpec(p, 8, engine)); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start)
	}
	trials := 5
	if trials > b.N {
		trials = b.N
	}
	per := b.N / trials
	cores := runtime.NumCPU()
	best := map[string]float64{}
	note := func(k string, el time.Duration) {
		if f := float64(el) / float64(per); best[k] == 0 || f < best[k] {
			best[k] = f
		}
	}
	b.ResetTimer()
	b.StopTimer()
	for i := 0; i < trials; i++ {
		note("serial", runN(rma.EnginePSim, 1, per))
		note("ref", runN(rma.EngineRef, cores, per))
		b.StartTimer()
		el := runN(rma.EnginePSim, cores, per)
		b.StopTimer()
		note("parallel", el)
	}
	b.ReportMetric(best["serial"]/best["parallel"], "speedup")
	b.ReportMetric(best["ref"]/best["parallel"], "speedup-vs-ref")
}
