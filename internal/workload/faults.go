package workload

import (
	"fmt"

	"rmalocks/internal/fault"
	"rmalocks/internal/locks"
	"rmalocks/internal/rma"
	"rmalocks/internal/scheme"
	"rmalocks/internal/spinwait"
)

// Retry backoff bounds (virtual ns) between timed-out acquire attempts:
// wider than the locks' own spin backoff, since a timeout means the
// holder is stalled or the lock is convoyed.
const (
	retryBackoffMin = 1000
	retryBackoffMax = 64000
)

// timedSet resolves the bounded-acquire view of every lock in the set
// when the spec's fault profile asks for acquire timeouts. Schemes (or
// custom Make locks) without bounded-acquire support are typed-rejected
// with a *scheme.CapabilityError — an MCS-queue node cannot be
// abandoned, so pretending to time out would corrupt the queue. Returns
// nil when the spec does not request timeouts.
func timedSet(spec Spec, set []locks.RWMutex) ([]locks.TryRWMutex, error) {
	if spec.NoLock || spec.Faults == nil || spec.Faults.Timeout <= 0 {
		return nil, nil
	}
	timed := make([]locks.TryRWMutex, len(set))
	for i, l := range set {
		if sl, ok := l.(scheme.Lock); ok {
			t, ok := scheme.AsTimed(sl)
			if !ok {
				return nil, &scheme.CapabilityError{Scheme: sl.Name(), Need: scheme.CapTimeout}
			}
			timed[i] = t
			continue
		}
		switch impl := l.(type) {
		case locks.TryRWMutex:
			timed[i] = impl
		case locks.WriterOnly:
			tm, ok := impl.Mu.(locks.TryMutex)
			if !ok {
				return nil, &scheme.CapabilityError{Scheme: specScheme(spec), Need: scheme.CapTimeout}
			}
			timed[i] = locks.TryWriterOnly{Mu: tm}
		default:
			return nil, &scheme.CapabilityError{Scheme: specScheme(spec), Need: scheme.CapTimeout}
		}
	}
	return timed, nil
}

// faultCounters collects the bounded-acquire outcome counts, one slot
// per rank: each simulated process writes only its own slot, so the
// parallel engine's concurrent writers stay race-free and the totals
// are engine-invariant.
type faultCounters struct {
	timeouts  []int64 // timed-out acquire attempts
	retries   []int64 // re-attempts after a timeout
	abandoned []int64 // cycles given up after exhausting retries
	depth     []int64 // deepest retry count of any single acquire
}

func newFaultCounters(procs int) *faultCounters {
	return &faultCounters{
		timeouts:  make([]int64, procs),
		retries:   make([]int64, procs),
		abandoned: make([]int64, procs),
		depth:     make([]int64, procs),
	}
}

// apply folds the per-rank counts into the report's Extra map:
// totals, the deepest retry chain, and the timeout rate over all
// acquire attempts (successes plus timeouts).
func (fc *faultCounters) apply(rep *Report) {
	var timeouts, retries, abandoned, depth int64
	for r := range fc.timeouts {
		timeouts += fc.timeouts[r]
		retries += fc.retries[r]
		abandoned += fc.abandoned[r]
		if fc.depth[r] > depth {
			depth = fc.depth[r]
		}
	}
	rep.Extra["timeouts"] = float64(timeouts)
	rep.Extra["retries"] = float64(retries)
	rep.Extra["abandoned"] = float64(abandoned)
	rep.Extra["retry_depth"] = float64(depth)
	// Every cycle ends in exactly one successful acquire unless it was
	// abandoned; adding timeouts gives the total try-attempt count.
	attempts := rep.Ops + rep.WarmupOps - abandoned + timeouts
	if attempts > 0 {
		rep.Extra["timeout_rate"] = float64(timeouts) / float64(attempts)
	} else {
		rep.Extra["timeout_rate"] = 0
	}
}

// acquireTimed is the bounded acquire path: each attempt is bounded by
// the profile's Timeout, failed attempts back off with capped
// exponential virtual pauses and retry up to MaxRetries times. Returns
// false when the cycle is abandoned; with onexhaust=abort the run
// aborts instead with ErrRetriesExhausted.
func acquireTimed(p *rma.Proc, lk locks.TryRWMutex, write bool, prof *fault.Profile, fc *faultCounters) bool {
	r := p.Rank()
	b := spinwait.New(retryBackoffMin, retryBackoffMax)
	for attempt := 0; ; attempt++ {
		var ok bool
		if write {
			ok = lk.TryAcquireWriteFor(p, prof.Timeout)
		} else {
			ok = lk.TryAcquireReadFor(p, prof.Timeout)
		}
		if ok {
			if int64(attempt) > fc.depth[r] {
				fc.depth[r] = int64(attempt)
			}
			return true
		}
		fc.timeouts[r]++
		if attempt >= prof.MaxRetries() {
			if prof.AbortOnExhaust {
				p.Abort(fmt.Errorf("%w (rank %d after %d attempts)", ErrRetriesExhausted, r, attempt+1))
			}
			fc.abandoned[r]++
			if int64(attempt) > fc.depth[r] {
				fc.depth[r] = int64(attempt)
			}
			return false
		}
		fc.retries[r]++
		b.Pause(p)
	}
}
