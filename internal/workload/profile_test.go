package workload_test

import (
	"testing"

	"rmalocks/internal/rma"
	"rmalocks/internal/workload"
)

func TestProfileByNameOptsRoundTrip(t *testing.T) {
	// Every named profile must carry the generic opts through to its
	// concrete fields — bursty historically dropped ThinkNs/ThinkJitterNs
	// on the floor.
	opts := workload.ProfileOpts{
		Locks: 5, FW: 0.3, ZipfS: 1.5, Span: 77,
		ThinkNs: 12_345, ThinkJitterNs: 678,
	}
	for _, name := range workload.ProfileNames {
		name := name
		t.Run(name, func(t *testing.T) {
			pr, err := workload.ProfileByName(name, opts)
			if err != nil {
				t.Fatal(err)
			}
			if pr.Name() != name {
				t.Fatalf("Name()=%q want %q", pr.Name(), name)
			}
			if pr.Locks() != opts.Locks {
				t.Errorf("Locks()=%d want %d", pr.Locks(), opts.Locks)
			}
			switch p := pr.(type) {
			case workload.Uniform:
				if p.FW != opts.FW || p.ThinkNs != opts.ThinkNs || p.ThinkJitterNs != opts.ThinkJitterNs {
					t.Errorf("uniform dropped opts: %+v", p)
				}
			case *workload.Zipf:
				if p.FW != opts.FW || p.S() != opts.ZipfS || p.ThinkNs != opts.ThinkNs || p.ThinkJitterNs != opts.ThinkJitterNs {
					t.Errorf("zipf dropped opts: %+v (S=%v)", p, p.S())
				}
			case workload.Bursty:
				if p.FW != opts.FW || p.IdleThinkNs != opts.ThinkNs || p.IdleJitterNs != opts.ThinkJitterNs {
					t.Errorf("bursty dropped opts: %+v", p)
				}
			case workload.RWSweep:
				if p.FWEnd != opts.FW || p.Span != opts.Span || p.ThinkNs != opts.ThinkNs || p.ThinkJitterNs != opts.ThinkJitterNs {
					t.Errorf("sweep dropped opts: %+v", p)
				}
			default:
				t.Errorf("profile %q has unexpected concrete type %T", name, pr)
			}
		})
	}
}

// recordingProfile wraps a Profile and tallies every Intent.Think it
// hands out. Writes happen while the deciding process holds the
// scheduler token, so plain slice appends are safe.
type recordingProfile struct {
	workload.Profile
	thinks *[]int64
}

func (r recordingProfile) Next(p *rma.Proc, it int) workload.Intent {
	in := r.Profile.Next(p, it)
	*r.thinks = append(*r.thinks, in.Think)
	return in
}

func TestBurstyIdleJitterDeterministicAndBounded(t *testing.T) {
	// Jittered idle think must stay within [IdleThinkNs, IdleThinkNs +
	// IdleJitterNs), apply only to off-phase iterations, and remain a
	// pure function of the machine seed.
	prof := workload.Bursty{FW: 1, BurstLen: 2, IdleLen: 2,
		IdleThinkNs: 10_000, IdleJitterNs: 5_000}
	run := func(thinks *[]int64) workload.Report {
		var p workload.Profile = prof
		if thinks != nil {
			p = recordingProfile{Profile: prof, thinks: thinks}
		}
		rep, err := workload.Run(workload.Spec{
			Scheme: workload.SchemeDMCS, P: 8, Iters: 16, Profile: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	var thinks []int64
	a, b := run(&thinks), run(nil)
	idle := 0
	for _, th := range thinks {
		switch {
		case th == 0: // burst-phase iteration: no think time
		case th >= prof.IdleThinkNs && th < prof.IdleThinkNs+prof.IdleJitterNs:
			idle++
		default:
			t.Fatalf("think %d outside [%d, %d)", th, prof.IdleThinkNs, prof.IdleThinkNs+prof.IdleJitterNs)
		}
	}
	if idle == 0 || idle == len(thinks) {
		t.Fatalf("expected a mix of burst and idle iterations, got %d/%d idle", idle, len(thinks))
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("jittered bursty runs are not seed-deterministic")
	}
	// Jitter must actually lengthen the run versus the jitter-free profile.
	noJitter := prof
	noJitter.IdleJitterNs = 0
	rep, err := workload.Run(workload.Spec{
		Scheme: workload.SchemeDMCS, P: 8, Iters: 16, Profile: noJitter,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.MaxClock <= rep.MaxClock {
		t.Errorf("jitter did not extend the run: %d <= %d", a.MaxClock, rep.MaxClock)
	}
}
