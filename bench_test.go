// Package-level benchmarks: one testing.B benchmark per figure of the
// paper's evaluation section. Each benchmark runs a representative
// configuration of the corresponding experiment on the simulated machine
// and reports the figure's metric (mln locks/s or µs) via b.ReportMetric.
// Full sweeps over P and all parameter values are produced by
// cmd/lockbench and cmd/dhtbench; EXPERIMENTS.md records the shape
// comparison against the paper.
package rmalocks_test

import (
	"fmt"
	"testing"

	"rmalocks/internal/bench"
	"rmalocks/internal/model"
)

// benchP is the process count used by the in-repo benchmarks: large
// enough to span several nodes (the regime the paper targets), small
// enough to keep `go test -bench=.` quick.
const benchP = 64

const benchIters = 30

func reportMutex(b *testing.B, r bench.Result) {
	b.ReportMetric(r.ThroughputMops, "mln-locks/s")
	b.ReportMetric(r.Latency.Mean, "us-mean")
	b.ReportMetric(r.Latency.P99, "us-p99")
}

func runMutexBench(b *testing.B, wl bench.Workload) {
	for _, scheme := range bench.MutexSchemes {
		scheme := scheme
		b.Run(scheme, func(b *testing.B) {
			var last bench.Result
			for i := 0; i < b.N; i++ {
				r, err := bench.RunMutex(bench.MutexParams{
					Scheme: scheme, P: benchP, Workload: wl,
					Iters: benchIters, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				last = r
			}
			reportMutex(b, last)
		})
	}
}

// BenchmarkFig3a_LB: latency benchmark, foMPI-Spin vs D-MCS vs RMA-MCS.
func BenchmarkFig3a_LB(b *testing.B) { runMutexBench(b, bench.ECSB) }

// BenchmarkFig3b_ECSB: empty-critical-section throughput.
func BenchmarkFig3b_ECSB(b *testing.B) { runMutexBench(b, bench.ECSB) }

// BenchmarkFig3c_SOB: single-operation throughput.
func BenchmarkFig3c_SOB(b *testing.B) { runMutexBench(b, bench.SOB) }

// BenchmarkFig3d_WCSB: workload-critical-section throughput.
func BenchmarkFig3d_WCSB(b *testing.B) { runMutexBench(b, bench.WCSB) }

// BenchmarkFig3e_WARB: wait-after-release throughput.
func BenchmarkFig3e_WARB(b *testing.B) { runMutexBench(b, bench.WARB) }

func runRWBench(b *testing.B, params bench.RWParams, label string) {
	b.Run(label, func(b *testing.B) {
		var last bench.Result
		for i := 0; i < b.N; i++ {
			p := params
			p.P = benchP
			p.Iters = benchIters
			p.Seed = int64(i + 1)
			r, err := bench.RunRW(p)
			if err != nil {
				b.Fatal(err)
			}
			last = r
		}
		reportMutex(b, last)
	})
}

// BenchmarkFig4a_TDC: distributed-counter threshold sweep (SOB, F_W=2%).
func BenchmarkFig4a_TDC(b *testing.B) {
	for _, tdc := range []int{2, 16, 64} {
		runRWBench(b, bench.RWParams{Scheme: bench.SchemeRMARW, Workload: bench.SOB,
			FW: 0.02, TDC: tdc}, fmt.Sprintf("TDC=%d", tdc))
	}
}

// BenchmarkFig4b_TLProduct: Π T_L,i sweep (SOB, F_W=25%).
func BenchmarkFig4b_TLProduct(b *testing.B) {
	for _, tw := range []struct {
		prod int64
		tl   []int64
	}{
		{500, []int64{0, 50, 10}},
		{2500, []int64{0, 100, 25}},
		{7500, []int64{0, 100, 75}},
	} {
		runRWBench(b, bench.RWParams{Scheme: bench.SchemeRMARW, Workload: bench.SOB,
			FW: 0.25, TL: tw.tl}, fmt.Sprintf("TW=%d", tw.prod))
	}
}

// BenchmarkFig4c_TLSplit: T_L,2–T_L,1 splits (SOB, F_W=25%).
func BenchmarkFig4c_TLSplit(b *testing.B) {
	for _, s := range []struct {
		name string
		tl   []int64
	}{
		{"50-20", []int64{0, 20, 50}},
		{"25-40", []int64{0, 40, 25}},
		{"10-100", []int64{0, 100, 10}},
	} {
		runRWBench(b, bench.RWParams{Scheme: bench.SchemeRMARW, Workload: bench.SOB,
			FW: 0.25, TL: s.tl}, s.name)
	}
}

// BenchmarkFig4d_TLSplitLatency: the same splits under the latency
// benchmark (F_W=25%); read the us-mean metric.
func BenchmarkFig4d_TLSplitLatency(b *testing.B) {
	for _, s := range []struct {
		name string
		tl   []int64
	}{
		{"50-20", []int64{0, 20, 50}},
		{"10-100", []int64{0, 100, 10}},
	} {
		runRWBench(b, bench.RWParams{Scheme: bench.SchemeRMARW, Workload: bench.ECSB,
			FW: 0.25, TL: s.tl}, s.name)
	}
}

// BenchmarkFig4e_TR: reader threshold sweep (ECSB, F_W=0.2%).
func BenchmarkFig4e_TR(b *testing.B) {
	for _, tr := range []int64{1000, 3000, 6000} {
		runRWBench(b, bench.RWParams{Scheme: bench.SchemeRMARW, Workload: bench.ECSB,
			FW: 0.002, TR: tr}, fmt.Sprintf("TR=%d", tr))
	}
}

// BenchmarkFig4f_TRxFW: T_R × F_W interplay (ECSB).
func BenchmarkFig4f_TRxFW(b *testing.B) {
	for _, fw := range []float64{0.02, 0.05} {
		for _, tr := range []int64{3000, 5000} {
			runRWBench(b, bench.RWParams{Scheme: bench.SchemeRMARW, Workload: bench.ECSB,
				FW: fw, TR: tr}, fmt.Sprintf("TR=%d-FW=%g%%", tr, fw*100))
		}
	}
}

func runFig5(b *testing.B, wl bench.Workload) {
	for _, scheme := range []string{bench.SchemeRMARW, bench.SchemeFoMPIRW} {
		for _, fw := range []float64{0.002, 0.05} {
			runRWBench(b, bench.RWParams{Scheme: scheme, Workload: wl, FW: fw},
				fmt.Sprintf("%s-FW=%g%%", scheme, fw*100))
		}
	}
}

// BenchmarkFig5a_LB: RMA-RW vs foMPI-RW latency; read the us-mean metric.
func BenchmarkFig5a_LB(b *testing.B) { runFig5(b, bench.ECSB) }

// BenchmarkFig5b_ECSB: RMA-RW vs foMPI-RW ECSB throughput.
func BenchmarkFig5b_ECSB(b *testing.B) { runFig5(b, bench.ECSB) }

// BenchmarkFig5c_SOB: RMA-RW vs foMPI-RW SOB throughput.
func BenchmarkFig5c_SOB(b *testing.B) { runFig5(b, bench.SOB) }

// BenchmarkFig6_DHT: distributed hashtable total time per scheme and
// writer fraction; read the ms-total metric.
func BenchmarkFig6_DHT(b *testing.B) {
	for _, fw := range []float64{0.20, 0.02, 0.0} {
		for _, scheme := range []string{bench.SchemeFoMPIA, bench.SchemeFoMPIRW, bench.SchemeRMARW} {
			scheme, fw := scheme, fw
			b.Run(fmt.Sprintf("%s-FW=%g%%", scheme, fw*100), func(b *testing.B) {
				var last bench.DHTResult
				for i := 0; i < b.N; i++ {
					r, err := bench.RunDHT(bench.DHTParams{
						Scheme: scheme, P: benchP, FW: fw,
						OpsPerProc: 20, Seed: int64(i + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
					last = r
				}
				b.ReportMetric(last.TotalTimeMs, "ms-total")
			})
		}
	}
}

// BenchmarkModelChecker: state-exploration rate of the §4.4 substitute
// (not a paper figure; tracks verification cost).
func BenchmarkModelChecker(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := model.Check(model.DMCS{Procs: 3, Iters: 1}, 0)
		if r.Violation != nil || r.Deadlock {
			b.Fatal(r)
		}
	}
}
