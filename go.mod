module rmalocks

go 1.21
