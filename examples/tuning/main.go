// tuning: explore the three-dimensional parameter space of RMA-RW
// (Figure 1 of the paper) on a three-level machine — racks, nodes,
// processes — and report the best configuration for a given workload,
// following the paper's §6 tuning recipe (fix T_DC first, then T_R and
// T_L,i).
//
// Run with: go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"rmalocks"
)

const (
	racks = 2
	nodes = 4
	ppn   = 8
	fwPct = 5 // writer percentage of the workload to tune for
	iters = 80
)

type config struct {
	tdc int
	tr  int64
	tl  []int64 // [_, rack-level..., node-level]
}

func throughput(cfg config) float64 {
	machine := rmalocks.NewMachine(rmalocks.MachineSpec{Racks: racks, Nodes: nodes, ProcsPerNode: ppn})
	lock := rmalocks.NewRMARW(machine, rmalocks.RWParams{TDC: cfg.tdc, TR: cfg.tr, TL: cfg.tl})
	err := machine.Run(func(p *rmalocks.Proc) {
		rng := p.Rand()
		for i := 0; i < iters; i++ {
			if rng.Intn(100) < fwPct {
				lock.AcquireWrite(p)
				p.Compute(200)
				lock.ReleaseWrite(p)
			} else {
				lock.AcquireRead(p)
				p.Compute(200)
				lock.ReleaseRead(p)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	ops := float64(machine.Procs() * iters)
	return ops / float64(machine.MaxClock()) * 1e3 // mln locks/s
}

func main() {
	fmt.Printf("Tuning RMA-RW on a %d-rack x %d-node x %d-proc machine, F_W=%d%%\n\n",
		racks, nodes, ppn, fwPct)

	// Step 1 (paper §6): T_DC has the largest impact; sweep it.
	fmt.Println("step 1: sweep T_DC (one counter every T_DC-th process)")
	bestTDC, bestT := 0, 0.0
	for _, tdc := range []int{2, 4, 8, 16, 32} {
		th := throughput(config{tdc: tdc, tr: 1000, tl: []int64{0, 4, 8, 16}})
		marker := ""
		if th > bestT {
			bestT, bestTDC = th, tdc
			marker = "  <-- best so far"
		}
		fmt.Printf("  T_DC=%-3d  %6.3f mln locks/s%s\n", tdc, th, marker)
	}

	// Step 2: with T_DC fixed, trade reader vs writer throughput via T_R.
	fmt.Println("\nstep 2: sweep T_R (consecutive readers per counter)")
	bestTR, bestT2 := int64(0), 0.0
	for _, tr := range []int64{100, 500, 1000, 3000, 6000} {
		th := throughput(config{tdc: bestTDC, tr: tr, tl: []int64{0, 4, 8, 16}})
		marker := ""
		if th > bestT2 {
			bestT2, bestTR = th, tr
			marker = "  <-- best so far"
		}
		fmt.Printf("  T_R=%-5d %6.3f mln locks/s%s\n", tr, th, marker)
	}

	// Step 3: locality vs fairness via the T_L split across the three
	// levels (larger thresholds on more expensive levels).
	fmt.Println("\nstep 3: sweep the T_L,i split (machine-rack-node)")
	type split struct {
		name string
		tl   []int64
	}
	bestName, bestT3 := "", 0.0
	for _, s := range []split{
		{"2-8-32", []int64{0, 2, 8, 32}},
		{"4-8-16", []int64{0, 4, 8, 16}},
		{"8-8-8", []int64{0, 8, 8, 8}},
		{"16-8-4", []int64{0, 16, 8, 4}},
	} {
		th := throughput(config{tdc: bestTDC, tr: bestTR, tl: s.tl})
		marker := ""
		if th > bestT3 {
			bestT3, bestName = th, s.name
			marker = "  <-- best so far"
		}
		fmt.Printf("  T_L=%-8s %6.3f mln locks/s%s\n", s.name, th, marker)
	}

	fmt.Printf("\nrecommended: T_DC=%d, T_R=%d, T_L=%s  (%.3f mln locks/s)\n",
		bestTDC, bestTR, bestName, bestT3)
}
