// graphproc: irregular graph processing with fine-grained vertex locks —
// the workload class the paper's single-operation benchmark (SOB) models.
// Processes relax edges of a random graph; every vertex is protected by a
// lock, and we compare the topology-aware RMA-MCS with the baselines.
//
// Run with: go run ./examples/graphproc
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rmalocks"
	"rmalocks/internal/locks"
)

const (
	nodes    = 4
	ppn      = 8
	vertices = 64
	relaxes  = 60 // edge relaxations per process
)

func run(name string, mk func(m *rmalocks.Machine) locks.Mutex) {
	machine := rmalocks.NewMachine(rmalocks.MachineSpec{Nodes: nodes, ProcsPerNode: ppn})
	// Vertex data: one word per vertex, distributed round-robin over the
	// ranks (vertex v lives on rank v%P at offset base+v/P).
	p := machine.Procs()
	perRank := (vertices + p - 1) / p
	base := machine.Alloc(perRank)
	// One lock protects the whole partition in this demo (the paper's
	// DHT study uses the same single-lock setup; per-vertex locks work
	// the same way, one Alloc per lock).
	lock := mk(machine)

	edges := rand.New(rand.NewSource(7))
	_ = edges

	err := machine.Run(func(pr *rmalocks.Proc) {
		rng := pr.Rand()
		for i := 0; i < relaxes; i++ {
			u := rng.Intn(vertices)
			v := rng.Intn(vertices)
			lock.Acquire(pr)
			// Relax: dist[v] = min(dist[v], dist[u]+1), two remote words.
			du := pr.Get(u%p, base+u/p)
			pr.Flush(u % p)
			dv := pr.Get(v%p, base+v/p)
			pr.Flush(v % p)
			if du+1 < dv || dv == 0 {
				pr.Put(du+1, v%p, base+v/p)
				pr.Flush(v % p)
			}
			lock.Release(pr)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	total := machine.Procs() * relaxes
	ms := float64(machine.MaxClock()) / 1e6
	fmt.Printf("%-12s %8.3f ms  (%.2f mln relaxations/s, %d remote ops)\n",
		name, ms, float64(total)/ms/1e3, machine.Stats().Remote())
}

func main() {
	fmt.Printf("Vertex-locked graph relaxation: %d procs, %d vertices, %d relaxations/proc\n\n",
		nodes*ppn, vertices, relaxes)
	run("foMPI-Spin", func(m *rmalocks.Machine) locks.Mutex { return rmalocks.NewFoMPISpin(m) })
	run("D-MCS", func(m *rmalocks.Machine) locks.Mutex { return rmalocks.NewDMCS(m) })
	run("RMA-MCS", func(m *rmalocks.Machine) locks.Mutex { return rmalocks.NewRMAMCS(m, rmalocks.MCSParams{}) })
	fmt.Println("\nRMA-MCS keeps consecutive critical sections on the same node")
	fmt.Println("(locality threshold T_L), cutting inter-node lock transfers.")
}
