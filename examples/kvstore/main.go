// kvstore: a read-mostly key-value store on the distributed hashtable of
// the paper's §5.3, comparing the three synchronization schemes on a
// Facebook-like workload (0.2% writes, the rate the paper cites for the
// TAO social graph).
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"rmalocks/internal/bench"
)

func main() {
	fmt.Println("Read-mostly KV store over the distributed hashtable (64 procs, F_W=0.2%)")
	fmt.Println()
	fmt.Printf("%-10s %12s %10s %10s %8s\n", "scheme", "total[ms]", "inserts", "lookups", "stored")
	for _, scheme := range []string{bench.SchemeFoMPIA, bench.SchemeFoMPIRW, bench.SchemeRMARW} {
		r, err := bench.RunDHT(bench.DHTParams{
			Scheme:     scheme,
			P:          64,
			FW:         0.002,
			OpsPerProc: 200,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.3f %10d %10d %8d\n",
			r.Scheme, r.TotalTimeMs, r.Inserts, r.Lookups, r.Stored)
	}
	fmt.Println()
	fmt.Println("RMA-RW lets the read-dominated traffic proceed through per-node")
	fmt.Println("counters, while foMPI-RW serializes every client on one rank.")
}
