// adaptive: runtime tuning of RMA-RW's reader threshold T_R — the
// extension the paper sketches in §8 ("adaptive schemes for a runtime
// selection and tuning of the values of the parameters").
//
// The workload runs in episodes; after each episode the controller
// observes throughput and proposes the next T_R (hill climbing), settling
// on a local optimum without any offline tuning.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"rmalocks"
	"rmalocks/internal/adaptive"
	"rmalocks/internal/locks/rmarw"
	"rmalocks/internal/rma"
	"rmalocks/internal/topology"
)

const (
	nodes  = 4
	ppn    = 8
	iters  = 60
	fwPct  = 2 // 2% writers
	maxEps = 12
)

func main() {
	topo := topology.TwoLevel(nodes, ppn)
	machine := rma.NewMachineConfig(topo, rma.Config{TimeLimit: 1 << 42})
	lock := rmarw.NewConfig(machine, rmarw.Config{TR: 128})
	ctl := adaptive.New(adaptive.Config{InitialTR: 128, MinTR: 64, MaxTR: 1 << 16})

	episode := func() float64 {
		err := machine.Run(func(p *rmalocks.Proc) {
			rng := p.Rand()
			for i := 0; i < iters; i++ {
				if rng.Intn(100) < fwPct {
					lock.AcquireWrite(p)
					p.Compute(300)
					lock.ReleaseWrite(p)
				} else {
					lock.AcquireRead(p)
					p.Compute(300)
					lock.ReleaseRead(p)
				}
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		ops := float64(machine.Procs() * iters)
		return ops / float64(machine.MaxClock()) * 1e3 // mln locks/s
	}

	fmt.Printf("Adaptive T_R tuning on %v, F_W=%d%%\n\n", topo, fwPct)
	fmt.Printf("%-8s %-8s %-12s %s\n", "episode", "T_R", "mln locks/s", "")
	for ep := 1; ep <= maxEps && !ctl.Settled(); ep++ {
		lock.SetTR(ctl.TR())
		th := episode()
		fmt.Printf("%-8d %-8d %-12.3f backoffs=%d modeChanges=%d\n",
			ep, lock.TR(), th, lock.ReaderBackoffs, lock.ModeChanges)
		ctl.Report(adaptive.Observation{
			ThroughputMops: th,
			ReaderBackoffs: lock.ReaderBackoffs,
			ModeChanges:    lock.ModeChanges,
		})
	}
	best, th := ctl.Best()
	fmt.Printf("\nsettled after %d moves: T_R=%d (%.3f mln locks/s)\n", ctl.Moves(), best, th)
}
