// Paramspace reproduces a slice of the paper's parameter-space
// exploration (§3, Figure 1; §5.2.3): the RMA-RW lock's behaviour as a
// function of its three typed tunables — the reader threshold T_R, the
// locality thresholds T_L,i, and the distributed-counter threshold
// T_DC — on a read-dominated workload. The scheme registry makes the
// parameter space enumerable: the program first prints what the
// registry declares (capabilities, tunables, defaults, ranges), then
// sweeps a TR × TL2 × TDC cross-product through the sweep engine and
// prints one merged table.
//
// Run with:
//
//	go run ./examples/paramspace           # the full slice
//	go run ./examples/paramspace -smoke    # tiny grid (CI smoke mode)
package main

import (
	"flag"
	"fmt"
	"log"

	"rmalocks"
)

func main() {
	smoke := flag.Bool("smoke", false, "tiny grid for CI smoke runs")
	jobs := flag.Int("j", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	// --- Discovery: the registry's view of the parameter space. ---
	fmt.Println("Registered lock schemes:")
	for _, name := range rmalocks.Schemes() {
		d, err := rmalocks.Describe(name)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s caps=%-8s %s\n", d.Name, d.Caps, d.Doc)
		for _, spec := range d.Tunables {
			key := spec.Key
			if spec.PerLevel {
				key += "<level>"
			}
			fmt.Printf("             %-9s default=%-5d range=[%d, %d]  %s\n",
				key, spec.Default, spec.Min, spec.Max, spec.Doc)
		}
	}
	fmt.Println()

	// --- The swept slice: RMA-RW under a read-dominated load (the
	// regime where T_R and the locality thresholds matter most). ---
	grid := rmalocks.SweepGrid{
		Schemes:   []string{"RMA-RW"},
		Workloads: []string{"empty"},
		Profiles:  []string{"uniform"},
		Ps:        []int{64},
		Iters:     60,
		FW:        0.02, // 2% writers: the paper's read-dominated point
		Locks:     1,
		Tunables: []rmalocks.SweepTunableAxis{
			{Key: "TR", Values: []int64{10, 100, 1000}},
			{Key: "TL2", Values: []int64{4, 16, 64}},
			{Key: "TDC", Values: []int64{1, 16}},
		},
	}
	if *smoke {
		grid.Ps = []int{16}
		grid.Iters = 10
		grid.Tunables = []rmalocks.SweepTunableAxis{
			{Key: "TR", Values: []int64{10, 1000}},
			{Key: "TL2", Values: []int64{4, 32}},
		}
	}

	cells, err := grid.Cells()
	if err != nil {
		log.Fatal(err)
	}
	results, err := rmalocks.RunSweep(cells, rmalocks.SweepOptions{Workers: *jobs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rmalocks.SweepTable("RMA-RW parameter space: TR x TL2 x TDC (FW=2%)", results))

	// A validation taste: the registry rejects what the paper's Figure 1
	// would reject.
	if _, err := rmalocks.NewLock(rmalocks.NewMachine(rmalocks.MachineSpec{}), "RMA-RW",
		rmalocks.Tune("TR", -5)); err != nil {
		fmt.Printf("validation works: %v\n", err)
	}
}
