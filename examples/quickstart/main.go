// Quickstart: simulate a 4-node machine, protect a shared counter with
// the topology-aware RMA-RW lock, and print what happened.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rmalocks"
)

func main() {
	// A 4-node machine with 8 processes per node (32 simulated ranks).
	machine := rmalocks.NewMachine(rmalocks.MachineSpec{Nodes: 4, ProcsPerNode: 8})

	// The paper's Reader-Writer lock with default parameters: one
	// physical counter per node (T_DC), reader threshold T_R=1000 and
	// locality thresholds T_L,i = 16 (so T_W = 256).
	lock := rmalocks.NewRMARW(machine, rmalocks.RWParams{})

	// One shared word on rank 0, protected by the lock.
	counter := machine.Alloc(1)

	const iters = 100
	err := machine.Run(func(p *rmalocks.Proc) {
		for i := 0; i < iters; i++ {
			if p.Rank()%8 == 0 {
				// Two writers per node increment the counter.
				lock.AcquireWrite(p)
				v := p.Get(0, counter)
				p.Flush(0)
				p.Put(v+1, 0, counter)
				p.Flush(0)
				lock.ReleaseWrite(p)
			} else {
				// Everyone else only reads.
				lock.AcquireRead(p)
				p.Get(0, counter)
				p.Flush(0)
				lock.ReleaseRead(p)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	writers := machine.Procs() / 8
	fmt.Printf("machine:        %v\n", machine.Topology())
	fmt.Printf("counter:        %d (want %d)\n", machine.At(0, counter), writers*iters)
	fmt.Printf("read acquires:  %d\n", lock.ReadAcquires)
	fmt.Printf("write acquires: %d\n", lock.WriteAcquires)
	fmt.Printf("mode changes:   %d (WRITE→READ hand-overs)\n", lock.ModeChanges)
	fmt.Printf("virtual time:   %.3f ms\n", float64(machine.MaxClock())/1e6)
	fmt.Printf("rma ops:        %v\n", machine.Stats())
}
