// Quickstart: simulate a 4-node machine, protect a shared counter with
// the topology-aware RMA-RW lock, and print what happened.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rmalocks"
)

func main() {
	// A 4-node machine with 8 processes per node (32 simulated ranks).
	machine, err := rmalocks.NewMachineErr(rmalocks.MachineSpec{Nodes: 4, ProcsPerNode: 8})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's Reader-Writer lock from the scheme registry, with its
	// documented defaults: one physical counter per node (T_DC), reader
	// threshold T_R=1000 and locality thresholds T_L,i = 32. Tunables
	// are validated — try Tune("TR", -1) to see the typed error.
	lock, err := rmalocks.NewLock(machine, "RMA-RW")
	if err != nil {
		log.Fatal(err)
	}

	// One shared word on rank 0, protected by the lock.
	counter := machine.Alloc(1)

	const iters = 100
	err = machine.Run(func(p *rmalocks.Proc) {
		for i := 0; i < iters; i++ {
			if p.Rank()%8 == 0 {
				// Two writers per node increment the counter.
				lock.AcquireWrite(p)
				v := p.Get(0, counter)
				p.Flush(0)
				p.Put(v+1, 0, counter)
				p.Flush(0)
				lock.ReleaseWrite(p)
			} else {
				// Everyone else only reads.
				lock.AcquireRead(p)
				p.Get(0, counter)
				p.Flush(0)
				lock.ReleaseRead(p)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	writers := machine.Procs() / 8
	fmt.Printf("machine:        %v\n", machine.Topology())
	fmt.Printf("scheme:         %s (caps %v)\n", lock.Name(), lock.Caps())
	fmt.Printf("counter:        %d (want %d)\n", machine.At(0, counter), writers*iters)
	fmt.Printf("virtual time:   %.3f ms\n", float64(machine.MaxClock())/1e6)
	fmt.Printf("rma ops:        %v\n", machine.Stats())
}
