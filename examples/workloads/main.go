// Example workloads: drive the unified workload subsystem through the
// public rmalocks API. It compares every lock scheme under three
// contention regimes — uniform, Zipf-skewed (hot lock), and bursty —
// and shows that results are exactly reproducible per seed.
package main

import (
	"fmt"

	"rmalocks"
)

func main() {
	profiles := []rmalocks.Profile{
		rmalocks.UniformProfile{NumLocks: 4, FW: 0.1},
		rmalocks.NewZipfProfile(4, 1.2, 0.1),
		rmalocks.BurstyProfile{NumLocks: 4, FW: 0.1, Desync: true},
	}

	fmt.Println("scheme × contention profile (P=32, empty critical section):")
	for _, scheme := range rmalocks.WorkloadSchemes {
		for _, prof := range profiles {
			rep, err := rmalocks.RunWorkload(rmalocks.WorkloadSpec{
				Scheme: scheme, P: 32, Iters: 25, Seed: 42,
				Profile: prof,
			})
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %-10s %-8s %7.3f mln locks/s, mean %6.2f µs, p95 %7.2f µs\n",
				scheme, rep.Profile, rep.ThroughputMops, rep.Latency.Mean, rep.Latency.P95)
		}
	}

	// A workload with a real critical section: sharded DHT ops where the
	// writer fraction sweeps from read-only to write-heavy.
	rep, err := rmalocks.RunWorkload(rmalocks.WorkloadSpec{
		Scheme: "RMA-RW", P: 16, Iters: 40, Seed: 42,
		Profile:  rmalocks.RWSweepProfile{NumLocks: 8, FWStart: 0, FWEnd: 0.8, Span: 40},
		Workload: &rmalocks.DHTWorkload{Slots: 128, Cells: 1024, ShardByLock: true},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nsharded DHT under RW sweep: %d lookups, %d inserts, %g stored, makespan %.2f ms\n",
		rep.Reads, rep.Writes, rep.Extra["stored"], rep.MakespanMs)

	// Determinism: the same spec and seed reproduce byte-identically.
	again, err := rmalocks.RunWorkload(rmalocks.WorkloadSpec{
		Scheme: "RMA-RW", P: 16, Iters: 40, Seed: 42,
		Profile:  rmalocks.RWSweepProfile{NumLocks: 8, FWStart: 0, FWEnd: 0.8, Span: 40},
		Workload: &rmalocks.DHTWorkload{Slots: 128, Cells: 1024, ShardByLock: true},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("reproducible: %v\n", rep.Fingerprint() == again.Fingerprint())
}
