package main

import "testing"

// TestFaultTourSmoke runs the tour in smoke mode; tour itself asserts
// the degradation shape (the convoying queue lock inflates its p99
// strictly more than the bounded spinlock under the same stall
// profile), so a passing run is the CI-checked claim.
func TestFaultTourSmoke(t *testing.T) {
	if err := tour(true, 2); err != nil {
		t.Fatal(err)
	}
}
