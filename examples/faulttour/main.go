// Faulttour demonstrates graceful vs pathological degradation under
// deterministic fault injection: the same stall-heavy fault profile is
// applied to a centralized CAS spinlock running bounded acquires with
// backoff (foMPI-Spin + timeout — a waiter that cannot enter in time
// abandons the attempt, so tails stay bounded) and to an MCS-queue
// lock (RMA-MCS — a queued waiter cannot leave, so every rank behind
// a stalled holder convoys and the tail latency explodes with the
// stall magnitude).
//
// Everything is reproducible: the fault schedule is a pure function of
// (machine seed, profile seed, rank, event index), so the "chaos" is
// byte-identical on every run and engine — which is what lets the
// smoke test assert on degradation shape.
//
// Run with:
//
//	go run ./examples/faulttour           # the full tour
//	go run ./examples/faulttour -smoke    # small grid (CI smoke mode)
package main

import (
	"flag"
	"fmt"
	"log"

	"rmalocks"
)

// The two protagonists.
const (
	graceful = "foMPI-Spin" // CapTimeout: bounded acquires + backoff
	convoy   = "RMA-MCS"    // queue lock: no way out once enqueued
)

// Fault grammar specs shared by main and the smoke test: perturb stalls
// random ranks mid-protocol (including lock holders); bounded adds the
// acquire timeout only CapTimeout schemes accept.
const (
	perturbSpec = "stall=200us@0.05,jitter=0.1"
	boundedSpec = perturbSpec + ",timeout=100us"
)

func main() {
	smoke := flag.Bool("smoke", false, "small grid for CI smoke runs")
	jobs := flag.Int("j", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.Parse()
	if err := tour(*smoke, *jobs); err != nil {
		log.Fatal(err)
	}
}

// tour runs the comparison and asserts the degradation shape; the
// smoke test calls it directly.
func tour(smoke bool, jobs int) error {
	perturb, err := rmalocks.ParseFaults(perturbSpec)
	if err != nil {
		return err
	}
	bounded, err := rmalocks.ParseFaults(boundedSpec)
	if err != nil {
		return err
	}

	grid := rmalocks.SweepGrid{
		Schemes:   []string{graceful, convoy},
		Workloads: []string{"empty"},
		Profiles:  []string{"uniform"},
		Ps:        []int{64},
		Iters:     40,
		FW:        0.5,
		Locks:     2,
		// The fault axis: every coordinate gets a fault-free baseline
		// cell, the stall profile, and — for CapTimeout schemes only —
		// the stall profile with bounded acquires.
		Faults: []*rmalocks.FaultProfile{perturb, bounded},
	}
	if smoke {
		grid.Ps = []int{16}
		grid.Iters = 15
	}

	cells, err := grid.Cells()
	if err != nil {
		return err
	}
	results, err := rmalocks.RunSweep(cells, rmalocks.SweepOptions{Workers: jobs})
	if err != nil {
		return err
	}
	rmalocks.ApplySweepDegradation(results)
	fmt.Println(rmalocks.SweepTable("Graceful (timeout+backoff) vs convoy (queue behind a stalled holder)", results))

	// Pull the p99 inflation of the two faulted variants under
	// comparison: bounded acquires for the spinlock, the bare stall
	// profile for the queue lock.
	infl := func(scheme, faults string) (float64, error) {
		for _, r := range results {
			if r.Key.Scheme == scheme && r.Key.Faults == faults {
				v, ok := r.Report.Extra["p99_infl"]
				if !ok {
					return 0, fmt.Errorf("faulttour: cell %s has no p99_infl", r.Key)
				}
				return v, nil
			}
		}
		return 0, fmt.Errorf("faulttour: no cell for %s with faults=%q", scheme, faults)
	}
	gInfl, err := infl(graceful, bounded.Canonical())
	if err != nil {
		return err
	}
	cInfl, err := infl(convoy, perturb.Canonical())
	if err != nil {
		return err
	}

	fmt.Printf("p99 inflation under %s:\n", perturbSpec)
	fmt.Printf("  %-12s %6.2fx  (bounded acquires: timed-out waiters abandon, tail stays near the stall length)\n", graceful, gInfl)
	fmt.Printf("  %-12s %6.2fx  (MCS queue: every waiter convoys behind the stalled holder)\n", convoy, cInfl)

	// The asserted shape: the queue lock degrades strictly worse than
	// the bounded spinlock under the same stall profile. The smoke test
	// runs this same function, so the claim is CI-checked.
	if cInfl <= gInfl {
		return fmt.Errorf("faulttour: expected convoying %s (%.2fx) to degrade worse than bounded %s (%.2fx)",
			convoy, cInfl, graceful, gInfl)
	}
	fmt.Printf("=> graceful degradation requires an exit path: CapTimeout schemes bound their tails, queue schemes convoy.\n")
	return nil
}
