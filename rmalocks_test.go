package rmalocks_test

import (
	"path/filepath"
	"strings"
	"testing"

	"rmalocks"
)

func TestQuickstartShape(t *testing.T) {
	// The package-level quick start must work exactly as documented.
	machine := rmalocks.NewMachine(rmalocks.MachineSpec{Nodes: 2, ProcsPerNode: 4})
	lock := rmalocks.NewRMARW(machine, rmalocks.RWParams{})
	counter := machine.Alloc(1)
	err := machine.Run(func(p *rmalocks.Proc) {
		for i := 0; i < 10; i++ {
			if p.Rank() == 0 {
				lock.AcquireWrite(p)
				v := p.Get(0, counter)
				p.Flush(0)
				p.Put(v+1, 0, counter)
				p.Flush(0)
				lock.ReleaseWrite(p)
			} else {
				lock.AcquireRead(p)
				p.Get(0, counter)
				p.Flush(0)
				lock.ReleaseRead(p)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := machine.At(0, counter); got != 10 {
		t.Errorf("counter=%d want 10", got)
	}
}

func TestAllLockKindsViaFacade(t *testing.T) {
	machine := rmalocks.NewMachine(rmalocks.MachineSpec{Nodes: 2, ProcsPerNode: 4, TimeLimit: 60_000_000_000})
	mcs := rmalocks.NewRMAMCS(machine, rmalocks.MCSParams{TL: []int64{0, 0, 4}})
	dm := rmalocks.NewDMCS(machine)
	spin := rmalocks.NewFoMPISpin(machine)
	frw := rmalocks.NewFoMPIRW(machine)
	var a, b, c, d int64
	err := machine.Run(func(p *rmalocks.Proc) {
		for i := 0; i < 5; i++ {
			mcs.Acquire(p)
			va := a
			p.Compute(50)
			a = va + 1
			mcs.Release(p)

			dm.Acquire(p)
			vb := b
			p.Compute(50)
			b = vb + 1
			dm.Release(p)

			spin.Acquire(p)
			vc := c
			p.Compute(50)
			c = vc + 1
			spin.Release(p)

			frw.AcquireWrite(p)
			vd := d
			p.Compute(50)
			d = vd + 1
			frw.ReleaseWrite(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(5 * machine.Procs())
	for name, got := range map[string]int64{"rmamcs": a, "dmcs": b, "spin": c, "fompirw": d} {
		if got != want {
			t.Errorf("%s counter=%d want %d", name, got, want)
		}
	}
}

func TestThreeLevelMachineViaFacade(t *testing.T) {
	machine := rmalocks.NewMachine(rmalocks.MachineSpec{Racks: 2, Nodes: 4, ProcsPerNode: 2, TimeLimit: 60_000_000_000})
	if machine.Topology().Levels() != 3 {
		t.Fatalf("levels=%d want 3", machine.Topology().Levels())
	}
	lock := rmalocks.NewRMAMCS(machine, rmalocks.MCSParams{})
	var n int64
	err := machine.Run(func(p *rmalocks.Proc) {
		for i := 0; i < 8; i++ {
			lock.Acquire(p)
			v := n
			p.Compute(100)
			n = v + 1
			lock.Release(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(8*machine.Procs()) {
		t.Errorf("n=%d want %d", n, 8*machine.Procs())
	}
}

func TestNewMachineForProcs(t *testing.T) {
	m := rmalocks.NewMachineForProcs(40)
	if m.Procs() != 40 {
		t.Errorf("Procs=%d want 40", m.Procs())
	}
	if m.Topology().ProcsPerLeaf() != 16 {
		t.Errorf("ProcsPerLeaf=%d want 16", m.Topology().ProcsPerLeaf())
	}
}

func TestWorkloadFacade(t *testing.T) {
	run := func() rmalocks.WorkloadReport {
		rep, err := rmalocks.RunWorkload(rmalocks.WorkloadSpec{
			Scheme: "RMA-RW", P: 16, ProcsPerNode: 4, Iters: 12, Seed: 9,
			Profile:  rmalocks.NewZipfProfile(4, 1.2, 0.25),
			Workload: &rmalocks.SharedOpWorkload{},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Ops != 16*12 {
		t.Errorf("Ops=%d want 192", a.Ops)
	}
	if a.Fingerprint() != b.Fingerprint() || a.MaxClock != b.MaxClock {
		t.Error("facade workload run not reproducible")
	}
	if len(rmalocks.WorkloadSchemes) != 5 {
		t.Errorf("WorkloadSchemes=%v want 5 schemes", rmalocks.WorkloadSchemes)
	}
}

func TestMachineSpecDefaults(t *testing.T) {
	m := rmalocks.NewMachine(rmalocks.MachineSpec{})
	if m.Procs() != 16 {
		t.Errorf("default machine has %d procs, want 16 (1 node x 16)", m.Procs())
	}
}

func TestSweepFacade(t *testing.T) {
	grid := rmalocks.SweepGrid{
		Schemes:   []string{"D-MCS"},
		Workloads: []string{"empty"},
		Profiles:  []string{"uniform"},
		Ps:        []int{8, 16},
		Iters:     8,
	}
	cells, err := grid.Cells()
	if err != nil {
		t.Fatal(err)
	}
	results, err := rmalocks.RunSweep(cells, rmalocks.SweepOptions{Workers: 2, Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := rmalocks.SaveSweep(path, "facade", results); err != nil {
		t.Fatal(err)
	}
	rf, err := rmalocks.LoadSweep(path)
	if err != nil {
		t.Fatal(err)
	}
	deltas := rmalocks.CompareSweeps(rf.Cells, results)
	for _, d := range deltas {
		if !d.Identical {
			t.Errorf("cell %s not identical after save/load round trip", d.Key)
		}
	}
}

func TestTraceFacade(t *testing.T) {
	// The documented tracing flow: attach a sink to a machine, run a
	// locked program, analyze and export the stream via the facade.
	sink := rmalocks.NewTraceSink(rmalocks.TraceAll)
	machine := rmalocks.NewMachine(rmalocks.MachineSpec{Nodes: 2, ProcsPerNode: 4, Trace: sink})
	lock := rmalocks.NewRMAMCS(machine, rmalocks.MCSParams{})
	err := machine.Run(func(p *rmalocks.Proc) {
		for i := 0; i < 5; i++ {
			lock.Acquire(p)
			p.Compute(100)
			lock.Release(p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	events := sink.Events()
	if len(events) == 0 {
		t.Fatal("no events captured")
	}
	if err := rmalocks.ValidateTrace(events); err != nil {
		t.Fatalf("replay validation: %v", err)
	}
	a := rmalocks.AnalyzeTrace(machine, sink)
	if want := int64(5 * machine.Procs()); sum64(a.Acquired) != want {
		t.Fatalf("acquisitions = %d, want %d", sum64(a.Acquired), want)
	}
	if a.Fairness <= 0 || a.Fairness > 1 {
		t.Fatalf("fairness = %v", a.Fairness)
	}
	var chrome, csv strings.Builder
	if err := rmalocks.WriteChromeTrace(&chrome, machine, sink, "facade"); err != nil {
		t.Fatal(err)
	}
	if err := rmalocks.WriteTraceCSV(&csv, sink); err != nil {
		t.Fatal(err)
	}
	if chrome.Len() == 0 || csv.Len() == 0 {
		t.Fatal("empty export")
	}
}

func sum64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}
